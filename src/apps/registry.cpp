#include "apps/registry.hpp"

#include <stdexcept>

namespace dfsim::apps {

namespace {

struct Entry {
  const char* name;
  mpi::CoTask (*fn)(mpi::RankCtx&, AppParams);
};

constexpr Entry kApps[] = {
    {"MILC", &milc},
    {"MILCREORDER", &milc_reorder},
    {"NEK5000", &nek5000},
    {"HACC", &hacc},
    {"QBOX", &qbox},
    {"RAYLEIGH", &rayleigh},
};

}  // namespace

mpi::JobSpec::AppFn make_app(std::string_view name, AppParams params) {
  for (const auto& e : kApps) {
    if (name == e.name) {
      auto* fn = e.fn;
      return [fn, params](mpi::RankCtx& ctx) { return fn(ctx, params); };
    }
  }
  throw std::invalid_argument("make_app: unknown app '" + std::string(name) + "'");
}

const std::vector<std::string>& paper_app_names() {
  static const std::vector<std::string> names = {
      "MILC", "MILCREORDER", "NEK5000", "HACC", "QBOX", "RAYLEIGH"};
  return names;
}

bool has_app(std::string_view name) {
  for (const auto& e : kApps)
    if (name == e.name) return true;
  return false;
}

}  // namespace dfsim::apps
