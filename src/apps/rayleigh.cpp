// Rayleigh (spherical convection / pseudo-spectral) proxy.
//
// Paper characterization (Table I): no plain point-to-point; heavy ~23MB
// MPI_Alltoallv transposes, plus MPI_Send (packing pipeline) and
// MPI_Barrier. Only ~28% MPI and large messages, so Rayleigh is
// injection-bandwidth / message-rate bound and largely insensitive to the
// routing bias (paper Table II: 0.2%).
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

mpi::CoTask rayleigh(mpi::RankCtx& ctx, AppParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const auto dims = balanced_dims(n, 2);
  const int rows = dims[0], cols = dims[1];
  const int my_row = me / cols, my_col = me % cols;

  auto row_comm = [&] {
    std::vector<int> m;
    for (int j = 0; j < cols; ++j) m.push_back(my_row * cols + j);
    return mpi::Comm::sub(std::move(m), me);
  }();
  auto col_comm = [&] {
    std::vector<int> m;
    for (int i = 0; i < rows; ++i) m.push_back(i * cols + my_col);
    return mpi::Comm::sub(std::move(m), me);
  }();
  const auto world = mpi::Comm::world(n, me);

  const std::int64_t transpose_total = p.scaled(23'000'000);  // ~23MB
  const sim::Tick work = p.scaled_compute(23'000 * sim::kMicrosecond);
  const std::int64_t pack_bytes = p.scaled(512 * 1024);

  for (int it = 0; it < p.iterations; ++it) {
    // Legendre transform compute block.
    co_await ctx.compute_jitter(work / 2, 0.02);

    // Spectral transposes: heavy alltoallv along rows then columns.
    std::vector<std::int64_t> per_row(
        static_cast<std::size_t>(row_comm.size()),
        transpose_total / std::max(1, row_comm.size() - 1));
    co_await mpi::coll::alltoallv(ctx, row_comm, std::move(per_row));
    std::vector<std::int64_t> per_col(
        static_cast<std::size_t>(col_comm.size()),
        transpose_total / std::max(1, col_comm.size() - 1));
    co_await mpi::coll::alltoallv(ctx, col_comm, std::move(per_col));

    co_await ctx.compute_jitter(work / 2, 0.02);

    // Output/packing pipeline: blocking sends toward the row root.
    if (row_comm.my_index != 0) {
      co_await ctx.send(row_comm.world(0), pack_bytes, 7);
    } else {
      for (int j = 1; j < row_comm.size(); ++j)
        co_await ctx.recv(mpi::kAnySource, pack_bytes, 7);
    }
    co_await mpi::coll::barrier(ctx, world);
  }
}

}  // namespace dfsim::apps
