// Name-based app registry: benches and examples look proxies up by the
// paper's application names.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app.hpp"
#include "mpi/machine.hpp"

namespace dfsim::apps {

/// Factory: binds AppParams into a JobSpec-ready per-rank program.
mpi::JobSpec::AppFn make_app(std::string_view name, AppParams params);

/// Names of the six paper applications, in Table I order.
const std::vector<std::string>& paper_app_names();

/// True if `name` resolves.
bool has_app(std::string_view name);

}  // namespace dfsim::apps
