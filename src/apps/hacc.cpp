// HACC (cosmology N-body) proxy.
//
// Paper characterization (Table I, Sections IV-C, V-B): two patterns —
// (1) a 3D-FFT Poisson solver whose pencil transposes send large (~1.2MB)
// asynchronous messages over effectively random rank-pair mappings,
// stressing global bisection bandwidth (this is why HACC prefers AD0:
// non-minimal routes spread the rank-3 load, while strong minimal bias
// concentrates it and causes backpressure, Fig. 12); and (2) a neighbor-wise
// particle exchange. Light ~1KB allreduces. Only ~22% of runtime in MPI;
// dominant calls MPI_Wait, MPI_Waitall, MPI_Allreduce.
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

namespace {

/// Pencil-transpose step: exchange with every peer of a sub-communicator
/// using nonblocking sends and individually waited receives (MPI_Wait
/// dominance in Table I).
mpi::CoTask pencil_transpose(mpi::RankCtx& ctx, const mpi::Comm& comm,
                             std::int64_t bytes_per_peer, int tag) {
  const int cn = comm.size();
  const int ci = comm.my_index;
  mpi::RequestList sends;
  mpi::RequestList recvs;
  for (int r = 1; r < cn; ++r) {
    const int peer = comm.world((ci + r) % cn);
    const int from = comm.world((ci - r + cn) % cn);
    sends.push_back(ctx.isend(peer, bytes_per_peer, tag));
    recvs.push_back(ctx.irecv(from, bytes_per_peer, tag));
  }
  for (auto& r : recvs) co_await ctx.wait(std::move(r));
  co_await ctx.waitall(std::move(sends));
}

}  // namespace

mpi::CoTask hacc(mpi::RankCtx& ctx, AppParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const auto dims = balanced_dims(n, 3);
  const auto c = rank_to_coords(me, dims);

  // Pencil sub-communicators along each axis: the rank strides make the
  // transposes cross the whole machine (random-looking rank pairs).
  auto axis_comm = [&](std::size_t axis) {
    std::vector<int> members;
    for (int k = 0; k < dims[axis]; ++k) {
      auto cc = c;
      cc[axis] = k;
      members.push_back(coords_to_rank(cc, dims));
    }
    return mpi::Comm::sub(std::move(members), me);
  };
  const mpi::Comm cx = axis_comm(0), cy = axis_comm(1), cz = axis_comm(2);
  const auto world = mpi::Comm::world(n, me);

  const std::int64_t fft_bytes = p.scaled(1'200'000);  // ~1.2MB FFT pencils
  const std::int64_t particle_bytes = p.scaled(256 * 1024);
  const sim::Tick step_work = p.scaled_compute(4000 * sim::kMicrosecond);

  // 6-neighbor particle exchange partners (periodic 3D).
  std::vector<int> nbrs;
  for (std::size_t d = 0; d < 3; ++d)
    for (int s : {+1, -1}) {
      auto cc = c;
      cc[d] = (cc[d] + s + dims[d]) % dims[d];
      nbrs.push_back(coords_to_rank(cc, dims));
    }

  for (int it = 0; it < p.iterations; ++it) {
    // Long force/particle compute phase (HACC is ~78% compute).
    co_await ctx.compute_jitter(step_work / 2, 0.02);

    // Poisson solve: forward + inverse FFT -> pencil transposes on each axis.
    co_await pencil_transpose(ctx, cx, fft_bytes / cx.size(), 10);
    co_await pencil_transpose(ctx, cy, fft_bytes / cy.size(), 11);
    co_await pencil_transpose(ctx, cz, fft_bytes / cz.size(), 12);

    co_await ctx.compute_jitter(step_work / 2, 0.02);

    // Particle migration: nonblocking neighbor exchange.
    mpi::RequestList reqs;
    for (const int nb : nbrs) reqs.push_back(ctx.irecv(nb, particle_bytes, 20));
    for (const int nb : nbrs) reqs.push_back(ctx.isend(nb, particle_bytes, 20));
    co_await ctx.waitall(std::move(reqs));

    // Global diagnostics: light 1KB allreduce.
    co_await mpi::coll::allreduce(ctx, world, 1024);
  }
}

}  // namespace dfsim::apps
