// Qbox (first-principles molecular dynamics) proxy.
//
// Paper characterization (Table I): ~66% of runtime in MPI — the most
// communication-bound app in the set. Medium point-to-point (~50KB) and
// medium collectives (~128KB); dominant calls MPI_Alltoallv, MPI_Recv,
// MPI_Wait. Qbox works on a 2D process grid (states x plane-waves) with
// alltoallv transposes along rows and blocking pipeline exchanges along
// columns.
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

mpi::CoTask qbox(mpi::RankCtx& ctx, AppParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const auto dims = balanced_dims(n, 2);
  const int rows = dims[0], cols = dims[1];
  const int my_row = me / cols, my_col = me % cols;

  auto row_comm = [&] {
    std::vector<int> m;
    for (int j = 0; j < cols; ++j) m.push_back(my_row * cols + j);
    return mpi::Comm::sub(std::move(m), me);
  }();
  const std::int64_t coll_total = p.scaled(128 * 1024);  // per-call bytes
  const std::int64_t p2p_bytes = p.scaled(50 * 1024);
  const sim::Tick work = p.scaled_compute(52 * sim::kMicrosecond);

  const int up = ((my_row - 1 + rows) % rows) * cols + my_col;
  const int down = ((my_row + 1) % rows) * cols + my_col;

  for (int it = 0; it < p.iterations; ++it) {
    // Plane-wave transpose: alltoallv within the row.
    std::vector<std::int64_t> per(static_cast<std::size_t>(row_comm.size()),
                                  coll_total / std::max(1, row_comm.size() - 1));
    co_await mpi::coll::alltoallv(ctx, row_comm, std::move(per));
    co_await ctx.compute_jitter(work / 2, 0.03);

    // Column pipeline: blocking ring exchange of state blocks (MPI_Recv).
    if (rows > 1) {
      mpi::Request s = ctx.isend(down, p2p_bytes, 5);
      co_await ctx.recv(up, p2p_bytes, 5);
      co_await ctx.wait(std::move(s));
    }
    co_await ctx.compute_jitter(work / 2, 0.03);
  }
}

}  // namespace dfsim::apps
