// MILC (Lattice QCD) proxy.
//
// Paper characterization (Table I, Section IV-A): 4D stencil with heavy
// KB-range nonblocking neighbor exchange overlapped with compute, followed
// by frequent latency-bound 8-byte MPI_Allreduce operations (CG solver dot
// products). ~52% of runtime in MPI; dominant calls MPI_Allreduce, MPI_Wait,
// MPI_Isend. MILCREORDER is the same code with a locality-optimized
// rank-to-grid mapping (2^4 blocking), which shifts time from Allreduce
// toward Wait (Table I row 2).
#include <array>
#include <numeric>
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

std::vector<int> balanced_dims(int n, int d) {
  // Prime-factorize, then assign factors largest-first onto the currently
  // smallest dimension (largest-first keeps the result balanced: 12 in 2D
  // becomes 4x3, not 6x2). An int has at most 31 prime factors, so the
  // factor list fits a fixed array (every rank runs this at app start, so
  // keep it off the heap).
  std::array<int, 31> factors{};
  int nf = 0;
  int rest = n;
  for (int f = 2; rest > 1;) {
    if (rest % f == 0) {
      factors[static_cast<std::size_t>(nf++)] = f;
      rest /= f;
    } else {
      ++f;
      if (f * f > rest) f = rest;
    }
  }
  std::sort(factors.begin(), factors.begin() + nf, std::greater<>());
  std::vector<int> dims(static_cast<std::size_t>(d), 1);
  for (int i = 0; i < nf; ++i)
    *std::min_element(dims.begin(), dims.end()) *= factors[static_cast<std::size_t>(i)];
  std::sort(dims.begin(), dims.end(), std::greater<>());
  return dims;
}

void rank_to_coords_into(int rank, const std::vector<int>& dims,
                         std::vector<int>& c) {
  c.resize(dims.size());
  for (std::size_t i = dims.size(); i-- > 0;) {
    c[i] = rank % dims[i];
    rank /= dims[i];
  }
}

std::vector<int> rank_to_coords(int rank, const std::vector<int>& dims) {
  std::vector<int> c;
  rank_to_coords_into(rank, dims, c);
  return c;
}

int coords_to_rank(const std::vector<int>& coords, const std::vector<int>& dims) {
  int r = 0;
  for (std::size_t i = 0; i < dims.size(); ++i) r = r * dims[i] + coords[i];
  return r;
}

namespace {

/// Reusable buffers for grid_coords_into: the rank-to-grid map is built by
/// decoding every world rank, so per-call vectors would allocate O(nranks)
/// times per rank at app start. With scratch reuse the whole map costs a
/// handful of allocations total.
struct CoordScratch {
  std::vector<int> bdims, edge, bc;
};

/// Logical grid position of world rank `w`, written into `c`. Identity for
/// MILC; 2-per-dim blocked (locality-optimized) for MILCREORDER.
void grid_coords_into(int w, const std::vector<int>& dims, bool blocked,
                      CoordScratch& s, std::vector<int>& c) {
  if (!blocked) {
    rank_to_coords_into(w, dims, c);
    return;
  }
  // Decode w as (block index, intra-block offset) with block edge 2 in every
  // dimension that is even-sized.
  s.bdims.resize(dims.size());
  s.edge.resize(dims.size());
  int cells = 1;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    s.edge[i] = (dims[i] % 2 == 0) ? 2 : 1;
    s.bdims[i] = dims[i] / s.edge[i];
    cells *= s.edge[i];
  }
  const int block = w / cells;
  int off = w % cells;
  rank_to_coords_into(block, s.bdims, s.bc);
  c.resize(dims.size());
  for (std::size_t i = dims.size(); i-- > 0;) {
    c[i] = s.bc[i] * s.edge[i] + off % s.edge[i];
    off /= s.edge[i];
  }
}

mpi::CoTask milc_impl(mpi::RankCtx& ctx, AppParams p, bool reorder) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const auto dims = balanced_dims(n, 4);

  // position (row-major logical index) -> world rank.
  std::vector<int> pos_to_world(static_cast<std::size_t>(n));
  CoordScratch cs;
  std::vector<int> gc;
  for (int w = 0; w < n; ++w) {
    grid_coords_into(w, dims, reorder, cs, gc);
    pos_to_world[static_cast<std::size_t>(coords_to_rank(gc, dims))] = w;
  }
  std::vector<int> my_coords;
  grid_coords_into(me, dims, reorder, cs, my_coords);

  // Periodic neighbors in the 8 stencil directions.
  std::array<int, 8> nbr{};
  std::array<int, 8> tag{};
  int k = 0;
  std::vector<int> c = my_coords;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    for (int s : {+1, -1}) {
      // Perturb one coordinate in place (restore after) instead of copying.
      const int keep = c[d];
      c[d] = (keep + s + dims[d]) % dims[d];
      nbr[static_cast<std::size_t>(k)] =
          pos_to_world[static_cast<std::size_t>(coords_to_rank(c, dims))];
      c[d] = keep;
      // Tag identifies (dim, direction as seen by the receiver).
      tag[static_cast<std::size_t>(k)] = static_cast<int>(2 * d) + (s > 0 ? 0 : 1);
      ++k;
    }
  }

  const std::int64_t halo = p.scaled(8 * 1024);  // KB-range stencil faces
  const sim::Tick overlap = p.scaled_compute(220 * sim::kMicrosecond);
  const sim::Tick solver = p.scaled_compute(180 * sim::kMicrosecond);

  for (int it = 0; it < p.iterations; ++it) {
    // Halo exchange, overlapped with local stencil compute.
    mpi::RequestList reqs;
    reqs.reserve(16);
    k = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      for (int s : {+1, -1}) {
        (void)s;
        // Receive from the opposite direction the neighbor sends toward us.
        const int kk = k;
        const int opp = (kk % 2 == 0) ? kk + 1 : kk - 1;
        reqs.push_back(ctx.irecv(nbr[static_cast<std::size_t>(opp)], halo,
                                 tag[static_cast<std::size_t>(kk)]));
        ++k;
      }
    }
    for (int i = 0; i < 8; ++i)
      reqs.push_back(ctx.isend(nbr[static_cast<std::size_t>(i)], halo,
                               tag[static_cast<std::size_t>(i)]));
    co_await ctx.compute_jitter(overlap, 0.03);
    co_await ctx.waitall(std::move(reqs));

    // CG-style solver segment: a chain of latency-bound 8-byte allreduces
    // (two dot products per CG iteration).
    for (int a = 0; a < 8; ++a) {
      co_await ctx.compute_jitter(solver / 8, 0.03);
      co_await mpi::coll::allreduce(ctx, mpi::Comm::world(n, me), 8);
    }
  }
}

}  // namespace

mpi::CoTask milc(mpi::RankCtx& ctx, AppParams p) {
  return milc_impl(ctx, p, /*reorder=*/false);
}

mpi::CoTask milc_reorder(mpi::RankCtx& ctx, AppParams p) {
  return milc_impl(ctx, p, /*reorder=*/true);
}

}  // namespace dfsim::apps
