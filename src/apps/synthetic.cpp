// Synthetic traffic patterns.
//
// Used as (a) the background "other users' jobs" in the production-condition
// experiments (paper Section III-A: all background jobs run AD0), and
// (b) controlled congestors. Open-ended variants run until the machine
// requests a cooperative stop.
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

namespace {

bool keep_going(const mpi::RankCtx& ctx, const SyntheticParams& p, int it) {
  if (p.iterations > 0) return it < p.iterations;
  return !ctx.stop_requested();
}

}  // namespace

mpi::CoTask uniform_traffic(mpi::RankCtx& ctx, SyntheticParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  if (n <= 1) co_return;
  for (int it = 0; keep_going(ctx, p, it); ++it) {
    // Random shift permutation per iteration (same on every rank, derived
    // from the shared seed) so each rank sends and receives exactly once —
    // uniform-random-looking traffic with no unmatched receives.
    sim::Rng round_rng(p.seed * 1000003ULL + static_cast<std::uint64_t>(it));
    const int off =
        1 + static_cast<int>(round_rng.uniform_u64(static_cast<std::uint64_t>(n - 1)));
    const int dst = (me + off) % n;
    const int src = (me - off + n) % n;
    mpi::Request r = ctx.irecv(src, p.msg_bytes, 3);
    mpi::Request s = ctx.isend(dst, p.msg_bytes, 3);
    co_await ctx.compute_jitter(p.compute_ns, 0.1);
    co_await ctx.wait(std::move(s));
    co_await ctx.wait(std::move(r));
  }
}

mpi::CoTask stencil3d_traffic(mpi::RankCtx& ctx, SyntheticParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  if (n <= 1) co_return;
  const auto dims = balanced_dims(n, 3);
  const auto c = rank_to_coords(me, dims);
  std::vector<int> nbrs;
  for (std::size_t d = 0; d < 3; ++d)
    for (int s : {+1, -1}) {
      auto cc = c;
      cc[d] = (cc[d] + s + dims[d]) % dims[d];
      nbrs.push_back(coords_to_rank(cc, dims));
    }
  for (int it = 0; keep_going(ctx, p, it); ++it) {
    mpi::RequestList reqs;
    for (const int nb : nbrs) reqs.push_back(ctx.irecv(nb, p.msg_bytes, 4));
    for (const int nb : nbrs) reqs.push_back(ctx.isend(nb, p.msg_bytes, 4));
    co_await ctx.compute_jitter(p.compute_ns, 0.1);
    co_await ctx.waitall(std::move(reqs));
  }
}

mpi::CoTask incast_traffic(mpi::RankCtx& ctx, SyntheticParams p) {
  // Everyone hammers rank 0 (paper Section III-A's "extreme congestion
  // events such as incast"); rank 0 sinks with wildcard receives.
  const int n = ctx.nranks();
  const int me = ctx.rank();
  if (n <= 1) co_return;
  for (int it = 0; keep_going(ctx, p, it); ++it) {
    if (me == 0) {
      for (int k = 0; k < n - 1; ++k)
        co_await ctx.recv(mpi::kAnySource, p.msg_bytes, 6);
    } else {
      co_await ctx.send(0, p.msg_bytes, 6);
      co_await ctx.compute_jitter(p.compute_ns, 0.1);
    }
  }
}

mpi::CoTask bisection_traffic(mpi::RankCtx& ctx, SyntheticParams p) {
  // Pair rank i with rank i + n/2: a stream crossing the machine bisection.
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const int half = n / 2;
  if (half == 0) co_return;
  // With odd n the last rank has no symmetric partner (its me - n/2 peer
  // is already paired with me - 2*(n/2)), so its lone receive never matches
  // and the rank blocks. A finite job must terminate, so the odd rank sits
  // out. Open-ended (stop-driven) jobs keep the legacy one-shot exchange —
  // they never complete by design, background never awaits them, and the
  // production-condition calibration pins depend on that exact traffic.
  if (p.iterations > 0 && me >= 2 * half) co_return;
  const int partner = me < half ? me + half : me - half;
  if (partner == me || partner >= n) co_return;
  for (int it = 0; keep_going(ctx, p, it); ++it) {
    mpi::Request r = ctx.irecv(partner, p.msg_bytes, 8);
    mpi::Request s = ctx.isend(partner, p.msg_bytes, 8);
    co_await ctx.wait(std::move(s));
    co_await ctx.wait(std::move(r));
    co_await ctx.compute_jitter(p.compute_ns, 0.1);
  }
}

mpi::CoTask compute_only(mpi::RankCtx& ctx, SyntheticParams p) {
  for (int it = 0; keep_going(ctx, p, it); ++it)
    co_await ctx.compute_jitter(p.compute_ns, 0.05);
}

}  // namespace dfsim::apps
