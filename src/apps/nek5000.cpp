// Nek5000 (spectral-element CFD) proxy.
//
// Paper characterization (Table I): medium KB-range point-to-point
// (gather-scatter across an irregular element graph), light 16-byte
// allreduces, ~48% MPI; dominant calls MPI_Allreduce, MPI_Waitall, MPI_Recv.
// The gather-scatter neighborhood is irregular but fixed: each rank talks to
// a fixed pseudo-random set of ~12 peers, half nonblocking (waitall) and
// half through blocking receives (the crystal-router stage Nek uses).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "mpi/collectives.hpp"

namespace dfsim::apps {

namespace {

/// Fixed pseudo-random symmetric neighbor sets: rank i and j are neighbors
/// iff hash(i, j) selects the pair; every rank gets ~`degree` peers.
std::vector<int> gs_neighbors(int me, int n, int degree, std::uint64_t seed) {
  std::vector<int> nbrs;
  if (n <= 1) return nbrs;
  // Symmetric ring-offset construction: offsets derived from the seed so the
  // graph is irregular but identical on both endpoints of each edge.
  sim::Rng rng(seed);
  std::vector<int> offsets;
  // Only floor(n/2) distinct +/- offset pairs exist; cap the target so small
  // communicators terminate.
  const int want = std::min((degree + 1) / 2, n / 2);
  while (static_cast<int>(offsets.size()) < want) {
    const int off = static_cast<int>(rng.uniform_int(1, n - 1));
    if (std::find(offsets.begin(), offsets.end(), off) == offsets.end() &&
        std::find(offsets.begin(), offsets.end(), n - off) == offsets.end())
      offsets.push_back(off);
  }
  for (const int off : offsets) {
    nbrs.push_back((me + off) % n);
    if ((me + off) % n != (me - off + n) % n) nbrs.push_back((me - off + n) % n);
  }
  return nbrs;
}

}  // namespace

mpi::CoTask nek5000(mpi::RankCtx& ctx, AppParams p) {
  const int n = ctx.nranks();
  const int me = ctx.rank();
  const auto nbrs = gs_neighbors(me, n, 12, p.seed);
  const std::int64_t gs_bytes = p.scaled(4 * 1024);
  const sim::Tick element_work = p.scaled_compute(250 * sim::kMicrosecond);
  const auto world = mpi::Comm::world(n, me);

  for (int it = 0; it < p.iterations; ++it) {
    // Gather-scatter: post all receives, send, wait.
    mpi::RequestList reqs;
    for (const int nb : nbrs) reqs.push_back(ctx.irecv(nb, gs_bytes, /*tag=*/1));
    for (const int nb : nbrs) reqs.push_back(ctx.isend(nb, gs_bytes, /*tag=*/1));
    co_await ctx.compute_jitter(element_work / 2, 0.03);
    co_await ctx.waitall(std::move(reqs));

    // Crystal-router stage: blocking ring exchange (MPI_Recv in Table I).
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;
    {
      mpi::Request s = ctx.isend(right, gs_bytes, /*tag=*/2);
      co_await ctx.recv(left, gs_bytes, /*tag=*/2);
      co_await ctx.wait(std::move(s));
    }
    co_await ctx.compute_jitter(element_work / 2, 0.03);

    // Pressure-solve dot products: small latency-bound allreduces.
    for (int a = 0; a < 3; ++a) co_await mpi::coll::allreduce(ctx, world, 16);
  }
}

}  // namespace dfsim::apps
