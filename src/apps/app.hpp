// Application proxy framework.
//
// Each paper application (Table I) is reproduced as a communication
// skeleton: the real code's message sizes, MPI-call mix, process-grid
// decomposition, and compute/communication ratio, without the numerics.
// The paper's analysis (Sections II-E, IV) argues that the routing-bias
// preference of an application is determined by exactly these properties.
//
// An app is a per-rank coroutine; factories bind AppParams into a
// JobSpec::AppFn. `msg_scale` shrinks message volumes (and compute
// proportionally via `compute_scale`) so benches can sweep many runs
// quickly while preserving the communication-to-compute balance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "mpi/rank.hpp"
#include "mpi/task.hpp"

namespace dfsim::apps {

struct AppParams {
  int iterations = 10;
  double msg_scale = 1.0;      ///< multiplies message sizes
  double compute_scale = 1.0;  ///< multiplies compute blocks
  std::uint64_t seed = 1;      ///< app-level randomness (fixed neighbor sets)

  [[nodiscard]] std::int64_t scaled(std::int64_t bytes) const {
    const auto v = static_cast<std::int64_t>(static_cast<double>(bytes) * msg_scale);
    return v > 0 ? v : 1;
  }
  [[nodiscard]] sim::Tick scaled_compute(sim::Tick ns) const {
    const auto v = static_cast<sim::Tick>(static_cast<double>(ns) * compute_scale);
    return v > 0 ? v : 0;
  }
};

/// Factor `n` into `d` near-equal dimensions (largest first).
std::vector<int> balanced_dims(int n, int d);

/// Map a rank to coordinates in the given dims (row-major) and back.
std::vector<int> rank_to_coords(int rank, const std::vector<int>& dims);
/// Allocation-free variant: writes into `c` (resized to dims.size()).
/// Use in loops that decode many ranks (reuses `c`'s capacity).
void rank_to_coords_into(int rank, const std::vector<int>& dims,
                         std::vector<int>& c);
int coords_to_rank(const std::vector<int>& coords, const std::vector<int>& dims);

// --- Application skeletons (one per paper app) ---
mpi::CoTask milc(mpi::RankCtx& ctx, AppParams p);
mpi::CoTask milc_reorder(mpi::RankCtx& ctx, AppParams p);
mpi::CoTask nek5000(mpi::RankCtx& ctx, AppParams p);
mpi::CoTask hacc(mpi::RankCtx& ctx, AppParams p);
mpi::CoTask qbox(mpi::RankCtx& ctx, AppParams p);
mpi::CoTask rayleigh(mpi::RankCtx& ctx, AppParams p);

// --- Synthetic patterns (background noise / controlled congestors) ---
struct SyntheticParams {
  std::int64_t msg_bytes = 64 * 1024;
  sim::Tick compute_ns = 50 * sim::kMicrosecond;
  int iterations = 0;  ///< 0 = run until RankCtx::stop_requested()
  std::uint64_t seed = 1;
};
mpi::CoTask uniform_traffic(mpi::RankCtx& ctx, SyntheticParams p);
mpi::CoTask stencil3d_traffic(mpi::RankCtx& ctx, SyntheticParams p);
mpi::CoTask incast_traffic(mpi::RankCtx& ctx, SyntheticParams p);
mpi::CoTask bisection_traffic(mpi::RankCtx& ctx, SyntheticParams p);
mpi::CoTask compute_only(mpi::RankCtx& ctx, SyntheticParams p);

}  // namespace dfsim::apps
