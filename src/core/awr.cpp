#include "core/awr.hpp"

namespace dfsim::core {

AwrController::AwrController(mpi::Machine& machine, mpi::JobId job,
                             Params params)
    : machine_(machine), job_(job), params_(params), mode_(params.initial) {
  machine_.set_job_modes(job_, mode_, mode_ == routing::Mode::kAd0
                                          ? routing::Mode::kAd1
                                          : mode_);
}

void AwrController::start() {
  if (running_) return;
  running_ = true;
  // Seed the counter window. Polls read NIC counters across the whole job,
  // so under sharded execution they must run at window barriers.
  (void)sample_latency();
  machine_.network().schedule_quiesced(params_.poll_period,
                                       [this] { poll(); });
}

double AwrController::sample_latency() {
  std::int64_t sum = 0, count = 0;
  const auto& net = machine_.network();
  for (const topo::NodeId n : machine_.job(job_).spec.nodes) {
    const auto& ctr = net.nic(n).ctr;
    sum += ctr.rsp_time_sum_ns;
    count += ctr.rsp_track_count;
  }
  const std::int64_t dsum = sum - last_sum_;
  const std::int64_t dcount = count - last_count_;
  last_sum_ = sum;
  last_count_ = count;
  return dcount > 0 ? static_cast<double>(dsum) / static_cast<double>(dcount)
                    : -1.0;
}

void AwrController::poll() {
  if (!running_ || machine_.job(job_).complete()) return;
  ++polls_;
  const double lat = sample_latency();
  if (lat >= 0.0) {
    if (baseline_ <= 0.0) baseline_ = lat;
    const double ratio = lat / baseline_;
    auto m = static_cast<int>(mode_);
    if (ratio > params_.degrade_threshold &&
        m < static_cast<int>(params_.ceiling)) {
      ++m;
      ++escalations_;
    } else if (ratio < params_.improve_threshold &&
               m > static_cast<int>(params_.floor)) {
      --m;
      ++relaxations_;
    }
    const auto next = static_cast<routing::Mode>(m);
    if (next != mode_) {
      mode_ = next;
      machine_.set_job_modes(job_, mode_, mode_ == routing::Mode::kAd0
                                              ? routing::Mode::kAd1
                                              : mode_);
      decisions_.push_back(Decision{machine_.engine().now(), mode_, lat});
    }
    baseline_ = params_.ewma_alpha * lat + (1.0 - params_.ewma_alpha) * baseline_;
  }
  machine_.network().schedule_quiesced(params_.poll_period,
                                       [this] { poll(); });
}

}  // namespace dfsim::core
