// Application-aware routing (AWR) runtime — the De Sensi et al. [SC'19]
// baseline the paper compares against (Sections I, VI).
//
// AWR polls the NIC latency counters of a running job and adjusts the
// job's routing bias at runtime: when observed request-response latency
// degrades against its running baseline, the bias steps toward minimal;
// when it recovers, the bias relaxes back. The paper found (a) the polling
// overhead too high on many-core CPUs, and (b) that a well-chosen *static*
// bias often beats the adaptive runtime — this controller lets both
// findings be reproduced in simulation (see bench/ext_awr_vs_static).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mpi/machine.hpp"
#include "routing/bias.hpp"
#include "sim/time.hpp"

namespace dfsim::core {

class AwrController {
 public:
  struct Params {
    sim::Tick poll_period = 100 * sim::kMicrosecond;
    /// Latency ratio vs. the EWMA baseline above which the bias escalates
    /// one step toward minimal.
    double degrade_threshold = 1.15;
    /// Ratio below which the bias relaxes one step back.
    double improve_threshold = 0.95;
    double ewma_alpha = 0.3;
    routing::Mode initial = routing::Mode::kAd0;
    routing::Mode floor = routing::Mode::kAd0;
    routing::Mode ceiling = routing::Mode::kAd3;
    /// Modeled per-poll CPU cost charged to every rank of the job (the
    /// overhead that made AWR impractical on KNL — paper Section I). Set to
    /// 0 for an idealized zero-cost runtime.
    sim::Tick poll_overhead = 0;
  };

  struct Decision {
    sim::Tick t;
    routing::Mode mode;
    double latency_ns;
  };

  AwrController(mpi::Machine& machine, mpi::JobId job, Params params);

  /// Begin polling (first poll one period after start()).
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] routing::Mode current_mode() const { return mode_; }
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] int escalations() const { return escalations_; }
  [[nodiscard]] int relaxations() const { return relaxations_; }
  [[nodiscard]] int polls() const { return polls_; }
  /// Modeled total CPU cost of the runtime (polls x poll_overhead): the
  /// paper found this cost prohibitive on KNL; add it to the job runtime
  /// when comparing against static modes.
  [[nodiscard]] sim::Tick overhead_ns() const {
    return static_cast<sim::Tick>(polls_) * params_.poll_overhead;
  }

 private:
  void poll();
  /// Mean request-response latency of the job's NICs since the last poll.
  [[nodiscard]] double sample_latency();

  mpi::Machine& machine_;
  mpi::JobId job_;
  Params params_;
  routing::Mode mode_;
  bool running_ = false;
  double baseline_ = 0.0;  ///< EWMA of observed latency
  std::int64_t last_sum_ = 0;
  std::int64_t last_count_ = 0;
  std::vector<Decision> decisions_;
  int escalations_ = 0;
  int relaxations_ = 0;
  int polls_ = 0;
};

}  // namespace dfsim::core
