#include "core/report.hpp"

#include <algorithm>

#include "stats/table.hpp"

namespace dfsim::core {

void print_ratio_comparison(std::ostream& os, const std::string& label_a,
                            const std::array<double, 5>& a,
                            const std::string& label_b,
                            const std::array<double, 5>& b) {
  stats::Table t({"Tile class", label_a, label_b, "change"});
  for (int i = 0; i < 5; ++i) {
    const double chg = a[static_cast<std::size_t>(i)] > 1e-12
                           ? 100.0 * (b[static_cast<std::size_t>(i)] -
                                      a[static_cast<std::size_t>(i)]) /
                                 a[static_cast<std::size_t>(i)]
                           : 0.0;
    t.add_row({kTileRatioLabels[i], stats::fmt(a[static_cast<std::size_t>(i)], 3),
               stats::fmt(b[static_cast<std::size_t>(i)], 3),
               stats::fmt_signed(chg, 1) + "%"});
  }
  t.print(os);
}

void print_breakdown(std::ostream& os, const monitor::AutoPerfReport& rep,
                     std::span<const mpi::Op> ops) {
  const double total_rank_ms =
      rep.runtime_ms;  // per-rank wallclock == job runtime
  const double mpi_ms = sim::to_ms(rep.profile.total_mpi_ns()) /
                        std::max(1, rep.nranks);
  double shown = 0.0;
  os << "    run " << rep.app << ": runtime " << stats::fmt(total_rank_ms, 2)
     << " ms | Compute " << stats::fmt(total_rank_ms - mpi_ms, 2) << " ms";
  for (const mpi::Op op : ops) {
    const double ms =
        sim::to_ms(rep.profile.stats(op).time_ns) / std::max(1, rep.nranks);
    shown += ms;
    os << " | " << mpi::op_name(op) << " " << stats::fmt(ms, 2) << " ms";
  }
  os << " | Other_MPI " << stats::fmt(std::max(0.0, mpi_ms - shown), 2)
     << " ms\n";
}

CharacterizationRow characterize(const monitor::AutoPerfReport& rep) {
  CharacterizationRow row;
  row.app = rep.app;
  row.mpi_pct = 100.0 * rep.mpi_fraction;
  const auto top = rep.top_ops(3);
  if (top.size() > 0) row.call1 = std::string(mpi::op_name(top[0]));
  if (top.size() > 1) row.call2 = std::string(mpi::op_name(top[1]));
  if (top.size() > 2) row.call3 = std::string(mpi::op_name(top[2]));
  // Average bytes over point-to-point vs collective interfaces.
  auto avg_over = [&](std::initializer_list<mpi::Op> ops) {
    std::int64_t calls = 0, bytes = 0;
    for (const mpi::Op op : ops) {
      calls += rep.profile.stats(op).calls;
      bytes += rep.profile.stats(op).bytes;
    }
    return calls > 0 ? static_cast<double>(bytes) / static_cast<double>(calls)
                     : 0.0;
  };
  row.p2p_avg_bytes = avg_over({mpi::Op::kIsend, mpi::Op::kSend});
  row.coll_avg_bytes = avg_over({mpi::Op::kAllreduce, mpi::Op::kAlltoall,
                                 mpi::Op::kAlltoallv, mpi::Op::kBcast,
                                 mpi::Op::kReduce});
  return row;
}

void print_table2(std::ostream& os, std::span<const ComparisonRow> rows) {
  stats::Table t({"App", "AD0 mean±σ (ms)", "AD3 mean±σ (ms)",
                  "% improvement (time)", "% improvement (MPI)", "runs"});
  for (const auto& r : rows) {
    t.add_row({r.app,
               stats::fmt(r.ad0.mean, 2) + " ± " + stats::fmt(r.ad0.stddev, 2),
               stats::fmt(r.ad3.mean, 2) + " ± " + stats::fmt(r.ad3.stddev, 2),
               stats::fmt(r.time_improvement_pct, 1),
               stats::fmt(r.mpi_improvement_pct, 1), std::to_string(r.runs)});
  }
  t.print(os);
}

void print_normalized_split(std::ostream& os, const std::string& title,
                            std::span<const double> ad0,
                            std::span<const double> ad3) {
  // Normalize jointly (as the paper does per job size / app).
  std::vector<double> all(ad0.begin(), ad0.end());
  all.insert(all.end(), ad3.begin(), ad3.end());
  const auto s = stats::summarize(all);
  const double sd = s.stddev > 1e-12 ? s.stddev : 1e-12;
  auto norm = [&](std::span<const double> xs) {
    std::vector<double> out;
    for (const double x : xs) out.push_back((x - s.mean) / sd);
    return out;
  };
  const auto z0 = norm(ad0), z3 = norm(ad3);
  const auto s0 = stats::summarize(z0), s3 = stats::summarize(z3);
  os << "  " << title << "\n";
  os << "    AD0: mean z " << stats::fmt(s0.mean, 3) << "  [min "
     << stats::fmt(s0.min, 2) << ", max " << stats::fmt(s0.max, 2) << "]  n="
     << s0.n << "\n";
  os << "    AD3: mean z " << stats::fmt(s3.mean, 3) << "  [min "
     << stats::fmt(s3.min, 2) << ", max " << stats::fmt(s3.max, 2) << "]  n="
     << s3.n << "\n";
}

void print_fault_summary(std::ostream& os, const fault::FaultStats& st) {
  if (st.faults_applied == 0 && st.repairs_applied == 0) return;
  os << "  faults: " << st.faults_applied << " applied, "
     << st.repairs_applied << " repaired, " << st.recomputes
     << " route recomputes\n";
  os << "  recovery: " << st.packets_rerouted << " packets rerouted, "
     << st.packets_dropped << " dropped, " << st.messages_retried
     << " messages retried, " << st.messages_abandoned << " abandoned ("
     << st.bytes_abandoned << " bytes written off)\n";
  os << "  degraded bandwidth integral: "
     << stats::fmt(st.degraded_bw_gbs, 4) << " GB/s*s";
  if (st.dead_link_transmissions != 0)
    os << "  [INVARIANT VIOLATION: " << st.dead_link_transmissions
       << " dead-link transmissions]";
  os << "\n";
}

void print_background_summary(std::ostream& os, const BackgroundFill& bg) {
  if (bg.allocation_attempts == 0) return;  // isolated run: no fill attempted
  os << "  background: " << bg.jobs << " jobs / " << bg.total_nodes
     << " nodes, utilization " << stats::fmt(bg.achieved_utilization, 3)
     << " (target " << stats::fmt(bg.target_utilization, 3) << ", "
     << bg.allocation_attempts << " attempts, " << bg.allocation_failures
     << " failed)";
  if (bg.undershot()) os << "  [UNDERSHOT]";
  os << "\n";
}

void print_system_summary(std::ostream& os, const SystemRunResult& res) {
  const auto& st = res.stats;
  os << "  stream: " << st.completed << "/" << st.total << " jobs completed"
     << (res.ok ? "" : " [INCOMPLETE: " + res.fail_reason + "]") << "\n";
  os << "  queueing: mean wait " << stats::fmt(st.mean_wait_us, 1)
     << " us, max wait " << stats::fmt(st.max_wait_us, 1) << " us, "
     << st.backfilled << " backfilled\n";
  os << "  makespan " << stats::fmt(sim::to_ms(st.makespan), 3)
     << " ms, peak utilization " << stats::fmt(st.peak_utilization, 3)
     << "\n";
  print_fault_summary(os, res.faults);
}

void print_cache_summary(std::ostream& os, const campaign::CacheStats& st) {
  if (st.hits + st.misses + st.stores == 0) return;
  os << "  cache: " << st.hits << " hits (" << st.mem_hits << " memory) / "
     << st.misses << " misses, hit rate "
     << stats::fmt(100.0 * st.hit_rate(), 1) << "%";
  if (st.corrupt > 0) os << ", " << st.corrupt << " corrupt entries rejected";
  os << ", " << st.stores << " stored, "
     << stats::fmt(static_cast<double>(st.bytes_read) / 1024.0, 1)
     << " KiB read / "
     << stats::fmt(static_cast<double>(st.bytes_written) / 1024.0, 1)
     << " KiB written\n";
  if (st.gc_removed + st.gc_kept > 0) {
    os << "  cache gc: pruned " << st.gc_removed << " entries ("
       << stats::fmt(static_cast<double>(st.gc_removed_bytes) / 1024.0, 1)
       << " KiB), kept " << st.gc_kept << " ("
       << stats::fmt(static_cast<double>(st.gc_kept_bytes) / 1024.0, 1)
       << " KiB)\n";
  }
}

}  // namespace dfsim::core
