#include "core/interference.hpp"

#include <algorithm>
#include <cstdio>

#include "apps/registry.hpp"
#include "sched/scheduler.hpp"
#include "stats/table.hpp"

namespace dfsim::core {

namespace {

struct CellRun {
  bool ok = false;
  std::string fail_reason;
  double victim_ms = 0.0;
};

/// One machine, victim A (allocated and submitted first, so its node set
/// and rank seeds match the baseline run with the same seed), optionally
/// aggressor B with extra iterations so it outlives A. Measures A only.
CellRun run_cell(const InterferenceConfig& cfg, const std::string& app_a,
                 const std::string& app_b, routing::Mode mode,
                 std::uint64_t seed, int shards) {
  CellRun out;
  sched::Scheduler sched(cfg.system, seed, shards, cfg.shard_workers);
  auto& machine = sched.machine();
  machine.set_event_budget(cfg.event_budget);
  machine.network().apply_fault_plan(cfg.faults);  // empty plan: no-op

  auto nodes_a =
      sched.allocator().allocate(cfg.nnodes, cfg.placement, sched.rng());
  if (nodes_a.empty()) {
    out.fail_reason = "allocation failed for victim " + app_a;
    return out;
  }
  std::vector<topo::NodeId> nodes_b;
  if (!app_b.empty()) {
    nodes_b =
        sched.allocator().allocate(cfg.nnodes, cfg.placement, sched.rng());
    if (nodes_b.empty()) {
      out.fail_reason = "pair does not fit: 2x" + std::to_string(cfg.nnodes) +
                        " nodes on " + cfg.system.name;
      return out;
    }
  }

  const mpi::JobId id_a =
      sched.submit_app_on(app_a, std::move(nodes_a), mode, cfg.params);
  if (!app_b.empty()) {
    apps::AppParams pb = cfg.params;
    pb.iterations = std::max(1, pb.iterations * 3);
    sched.submit_app_on(app_b, std::move(nodes_b), mode, pb);
  }

  const mpi::JobId watch[] = {id_a};
  if (!machine.run_to_completion(watch)) {
    out.fail_reason = machine.budget_exhausted()
                          ? "event budget exhausted"
                          : "run stopped before victim completion";
    return out;
  }
  out.ok = true;
  out.victim_ms = sim::to_ms(machine.job(id_a).runtime());
  return out;
}

}  // namespace

InterferenceMatrix run_interference_matrix(const InterferenceConfig& cfg,
                                           int jobs) {
  InterferenceMatrix m;
  m.modes = cfg.modes;
  m.apps = cfg.apps.empty() ? apps::paper_app_names() : cfg.apps;
  const int nm = static_cast<int>(m.modes.size());
  const int na = static_cast<int>(m.apps.size());
  if (nm == 0 || na == 0) return m;

  // One seed per (mode, victim): the baseline and every pair run sharing a
  // victim must draw the victim's allocation identically.
  const auto seeds = derive_trial_seeds(cfg.seed, nm * na);
  ScenarioConfig probe;
  probe.shards = cfg.shards;
  const int shards = probe.resolve().shards;

  TrialRunner base_runner(jobs);
  const auto baselines = base_runner.map(nm * na, [&](int i) {
    const int mi = i / na, ai = i % na;
    return run_cell(cfg, m.apps[static_cast<std::size_t>(ai)], "",
                    m.modes[static_cast<std::size_t>(mi)],
                    seeds[static_cast<std::size_t>(i)], shards);
  });
  TrialRunner pair_runner(jobs);
  const auto pairs = pair_runner.map(nm * na * na, [&](int i) {
    const int mi = i / (na * na), ai = (i / na) % na, bi = i % na;
    return run_cell(cfg, m.apps[static_cast<std::size_t>(ai)],
                    m.apps[static_cast<std::size_t>(bi)],
                    m.modes[static_cast<std::size_t>(mi)],
                    seeds[static_cast<std::size_t>(mi * na + ai)], shards);
  });

  m.cells.resize(static_cast<std::size_t>(nm * na * na));
  for (int mi = 0; mi < nm; ++mi)
    for (int ai = 0; ai < na; ++ai) {
      const auto& alone = baselines[static_cast<std::size_t>(mi * na + ai)];
      for (int bi = 0; bi < na; ++bi) {
        const auto idx = static_cast<std::size_t>((mi * na + ai) * na + bi);
        const auto& with = pairs[idx];
        InterferenceCell& c = m.cells[idx];
        c.app_a = m.apps[static_cast<std::size_t>(ai)];
        c.app_b = m.apps[static_cast<std::size_t>(bi)];
        c.mode = m.modes[static_cast<std::size_t>(mi)];
        c.alone_ms = alone.victim_ms;
        c.with_ms = with.victim_ms;
        if (!alone.ok)
          c.fail_reason = "baseline: " + alone.fail_reason;
        else if (!with.ok)
          c.fail_reason = with.fail_reason;
        else if (alone.victim_ms <= 0.0)
          c.fail_reason = "degenerate baseline runtime";
        else {
          c.ok = true;
          c.slowdown = with.victim_ms / alone.victim_ms;
        }
      }
    }
  return m;
}

void print_interference_matrix(std::ostream& os,
                               const InterferenceMatrix& m) {
  const int na = static_cast<int>(m.apps.size());
  for (int mi = 0; mi < static_cast<int>(m.modes.size()); ++mi) {
    os << "  mode " << routing::mode_name(m.modes[static_cast<std::size_t>(mi)])
       << " — slowdown of A (rows) when colocated with B (columns)\n";
    std::vector<std::string> header = {"A \\ B", "alone ms"};
    for (const auto& b : m.apps) header.push_back(b);
    stats::Table t(header);
    for (int ai = 0; ai < na; ++ai) {
      const auto& first = m.cell(mi, ai, 0);
      std::vector<std::string> row = {m.apps[static_cast<std::size_t>(ai)],
                                      stats::fmt(first.alone_ms, 2)};
      for (int bi = 0; bi < na; ++bi) {
        const auto& c = m.cell(mi, ai, bi);
        row.push_back(c.ok ? stats::fmt(c.slowdown, 3) : "fail");
      }
      t.add_row(row);
    }
    t.print(os);
  }
}

void write_interference_csv(std::ostream& os, const InterferenceMatrix& m) {
  os << "mode,app_a,app_b,ok,alone_ms,with_ms,slowdown\n";
  char buf[160];
  for (const auto& c : m.cells) {
    std::snprintf(buf, sizeof buf, "%s,%s,%s,%d,%.17g,%.17g,%.17g\n",
                  std::string(routing::mode_name(c.mode)).c_str(),
                  c.app_a.c_str(), c.app_b.c_str(), c.ok ? 1 : 0, c.alone_ms,
                  c.with_ms, c.slowdown);
    os << buf;
  }
}

}  // namespace dfsim::core
