// Deterministic parallel trial runner.
//
// Ensemble experiments (the paper's repeated-run campaigns behind Figs.
// 2-14) are embarrassingly parallel: every trial owns a complete
// Scheduler -> Machine -> Engine -> Network stack and shares no mutable
// state with any other trial (see the static_asserts in runner.cpp).
// TrialRunner fans independent trials out across std::thread workers.
//
// Determinism contract: per-trial seeds are derived *up front* from the
// root seed (derive_trial_seeds(), the same sequence the historical serial
// loop drew), each trial consumes only its own seed, and results are
// written into a slot chosen by submission index. Output is therefore
// bit-identical for every worker count and completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace dfsim::core {

/// Per-trial execution record: what happened to sample `index` of a batch,
/// whether or not the simulation succeeded. Batches never silently drop
/// failed trials — callers see every requested sample accounted for.
struct TrialReport {
  int index = -1;              ///< submission index within the batch
  bool ok = false;
  std::string fail_reason;     ///< empty when ok
  double wall_ms = 0.0;        ///< host wall-clock spent on this trial
  std::uint64_t events = 0;    ///< engine events executed by this trial
  bool budget_exhausted = false;  ///< trial hit its event budget
};

/// Aggregate throughput of one batch run.
struct RunnerStats {
  int jobs = 1;       ///< worker threads used
  int trials = 0;     ///< trials executed
  double wall_ms = 0.0;  ///< batch wall-clock
  [[nodiscard]] double trials_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(trials) / wall_ms
                         : 0.0;
  }
};

/// Resolve a --jobs style request: n >= 1 is taken as-is, anything else
/// (0, negative) means "one worker per hardware thread".
int resolve_jobs(int requested);

/// Derive `n` per-trial seeds from `root_seed`. This is exactly the
/// sequence the serial batch loop has always drawn (`sim::Rng(root).next()`
/// per trial), so parallel batches reproduce historical serial results.
std::vector<std::uint64_t> derive_trial_seeds(std::uint64_t root_seed, int n);

class TrialRunner {
 public:
  /// `jobs` as for resolve_jobs(); the default uses every hardware thread.
  explicit TrialRunner(int jobs = 0) : jobs_(resolve_jobs(jobs)) {}

  [[nodiscard]] int jobs() const { return jobs_; }
  /// Stats of the most recent map() call.
  [[nodiscard]] const RunnerStats& stats() const { return stats_; }

  /// Run fn(i) for i in [0, n) across the workers and return the results
  /// in submission (index) order, regardless of completion order. The
  /// result type must be default-constructible and move-assignable. A
  /// trial that throws aborts the batch with the first exception's message
  /// (model-level failures should be encoded in the result instead).
  template <class Fn>
  auto map(int n, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, int>> {
    using R = std::invoke_result_t<Fn&, int>;
    static_assert(std::is_default_constructible_v<R> &&
                  std::is_move_assignable_v<R>);
    std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
    std::function<void(int)> body = [&out, &fn](int i) {
      out[static_cast<std::size_t>(i)] = fn(i);
    };
    dispatch(n, body);
    return out;
  }

  /// map() plus an in-order commit stream: `commit(i, r)` is invoked for
  /// every index in STRICT submission order (0, 1, 2, ...) as soon as all
  /// earlier indices have committed — regardless of which worker finished
  /// which trial first. Commits are serialized under an internal lock and
  /// run on whichever worker completed the unblocking trial; `r` is a
  /// mutable reference into the result vector, so a commit that has
  /// persisted the result may shrink it in place to bound batch memory.
  /// An exception from fn or commit aborts the batch like map() — the
  /// commit stream then ends as a valid prefix (no index is ever skipped),
  /// which is exactly the journal invariant resumable sweeps need.
  template <class Fn, class Commit>
  auto map_streamed(int n, Fn&& fn, Commit&& commit)
      -> std::vector<std::invoke_result_t<Fn&, int>> {
    using R = std::invoke_result_t<Fn&, int>;
    static_assert(std::is_default_constructible_v<R> &&
                  std::is_move_assignable_v<R>);
    std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
    std::vector<char> ready(out.size(), 0);
    std::mutex mu;
    int next = 0;          // first index not yet committed
    bool dead = false;     // a commit threw: no worker may commit again
    std::function<void(int)> body = [&](int i) {
      R r = fn(i);
      const std::lock_guard<std::mutex> lock(mu);
      out[static_cast<std::size_t>(i)] = std::move(r);
      ready[static_cast<std::size_t>(i)] = 1;
      while (!dead && next < n && ready[static_cast<std::size_t>(next)] != 0) {
        try {
          commit(next, out[static_cast<std::size_t>(next)]);
        } catch (...) {
          dead = true;  // later workers must not retry this index
          throw;
        }
        ++next;
      }
    };
    dispatch(n, body);
    return out;
  }

 private:
  /// Run body(i) for i in [0, n) on min(jobs, n) workers; rethrows the
  /// first trial exception (if any) after all workers joined.
  void dispatch(int n, const std::function<void(int)>& body);

  int jobs_;
  RunnerStats stats_;
};

}  // namespace dfsim::core
