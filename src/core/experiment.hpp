// Experiment harness reproducing the paper's three measurement conditions
// (Section V-A.1):
//  * production — the app under test runs alongside a synthetic background
//    workload sampled from the Fig. 1 job mix, all background jobs on the
//    system-default routing mode;
//  * isolated   — the app alone on the machine;
//  * controlled — an ensemble of identical jobs filling the system (the
//    paper's full-system reservation experiments), with LDMS sampling.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "monitor/autoperf.hpp"
#include "monitor/ldms.hpp"
#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "topo/config.hpp"

namespace dfsim::core {

struct ProductionConfig {
  topo::Config system = topo::Config::theta();
  std::string app = "MILC";
  int nnodes = 256;
  routing::Mode mode = routing::Mode::kAd0;  ///< mode of the app under test
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kRandom;
  int target_groups = 0;  ///< for Placement::kGroups
  double bg_utilization = 0.75;  ///< 0 => isolated run
  routing::Mode bg_mode = routing::Mode::kAd0;  ///< system default mode
  sim::Tick warmup = 300 * sim::kMicrosecond;   ///< background ramp-up
  std::uint64_t seed = 1;
};

struct RunResult {
  bool ok = false;
  double runtime_ms = 0.0;
  int groups_spanned = 0;
  monitor::AutoPerfReport autoperf;
  net::CounterSnapshot global;  ///< whole-system delta over the run window
  net::NetworkStats netstats;
  double flit_time_ns = 1.0;

  /// Stall-to-flit ratios in Fig. 6 order:
  /// {Rank3, Rank2, Rank1, Proc_req, Proc_rsp} from the local (AutoPerf)
  /// counters.
  [[nodiscard]] std::array<double, 5> local_stall_ratios() const;
};

/// Fig. 6 / Fig. 10 row labels matching local_stall_ratios() order.
extern const char* const kTileRatioLabels[5];
std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   double flit_time_ns);

RunResult run_production(const ProductionConfig& cfg);

/// `samples` runs with derived seeds; failed runs are skipped.
std::vector<RunResult> run_production_batch(ProductionConfig cfg, int samples);

struct EnsembleConfig {
  topo::Config system = topo::Config::theta();
  std::string app = "MILC";
  int njobs = 8;
  int nnodes = 256;
  routing::Mode mode = routing::Mode::kAd0;
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kCompact;
  int target_groups = 0;
  sim::Tick ldms_period = 200 * sim::kMicrosecond;
  std::uint64_t seed = 1;
};

struct EnsembleResult {
  bool ok = false;
  std::vector<double> runtimes_ms;
  net::CounterSnapshot total;
  std::vector<monitor::LdmsSample> ldms;
  std::vector<monitor::TileCounters> tiles;
  net::NetworkStats netstats;
  double flit_time_ns = 1.0;
};

EnsembleResult run_controlled(const EnsembleConfig& cfg);

/// Default per-run event budget (guards runaway configurations).
inline constexpr std::uint64_t kEventBudget = 600'000'000ULL;

}  // namespace dfsim::core
