// Experiment harness reproducing the paper's three measurement conditions
// (Section V-A.1):
//  * production — the app under test runs alongside a synthetic background
//    workload sampled from the Fig. 1 job mix, all background jobs on the
//    system-default routing mode;
//  * isolated   — the app alone on the machine;
//  * controlled — an ensemble of identical jobs filling the system (the
//    paper's full-system reservation experiments), with LDMS sampling.
//
// Batch entry points (run_production_ensemble / run_controlled_ensemble)
// fan the requested samples out across a core::TrialRunner thread pool.
// Per-trial seeds are derived up front from the root seed, so batch output
// is bit-identical for every worker count — and identical to the
// historical serial loop. Failed trials are never dropped: every requested
// sample appears in the results (with `ok == false` and a fail reason) and
// in the per-trial reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/runner.hpp"
#include "fault/fault.hpp"
#include "monitor/autoperf.hpp"
#include "monitor/ldms.hpp"
#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "sched/system.hpp"
#include "topo/config.hpp"

namespace dfsim::core {

/// Default per-run event budget (guards runaway configurations).
inline constexpr std::uint64_t kEventBudget = 600'000'000ULL;

/// Which measurement condition a ScenarioConfig describes.
enum class ScenarioKind {
  kProduction,  ///< app under test + synthetic background (bg 0 => isolated)
  kControlled,  ///< full-system reservation: njobs identical jobs + LDMS
  kSystem,      ///< long-horizon job stream through the queueing scheduler
};

/// One unified run description for every measurement condition. Construct
/// via the factories (ScenarioConfig::production() / ::controlled()), the
/// fluent Scenario builder, or the legacy ProductionConfig/EnsembleConfig
/// aliases — all of them produce this struct; run_production() and
/// run_controlled() consume it directly. Fields a condition does not use
/// are simply ignored (njobs/ldms_period in production runs; background
/// and warmup fields in controlled runs).
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kProduction;
  topo::Config system = topo::Config::theta();
  std::string app = "MILC";
  int nnodes = 256;
  int njobs = 8;  ///< controlled only: identical jobs filling the system
  routing::Mode mode = routing::Mode::kAd0;  ///< mode of the app under test
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kRandom;
  int target_groups = 0;  ///< for Placement::kGroups
  double bg_utilization = 0.75;  ///< production only; 0 => isolated run
  routing::Mode bg_mode = routing::Mode::kAd0;  ///< system default mode
  /// Placement mix of the synthetic background jobs (production only):
  /// kMixed = the legacy 70% random / 30% compact sampling, kRandom /
  /// kCompact force one policy for every background job. Changes traffic,
  /// so it is part of the scenario (CSV column, fingerprint input).
  sched::BgPlacement bg_placement = sched::BgPlacement::kMixed;
  sim::Tick warmup = 300 * sim::kMicrosecond;   ///< background ramp-up
  sim::Tick ldms_period = 200 * sim::kMicrosecond;  ///< controlled only
  std::uint64_t seed = 1;
  std::uint64_t event_budget = kEventBudget;  ///< per-run engine event cap
  /// Execution substrate: 0 = legacy serial engine, N >= 1 = sharded with N
  /// shards (byte-identical for every N >= 1; see mpi::Machine). -1 reads
  /// the DFSIM_TEST_SHARDS environment variable (else 0), which is how CI
  /// runs the whole suite sharded without touching every harness; the
  /// sniffing happens exactly once, in resolve().
  int shards = -1;
  /// Executor threads for the sharded substrate (ignored when shards == 0):
  /// 0 = auto (DFSIM_SHARD_WORKERS env, else one per hardware thread),
  /// N >= 1 = exactly min(N, shards) executors. Wall-clock only — results
  /// are byte-identical for every worker count.
  int shard_workers = 0;
  /// Load-aware shard partitioning (ignored when shards == 0): after
  /// placement and background fill, re-partition the shard plan so each
  /// shard's blocks carry roughly equal busy-node weight instead of equal
  /// group counts (topo::ShardPlan::build_weighted via
  /// mpi::Machine::rebalance_shards). Wall-clock only — the window grid is
  /// partition-independent, so results are byte-identical either way; the
  /// switch exists for A/B tests and bench comparisons.
  bool shard_balance = true;
  /// A/B switch for the sharded engine's in-run merges (the last barrier
  /// arriver merges mail inline and continues the fused run; see
  /// sim::ShardedEngine). Wall-clock only — windows, merges, and results
  /// are byte-identical either way — so it is neither a CSV column nor a
  /// fingerprint input.
  bool shard_inline_merge = true;
  /// Scripted fault injection (failures / degradations / repairs applied at
  /// simulated times). Empty (the default) leaves every fault path dormant
  /// and the run byte-identical to a fault-free build.
  fault::FaultPlan faults;
  /// Optional: per-event-kind profile the network fills during the run
  /// (caller keeps ownership; attaching adds two clock reads per event).
  net::EventProfile* event_profile = nullptr;
  /// Forwarding-plane event coalescing (fused per-hop event pairs). On by
  /// default; a pure perf transform — tests pin that switching it off
  /// yields byte-identical results.
  bool coalesce_events = true;
  /// Optional: fired once right after the warmup window, before the app
  /// under test is submitted — marks the steady-state boundary (the
  /// perf harness counts allocations from here).
  std::function<void(const sim::Engine&)> on_measurement_start;
  /// Optional: replaces the measurement phase's run_to_completion(watch)
  /// call. The driver must leave the machine in the state an unbounded
  /// run_to_completion would have (campaign checkpointing slices the run
  /// with Machine::run_to_completion_until, which guarantees exactly that)
  /// and return its completion flag. Runtime-only, like the callbacks
  /// above: never serialized, never part of the scenario fingerprint.
  std::function<bool(mpi::Machine&, std::span<const mpi::JobId>)>
      completion_driver;

  // --- System-mode (kSystem) knobs, ignored by the other conditions ---
  int sys_jobs = 50;  ///< length of the arrival stream
  sim::Tick sys_interarrival = 40 * sim::kMicrosecond;  ///< mean (exponential)
  bool sys_backfill = true;       ///< liberal backfill vs strict FCFS
  double sys_ad3_fraction = 0.25; ///< share of jobs opting into AD3

  /// Production-condition defaults (random placement, 75% background).
  [[nodiscard]] static ScenarioConfig production();
  /// Controlled-reservation defaults (compact placement, no background).
  [[nodiscard]] static ScenarioConfig controlled();
  /// System-mode defaults (50-job stream, backfill on).
  [[nodiscard]] static ScenarioConfig system_mode();

  /// Returns a copy with every deferred field made concrete —
  /// `shards == -1` resolved through DFSIM_TEST_SHARDS (absent or invalid:
  /// 0 = serial) and `system.kind == kDefault` resolved through
  /// DFSIM_TEST_TOPO (absent or invalid: dragonfly), which is how CI runs
  /// the whole suite on an alternate topology without touching every
  /// harness. The run entry points call this once; nothing downstream ever
  /// re-sniffs the environment. An explicitly-set topology kind always
  /// wins over the environment.
  [[nodiscard]] ScenarioConfig resolve() const;
};

/// Fluent builder over ScenarioConfig:
///   run_production(Scenario::production().app("MILC").mode(kAd3).faults(p));
/// Every setter returns *this; the builder converts implicitly to the
/// underlying config.
class Scenario {
 public:
  [[nodiscard]] static Scenario production() {
    return Scenario(ScenarioConfig::production());
  }
  [[nodiscard]] static Scenario controlled() {
    return Scenario(ScenarioConfig::controlled());
  }
  [[nodiscard]] static Scenario system_mode() {
    return Scenario(ScenarioConfig::system_mode());
  }

  Scenario& system(topo::Config s) { cfg_.system = std::move(s); return *this; }
  Scenario& app(std::string name) { cfg_.app = std::move(name); return *this; }
  Scenario& nnodes(int n) { cfg_.nnodes = n; return *this; }
  Scenario& njobs(int n) { cfg_.njobs = n; return *this; }
  Scenario& mode(routing::Mode m) { cfg_.mode = m; return *this; }
  Scenario& params(apps::AppParams p) { cfg_.params = std::move(p); return *this; }
  Scenario& placement(sched::Placement p, int target_groups = 0) {
    cfg_.placement = p;
    cfg_.target_groups = target_groups;
    return *this;
  }
  Scenario& background(double utilization,
                       routing::Mode m = routing::Mode::kAd0) {
    cfg_.bg_utilization = utilization;
    cfg_.bg_mode = m;
    return *this;
  }
  Scenario& bg_placement(sched::BgPlacement p) {
    cfg_.bg_placement = p;
    return *this;
  }
  Scenario& warmup(sim::Tick t) { cfg_.warmup = t; return *this; }
  Scenario& ldms_period(sim::Tick t) { cfg_.ldms_period = t; return *this; }
  Scenario& seed(std::uint64_t s) { cfg_.seed = s; return *this; }
  Scenario& event_budget(std::uint64_t n) { cfg_.event_budget = n; return *this; }
  Scenario& shards(int n) { cfg_.shards = n; return *this; }
  Scenario& shard_workers(int n) { cfg_.shard_workers = n; return *this; }
  Scenario& shard_balance(bool on) { cfg_.shard_balance = on; return *this; }
  Scenario& shard_inline_merge(bool on) {
    cfg_.shard_inline_merge = on;
    return *this;
  }
  Scenario& faults(fault::FaultPlan plan) {
    cfg_.faults = std::move(plan);
    return *this;
  }
  Scenario& coalesce_events(bool on) { cfg_.coalesce_events = on; return *this; }
  Scenario& sys_jobs(int n) { cfg_.sys_jobs = n; return *this; }
  Scenario& sys_interarrival(sim::Tick t) { cfg_.sys_interarrival = t; return *this; }
  Scenario& sys_backfill(bool on) { cfg_.sys_backfill = on; return *this; }
  Scenario& sys_ad3_fraction(double f) { cfg_.sys_ad3_fraction = f; return *this; }

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  operator const ScenarioConfig&() const { return cfg_; }  // NOLINT(google-explicit-constructor)

 private:
  explicit Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {}
  ScenarioConfig cfg_;
};

/// Deprecated alias for ScenarioConfig with production-condition defaults;
/// kept so existing call sites compile unchanged. New code should use
/// ScenarioConfig / Scenario directly.
struct ProductionConfig : ScenarioConfig {
  ProductionConfig() : ScenarioConfig(ScenarioConfig::production()) {}
  ProductionConfig(const ScenarioConfig& c) : ScenarioConfig(c) {}  // NOLINT(google-explicit-constructor)
};

/// Execution-substrate observability for a sharded run (all zeros for a
/// serial run). Everything here is about *how* the trial executed — wall
/// time, barrier overhead, load balance — and none of it feeds back into
/// results, which are byte-identical for every shard count.
struct ShardExecStats {
  int shards = 0;             ///< 0 = legacy serial engine ran the trial
  int workers = 0;            ///< executor threads actually used
  int workers_requested = 0;  ///< executor threads the scenario asked for
  sim::Tick lookahead = 0;  ///< window width (min cross-shard latency)
  std::uint64_t windows = 0;
  std::uint64_t merges = 0;  ///< barriers whose mailboxes were merged
  /// Windows the executors entered straight from the barrier path (inline
  /// merge or no-op barrier) without a coordinator round-trip; the
  /// remaining `windows - windows_fused` runs paid a full pool relaunch.
  std::uint64_t windows_fused = 0;
  std::uint64_t mail_records = 0;    ///< cross-shard records merged
  std::uint64_t mail_posted = 0;     ///< records posted (pre-compaction)
  std::uint64_t mail_compacted = 0;  ///< increments folded by accumulation
  std::int64_t barrier_wait_ns = 0;  ///< coordinator wall time parked
  /// Window-coordination time on the coordinating thread (merges, barrier
  /// decisions, planning) — nonzero on the single-worker path too, where it
  /// is the honest window-overhead figure barrier_wait_ns cannot show.
  std::int64_t coord_ns = 0;
  std::vector<std::uint64_t> shard_events;  ///< events executed per shard
  std::vector<std::int64_t> executor_busy_ns;  ///< per executor, event time
  std::vector<std::int64_t> executor_wait_ns;  ///< per executor, barrier wait

  /// Load-balance figure of merit: max(shard_events) / mean(shard_events).
  /// 1.0 is a perfectly even split; the speedup ceiling at W >= shards
  /// workers is roughly shards / imbalance. Returns 1.0 for serial runs.
  [[nodiscard]] double shard_imbalance() const {
    if (shard_events.empty()) return 1.0;
    std::uint64_t total = 0, mx = 0;
    for (const std::uint64_t e : shard_events) {
      total += e;
      if (e > mx) mx = e;
    }
    if (total == 0) return 1.0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(shard_events.size());
    return static_cast<double>(mx) / mean;
  }
};

/// What the background fill actually achieved (production runs). The fill
/// can undershoot its target on a fragmented or nearly full machine; these
/// numbers let reports state the achieved load instead of the requested one.
struct BackgroundFill {
  int jobs = 0;
  int total_nodes = 0;
  double target_utilization = 0.0;
  double achieved_utilization = 0.0;
  int allocation_attempts = 0;
  int allocation_failures = 0;

  [[nodiscard]] bool undershot() const {
    return achieved_utilization < target_utilization - 1e-9;
  }
};

struct RunResult {
  bool ok = false;
  std::string fail_reason;  ///< why the run failed (empty when ok)
  double runtime_ms = 0.0;
  int groups_spanned = 0;
  BackgroundFill background;  ///< achieved background load (production)
  monitor::AutoPerfReport autoperf;
  net::CounterSnapshot global;  ///< whole-system delta over the run window
  net::NetworkStats netstats;
  net::FlitTimes flit_times;    ///< per-tile-class flit serialization times
  std::uint64_t events_executed = 0;
  bool budget_exhausted = false;
  ShardExecStats shard_exec;  ///< substrate observability (zeros if serial)
  fault::FaultStats faults;   ///< all-zero unless the scenario had a plan

  /// Stall-to-flit ratios in Fig. 6 order:
  /// {Rank3, Rank2, Rank1, Proc_req, Proc_rsp} from the local (AutoPerf)
  /// counters, each class converted at its own link bandwidth.
  [[nodiscard]] std::array<double, 5> local_stall_ratios() const;
};

/// Fig. 6 / Fig. 10 row labels matching local_stall_ratios() order.
extern const char* const kTileRatioLabels[5];
std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   const net::FlitTimes& ft);

RunResult run_production(const ScenarioConfig& cfg);

/// Parallel batch controls.
struct BatchOptions {
  int jobs = 0;  ///< worker threads; <=0 means one per hardware thread
};

/// One batch of production runs: every requested sample is present in
/// submission order (failed runs keep their slot with ok == false).
struct BatchResult {
  std::vector<RunResult> results;   ///< in submission order, size == samples
  std::vector<TrialReport> trials;  ///< parallel to `results`
  RunnerStats stats;

  [[nodiscard]] int failures() const {
    int n = 0;
    for (const auto& r : results) n += r.ok ? 0 : 1;
    return n;
  }
};

/// `samples` production runs with seeds derived from cfg.seed, fanned out
/// across opts.jobs worker threads. Bit-identical results for any jobs
/// value (including 1).
BatchResult run_production_ensemble(const ScenarioConfig& cfg, int samples,
                                    const BatchOptions& opts = {});

/// Convenience wrapper around run_production_ensemble() returning just the
/// per-sample results (still in submission order, still including failed
/// runs — check RunResult::ok before using a sample's measurements).
std::vector<RunResult> run_production_batch(const ScenarioConfig& cfg,
                                            int samples, int jobs = 0);

/// Deprecated alias for ScenarioConfig with controlled-reservation defaults;
/// kept so existing call sites compile unchanged.
struct EnsembleConfig : ScenarioConfig {
  EnsembleConfig() : ScenarioConfig(ScenarioConfig::controlled()) {}
  EnsembleConfig(const ScenarioConfig& c) : ScenarioConfig(c) {}  // NOLINT(google-explicit-constructor)
};

struct EnsembleResult {
  bool ok = false;
  std::string fail_reason;  ///< why the run failed (empty when ok)
  std::vector<double> runtimes_ms;
  net::CounterSnapshot total;
  std::vector<monitor::LdmsSample> ldms;
  std::vector<monitor::TileCounters> tiles;
  net::NetworkStats netstats;
  net::FlitTimes flit_times;
  std::uint64_t events_executed = 0;
  bool budget_exhausted = false;
  fault::FaultStats faults;  ///< all-zero unless the scenario had a plan
};

EnsembleResult run_controlled(const ScenarioConfig& cfg);

/// Result of one system-mode run: the full per-job records of the arrival
/// stream plus queueing aggregates.
struct SystemRunResult {
  bool ok = false;
  std::string fail_reason;  ///< why the run failed (empty when ok)
  sched::SystemStats stats;
  std::vector<sched::SystemJobRecord> jobs;  ///< arrival order
  std::uint64_t events_executed = 0;
  bool budget_exhausted = false;
  fault::FaultStats faults;  ///< all-zero unless the scenario had a plan
};

/// Drive a kSystem scenario: sample an arrival stream from the sys_* knobs
/// and run it through the queueing scheduler until every job completes.
SystemRunResult run_system(const ScenarioConfig& cfg);

/// One batch of controlled-ensemble runs (each sample is a full-system
/// reservation simulation with its own derived seed).
struct EnsembleBatchResult {
  std::vector<EnsembleResult> results;  ///< submission order, size == samples
  std::vector<TrialReport> trials;      ///< parallel to `results`
  RunnerStats stats;

  [[nodiscard]] int failures() const {
    int n = 0;
    for (const auto& r : results) n += r.ok ? 0 : 1;
    return n;
  }
};

/// `samples` controlled runs with seeds derived from cfg.seed, fanned out
/// across opts.jobs worker threads; same determinism guarantee as
/// run_production_ensemble().
EnsembleBatchResult run_controlled_ensemble(const ScenarioConfig& cfg,
                                            int samples,
                                            const BatchOptions& opts = {});

/// CSV persistence for ScenarioConfig. Round-trips every scalar field plus
/// the fault plan (encoded "at:kind:router:port:factor|..." in one cell).
/// The system is restored by preset name (theta, cori, mini, theta_scaled,
/// cori_scaled, slingshot_like); non-preset shapes come back as the nearest
/// preset by name, so persist those separately if you customize topology.
std::vector<std::string> scenario_csv_columns();
std::vector<std::string> scenario_csv_row(const ScenarioConfig& cfg);
ScenarioConfig scenario_from_csv(const std::vector<std::string>& cells);

}  // namespace dfsim::core
