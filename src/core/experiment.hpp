// Experiment harness reproducing the paper's three measurement conditions
// (Section V-A.1):
//  * production — the app under test runs alongside a synthetic background
//    workload sampled from the Fig. 1 job mix, all background jobs on the
//    system-default routing mode;
//  * isolated   — the app alone on the machine;
//  * controlled — an ensemble of identical jobs filling the system (the
//    paper's full-system reservation experiments), with LDMS sampling.
//
// Batch entry points (run_production_ensemble / run_controlled_ensemble)
// fan the requested samples out across a core::TrialRunner thread pool.
// Per-trial seeds are derived up front from the root seed, so batch output
// is bit-identical for every worker count — and identical to the
// historical serial loop. Failed trials are never dropped: every requested
// sample appears in the results (with `ok == false` and a fail reason) and
// in the per-trial reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/runner.hpp"
#include "monitor/autoperf.hpp"
#include "monitor/ldms.hpp"
#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "topo/config.hpp"

namespace dfsim::core {

/// Default per-run event budget (guards runaway configurations).
inline constexpr std::uint64_t kEventBudget = 600'000'000ULL;

struct ProductionConfig {
  topo::Config system = topo::Config::theta();
  std::string app = "MILC";
  int nnodes = 256;
  routing::Mode mode = routing::Mode::kAd0;  ///< mode of the app under test
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kRandom;
  int target_groups = 0;  ///< for Placement::kGroups
  double bg_utilization = 0.75;  ///< 0 => isolated run
  routing::Mode bg_mode = routing::Mode::kAd0;  ///< system default mode
  sim::Tick warmup = 300 * sim::kMicrosecond;   ///< background ramp-up
  std::uint64_t seed = 1;
  std::uint64_t event_budget = kEventBudget;  ///< per-run engine event cap
  /// Execution substrate: 0 = legacy serial engine, N >= 1 = sharded with N
  /// shards (byte-identical for every N >= 1; see mpi::Machine). -1 reads
  /// the DFSIM_TEST_SHARDS environment variable (else 0), which is how CI
  /// runs the whole suite sharded without touching every harness.
  int shards = -1;
  /// Optional: per-event-kind profile the network fills during the run
  /// (caller keeps ownership; attaching adds two clock reads per event).
  net::EventProfile* event_profile = nullptr;
  /// Forwarding-plane event coalescing (fused per-hop event pairs). On by
  /// default; a pure perf transform — tests pin that switching it off
  /// yields byte-identical results.
  bool coalesce_events = true;
  /// Optional: fired once right after the warmup window, before the app
  /// under test is submitted — marks the steady-state boundary (the
  /// perf harness counts allocations from here).
  std::function<void(const sim::Engine&)> on_measurement_start;
};

/// Execution-substrate observability for a sharded run (all zeros for a
/// serial run). Everything here is about *how* the trial executed — wall
/// time, barrier overhead, load balance — and none of it feeds back into
/// results, which are byte-identical for every shard count.
struct ShardExecStats {
  int shards = 0;           ///< 0 = legacy serial engine ran the trial
  int workers = 0;          ///< executor threads actually used
  sim::Tick lookahead = 0;  ///< window width (min cross-shard latency)
  std::uint64_t windows = 0;
  std::uint64_t mail_records = 0;   ///< cross-shard records merged
  std::int64_t barrier_wait_ns = 0; ///< coordinator wall time parked
  std::vector<std::uint64_t> shard_events;  ///< events executed per shard
};

struct RunResult {
  bool ok = false;
  std::string fail_reason;  ///< why the run failed (empty when ok)
  double runtime_ms = 0.0;
  int groups_spanned = 0;
  monitor::AutoPerfReport autoperf;
  net::CounterSnapshot global;  ///< whole-system delta over the run window
  net::NetworkStats netstats;
  net::FlitTimes flit_times;    ///< per-tile-class flit serialization times
  std::uint64_t events_executed = 0;
  bool budget_exhausted = false;
  ShardExecStats shard_exec;  ///< substrate observability (zeros if serial)

  /// Stall-to-flit ratios in Fig. 6 order:
  /// {Rank3, Rank2, Rank1, Proc_req, Proc_rsp} from the local (AutoPerf)
  /// counters, each class converted at its own link bandwidth.
  [[nodiscard]] std::array<double, 5> local_stall_ratios() const;
};

/// Fig. 6 / Fig. 10 row labels matching local_stall_ratios() order.
extern const char* const kTileRatioLabels[5];
std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   const net::FlitTimes& ft);

RunResult run_production(const ProductionConfig& cfg);

/// Parallel batch controls.
struct BatchOptions {
  int jobs = 0;  ///< worker threads; <=0 means one per hardware thread
};

/// One batch of production runs: every requested sample is present in
/// submission order (failed runs keep their slot with ok == false).
struct BatchResult {
  std::vector<RunResult> results;   ///< in submission order, size == samples
  std::vector<TrialReport> trials;  ///< parallel to `results`
  RunnerStats stats;

  [[nodiscard]] int failures() const {
    int n = 0;
    for (const auto& r : results) n += r.ok ? 0 : 1;
    return n;
  }
};

/// `samples` production runs with seeds derived from cfg.seed, fanned out
/// across opts.jobs worker threads. Bit-identical results for any jobs
/// value (including 1).
BatchResult run_production_ensemble(const ProductionConfig& cfg, int samples,
                                    const BatchOptions& opts = {});

/// Convenience wrapper around run_production_ensemble() returning just the
/// per-sample results (still in submission order, still including failed
/// runs — check RunResult::ok before using a sample's measurements).
std::vector<RunResult> run_production_batch(ProductionConfig cfg, int samples,
                                            int jobs = 0);

struct EnsembleConfig {
  topo::Config system = topo::Config::theta();
  std::string app = "MILC";
  int njobs = 8;
  int nnodes = 256;
  routing::Mode mode = routing::Mode::kAd0;
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kCompact;
  int target_groups = 0;
  sim::Tick ldms_period = 200 * sim::kMicrosecond;
  std::uint64_t seed = 1;
  std::uint64_t event_budget = kEventBudget;  ///< per-run engine event cap
  /// Execution substrate (same semantics as ProductionConfig::shards).
  int shards = -1;
};

struct EnsembleResult {
  bool ok = false;
  std::string fail_reason;  ///< why the run failed (empty when ok)
  std::vector<double> runtimes_ms;
  net::CounterSnapshot total;
  std::vector<monitor::LdmsSample> ldms;
  std::vector<monitor::TileCounters> tiles;
  net::NetworkStats netstats;
  net::FlitTimes flit_times;
  std::uint64_t events_executed = 0;
  bool budget_exhausted = false;
};

EnsembleResult run_controlled(const EnsembleConfig& cfg);

/// One batch of controlled-ensemble runs (each sample is a full-system
/// reservation simulation with its own derived seed).
struct EnsembleBatchResult {
  std::vector<EnsembleResult> results;  ///< submission order, size == samples
  std::vector<TrialReport> trials;      ///< parallel to `results`
  RunnerStats stats;

  [[nodiscard]] int failures() const {
    int n = 0;
    for (const auto& r : results) n += r.ok ? 0 : 1;
    return n;
  }
};

/// `samples` controlled runs with seeds derived from cfg.seed, fanned out
/// across opts.jobs worker threads; same determinism guarantee as
/// run_production_ensemble().
EnsembleBatchResult run_controlled_ensemble(const EnsembleConfig& cfg,
                                            int samples,
                                            const BatchOptions& opts = {});

}  // namespace dfsim::core
