#include "core/experiment.hpp"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "sched/scheduler.hpp"

namespace dfsim::core {

namespace {

/// -1 = defer to the DFSIM_TEST_SHARDS environment variable (absent or
/// invalid: 0 = legacy serial engine).
int resolve_shards(int shards) {
  if (shards >= 0) return shards;
  if (const char* env = std::getenv("DFSIM_TEST_SHARDS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 0;
}

}  // namespace

const char* const kTileRatioLabels[5] = {"Rank3", "Rank2", "Rank1", "Proc_req",
                                         "Proc_rsp"};

std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   const net::FlitTimes& ft) {
  using CS = net::CounterSnapshot;
  return {CS::stall_flit_ratio(s.rank3, ft.rank3),
          CS::stall_flit_ratio(s.rank2, ft.rank2),
          CS::stall_flit_ratio(s.rank1, ft.rank1),
          CS::stall_flit_ratio(s.proc_req, ft.proc),
          CS::stall_flit_ratio(s.proc_rsp, ft.proc)};
}

std::array<double, 5> RunResult::local_stall_ratios() const {
  return stall_ratios(autoperf.local, flit_times);
}

RunResult run_production(const ProductionConfig& cfg) {
  RunResult res;
  sched::Scheduler sched(cfg.system, cfg.seed, resolve_shards(cfg.shards));
  auto& machine = sched.machine();
  auto& engine = machine.engine();
  machine.set_event_budget(cfg.event_budget);
  machine.network().set_event_profile(cfg.event_profile);
  machine.network().set_event_coalescing(cfg.coalesce_events);

  // Foreground allocation first (so requested placement is honored), then
  // fill with background load.
  auto nodes = sched.allocator().allocate(
      cfg.nnodes, cfg.placement, sched.rng(), cfg.target_groups);
  if (nodes.empty()) {
    res.fail_reason = "allocation failed: " + std::to_string(cfg.nnodes) +
                      " nodes unavailable on " + cfg.system.name;
    return res;
  }
  res.groups_spanned = machine.topology().groups_spanned(nodes);

  sched::BackgroundSet bg;
  if (cfg.bg_utilization > 0.0)
    bg = sched.add_background(cfg.bg_utilization, cfg.bg_mode);

  // Let the background ramp up, then start the app under test.
  machine.run_for(cfg.warmup);
  if (cfg.on_measurement_start) cfg.on_measurement_start(engine);
  const auto global_base = machine.network().snapshot_all();
  const mpi::JobId id =
      sched.submit_app_on(cfg.app, std::move(nodes), cfg.mode, cfg.params);
  const auto local_base = monitor::local_baseline(machine, id);

  const mpi::JobId watch[] = {id};
  const bool completed = machine.run_to_completion(watch);
  res.events_executed = machine.events_executed();
  res.budget_exhausted = machine.budget_exhausted();
  if (auto* se = machine.sharded_engine()) {
    res.shard_exec.shards = se->num_shards();
    res.shard_exec.workers = se->num_workers();
    res.shard_exec.lookahead = se->lookahead();
    res.shard_exec.windows = se->stats().windows;
    res.shard_exec.mail_records = se->stats().mail_records;
    res.shard_exec.barrier_wait_ns = se->stats().barrier_wait_ns;
    for (int s = 0; s < se->num_shards(); ++s)
      res.shard_exec.shard_events.push_back(se->shard(s).events_executed());
  }
  if (!completed) {
    res.fail_reason = res.budget_exhausted
                          ? "event budget exhausted (" +
                                std::to_string(cfg.event_budget) + " events)"
                          : "run stopped before job completion";
    return res;
  }

  res.ok = true;
  res.autoperf = monitor::collect(machine, id, local_base);
  res.runtime_ms = res.autoperf.runtime_ms;
  res.global = machine.network().snapshot_all().delta_since(global_base);
  res.netstats = machine.network().stats();
  res.flit_times = machine.network().flit_times();
  return res;
}

namespace {

TrialReport report_for(int index, bool ok, const std::string& fail_reason,
                       double wall_ms, std::uint64_t events,
                       bool budget_exhausted) {
  TrialReport t;
  t.index = index;
  t.ok = ok;
  t.fail_reason = fail_reason;
  t.wall_ms = wall_ms;
  t.events = events;
  t.budget_exhausted = budget_exhausted;
  return t;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BatchResult run_production_ensemble(const ProductionConfig& cfg, int samples,
                                    const BatchOptions& opts) {
  BatchResult b;
  const auto seeds = derive_trial_seeds(cfg.seed, samples);
  std::vector<double> wall(static_cast<std::size_t>(samples > 0 ? samples : 0));
  TrialRunner runner(opts.jobs);
  b.results = runner.map(samples, [&](int i) {
    const auto t0 = std::chrono::steady_clock::now();
    ProductionConfig c = cfg;
    c.seed = seeds[static_cast<std::size_t>(i)];
    RunResult r = run_production(c);
    wall[static_cast<std::size_t>(i)] = ms_since(t0);
    return r;
  });
  b.stats = runner.stats();
  b.trials.reserve(b.results.size());
  for (std::size_t i = 0; i < b.results.size(); ++i) {
    const auto& r = b.results[i];
    b.trials.push_back(report_for(static_cast<int>(i), r.ok, r.fail_reason,
                                  wall[i], r.events_executed,
                                  r.budget_exhausted));
  }
  return b;
}

std::vector<RunResult> run_production_batch(ProductionConfig cfg, int samples,
                                            int jobs) {
  return run_production_ensemble(cfg, samples, BatchOptions{jobs}).results;
}

EnsembleResult run_controlled(const EnsembleConfig& cfg) {
  EnsembleResult res;
  sched::Scheduler sched(cfg.system, cfg.seed, resolve_shards(cfg.shards));
  auto& machine = sched.machine();
  machine.set_event_budget(cfg.event_budget);

  std::vector<mpi::JobId> ids;
  for (int j = 0; j < cfg.njobs; ++j) {
    const mpi::JobId id = sched.submit_app(cfg.app, cfg.nnodes, cfg.placement,
                                           cfg.mode, cfg.params,
                                           cfg.target_groups);
    if (id < 0) break;  // machine full: run with what fits
    ids.push_back(id);
  }
  if (ids.empty()) {
    res.fail_reason = "allocation failed: no " +
                      std::to_string(cfg.nnodes) + "-node job fits on " +
                      cfg.system.name;
    return res;
  }

  monitor::LdmsSampler ldms(machine.network(), cfg.ldms_period);
  ldms.start();

  const bool completed = machine.run_to_completion(ids);
  res.events_executed = machine.events_executed();
  res.budget_exhausted = machine.budget_exhausted();
  if (!completed) {
    res.fail_reason = res.budget_exhausted
                          ? "event budget exhausted (" +
                                std::to_string(cfg.event_budget) + " events)"
                          : "run stopped before ensemble completion";
    return res;
  }

  res.ok = true;
  for (const mpi::JobId id : ids)
    res.runtimes_ms.push_back(sim::to_ms(machine.job(id).runtime()));
  res.total = machine.network().snapshot_all();
  res.ldms = ldms.samples();
  res.tiles = monitor::per_tile_counters(machine.network());
  res.netstats = machine.network().stats();
  res.flit_times = machine.network().flit_times();
  return res;
}

EnsembleBatchResult run_controlled_ensemble(const EnsembleConfig& cfg,
                                            int samples,
                                            const BatchOptions& opts) {
  EnsembleBatchResult b;
  const auto seeds = derive_trial_seeds(cfg.seed, samples);
  std::vector<double> wall(static_cast<std::size_t>(samples > 0 ? samples : 0));
  TrialRunner runner(opts.jobs);
  b.results = runner.map(samples, [&](int i) {
    const auto t0 = std::chrono::steady_clock::now();
    EnsembleConfig c = cfg;
    c.seed = seeds[static_cast<std::size_t>(i)];
    EnsembleResult r = run_controlled(c);
    wall[static_cast<std::size_t>(i)] = ms_since(t0);
    return r;
  });
  b.stats = runner.stats();
  b.trials.reserve(b.results.size());
  for (std::size_t i = 0; i < b.results.size(); ++i) {
    const auto& r = b.results[i];
    b.trials.push_back(report_for(static_cast<int>(i), r.ok, r.fail_reason,
                                  wall[i], r.events_executed,
                                  r.budget_exhausted));
  }
  return b;
}

}  // namespace dfsim::core
