#include "core/experiment.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "campaign/fingerprint.hpp"
#include "sched/scheduler.hpp"

namespace dfsim::core {

ScenarioConfig ScenarioConfig::production() { return ScenarioConfig{}; }

ScenarioConfig ScenarioConfig::controlled() {
  ScenarioConfig c;
  c.kind = ScenarioKind::kControlled;
  c.placement = sched::Placement::kCompact;
  c.bg_utilization = 0.0;  // no synthetic background in a reservation
  return c;
}

ScenarioConfig ScenarioConfig::system_mode() {
  ScenarioConfig c;
  c.kind = ScenarioKind::kSystem;
  c.bg_utilization = 0.0;  // the stream itself is the load
  return c;
}

ScenarioConfig ScenarioConfig::resolve() const {
  ScenarioConfig c = *this;
  if (c.shards < 0) {
    c.shards = 0;
    if (const char* env = std::getenv("DFSIM_TEST_SHARDS")) {
      const int v = std::atoi(env);
      if (v >= 1) c.shards = v;
    }
  }
  if (c.system.kind == topo::TopologyKind::kDefault) {
    c.system.kind = topo::TopologyKind::kDragonfly;
    if (const char* env = std::getenv("DFSIM_TEST_TOPO")) {
      topo::TopologyKind k{};
      if (topo::parse_topology_kind(env, k) && k != topo::TopologyKind::kDefault)
        c.system.kind = k;
    }
  }
  return c;
}

const char* const kTileRatioLabels[5] = {"Rank3", "Rank2", "Rank1", "Proc_req",
                                         "Proc_rsp"};

std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   const net::FlitTimes& ft) {
  using CS = net::CounterSnapshot;
  return {CS::stall_flit_ratio(s.rank3, ft.rank3),
          CS::stall_flit_ratio(s.rank2, ft.rank2),
          CS::stall_flit_ratio(s.rank1, ft.rank1),
          CS::stall_flit_ratio(s.proc_req, ft.proc),
          CS::stall_flit_ratio(s.proc_rsp, ft.proc)};
}

std::array<double, 5> RunResult::local_stall_ratios() const {
  return stall_ratios(autoperf.local, flit_times);
}

RunResult run_production(const ScenarioConfig& raw) {
  const ScenarioConfig cfg = raw.resolve();
  RunResult res;
  sched::Scheduler sched(cfg.system, cfg.seed, cfg.shards, cfg.shard_workers);
  auto& machine = sched.machine();
  auto& engine = machine.engine();
  machine.set_event_budget(cfg.event_budget);
  machine.network().set_event_profile(cfg.event_profile);
  machine.network().set_event_coalescing(cfg.coalesce_events);
  machine.network().apply_fault_plan(cfg.faults);  // empty plan: no-op
  if (auto* se = machine.sharded_engine())
    se->set_inline_merge(cfg.shard_inline_merge);

  // Foreground allocation first (so requested placement is honored), then
  // fill with background load.
  auto nodes = sched.allocator().allocate(
      cfg.nnodes, cfg.placement, sched.rng(), cfg.target_groups);
  if (nodes.empty()) {
    res.fail_reason = "allocation failed: " + std::to_string(cfg.nnodes) +
                      " nodes unavailable on " + cfg.system.name;
    return res;
  }
  res.groups_spanned = machine.topology().groups_spanned(nodes);

  sched::BackgroundSet bg;
  if (cfg.bg_utilization > 0.0)
    bg = sched.add_background(cfg.bg_utilization, cfg.bg_mode,
                              cfg.bg_placement);
  res.background.jobs = static_cast<int>(bg.jobs.size());
  res.background.total_nodes = bg.total_nodes;
  res.background.target_utilization = bg.target_utilization;
  res.background.achieved_utilization = bg.achieved_utilization;
  res.background.allocation_attempts = bg.allocation_attempts;
  res.background.allocation_failures = bg.allocation_failures;

  // Rebalance shard block boundaries against the placement we just
  // committed to: weight each group by its busy nodes (foreground app +
  // background jobs) so the contiguous-group blocks equalize expected
  // traffic instead of group count. Wall-clock-only — no event has
  // executed yet, so rebinding ownership is pure policy (see
  // Machine::rebalance_shards), and the lookahead grid is
  // partition-independent.
  if (cfg.shard_balance && machine.sharded_engine() != nullptr) {
    const auto& topo = machine.topology();
    std::vector<std::uint64_t> weight(
        static_cast<std::size_t>(topo.groups()), 0);
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (sched.allocator().is_busy(n))
        ++weight[static_cast<std::size_t>(topo.group_of_node(n))];
    }
    machine.rebalance_shards(weight);
  }

  // Let the background ramp up, then start the app under test.
  machine.run_for(cfg.warmup);
  if (cfg.on_measurement_start) cfg.on_measurement_start(engine);
  const auto global_base = machine.network().snapshot_all();
  const mpi::JobId id =
      sched.submit_app_on(cfg.app, std::move(nodes), cfg.mode, cfg.params);
  const auto local_base = monitor::local_baseline(machine, id);

  const mpi::JobId watch[] = {id};
  const bool completed = cfg.completion_driver
                             ? cfg.completion_driver(machine, watch)
                             : machine.run_to_completion(watch);
  res.events_executed = machine.events_executed();
  res.budget_exhausted = machine.budget_exhausted();
  res.faults = machine.network().fault_stats();
  if (auto* se = machine.sharded_engine()) {
    res.shard_exec.shards = se->num_shards();
    res.shard_exec.workers = se->num_workers();
    res.shard_exec.workers_requested = cfg.shard_workers;
    res.shard_exec.lookahead = se->lookahead();
    res.shard_exec.windows = se->stats().windows;
    res.shard_exec.merges = se->stats().merges;
    res.shard_exec.windows_fused = se->stats().fused;
    res.shard_exec.mail_records = se->stats().mail_records;
    res.shard_exec.mail_posted = se->stats().mail_posted;
    res.shard_exec.mail_compacted = se->stats().mail_compacted;
    res.shard_exec.barrier_wait_ns = se->stats().barrier_wait_ns;
    res.shard_exec.coord_ns = se->stats().coord_ns;
    for (int s = 0; s < se->num_shards(); ++s)
      res.shard_exec.shard_events.push_back(se->shard(s).events_executed());
    for (const auto& ex : se->executor_stats()) {
      res.shard_exec.executor_busy_ns.push_back(ex.busy_ns);
      res.shard_exec.executor_wait_ns.push_back(ex.wait_ns);
    }
  }
  if (!completed) {
    res.fail_reason = res.budget_exhausted
                          ? "event budget exhausted (" +
                                std::to_string(cfg.event_budget) + " events)"
                          : "run stopped before job completion";
    return res;
  }

  res.ok = true;
  res.autoperf = monitor::collect(machine, id, local_base);
  res.runtime_ms = res.autoperf.runtime_ms;
  res.global = machine.network().snapshot_all().delta_since(global_base);
  res.netstats = machine.network().stats();
  res.flit_times = machine.network().flit_times();
  return res;
}

namespace {

TrialReport report_for(int index, bool ok, const std::string& fail_reason,
                       double wall_ms, std::uint64_t events,
                       bool budget_exhausted) {
  TrialReport t;
  t.index = index;
  t.ok = ok;
  t.fail_reason = fail_reason;
  t.wall_ms = wall_ms;
  t.events = events;
  t.budget_exhausted = budget_exhausted;
  return t;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Failure prefix for ensemble trial reports: which trial failed and the
// fingerprint of the exact scenario it ran (root config + derived seed),
// so a failing cell can be re-run in isolation — or looked up in a
// campaign cache — straight from the report text.
std::string trial_tag(const ScenarioConfig& cfg, std::uint64_t trial_seed,
                      int index) {
  ScenarioConfig c = cfg;
  c.seed = trial_seed;
  return "[trial " + std::to_string(index) + " fp=" +
         campaign::scenario_fingerprint(c).hex_prefix(16) + "] ";
}

}  // namespace

BatchResult run_production_ensemble(const ScenarioConfig& cfg, int samples,
                                    const BatchOptions& opts) {
  BatchResult b;
  const auto seeds = derive_trial_seeds(cfg.seed, samples);
  std::vector<double> wall(static_cast<std::size_t>(samples > 0 ? samples : 0));
  TrialRunner runner(opts.jobs);
  b.results = runner.map(samples, [&](int i) {
    const auto t0 = std::chrono::steady_clock::now();
    ScenarioConfig c = cfg;
    c.seed = seeds[static_cast<std::size_t>(i)];
    RunResult r = run_production(c);
    wall[static_cast<std::size_t>(i)] = ms_since(t0);
    return r;
  });
  b.stats = runner.stats();
  b.trials.reserve(b.results.size());
  for (std::size_t i = 0; i < b.results.size(); ++i) {
    const auto& r = b.results[i];
    const std::string reason =
        r.ok ? r.fail_reason
             : trial_tag(cfg, seeds[i], static_cast<int>(i)) + r.fail_reason;
    b.trials.push_back(report_for(static_cast<int>(i), r.ok, reason, wall[i],
                                  r.events_executed, r.budget_exhausted));
  }
  return b;
}

std::vector<RunResult> run_production_batch(const ScenarioConfig& cfg,
                                            int samples, int jobs) {
  return run_production_ensemble(cfg, samples, BatchOptions{jobs}).results;
}

EnsembleResult run_controlled(const ScenarioConfig& raw) {
  const ScenarioConfig cfg = raw.resolve();
  EnsembleResult res;
  sched::Scheduler sched(cfg.system, cfg.seed, cfg.shards, cfg.shard_workers);
  auto& machine = sched.machine();
  machine.set_event_budget(cfg.event_budget);
  machine.network().apply_fault_plan(cfg.faults);  // empty plan: no-op

  std::vector<mpi::JobId> ids;
  for (int j = 0; j < cfg.njobs; ++j) {
    const mpi::JobId id = sched.submit_app(cfg.app, cfg.nnodes, cfg.placement,
                                           cfg.mode, cfg.params,
                                           cfg.target_groups);
    if (id < 0) break;  // machine full: run with what fits
    ids.push_back(id);
  }
  if (ids.empty()) {
    res.fail_reason = "allocation failed: no " +
                      std::to_string(cfg.nnodes) + "-node job fits on " +
                      cfg.system.name;
    return res;
  }

  monitor::LdmsSampler ldms(machine.network(), cfg.ldms_period);
  ldms.start();

  const bool completed = machine.run_to_completion(ids);
  res.events_executed = machine.events_executed();
  res.budget_exhausted = machine.budget_exhausted();
  res.faults = machine.network().fault_stats();
  if (!completed) {
    res.fail_reason = res.budget_exhausted
                          ? "event budget exhausted (" +
                                std::to_string(cfg.event_budget) + " events)"
                          : "run stopped before ensemble completion";
    return res;
  }

  res.ok = true;
  for (const mpi::JobId id : ids)
    res.runtimes_ms.push_back(sim::to_ms(machine.job(id).runtime()));
  res.total = machine.network().snapshot_all();
  res.ldms = ldms.samples();
  res.tiles = monitor::per_tile_counters(machine.network());
  res.netstats = machine.network().stats();
  res.flit_times = machine.network().flit_times();
  return res;
}

SystemRunResult run_system(const ScenarioConfig& raw) {
  const ScenarioConfig cfg = raw.resolve();
  SystemRunResult res;
  sched::Scheduler sched(cfg.system, cfg.seed, cfg.shards, cfg.shard_workers);
  auto& machine = sched.machine();
  machine.set_event_budget(cfg.event_budget);
  machine.network().set_event_coalescing(cfg.coalesce_events);
  machine.network().apply_fault_plan(cfg.faults);  // empty plan: no-op

  sched::SystemConfig sc;
  sc.num_jobs = cfg.sys_jobs;
  sc.mean_interarrival = cfg.sys_interarrival;
  sc.backfill = cfg.sys_backfill;
  sc.ad3_fraction = cfg.sys_ad3_fraction;
  sched::SystemScheduler system(sched, sc, cfg.seed);

  const bool completed = system.run();
  res.events_executed = machine.events_executed();
  res.budget_exhausted = machine.budget_exhausted();
  res.faults = machine.network().fault_stats();
  res.stats = system.stats();
  res.jobs = system.records();
  if (!completed) {
    res.fail_reason =
        res.budget_exhausted
            ? "event budget exhausted (" + std::to_string(cfg.event_budget) +
                  " events)"
            : "stream stalled: " + std::to_string(res.stats.completed) + "/" +
                  std::to_string(res.stats.total) + " jobs completed";
    return res;
  }
  res.ok = true;
  return res;
}

EnsembleBatchResult run_controlled_ensemble(const ScenarioConfig& cfg,
                                            int samples,
                                            const BatchOptions& opts) {
  EnsembleBatchResult b;
  const auto seeds = derive_trial_seeds(cfg.seed, samples);
  std::vector<double> wall(static_cast<std::size_t>(samples > 0 ? samples : 0));
  TrialRunner runner(opts.jobs);
  b.results = runner.map(samples, [&](int i) {
    const auto t0 = std::chrono::steady_clock::now();
    ScenarioConfig c = cfg;
    c.seed = seeds[static_cast<std::size_t>(i)];
    EnsembleResult r = run_controlled(c);
    wall[static_cast<std::size_t>(i)] = ms_since(t0);
    return r;
  });
  b.stats = runner.stats();
  b.trials.reserve(b.results.size());
  for (std::size_t i = 0; i < b.results.size(); ++i) {
    const auto& r = b.results[i];
    const std::string reason =
        r.ok ? r.fail_reason
             : trial_tag(cfg, seeds[i], static_cast<int>(i)) + r.fail_reason;
    b.trials.push_back(report_for(static_cast<int>(i), r.ok, reason, wall[i],
                                  r.events_executed, r.budget_exhausted));
  }
  return b;
}

namespace {

// Float cells use std::to_chars shortest round-trip form: the fewest digits
// that parse back (via std::from_chars) to the exact same double, with no
// locale involvement. This makes scenario CSV round-trips bit-exact and
// gives campaign::scenario_fingerprint() a platform-stable text to hash —
// "%.17g" printed trailing noise digits and, worse, went through the
// C locale machinery.
std::string f64_cell(double v) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{})
    throw std::invalid_argument("scenario_csv_row: unencodable double");
  return std::string(buf, p);
}

double cell_f64(const std::string& c, const char* field) {
  double v = 0.0;
  const auto [p, ec] = std::from_chars(c.data(), c.data() + c.size(), v);
  if (ec != std::errc{} || p != c.data() + c.size())
    throw std::invalid_argument(std::string("scenario_from_csv: bad ") +
                                field + " \"" + c + "\"");
  return v;
}

std::string fault_plan_encode(const fault::FaultPlan& plan) {
  std::string s;
  for (const fault::FaultEvent& ev : plan.events()) {
    if (!s.empty()) s += '|';
    s += std::to_string(static_cast<long long>(ev.at)) + ':' +
         std::to_string(static_cast<int>(ev.kind)) + ':' +
         std::to_string(ev.router) + ':' + std::to_string(ev.port) + ':' +
         f64_cell(ev.factor);
  }
  return s;
}

fault::FaultPlan fault_plan_decode(const std::string& s) {
  fault::FaultPlan plan;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find('|', pos);
    if (end == std::string::npos) end = s.size();
    const char* first = s.data() + pos;
    const char* last = s.data() + end;
    const auto bad = [&] {
      throw std::invalid_argument("scenario_from_csv: bad fault event \"" +
                                  s.substr(pos, end - pos) + "\"");
    };
    // at:kind:router:port:factor — integers then a shortest-round-trip
    // double, all parsed with from_chars (exact, locale-free).
    auto parse_i64 = [&](std::int64_t& out) {
      const auto [p, ec] = std::from_chars(first, last, out);
      if (ec != std::errc{} || p == last || *p != ':') bad();
      first = p + 1;
    };
    std::int64_t at = 0, kind = 0, router = 0, port = 0;
    parse_i64(at);
    parse_i64(kind);
    parse_i64(router);
    parse_i64(port);
    double factor = 1.0;
    const auto [p, ec] = std::from_chars(first, last, factor);
    if (ec != std::errc{} || p != last) bad();
    fault::FaultEvent ev;
    ev.at = at;
    ev.kind = static_cast<fault::FaultKind>(kind);
    ev.router = static_cast<int>(router);
    ev.port = static_cast<int>(port);
    ev.factor = factor;
    plan.add(ev);
    pos = end + 1;
  }
  return plan;
}

topo::Config system_by_name(const std::string& name) {
  if (name == "theta") return topo::Config::theta();
  if (name == "cori") return topo::Config::cori();
  if (name == "mini") return topo::Config::mini();
  if (name == "theta_scaled") return topo::Config::theta_scaled();
  if (name == "cori_scaled") return topo::Config::cori_scaled();
  if (name == "slingshot_like") return topo::Config::slingshot_like();
  throw std::invalid_argument("scenario_from_csv: unknown system preset \"" +
                              name + "\"");
}

std::int64_t cell_i64(const std::string& c, const char* field) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(c.data(), c.data() + c.size(), v);
  if (ec != std::errc{} || p != c.data() + c.size())
    throw std::invalid_argument(std::string("scenario_from_csv: bad ") +
                                field + " \"" + c + "\"");
  return v;
}

}  // namespace

std::vector<std::string> scenario_csv_columns() {
  return {"kind",       "system",       "topology",  "app",
          "nnodes",
          "njobs",      "mode",         "placement", "target_groups",
          "bg_util",    "bg_mode",      "bg_placement",
          "warmup_ns",  "ldms_period_ns",
          "seed",       "event_budget", "shards",    "shard_workers",
          "shard_balance",
          "faults",     "sys_jobs",     "sys_interarrival_ns",
          "sys_backfill", "sys_ad3_fraction"};
}

namespace {

const char* kind_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::kControlled: return "controlled";
    case ScenarioKind::kSystem: return "system";
    case ScenarioKind::kProduction: break;
  }
  return "production";
}

ScenarioConfig config_for_kind(const std::string& kind) {
  if (kind == "controlled") return ScenarioConfig::controlled();
  if (kind == "system") return ScenarioConfig::system_mode();
  if (kind == "production") return ScenarioConfig::production();
  throw std::invalid_argument("scenario_from_csv: unknown kind \"" + kind +
                              "\"");
}

}  // namespace

std::vector<std::string> scenario_csv_row(const ScenarioConfig& cfg) {
  const auto num = [](double v) { return f64_cell(v); };
  return {kind_name(cfg.kind),
          cfg.system.name,
          std::string(topo::topology_kind_name(cfg.system.kind)),
          cfg.app,
          std::to_string(cfg.nnodes),
          std::to_string(cfg.njobs),
          std::string(routing::mode_name(cfg.mode)),
          sched::placement_name(cfg.placement),
          std::to_string(cfg.target_groups),
          num(cfg.bg_utilization),
          std::string(routing::mode_name(cfg.bg_mode)),
          sched::bg_placement_name(cfg.bg_placement),
          std::to_string(cfg.warmup),
          std::to_string(cfg.ldms_period),
          std::to_string(cfg.seed),
          std::to_string(cfg.event_budget),
          std::to_string(cfg.shards),
          std::to_string(cfg.shard_workers),
          cfg.shard_balance ? "1" : "0",
          fault_plan_encode(cfg.faults),
          std::to_string(cfg.sys_jobs),
          std::to_string(cfg.sys_interarrival),
          cfg.sys_backfill ? "1" : "0",
          num(cfg.sys_ad3_fraction)};
}

ScenarioConfig scenario_from_csv(const std::vector<std::string>& cells) {
  if (cells.size() != scenario_csv_columns().size())
    throw std::invalid_argument("scenario_from_csv: expected " +
                                std::to_string(scenario_csv_columns().size()) +
                                " cells, got " + std::to_string(cells.size()));
  ScenarioConfig cfg = config_for_kind(cells[0]);
  cfg.system = system_by_name(cells[1]);
  if (!topo::parse_topology_kind(cells[2], cfg.system.kind))
    throw std::invalid_argument("scenario_from_csv: bad topology \"" +
                                cells[2] + "\"");
  cfg.app = cells[3];
  cfg.nnodes = static_cast<int>(cell_i64(cells[4], "nnodes"));
  cfg.njobs = static_cast<int>(cell_i64(cells[5], "njobs"));
  if (!routing::parse_mode(cells[6], cfg.mode))
    throw std::invalid_argument("scenario_from_csv: bad mode \"" + cells[6] +
                                "\"");
  bool placed = false;
  for (const auto p : {sched::Placement::kCompact, sched::Placement::kRandom,
                       sched::Placement::kGroups}) {
    if (cells[7] == sched::placement_name(p)) {
      cfg.placement = p;
      placed = true;
    }
  }
  if (!placed)
    throw std::invalid_argument("scenario_from_csv: bad placement \"" +
                                cells[7] + "\"");
  cfg.target_groups = static_cast<int>(cell_i64(cells[8], "target_groups"));
  cfg.bg_utilization = cell_f64(cells[9], "bg_util");
  if (!routing::parse_mode(cells[10], cfg.bg_mode))
    throw std::invalid_argument("scenario_from_csv: bad bg_mode \"" +
                                cells[10] + "\"");
  if (!sched::parse_bg_placement(cells[11], cfg.bg_placement))
    throw std::invalid_argument("scenario_from_csv: bad bg_placement \"" +
                                cells[11] + "\"");
  cfg.warmup = cell_i64(cells[12], "warmup_ns");
  cfg.ldms_period = cell_i64(cells[13], "ldms_period_ns");
  cfg.seed = static_cast<std::uint64_t>(cell_i64(cells[14], "seed"));
  cfg.event_budget =
      static_cast<std::uint64_t>(cell_i64(cells[15], "event_budget"));
  cfg.shards = static_cast<int>(cell_i64(cells[16], "shards"));
  cfg.shard_workers = static_cast<int>(cell_i64(cells[17], "shard_workers"));
  cfg.shard_balance = cell_i64(cells[18], "shard_balance") != 0;
  cfg.faults = fault_plan_decode(cells[19]);
  cfg.sys_jobs = static_cast<int>(cell_i64(cells[20], "sys_jobs"));
  cfg.sys_interarrival = cell_i64(cells[21], "sys_interarrival_ns");
  cfg.sys_backfill = cell_i64(cells[22], "sys_backfill") != 0;
  cfg.sys_ad3_fraction = cell_f64(cells[23], "sys_ad3_fraction");
  return cfg;
}

}  // namespace dfsim::core
