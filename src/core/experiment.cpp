#include "core/experiment.hpp"

#include "sched/scheduler.hpp"

namespace dfsim::core {

const char* const kTileRatioLabels[5] = {"Rank3", "Rank2", "Rank1", "Proc_req",
                                         "Proc_rsp"};

std::array<double, 5> stall_ratios(const net::CounterSnapshot& s,
                                   double flit_time_ns) {
  using CS = net::CounterSnapshot;
  return {CS::stall_flit_ratio(s.rank3, flit_time_ns),
          CS::stall_flit_ratio(s.rank2, flit_time_ns),
          CS::stall_flit_ratio(s.rank1, flit_time_ns),
          CS::stall_flit_ratio(s.proc_req, flit_time_ns),
          CS::stall_flit_ratio(s.proc_rsp, flit_time_ns)};
}

std::array<double, 5> RunResult::local_stall_ratios() const {
  return stall_ratios(autoperf.local, flit_time_ns);
}

RunResult run_production(const ProductionConfig& cfg) {
  RunResult res;
  sched::Scheduler sched(cfg.system, cfg.seed);
  auto& machine = sched.machine();
  machine.engine().set_event_budget(kEventBudget);

  // Foreground allocation first (so requested placement is honored), then
  // fill with background load.
  auto nodes = sched.allocator().allocate(
      cfg.nnodes, cfg.placement, sched.rng(), cfg.target_groups);
  if (nodes.empty()) return res;
  res.groups_spanned = machine.topology().groups_spanned(nodes);

  sched::BackgroundSet bg;
  if (cfg.bg_utilization > 0.0)
    bg = sched.add_background(cfg.bg_utilization, cfg.bg_mode);

  // Let the background ramp up, then start the app under test.
  machine.run_for(cfg.warmup);
  const auto global_base = machine.network().snapshot_all();
  const mpi::JobId id =
      sched.submit_app_on(cfg.app, std::move(nodes), cfg.mode, cfg.params);
  const auto local_base = monitor::local_baseline(machine, id);

  const mpi::JobId watch[] = {id};
  if (!machine.run_to_completion(watch)) return res;

  res.ok = true;
  res.autoperf = monitor::collect(machine, id, local_base);
  res.runtime_ms = res.autoperf.runtime_ms;
  res.global = machine.network().snapshot_all().delta_since(global_base);
  res.netstats = machine.network().stats();
  res.flit_time_ns = machine.network().flit_time_ns();
  return res;
}

std::vector<RunResult> run_production_batch(ProductionConfig cfg, int samples) {
  std::vector<RunResult> out;
  sim::Rng seeder(cfg.seed);
  for (int i = 0; i < samples; ++i) {
    cfg.seed = seeder.next();
    RunResult r = run_production(cfg);
    if (r.ok) out.push_back(std::move(r));
  }
  return out;
}

EnsembleResult run_controlled(const EnsembleConfig& cfg) {
  EnsembleResult res;
  sched::Scheduler sched(cfg.system, cfg.seed);
  auto& machine = sched.machine();
  machine.engine().set_event_budget(kEventBudget);

  std::vector<mpi::JobId> ids;
  for (int j = 0; j < cfg.njobs; ++j) {
    const mpi::JobId id = sched.submit_app(cfg.app, cfg.nnodes, cfg.placement,
                                           cfg.mode, cfg.params,
                                           cfg.target_groups);
    if (id < 0) break;  // machine full: run with what fits
    ids.push_back(id);
  }
  if (ids.empty()) return res;

  monitor::LdmsSampler ldms(machine.network(), cfg.ldms_period);
  ldms.start();

  if (!machine.run_to_completion(ids)) return res;

  res.ok = true;
  for (const mpi::JobId id : ids)
    res.runtimes_ms.push_back(sim::to_ms(machine.job(id).runtime()));
  res.total = machine.network().snapshot_all();
  res.ldms = ldms.samples();
  res.tiles = monitor::per_tile_counters(machine.network());
  res.netstats = machine.network().stats();
  res.flit_time_ns = machine.network().flit_time_ns();
  return res;
}

}  // namespace dfsim::core
