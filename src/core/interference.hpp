// App-by-app interference matrix (paper Sections II-E, IV).
//
// The paper argues that whether a job suffers under a neighbor depends on
// the *pair* of communication characters: a bisection-heavy victim next to
// an alltoall-heavy aggressor behaves nothing like the reverse. This
// module quantifies that directly: for each routing mode, colocate every
// ordered registry-app pair (A, B) on an otherwise idle machine and report
// A's runtime slowdown relative to A running alone. The diagonal (A, A) is
// self-interference; asymmetry between (A, B) and (B, A) is the paper's
// aggressor/victim distinction.
//
// Methodology: the baseline and every pair run that shares a victim use
// the same seed, and the victim is allocated first in both — so A sits on
// the *identical* node set with and without the aggressor, and the
// slowdown isolates network interference from placement luck. The
// aggressor runs with extra iterations so it outlives the victim. Fault
// plans compose: inject the same plan into every cell to measure
// interference on a degraded fabric.
//
// Determinism: cells fan out across a TrialRunner (bit-identical for every
// jobs count), and each cell's machine inherits the configured shard
// count (byte-identical for every shard count within a family).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace dfsim::core {

struct InterferenceConfig {
  topo::Config system = topo::Config::mini(8);
  std::vector<std::string> apps;  ///< empty = all registry apps (Table I)
  std::vector<routing::Mode> modes = {routing::Mode::kAd0,
                                      routing::Mode::kAd3};
  int nnodes = 16;  ///< per app; a pair occupies 2*nnodes
  apps::AppParams params;
  sched::Placement placement = sched::Placement::kRandom;
  std::uint64_t seed = 1;
  std::uint64_t event_budget = kEventBudget;
  int shards = -1;  ///< as ScenarioConfig::shards (resolved per cell)
  int shard_workers = 0;
  fault::FaultPlan faults;  ///< injected into every cell's network
};

/// One (mode, victim A, aggressor B) measurement. `slowdown` is
/// with_ms / alone_ms (1.0 = no interference).
struct InterferenceCell {
  std::string app_a;  ///< victim (measured)
  std::string app_b;  ///< aggressor (colocated; empty in baselines)
  routing::Mode mode = routing::Mode::kAd0;
  bool ok = false;
  std::string fail_reason;
  double alone_ms = 0.0;
  double with_ms = 0.0;
  double slowdown = 0.0;
};

struct InterferenceMatrix {
  std::vector<routing::Mode> modes;
  std::vector<std::string> apps;
  /// Mode-major, then victim-major: cells[(m*A + a)*A + b].
  std::vector<InterferenceCell> cells;

  [[nodiscard]] const InterferenceCell& cell(int mode_idx, int a,
                                             int b) const {
    const auto n = apps.size();
    return cells[(static_cast<std::size_t>(mode_idx) * n +
                  static_cast<std::size_t>(a)) *
                     n +
                 static_cast<std::size_t>(b)];
  }
};

/// Run the full matrix: one baseline per (mode, victim) plus one pair run
/// per (mode, victim, aggressor), fanned out over `jobs` worker threads.
InterferenceMatrix run_interference_matrix(const InterferenceConfig& cfg,
                                           int jobs = 0);

/// One slowdown table per mode (rows = victim A, columns = aggressor B).
void print_interference_matrix(std::ostream& os,
                               const InterferenceMatrix& m);

/// CSV rows: mode,app_a,app_b,ok,alone_ms,with_ms,slowdown.
void write_interference_csv(std::ostream& os, const InterferenceMatrix& m);

}  // namespace dfsim::core
