// Paper-style report rendering shared by the benches.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "campaign/cache.hpp"
#include "core/experiment.hpp"
#include "mpi/profile.hpp"
#include "stats/summary.hpp"

namespace dfsim::core {

/// Fig. 6 / Fig. 10 style: stall-to-flit ratio per tile class, two modes
/// side by side.
void print_ratio_comparison(std::ostream& os, const std::string& label_a,
                            const std::array<double, 5>& a,
                            const std::string& label_b,
                            const std::array<double, 5>& b);

/// Fig. 5 / Fig. 8 style: per-run breakdown into Compute + top MPI ops.
void print_breakdown(std::ostream& os, const monitor::AutoPerfReport& rep,
                     std::span<const mpi::Op> ops);

/// Table I row fields for one app.
struct CharacterizationRow {
  std::string app;
  double mpi_pct = 0.0;
  std::string call1, call2, call3;
  double p2p_avg_bytes = 0.0;
  double coll_avg_bytes = 0.0;
};
CharacterizationRow characterize(const monitor::AutoPerfReport& rep);

/// Mean/σ plus improvement row (Table II).
struct ComparisonRow {
  std::string app;
  stats::Summary ad0, ad3;
  double time_improvement_pct = 0.0;
  double mpi_improvement_pct = 0.0;
  int runs = 0;
};
void print_table2(std::ostream& os, std::span<const ComparisonRow> rows);

/// Z-score normalized runtimes per mode (Figs. 3, 7, 9 text form).
void print_normalized_split(std::ostream& os, const std::string& title,
                            std::span<const double> ad0,
                            std::span<const double> ad3);

/// One-paragraph fault/recovery summary for a run (prints nothing when the
/// run had no fault plan — every counter zero).
void print_fault_summary(std::ostream& os, const fault::FaultStats& st);

/// One-line background-fill summary (prints nothing for isolated runs —
/// no fill was attempted). Flags undershoot explicitly so production
/// results never silently claim a load the fill did not reach.
void print_background_summary(std::ostream& os, const BackgroundFill& bg);

/// Queueing summary of a system-mode run (completion counts, waits,
/// backfill share, peak utilization).
void print_system_summary(std::ostream& os, const SystemRunResult& res);

/// One-line result-cache summary (hits/misses/hit rate, corrupt entries,
/// bytes moved). Prints nothing when the cache was never consulted.
void print_cache_summary(std::ostream& os, const campaign::CacheStats& st);

}  // namespace dfsim::core
