#include "core/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "mpi/machine.hpp"
#include "net/network.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace dfsim::core {

// Parallel trials are only sound because one trial's simulation stack is
// fully self-contained: Engine/Network/Machine/Scheduler instances own all
// of their state and the library keeps no global mutable state (the single
// function-local static, the app-name list in apps/registry.cpp, is const
// and initialized thread-safely). The stack types are deliberately
// non-copyable so per-trial state cannot silently alias across trials;
// guard that property at compile time here.
static_assert(!std::is_copy_constructible_v<sim::Engine> &&
                  !std::is_copy_assignable_v<sim::Engine>,
              "sim::Engine must stay non-copyable: trials each own one");
static_assert(!std::is_copy_constructible_v<net::Network> &&
                  !std::is_copy_assignable_v<net::Network>,
              "net::Network must stay non-copyable: trials each own one");
static_assert(!std::is_copy_constructible_v<mpi::Machine> &&
                  !std::is_copy_assignable_v<mpi::Machine>,
              "mpi::Machine must stay non-copyable: trials each own one");
static_assert(!std::is_copy_constructible_v<sched::Scheduler> &&
                  !std::is_copy_assignable_v<sched::Scheduler>,
              "sched::Scheduler must stay non-copyable: trials each own one");

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<std::uint64_t> derive_trial_seeds(std::uint64_t root_seed, int n) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  sim::Rng seeder(root_seed);
  for (int i = 0; i < n; ++i) seeds.push_back(seeder.next());
  return seeds;
}

void TrialRunner::dispatch(int n, const std::function<void(int)>& body) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  stats_ = RunnerStats{};
  stats_.trials = n > 0 ? n : 0;
  const int workers = std::min(jobs_, stats_.trials);
  stats_.jobs = workers > 0 ? workers : 1;

  if (workers <= 1) {
    for (int i = 0; i < n; ++i) body(i);
  } else {
    std::atomic<int> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  stats_.wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

}  // namespace dfsim::core
