#include "mpi/rank.hpp"

#include "mpi/machine.hpp"

namespace dfsim::mpi {

int RankCtx::nranks() const {
  return static_cast<int>(job_->spec.nodes.size());
}

sim::Engine& RankCtx::engine() const { return m_->engine(); }

sim::Tick RankCtx::now() const { return m_->engine().now(); }

bool RankCtx::stop_requested() const { return job_->stop_requested; }

routing::Mode RankCtx::mode_p2p() const { return job_->spec.mode_p2p; }

routing::Mode RankCtx::mode_a2a() const { return job_->spec.mode_a2a; }

Request RankCtx::isend(int dst, std::int64_t bytes, int tag) {
  return isend_mode(dst, bytes, tag, mode_p2p());
}

Request RankCtx::isend_mode(int dst, std::int64_t bytes, int tag,
                            routing::Mode mode) {
  auto req = make_request();
  record(Op::kIsend, kSwOverheadNs, bytes);
  m_->post_send(*job_, rank_, dst, tag, bytes, mode, req);
  return req;
}

Request RankCtx::irecv(int src, std::int64_t bytes, int tag) {
  auto req = make_request();
  record(Op::kIrecv, kSwOverheadNs, bytes);
  m_->post_recv(*job_, rank_, src, tag, bytes, req);
  return req;
}

CoTask RankCtx::wait(Request r) {
  const sim::Tick t0 = now();
  co_await compute(kSwOverheadNs);
  co_await await_req(r);
  record(Op::kWait, now() - t0, 0);
}

CoTask RankCtx::waitall(RequestList rs) {
  const sim::Tick t0 = now();
  co_await compute(kSwOverheadNs);
  for (const auto& r : rs) co_await await_req(r);
  record(Op::kWaitall, now() - t0, 0);
}

CoTask RankCtx::send(int dst, std::int64_t bytes, int tag) {
  const sim::Tick t0 = now();
  co_await compute(kSwOverheadNs);
  Request r;
  {
    InternalGuard g(*this);
    r = isend(dst, bytes, tag);
  }
  co_await await_req(r);
  record(Op::kSend, now() - t0, bytes);
}

CoTask RankCtx::recv(int src, std::int64_t bytes, int tag) {
  const sim::Tick t0 = now();
  co_await compute(kSwOverheadNs);
  Request r;
  {
    InternalGuard g(*this);
    r = irecv(src, bytes, tag);
  }
  co_await await_req(r);
  record(Op::kRecv, now() - t0, bytes);
}

}  // namespace dfsim::mpi
