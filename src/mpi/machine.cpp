#include "mpi/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfsim::mpi {

Machine::Machine(topo::Config cfg, std::uint64_t seed, int shards,
                 int shard_workers)
    : topo_(topo::make_topology(std::move(cfg))),
      plan_(shards >= 1 ? std::make_unique<topo::ShardPlan>(
                              topo::ShardPlan::build(*topo_, shards))
                        : nullptr),
      sharded_(plan_ != nullptr
                   ? std::make_unique<sim::ShardedEngine>(
                         plan_->shards, plan_->lookahead, shard_workers)
                   : nullptr),
      engine_(sharded_ != nullptr ? sharded_->host() : serial_engine_),
      net_(sharded_ != nullptr
               ? std::make_unique<net::Network>(*sharded_, *topo_,
                                                seed ^ 0xA5A5A5A5ULL, *plan_)
               : std::make_unique<net::Network>(engine_, *topo_,
                                                seed ^ 0xA5A5A5A5ULL)),
      rng_(seed) {}

bool Machine::rebalance_shards(const std::vector<std::uint64_t>& group_weight) {
  // Only meaningful on the sharded substrate, and only while the schedule
  // is still partition-independent: no event executed, clock at zero. Jobs
  // may already be submitted — their start events live on the host engine,
  // which is shard 0 under every plan.
  if (sharded_ == nullptr || plan_ == nullptr) return false;
  if (events_executed() != 0 || engine_.now() != 0) return false;
  topo::ShardPlan next =
      topo::ShardPlan::build_weighted(*topo_, plan_->shards, group_weight);
  if (next.shards != plan_->shards || next.lookahead != plan_->lookahead)
    throw std::logic_error("Machine::rebalance_shards: grid changed");
  *plan_ = std::move(next);
  net_->rebind_shards();
  return true;
}

void Machine::set_event_budget(std::uint64_t budget) {
  if (sharded_ != nullptr)
    sharded_->set_event_budget(budget);
  else
    engine_.set_event_budget(budget);
}

bool Machine::budget_exhausted() const {
  return sharded_ != nullptr ? sharded_->budget_exhausted()
                             : engine_.budget_exhausted();
}

std::uint64_t Machine::events_executed() const {
  return sharded_ != nullptr ? sharded_->events_executed()
                             : engine_.events_executed();
}

JobId Machine::submit(JobSpec spec, sim::Tick start_at) {
  if (spec.nodes.empty())
    throw std::invalid_argument("Machine::submit: job has no nodes");
  if (!spec.app) throw std::invalid_argument("Machine::submit: no app");
  for (const topo::NodeId n : spec.nodes)
    if (n < 0 || n >= topo_->num_nodes())
      throw std::invalid_argument("Machine::submit: node out of range");

  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.emplace_back();
  JobState& job = jobs_.back();
  job.id = id;
  job.spec = std::move(spec);
  watched_.push_back(0);

  const int nranks = static_cast<int>(job.spec.nodes.size());
  for (int r = 0; r < nranks; ++r) {
    job.ranks.emplace_back();
    RankState& rs = job.ranks.back();
    rs.ctx = std::make_unique<RankCtx>(*this, job, r, job.spec.nodes[static_cast<std::size_t>(r)],
                                       rng_.fork());
    rs.task = job.spec.app(*rs.ctx);
  }
  engine_.schedule_at(std::max(start_at, engine_.now()), [this, id] {
    JobState& j = jobs_[static_cast<std::size_t>(id)];
    j.start_time = engine_.now();
    for (auto& rs : j.ranks) rs.task.start([this, id] { on_rank_done(id); });
  });
  return id;
}

void Machine::request_stop(JobId id) {
  jobs_[static_cast<std::size_t>(id)].stop_requested = true;
}

void Machine::on_rank_done(JobId id) {
  JobState& j = jobs_[static_cast<std::size_t>(id)];
  if (++j.ranks_done == static_cast<int>(j.ranks.size())) {
    j.end_time = engine_.now();
    if (watched_[static_cast<std::size_t>(id)] != 0) {
      watched_[static_cast<std::size_t>(id)] = 0;
      if (--watch_remaining_ == 0) engine_.stop();
    }
    // After the watch bookkeeping, so a listener that submits follow-on jobs
    // cannot disturb an in-progress run_to_completion() decision.
    if (on_job_complete_) on_job_complete_(id, j.end_time);
  }
}

bool Machine::run_to_completion(std::span<const JobId> watch) {
  watch_remaining_ = 0;
  for (const JobId id : watch) {
    if (jobs_[static_cast<std::size_t>(id)].complete()) continue;
    watched_[static_cast<std::size_t>(id)] = 1;
    ++watch_remaining_;
  }
  if (watch_remaining_ == 0) return true;
  engine_.clear_stop();
  // Completion stops the host engine; the sharded driver observes the stop
  // at the next window barrier.
  if (sharded_ != nullptr)
    sharded_->run();
  else
    engine_.run();
  const bool ok = watch_remaining_ == 0;
  engine_.clear_stop();
  return ok;
}

bool Machine::run_to_completion_until(std::span<const JobId> watch,
                                      sim::Tick deadline) {
  // Clear every flag before recomputing: a job watched by an earlier slice
  // that never completed must not keep decrementing a later slice's count.
  std::fill(watched_.begin(), watched_.end(), char{0});
  watch_remaining_ = 0;
  for (const JobId id : watch) {
    if (jobs_[static_cast<std::size_t>(id)].complete()) continue;
    watched_[static_cast<std::size_t>(id)] = 1;
    ++watch_remaining_;
  }
  if (watch_remaining_ == 0) return true;
  engine_.clear_stop();
  // Completion stops the host engine exactly as in run_to_completion; the
  // deadline bounds the slice otherwise. Sharded mode uses the exclusive
  // variant so the slice boundary reproduces the unsliced window sequence.
  if (sharded_ != nullptr)
    sharded_->run_until_exclusive(deadline);
  else
    engine_.run_until(deadline);
  const bool ok = watch_remaining_ == 0;
  engine_.clear_stop();
  return ok;
}

sim::Tick Machine::checkpoint_time(sim::Tick desired) const {
  const sim::Tick t = std::max(desired, engine_.now() + 1);
  if (sharded_ == nullptr) return t;
  const sim::Tick g = sharded_->lookahead();
  return ((t + g - 1) / g) * g;
}

void Machine::run_until_stopped() {
  engine_.clear_stop();
  if (sharded_ != nullptr)
    sharded_->run();
  else
    engine_.run();
  engine_.clear_stop();
}

void Machine::run_for(sim::Tick duration) {
  engine_.clear_stop();
  if (sharded_ != nullptr)
    sharded_->run_until(engine_.now() + duration);
  else
    engine_.run_until(engine_.now() + duration);
}

Profile Machine::job_profile(JobId id) const {
  Profile p;
  for (const auto& rs : jobs_[static_cast<std::size_t>(id)].ranks)
    p += rs.ctx->profile();
  return p;
}

std::vector<topo::RouterId> Machine::job_routers(JobId id) const {
  std::vector<topo::RouterId> rs;
  for (const topo::NodeId n : jobs_[static_cast<std::size_t>(id)].spec.nodes)
    rs.push_back(topo_->router_of_node(n));
  std::sort(rs.begin(), rs.end());
  rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
  return rs;
}

void Machine::post_send(JobState& job, int src_rank, int dst_rank, int tag,
                        std::int64_t bytes, routing::Mode mode,
                        Request send_req) {
  const auto src_node = job.spec.nodes[static_cast<std::size_t>(src_rank)];
  const auto dst_node = job.spec.nodes[static_cast<std::size_t>(dst_rank)];
  const JobId id = job.id;
  net_->send_message(src_node, dst_node, bytes, mode,
                    [this, id, src_rank, dst_rank, tag, bytes, send_req] {
                      on_delivered(id, src_rank, dst_rank, tag, bytes,
                                   send_req);
                    });
}

void Machine::post_recv(JobState& job, int dst_rank, int src, int tag,
                        std::int64_t bytes, Request recv_req) {
  RankState& rs = job.ranks[static_cast<std::size_t>(dst_rank)];
  // Try the unexpected queue first (FIFO order).
  for (auto it = rs.unexpected.begin(); it != rs.unexpected.end(); ++it) {
    if ((src == kAnySource || it->src == src) &&
        (tag == kAnyTag || it->tag == tag)) {
      rs.unexpected.erase(it);
      recv_req->complete(engine_.now());
      return;
    }
  }
  rs.posted.push_back(PostedRecv{src, tag, std::move(recv_req)});
  (void)bytes;
}

void Machine::on_delivered(JobId id, int src_rank, int dst_rank, int tag,
                           std::int64_t bytes, const Request& send_req) {
  send_req->complete(engine_.now());
  JobState& job = jobs_[static_cast<std::size_t>(id)];
  RankState& rs = job.ranks[static_cast<std::size_t>(dst_rank)];
  for (auto it = rs.posted.begin(); it != rs.posted.end(); ++it) {
    if ((it->src == kAnySource || it->src == src_rank) &&
        (it->tag == kAnyTag || it->tag == tag)) {
      Request req = std::move(it->req);
      rs.posted.erase(it);
      req->complete(engine_.now());
      return;
    }
  }
  rs.unexpected.push_back(ArrivedMsg{src_rank, tag, bytes});
}

}  // namespace dfsim::mpi
