// AutoPerf-style MPI profiling (paper Section III-B).
//
// AutoPerf intercepts MPI calls via PMPI wrapping and reports, per MPI
// interface: call count, average bytes, and total wallclock time. RankCtx
// feeds the same numbers here for every operation a rank performs; profiles
// merge across ranks to produce Table I rows and the Fig. 5 / Fig. 8
// runtime breakdowns.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dfsim::mpi {

enum class Op : std::uint8_t {
  kIsend = 0,
  kIrecv,
  kSend,
  kRecv,
  kWait,
  kWaitall,
  kAllreduce,
  kAlltoall,
  kAlltoallv,
  kBarrier,
  kBcast,
  kReduce,
  kAllgather,
  kReduceScatter,
  kGather,
  kScatter,
  kCount
};
inline constexpr int kNumOps = static_cast<int>(Op::kCount);

std::string_view op_name(Op op);

struct OpStats {
  std::int64_t calls = 0;
  std::int64_t bytes = 0;
  sim::Tick time_ns = 0;

  OpStats& operator+=(const OpStats& o) {
    calls += o.calls;
    bytes += o.bytes;
    time_ns += o.time_ns;
    return *this;
  }
};

class Profile {
 public:
  void record(Op op, sim::Tick elapsed, std::int64_t bytes) {
    auto& s = ops_[static_cast<std::size_t>(op)];
    ++s.calls;
    s.bytes += bytes;
    s.time_ns += elapsed;
  }

  [[nodiscard]] const OpStats& stats(Op op) const {
    return ops_[static_cast<std::size_t>(op)];
  }
  /// Replace one op's aggregate wholesale. For deserialization (the
  /// campaign result cache rebuilds profiles from stored bytes) — model
  /// code records through record() only.
  void set_stats(Op op, const OpStats& s) {
    ops_[static_cast<std::size_t>(op)] = s;
  }
  [[nodiscard]] sim::Tick total_mpi_ns() const;

  /// Ops sorted by descending time (for "MPI Call1/2/3" in Table I).
  [[nodiscard]] std::vector<Op> ops_by_time() const;

  Profile& operator+=(const Profile& o);

 private:
  std::array<OpStats, kNumOps> ops_{};
};

}  // namespace dfsim::mpi
