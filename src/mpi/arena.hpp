// Thread-local size-bucketed free lists for the MPI layer's per-operation
// allocations: coroutine frames (every wait/send/recv/collective call) and
// request blocks (every isend/irecv). These are the last steady-state heap
// allocations in a production trial — the forwarding plane pools everything
// already — and they recur at message rate, so recycling them makes the
// whole sim report ~0 allocs/event once each bucket has reached its
// high-water mark.
//
// Thread-locality is the correctness argument: a trial runs entirely on one
// thread (TrialRunner gives each trial to one worker; under sharded
// execution the MPI layer lives on the host shard, which always runs on the
// coordinating thread), so every block is freed on the thread that
// allocated it and the lists need no synchronization. Memory is retained
// until thread exit, bounded by each thread's high-water mark per bucket.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace dfsim::mpi::arena {

inline constexpr std::size_t kGranule = 64;  ///< bucket size step (bytes)
inline constexpr std::size_t kBuckets = 64;  ///< covers blocks up to 4 KiB

inline std::vector<void*>& bucket(std::size_t b) {
  thread_local std::vector<void*> lists[kBuckets];
  return lists[b];
}

[[nodiscard]] inline void* alloc(std::size_t n) {
  const std::size_t b = (n + kGranule - 1) / kGranule;
  if (b >= kBuckets) return ::operator new(n);  // oversized: plain heap
  auto& list = bucket(b);
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    return p;
  }
  return ::operator new(b * kGranule);
}

inline void free(void* p, std::size_t n) noexcept {
  const std::size_t b = (n + kGranule - 1) / kGranule;
  if (b >= kBuckets) {
    ::operator delete(p);
    return;
  }
  // push_back may grow the list's storage; that amortizes to zero once the
  // bucket has seen its high-water population.
  bucket(b).push_back(p);
}

/// Standard allocator over the arena — lets std::allocate_shared place a
/// request block (object + control block, one fixed size per type) on the
/// free lists instead of the global heap.
template <class T>
struct Alloc {
  using value_type = T;
  Alloc() = default;
  template <class U>
  Alloc(const Alloc<U>&) noexcept {}  // NOLINT(google-explicit-constructor)
  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena::alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena::free(p, n * sizeof(T));
  }
  template <class U>
  bool operator==(const Alloc<U>&) const noexcept {
    return true;
  }
};

}  // namespace dfsim::mpi::arena
