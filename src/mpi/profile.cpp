#include "mpi/profile.hpp"

#include <algorithm>

namespace dfsim::mpi {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kIsend: return "MPI_Isend";
    case Op::kIrecv: return "MPI_Irecv";
    case Op::kSend: return "MPI_Send";
    case Op::kRecv: return "MPI_Recv";
    case Op::kWait: return "MPI_Wait";
    case Op::kWaitall: return "MPI_Waitall";
    case Op::kAllreduce: return "MPI_Allreduce";
    case Op::kAlltoall: return "MPI_Alltoall";
    case Op::kAlltoallv: return "MPI_Alltoallv";
    case Op::kBarrier: return "MPI_Barrier";
    case Op::kBcast: return "MPI_Bcast";
    case Op::kReduce: return "MPI_Reduce";
    case Op::kAllgather: return "MPI_Allgather";
    case Op::kReduceScatter: return "MPI_Reduce_scatter";
    case Op::kGather: return "MPI_Gather";
    case Op::kScatter: return "MPI_Scatter";
    case Op::kCount: break;
  }
  return "?";
}

sim::Tick Profile::total_mpi_ns() const {
  sim::Tick t = 0;
  for (const auto& s : ops_) t += s.time_ns;
  return t;
}

std::vector<Op> Profile::ops_by_time() const {
  std::vector<Op> order;
  for (int i = 0; i < kNumOps; ++i) order.push_back(static_cast<Op>(i));
  std::stable_sort(order.begin(), order.end(), [this](Op a, Op b) {
    return stats(a).time_ns > stats(b).time_ns;
  });
  return order;
}

Profile& Profile::operator+=(const Profile& o) {
  for (int i = 0; i < kNumOps; ++i)
    ops_[static_cast<std::size_t>(i)] += o.ops_[static_cast<std::size_t>(i)];
  return *this;
}

}  // namespace dfsim::mpi
