// Coroutine task type for simulated MPI ranks.
//
// Every rank program (and every collective algorithm) is a CoTask coroutine.
// Blocking MPI semantics map onto suspension: an operation's awaitable
// suspends the rank and the network's completion callback resumes it, so a
// whole job is just a set of coroutines multiplexed on the discrete-event
// engine. CoTask is lazy (started explicitly or by co_await) and resumes its
// awaiter via symmetric transfer on completion.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>

#include "mpi/arena.hpp"

namespace dfsim::mpi {

class [[nodiscard]] CoTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation = std::noop_coroutine();
    std::function<void()> on_done;  ///< top-level completion hook

    // Frames recur at MPI-operation rate; recycle them through the
    // thread-local arena so steady-state trials don't touch the heap.
    static void* operator new(std::size_t n) { return arena::alloc(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      arena::free(p, n);
    }

    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto& p = h.promise();
        if (p.on_done) p.on_done();
        return p.continuation;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  CoTask() = default;
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }
  [[nodiscard]] bool done() const { return !h_ || h_.done(); }

  /// Start a top-level task; `on_done` fires when the coroutine completes.
  void start(std::function<void()> on_done = {}) {
    h_.promise().on_done = std::move(on_done);
    h_.resume();
  }

  // Awaitable: `co_await subtask` starts it and resumes the awaiter when it
  // finishes.
  [[nodiscard]] bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() const noexcept {}

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace dfsim::mpi
