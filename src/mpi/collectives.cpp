#include "mpi/collectives.hpp"

#include <algorithm>

namespace dfsim::mpi::coll {

namespace {

/// Simultaneous internal send+recv (both world ranks), waiting for both.
CoTask sendrecv(RankCtx& ctx, int to_world, int from_world,
                std::int64_t send_bytes, std::int64_t recv_bytes, int tag,
                routing::Mode mode) {
  Request rs = ctx.isend_mode(to_world, send_bytes, tag, mode);
  Request rr = ctx.irecv(from_world, recv_bytes, tag);
  co_await await_req(rr);
  co_await await_req(rs);
}

/// Largest power of two <= n (n >= 1).
int pow2_floor(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

CoTask barrier(RankCtx& ctx, Comm comm) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const int n = comm.size();
  if (n > 1) {
    RankCtx::InternalGuard g(ctx);
    const int me = comm.my_index;
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
      const int to = comm.world((me + k) % n);
      const int from = comm.world((me - k + n) % n);
      co_await sendrecv(ctx, to, from, 0, 0, tag + round, ctx.mode_p2p());
    }
  }
  ctx.record(Op::kBarrier, ctx.now() - t0, 0);
}

namespace {

CoTask allreduce_recdbl(RankCtx& ctx, const Comm& comm, std::int64_t bytes,
                        int tag) {
  const int n = comm.size();
  const int me = comm.my_index;
  const int p2 = pow2_floor(n);
  const int rem = n - p2;
  // Fold the surplus ranks into the power-of-two core.
  if (me >= p2) {
    {
      const Request q_ = ctx.isend_mode(comm.world(me - p2), bytes, tag, ctx.mode_p2p());
      co_await await_req(q_);
    }
    {
      const Request q_ = ctx.irecv(comm.world(me - p2), bytes, tag + 1);
      co_await await_req(q_);
    }
    co_return;
  }
  if (me < rem)
    {
      const Request q_ = ctx.irecv(comm.world(me + p2), bytes, tag);
      co_await await_req(q_);
    }
  int round = 2;
  for (int mask = 1; mask < p2; mask <<= 1, ++round) {
    const int partner = comm.world(me ^ mask);
    co_await sendrecv(ctx, partner, partner, bytes, bytes, tag + round,
                      ctx.mode_p2p());
  }
  if (me < rem)
    {
      const Request q_ = ctx.isend_mode(comm.world(me + p2), bytes, tag + 1, ctx.mode_p2p());
      co_await await_req(q_);
    }
}

CoTask allreduce_ring(RankCtx& ctx, const Comm& comm, std::int64_t bytes,
                      int tag) {
  // Reduce-scatter followed by allgather: 2(n-1) rounds of bytes/n chunks.
  const int n = comm.size();
  const int me = comm.my_index;
  const std::int64_t chunk = std::max<std::int64_t>(1, bytes / n);
  const int to = comm.world((me + 1) % n);
  const int from = comm.world((me - 1 + n) % n);
  for (int r = 0; r < 2 * (n - 1); ++r)
    co_await sendrecv(ctx, to, from, chunk, chunk, tag + r, ctx.mode_p2p());
}

}  // namespace

CoTask allreduce(RankCtx& ctx, Comm comm, std::int64_t bytes) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  if (comm.size() > 1) {
    RankCtx::InternalGuard g(ctx);
    if (bytes >= kRingThresholdBytes && comm.size() > 2)
      co_await allreduce_ring(ctx, comm, bytes, tag);
    else
      co_await allreduce_recdbl(ctx, comm, bytes, tag);
  }
  ctx.record(Op::kAllreduce, ctx.now() - t0, bytes);
}

namespace {

CoTask alltoall_impl(RankCtx& ctx, const Comm& comm,
                     const std::vector<std::int64_t>& bytes_per_peer,
                     int tag) {
  // Pairwise exchange: round r exchanges with rank +/- r; uses the
  // Alltoall routing mode (AD1 by default).
  const int n = comm.size();
  const int me = comm.my_index;
  for (int r = 1; r < n; ++r) {
    const int to_idx = (me + r) % n;
    const int from_idx = (me - r + n) % n;
    co_await sendrecv(ctx, comm.world(to_idx), comm.world(from_idx),
                      bytes_per_peer[static_cast<std::size_t>(to_idx)],
                      bytes_per_peer[static_cast<std::size_t>(from_idx)],
                      tag + r, ctx.mode_a2a());
  }
}

}  // namespace

CoTask alltoall(RankCtx& ctx, Comm comm, std::int64_t bytes_per_pair) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const std::int64_t total = bytes_per_pair * (comm.size() - 1);
  if (comm.size() > 1) {
    RankCtx::InternalGuard g(ctx);
    const std::vector<std::int64_t> per(
        static_cast<std::size_t>(comm.size()), bytes_per_pair);
    co_await alltoall_impl(ctx, comm, per, tag);
  }
  ctx.record(Op::kAlltoall, ctx.now() - t0, total);
}

CoTask alltoallv(RankCtx& ctx, Comm comm,
                 std::vector<std::int64_t> bytes_per_peer) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  std::int64_t total = 0;
  for (int i = 0; i < comm.size(); ++i)
    if (i != comm.my_index) total += bytes_per_peer[static_cast<std::size_t>(i)];
  if (comm.size() > 1) {
    RankCtx::InternalGuard g(ctx);
    co_await alltoall_impl(ctx, comm, bytes_per_peer, tag);
  }
  ctx.record(Op::kAlltoallv, ctx.now() - t0, total);
}

CoTask bcast(RankCtx& ctx, Comm comm, std::int64_t bytes, int root) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const int n = comm.size();
  if (n > 1) {
    RankCtx::InternalGuard g(ctx);
    const int vrank = (comm.my_index - root + n) % n;
    int mask = 1;
    while (mask < n) {
      if ((vrank & mask) != 0) {
        const int src = comm.world((vrank - mask + root) % n);
        {
      const Request q_ = ctx.irecv(src, bytes, tag);
      co_await await_req(q_);
    }
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < n) {
        const int dst = comm.world((vrank + mask + root) % n);
        {
      const Request q_ = ctx.isend_mode(dst, bytes, tag, ctx.mode_p2p());
      co_await await_req(q_);
    }
      }
      mask >>= 1;
    }
  }
  ctx.record(Op::kBcast, ctx.now() - t0, bytes);
}

CoTask reduce(RankCtx& ctx, Comm comm, std::int64_t bytes, int root) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const int n = comm.size();
  if (n > 1) {
    RankCtx::InternalGuard g(ctx);
    const int vrank = (comm.my_index - root + n) % n;
    int mask = 1;
    while (mask < n) {
      if ((vrank & mask) != 0) {
        const int dst = comm.world((vrank - mask + root) % n);
        {
      const Request q_ = ctx.isend_mode(dst, bytes, tag, ctx.mode_p2p());
      co_await await_req(q_);
    }
        break;
      }
      if (vrank + mask < n) {
        const int src = comm.world((vrank + mask + root) % n);
        {
      const Request q_ = ctx.irecv(src, bytes, tag);
      co_await await_req(q_);
    }
      }
      mask <<= 1;
    }
  }
  ctx.record(Op::kReduce, ctx.now() - t0, bytes);
}

}  // namespace dfsim::mpi::coll

namespace dfsim::mpi::coll {

CoTask allgather(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const int n = comm.size();
  if (n > 1) {
    RankCtx::InternalGuard g(ctx);
    // Ring: round r forwards the block received in round r-1.
    const int me = comm.my_index;
    const int to = comm.world((me + 1) % n);
    const int from = comm.world((me - 1 + n) % n);
    for (int r = 0; r < n - 1; ++r)
      co_await sendrecv(ctx, to, from, bytes_per_rank, bytes_per_rank, tag + r,
                        ctx.mode_p2p());
  }
  ctx.record(Op::kAllgather, ctx.now() - t0, bytes_per_rank * (n - 1));
}

CoTask reduce_scatter(RankCtx& ctx, Comm comm, std::int64_t total_bytes) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  const int n = comm.size();
  if (n > 1) {
    RankCtx::InternalGuard g(ctx);
    const std::int64_t chunk = std::max<std::int64_t>(1, total_bytes / n);
    const int me = comm.my_index;
    const int to = comm.world((me + 1) % n);
    const int from = comm.world((me - 1 + n) % n);
    for (int r = 0; r < n - 1; ++r)
      co_await sendrecv(ctx, to, from, chunk, chunk, tag + r, ctx.mode_p2p());
  }
  ctx.record(Op::kReduceScatter, ctx.now() - t0, total_bytes);
}

namespace {

/// Binomial tree data movement: leaves->root when `up`, root->leaves when
/// not. Data volume per link doubles toward the root (gather semantics).
CoTask binomial_move(RankCtx& ctx, const Comm& comm,
                     std::int64_t bytes_per_rank, int root, int tag, bool up) {
  const int n = comm.size();
  const int vrank = (comm.my_index - root + n) % n;
  // Subtree size owned by vrank at each mask step bounds the payload.
  if (up) {
    int mask = 1;
    while (mask < n) {
      if ((vrank & mask) != 0) {
        const int dst = comm.world((vrank - mask + root) % n);
        // Send this rank's accumulated subtree.
        const std::int64_t subtree =
            std::min<std::int64_t>(mask, n - vrank) * bytes_per_rank;
        {
          const Request q_ = ctx.isend_mode(dst, subtree, tag, ctx.mode_p2p());
          co_await await_req(q_);
        }
        break;
      }
      if (vrank + mask < n) {
        const int src = comm.world((vrank + mask + root) % n);
        const std::int64_t subtree =
            std::min<std::int64_t>(mask, n - (vrank + mask)) * bytes_per_rank;
        {
          const Request q_ = ctx.irecv(src, subtree, tag);
          co_await await_req(q_);
        }
      }
      mask <<= 1;
    }
  } else {
    int mask = 1;
    while (mask < n) {
      if ((vrank & mask) != 0) {
        const int src = comm.world((vrank - mask + root) % n);
        const std::int64_t subtree =
            std::min<std::int64_t>(mask, n - vrank) * bytes_per_rank;
        {
          const Request q_ = ctx.irecv(src, subtree, tag);
          co_await await_req(q_);
        }
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < n) {
        const int dst = comm.world((vrank + mask + root) % n);
        const std::int64_t subtree =
            std::min<std::int64_t>(mask, n - (vrank + mask)) * bytes_per_rank;
        {
          const Request q_ = ctx.isend_mode(dst, subtree, tag, ctx.mode_p2p());
          co_await await_req(q_);
        }
      }
      mask >>= 1;
    }
  }
}

}  // namespace

CoTask gather(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank, int root) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  if (comm.size() > 1) {
    RankCtx::InternalGuard g(ctx);
    co_await binomial_move(ctx, comm, bytes_per_rank, root, tag, /*up=*/true);
  }
  ctx.record(Op::kGather, ctx.now() - t0, bytes_per_rank);
}

CoTask scatter(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank, int root) {
  const sim::Tick t0 = ctx.now();
  const int tag = ctx.next_coll_tag();
  co_await ctx.compute(kSwOverheadNs);
  if (comm.size() > 1) {
    RankCtx::InternalGuard g(ctx);
    co_await binomial_move(ctx, comm, bytes_per_rank, root, tag, /*up=*/false);
  }
  ctx.record(Op::kScatter, ctx.now() - t0, bytes_per_rank);
}

}  // namespace dfsim::mpi::coll
