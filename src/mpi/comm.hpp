// Communicators: ordered rank groups for collectives.
//
// A Comm maps communicator ranks (positions) to job (world) ranks. Each rank
// holds its own Comm value with `my_index` set to its position; apps build
// row/column/pencil subcommunicators from their logical process grids.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace dfsim::mpi {

struct Comm {
  std::vector<int> ranks;  ///< position -> world rank
  int my_index = 0;        ///< this rank's position in `ranks`

  [[nodiscard]] int size() const { return static_cast<int>(ranks.size()); }
  [[nodiscard]] int world(int i) const {
    return ranks[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int my_world() const { return world(my_index); }

  /// World communicator of `n` ranks for world rank `me`.
  static Comm world(int n, int me) {
    Comm c;
    c.ranks.resize(static_cast<std::size_t>(n));
    std::iota(c.ranks.begin(), c.ranks.end(), 0);
    c.my_index = me;
    return c;
  }

  /// Subcommunicator from an explicit world-rank list; `me_world` must be in
  /// the list.
  static Comm sub(std::vector<int> world_ranks, int me_world) {
    Comm c;
    c.ranks = std::move(world_ranks);
    c.my_index = 0;
    for (int i = 0; i < c.size(); ++i)
      if (c.world(i) == me_world) {
        c.my_index = i;
        break;
      }
    return c;
  }
};

}  // namespace dfsim::mpi
