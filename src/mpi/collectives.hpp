// Collective algorithms over simulated point-to-point.
//
// Real algorithms (not latency formulas) so collective performance responds
// to routing mode, placement, and congestion exactly the way the paper's
// applications experience it:
//  * Barrier    — dissemination.
//  * Allreduce  — recursive doubling (small), ring reduce-scatter+allgather
//                 (large): latency-bound vs bandwidth-bound behaviour.
//  * Alltoall/v — pairwise exchange; uses the job's A2A routing mode
//                 (Cray MPI routes MPI_Alltoall[v] with AD1 by default,
//                 paper Section II-D).
//  * Bcast/Reduce — binomial trees.
//
// All collectives must be called by every rank of the communicator in the
// same order (standard MPI semantics); internal messages use a reserved tag
// space so they never collide with application traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rank.hpp"
#include "mpi/task.hpp"

namespace dfsim::mpi::coll {

/// Message size at/above which Allreduce switches to the ring algorithm.
inline constexpr std::int64_t kRingThresholdBytes = 64 * 1024;

CoTask barrier(RankCtx& ctx, Comm comm);
CoTask allreduce(RankCtx& ctx, Comm comm, std::int64_t bytes);
CoTask alltoall(RankCtx& ctx, Comm comm, std::int64_t bytes_per_pair);
CoTask alltoallv(RankCtx& ctx, Comm comm, std::vector<std::int64_t> bytes_per_peer);
CoTask bcast(RankCtx& ctx, Comm comm, std::int64_t bytes, int root = 0);
CoTask reduce(RankCtx& ctx, Comm comm, std::int64_t bytes, int root = 0);
/// Ring allgather: each rank contributes `bytes_per_rank`; n-1 rounds of
/// neighbor forwarding (bandwidth-optimal).
CoTask allgather(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank);
/// Ring reduce-scatter: the first half of the ring allreduce.
CoTask reduce_scatter(RankCtx& ctx, Comm comm, std::int64_t total_bytes);
/// Binomial-tree gather/scatter of `bytes_per_rank` per leaf.
CoTask gather(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank, int root = 0);
CoTask scatter(RankCtx& ctx, Comm comm, std::int64_t bytes_per_rank, int root = 0);

}  // namespace dfsim::mpi::coll
