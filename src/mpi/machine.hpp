// Machine: a whole simulated system (topology + network + jobs).
//
// The Machine owns the engine, topology, and network, runs any number of
// concurrent jobs (the paper's production condition: a foreground job plus
// background jobs from other "users"), performs MPI message matching between
// ranks, and reports per-job runtimes and profiles. One MPI rank per compute
// node, matching the paper's node-level reporting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mpi/profile.hpp"
#include "mpi/rank.hpp"
#include "mpi/task.hpp"
#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"
#include "topo/topology.hpp"
#include "topo/partition.hpp"

namespace dfsim::mpi {

using JobId = int;

struct JobSpec {
  std::string name;                 ///< app name, for reports
  std::vector<topo::NodeId> nodes;  ///< placement; one rank per node
  routing::Mode mode_p2p = routing::Mode::kAd0;  ///< MPICH_GNI_ROUTING_MODE
  routing::Mode mode_a2a = routing::Mode::kAd1;  ///< MPICH_GNI_A2A_ROUTING_MODE
  /// The per-rank program. Called once per rank with that rank's context.
  using AppFn = std::function<CoTask(RankCtx&)>;
  AppFn app;
};

struct PostedRecv {
  int src = kAnySource;
  int tag = kAnyTag;
  Request req;
};
struct ArrivedMsg {
  int src = 0;
  int tag = 0;
  std::int64_t bytes = 0;
};

struct RankState {
  std::unique_ptr<RankCtx> ctx;
  CoTask task;
  std::vector<PostedRecv> posted;
  std::vector<ArrivedMsg> unexpected;
};

struct JobState {
  JobId id = -1;
  JobSpec spec;
  sim::Tick start_time = -1;
  sim::Tick end_time = -1;
  int ranks_done = 0;
  bool stop_requested = false;
  std::deque<RankState> ranks;

  [[nodiscard]] bool complete() const { return end_time >= 0; }
  [[nodiscard]] sim::Tick runtime() const {
    return complete() ? end_time - start_time : -1;
  }
};

class Machine {
 public:
  /// `shards` selects the execution substrate: 0 (default) is the exact
  /// legacy serial engine; any N >= 1 runs the lookahead-windowed sharded
  /// engine (results byte-identical for every N >= 1, but a different —
  /// equally valid — schedule than serial; see docs/MODEL.md section 9).
  /// `shard_workers` caps the sharded engine's executor threads (0 = auto;
  /// wall-clock only, never affects results; ignored in serial mode).
  explicit Machine(topo::Config cfg, std::uint64_t seed, int shards = 0,
                   int shard_workers = 0);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Submit a job; its ranks start at simulated time `start_at`.
  JobId submit(JobSpec spec, sim::Tick start_at = 0);

  /// Re-partition the sharded substrate with load-aware contiguous blocks:
  /// `group_weight[g]` is a deterministic traffic estimate for group g
  /// (e.g. busy nodes after placement) and the new plan minimizes the
  /// maximum block weight (topo::ShardPlan::build_weighted). Legal only
  /// BEFORE the first event executes: at that point the only scheduled
  /// work is host-shard job starts and shard-agnostic globals, so moving
  /// group ownership cannot move any event between shards. The lookahead
  /// grid and the shard count are untouched, so results stay byte-
  /// identical to any other partition (including the count-balanced
  /// default). Returns false (and changes nothing) in serial mode or
  /// after execution has started.
  bool rebalance_shards(const std::vector<std::uint64_t>& group_weight);

  /// Cooperative stop for open-ended (background) jobs: their app loops poll
  /// RankCtx::stop_requested().
  void request_stop(JobId id);

  /// Fired (from inside engine execution, at the completing event's simulated
  /// time) when the last rank of a job finishes. This is how allocations get
  /// back to a scheduler: sched::Scheduler registers itself here so nodes are
  /// released the moment a job completes, and sched::SystemScheduler chains
  /// off it to start queued jobs on the freed nodes. The listener may submit
  /// new jobs and schedule events; it must not destroy the machine.
  using JobCompletionListener = std::function<void(JobId, sim::Tick end_time)>;
  void set_job_completion_listener(JobCompletionListener fn) {
    on_job_complete_ = std::move(fn);
  }

  /// Change a running job's routing modes (takes effect on the next message;
  /// Aries allows per-message mode selection). Used by the AWR runtime.
  void set_job_modes(JobId id, routing::Mode p2p, routing::Mode a2a) {
    auto& spec = jobs_[static_cast<std::size_t>(id)].spec;
    spec.mode_p2p = p2p;
    spec.mode_a2a = a2a;
  }

  /// Run until every job in `watch` completes. Returns false if the engine's
  /// event budget was exhausted first.
  bool run_to_completion(std::span<const JobId> watch);
  /// Bounded slice of run_to_completion: run until every watched job
  /// completes OR simulated time reaches `deadline`, whichever is first.
  /// Returns true when the watch set completed within the slice. Watch
  /// flags are recomputed on every call, so a sequence of slices followed
  /// by run_to_completion() executes exactly the schedule one unbounded
  /// call would have — PROVIDED each deadline comes from checkpoint_time()
  /// (in sharded mode an off-grid deadline would insert a barrier the
  /// unsliced run does not have; see ShardedEngine::run_until_exclusive).
  /// This is the primitive campaign checkpointing is built on.
  bool run_to_completion_until(std::span<const JobId> watch,
                               sim::Tick deadline);
  /// Smallest valid checkpoint boundary at or after `desired`: strictly in
  /// the future and, in sharded mode, aligned up to the lookahead grid.
  [[nodiscard]] sim::Tick checkpoint_time(sim::Tick desired) const;
  /// Earliest pending work across the whole substrate (sim::Engine::kNoEvent
  /// when idle — i.e. when an unbounded run would return immediately).
  [[nodiscard]] sim::Tick next_event_time() const {
    return sharded_ != nullptr ? sharded_->next_event_time()
                               : engine_.next_event_time();
  }
  /// Run for a fixed window of simulated time.
  void run_for(sim::Tick duration);
  /// Run until a listener stops the engine (engine().stop()), the event
  /// queue drains on every shard, or the budget is exhausted. This is the
  /// drive loop for open-ended schedulers (sched::SystemScheduler) whose
  /// watch set is not known up front: jobs submit themselves from arrival
  /// events and the completion listener decides when the system is done.
  void run_until_stopped();

  [[nodiscard]] const JobState& job(JobId id) const {
    return jobs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_jobs() const { return jobs_.size(); }
  /// Merged profile over all ranks of a job.
  [[nodiscard]] Profile job_profile(JobId id) const;
  /// Routers touched by a job's nodes (AutoPerf's local counter view).
  [[nodiscard]] std::vector<topo::RouterId> job_routers(JobId id) const;

  /// Host engine: the single engine in serial mode, shard 0's in sharded
  /// mode. Its clock is the machine clock either way.
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] const net::Network& network() const { return *net_; }
  [[nodiscard]] bool sharded() const { return sharded_ != nullptr; }
  /// The sharded substrate, or nullptr in serial mode.
  [[nodiscard]] sim::ShardedEngine* sharded_engine() { return sharded_.get(); }

  /// Event budget / accounting across the whole substrate (every shard in
  /// sharded mode). Use these rather than engine()'s: the host engine only
  /// sees shard 0's events.
  void set_event_budget(std::uint64_t budget);
  [[nodiscard]] bool budget_exhausted() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  // --- RankCtx plumbing ---
  void post_send(JobState& job, int src_rank, int dst_rank, int tag,
                 std::int64_t bytes, routing::Mode mode, Request send_req);
  void post_recv(JobState& job, int dst_rank, int src, int tag,
                 std::int64_t bytes, Request recv_req);

 private:
  void on_delivered(JobId job, int src_rank, int dst_rank, int tag,
                    std::int64_t bytes, const Request& send_req);
  void on_rank_done(JobId job);

  std::unique_ptr<const topo::Topology> topo_;
  std::unique_ptr<topo::ShardPlan> plan_;        ///< sharded mode only
  std::unique_ptr<sim::ShardedEngine> sharded_;  ///< sharded mode only
  sim::Engine serial_engine_;  ///< the engine when running serially
  sim::Engine& engine_;        ///< host engine alias (serial or shard 0)
  std::unique_ptr<net::Network> net_;
  sim::Rng rng_;
  std::deque<JobState> jobs_;
  std::vector<char> watched_;
  int watch_remaining_ = 0;
  JobCompletionListener on_job_complete_;
};

}  // namespace dfsim::mpi
