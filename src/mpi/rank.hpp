// Simulated-MPI rank context.
#include <cstdlib>
//
// One RankCtx per (job, rank). Exposes the MPI-ish operation set the paper's
// applications exercise (Table I): nonblocking point-to-point with tag
// matching and wildcard receives, blocking send/recv, and the collectives in
// mpi/collectives.hpp. Every operation records AutoPerf-style profile data.
//
// Routing-mode control mirrors Cray MPI's environment knobs: `mode_p2p`
// (MPICH_GNI_ROUTING_MODE, default AD0) applies to point-to-point and
// non-alltoall collectives; `mode_a2a` (MPICH_GNI_A2A_ROUTING_MODE, default
// AD1) applies to MPI_Alltoall[v].
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/arena.hpp"
#include "mpi/profile.hpp"
#include "mpi/task.hpp"
#include "sim/small_fn.hpp"
#include "routing/bias.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::mpi {

class Machine;
struct JobState;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// Tags at or above this value are reserved for collective internals.
inline constexpr int kCollTagBase = 1 << 20;
/// Simulated software overhead per MPI call.
inline constexpr sim::Tick kSwOverheadNs = 150;

struct ReqState {
  bool done = false;
  std::uint8_t n_waiters = 0;
  sim::Tick completed_at = 0;
  // Inline waiter slots: a request is awaited by at most one coroutine
  // (wait/waitall each co_await it once); the second slot absorbs any
  // future machine-level hook. Inline storage (vs. a vector) keeps request
  // completion allocation-free; exceeding it is a protocol bug.
  sim::SmallFn on_complete[2];

  void add_waiter(sim::SmallFn fn) {
    if (n_waiters >= 2) std::abort();  // see comment above
    on_complete[n_waiters++] = std::move(fn);
  }

  void complete(sim::Tick now) {
    if (done) std::abort();  // double completion is a protocol bug
    done = true;
    completed_at = now;
    const int n = n_waiters;
    n_waiters = 0;
    for (int i = 0; i < n; ++i) {
      sim::SmallFn cb = std::move(on_complete[i]);
      cb();
    }
  }
};
using Request = std::shared_ptr<ReqState>;

/// Request blocks recur at message rate; allocate_shared on the arena puts
/// object + control block on the thread-local free lists.
inline Request make_request() {
  return std::allocate_shared<ReqState>(arena::Alloc<ReqState>{});
}

/// Request batch for waitall-style exchanges. Apps build one per iteration,
/// so the buffer lives on the thread-local arena free lists too.
using RequestList = std::vector<Request, arena::Alloc<Request>>;

/// Awaitable: resume when the request completes.
///
/// Deliberately non-owning (trivially destructible): the caller must keep
/// the Request alive in its coroutine frame across the co_await. Owning
/// awaiter temporaries tickled a GCC 12 double-destruction of co_await
/// operand temporaries; a raw pointer sidesteps the issue and is cheaper.
struct ReqAwaiter {
  ReqState* req;
  [[nodiscard]] bool await_ready() const noexcept { return req->done; }
  void await_suspend(std::coroutine_handle<> h) {
    req->add_waiter([h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Build a ReqAwaiter from a Request the caller keeps alive.
inline ReqAwaiter await_req(const Request& r) { return ReqAwaiter{r.get()}; }

/// Awaitable: resume after `delay` ns of simulated time.
struct DelayAwaiter {
  sim::Engine& engine;
  sim::Tick delay;
  [[nodiscard]] bool await_ready() const noexcept { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

class RankCtx {
 public:
  RankCtx(Machine& m, JobState& job, int rank, topo::NodeId node,
          sim::Rng rng)
      : m_(&m), job_(&job), rank_(rank), node_(node), rng_(std::move(rng)) {}

  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const;
  [[nodiscard]] topo::NodeId node() const { return node_; }
  [[nodiscard]] sim::Engine& engine() const;
  [[nodiscard]] sim::Tick now() const;
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] Profile& profile() { return prof_; }
  [[nodiscard]] const Profile& profile() const { return prof_; }
  /// Cooperative stop flag (used by open-ended background jobs).
  [[nodiscard]] bool stop_requested() const;
  [[nodiscard]] routing::Mode mode_p2p() const;
  [[nodiscard]] routing::Mode mode_a2a() const;

  /// Pure computation for `ns` nanoseconds.
  [[nodiscard]] DelayAwaiter compute(sim::Tick ns) const {
    return DelayAwaiter{engine(), ns};
  }
  /// Computation with multiplicative jitter: ns * N(1, sigma), floored at 0.
  [[nodiscard]] DelayAwaiter compute_jitter(sim::Tick ns, double sigma) {
    const double f = rng_.normal(1.0, sigma);
    return compute(static_cast<sim::Tick>(static_cast<double>(ns) *
                                          (f > 0.0 ? f : 0.0)));
  }

  // --- Point-to-point ---
  Request isend(int dst, std::int64_t bytes, int tag);
  Request irecv(int src, std::int64_t bytes, int tag);
  /// isend with explicit routing mode (collective internals).
  Request isend_mode(int dst, std::int64_t bytes, int tag, routing::Mode mode);

  [[nodiscard]] CoTask wait(Request r);
  /// Await completion without recording a profile entry (collective
  /// internals). The caller must keep `r` alive across the co_await.
  [[nodiscard]] static ReqAwaiter wait_internal(const Request& r) {
    return await_req(r);
  }
  [[nodiscard]] CoTask waitall(RequestList rs);
  [[nodiscard]] CoTask send(int dst, std::int64_t bytes, int tag);
  [[nodiscard]] CoTask recv(int src, std::int64_t bytes, int tag);

  // --- Collective plumbing ---
  /// Next collective tag (all ranks call collectives in the same order, so
  /// sequence numbers align across a communicator).
  /// (Stride 4096 leaves room for per-round tags of ring algorithms on
  /// communicators of up to 2047 ranks.)
  [[nodiscard]] int next_coll_tag() { return kCollTagBase + 4096 * coll_seq_++; }

  /// While an InternalGuard is alive, p2p ops are not recorded in the
  /// profile (the enclosing collective records itself instead).
  struct InternalGuard {
    explicit InternalGuard(RankCtx& c) : ctx(c) { ++ctx.internal_depth_; }
    ~InternalGuard() { --ctx.internal_depth_; }
    InternalGuard(const InternalGuard&) = delete;
    InternalGuard& operator=(const InternalGuard&) = delete;
    RankCtx& ctx;
  };
  [[nodiscard]] bool internal() const { return internal_depth_ > 0; }
  void record(Op op, sim::Tick elapsed, std::int64_t bytes) {
    if (!internal()) prof_.record(op, elapsed, bytes);
  }
  void record_always(Op op, sim::Tick elapsed, std::int64_t bytes) {
    prof_.record(op, elapsed, bytes);
  }

 private:
  Machine* m_;
  JobState* job_;
  int rank_;
  topo::NodeId node_;
  sim::Rng rng_;
  Profile prof_;
  int coll_seq_ = 0;
  int internal_depth_ = 0;
};

}  // namespace dfsim::mpi
