// Router port state in structure-of-arrays layout.
//
// Routers are passive state; the forwarding algorithm lives in net::Network
// (it needs the global view for adaptive decisions). Each output port models
// one Aries router tile; the tile class tells which counter row (Fig. 6/10/12)
// it belongs to. STALL counters accumulate the time the head packet of a VC
// was blocked on downstream buffer space, in nanoseconds; reports convert to
// flit-times.
//
// Layout: one PortGrid holds the state of every (router, port, vc) in the
// system as flat parallel arrays indexed by a global port index
// (port_index(r, p)) and a global VC-queue index (vq_index(port, vc); the
// kNumVcs queues of one port are contiguous). The hot fields a forwarding
// step touches — occupancy for credit checks, queue heads, flit counters —
// are each a dense array, so a credit check or counter bump touches one
// cache line instead of walking router -> port -> queue object graphs.
// Packet FIFOs are intrusive (Packet::next), and blocked-sender lists are
// slab-allocated chains, so steady-state forwarding performs no heap
// allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::router {

/// Reference to a blocked sender waiting for space in a VC queue: either an
/// upstream router port or a NIC injection port.
struct WaiterRef {
  topo::RouterId router = -1;  ///< -1 => NIC injector, `port` holds the node
  topo::PortId port = -1;
};

/// Slab node of a VC queue's blocked-sender chain.
struct WaiterNode {
  WaiterRef ref;
  std::int32_t next = -1;
};

/// Per-port counter snapshot (monitoring view; assembled from the SoA
/// arrays by PortGrid::counters / net::Network::port_counters).
struct PortCounters {
  std::int64_t flits[net::kNumVcs] = {};
  std::int64_t stall_ns[net::kNumVcs] = {};
};

class PortGrid {
 public:
  /// Size and initialize every array for `topo`'s routers and ports.
  void build(const topo::Topology& topo);

  // --- Indexing ---
  [[nodiscard]] std::size_t num_ports() const { return n_ports_; }
  [[nodiscard]] int ports_of_router(topo::RouterId r) const {
    return static_cast<int>(port_base_[static_cast<std::size_t>(r) + 1] -
                            port_base_[static_cast<std::size_t>(r)]);
  }
  [[nodiscard]] std::size_t port_index(topo::RouterId r, topo::PortId p) const {
    return port_base_[static_cast<std::size_t>(r)] +
           static_cast<std::size_t>(p);
  }
  /// Raw per-router prefix-sum table (stable after build); lets the routing
  /// planner's LoadView index occupancy_flits without going through us.
  [[nodiscard]] const std::uint32_t* port_base_data() const {
    return port_base_.data();
  }
  [[nodiscard]] static std::size_t vq_index(std::size_t port, int vc) {
    return port * static_cast<std::size_t>(net::kNumVcs) +
           static_cast<std::size_t>(vc);
  }

  /// Intrusive packet FIFO of one VC queue ({head, tail} into the packet
  /// pool, linked through Packet::next). Head and tail ride one 8-byte
  /// record because push/pop always touch both.
  struct VcFifo {
    net::PacketId head = -1;
    net::PacketId tail = -1;
  };

  // --- Hot per-VC-queue state (indexed by vq_index) ---
  /// Flits resident or reserved (in flight toward this queue).
  std::vector<std::int32_t> occupancy_flits;
  std::vector<VcFifo> q;  ///< intrusive packet FIFOs
  std::vector<sim::Tick> stall_since;         ///< -1 when not stalled
  std::vector<std::uint8_t> escape_scheduled;
  std::vector<std::int32_t> waiter_head, waiter_tail;  ///< slab chain

  // --- Counters (indexed by vq_index) ---
  std::vector<std::int64_t> flits_ctr;
  std::vector<std::int64_t> stall_ns_ctr;

  // --- Per-port state (indexed by port_index) ---
  std::vector<std::uint8_t> busy;
  std::vector<std::uint8_t> last_served;
  std::vector<std::uint8_t> tile_cls;  ///< topo::TileClass per port

  // --- Blocked-sender chains ---
  // Waiter nodes live in per-shard slabs so concurrent shards never contend
  // on (or reallocate) a shared pool. Every chain is confined to one slab:
  // a sender only ever blocks on a VC queue its own shard owns (rank-1/2
  // links and injection are intra-group by construction, and the sharded
  // rank-3 protocol uses sender-side credits instead of waiters), so the
  // `shard` argument is simply the owner shard of `vq` — 0 in serial mode.
  /// Partition the waiter slab into `shards` independent slabs (resets all
  /// chains; call right after build()).
  void set_waiter_shards(int shards);
  /// Append `w` to the chain of `vq` unless an equal ref is already queued
  /// (same dedup rule the per-queue vector had).
  void add_waiter(std::size_t vq, WaiterRef w, int shard = 0);
  /// Detach the whole chain of `vq`, returning its head (-1 if empty). The
  /// caller walks the chain and frees each node; new waiters registered
  /// while the caller notifies go onto a fresh chain.
  std::int32_t detach_waiters(std::size_t vq);
  [[nodiscard]] const WaiterNode& waiter(std::int32_t i, int shard = 0) const {
    return slabs_[static_cast<std::size_t>(shard)]
        .pool[static_cast<std::size_t>(i)];
  }
  void free_waiter(std::int32_t i, int shard = 0) {
    WaiterSlab& sl = slabs_[static_cast<std::size_t>(shard)];
    sl.pool[static_cast<std::size_t>(i)].next = sl.free_head;
    sl.free_head = i;
  }
  /// Pre-size every waiter slab (capacity only).
  void reserve_waiters(std::size_t n) {
    for (auto& sl : slabs_) sl.pool.reserve(n);
  }

  /// Monitoring view of one port's counters.
  [[nodiscard]] PortCounters counters(topo::RouterId r, topo::PortId p) const;

 private:
  struct WaiterSlab {
    std::vector<WaiterNode> pool;  ///< freed nodes chain through free_head
    std::int32_t free_head = -1;
  };

  std::vector<std::uint32_t> port_base_;  ///< per-router prefix sums, n+1
  std::size_t n_ports_ = 0;
  std::vector<WaiterSlab> slabs_;  ///< one per shard (one in serial mode)
};

}  // namespace dfsim::router
