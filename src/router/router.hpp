// Router port state: per-VC queues, occupancy, stall bookkeeping, counters.
//
// Routers are passive state; the forwarding algorithm lives in net::Network
// (it needs the global view for adaptive decisions). Each output port models
// one Aries router tile; TileClass tells which counter row (Fig. 6/10/12) it
// belongs to. STALL counters accumulate the time the head packet of a VC was
// blocked on downstream buffer space, in nanoseconds; reports convert to
// flit-times.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::router {

/// Reference to a blocked sender waiting for space in a VC queue: either an
/// upstream router port or a NIC injection port.
struct WaiterRef {
  topo::RouterId router = -1;  ///< -1 => NIC injector, `port` holds the node
  topo::PortId port = -1;
};

struct VcQueue {
  std::deque<net::PacketId> queue;
  /// Flits resident or reserved (in flight toward this queue).
  std::int64_t occupancy_flits = 0;
  std::vector<WaiterRef> waiters;
};

struct PortCounters {
  std::int64_t flits[net::kNumVcs] = {};
  std::int64_t stall_ns[net::kNumVcs] = {};
};

struct Port {
  VcQueue vc[net::kNumVcs];
  bool busy = false;
  sim::Tick stall_since[net::kNumVcs] = {-1, -1, -1, -1, -1, -1};
  bool escape_scheduled[net::kNumVcs] = {};
  std::uint8_t last_served = net::kNumVcs - 1;  // so queue 0 is served first
  PortCounters ctr;
};

struct Router {
  std::vector<Port> ports;
};

}  // namespace dfsim::router
