// SoA port-grid construction and the blocked-sender slab (see router.hpp;
// the forwarding engine itself lives in net/network.cpp).
#include "router/router.hpp"

#include <algorithm>

namespace dfsim::router {

void PortGrid::build(const topo::Topology& topo) {
  const auto n_routers = static_cast<std::size_t>(topo.num_routers());
  port_base_.assign(n_routers + 1, 0);
  for (std::size_t r = 0; r < n_routers; ++r)
    port_base_[r + 1] =
        port_base_[r] +
        static_cast<std::uint32_t>(topo.num_ports(static_cast<topo::RouterId>(r)));
  n_ports_ = port_base_[n_routers];

  const std::size_t n_vqs = n_ports_ * static_cast<std::size_t>(net::kNumVcs);
  occupancy_flits.assign(n_vqs, 0);
  q.assign(n_vqs, VcFifo{});
  stall_since.assign(n_vqs, -1);
  escape_scheduled.assign(n_vqs, 0);
  waiter_head.assign(n_vqs, -1);
  waiter_tail.assign(n_vqs, -1);
  flits_ctr.assign(n_vqs, 0);
  stall_ns_ctr.assign(n_vqs, 0);

  busy.assign(n_ports_, 0);
  // Round-robin state starts at the last VC so queue 0 is served first.
  last_served.assign(n_ports_, static_cast<std::uint8_t>(net::kNumVcs - 1));
  tile_cls.resize(n_ports_);
  for (topo::RouterId r = 0; r < topo.num_routers(); ++r)
    for (topo::PortId p = 0; p < topo.num_ports(r); ++p)
      tile_cls[port_index(r, p)] =
          static_cast<std::uint8_t>(topo.port(r, p).cls);

  slabs_.assign(1, WaiterSlab{});
}

void PortGrid::set_waiter_shards(int shards) {
  slabs_.assign(static_cast<std::size_t>(shards < 1 ? 1 : shards),
                WaiterSlab{});
  std::fill(waiter_head.begin(), waiter_head.end(), -1);
  std::fill(waiter_tail.begin(), waiter_tail.end(), -1);
}

void PortGrid::add_waiter(std::size_t vq, WaiterRef w, int shard) {
  WaiterSlab& sl = slabs_[static_cast<std::size_t>(shard)];
  for (std::int32_t i = waiter_head[vq]; i >= 0;
       i = sl.pool[static_cast<std::size_t>(i)].next) {
    const WaiterRef& x = sl.pool[static_cast<std::size_t>(i)].ref;
    if (x.router == w.router && x.port == w.port) return;
  }
  std::int32_t node;
  if (sl.free_head >= 0) {
    node = sl.free_head;
    sl.free_head = sl.pool[static_cast<std::size_t>(node)].next;
  } else {
    node = static_cast<std::int32_t>(sl.pool.size());
    sl.pool.emplace_back();
  }
  sl.pool[static_cast<std::size_t>(node)] = WaiterNode{w, -1};
  if (waiter_tail[vq] >= 0)
    sl.pool[static_cast<std::size_t>(waiter_tail[vq])].next = node;
  else
    waiter_head[vq] = node;
  waiter_tail[vq] = node;
}

std::int32_t PortGrid::detach_waiters(std::size_t vq) {
  const std::int32_t head = waiter_head[vq];
  waiter_head[vq] = -1;
  waiter_tail[vq] = -1;
  return head;
}

PortCounters PortGrid::counters(topo::RouterId r, topo::PortId p) const {
  PortCounters c;
  const std::size_t base = vq_index(port_index(r, p), 0);
  for (int vc = 0; vc < net::kNumVcs; ++vc) {
    c.flits[vc] = flits_ctr[base + static_cast<std::size_t>(vc)];
    c.stall_ns[vc] = stall_ns_ctr[base + static_cast<std::size_t>(vc)];
  }
  return c;
}

}  // namespace dfsim::router
