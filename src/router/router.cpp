// Router is passive state (see net/network.cpp for the forwarding engine).
#include "router/router.hpp"
