#include "campaign/runner.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "campaign/serialize.hpp"
#include "core/runner.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dfsim::campaign {

namespace {

std::string f64_json(double v) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, p);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Core of every cached run: cache lookup, else execute (optionally with
/// checkpoint slicing) and commit.
CachedRun run_one(const core::ScenarioConfig& raw, ResultCache& cache,
                  sim::Tick checkpoint_interval, std::uint64_t* snapshots) {
  CachedRun out;
  const core::ScenarioConfig cfg = raw.resolve();
  out.fp = scenario_fingerprint(cfg);
  if (auto bytes = cache.load(out.fp)) {
    try {
      out.result = deserialize_run_result(*bytes);
      out.from_cache = true;
      return out;
    } catch (const SerializeError&) {
      // Stale or foreign payload (e.g. a format-version bump): fall
      // through and recompute; the fresh store replaces the entry.
    }
  }
  if (checkpoint_interval > 0) {
    CheckpointOptions co;
    co.interval = checkpoint_interval;
    if (snapshots != nullptr)
      co.sink = [snapshots](const sim::EngineSnapshot&) { ++*snapshots; };
    out.result = run_production_checkpointed(cfg, co);
  } else {
    out.result = core::run_production(cfg);
  }
  cache.store(out.fp, serialize(out.result));
  return out;
}

/// Parse the cell index and fingerprint out of one journal line; returns
/// false on anything that is not a well-formed line of our own format.
bool parse_journal_line(const std::string& line, int& index,
                        std::string& fp_hex) {
  constexpr const char* kHead = "{\"i\":";
  if (line.rfind(kHead, 0) != 0) return false;
  const char* first = line.c_str() + 5;
  const char* last = line.c_str() + line.size();
  const auto [p, ec] = std::from_chars(first, last, index);
  if (ec != std::errc{} || p == last || *p != ',') return false;
  const std::size_t at = line.find("\"fp\":\"");
  if (at == std::string::npos || at + 6 + 32 > line.size()) return false;
  fp_hex = line.substr(at + 6, 32);
  return line.back() == '}';
}

}  // namespace

CachedRun run_cached_production(const core::ScenarioConfig& cfg,
                                ResultCache& cache) {
  return run_one(cfg, cache, 0, nullptr);
}

core::BatchResult run_cached_production_ensemble(
    const core::ScenarioConfig& cfg, int samples,
    const core::BatchOptions& opts, ResultCache& cache) {
  core::BatchResult b;
  const auto seeds = core::derive_trial_seeds(cfg.seed, samples);
  std::vector<double> wall(static_cast<std::size_t>(samples > 0 ? samples : 0));
  std::vector<Fingerprint> fps(wall.size());
  core::TrialRunner runner(opts.jobs);
  b.results = runner.map(samples, [&](int i) {
    const auto t0 = std::chrono::steady_clock::now();
    core::ScenarioConfig c = cfg;
    c.seed = seeds[static_cast<std::size_t>(i)];
    CachedRun cr = run_one(c, cache, 0, nullptr);
    fps[static_cast<std::size_t>(i)] = cr.fp;
    wall[static_cast<std::size_t>(i)] =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return std::move(cr.result);
  });
  b.stats = runner.stats();
  b.trials.reserve(b.results.size());
  for (std::size_t i = 0; i < b.results.size(); ++i) {
    const auto& r = b.results[i];
    core::TrialReport t;
    t.index = static_cast<int>(i);
    t.ok = r.ok;
    // Same failure tag core::run_production_ensemble attaches: trial index
    // plus the fingerprint prefix of the exact scenario that failed.
    t.fail_reason = r.ok ? r.fail_reason
                         : "[trial " + std::to_string(i) +
                               " fp=" + fps[i].hex_prefix(16) + "] " +
                               r.fail_reason;
    t.wall_ms = wall[i];
    t.events = r.events_executed;
    t.budget_exhausted = r.budget_exhausted;
    b.trials.push_back(std::move(t));
  }
  return b;
}

Runner::Runner(std::vector<SweepCell> cells, ResultCache& cache,
               RunnerOptions opt)
    : cells_(std::move(cells)), cache_(cache), opt_(std::move(opt)) {}

std::string Runner::journal_line(int index, const std::string& label,
                                 const Fingerprint& fp,
                                 const core::RunResult& r) {
  std::string s = "{\"i\":" + std::to_string(index) + ",\"label\":\"" +
                  json_escape(label) + "\",\"fp\":\"" + fp.hex() +
                  "\",\"ok\":" + (r.ok ? "true" : "false") +
                  ",\"runtime_ms\":" + f64_json(r.runtime_ms) +
                  ",\"events\":" + std::to_string(r.events_executed) +
                  ",\"groups\":" + std::to_string(r.groups_spanned) +
                  ",\"digest\":\"" + result_digest(r).hex() + "\"";
  if (!r.ok) s += ",\"fail_reason\":\"" + json_escape(r.fail_reason) + "\"";
  s += "}";
  return s;
}

Runner::Outcome Runner::run() {
  namespace fs = std::filesystem;
  Outcome oc;
  oc.total = static_cast<int>(cells_.size());

  std::size_t start = 0;
  std::FILE* f = nullptr;
  if (!opt_.out_path.empty()) {
    if (opt_.resume) {
      // Validate the existing journal as a strict (index, fingerprint)
      // prefix of this grid; keep exactly the valid bytes and re-run the
      // rest. A torn final line (no trailing newline — the SIGKILL case)
      // and any divergent tail are truncated away.
      std::string content;
      if (std::ifstream in(opt_.out_path, std::ios::binary); in)
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
      std::size_t keep = 0;  // byte offset of the validated prefix end
      std::size_t pos = 0;
      while (start < cells_.size()) {
        const std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos) break;  // torn or absent line
        int index = -1;
        std::string fp_hex;
        if (!parse_journal_line(content.substr(pos, nl - pos), index,
                                fp_hex) ||
            index != static_cast<int>(start) ||
            fp_hex != scenario_fingerprint(cells_[start].cfg).hex())
          break;  // grid changed under us: re-run from here
        pos = nl + 1;
        keep = pos;
        ++start;
      }
      if (keep != content.size()) {
        std::error_code ec;
        if (!content.empty()) fs::resize_file(opt_.out_path, keep, ec);
        if (ec) {
          oc.error = "cannot truncate journal " + opt_.out_path + ": " +
                     ec.message();
          return oc;
        }
      }
      f = std::fopen(opt_.out_path.c_str(), "ab");
    } else {
      f = std::fopen(opt_.out_path.c_str(), "wb");
    }
    if (f == nullptr) {
      oc.error = "cannot open journal " + opt_.out_path;
      return oc;
    }
  }
  oc.skipped = static_cast<int>(start);

  // Remaining cells fan out over a TrialRunner; the commit stream runs in
  // strict index order (map_streamed), so journal bytes and all Outcome
  // counters are independent of cell_jobs and completion order. Each cell
  // counts its own snapshots locally — the shared counter is only bumped
  // inside the serialized commit, never concurrently.
  struct CellDone {
    CachedRun cr;
    std::uint64_t snapshots = 0;
  };
  struct JournalWriteError {
    std::size_t cell;
  };
  const int n = static_cast<int>(cells_.size() - start);
  core::TrialRunner runner(opt_.cell_jobs);
  try {
    runner.map_streamed(
        n,
        [&](int k) {
          CellDone d;
          d.cr = run_one(cells_[start + static_cast<std::size_t>(k)].cfg,
                         cache_, opt_.checkpoint_interval, &d.snapshots);
          return d;
        },
        [&](int k, CellDone& d) {
          const std::size_t i = start + static_cast<std::size_t>(k);
          oc.snapshots += d.snapshots;
          if (d.cr.from_cache)
            ++oc.served;
          else
            ++oc.executed;
          if (!d.cr.result.ok) ++oc.failed;
          if (f != nullptr) {
            const std::string line =
                journal_line(static_cast<int>(i), cells_[i].label, d.cr.fp,
                             d.cr.result) +
                "\n";
            const bool wrote =
                std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
                std::fflush(f) == 0;
#ifndef _WIN32
            // The durable line is the progress marker: until it hits the
            // disk, the cell is not "done" and a resume will redo it
            // (cheaply — the cache entry it committed above survives the
            // kill).
            const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#else
            const bool synced = wrote;
#endif
            if (!synced) throw JournalWriteError{i};
          }
          // Committed: the payload is durable (journal) and cached, so
          // release the in-memory copy rather than holding every result of
          // the batch until the fan-out drains.
          d.cr.result = core::RunResult{};
        });
  } catch (const JournalWriteError& e) {
    oc.error = "journal write failed at cell " + std::to_string(e.cell);
    std::fclose(f);
    return oc;
  }
  if (f != nullptr) std::fclose(f);
  oc.ok = true;
  return oc;
}

}  // namespace dfsim::campaign
