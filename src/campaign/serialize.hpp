// Versioned binary serialization of run results.
//
// The result cache stores RunResult / EnsembleResult as flat little-endian
// byte streams (fixed-width fields, length-prefixed strings and vectors).
// Two forms:
//
//  * full (Canonical::kNo) — every field, including the ShardExecStats
//    substrate-observability block (wall-clock times, worker counts). This
//    is what the cache persists: a hit reproduces the original result
//    object exactly, execution telemetry included.
//  * canonical (Canonical::kYes) — drops the ShardExecStats block, which
//    is the only part of a result that is NOT a deterministic function of
//    the scenario (barrier waits are wall clock; worker counts are host
//    properties; window/mail counts depend on the shard width within a
//    determinism family). Canonical bytes of two runs are equal iff the
//    runs are model-identical, so tests and the campaign journal compare
//    and digest this form.
//
// Deserialization is strict: a truncated, over-long, or version-mismatched
// stream throws SerializeError, which the cache layer treats as a miss.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "sim/hash.hpp"

namespace dfsim::campaign {

/// Bump on any layout change; readers reject other versions (cache misses).
inline constexpr std::uint32_t kResultFormatVersion = 1;

struct SerializeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Canonical : std::uint8_t { kNo = 0, kYes = 1 };

std::vector<std::uint8_t> serialize(const core::RunResult& r,
                                    Canonical canon = Canonical::kNo);
std::vector<std::uint8_t> serialize(const core::EnsembleResult& r,
                                    Canonical canon = Canonical::kNo);

/// Throws SerializeError unless `bytes` is a well-formed stream of the
/// matching result kind and current format version.
core::RunResult deserialize_run_result(std::span<const std::uint8_t> bytes);
core::EnsembleResult deserialize_ensemble_result(
    std::span<const std::uint8_t> bytes);

/// True if `bytes` starts with the given result kind's tag (cheap sniff;
/// full validation still happens in deserialize_*).
[[nodiscard]] bool is_run_result(std::span<const std::uint8_t> bytes);
[[nodiscard]] bool is_ensemble_result(std::span<const std::uint8_t> bytes);

/// 128-bit digest of a result's canonical bytes: equal digests <=> model-
/// identical results. What the campaign journal records per cell.
[[nodiscard]] sim::Hash128 result_digest(const core::RunResult& r);
[[nodiscard]] sim::Hash128 result_digest(const core::EnsembleResult& r);

}  // namespace dfsim::campaign
