// Checkpointed production runs: capture, periodic checkpointing, restore.
//
// Built on two guarantees from the layers below:
//  * Machine::run_to_completion_until slices a run at checkpoint
//    boundaries without changing its schedule (grid-aligned exclusive
//    windows in sharded mode; see ShardedEngine::run_until_exclusive), so
//    a checkpointed run's RunResult is byte-identical to an uninterrupted
//    core::run_production of the same config — in BOTH determinism
//    families.
//  * Every run is a pure function of (resolved config, seed), so restoring
//    a sim::EngineSnapshot is deterministic replay: rebuild the machine,
//    run to the checkpoint time in one slice, and verify that the state
//    digest matches the capture. Mismatch (wrong scenario, wrong engine
//    version, corrupted snapshot) rejects the restore with ok=false —
//    never a silently wrong answer.
#pragma once

#include <functional>

#include "campaign/fingerprint.hpp"
#include "core/experiment.hpp"
#include "sim/snapshot.hpp"

namespace dfsim::campaign {

/// Capture a verified logical checkpoint of `machine` at its current
/// simulated time. The machine must be quiesced (between runs). `fp` is
/// the scenario fingerprint the snapshot will answer for.
[[nodiscard]] sim::EngineSnapshot capture_snapshot(mpi::Machine& machine,
                                                   const Fingerprint& fp);

/// Called with each snapshot as it is taken (typically: serialize it to
/// the campaign journal or a checkpoint file).
using SnapshotSink = std::function<void(const sim::EngineSnapshot&)>;

struct CheckpointOptions {
  /// Desired simulated time between checkpoints; each boundary is aligned
  /// via Machine::checkpoint_time. Values <= 0 are treated as 1 ns.
  sim::Tick interval = 0;
  SnapshotSink sink;
};

/// core::run_production with the measurement phase sliced at checkpoint
/// boundaries, invoking `opt.sink` at each one. Byte-identical result to
/// the unsliced run (the determinism tests pin this for serial and
/// sharded substrates).
[[nodiscard]] core::RunResult run_production_checkpointed(
    const core::ScenarioConfig& cfg, const CheckpointOptions& opt);

/// Replay `cfg` to `snap.checkpoint_time`, verify the snapshot (salt,
/// scenario fingerprint, per-shard clocks, state digest), then continue to
/// completion. On success the result is byte-identical to an uninterrupted
/// run; any verification failure returns ok=false with a fail_reason
/// starting with "restore rejected:".
[[nodiscard]] core::RunResult restore_production(
    const core::ScenarioConfig& cfg, const sim::EngineSnapshot& snap);

}  // namespace dfsim::campaign
