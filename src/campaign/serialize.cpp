#include "campaign/serialize.hpp"

#include <cstring>

namespace dfsim::campaign {

namespace {

constexpr std::uint8_t kTagRunResult = 0x52;       // 'R'
constexpr std::uint8_t kTagEnsembleResult = 0x45;  // 'E'

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  template <class T, class Fn>
  void vec(const std::vector<T>& v, Fn&& one) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) one(x);
  }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : b_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return b_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | b_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | b_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(b_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// Element count for a vector about to be read; bounded by the remaining
  /// bytes so a corrupt length cannot drive a huge allocation.
  std::uint32_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (min_elem_bytes > 0 && n > (b_.size() - pos_) / min_elem_bytes)
      throw SerializeError("corrupt vector length");
    return n;
  }
  void expect_end() const {
    if (pos_ != b_.size()) throw SerializeError("trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (b_.size() - pos_ < n) throw SerializeError("truncated stream");
  }
  std::span<const std::uint8_t> b_;
  std::size_t pos_ = 0;
};

// --- nested blocks ------------------------------------------------------

void put(ByteWriter& w, const net::ClassCounters& c) {
  w.i64(c.flits);
  w.i64(c.stall_ns);
}
void get(ByteReader& r, net::ClassCounters& c) {
  c.flits = r.i64();
  c.stall_ns = r.i64();
}

void put(ByteWriter& w, const net::CounterSnapshot& s) {
  put(w, s.rank1);
  put(w, s.rank2);
  put(w, s.rank3);
  put(w, s.proc_req);
  put(w, s.proc_rsp);
  w.i64(s.nic_rsp_time_sum_ns);
  w.i64(s.nic_rsp_track_count);
}
void get(ByteReader& r, net::CounterSnapshot& s) {
  get(r, s.rank1);
  get(r, s.rank2);
  get(r, s.rank3);
  get(r, s.proc_req);
  get(r, s.proc_rsp);
  s.nic_rsp_time_sum_ns = r.i64();
  s.nic_rsp_track_count = r.i64();
}

void put(ByteWriter& w, const net::NetworkStats& s) {
  w.i64(s.packets_injected);
  w.i64(s.packets_delivered);
  w.i64(s.minimal_decisions);
  w.i64(s.nonminimal_decisions);
  w.i64(s.total_hops);
  w.i64(s.escapes);
  w.i64(s.throttle_activations);
  for (int m = 0; m < routing::kNumModes; ++m)
    for (int d = 0; d < 2; ++d) w.i64(s.decisions_by_mode[m][d]);
}
void get(ByteReader& r, net::NetworkStats& s) {
  s.packets_injected = r.i64();
  s.packets_delivered = r.i64();
  s.minimal_decisions = r.i64();
  s.nonminimal_decisions = r.i64();
  s.total_hops = r.i64();
  s.escapes = r.i64();
  s.throttle_activations = r.i64();
  for (int m = 0; m < routing::kNumModes; ++m)
    for (int d = 0; d < 2; ++d) s.decisions_by_mode[m][d] = r.i64();
}

void put(ByteWriter& w, const net::FlitTimes& f) {
  w.f64(f.rank1);
  w.f64(f.rank2);
  w.f64(f.rank3);
  w.f64(f.proc);
}
void get(ByteReader& r, net::FlitTimes& f) {
  f.rank1 = r.f64();
  f.rank2 = r.f64();
  f.rank3 = r.f64();
  f.proc = r.f64();
}

void put(ByteWriter& w, const fault::FaultStats& s) {
  w.i64(s.faults_applied);
  w.i64(s.repairs_applied);
  w.i64(s.recomputes);
  w.i64(s.packets_dropped);
  w.i64(s.packets_rerouted);
  w.i64(s.messages_retried);
  w.i64(s.messages_abandoned);
  w.i64(s.bytes_abandoned);
  w.i64(s.dead_link_transmissions);
  w.f64(s.degraded_bw_gbs);
}
void get(ByteReader& r, fault::FaultStats& s) {
  s.faults_applied = r.i64();
  s.repairs_applied = r.i64();
  s.recomputes = r.i64();
  s.packets_dropped = r.i64();
  s.packets_rerouted = r.i64();
  s.messages_retried = r.i64();
  s.messages_abandoned = r.i64();
  s.bytes_abandoned = r.i64();
  s.dead_link_transmissions = r.i64();
  s.degraded_bw_gbs = r.f64();
}

void put(ByteWriter& w, const mpi::Profile& p) {
  for (int op = 0; op < mpi::kNumOps; ++op) {
    const auto& s = p.stats(static_cast<mpi::Op>(op));
    w.i64(s.calls);
    w.i64(s.bytes);
    w.i64(s.time_ns);
  }
}
void get(ByteReader& r, mpi::Profile& p) {
  for (int op = 0; op < mpi::kNumOps; ++op) {
    mpi::OpStats s;
    s.calls = r.i64();
    s.bytes = r.i64();
    s.time_ns = r.i64();
    p.set_stats(static_cast<mpi::Op>(op), s);
  }
}

void put(ByteWriter& w, const monitor::AutoPerfReport& a) {
  w.str(a.app);
  w.i32(a.nranks);
  w.f64(a.runtime_ms);
  put(w, a.profile);
  put(w, a.local);
  w.f64(a.mpi_fraction);
}
void get(ByteReader& r, monitor::AutoPerfReport& a) {
  a.app = r.str();
  a.nranks = r.i32();
  a.runtime_ms = r.f64();
  get(r, a.profile);
  get(r, a.local);
  a.mpi_fraction = r.f64();
}

void put(ByteWriter& w, const core::BackgroundFill& b) {
  w.i32(b.jobs);
  w.i32(b.total_nodes);
  w.f64(b.target_utilization);
  w.f64(b.achieved_utilization);
  w.i32(b.allocation_attempts);
  w.i32(b.allocation_failures);
}
void get(ByteReader& r, core::BackgroundFill& b) {
  b.jobs = r.i32();
  b.total_nodes = r.i32();
  b.target_utilization = r.f64();
  b.achieved_utilization = r.f64();
  b.allocation_attempts = r.i32();
  b.allocation_failures = r.i32();
}

void put(ByteWriter& w, const core::ShardExecStats& s) {
  w.i32(s.shards);
  w.i32(s.workers);
  w.i32(s.workers_requested);
  w.i64(s.lookahead);
  w.u64(s.windows);
  w.u64(s.merges);
  w.u64(s.mail_records);
  w.u64(s.mail_posted);
  w.u64(s.mail_compacted);
  w.i64(s.barrier_wait_ns);
  w.i64(s.coord_ns);
  w.vec(s.shard_events, [&](std::uint64_t e) { w.u64(e); });
  w.vec(s.executor_busy_ns, [&](std::int64_t e) { w.i64(e); });
  w.vec(s.executor_wait_ns, [&](std::int64_t e) { w.i64(e); });
}
void get(ByteReader& r, core::ShardExecStats& s) {
  s.shards = r.i32();
  s.workers = r.i32();
  s.workers_requested = r.i32();
  s.lookahead = r.i64();
  s.windows = r.u64();
  s.merges = r.u64();
  s.mail_records = r.u64();
  s.mail_posted = r.u64();
  s.mail_compacted = r.u64();
  s.barrier_wait_ns = r.i64();
  s.coord_ns = r.i64();
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i)
    s.shard_events.push_back(r.u64());
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i)
    s.executor_busy_ns.push_back(r.i64());
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i)
    s.executor_wait_ns.push_back(r.i64());
}

void put(ByteWriter& w, const monitor::LdmsSample& s) {
  w.i64(s.t);
  put(w, s.cumulative);
  put(w, s.faults);
}
void get(ByteReader& r, monitor::LdmsSample& s) {
  s.t = r.i64();
  get(r, s.cumulative);
  get(r, s.faults);
}

void put(ByteWriter& w, const monitor::TileCounters& t) {
  w.i32(t.router);
  w.i32(t.port);
  w.i32(static_cast<std::int32_t>(t.cls));
  w.i64(t.flits);
  w.i64(t.stall_ns);
}
void get(ByteReader& r, monitor::TileCounters& t) {
  t.router = r.i32();
  t.port = r.i32();
  t.cls = static_cast<topo::TileClass>(r.i32());
  t.flits = r.i64();
  t.stall_ns = r.i64();
}

void header(ByteWriter& w, std::uint8_t tag) {
  w.u8(tag);
  w.u32(kResultFormatVersion);
}

void check_header(ByteReader& r, std::uint8_t tag) {
  if (r.u8() != tag) throw SerializeError("result kind mismatch");
  if (r.u32() != kResultFormatVersion)
    throw SerializeError("result format version mismatch");
}

}  // namespace

std::vector<std::uint8_t> serialize(const core::RunResult& res,
                                    Canonical canon) {
  ByteWriter w;
  header(w, kTagRunResult);
  w.boolean(res.ok);
  w.str(res.fail_reason);
  w.f64(res.runtime_ms);
  w.i32(res.groups_spanned);
  put(w, res.background);
  put(w, res.autoperf);
  put(w, res.global);
  put(w, res.netstats);
  put(w, res.flit_times);
  w.u64(res.events_executed);
  w.boolean(res.budget_exhausted);
  put(w, res.faults);
  // Substrate observability last, behind a presence flag: canonical form
  // (determinism comparisons) drops it, full form (cache) keeps it.
  if (canon == Canonical::kYes) {
    w.u8(0);
  } else {
    w.u8(1);
    put(w, res.shard_exec);
  }
  return w.take();
}

core::RunResult deserialize_run_result(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_header(r, kTagRunResult);
  core::RunResult res;
  res.ok = r.boolean();
  res.fail_reason = r.str();
  res.runtime_ms = r.f64();
  res.groups_spanned = r.i32();
  get(r, res.background);
  get(r, res.autoperf);
  get(r, res.global);
  get(r, res.netstats);
  get(r, res.flit_times);
  res.events_executed = r.u64();
  res.budget_exhausted = r.boolean();
  get(r, res.faults);
  if (r.u8() != 0) get(r, res.shard_exec);
  r.expect_end();
  return res;
}

std::vector<std::uint8_t> serialize(const core::EnsembleResult& res,
                                    Canonical canon) {
  (void)canon;  // nothing wall-clock-dependent in an EnsembleResult
  ByteWriter w;
  header(w, kTagEnsembleResult);
  w.boolean(res.ok);
  w.str(res.fail_reason);
  w.vec(res.runtimes_ms, [&](double v) { w.f64(v); });
  put(w, res.total);
  w.vec(res.ldms, [&](const monitor::LdmsSample& s) { put(w, s); });
  w.vec(res.tiles, [&](const monitor::TileCounters& t) { put(w, t); });
  put(w, res.netstats);
  put(w, res.flit_times);
  w.u64(res.events_executed);
  w.boolean(res.budget_exhausted);
  put(w, res.faults);
  return w.take();
}

core::EnsembleResult deserialize_ensemble_result(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_header(r, kTagEnsembleResult);
  core::EnsembleResult res;
  res.ok = r.boolean();
  res.fail_reason = r.str();
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i)
    res.runtimes_ms.push_back(r.f64());
  get(r, res.total);
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
    monitor::LdmsSample s;
    get(r, s);
    res.ldms.push_back(s);
  }
  for (std::uint32_t i = 0, n = r.count(8); i < n; ++i) {
    monitor::TileCounters t;
    get(r, t);
    res.tiles.push_back(t);
  }
  get(r, res.netstats);
  get(r, res.flit_times);
  res.events_executed = r.u64();
  res.budget_exhausted = r.boolean();
  get(r, res.faults);
  r.expect_end();
  return res;
}

bool is_run_result(std::span<const std::uint8_t> bytes) {
  return !bytes.empty() && bytes[0] == kTagRunResult;
}
bool is_ensemble_result(std::span<const std::uint8_t> bytes) {
  return !bytes.empty() && bytes[0] == kTagEnsembleResult;
}

namespace {
sim::Hash128 digest_bytes(const std::vector<std::uint8_t>& b) {
  sim::Hasher128 h;
  h.update(b.data(), b.size());
  return h.finalize();
}
}  // namespace

sim::Hash128 result_digest(const core::RunResult& r) {
  return digest_bytes(serialize(r, Canonical::kYes));
}
sim::Hash128 result_digest(const core::EnsembleResult& r) {
  return digest_bytes(serialize(r, Canonical::kYes));
}

}  // namespace dfsim::campaign
