#include "campaign/fingerprint.hpp"

#include <vector>

#include "core/experiment.hpp"

namespace dfsim::campaign {

Fingerprint scenario_fingerprint(const core::ScenarioConfig& cfg,
                                 const std::string& salt) {
  core::ScenarioConfig canon = cfg.resolve();
  // Wall-clock-only substrate knobs collapse to their determinism class:
  // results are byte-identical for every shard count >= 1 and for every
  // worker count, so distinct widths must share a content address.
  canon.shards = canon.shards >= 1 ? 1 : 0;
  canon.shard_workers = 0;
  canon.shard_balance = true;  // partition choice never affects results

  sim::Hasher128 h;
  h.update_field(salt);
  const std::vector<std::string> row = core::scenario_csv_row(canon);
  h.update_u64(row.size());
  for (const std::string& cell : row) h.update_field(cell);
  // Result-affecting fields that are not CSV columns ride behind the row.
  // coalesce_events is pinned result-neutral by tests, but it is still a
  // distinct configuration — the acceptance contract is "any config field
  // change changes the fingerprint", and a false cache miss is harmless
  // where a false hit would not be.
  h.update_field("coalesce_events");
  h.update_u64(cfg.coalesce_events ? 1 : 0);
  // AppParams is not a CSV column either, and every field of it shapes the
  // workload (message sizes, compute blocks, iteration count, app seed).
  h.update_field("params");
  h.update_i64(cfg.params.iterations);
  h.update_f64(cfg.params.msg_scale);
  h.update_f64(cfg.params.compute_scale);
  h.update_u64(cfg.params.seed);
  return h.finalize();
}

Fingerprint scenario_fingerprint(const core::ScenarioConfig& cfg) {
  return scenario_fingerprint(cfg, kEngineVersionSalt);
}

}  // namespace dfsim::campaign
