// Content-addressed result cache: fingerprint -> serialized result bytes.
//
// Layout on disk (root = options.dir, default ".dfsim-cache"):
//
//   <dir>/<hex[0:2]>/<hex[2:32]>.res      committed entries
//   <dir>/tmp-<hex>-<pid>                 in-flight writes (never read)
//
// Every entry file is self-validating: a magic/version header, the full
// fingerprint it claims to answer for, the payload length, and a 128-bit
// payload checksum. load() re-verifies all of it; any mismatch — torn
// write, bit rot, a deliberately poisoned file, a foreign format — counts
// as `corrupt` and reads as a MISS, never as a wrong answer. Commits are
// write-to-temp + fsync + atomic rename, so a SIGKILL mid-store leaves
// either the old entry or none, never a half entry.
//
// An in-memory LRU (bounded by entries and bytes) fronts the directory so
// a sweep that revisits a cell pays the disk read once. All methods are
// thread-safe (one mutex; entries are KB-scale and trials are seconds-
// scale, so lock width is irrelevant here).
//
// The cache stores bytes, not results: callers pair it with
// campaign::serialize / deserialize_* and treat deserialization failures
// as misses too (see run_cached_* in campaign/runner.hpp).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/fingerprint.hpp"

namespace dfsim::campaign {

/// Hit/miss/byte accounting, surfaced through core::print_cache_summary.
struct CacheStats {
  std::uint64_t hits = 0;        ///< served (memory or disk)
  std::uint64_t mem_hits = 0;    ///< subset of hits served from the LRU
  std::uint64_t misses = 0;      ///< no entry (or invalidated entry)
  std::uint64_t corrupt = 0;     ///< entries rejected by validation
  std::uint64_t stores = 0;      ///< entries committed
  std::uint64_t bytes_read = 0;  ///< payload bytes served from disk
  std::uint64_t bytes_written = 0;
  // Last gc() pass (all zero when gc never ran).
  std::uint64_t gc_removed = 0;        ///< entry files pruned
  std::uint64_t gc_removed_bytes = 0;  ///< file bytes reclaimed
  std::uint64_t gc_kept = 0;           ///< entry files surviving
  std::uint64_t gc_kept_bytes = 0;     ///< file bytes retained

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class ResultCache {
 public:
  struct Options {
    /// Cache root. Empty = memory-only (LRU works, nothing persists).
    std::string dir = ".dfsim-cache";
    std::size_t mem_entries = 256;
    std::size_t mem_bytes = std::size_t{64} << 20;
  };

  ResultCache();  ///< default Options
  explicit ResultCache(Options opt);

  /// Memory-only cache (tests, or --cache-dir= with an empty value).
  [[nodiscard]] static ResultCache memory_only() {
    Options o;
    o.dir.clear();
    return ResultCache(o);
  }

  /// Payload bytes for `fp`, or nullopt (miss — including corrupt/foreign
  /// entries, which are counted separately in stats().corrupt).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      const Fingerprint& fp);

  /// Commit `payload` for `fp` (atomic replace; also refreshes the LRU).
  void store(const Fingerprint& fp, std::span<const std::uint8_t> payload);

  /// Prune committed entries, coldest first, until the directory's total
  /// entry-file size fits `byte_budget`. Coldness is the file's last-write
  /// time: stores stamp it and disk hits refresh it, so recently-used
  /// entries survive. (An entry hot purely in the memory LRU can look cold
  /// on disk — it ages out of the LRU, gets re-read, and is warm again, so
  /// at worst it is pruned and recomputed once.) Orphaned tmp- files from
  /// killed writers are removed unconditionally. Removal order among
  /// equal-mtime entries is by path, so a pass is deterministic for a
  /// given directory state. Returns files removed; per-pass detail lands
  /// in stats().gc_*. No-op (returns 0) on a memory-only cache.
  std::uint64_t gc(std::uint64_t byte_budget);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const std::string& dir() const { return opt_.dir; }
  [[nodiscard]] bool persistent() const { return !opt_.dir.empty(); }

  /// Committed entry path for a fingerprint (for tests that corrupt
  /// entries on purpose).
  [[nodiscard]] std::string entry_path(const Fingerprint& fp) const;

 private:
  void lru_put(const std::string& key, std::vector<std::uint8_t> bytes);
  std::optional<std::vector<std::uint8_t>> lru_get(const std::string& key);
  std::optional<std::vector<std::uint8_t>> disk_load(const Fingerprint& fp);
  bool disk_store(const Fingerprint& fp,
                  std::span<const std::uint8_t> payload);

  Options opt_;
  mutable std::mutex mu_;
  CacheStats stats_;
  /// LRU: most-recent at front; map values point into the list.
  std::list<std::pair<std::string, std::vector<std::uint8_t>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  std::size_t lru_bytes_ = 0;
};

}  // namespace dfsim::campaign
