// Cached runs and the resumable sweep runner.
//
// run_cached_production / run_cached_production_ensemble put a
// content-addressed ResultCache in front of the core entry points: a
// scenario whose fingerprint has a valid cache entry is answered from
// bytes, everything else runs and is committed back. Ensembles cache at
// per-TRIAL granularity (each trial's fingerprint uses its derived seed),
// so adding samples to a swept cell only pays for the new trials.
//
// campaign::Runner executes a list of sweep cells and emits one JSONL
// record per cell into an output file that doubles as the resume journal:
//
//   * every record holds only DETERMINISTIC fields (cell index, label,
//     fingerprint, ok/fail_reason, simulated runtime, event count, and the
//     canonical result digest) — never wall-clock or cache provenance —
//     so a resumed run's output is byte-identical to an uninterrupted one;
//   * each line is flushed + fsync'd before the next cell's line is
//     written (cells may EXECUTE concurrently, see RunnerOptions::
//     cell_jobs, but records commit in strict index order): the last
//     durable line IS the progress marker;
//   * --resume validates the existing file as a strict prefix of the
//     expected (index, fingerprint) sequence, truncates a torn final line
//     (the SIGKILL case) or any divergent tail (a changed grid), and
//     continues from the first missing cell. Completed cells are not even
//     looked up again; interrupted cells usually hit the cache entries the
//     killed run already committed (entry commits are atomic, so a torn
//     store is invisible).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/fingerprint.hpp"
#include "core/experiment.hpp"
#include "sim/time.hpp"

namespace dfsim::campaign {

/// A cached single production run.
struct CachedRun {
  core::RunResult result;
  Fingerprint fp;
  bool from_cache = false;
};

/// Serve `cfg` from `cache` if possible, else run it and commit the result.
/// Invalid/corrupt cached bytes are treated as a miss, never returned.
[[nodiscard]] CachedRun run_cached_production(const core::ScenarioConfig& cfg,
                                              ResultCache& cache);

/// core::run_production_ensemble with per-trial caching. Trial i's cache
/// key is the fingerprint of (cfg with seed = derived seed i); results are
/// byte-identical to the uncached ensemble for every worker count.
/// TrialReport::wall_ms reflects cache-hit cost for served trials.
[[nodiscard]] core::BatchResult run_cached_production_ensemble(
    const core::ScenarioConfig& cfg, int samples,
    const core::BatchOptions& opts, ResultCache& cache);

/// One cell of a sweep grid.
struct SweepCell {
  core::ScenarioConfig cfg;
  std::string label;  ///< human-readable cell id, stored in the journal
};

struct RunnerOptions {
  /// JSONL output path; also the resume journal. Empty = stdout-less dry
  /// run (cells still execute and populate the cache).
  std::string out_path;
  /// Continue a previous run of the SAME grid into out_path.
  bool resume = false;
  /// > 0: run cache misses through run_production_checkpointed with this
  /// simulated-time interval (snapshots are taken and verified-capturable;
  /// results stay byte-identical to unsliced runs).
  sim::Tick checkpoint_interval = 0;
  /// Cells executed concurrently (core::resolve_jobs semantics: >= 1 taken
  /// as-is, 0 = one per hardware thread). Wall-clock only: journal records
  /// are committed in strict cell-index order whatever finishes first, so
  /// the output — and every --resume prefix of it — is byte-identical to
  /// cell_jobs = 1.
  int cell_jobs = 1;
};

/// Executes the cells of a sweep grid, fanned out cell_jobs wide over a
/// core::TrialRunner (each cell owns its full simulation stack; the shared
/// ResultCache is internally locked and commits entries atomically). The
/// journal stays strictly ordered via TrialRunner::map_streamed: a cell's
/// record is written + fsync'd only after every earlier cell's record is
/// durable, so resume semantics are identical at any width.
class Runner {
 public:
  Runner(std::vector<SweepCell> cells, ResultCache& cache, RunnerOptions opt);

  struct Outcome {
    bool ok = false;
    std::string error;       ///< empty when ok
    int total = 0;           ///< grid size
    int skipped = 0;         ///< cells already in the journal (resume)
    int served = 0;          ///< cells answered from the cache
    int executed = 0;        ///< cells actually simulated
    int failed = 0;          ///< cells with result.ok == false
    std::uint64_t snapshots = 0;  ///< checkpoints taken (checkpoint mode)
  };
  [[nodiscard]] Outcome run();

  /// The journal line for a cell result (exposed for tests that assert
  /// byte-identity without going through files).
  [[nodiscard]] static std::string journal_line(int index,
                                                const std::string& label,
                                                const Fingerprint& fp,
                                                const core::RunResult& r);

 private:
  std::vector<SweepCell> cells_;
  ResultCache& cache_;
  RunnerOptions opt_;
};

}  // namespace dfsim::campaign
