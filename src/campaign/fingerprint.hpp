// Canonical scenario fingerprint: the content address of one trial.
//
// A fingerprint is a 128-bit hash over the canonical text form of a
// ScenarioConfig (core::scenario_csv_row, whose float cells are shortest
// round-trip std::to_chars — locale- and platform-independent), the trial
// seed (already a row cell), and an engine-version salt. Two runs with
// equal fingerprints are guaranteed byte-identical results, because
//
//  * every result-affecting ScenarioConfig field is a row cell, and the
//    two execution-substrate cells that are wall-clock-only are
//    canonicalized before hashing: `shards` collapses to its determinism
//    family (0 = serial, 1 = sharded — results are byte-identical for
//    every shard count >= 1) and `shard_workers` collapses to 0 (worker
//    count never affects results). A cached result therefore hits across
//    equivalent substrate widths but never across the serial/sharded
//    family boundary;
//  * the salt names the engine version: any model change that alters
//    simulation results must bump kEngineVersionSalt (see docs/MODEL.md
//    section 12 for the policy), which invalidates every cached entry at
//    the fingerprint level — stale caches read as misses, never as wrong
//    answers.
//
// The fingerprint is computed on the *resolved* config (ScenarioConfig::
// resolve()), so environment sniffing (DFSIM_TEST_SHARDS) is folded in
// exactly once and a scenario fingerprints identically however the shard
// request was spelled.
#pragma once

#include <cstdint>
#include <string>

#include "sim/hash.hpp"

namespace dfsim::core {
struct ScenarioConfig;
}

namespace dfsim::campaign {

using Fingerprint = sim::Hash128;

/// Engine-version salt. Bump whenever a change alters simulation results
/// (event order, model behaviour, result fields) so pre-change cache
/// entries and snapshots stop resolving. Pure perf / observability changes
/// keep the salt.
inline constexpr const char* kEngineVersionSalt = "dfsim-engine/v10";

/// Fingerprint of one trial: resolved config + seed + engine salt.
[[nodiscard]] Fingerprint scenario_fingerprint(const core::ScenarioConfig& cfg);

/// Fingerprint with an explicit salt (the salt test hooks this; production
/// code always uses the kEngineVersionSalt overload above).
[[nodiscard]] Fingerprint scenario_fingerprint(const core::ScenarioConfig& cfg,
                                               const std::string& salt);

}  // namespace dfsim::campaign
