#include "campaign/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace dfsim::campaign {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kCacheMagic = 0x44463143;  // "DF1C"
constexpr std::uint32_t kCacheVersion = 1;

void put_u32(std::FILE* f, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, 4, f);
}
void put_u64(std::FILE* f, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, 8, f);
}
bool get_u32(std::FILE* f, std::uint32_t& v) {
  unsigned char b[4];
  if (std::fread(b, 1, 4, f) != 4) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}
bool get_u64(std::FILE* f, std::uint64_t& v) {
  unsigned char b[8];
  if (std::fread(b, 1, 8, f) != 8) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

sim::Hash128 payload_checksum(std::span<const std::uint8_t> payload) {
  sim::Hasher128 h;
  h.update(payload.data(), payload.size());
  return h.finalize();
}

int this_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

}  // namespace

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(Options opt) : opt_(std::move(opt)) {
  if (opt_.mem_entries == 0) opt_.mem_entries = 1;
}

std::string ResultCache::entry_path(const Fingerprint& fp) const {
  const std::string hex = fp.hex();
  return opt_.dir + "/" + hex.substr(0, 2) + "/" + hex.substr(2) + ".res";
}

std::optional<std::vector<std::uint8_t>> ResultCache::lru_get(
    const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->second;
}

void ResultCache::lru_put(const std::string& key,
                          std::vector<std::uint8_t> bytes) {
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_bytes_ -= it->second->second.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_bytes_ += bytes.size();
  lru_.emplace_front(key, std::move(bytes));
  index_[key] = lru_.begin();
  while (!lru_.empty() && (lru_.size() > opt_.mem_entries ||
                           lru_bytes_ > opt_.mem_bytes)) {
    lru_bytes_ -= lru_.back().second.size();
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::optional<std::vector<std::uint8_t>> ResultCache::disk_load(
    const Fingerprint& fp) {
  std::FILE* f = std::fopen(entry_path(fp).c_str(), "rb");
  if (f == nullptr) return std::nullopt;  // plain miss
  std::optional<std::vector<std::uint8_t>> out;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t hi = 0, lo = 0, len = 0, chk_hi = 0, chk_lo = 0;
  bool valid = get_u32(f, magic) && magic == kCacheMagic &&
               get_u32(f, version) && version == kCacheVersion &&
               get_u64(f, hi) && get_u64(f, lo) && hi == fp.hi &&
               lo == fp.lo && get_u64(f, chk_hi) && get_u64(f, chk_lo) &&
               get_u64(f, len);
  if (valid) {
    // Bound the read by the actual file size minus the header we already
    // consumed, so a corrupt length field cannot drive a huge allocation.
    const long header_end = std::ftell(f);
    std::fseek(f, 0, SEEK_END);
    const long file_end = std::ftell(f);
    std::fseek(f, header_end, SEEK_SET);
    if (header_end < 0 || file_end < header_end ||
        len != static_cast<std::uint64_t>(file_end - header_end)) {
      valid = false;
    } else {
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
      valid = std::fread(payload.data(), 1, payload.size(), f) ==
              payload.size();
      if (valid) {
        const sim::Hash128 chk = payload_checksum(payload);
        valid = chk.hi == chk_hi && chk.lo == chk_lo;
      }
      if (valid) out = std::move(payload);
    }
  }
  std::fclose(f);
  if (!out.has_value() && magic != 0) ++stats_.corrupt;
  return out;
}

bool ResultCache::disk_store(const Fingerprint& fp,
                             std::span<const std::uint8_t> payload) {
  const std::string path = entry_path(fp);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;
  const std::string tmp =
      opt_.dir + "/tmp-" + fp.hex() + "-" + std::to_string(this_pid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const sim::Hash128 chk = payload_checksum(payload);
  put_u32(f, kCacheMagic);
  put_u32(f, kCacheVersion);
  put_u64(f, fp.hi);
  put_u64(f, fp.lo);
  put_u64(f, chk.hi);
  put_u64(f, chk.lo);
  put_u64(f, payload.size());
  const bool wrote =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  bool ok = wrote && std::fflush(f) == 0;
#ifndef _WIN32
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (ok) {
    fs::rename(tmp, path, ec);  // atomic replace on POSIX
    ok = !ec;
  }
  if (!ok) fs::remove(tmp, ec);
  return ok;
}

std::optional<std::vector<std::uint8_t>> ResultCache::load(
    const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = fp.hex();
  if (auto hit = lru_get(key); hit.has_value()) {
    ++stats_.hits;
    ++stats_.mem_hits;
    return hit;
  }
  if (persistent()) {
    if (auto hit = disk_load(fp); hit.has_value()) {
      ++stats_.hits;
      stats_.bytes_read += hit->size();
      // Refresh the entry's last-write time: gc() prunes coldest-first by
      // this stamp, and a disk hit is exactly the "still in use" signal.
      std::error_code ec;
      fs::last_write_time(entry_path(fp), fs::file_time_type::clock::now(),
                          ec);  // best effort; gc tolerates stale stamps
      lru_put(key, *hit);
      return hit;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(const Fingerprint& fp,
                        std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (persistent() && disk_store(fp, payload))
    stats_.bytes_written += payload.size();
  ++stats_.stores;
  lru_put(fp.hex(), std::vector<std::uint8_t>(payload.begin(), payload.end()));
}

std::uint64_t ResultCache::gc(std::uint64_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!persistent()) return 0;
  stats_.gc_removed = stats_.gc_removed_bytes = 0;
  stats_.gc_kept = stats_.gc_kept_bytes = 0;

  struct Entry {
    fs::file_time_type mtime;
    std::uint64_t size = 0;
    std::string path;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator top(opt_.dir, ec);
       !ec && top != fs::directory_iterator(); top.increment(ec)) {
    const fs::path p = top->path();
    // Orphaned in-flight writes (a killed writer's tmp- files) are garbage
    // whatever the budget; committed entries live one shard-dir down.
    if (top->is_regular_file(ec) &&
        p.filename().string().rfind("tmp-", 0) == 0) {
      std::error_code rec;
      const std::uint64_t sz = static_cast<std::uint64_t>(fs::file_size(p, rec));
      if (fs::remove(p, rec) && !rec) {
        ++stats_.gc_removed;
        stats_.gc_removed_bytes += sz;
      }
      continue;
    }
    if (!top->is_directory(ec)) continue;
    std::error_code sub_ec;
    for (fs::directory_iterator it(p, sub_ec);
         !sub_ec && it != fs::directory_iterator(); it.increment(sub_ec)) {
      std::error_code fec;
      if (!it->is_regular_file(fec) ||
          it->path().extension() != ".res")
        continue;
      Entry e;
      e.path = it->path().string();
      e.size = static_cast<std::uint64_t>(fs::file_size(it->path(), fec));
      if (fec) continue;
      e.mtime = fs::last_write_time(it->path(), fec);
      if (fec) e.mtime = fs::file_time_type::min();  // unreadable: coldest
      total += e.size;
      entries.push_back(std::move(e));
    }
  }

  // Coldest first; path breaks mtime ties so a pass is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    if (x.mtime != y.mtime) return x.mtime < y.mtime;
    return x.path < y.path;
  });
  std::uint64_t removed = 0;
  for (const Entry& e : entries) {
    if (total <= byte_budget) break;
    std::error_code rec;
    if (!fs::remove(e.path, rec) || rec) continue;  // raced away: fine
    total -= e.size;
    ++removed;
    ++stats_.gc_removed;
    stats_.gc_removed_bytes += e.size;
    // Drop the memory copy too: a pruned entry must read as a miss, not
    // linger in the LRU answering for bytes the disk no longer holds (the
    // semantics would be right but the budget accounting would lie).
    const fs::path p(e.path);
    const std::string key =
        p.parent_path().filename().string() + p.stem().string();
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_bytes_ -= it->second->second.size();
      lru_.erase(it->second);
      index_.erase(it);
    }
  }
  stats_.gc_kept = entries.size() - removed;
  stats_.gc_kept_bytes = total;
  return removed;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dfsim::campaign
