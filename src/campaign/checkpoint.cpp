#include "campaign/checkpoint.hpp"

#include <utility>

#include "mpi/machine.hpp"
#include "net/network.hpp"
#include "sim/hash.hpp"

namespace dfsim::campaign {

sim::EngineSnapshot capture_snapshot(mpi::Machine& machine,
                                     const Fingerprint& fp) {
  sim::EngineSnapshot s;
  s.scenario_hi = fp.hi;
  s.scenario_lo = fp.lo;
  s.salt = kEngineVersionSalt;
  s.checkpoint_time = machine.engine().now();
  if (auto* se = machine.sharded_engine()) {
    for (int i = 0; i < se->num_shards(); ++i)
      s.shards.push_back(
          {se->shard(i).now(), se->shard(i).events_executed()});
  } else {
    s.shards.push_back(
        {machine.engine().now(), machine.engine().events_executed()});
  }
  sim::Hasher128 h;
  h.update_field(s.salt);
  h.update_u64(fp.hi);
  h.update_u64(fp.lo);
  h.update_i64(s.checkpoint_time);
  h.update_u64(s.shards.size());
  for (const auto& c : s.shards) {
    h.update_i64(c.now);
    h.update_u64(c.events);
  }
  machine.network().digest_state(h);
  const sim::Hash128 d = h.finalize();
  s.digest_hi = d.hi;
  s.digest_lo = d.lo;
  return s;
}

core::RunResult run_production_checkpointed(const core::ScenarioConfig& raw,
                                            const CheckpointOptions& opt) {
  core::ScenarioConfig cfg = raw.resolve();
  const Fingerprint fp = scenario_fingerprint(cfg);
  const sim::Tick interval = opt.interval > 0 ? opt.interval : 1;
  const SnapshotSink& sink = opt.sink;
  cfg.completion_driver = [&fp, interval, &sink](
                              mpi::Machine& m,
                              std::span<const mpi::JobId> watch) -> bool {
    sim::Tick next = m.checkpoint_time(m.engine().now() + interval);
    for (;;) {
      if (m.run_to_completion_until(watch, next)) return true;
      if (m.budget_exhausted()) return false;
      // Idle with the watch incomplete: an unbounded run would return
      // false here too (the system is dead, not merely between events).
      if (m.next_event_time() == sim::Engine::kNoEvent) return false;
      if (sink) sink(capture_snapshot(m, fp));
      next = m.checkpoint_time(next + interval);
    }
  };
  return core::run_production(cfg);
}

core::RunResult restore_production(const core::ScenarioConfig& raw,
                                   const sim::EngineSnapshot& snap) {
  core::ScenarioConfig cfg = raw.resolve();
  const Fingerprint fp = scenario_fingerprint(cfg);
  core::RunResult rejected;
  if (snap.salt != kEngineVersionSalt) {
    rejected.fail_reason = "restore rejected: snapshot salt \"" + snap.salt +
                           "\" != engine salt \"" + kEngineVersionSalt + "\"";
    return rejected;
  }
  if (snap.scenario_hi != fp.hi || snap.scenario_lo != fp.lo) {
    rejected.fail_reason =
        "restore rejected: snapshot fingerprint " +
        sim::Hash128{snap.scenario_hi, snap.scenario_lo}.hex() +
        " does not match scenario " + fp.hex();
    return rejected;
  }
  std::string mismatch;
  cfg.completion_driver = [&fp, &snap, &mismatch](
                              mpi::Machine& m,
                              std::span<const mpi::JobId> watch) -> bool {
    // Deterministic replay: one slice straight to the checkpoint boundary.
    // Slicing is schedule-neutral, so taking it in one hop reproduces the
    // exact state of the original run's (possibly many) slices.
    if (m.run_to_completion_until(watch, snap.checkpoint_time)) {
      mismatch = "run completed before the snapshot's checkpoint time";
      return true;
    }
    const sim::EngineSnapshot here = capture_snapshot(m, fp);
    if (!(here == snap)) {
      mismatch = "state digest/clock mismatch at checkpoint time " +
                 std::to_string(snap.checkpoint_time);
      return false;
    }
    return m.run_to_completion(watch);
  };
  core::RunResult res = core::run_production(cfg);
  if (!mismatch.empty()) {
    res.ok = false;
    res.fail_reason = "restore rejected: " + mismatch;
  }
  return res;
}

}  // namespace dfsim::campaign
