#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"

namespace dfsim::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkFail: return "link_fail";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kRouterFail: return "router_fail";
    case FaultKind::kRepair: return "repair";
  }
  return "?";
}

std::vector<FaultEvent> FaultPlan::canonical() const {
  std::vector<FaultEvent> evs = events_;
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     if (a.router != b.router) return a.router < b.router;
                     return a.port < b.port;
                   });
  return evs;
}

namespace {

sim::Tick draw_time(sim::Rng& rng, const RandomFaultSpec& spec) {
  if (spec.window_end <= spec.window_begin) return spec.window_begin;
  const auto span =
      static_cast<std::uint64_t>(spec.window_end - spec.window_begin) + 1;
  return spec.window_begin + static_cast<sim::Tick>(rng.uniform_u64(span));
}

}  // namespace

FaultPlan FaultPlan::random(const topo::Config& system,
                            const RandomFaultSpec& spec) {
  FaultPlan plan;
  const auto topo_ptr = topo::make_topology(system);
  const topo::Topology& topo = *topo_ptr;
  sim::Rng rng(spec.seed);

  // Canonical link list: each bidirectional link once, from its lower-id
  // endpoint, in (router, port) order. Deterministic for a given topology.
  struct Link {
    topo::RouterId r;
    topo::PortId p;
  };
  std::vector<Link> links;
  const int nrouters = topo.num_routers();
  for (topo::RouterId r = 0; r < nrouters; ++r) {
    for (topo::PortId p = 0; p < topo.num_ports(r); ++p) {
      const topo::PortInfo& pi = topo.port(r, p);
      if (pi.peer_router < 0 || pi.peer_router < r) continue;  // proc or dup
      const bool want = (pi.cls == topo::TileClass::kRank1 && spec.rank1) ||
                        (pi.cls == topo::TileClass::kRank2 && spec.rank2) ||
                        (pi.cls == topo::TileClass::kRank3 && spec.rank3);
      if (want) links.push_back({r, p});
    }
  }

  const auto count = [&](double frac) {
    const auto n = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(links.size())));
    return std::min(n, links.size());
  };
  const std::size_t nfail = count(spec.link_fail_fraction);
  const std::size_t ndegr =
      std::min(count(spec.link_degrade_fraction), links.size() - nfail);

  // One draw picks both the failed and the degraded sets, disjointly.
  const auto picks =
      rng.sample_without_replacement(links.size(), nfail + ndegr);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const Link& ln = links[picks[i]];
    const sim::Tick at = draw_time(rng, spec);
    if (i < nfail) {
      plan.fail_link(at, ln.r, ln.p);
    } else {
      const double f = spec.degrade_min +
                       rng.uniform() * (spec.degrade_max - spec.degrade_min);
      plan.degrade_link(at, ln.r, ln.p, f);
    }
    if (spec.repair_after > 0) plan.repair(at + spec.repair_after, ln.r, ln.p);
  }

  if (spec.router_failures > 0) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(spec.router_failures),
        static_cast<std::size_t>(nrouters));
    const auto routers = rng.sample_without_replacement(
        static_cast<std::size_t>(nrouters), n);
    for (const std::size_t ri : routers) {
      const auto r = static_cast<topo::RouterId>(ri);
      const sim::Tick at = draw_time(rng, spec);
      plan.fail_router(at, r);
      if (spec.repair_after > 0) plan.repair(at + spec.repair_after, r);
    }
  }
  return plan;
}

}  // namespace dfsim::fault
