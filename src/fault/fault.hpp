// Fault injection and graceful degradation (paper context: production Aries
// systems route around failed links, lane degradations, and dead routers;
// Jha et al. show these are a first-order source of credit-stall congestion).
//
// A FaultPlan is a scripted schedule of fault and repair events, either built
// explicitly or drawn seeded-random from the topology (FaultPlan::random).
// The plan itself is pure data: net::Network::apply_fault_plan schedules the
// events at their simulated times and owns all state mutation. Determinism:
// plans are canonically ordered, random generation depends only on
// (topology config, spec), and the network applies cross-shard fault events
// at window barriers, so results are byte-identical for any --jobs and
// --shards count under any plan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"
#include "topo/config.hpp"
#include "topo/topology.hpp"

namespace dfsim::fault {

enum class FaultKind : std::uint8_t {
  kLinkFail = 0,   ///< link (both directions) goes dead
  kLinkDegrade,    ///< lane failure: bandwidth cut to `factor` of pristine
  kRouterFail,     ///< router and every attached link (incl. NICs) go dead
  kRepair,         ///< target restored to pristine
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  sim::Tick at = 0;
  FaultKind kind = FaultKind::kLinkFail;
  topo::RouterId router = -1;
  topo::PortId port = -1;  ///< -1: whole-router scope (kRouterFail / kRepair)
  double factor = 1.0;     ///< kLinkDegrade: remaining bandwidth fraction
};

/// Spec for FaultPlan::random. Fractions are of the *links* in the enabled
/// classes (a link = one bidirectional router pair connection); failed and
/// degraded links are drawn disjointly from one seeded shuffle.
struct RandomFaultSpec {
  std::uint64_t seed = 1;
  double link_fail_fraction = 0.0;     ///< fraction of links failed outright
  double link_degrade_fraction = 0.0;  ///< fraction of links lane-degraded
  double degrade_min = 0.25;           ///< degraded bandwidth factor range
  double degrade_max = 0.75;
  int router_failures = 0;             ///< whole routers killed
  bool rank1 = true;                   ///< link classes eligible for faults
  bool rank2 = true;
  bool rank3 = true;
  sim::Tick window_begin = 0;          ///< fault times drawn uniformly here
  sim::Tick window_end = 0;            ///< <= begin: all faults at begin
  sim::Tick repair_after = 0;          ///< > 0: schedule repair this much later
};

class FaultPlan {
 public:
  FaultPlan& add(const FaultEvent& ev) {
    events_.push_back(ev);
    return *this;
  }
  FaultPlan& fail_link(sim::Tick at, topo::RouterId r, topo::PortId p) {
    return add({at, FaultKind::kLinkFail, r, p, 0.0});
  }
  FaultPlan& degrade_link(sim::Tick at, topo::RouterId r, topo::PortId p,
                          double factor) {
    return add({at, FaultKind::kLinkDegrade, r, p, factor});
  }
  FaultPlan& fail_router(sim::Tick at, topo::RouterId r) {
    return add({at, FaultKind::kRouterFail, r, -1, 0.0});
  }
  FaultPlan& repair(sim::Tick at, topo::RouterId r, topo::PortId p = -1) {
    return add({at, FaultKind::kRepair, r, p, 1.0});
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::span<const FaultEvent> events() const { return events_; }
  /// Events sorted by (at, kind, router, port) — the order the network
  /// applies them in, independent of insertion order.
  [[nodiscard]] std::vector<FaultEvent> canonical() const;

  /// Seeded-random plan over the links of `system`. Deterministic: same
  /// (system, spec) always yields the same plan.
  static FaultPlan random(const topo::Config& system,
                          const RandomFaultSpec& spec);

 private:
  std::vector<FaultEvent> events_;
};

/// Per-run fault/degradation statistics (surfaced via RunResult/LDMS).
struct FaultStats {
  std::int64_t faults_applied = 0;   ///< fault events that took effect
  std::int64_t repairs_applied = 0;
  std::int64_t recomputes = 0;       ///< routing-table recompute passes
  std::int64_t packets_dropped = 0;  ///< discarded on dead ports/routers
  std::int64_t packets_rerouted = 0; ///< decisions diverted by fault state
  std::int64_t messages_retried = 0; ///< retry re-injections of lost payload
  std::int64_t messages_abandoned = 0;  ///< gave up after max retries
  std::int64_t bytes_abandoned = 0;     ///< payload written off by abandons
  /// Invariant counter: commits of a packet onto a dead link. Always 0 —
  /// asserted by tests; nonzero means the reroute machinery has a hole.
  std::int64_t dead_link_transmissions = 0;
  /// Integral of out-of-service bandwidth over time (GB/s x seconds), both
  /// directions, lane degradations only (dead links are counted via drops).
  double degraded_bw_gbs = 0.0;
};

/// Fixed q8 scale for degraded-link load penalties: 256 = pristine.
inline constexpr std::uint16_t kPenaltyUnit = 256;

/// Live health state, owned by net::Network; the RoutePlanner reads it
/// through raw pointers (routing/ stays independent of fault/). Arrays are
/// sized once at activation and never reallocated, so the pointers stay
/// valid and shard threads can read them between barriers (writes happen
/// only at barriers / in serial event context).
struct LinkHealth {
  std::vector<std::uint8_t> port_dead;    ///< [port_index] 1 = dead
  std::vector<std::uint8_t> router_dead;  ///< [router] 1 = dead
  std::vector<std::uint16_t> penalty_q8;  ///< [port_index] load multiplier
};

}  // namespace dfsim::fault
