#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "stats/summary.hpp"

namespace dfsim::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (bins <= 0 || !(hi > lo))
    throw std::invalid_argument("Histogram: bad range or bin count");
  counts_.assign(static_cast<std::size_t>(bins), 0);
  width_ = (hi - lo) / bins;
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>((x - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(int bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[static_cast<std::size_t>(bin)]) /
         (static_cast<double>(total_) * width_);
}

double kde(std::span<const double> xs, double at, double bandwidth) {
  if (xs.empty()) return 0.0;
  double h = bandwidth;
  if (h <= 0.0) {
    const Summary s = summarize(xs);
    const double sd = s.stddev > 1e-12 ? s.stddev : 1e-12;
    h = 1.06 * sd * std::pow(static_cast<double>(xs.size()), -0.2);
  }
  const double norm =
      1.0 / (static_cast<double>(xs.size()) * h * std::sqrt(2.0 * std::numbers::pi));
  double sum = 0.0;
  for (const double x : xs) {
    const double u = (at - x) / h;
    sum += std::exp(-0.5 * u * u);
  }
  return norm * sum;
}

std::vector<std::pair<double, double>> kde_curve(std::span<const double> xs,
                                                 double lo, double hi,
                                                 int points, double bandwidth) {
  std::vector<std::pair<double, double>> out;
  if (points < 2 || !(hi > lo)) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    out.emplace_back(x, kde(xs, x, bandwidth));
  }
  return out;
}

}  // namespace dfsim::stats
