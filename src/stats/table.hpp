// ASCII rendering for bench output: aligned tables, horizontal bars, and
// simple series plots, so every bench prints its paper table/figure as text.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace dfsim::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` decimals.
std::string fmt(double v, int prec = 2);
/// Format with a sign, e.g. "+11.3".
std::string fmt_signed(double v, int prec = 1);

/// One horizontal bar: "label | #####        value".
void print_bar(std::ostream& os, const std::string& label, double value,
               double vmax, int width = 48);

/// A y(x) series as rows of "x  y  bar".
void print_series(std::ostream& os,
                  std::span<const std::pair<double, double>> pts,
                  const std::string& xlabel, const std::string& ylabel,
                  int width = 48);

}  // namespace dfsim::stats
