// Histograms, empirical PDFs, and Gaussian kernel density estimates
// (the paper draws runtime PDFs in Fig. 2 and stall-ratio PDFs in Fig. 11).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dfsim::stats {

class Histogram {
 public:
  /// Fixed-width bins over [lo, hi); samples outside are clamped to the
  /// first/last bin.
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::int64_t count(int bin) const {
    return counts_[static_cast<std::size_t>(bin)];
  }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] double bin_center(int bin) const;
  [[nodiscard]] double bin_width() const { return width_; }
  /// Probability density of a bin (integrates to 1 over the range).
  [[nodiscard]] double density(int bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Gaussian KDE evaluated at `at`, with Silverman's rule-of-thumb bandwidth
/// when `bandwidth` <= 0.
double kde(std::span<const double> xs, double at, double bandwidth = 0.0);

/// KDE evaluated on an evenly spaced grid of `points` over [lo, hi].
std::vector<std::pair<double, double>> kde_curve(std::span<const double> xs,
                                                 double lo, double hi,
                                                 int points,
                                                 double bandwidth = 0.0);

}  // namespace dfsim::stats
