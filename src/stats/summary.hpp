// Summary statistics used throughout the paper's evaluation:
// mean/σ (Table II), Z-score normalization (Figs. 3, 4, 7, 9), percentiles
// (Figs. 2, 14), the ±3σ outlier filter (Section III-A), and CCDFs (Fig. 1).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace dfsim::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

Summary summarize(std::span<const double> xs);

/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::span<const double> xs, double q);

/// Same, for data already sorted ascending — no copy, no re-sort. Use this
/// when taking several percentiles of one dataset.
double percentile_sorted(std::span<const double> sorted, double q);

/// Z-score normalization: (x - mean) / stddev (stddev clamped away from 0).
std::vector<double> zscores(std::span<const double> xs);

/// The paper's outlier filter: drop samples beyond ±k standard deviations
/// of the mean (k = 3 in Section III-A). Returns the kept samples.
std::vector<double> remove_outliers(std::span<const double> xs, double k = 3.0);

/// Complementary CDF of a weighted distribution: returns (x, P[X >= x])
/// pairs at each distinct x, where P is weighted by `weights` (e.g.
/// core-hours for Fig. 1).
std::vector<std::pair<double, double>> weighted_ccdf(
    std::span<const double> xs, std::span<const double> weights);

/// Relative improvement of b over a in percent: 100 * (a - b) / a.
double improvement_pct(double a, double b);

}  // namespace dfsim::stats
