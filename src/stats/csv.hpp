// Minimal CSV writer for bench artifacts.
//
// Every bench prints its paper figure as text; with --csv=DIR it also
// writes the raw series here so plots can be regenerated offline. Handles
// RFC-4180-style quoting for the few cases (names with commas) that need
// it.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace dfsim::stats {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// `ok()` reports whether the file opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void row(std::initializer_list<std::string> cells) {
    write_row(std::vector<std::string>(cells));
  }
  void write_row(const std::vector<std::string>& cells);

  /// Number formatting helper (full double precision, no locale).
  static std::string num(double v);

 private:
  static std::string quote(const std::string& s);
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace dfsim::stats
