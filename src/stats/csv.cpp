#include "stats/csv.hpp"

#include <cstdio>

namespace dfsim::stats {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (out_) write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (!out_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << quote(cells[i]);
  }
  // Pad short rows so every row has the header's column count.
  for (std::size_t i = cells.size(); i < columns_; ++i) out_ << ',';
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string CsvWriter::quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (const char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

}  // namespace dfsim::stats
