#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace dfsim::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    w[c] = headers_[c].size();
    for (const auto& row : rows_) w[c] = std::max(w[c], row[c].size());
  }
  auto line = [&](char fill) {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << '+' << std::string(w[c] + 2, fill);
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < w.size(); ++c)
      os << "| " << std::left << std::setw(static_cast<int>(w[c])) << cells[c]
         << ' ';
    os << "|\n";
  };
  line('-');
  print_row(headers_);
  line('=');
  for (const auto& row : rows_) print_row(row);
  line('-');
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_signed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f", prec, v);
  return buf;
}

void print_bar(std::ostream& os, const std::string& label, double value,
               double vmax, int width) {
  const int n = vmax > 0.0
                    ? std::clamp(static_cast<int>(value / vmax * width), 0, width)
                    : 0;
  os << "  " << std::left << std::setw(22) << label << " |"
     << std::string(static_cast<std::size_t>(n), '#')
     << std::string(static_cast<std::size_t>(width - n), ' ') << "| "
     << fmt(value, 3) << "\n";
}

void print_series(std::ostream& os,
                  std::span<const std::pair<double, double>> pts,
                  const std::string& xlabel, const std::string& ylabel,
                  int width) {
  double ymax = 0.0;
  for (const auto& [x, y] : pts) ymax = std::max(ymax, y);
  os << "  " << xlabel << " vs " << ylabel << " (max " << fmt(ymax, 4) << ")\n";
  for (const auto& [x, y] : pts) {
    const int n = ymax > 0.0
                      ? std::clamp(static_cast<int>(y / ymax * width), 0, width)
                      : 0;
    os << "  " << std::right << std::setw(10) << fmt(x, 2) << " |"
       << std::string(static_cast<std::size_t>(n), '*') << "\n";
  }
}

}  // namespace dfsim::stats
