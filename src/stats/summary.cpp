#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace dfsim::stats {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.median = percentile_sorted(sorted, 0.5);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return percentile_sorted(v, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> zscores(std::span<const double> xs) {
  const Summary s = summarize(xs);
  const double sd = s.stddev > 1e-12 ? s.stddev : 1e-12;
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back((x - s.mean) / sd);
  return out;
}

std::vector<double> remove_outliers(std::span<const double> xs, double k) {
  const Summary s = summarize(xs);
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs)
    if (std::abs(x - s.mean) <= k * s.stddev || s.stddev <= 1e-12)
      out.push_back(x);
  return out;
}

std::vector<std::pair<double, double>> weighted_ccdf(
    std::span<const double> xs, std::span<const double> weights) {
  std::vector<std::pair<double, double>> pts;
  if (xs.empty() || xs.size() != weights.size()) return pts;
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return pts;
  double tail = total;  // weight of {X >= current x}
  for (std::size_t i = 0; i < idx.size();) {
    const double x = xs[idx[i]];
    pts.emplace_back(x, tail / total);
    double at_x = 0.0;
    while (i < idx.size() && xs[idx[i]] == x) {
      at_x += weights[idx[i]];
      ++i;
    }
    tail -= at_x;
  }
  return pts;
}

double improvement_pct(double a, double b) {
  if (a == 0.0) return 0.0;
  return 100.0 * (a - b) / a;
}

}  // namespace dfsim::stats
