// Slingshot-style low-diameter dragonfly: flat all-to-all groups.
//
// Models an HPE Slingshot fabric (Rosetta switches; Perlmutter, Frontier,
// El Capitan class — see arXiv 1907.05312): every group is a single flat
// clique of routers (no chassis/slot structure at all), so the network
// diameter is 3 hops (local, global, local) and every intra-group route is
// one hop. The Config shape maps as:
//    routers per group = chassis_per_group * slots_per_chassis (flat)
//    nodes: `nodes_per_router` on every router
//    global cables round-robin over the whole group, as on the dragonfly.
//
// This differs from modeling "slingshot_like" on the Aries Dragonfly class
// (the pre-abstraction extrapolation): there a flat group was only
// expressible as one chassis of <= slots_per_chassis routers, while real
// Slingshot groups are 32+ switches — here any chassis x slots product
// forms one clique. Local links are class kRank1 (kRank2 stays zero);
// link rates come from the Config (use a 200 Gb/s-class preset).
#pragma once

#include "topo/topology.hpp"

namespace dfsim::topo {

class Slingshot : public Topology {
 public:
  explicit Slingshot(Config cfg);

  [[nodiscard]] TopologyKind kind() const override {
    return TopologyKind::kSlingshot;
  }

  /// Always the direct port for same-group pairs: the group is a clique.
  [[nodiscard]] PortId local_port_to(RouterId from, RouterId to) const override;
  [[nodiscard]] PortId local_first_hop(RouterId from,
                                       RouterId to) const override {
    return local_port_to(from, to);
  }

 private:
  void build_local_ports();
};

}  // namespace dfsim::topo
