// Cray Aries-style three-level dragonfly topology.
//
// Structure (paper Section II-A):
//  * A group is a chassis x slot grid of routers.
//  * rank-1 (green): all-to-all among the slots of one chassis.
//  * rank-2 (grey):  all-to-all among the chassis at one slot position;
//    each such pair is connected by `rank2_parallel` physical links, which we
//    model as one link of aggregate bandwidth.
//  * rank-3 (blue):  `cables_per_group_pair` optical cables between every
//    pair of groups, spread round-robin over the routers of each group.
//  * Each router additionally hosts `nodes_per_router` processor ports
//    (ejection side); injection ports are owned by the NICs.
//
// Port numbering per router: [rank-1 ports][rank-2 ports][rank-3 ports]
// [processor/ejection ports]. Tile-class counters map onto these the same way
// the paper's 48 Aries router tiles split into 40 network + 8 processor tiles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"
#include "topo/config.hpp"

namespace dfsim::topo {

using RouterId = std::int32_t;
using NodeId = std::int32_t;
using GroupId = std::int32_t;
using PortId = std::int32_t;

/// Counter classes matching the paper's tile breakdown (Fig. 6, 10, 12).
enum class TileClass : std::uint8_t {
  kRank1 = 0,
  kRank2 = 1,
  kRank3 = 2,
  kProc = 3,  ///< processor/ejection ports; req vs rsp split happens per-VC
};
inline constexpr int kNumTileClasses = 4;
const char* tile_class_name(TileClass c);

struct PortInfo {
  TileClass cls = TileClass::kRank1;
  RouterId peer_router = -1;  ///< -1 for processor (ejection) ports
  PortId peer_port = -1;      ///< ingress port id at peer (informational)
  NodeId eject_node = -1;     ///< node served, for processor ports
  GroupId target_group = -1;  ///< remote group, for rank-3 ports
  double bw_gbps = 0.0;
  sim::Tick latency = 0;
};

class Dragonfly {
 public:
  explicit Dragonfly(Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }

  // --- Coordinates ---
  // group_of_router / router_of_node / node_slot are forwarding hot-path
  // lookups (every routing step divides ids into coordinates), so they read
  // tables precomputed by the constructor instead of performing runtime
  // integer divisions by the (runtime-valued) topology dimensions.
  [[nodiscard]] GroupId group_of_router(RouterId r) const {
    return router_group_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int chassis_of(RouterId r) const {
    return (r % cfg_.routers_per_group()) / cfg_.slots_per_chassis;
  }
  [[nodiscard]] int slot_of(RouterId r) const {
    return r % cfg_.slots_per_chassis;
  }
  [[nodiscard]] RouterId router_at(GroupId g, int chassis, int slot) const {
    return static_cast<RouterId>(g * cfg_.routers_per_group() +
                                 chassis * cfg_.slots_per_chassis + slot);
  }
  [[nodiscard]] RouterId router_of_node(NodeId n) const {
    return node_router_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] GroupId group_of_node(NodeId n) const {
    return group_of_router(router_of_node(n));
  }
  [[nodiscard]] int node_slot(NodeId n) const {
    return n - node_router_[static_cast<std::size_t>(n)] * cfg_.nodes_per_router;
  }

  // --- Ports ---
  [[nodiscard]] int num_ports(RouterId r) const {
    return static_cast<int>(ports_[r].size());
  }
  [[nodiscard]] const PortInfo& port(RouterId r, PortId p) const {
    return ports_[r][static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::span<const PortInfo> ports(RouterId r) const {
    return ports_[r];
  }

  /// Direct local port from `from` to `to` (same chassis -> rank-1, same
  /// slot -> rank-2). Returns -1 if the routers are not directly connected.
  [[nodiscard]] PortId local_port_to(RouterId from, RouterId to) const;

  /// Ejection (processor) port on `r` serving node `n`.
  /// Precondition: router_of_node(n) == r.
  [[nodiscard]] PortId eject_port(RouterId r, NodeId n) const;

  /// rank-3 ports on `r` leading to group `tg` (possibly empty).
  [[nodiscard]] std::span<const PortId> global_ports_to(RouterId r, GroupId tg) const;

  /// Routers in group `g` owning at least one cable to group `tg`,
  /// paired with one such port each.
  struct Gateway {
    RouterId router;
    PortId port;
  };
  [[nodiscard]] std::span<const Gateway> gateways(GroupId g, GroupId tg) const;

  /// Minimal router-to-router hop count (0 if same router; includes the
  /// global hop). Used by tests and the non-minimal path-length accounting.
  [[nodiscard]] int minimal_hops(RouterId src, RouterId dst) const;

  /// Number of distinct groups covered by a set of nodes.
  [[nodiscard]] int groups_spanned(std::span<const NodeId> nodes) const;

  // Port-layout bases (useful for iteration and tests).
  [[nodiscard]] int rank1_ports() const { return cfg_.slots_per_chassis - 1; }
  [[nodiscard]] int rank2_ports() const { return cfg_.chassis_per_group - 1; }
  [[nodiscard]] int global_port_base() const { return rank1_ports() + rank2_ports(); }
  [[nodiscard]] int num_global_ports(RouterId r) const {
    return static_cast<int>(global_target_.at(static_cast<std::size_t>(r)).size());
  }
  [[nodiscard]] int proc_port_base(RouterId r) const {
    return global_port_base() + num_global_ports(r);
  }

 private:
  void build_local_ports();
  void build_global_ports();
  void build_proc_ports();

  Config cfg_;
  std::vector<GroupId> router_group_;  // [router] -> group (hot-path table)
  std::vector<RouterId> node_router_;  // [node] -> router (hot-path table)
  std::vector<std::vector<PortInfo>> ports_;  // [router][port]
  // Per router: target group of each rank-3 port (parallel to port order).
  std::vector<std::vector<GroupId>> global_target_;
  // [router][target group] -> list of rank-3 port ids (flattened map).
  std::vector<std::vector<std::vector<PortId>>> global_ports_by_group_;
  // [group][target group] -> gateways.
  std::vector<std::vector<std::vector<Gateway>>> gateways_;
};

}  // namespace dfsim::topo
