// Cray Aries-style three-level dragonfly topology.
//
// Structure (paper Section II-A):
//  * A group is a chassis x slot grid of routers.
//  * rank-1 (green): all-to-all among the slots of one chassis.
//  * rank-2 (grey):  all-to-all among the chassis at one slot position;
//    each such pair is connected by `rank2_parallel` physical links, which we
//    model as one link of aggregate bandwidth.
//  * rank-3 (blue):  `cables_per_group_pair` optical cables between every
//    pair of groups, spread round-robin over the routers of each group.
//  * Each router additionally hosts `nodes_per_router` processor ports
//    (ejection side); injection ports are owned by the NICs.
//
// Port numbering per router: [rank-1 ports][rank-2 ports][rank-3 ports]
// [processor/ejection ports]. Tile-class counters map onto these the same way
// the paper's 48 Aries router tiles split into 40 network + 8 processor tiles.
#pragma once

#include "topo/topology.hpp"

namespace dfsim::topo {

class Dragonfly : public Topology {
 public:
  explicit Dragonfly(Config cfg);

  [[nodiscard]] TopologyKind kind() const override {
    return TopologyKind::kDragonfly;
  }

  // --- Aries coordinates ---
  // chassis_of / slot_of read tables precomputed by the constructor, like
  // group_of_router: they feed local_first_hop at planner-build time and
  // tests iterate them densely, so no runtime division by the
  // (runtime-valued) topology dimensions.
  [[nodiscard]] int chassis_of(RouterId r) const {
    return chassis_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int slot_of(RouterId r) const {
    return slot_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] RouterId router_at(GroupId g, int chassis, int slot) const {
    return static_cast<RouterId>(g * rpg_ + chassis * cfg_.slots_per_chassis +
                                 slot);
  }

  /// Direct local port from `from` to `to` (same chassis -> rank-1, same
  /// slot -> rank-2). Returns -1 if the routers are not directly connected.
  [[nodiscard]] PortId local_port_to(RouterId from, RouterId to) const override;

  /// Pristine first hop toward a same-group router: the direct port when
  /// one exists, else rank-1 first (toward the router at our chassis and
  /// the target's slot). Row-first order keeps the within-level channel
  /// dependency graph acyclic (VC ladder deadlock-freedom argument).
  [[nodiscard]] PortId local_first_hop(RouterId from,
                                       RouterId to) const override;

  // Aries port-layout bases (uniform across routers; generic consumers use
  // Topology::local_end / proc_port_base instead).
  [[nodiscard]] int rank1_ports() const { return cfg_.slots_per_chassis - 1; }
  [[nodiscard]] int rank2_ports() const { return cfg_.chassis_per_group - 1; }
  [[nodiscard]] int global_port_base() const {
    return rank1_ports() + rank2_ports();
  }

 private:
  void build_local_ports();

  std::vector<std::int32_t> chassis_;  // [router] (hot-path table)
  std::vector<std::int32_t> slot_;     // [router] (hot-path table)
};

}  // namespace dfsim::topo
