// Shard partitioning of a topology for conservatively synchronized
// parallel execution (sim::ShardedEngine).
//
// The partition is group-granular and contiguous: shard `s` owns a
// contiguous block of groups. Group granularity is what makes the
// partition safe: every rank-1/rank-2 link, every ejection port, and every
// load the adaptive planner reads during a decision at router `r` is
// confined to group(r), so the only cross-shard interaction is a rank-3
// (global-cable) traversal — and those have a guaranteed minimum latency,
// the *lookahead*, that bounds how far one shard's present can reach into
// another shard's future. Every topo::Topology guarantees group-major
// contiguous router/node ids and uniform group size, so the plan logic is
// topology-agnostic.
//
// The lookahead is a function of the topology only — never of the shard
// count or the block boundaries — so the window grid of the sharded engine
// is identical for every S *and every partition*, which is what makes
// results byte-identical across shard counts and across plan choices.
// Where the boundaries fall is therefore pure wall-clock policy:
//
//   * build() places them by group count (shard s owns
//     [floor(s*G/S), floor((s+1)*G/S))) — the right default before
//     anything is known about the workload;
//   * build_weighted() places them by a caller-supplied per-group weight
//     (a deterministic traffic estimate, e.g. busy nodes per group after
//     placement) and minimizes the maximum block weight over all
//     contiguous partitions, so one hot group no longer drags its whole
//     count-balanced block onto a single executor.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::topo {

struct ShardPlan {
  int shards = 1;             ///< actual shard count (requested, clamped)
  sim::Tick lookahead = 1;    ///< min rank-3 (link latency + router latency)
  std::vector<int> shard_of_group;   ///< [group]
  std::vector<int> shard_of_router;  ///< [router]
  std::vector<int> shard_of_node;    ///< [node]

  /// Build a plan for `requested` shards (clamped to [1, groups]) with
  /// count-balanced contiguous blocks.
  [[nodiscard]] static ShardPlan build(const Topology& topo, int requested);

  /// Build a plan whose contiguous blocks minimize the maximum total
  /// `group_weight` per shard (exact DP; every shard gets at least one
  /// group). `group_weight` must have one entry per group; an all-zero
  /// vector degrades to uniform weights. Ties resolve deterministically
  /// (lightest feasible block first), so the plan is a pure function of
  /// (topology, requested, weights).
  [[nodiscard]] static ShardPlan build_weighted(
      const Topology& topo, int requested,
      const std::vector<std::uint64_t>& group_weight);

  /// Largest / mean block weight under this plan (1.0 = perfectly even;
  /// diagnostic only, never feeds back into simulation state).
  [[nodiscard]] double imbalance(
      const std::vector<std::uint64_t>& group_weight) const;
};

}  // namespace dfsim::topo
