// Shard partitioning of a dragonfly for conservatively synchronized
// parallel execution (sim::ShardedEngine).
//
// The partition is group-granular and contiguous: shard `s` owns groups
// [floor(s*G/S), floor((s+1)*G/S)). Group granularity is what makes the
// partition safe: every rank-1/rank-2 link, every ejection port, and every
// load the adaptive planner reads during a decision at router `r` is
// confined to group(r), so the only cross-shard interaction is a rank-3
// (global-cable) traversal — and those have a guaranteed minimum latency,
// the *lookahead*, that bounds how far one shard's present can reach into
// another shard's future.
//
// The lookahead (and the partition itself) is a function of the topology
// only — never of the shard count — so the window grid of the sharded
// engine is identical for every S, which is what makes results byte-
// identical across shard counts.
#pragma once

#include <vector>

#include "sim/time.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::topo {

struct ShardPlan {
  int shards = 1;             ///< actual shard count (requested, clamped)
  sim::Tick lookahead = 1;    ///< min rank-3 (link latency + router latency)
  std::vector<int> shard_of_group;   ///< [group]
  std::vector<int> shard_of_router;  ///< [router]
  std::vector<int> shard_of_node;    ///< [node]

  /// Build a plan for `requested` shards (clamped to [1, groups]).
  [[nodiscard]] static ShardPlan build(const Dragonfly& topo, int requested);
};

}  // namespace dfsim::topo
