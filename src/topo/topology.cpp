#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "topo/dragonfly.hpp"
#include "topo/dragonfly_plus.hpp"
#include "topo/slingshot.hpp"

namespace dfsim::topo {

const char* tile_class_name(TileClass c) {
  switch (c) {
    case TileClass::kRank1: return "Rank1";
    case TileClass::kRank2: return "Rank2";
    case TileClass::kRank3: return "Rank3";
    case TileClass::kProc: return "Proc";
  }
  return "?";
}

Topology::Topology(Config cfg, int routers_per_group) : cfg_(std::move(cfg)) {
  cfg_.validate();
  groups_ = cfg_.groups;
  rpg_ = routers_per_group;
  const auto nr = static_cast<std::size_t>(num_routers());
  router_group_.resize(nr);
  for (RouterId r = 0; r < num_routers(); ++r)
    router_group_[static_cast<std::size_t>(r)] = r / rpg_;
  ports_.resize(nr);
  global_target_.resize(nr);
  global_ports_by_group_.resize(nr);
  gateways_.assign(
      static_cast<std::size_t>(groups_),
      std::vector<std::vector<Gateway>>(static_cast<std::size_t>(groups_)));
}

void Topology::materialize_global_ports(
    const std::vector<std::vector<std::pair<RouterId, GroupId>>>& pending) {
  // Materialize global ports (in pending order) and per-group indices.
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    auto& tgt = global_target_[static_cast<std::size_t>(r)];
    auto& by_group = global_ports_by_group_[static_cast<std::size_t>(r)];
    by_group.assign(static_cast<std::size_t>(groups_), {});
    const GroupId g = group_of_router(r);
    for (const auto& [peer, tg] : pending[static_cast<std::size_t>(r)]) {
      PortInfo pi;
      pi.cls = TileClass::kRank3;
      pi.peer_router = peer;
      pi.target_group = tg;
      pi.bw_gbps = cfg_.rank3_bw_gbps;
      pi.latency = cfg_.link_latency_global;
      const auto pid = static_cast<PortId>(pv.size());
      pv.push_back(pi);
      tgt.push_back(tg);
      by_group[static_cast<std::size_t>(tg)].push_back(pid);
      gateways_[static_cast<std::size_t>(g)][static_cast<std::size_t>(tg)]
          .push_back(Gateway{r, pid});
    }
  }
  // Resolve peer_port for global ports: the matching cable at the peer.
  // Cables between a router pair are matched in creation order on both
  // sides (pending lists were appended symmetrically). Local ports resolve
  // their peers in the per-topology builders, so the scan starts at the
  // first global port of each router.
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const auto base = static_cast<PortId>(
        pv.size() - pending[static_cast<std::size_t>(r)].size());
    for (PortId p = base; p < static_cast<PortId>(pv.size()); ++p) {
      auto& pi = pv[static_cast<std::size_t>(p)];
      if (pi.cls != TileClass::kRank3 || pi.peer_port >= 0) continue;
      auto& peer_pv = ports_[static_cast<std::size_t>(pi.peer_router)];
      for (PortId q = 0; q < static_cast<PortId>(peer_pv.size()); ++q) {
        auto& qi = peer_pv[static_cast<std::size_t>(q)];
        if (qi.cls == TileClass::kRank3 && qi.peer_router == r &&
            qi.peer_port < 0) {
          pi.peer_port = q;
          qi.peer_port = p;
          break;
        }
      }
    }
  }
}

void Topology::build_proc_ports() {
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const NodeId first = node_first_[static_cast<std::size_t>(r)];
    for (int k = 0; k < node_count_[static_cast<std::size_t>(r)]; ++k) {
      PortInfo pi;
      pi.cls = TileClass::kProc;
      pi.eject_node = first + k;
      pi.bw_gbps = cfg_.inject_bw_gbps;
      pi.latency = cfg_.nic_latency;
      pv.push_back(pi);
    }
  }
}

void Topology::finalize_tables() {
  const int nr = num_routers();
  if (static_cast<int>(node_router_.size()) != num_nodes_ ||
      node_first_.size() != static_cast<std::size_t>(nr))
    throw std::logic_error("Topology: assign_nodes not run");
  local_end_.resize(static_cast<std::size_t>(nr));
  proc_base_.resize(static_cast<std::size_t>(nr));
  for (RouterId r = 0; r < nr; ++r) {
    const auto& pv = ports_[static_cast<std::size_t>(r)];
    // Port-class ordering invariant: [local][global][proc], no interleaving.
    int stage = 0;  // 0 = local, 1 = global, 2 = proc
    int lend = 0, pbase = static_cast<int>(pv.size());
    for (std::size_t p = 0; p < pv.size(); ++p) {
      const TileClass c = pv[p].cls;
      const int want = c == TileClass::kRank3 ? 1
                       : c == TileClass::kProc ? 2
                                               : 0;
      if (want < stage)
        throw std::logic_error("Topology: port classes out of order");
      if (stage == 0 && want > 0) lend = static_cast<int>(p);
      if (stage < 2 && want == 2) pbase = static_cast<int>(p);
      stage = want;
    }
    if (stage == 0) lend = static_cast<int>(pv.size());
    local_end_[static_cast<std::size_t>(r)] = lend;
    proc_base_[static_cast<std::size_t>(r)] = pbase;
    if (static_cast<int>(pv.size()) - pbase !=
        node_count_[static_cast<std::size_t>(r)])
      throw std::logic_error("Topology: proc ports != hosted nodes");
  }
#ifndef NDEBUG
  // Peer symmetry: port(peer, peer_port) must point straight back.
  for (RouterId r = 0; r < nr; ++r)
    for (const PortInfo& pi : ports_[static_cast<std::size_t>(r)]) {
      if (pi.peer_router < 0) continue;
      const PortInfo& back = port(pi.peer_router, pi.peer_port);
      assert(back.peer_router == r);
    }
#endif
}

PortId Topology::eject_port(RouterId r, NodeId n) const {
  if (router_of_node(n) != r)
    throw std::invalid_argument("Topology::eject_port: node not on router");
  return proc_base_[static_cast<std::size_t>(r)] +
         static_cast<PortId>(node_slot(n));
}

int Topology::minimal_hops(RouterId src, RouterId dst) const {
  if (src == dst) return 0;
  const GroupId gs = group_of_router(src), gd = group_of_router(dst);
  if (gs == gd) {
    // 1 hop if directly connected, else 2 (group diameter <= 2 invariant).
    return local_port_to(src, dst) >= 0 ? 1 : 2;
  }
  int best = 1000;
  for (const auto& gw : gateways(gs, gd)) {
    const auto& pi = port(gw.router, gw.port);
    int hops = 1;  // the global hop
    if (gw.router != src) hops += (local_port_to(src, gw.router) >= 0) ? 1 : 2;
    const RouterId entry = pi.peer_router;
    if (entry != dst) hops += (local_port_to(entry, dst) >= 0) ? 1 : 2;
    best = std::min(best, hops);
  }
  return best;
}

int Topology::groups_spanned(std::span<const NodeId> nodes) const {
  std::unordered_set<GroupId> gs;
  for (NodeId n : nodes) gs.insert(group_of_node(n));
  return static_cast<int>(gs.size());
}

std::unique_ptr<Topology> make_topology(Config cfg) {
  switch (cfg.kind) {
    case TopologyKind::kDefault:
    case TopologyKind::kDragonfly:
      return std::make_unique<Dragonfly>(std::move(cfg));
    case TopologyKind::kDragonflyPlus:
      return std::make_unique<DragonflyPlus>(std::move(cfg));
    case TopologyKind::kSlingshot:
      return std::make_unique<Slingshot>(std::move(cfg));
  }
  throw std::invalid_argument("make_topology: unknown kind");
}

}  // namespace dfsim::topo
