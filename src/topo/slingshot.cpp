#include "topo/slingshot.hpp"

namespace dfsim::topo {

Slingshot::Slingshot(Config cfg) : Topology(cfg, cfg.routers_per_group()) {
  assign_nodes([&](RouterId) { return cfg_.nodes_per_router; });
  build_local_ports();
  const int R = rpg_;
  const int cables = cfg_.cables_per_group_pair;
  build_global_ports([R, cables](GroupId gs, GroupId gr, int k) {
    return ((gr < gs ? gr : gr - 1) * cables + k) % R;
  });
  build_proc_ports();
  finalize_tables();
}

void Slingshot::build_local_ports() {
  // One clique per group: router (in-group index i) owns rpg-1 local ports,
  // port p leading to in-group index (p < i ? p : p + 1) — the same
  // skip-self numbering the dragonfly uses within a chassis.
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const GroupId g = group_of_router(r);
    const RouterId base = static_cast<RouterId>(g * rpg_);
    const int i = r % rpg_;
    for (int j = 0; j < rpg_; ++j) {
      if (j == i) continue;
      PortInfo pi;
      pi.cls = TileClass::kRank1;
      pi.peer_router = base + j;
      pi.peer_port = static_cast<PortId>(i < j ? i : i - 1);
      pi.bw_gbps = cfg_.rank1_bw_gbps;
      pi.latency = cfg_.link_latency_local;
      pv.push_back(pi);
    }
  }
}

PortId Slingshot::local_port_to(RouterId from, RouterId to) const {
  if (from == to || group_of_router(from) != group_of_router(to)) return -1;
  const int i = from % rpg_, j = to % rpg_;
  return static_cast<PortId>(j < i ? j : j - 1);
}

}  // namespace dfsim::topo
