#include "topo/dragonfly.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace dfsim::topo {

const char* tile_class_name(TileClass c) {
  switch (c) {
    case TileClass::kRank1: return "Rank1";
    case TileClass::kRank2: return "Rank2";
    case TileClass::kRank3: return "Rank3";
    case TileClass::kProc: return "Proc";
  }
  return "?";
}

Dragonfly::Dragonfly(Config cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  const auto nr = static_cast<std::size_t>(cfg_.num_routers());
  // Coordinate tables first: the port builders below use group_of_router().
  router_group_.resize(nr);
  for (RouterId r = 0; r < cfg_.num_routers(); ++r)
    router_group_[static_cast<std::size_t>(r)] = r / cfg_.routers_per_group();
  node_router_.resize(static_cast<std::size_t>(cfg_.num_nodes()));
  for (NodeId n = 0; n < cfg_.num_nodes(); ++n)
    node_router_[static_cast<std::size_t>(n)] = n / cfg_.nodes_per_router;
  ports_.resize(nr);
  global_target_.resize(nr);
  global_ports_by_group_.resize(nr);
  gateways_.assign(static_cast<std::size_t>(cfg_.groups),
                   std::vector<std::vector<Gateway>>(
                       static_cast<std::size_t>(cfg_.groups)));
  build_local_ports();
  build_global_ports();
  build_proc_ports();
}

void Dragonfly::build_local_ports() {
  const int S = cfg_.slots_per_chassis;
  const int C = cfg_.chassis_per_group;
  for (RouterId r = 0; r < cfg_.num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const GroupId g = group_of_router(r);
    const int c = chassis_of(r);
    const int s = slot_of(r);
    // rank-1: all other slots in this chassis.
    for (int s2 = 0; s2 < S; ++s2) {
      if (s2 == s) continue;
      PortInfo pi;
      pi.cls = TileClass::kRank1;
      pi.peer_router = router_at(g, c, s2);
      pi.peer_port = static_cast<PortId>(s < s2 ? s : s - 1);  // our slot at peer
      pi.bw_gbps = cfg_.rank1_bw_gbps;
      pi.latency = cfg_.link_latency_local;
      pv.push_back(pi);
    }
    // rank-2: all other chassis at this slot (3 parallel links folded into
    // one port with aggregate bandwidth).
    for (int c2 = 0; c2 < C; ++c2) {
      if (c2 == c) continue;
      PortInfo pi;
      pi.cls = TileClass::kRank2;
      pi.peer_router = router_at(g, c2, s);
      pi.peer_port = static_cast<PortId>((S - 1) + (c < c2 ? c : c - 1));
      pi.bw_gbps = cfg_.rank2_bw_gbps * cfg_.rank2_parallel;
      pi.latency = cfg_.link_latency_local;
      pv.push_back(pi);
    }
  }
}

void Dragonfly::build_global_ports() {
  const int R = cfg_.routers_per_group();
  const int cables = cfg_.cables_per_group_pair;
  // Record the per-router list of (peer_router, target_group) first, then
  // materialize ports so that peer_port indices can be resolved.
  std::vector<std::vector<std::pair<RouterId, GroupId>>> pending(
      static_cast<std::size_t>(cfg_.num_routers()));
  for (GroupId ga = 0; ga < cfg_.groups; ++ga) {
    for (GroupId gb = ga + 1; gb < cfg_.groups; ++gb) {
      for (int k = 0; k < cables; ++k) {
        // Spread cables of each pair round-robin over the group's routers.
        const int ia = ((gb < ga ? gb : gb - 1) * cables + k) % R;
        const int ib = ((ga < gb ? ga : ga - 1) * cables + k) % R;
        const RouterId ra = static_cast<RouterId>(ga * R + ia);
        const RouterId rb = static_cast<RouterId>(gb * R + ib);
        pending[static_cast<std::size_t>(ra)].emplace_back(rb, gb);
        pending[static_cast<std::size_t>(rb)].emplace_back(ra, ga);
      }
    }
  }
  // Materialize rank-3 ports (in pending order) and per-group indices.
  for (RouterId r = 0; r < cfg_.num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    auto& tgt = global_target_[static_cast<std::size_t>(r)];
    auto& by_group = global_ports_by_group_[static_cast<std::size_t>(r)];
    by_group.assign(static_cast<std::size_t>(cfg_.groups), {});
    const GroupId g = group_of_router(r);
    for (const auto& [peer, tg] : pending[static_cast<std::size_t>(r)]) {
      PortInfo pi;
      pi.cls = TileClass::kRank3;
      pi.peer_router = peer;
      pi.target_group = tg;
      pi.bw_gbps = cfg_.rank3_bw_gbps;
      pi.latency = cfg_.link_latency_global;
      const auto pid = static_cast<PortId>(pv.size());
      pv.push_back(pi);
      tgt.push_back(tg);
      by_group[static_cast<std::size_t>(tg)].push_back(pid);
      gateways_[static_cast<std::size_t>(g)][static_cast<std::size_t>(tg)]
          .push_back(Gateway{r, pid});
    }
  }
  // Resolve peer_port for rank-3 ports: the matching cable at the peer.
  // Cables between a router pair are matched in creation order on both
  // sides (pending lists were appended symmetrically).
  for (RouterId r = 0; r < cfg_.num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    for (PortId p = global_port_base(); p < static_cast<PortId>(pv.size()); ++p) {
      auto& pi = pv[static_cast<std::size_t>(p)];
      if (pi.cls != TileClass::kRank3 || pi.peer_port >= 0) continue;
      // Find the first unresolved port at the peer pointing back at us.
      auto& peer_pv = ports_[static_cast<std::size_t>(pi.peer_router)];
      for (PortId q = global_port_base();
           q < static_cast<PortId>(peer_pv.size()); ++q) {
        auto& qi = peer_pv[static_cast<std::size_t>(q)];
        if (qi.cls == TileClass::kRank3 && qi.peer_router == r &&
            qi.peer_port < 0) {
          pi.peer_port = q;
          qi.peer_port = p;
          break;
        }
      }
    }
  }
}

void Dragonfly::build_proc_ports() {
  for (RouterId r = 0; r < cfg_.num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    for (int k = 0; k < cfg_.nodes_per_router; ++k) {
      PortInfo pi;
      pi.cls = TileClass::kProc;
      pi.eject_node = static_cast<NodeId>(r * cfg_.nodes_per_router + k);
      pi.bw_gbps = cfg_.inject_bw_gbps;
      pi.latency = cfg_.nic_latency;
      pv.push_back(pi);
    }
  }
}

PortId Dragonfly::local_port_to(RouterId from, RouterId to) const {
  if (from == to || group_of_router(from) != group_of_router(to)) return -1;
  const int c1 = chassis_of(from), s1 = slot_of(from);
  const int c2 = chassis_of(to), s2 = slot_of(to);
  if (c1 == c2) return static_cast<PortId>(s2 < s1 ? s2 : s2 - 1);
  if (s1 == s2)
    return static_cast<PortId>((cfg_.slots_per_chassis - 1) +
                               (c2 < c1 ? c2 : c2 - 1));
  return -1;
}

PortId Dragonfly::eject_port(RouterId r, NodeId n) const {
  if (router_of_node(n) != r)
    throw std::invalid_argument("Dragonfly::eject_port: node not on router");
  return static_cast<PortId>(proc_port_base(r) + node_slot(n));
}

std::span<const PortId> Dragonfly::global_ports_to(RouterId r, GroupId tg) const {
  return global_ports_by_group_[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(tg)];
}

std::span<const Dragonfly::Gateway> Dragonfly::gateways(GroupId g,
                                                        GroupId tg) const {
  return gateways_[static_cast<std::size_t>(g)][static_cast<std::size_t>(tg)];
}

int Dragonfly::minimal_hops(RouterId src, RouterId dst) const {
  if (src == dst) return 0;
  const GroupId gs = group_of_router(src), gd = group_of_router(dst);
  if (gs == gd) {
    // 1 hop if directly connected, else 2 (rank-1 then rank-2 or vice versa).
    return local_port_to(src, dst) >= 0 ? 1 : 2;
  }
  int best = 1000;
  for (const auto& gw : gateways(gs, gd)) {
    const auto& pi = port(gw.router, gw.port);
    int hops = 1;  // the global hop
    if (gw.router != src) hops += (local_port_to(src, gw.router) >= 0) ? 1 : 2;
    const RouterId entry = pi.peer_router;
    if (entry != dst) hops += (local_port_to(entry, dst) >= 0) ? 1 : 2;
    best = std::min(best, hops);
  }
  return best;
}

int Dragonfly::groups_spanned(std::span<const NodeId> nodes) const {
  std::unordered_set<GroupId> gs;
  for (NodeId n : nodes) gs.insert(group_of_node(n));
  return static_cast<int>(gs.size());
}

}  // namespace dfsim::topo
