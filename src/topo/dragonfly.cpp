#include "topo/dragonfly.hpp"

namespace dfsim::topo {

Dragonfly::Dragonfly(Config cfg) : Topology(cfg, cfg.routers_per_group()) {
  const int nr = num_routers();
  chassis_.resize(static_cast<std::size_t>(nr));
  slot_.resize(static_cast<std::size_t>(nr));
  for (RouterId r = 0; r < nr; ++r) {
    chassis_[static_cast<std::size_t>(r)] = (r % rpg_) / cfg_.slots_per_chassis;
    slot_[static_cast<std::size_t>(r)] = r % cfg_.slots_per_chassis;
  }
  assign_nodes([&](RouterId) { return cfg_.nodes_per_router; });
  build_local_ports();
  // Spread the cables of each group pair round-robin over the group's
  // routers: cable k of pair (ga, gb) lands on in-group router index
  // ((gb<ga ? gb : gb-1)*cables + k) % routers_per_group.
  const int R = rpg_;
  const int cables = cfg_.cables_per_group_pair;
  build_global_ports([R, cables](GroupId gs, GroupId gr, int k) {
    return ((gr < gs ? gr : gr - 1) * cables + k) % R;
  });
  build_proc_ports();
  finalize_tables();
}

void Dragonfly::build_local_ports() {
  const int S = cfg_.slots_per_chassis;
  const int C = cfg_.chassis_per_group;
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const GroupId g = group_of_router(r);
    const int c = chassis_of(r);
    const int s = slot_of(r);
    // rank-1: all other slots in this chassis.
    for (int s2 = 0; s2 < S; ++s2) {
      if (s2 == s) continue;
      PortInfo pi;
      pi.cls = TileClass::kRank1;
      pi.peer_router = router_at(g, c, s2);
      pi.peer_port = static_cast<PortId>(s < s2 ? s : s - 1);  // our slot at peer
      pi.bw_gbps = cfg_.rank1_bw_gbps;
      pi.latency = cfg_.link_latency_local;
      pv.push_back(pi);
    }
    // rank-2: all other chassis at this slot (3 parallel links folded into
    // one port with aggregate bandwidth).
    for (int c2 = 0; c2 < C; ++c2) {
      if (c2 == c) continue;
      PortInfo pi;
      pi.cls = TileClass::kRank2;
      pi.peer_router = router_at(g, c2, s);
      pi.peer_port = static_cast<PortId>((S - 1) + (c < c2 ? c : c - 1));
      pi.bw_gbps = cfg_.rank2_bw_gbps * cfg_.rank2_parallel;
      pi.latency = cfg_.link_latency_local;
      pv.push_back(pi);
    }
  }
}

PortId Dragonfly::local_port_to(RouterId from, RouterId to) const {
  if (from == to || group_of_router(from) != group_of_router(to)) return -1;
  const int c1 = chassis_of(from), s1 = slot_of(from);
  const int c2 = chassis_of(to), s2 = slot_of(to);
  if (c1 == c2) return static_cast<PortId>(s2 < s1 ? s2 : s2 - 1);
  if (s1 == s2)
    return static_cast<PortId>((cfg_.slots_per_chassis - 1) +
                               (c2 < c1 ? c2 : c2 - 1));
  return -1;
}

PortId Dragonfly::local_first_hop(RouterId from, RouterId to) const {
  PortId p = local_port_to(from, to);
  if (p < 0 && to != from) {
    // Two-hop path, rank-1 first: hop within our chassis to the target's
    // slot, then rank-2 to the target's chassis.
    const RouterId via_r1 =
        router_at(group_of_router(from), chassis_of(from), slot_of(to));
    p = local_port_to(from, via_r1);
  }
  return p;
}

}  // namespace dfsim::topo
