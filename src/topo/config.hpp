// Dragonfly system configuration.
//
// Parameterizes a Cray XC-40-style three-level dragonfly: groups of routers
// arranged in a chassis x slot grid, rank-1 (intra-chassis all-to-all) and
// rank-2 (intra-column, 3 parallel links) copper levels, and a rank-3 optical
// all-to-all between groups with a configurable number of cables per group
// pair. Presets model ALCF Theta and NERSC Cori, plus scaled-down variants
// for tests.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace dfsim::topo {

/// Which fabric to instantiate over the Config's shape parameters.
/// kDefault is a sentinel meaning "not explicitly chosen": it resolves to
/// kDragonfly at make_topology, and core::ScenarioConfig::resolve() lets
/// the DFSIM_TEST_TOPO environment knob substitute another kind for it
/// (an explicit kind always wins, like DFSIM_TEST_SHARDS vs --shards).
enum class TopologyKind : std::uint8_t {
  kDefault = 0,
  kDragonfly,      ///< Aries 3-level: chassis x slot groups, rank-1/2/3
  kDragonflyPlus,  ///< two-tier groups (leaf/spine), global cables on spines
  kSlingshot,      ///< flat all-to-all groups, 200 Gb/s-class links
};

/// Canonical spelling ("dragonfly", "dragonfly_plus", "slingshot";
/// kDefault prints as "default").
[[nodiscard]] const char* topology_kind_name(TopologyKind k);
/// Parse a canonical spelling (incl. "default"); false on unknown input.
[[nodiscard]] bool parse_topology_kind(const std::string& name,
                                       TopologyKind& out);

struct Config {
  std::string name = "custom";

  /// Fabric selector (see TopologyKind). Not part of the shape arithmetic
  /// below; presets leave it kDefault so existing call sites keep building
  /// the Aries dragonfly.
  TopologyKind kind = TopologyKind::kDefault;

  // --- Shape ---
  int groups = 12;
  int chassis_per_group = 6;   ///< rank-2 dimension (columns connect chassis)
  int slots_per_chassis = 16;  ///< rank-1 dimension (routers per chassis)
  int nodes_per_router = 4;    ///< Aries: 4 NICs per router
  int cables_per_group_pair = 12;  ///< rank-3 optical cables between each group pair

  // --- Link properties (paper Section II-A) ---
  double rank1_bw_gbps = 10.5;  ///< per-link bidirectional copper, GB/s
  double rank2_bw_gbps = 10.5;  ///< per physical link; see rank2_parallel
  double rank3_bw_gbps = 9.38;  ///< per optical cable, GB/s
  double inject_bw_gbps = 10.0; ///< NIC injection/ejection bandwidth
  int rank2_parallel = 3;       ///< parallel rank-2 links per chassis pair

  // --- Latencies ---
  sim::Tick link_latency_local = 40;    ///< ns, copper rank-1/rank-2
  sim::Tick link_latency_global = 500;  ///< ns, optical rank-3
  sim::Tick router_latency = 100;       ///< ns per-hop pipeline latency
  sim::Tick nic_latency = 200;          ///< ns NIC processing per packet

  // --- Buffers / flow control ---
  int flit_bytes = 16;          ///< counter granularity (phit-equivalent)
  int packet_payload_bytes = 1024;  ///< simulation packet granularity
  int buffer_flits = 512;       ///< per-port per-VC buffer (credit pool)
  sim::Tick escape_timeout = sim::kMillisecond;
  ///< Safety net: after stalling this long a blocked port forwards anyway
  ///< (overflowing the downstream buffer; stall time is still charged).
  ///< Deadlock freedom comes from the VC ladder, so this should never fire;
  ///< legitimate head-of-line waits under extreme incast stay well below it.

  // --- NIC ---
  double nic_msg_rate_mps = 20.0;  ///< message-rate limit, millions msgs/s
  bool generate_responses = true;  ///< per-packet Put responses (ORB tracking)

  // --- Fault recovery (net layer; only exercised under a FaultPlan) ---
  sim::Tick msg_retry_timeout = 50 * sim::kMicrosecond;
  ///< Delay between a packet loss being noted on a message and the lost
  ///< payload being re-injected (losses within one window batch into a
  ///< single retry).
  int msg_max_retries = 3;  ///< after this many retries the payload is
                            ///< written off and the message completes

  // --- Congestion throttling (paper Section II-B: Aries' second congestion
  // mechanism; "only occurs under extreme persistent congestion") ---
  bool throttle_enabled = false;
  sim::Tick throttle_window = 50 * sim::kMicrosecond;  ///< evaluation period
  double throttle_hi_ratio = 6.0;   ///< stall/flit ratio that triggers throttling
  double throttle_lo_ratio = 2.0;   ///< ratio below which throttling relaxes
  double throttle_step = 1.5;       ///< multiplicative injection-gap factor step
  double throttle_max_factor = 16.0;

  // --- Derived ---
  [[nodiscard]] int routers_per_group() const {
    return chassis_per_group * slots_per_chassis;
  }
  [[nodiscard]] int nodes_per_group() const {
    return routers_per_group() * nodes_per_router;
  }
  [[nodiscard]] int num_routers() const { return groups * routers_per_group(); }
  [[nodiscard]] int num_nodes() const { return num_routers() * nodes_per_router; }

  /// Total rank-3 cables terminating in one group.
  [[nodiscard]] int global_cables_per_group() const {
    return cables_per_group_pair * (groups - 1);
  }

  /// Validate invariants; throws std::invalid_argument on violation.
  void validate() const;

  // --- Presets ---
  /// ALCF Theta: 12 groups, 96 routers/group, 12 cables per group pair.
  static Config theta();
  /// NERSC Cori (KNL partition): more groups, only 4 cables per group pair
  /// (reduced bisection-to-injection ratio, paper Section II-F).
  static Config cori();
  /// Small topology for unit tests: `groups` groups of 2x4 routers.
  static Config mini(int groups = 4);
  /// Mid-size topology for fast benchmarking sweeps: shaped like Theta with
  /// each dimension scaled down and bisection ratio preserved.
  static Config theta_scaled(int scale_div = 4);
  /// Cori at the same per-group scale as theta_scaled(): more groups, and
  /// proportionally thinner group-to-group cabling (the paper's
  /// "reduced bisection-to-injection ratio").
  static Config cori_scaled(int scale_div = 4);
  /// A Slingshot-flavoured dragonfly (the paper's intro: Perlmutter, Aurora,
  /// Frontier, El Capitan): 200 Gb/s links everywhere, flat all-to-all
  /// groups (no chassis/slot distinction is modeled: one chassis of many
  /// slots), fewer but fatter global links. The paper argues its
  /// minimal-vs-non-minimal insights carry over; this preset lets that be
  /// tested.
  static Config slingshot_like(int groups = 8);
};

}  // namespace dfsim::topo
