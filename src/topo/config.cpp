#include "topo/config.hpp"

#include <stdexcept>

namespace dfsim::topo {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kDefault: return "default";
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kDragonflyPlus: return "dragonfly_plus";
    case TopologyKind::kSlingshot: return "slingshot";
  }
  return "?";
}

bool parse_topology_kind(const std::string& name, TopologyKind& out) {
  if (name == "default") out = TopologyKind::kDefault;
  else if (name == "dragonfly") out = TopologyKind::kDragonfly;
  else if (name == "dragonfly_plus") out = TopologyKind::kDragonflyPlus;
  else if (name == "slingshot") out = TopologyKind::kSlingshot;
  else return false;
  return true;
}

void Config::validate() const {
  auto fail = [](const char* msg) { throw std::invalid_argument(msg); };
  if (groups < 2) fail("Config: need at least 2 groups");
  if (chassis_per_group < 1) fail("Config: chassis_per_group < 1");
  if (slots_per_chassis < 2) fail("Config: slots_per_chassis < 2");
  if (nodes_per_router < 1) fail("Config: nodes_per_router < 1");
  if (cables_per_group_pair < 1) fail("Config: cables_per_group_pair < 1");
  if (rank1_bw_gbps <= 0 || rank2_bw_gbps <= 0 || rank3_bw_gbps <= 0 ||
      inject_bw_gbps <= 0)
    fail("Config: bandwidths must be positive");
  if (flit_bytes < 1) fail("Config: flit_bytes < 1");
  if (packet_payload_bytes < flit_bytes)
    fail("Config: packet_payload_bytes < flit_bytes");
  if (buffer_flits < packet_payload_bytes / flit_bytes)
    fail("Config: buffer must hold at least one full packet");
  if (rank2_parallel < 1) fail("Config: rank2_parallel < 1");
}

Config Config::theta() {
  Config c;
  c.name = "theta";
  c.groups = 12;
  c.chassis_per_group = 6;
  c.slots_per_chassis = 16;
  c.nodes_per_router = 4;
  c.cables_per_group_pair = 12;
  return c;
}

Config Config::cori() {
  Config c;
  c.name = "cori";
  // 9668 KNL nodes / 384 nodes per group ~ 26 groups; the load-bearing
  // distinction from Theta (paper II-F) is the 4 cables per group pair.
  c.groups = 26;
  c.chassis_per_group = 6;
  c.slots_per_chassis = 16;
  c.nodes_per_router = 4;
  c.cables_per_group_pair = 4;
  return c;
}

Config Config::mini(int groups) {
  Config c;
  c.name = "mini";
  c.groups = groups;
  c.chassis_per_group = 2;
  c.slots_per_chassis = 4;
  c.nodes_per_router = 2;
  c.cables_per_group_pair = 2;
  c.buffer_flits = 256;
  return c;
}

Config Config::cori_scaled(int scale_div) {
  Config c = theta_scaled(scale_div);
  c.name = "cori_scaled";
  c.groups = 26;
  // Cori has 1/3 of Theta's cables per group pair (4 vs 12): the scaled
  // variant keeps that ratio against theta_scaled's 3.
  c.cables_per_group_pair = 1;
  return c;
}

Config Config::slingshot_like(int groups) {
  Config c;
  c.name = "slingshot_like";
  c.groups = groups;
  c.chassis_per_group = 1;   // flat intra-group all-to-all via rank-1
  c.slots_per_chassis = 16;
  c.nodes_per_router = 4;
  c.cables_per_group_pair = 4;
  c.rank1_bw_gbps = 25.0;    // 200 Gb/s links
  c.rank2_bw_gbps = 25.0;
  c.rank3_bw_gbps = 25.0;
  c.inject_bw_gbps = 25.0;
  c.link_latency_global = 400;
  return c;
}

Config Config::theta_scaled(int scale_div) {
  // Shrinking a group from 96 to 24 routers must not change which resource
  // binds first. Theta's aggregate ratios per group are roughly
  //   local fabric : injection ~ 4 : 1   and   bisection : injection ~ 1 : 3.
  // A naive shrink leaves the small group local-poor (local links choke
  // before the global cables, inverting the paper's bisection-bound
  // behaviour), so local links get 2x bandwidth and the cable count per
  // group pair drops to 3, restoring both ratios.
  Config c = theta();
  c.name = "theta_scaled";
  c.chassis_per_group = 3;
  c.slots_per_chassis = (16 + scale_div - 1) / scale_div * 2;  // keep >= 4
  if (c.slots_per_chassis < 4) c.slots_per_chassis = 4;
  c.rank1_bw_gbps = 21.0;
  c.rank2_bw_gbps = 21.0;
  c.cables_per_group_pair = 3;
  return c;
}

}  // namespace dfsim::topo
