#include "topo/partition.hpp"

#include <algorithm>

namespace dfsim::topo {

ShardPlan ShardPlan::build(const Dragonfly& topo, int requested) {
  const Config& cfg = topo.config();
  const int groups = cfg.groups;
  ShardPlan plan;
  plan.shards = std::clamp(requested, 1, groups);

  // Contiguous group ranges: shard s owns [floor(s*G/S), floor((s+1)*G/S)).
  plan.shard_of_group.resize(static_cast<std::size_t>(groups));
  for (int s = 0; s < plan.shards; ++s) {
    const int lo = static_cast<int>(
        static_cast<long long>(s) * groups / plan.shards);
    const int hi = static_cast<int>(
        static_cast<long long>(s + 1) * groups / plan.shards);
    for (int g = lo; g < hi; ++g)
      plan.shard_of_group[static_cast<std::size_t>(g)] = s;
  }

  plan.shard_of_router.resize(static_cast<std::size_t>(cfg.num_routers()));
  for (RouterId r = 0; r < cfg.num_routers(); ++r)
    plan.shard_of_router[static_cast<std::size_t>(r)] =
        plan.shard_of_group[static_cast<std::size_t>(topo.group_of_router(r))];

  plan.shard_of_node.resize(static_cast<std::size_t>(cfg.num_nodes()));
  for (NodeId n = 0; n < cfg.num_nodes(); ++n)
    plan.shard_of_node[static_cast<std::size_t>(n)] =
        plan.shard_of_router[static_cast<std::size_t>(topo.router_of_node(n))];

  // Lookahead: the minimum time a rank-3 traversal spends in flight after
  // leaving the sender (link propagation + downstream router pipeline). A
  // packet committed at time t cannot arrive at another group before
  // t + serialization + lookahead > t + lookahead, so windows of this width
  // never let a cross-shard effect land inside its own window.
  sim::Tick min_hop = 0;
  for (RouterId r = 0; r < cfg.num_routers(); ++r) {
    for (PortId p = 0; p < topo.num_ports(r); ++p) {
      const PortInfo& pi = topo.port(r, p);
      if (pi.cls != TileClass::kRank3) continue;
      const sim::Tick hop = pi.latency + cfg.router_latency;
      if (min_hop == 0 || hop < min_hop) min_hop = hop;
    }
  }
  // Single-group systems have no rank-3 links (and clamp to one shard); any
  // positive window width is valid there, so use the configured global-link
  // latency for a sensible grid.
  plan.lookahead =
      min_hop > 0 ? min_hop : cfg.link_latency_global + cfg.router_latency;
  if (plan.lookahead <= 0) plan.lookahead = 1;
  return plan;
}

}  // namespace dfsim::topo
