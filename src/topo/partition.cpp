#include "topo/partition.hpp"

#include <algorithm>
#include <limits>

namespace dfsim::topo {

namespace {

/// Fill shard_of_router / shard_of_node from shard_of_group and compute the
/// lookahead. Shared by both builders: everything here depends on the
/// topology and the group map only, never on how the blocks were chosen.
void finish_plan(ShardPlan& plan, const Topology& topo) {
  const Config& cfg = topo.config();
  plan.shard_of_router.resize(static_cast<std::size_t>(topo.num_routers()));
  for (RouterId r = 0; r < topo.num_routers(); ++r)
    plan.shard_of_router[static_cast<std::size_t>(r)] =
        plan.shard_of_group[static_cast<std::size_t>(topo.group_of_router(r))];

  plan.shard_of_node.resize(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    plan.shard_of_node[static_cast<std::size_t>(n)] =
        plan.shard_of_router[static_cast<std::size_t>(topo.router_of_node(n))];

  // Lookahead: the minimum time a rank-3 traversal spends in flight after
  // leaving the sender (link propagation + downstream router pipeline). A
  // packet committed at time t cannot arrive at another group before
  // t + serialization + lookahead > t + lookahead, so windows of this width
  // never let a cross-shard effect land inside its own window.
  sim::Tick min_hop = 0;
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    for (PortId p = 0; p < topo.num_ports(r); ++p) {
      const PortInfo& pi = topo.port(r, p);
      if (pi.cls != TileClass::kRank3) continue;
      const sim::Tick hop = pi.latency + cfg.router_latency;
      if (min_hop == 0 || hop < min_hop) min_hop = hop;
    }
  }
  // Single-group systems have no rank-3 links (and clamp to one shard); any
  // positive window width is valid there, so use the configured global-link
  // latency for a sensible grid.
  plan.lookahead =
      min_hop > 0 ? min_hop : cfg.link_latency_global + cfg.router_latency;
  if (plan.lookahead <= 0) plan.lookahead = 1;
}

}  // namespace

ShardPlan ShardPlan::build(const Topology& topo, int requested) {
  const int groups = topo.groups();
  ShardPlan plan;
  plan.shards = std::clamp(requested, 1, groups);

  // Contiguous group ranges: shard s owns [floor(s*G/S), floor((s+1)*G/S)).
  plan.shard_of_group.resize(static_cast<std::size_t>(groups));
  for (int s = 0; s < plan.shards; ++s) {
    const int lo = static_cast<int>(
        static_cast<long long>(s) * groups / plan.shards);
    const int hi = static_cast<int>(
        static_cast<long long>(s + 1) * groups / plan.shards);
    for (int g = lo; g < hi; ++g)
      plan.shard_of_group[static_cast<std::size_t>(g)] = s;
  }

  finish_plan(plan, topo);
  return plan;
}

ShardPlan ShardPlan::build_weighted(
    const Topology& topo, int requested,
    const std::vector<std::uint64_t>& group_weight) {
  const int groups = topo.groups();
  const int shards = std::clamp(requested, 1, groups);
  const std::size_t G = static_cast<std::size_t>(groups);
  const std::size_t S = static_cast<std::size_t>(shards);

  // Effective weights: the caller's estimate, or uniform when it supplies
  // nothing usable (wrong length, all zero). Every group also carries an
  // implicit +1 so transit-only groups still cost something and ties among
  // zero-weight groups stay size-balanced rather than degenerate.
  std::vector<std::uint64_t> w(G, 1);
  if (group_weight.size() == G)
    for (std::size_t g = 0; g < G; ++g) w[g] += group_weight[g];

  std::vector<std::uint64_t> prefix(G + 1, 0);
  for (std::size_t g = 0; g < G; ++g) prefix[g + 1] = prefix[g] + w[g];
  const auto cost = [&](std::size_t i, std::size_t j) {
    return prefix[j] - prefix[i];
  };

  // Exact min-max contiguous partition into S non-empty blocks. Suffix DP:
  // best[r][j] = minimal achievable max block weight splitting groups
  // [j, G) into r non-empty blocks. G is the group count of a dragonfly
  // (double digits), so the O(S*G^2) table is trivial, and the suffix form
  // doubles as the feasibility oracle for the front-to-back reconstruction.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::vector<std::uint64_t>> best(
      S + 1, std::vector<std::uint64_t>(G + 1, kInf));
  for (std::size_t j = 0; j < G; ++j) best[1][j] = cost(j, G);
  best[0][G] = 0;
  for (std::size_t r = 2; r <= S; ++r) {
    // r non-empty blocks need at least r groups left.
    for (std::size_t j = 0; j + r <= G; ++j) {
      std::uint64_t b = kInf;
      for (std::size_t k = j + 1; k + (r - 1) <= G; ++k) {
        const std::uint64_t m = std::max(cost(j, k), best[r - 1][k]);
        if (m < b) b = m;
        // cost(j,k) grows with k; once it alone exceeds the best, stop.
        if (cost(j, k) >= b) break;
      }
      best[r][j] = b;
    }
  }
  const std::uint64_t M = best[S][0];

  // Reconstruct front to back: each shard takes the lightest block that
  // keeps the remainder feasible at the optimum. Deterministic, and it
  // front-loads the slack so equal weights give near-equal block sizes.
  ShardPlan plan;
  plan.shards = shards;
  plan.shard_of_group.resize(G);
  std::size_t at = 0;
  for (std::size_t s = 0; s < S; ++s) {
    std::size_t end = G - (S - 1 - s);  // leave one group per later shard
    if (s + 1 < S) {
      for (std::size_t k = at + 1; k + (S - 1 - s) <= G; ++k) {
        if (cost(at, k) <= M && best[S - 1 - s][k] <= M) {
          end = k;
          break;
        }
      }
    } else {
      end = G;
    }
    for (std::size_t g = at; g < end; ++g)
      plan.shard_of_group[g] = static_cast<int>(s);
    at = end;
  }

  finish_plan(plan, topo);
  return plan;
}

double ShardPlan::imbalance(
    const std::vector<std::uint64_t>& group_weight) const {
  if (shard_of_group.empty() || shards <= 0) return 1.0;
  std::vector<std::uint64_t> per_shard(static_cast<std::size_t>(shards), 0);
  for (std::size_t g = 0; g < shard_of_group.size(); ++g) {
    const std::uint64_t wg =
        1 + (g < group_weight.size() ? group_weight[g] : 0);
    per_shard[static_cast<std::size_t>(shard_of_group[g])] += wg;
  }
  std::uint64_t total = 0, mx = 0;
  for (const std::uint64_t v : per_shard) {
    total += v;
    mx = std::max(mx, v);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards);
  return mean > 0.0 ? static_cast<double>(mx) / mean : 1.0;
}

}  // namespace dfsim::topo
