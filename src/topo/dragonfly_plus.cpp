#include "topo/dragonfly_plus.hpp"

namespace dfsim::topo {

DragonflyPlus::DragonflyPlus(Config cfg)
    : Topology(cfg, cfg.routers_per_group() + cfg.slots_per_chassis) {
  leaves_ = cfg_.routers_per_group();
  spines_ = cfg_.slots_per_chassis;
  // Nodes live on leaves only; spines are transit.
  assign_nodes([&](RouterId r) {
    return is_leaf(r) ? cfg_.nodes_per_router : 0;
  });
  build_local_ports();
  // Cables of pair (ga, gb) round-robin over the group's spines (the same
  // spread rule the dragonfly uses over its whole group).
  const int L = leaves_, S = spines_;
  const int cables = cfg_.cables_per_group_pair;
  build_global_ports([L, S, cables](GroupId gs, GroupId gr, int k) {
    return L + ((gr < gs ? gr : gr - 1) * cables + k) % S;
  });
  build_proc_ports();
  finalize_tables();
}

void DragonflyPlus::build_local_ports() {
  // Complete bipartite leaf x spine. Leaf port s <-> spine port l: the
  // peer port of each direction is the sender's own in-tier index.
  for (RouterId r = 0; r < num_routers(); ++r) {
    auto& pv = ports_[static_cast<std::size_t>(r)];
    const GroupId g = group_of_router(r);
    const RouterId base = static_cast<RouterId>(g * rpg_);
    const int i = r % rpg_;
    if (i < leaves_) {
      for (int s = 0; s < spines_; ++s) {
        PortInfo pi;
        pi.cls = TileClass::kRank1;
        pi.peer_router = base + leaves_ + s;
        pi.peer_port = static_cast<PortId>(i);
        pi.bw_gbps = cfg_.rank1_bw_gbps;
        pi.latency = cfg_.link_latency_local;
        pv.push_back(pi);
      }
    } else {
      const int s = i - leaves_;
      for (int l = 0; l < leaves_; ++l) {
        PortInfo pi;
        pi.cls = TileClass::kRank1;
        pi.peer_router = base + l;
        pi.peer_port = static_cast<PortId>(s);
        pi.bw_gbps = cfg_.rank1_bw_gbps;
        pi.latency = cfg_.link_latency_local;
        pv.push_back(pi);
      }
    }
  }
}

PortId DragonflyPlus::local_port_to(RouterId from, RouterId to) const {
  if (from == to || group_of_router(from) != group_of_router(to)) return -1;
  const int i = from % rpg_, j = to % rpg_;
  const bool from_leaf = i < leaves_, to_leaf = j < leaves_;
  if (from_leaf == to_leaf) return -1;  // same tier: no direct link
  // Leaf's port s is its up-link to spine s; spine's port l its down-link.
  return from_leaf ? static_cast<PortId>(j - leaves_) : static_cast<PortId>(j);
}

PortId DragonflyPlus::local_first_hop(RouterId from, RouterId to) const {
  const PortId p = local_port_to(from, to);
  if (p >= 0 || to == from) return p;
  const int i = from % rpg_, j = to % rpg_;
  if (i < leaves_) {
    // leaf -> leaf via spine (i + j) % S.
    return static_cast<PortId>((i + j) % spines_);
  }
  // spine -> spine via leaf (s_i + s_j) % L.
  return static_cast<PortId>(((i - leaves_) + (j - leaves_)) % leaves_);
}

}  // namespace dfsim::topo
