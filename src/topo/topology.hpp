// Topology abstraction: one table-driven contract for every fabric.
//
// A Topology owns, and builds exactly once at construction, every table the
// forwarding plane and the route planner read per hop: router/node
// coordinates, the per-router PortInfo vectors (local ports first, then
// global, then processor — the class-ordering invariant every consumer
// relies on), the per-(router, target group) global-port lists, and the
// per-(group, target group) gateway lists. All of those are exposed through
// NON-virtual accessors reading flat arrays, so a forwarding step never
// pays a virtual dispatch; the virtual surface (local_port_to,
// local_first_hop, kind/name) is only touched at table-build and
// fault-recompute time, plus diagnostics.
//
// Invariants every concrete topology must satisfy (asserted by
// finalize_tables and pinned by tests/test_properties.cpp):
//  * router ids are contiguous and group-major: group g owns
//    [g*routers_per_group, (g+1)*routers_per_group) — uniform group size is
//    what lets ShardPlan partition by group and the planner's BFS index
//    routers by (id - group base);
//  * node ids are contiguous and ascend with router id (so nodes of one
//    group form one contiguous id range of uniform length);
//  * per router, port order is [local ports][global ports][processor
//    ports] and peer_port links are symmetric;
//  * every group's internal diameter is at most 2 via local_port_to (the
//    minimal-hops accounting and the VC ladder depth both assume it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "topo/config.hpp"

namespace dfsim::topo {

using RouterId = std::int32_t;
using NodeId = std::int32_t;
using GroupId = std::int32_t;
using PortId = std::int32_t;

/// Counter classes matching the paper's tile breakdown (Fig. 6, 10, 12).
/// Topologies without a second local level (Dragonfly+, Slingshot) simply
/// have zero kRank2 ports; counter plumbing sizes by class, not by shape.
enum class TileClass : std::uint8_t {
  kRank1 = 0,
  kRank2 = 1,
  kRank3 = 2,
  kProc = 3,  ///< processor/ejection ports; req vs rsp split happens per-VC
};
inline constexpr int kNumTileClasses = 4;
const char* tile_class_name(TileClass c);

struct PortInfo {
  TileClass cls = TileClass::kRank1;
  RouterId peer_router = -1;  ///< -1 for processor (ejection) ports
  PortId peer_port = -1;      ///< ingress port id at peer (informational)
  NodeId eject_node = -1;     ///< node served, for processor ports
  GroupId target_group = -1;  ///< remote group, for global (rank-3) ports
  double bw_gbps = 0.0;
  sim::Tick latency = 0;
};

/// A router of group `g` owning at least one cable toward some target
/// group, paired with one such port.
struct Gateway {
  RouterId router;
  PortId port;
};

class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] const Config& config() const { return cfg_; }
  /// Concrete kind (never kDefault) and its canonical spelling.
  [[nodiscard]] virtual TopologyKind kind() const = 0;
  [[nodiscard]] const char* name() const { return topology_kind_name(kind()); }

  // --- Shape ---
  // Actual counts. These may differ from Config's dragonfly-derived
  // num_routers()/num_nodes() (Dragonfly+ adds node-less spine routers),
  // so consumers must size by these, never by the Config arithmetic.
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int routers_per_group() const { return rpg_; }
  [[nodiscard]] int num_routers() const { return groups_ * rpg_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int nodes_per_group() const { return num_nodes_ / groups_; }

  // --- Coordinates (hot-path table reads) ---
  [[nodiscard]] GroupId group_of_router(RouterId r) const {
    return router_group_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] RouterId router_of_node(NodeId n) const {
    return node_router_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] GroupId group_of_node(NodeId n) const {
    return group_of_router(router_of_node(n));
  }
  /// Index of `n` among its router's nodes (0-based).
  [[nodiscard]] int node_slot(NodeId n) const {
    return node_slot_[static_cast<std::size_t>(n)];
  }
  /// Nodes served by `r`: ids [node_first(r), node_first(r) + node_count(r)).
  /// node_count is 0 for routers without processor ports (Dragonfly+
  /// spines); node_first is then the id the next hosting router starts at.
  [[nodiscard]] NodeId node_first(RouterId r) const {
    return node_first_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int node_count(RouterId r) const {
    return node_count_[static_cast<std::size_t>(r)];
  }

  // --- Ports ---
  [[nodiscard]] int num_ports(RouterId r) const {
    return static_cast<int>(ports_[static_cast<std::size_t>(r)].size());
  }
  [[nodiscard]] const PortInfo& port(RouterId r, PortId p) const {
    return ports_[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::span<const PortInfo> ports(RouterId r) const {
    return ports_[static_cast<std::size_t>(r)];
  }
  /// Local (intra-group) ports of `r` are exactly [0, local_end(r)).
  [[nodiscard]] int local_end(RouterId r) const {
    return local_end_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int num_global_ports(RouterId r) const {
    return static_cast<int>(
        global_target_[static_cast<std::size_t>(r)].size());
  }
  /// First processor port of `r` (== num_ports(r) when r hosts no nodes).
  [[nodiscard]] int proc_port_base(RouterId r) const {
    return proc_base_[static_cast<std::size_t>(r)];
  }

  /// Ejection (processor) port on `r` serving node `n`.
  /// Precondition: router_of_node(n) == r.
  [[nodiscard]] PortId eject_port(RouterId r, NodeId n) const;

  /// Global ports on `r` leading to group `tg` (possibly empty).
  [[nodiscard]] std::span<const PortId> global_ports_to(RouterId r,
                                                        GroupId tg) const {
    return global_ports_by_group_[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(tg)];
  }
  /// Routers in group `g` owning at least one cable to group `tg`,
  /// paired with one such port each.
  [[nodiscard]] std::span<const Gateway> gateways(GroupId g, GroupId tg) const {
    return gateways_[static_cast<std::size_t>(g)][static_cast<std::size_t>(tg)];
  }

  /// Minimal router-to-router hop count (0 if same router; includes the
  /// global hop). Diagnostic / accounting only, never per-hop. Relies on
  /// the group-diameter-<=2 invariant.
  [[nodiscard]] int minimal_hops(RouterId src, RouterId dst) const;

  /// Number of distinct groups covered by a set of nodes.
  [[nodiscard]] int groups_spanned(std::span<const NodeId> nodes) const;

  // --- Build/recompute-time virtuals (never called per hop) ---
  /// Direct local port from `from` to `to`; -1 if not directly connected
  /// (or different groups / same router).
  [[nodiscard]] virtual PortId local_port_to(RouterId from,
                                             RouterId to) const = 0;
  /// Pristine first-hop port from `from` toward same-group router `to`
  /// (-1 when from == to). Direct port when connected, otherwise the port
  /// toward this topology's deterministic two-hop intermediate. The route
  /// planner snapshots this into its local_first_ table at construction;
  /// the choice must keep each VC level's intra-group channel dependency
  /// graph acyclic (see docs/MODEL.md section 13).
  [[nodiscard]] virtual PortId local_first_hop(RouterId from,
                                               RouterId to) const = 0;

 protected:
  /// Validates cfg, fixes the shape, sizes the coordinate/port containers
  /// and fills router_group_. Concrete constructors then populate nodes and
  /// ports and must end with finalize_tables().
  Topology(Config cfg, int routers_per_group);

  /// Assign `count_of(r)` nodes to every router, ids ascending with router
  /// id; fills node_router_/node_slot_/node_first_/node_count_/num_nodes_.
  template <typename CountFn>
  void assign_nodes(CountFn count_of) {
    const int nr = num_routers();
    node_first_.resize(static_cast<std::size_t>(nr));
    node_count_.resize(static_cast<std::size_t>(nr));
    NodeId next = 0;
    for (RouterId r = 0; r < nr; ++r) {
      const int c = count_of(r);
      node_first_[static_cast<std::size_t>(r)] = next;
      node_count_[static_cast<std::size_t>(r)] = c;
      next += c;
    }
    num_nodes_ = next;
    node_router_.resize(static_cast<std::size_t>(next));
    node_slot_.resize(static_cast<std::size_t>(next));
    for (RouterId r = 0; r < nr; ++r)
      for (int k = 0; k < node_count_[static_cast<std::size_t>(r)]; ++k) {
        const auto n = static_cast<std::size_t>(
            node_first_[static_cast<std::size_t>(r)] + k);
        node_router_[n] = r;
        node_slot_[n] = k;
      }
  }

  /// Build the global (rank-3) ports: `cables_per_group_pair` cables
  /// between every group pair, each endpoint chosen by
  /// `endpoint(local_group, remote_group, k)` (an in-group router index).
  /// Appends ports in the canonical symmetric order, fills global_target_ /
  /// global_ports_by_group_ / gateways_, and resolves peer_port pairs.
  /// Identical code path for every topology, so the Dragonfly port tables
  /// stay byte-for-byte what the pre-abstraction builder produced.
  template <typename EndpointFn>
  void build_global_ports(EndpointFn endpoint) {
    const int R = rpg_;
    const int cables = cfg_.cables_per_group_pair;
    std::vector<std::vector<std::pair<RouterId, GroupId>>> pending(
        static_cast<std::size_t>(num_routers()));
    for (GroupId ga = 0; ga < cfg_.groups; ++ga) {
      for (GroupId gb = ga + 1; gb < cfg_.groups; ++gb) {
        for (int k = 0; k < cables; ++k) {
          const int ia = endpoint(ga, gb, k);
          const int ib = endpoint(gb, ga, k);
          const RouterId ra = static_cast<RouterId>(ga * R + ia);
          const RouterId rb = static_cast<RouterId>(gb * R + ib);
          pending[static_cast<std::size_t>(ra)].emplace_back(rb, gb);
          pending[static_cast<std::size_t>(rb)].emplace_back(ra, ga);
        }
      }
    }
    materialize_global_ports(pending);
  }

  /// Append the processor (ejection) ports from node_first_/node_count_
  /// (call after assign_nodes and the local/global port builders).
  void build_proc_ports();

  /// Compute local_end_/proc_base_ and assert the port-class ordering and
  /// peer symmetry invariants. Every concrete constructor ends with this.
  void finalize_tables();

  Config cfg_;
  int groups_ = 0;
  int rpg_ = 0;  ///< routers per group (uniform across groups)
  int num_nodes_ = 0;
  std::vector<GroupId> router_group_;   ///< [router] (hot-path table)
  std::vector<RouterId> node_router_;   ///< [node] (hot-path table)
  std::vector<std::int32_t> node_slot_; ///< [node] index among router's nodes
  std::vector<NodeId> node_first_;      ///< [router] first hosted node id
  std::vector<std::int32_t> node_count_;  ///< [router] hosted node count
  std::vector<std::int32_t> local_end_;   ///< [router] end of local ports
  std::vector<PortId> proc_base_;         ///< [router] first processor port
  std::vector<std::vector<PortInfo>> ports_;  ///< [router][port]
  /// Per router: target group of each global port (parallel to port order).
  std::vector<std::vector<GroupId>> global_target_;
  /// [router][target group] -> list of global port ids (flattened map).
  std::vector<std::vector<std::vector<PortId>>> global_ports_by_group_;
  /// [group][target group] -> gateways.
  std::vector<std::vector<std::vector<Gateway>>> gateways_;

 private:
  void materialize_global_ports(
      const std::vector<std::vector<std::pair<RouterId, GroupId>>>& pending);
};

/// Construct the topology selected by `cfg.kind` (kDefault -> Dragonfly).
[[nodiscard]] std::unique_ptr<Topology> make_topology(Config cfg);

}  // namespace dfsim::topo
