// Dragonfly+ topology: two-tier groups, fully-connected core.
//
// Structure (Shpiner et al., HOTI'17; arXiv 2406.15097 uses the same model):
//  * A group is a complete bipartite graph between L leaf routers (which
//    host the compute nodes) and S spine routers (which own the global
//    cables). There is no leaf-leaf or spine-spine link; every intra-group
//    route is leaf->spine, spine->leaf, or two hops via the opposite tier.
//  * Groups are connected all-to-all: `cables_per_group_pair` optical
//    cables per pair, spread round-robin over each group's spines.
//
// Shape mapping from topo::Config (so every preset and scenario keeps its
// node count when re-run on Dragonfly+):
//    L = chassis_per_group * slots_per_chassis   (= the dragonfly group)
//    S = slots_per_chassis
//    nodes: `nodes_per_router` on every leaf, none on spines
// -> num_nodes == Config::num_nodes(), but num_routers() is larger than
//    the Config arithmetic by groups*S spine routers (consumers must size
//    by Topology::num_routers()).
//
// Port numbering: leaf = [S up-links][proc ports]; spine = [L down-links]
// [global ports]. Up/down links are class kRank1 (there is no second local
// level, so kRank2 counters stay zero); global cables are kRank3.
//
// Deadlock freedom rides the existing 3-level VC ladder: within one level
// the only intra-group dependencies are up->down turns at a spine and
// down->eject at a leaf, both acyclic because the bipartite graph has no
// same-tier links; every group crossing and Valiant-intermediate passage
// bumps the level exactly as on the dragonfly (docs/MODEL.md section 13).
#pragma once

#include "topo/topology.hpp"

namespace dfsim::topo {

class DragonflyPlus : public Topology {
 public:
  explicit DragonflyPlus(Config cfg);

  [[nodiscard]] TopologyKind kind() const override {
    return TopologyKind::kDragonflyPlus;
  }

  [[nodiscard]] int num_leaves() const { return leaves_; }
  [[nodiscard]] int num_spines() const { return spines_; }
  /// Tier of a router: true when `r` is a leaf (hosts nodes).
  [[nodiscard]] bool is_leaf(RouterId r) const {
    return r % rpg_ < leaves_;
  }

  [[nodiscard]] PortId local_port_to(RouterId from, RouterId to) const override;
  /// Direct port when the tiers differ; same-tier pairs spread their
  /// two-hop routes deterministically over the opposite tier by
  /// (i + j) % tier_size, so no single intermediate becomes a table-build
  /// hotspot.
  [[nodiscard]] PortId local_first_hop(RouterId from,
                                       RouterId to) const override;

 private:
  void build_local_ports();

  int leaves_ = 0;  ///< leaf routers per group (in-group indices [0, L))
  int spines_ = 0;  ///< spine routers per group (in-group indices [L, L+S))
};

}  // namespace dfsim::topo
