// NIC model: injection queue, message segmentation/reassembly hooks, and the
// ORB (outstanding request buffer) latency counters the paper samples for
// Fig. 14 (AR_NIC_ORB_PRF_NET_RSP_TRACK / ..._EVENT_CNTR_RSP_NET_TRACK).
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::net {

struct NicCounters {
  std::int64_t inj_flits[kNumPlanes] = {0, 0};
  std::int64_t inj_stall_ns[kNumPlanes] = {0, 0};
  /// ORB packet-pair latency accumulators (paper Section V-D): the first
  /// counter accumulates observed request->response latency, the second the
  /// number of tracked pairs. Their quotient is the NIC's mean latency.
  std::int64_t rsp_time_sum_ns = 0;
  std::int64_t rsp_track_count = 0;

  [[nodiscard]] double mean_latency_ns() const {
    return rsp_track_count > 0
               ? static_cast<double>(rsp_time_sum_ns) /
                     static_cast<double>(rsp_track_count)
               : 0.0;
  }
};

struct Nic {
  topo::NodeId node = -1;
  topo::RouterId router = -1;   ///< router serving this node (constant)
  topo::PortId eject_pt = -1;   ///< ejection port on that router (constant)
  /// Injection FIFO, intrusive through Packet::next (unbounded: backed by
  /// host memory). -1 when empty.
  PacketId inject_head = -1;
  PacketId inject_tail = -1;
  bool tx_busy = false;
  bool rx_busy = false;  ///< finite rx processing -> proc-tile stalls
  /// Packet fully ejected but waiting for the rx unit (1-slot skid buffer);
  /// while set, the ejection port is held busy and accrues stall time.
  PacketId rx_pending = -1;
  std::uint8_t rx_pending_vc = 0;
  sim::Tick rx_pending_since = -1;
  sim::Tick stall_since = -1;
  bool escape_scheduled = false;
  NicCounters ctr;
};

}  // namespace dfsim::net
