// The assembled interconnect: routers + links + NICs + adaptive routing.
//
// Network is the discrete-event forwarding engine. It owns the packet pool,
// performs per-packet adaptive routing decisions (via routing::RoutePlanner,
// with itself as the load oracle), models credit backpressure between
// finite per-port per-VC buffers, and maintains the flit/stall counters the
// paper reads through AutoPerf and LDMS.
//
// Flow control: a sender (router output port or NIC injector) may start
// transmitting a packet only if the destination VC queue at the next router
// has buffer space; otherwise it stalls, accumulating stall time on its
// tile counter, and is woken when space frees. Deadlock freedom comes from
// the dragonfly VC ladder (see net/packet.hpp): row-first local routing is
// acyclic within a level and every group crossing moves up a level. The
// escape timeout remains as a belt-and-braces safety net (a port stalled
// longer than `escape_timeout` forwards anyway, overflowing the downstream
// buffer); with the ladder in place it never fires in practice, and the
// NetworkStats::escapes counter is asserted zero by the test suite's
// stress tests.
//
// Memory discipline (see docs/MODEL.md, "Forwarding-plane memory layout &
// event coalescing"): the steady-state forwarding path performs no heap
// allocation. Port/VC state lives in a structure-of-arrays PortGrid,
// packet FIFOs and the packet free list are intrusive (Packet::next),
// blocked senders are slab chains, and message completion state is a
// generation-tagged slab addressed directly by MsgId bits — no hash map.
// Each network hop and each NIC injection is driven by ONE pooled event
// whose callback rearms itself for the second phase (Engine::rearm), which
// preserves the original insertion sequence and therefore the exact event
// order of the unfused two-event formulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <functional>
#include <memory>

#include "fault/fault.hpp"
#include "monitor/trace.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "router/router.hpp"
#include "routing/adaptive.hpp"
#include "sim/engine.hpp"
#include "sim/hash.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"
#include "sim/small_fn.hpp"
#include "topo/topology.hpp"
#include "topo/partition.hpp"

namespace dfsim::net {

/// Aggregated counters per paper tile class; processor tiles split by VC
/// (request vs response), matching Fig. 6's five categories.
struct ClassCounters {
  std::int64_t flits = 0;
  std::int64_t stall_ns = 0;
};

/// Per-tile-class flit serialization times (ns per flit). Converting a
/// class's stall-ns into Aries-like stall counts must use the bandwidth of
/// that class's own links: rank-3 optical cables (9.38 GB/s) serialize a
/// flit ~12% slower than rank-1 copper (10.5 GB/s), and rank-2 ports fold
/// `rank2_parallel` physical links into one port.
struct FlitTimes {
  double rank1 = 1.0;
  double rank2 = 1.0;
  double rank3 = 1.0;
  double proc = 1.0;  ///< processor tiles / NIC injection

  [[nodiscard]] static FlitTimes from_config(const topo::Config& cfg);
};

struct CounterSnapshot {
  ClassCounters rank1, rank2, rank3, proc_req, proc_rsp;
  std::int64_t nic_rsp_time_sum_ns = 0;
  std::int64_t nic_rsp_track_count = 0;

  CounterSnapshot& operator-=(const CounterSnapshot& o);
  [[nodiscard]] CounterSnapshot delta_since(const CounterSnapshot& base) const;

  /// stall-to-flit ratio for one class, with stall time converted to
  /// flit-times at the given flit serialization time.
  static double stall_flit_ratio(const ClassCounters& c, double flit_time_ns);
};

struct NetworkStats {
  std::int64_t packets_injected = 0;
  std::int64_t packets_delivered = 0;
  std::int64_t minimal_decisions = 0;
  std::int64_t nonminimal_decisions = 0;
  std::int64_t total_hops = 0;
  std::int64_t escapes = 0;  ///< forced overflows (escape-timeout firings)
  std::int64_t throttle_activations = 0;  ///< windows that tightened injection
  /// Injection decisions split by the packet's bias mode: [mode][0]=minimal,
  /// [mode][1]=non-minimal. Lets a mixed-mode system (e.g. an AD3 job on an
  /// AD0 machine) be analyzed per policy.
  std::int64_t decisions_by_mode[routing::kNumModes][2] = {};

  [[nodiscard]] double nonminimal_fraction(routing::Mode m) const {
    const auto i = static_cast<std::size_t>(m);
    const std::int64_t total = decisions_by_mode[i][0] + decisions_by_mode[i][1];
    return total > 0 ? static_cast<double>(decisions_by_mode[i][1]) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Hot-path event categories, for the bench's per-event-type breakdown.
enum EventKind : int {
  kEvInjection = 0,  ///< NIC injection (busy-release + first-router arrival)
  kEvHop,            ///< router-to-router hop (serialization-done + arrival)
  kEvEjection,       ///< ejection serialization + NIC rx processing
  kEvThrottle,       ///< congestion-throttle window evaluation
  kEvEscape,         ///< escape-timeout wakeups
  kEvLoopback,       ///< src==dst host-memory loopback delivery
  kNumEventKinds
};

[[nodiscard]] const char* event_kind_name(int kind);

/// Per-event-kind counts and wall time, filled when a profile is attached
/// via Network::set_event_profile. Wall times include the steady_clock
/// sampling overhead, so profiled runs are NOT the runs to report
/// events/sec from — use the breakdown for relative shares only.
struct EventProfile {
  std::int64_t count[kNumEventKinds] = {};
  std::int64_t wall_ns[kNumEventKinds] = {};

  [[nodiscard]] std::int64_t total_count() const {
    std::int64_t t = 0;
    for (const std::int64_t c : count) t += c;
    return t;
  }
  [[nodiscard]] std::int64_t total_wall_ns() const {
    std::int64_t t = 0;
    for (const std::int64_t w : wall_ns) t += w;
    return t;
  }
};

class Network final : public routing::LoadOracle {
 public:
  /// Serial mode: the forwarding plane runs on one engine, bit-identical to
  /// the historical single-threaded formulation.
  Network(sim::Engine& engine, const topo::Topology& topo, std::uint64_t seed);

  /// Sharded mode: routers/NICs are partitioned per `plan` and every
  /// component schedules on its owner shard's engine. Cross-shard effects
  /// (rank-3 traversals, their credit returns, message progress, packet
  /// frees, injections requested by the host) travel as ShardedEngine mail,
  /// so results are byte-identical for every shard count >= 1 — but NOT to
  /// serial mode: rank-3 links switch from same-tick remote reservation to
  /// sender-side per-port credits with arrival-time occupancy (zero-lookahead
  /// remote reads cannot be conservatively parallelized), and adaptive RNG
  /// draws come from per-group streams (see docs/MODEL.md section 9).
  Network(sim::ShardedEngine& se, const topo::Topology& topo,
          std::uint64_t seed, const topo::ShardPlan& plan);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Move-only callable with enough inline storage for the MPI machine's
  /// completion closures; never heap-allocates for captures <= 48 bytes.
  using DeliveryCallback = sim::SmallFn;

  /// Inject a message of `bytes` from node `src` to node `dst`; the callback
  /// fires (once) when the last packet has been delivered and processed by
  /// the destination NIC. `mode` is the adaptive routing bias used for every
  /// packet of this message.
  MsgId send_message(topo::NodeId src, topo::NodeId dst, std::int64_t bytes,
                     routing::Mode mode, DeliveryCallback on_delivered);

  // --- LoadOracle ---
  [[nodiscard]] std::int64_t load_units(topo::RouterId r,
                                        topo::PortId p) const override;

  // --- Introspection / monitoring ---
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const router::PortGrid& grid() const { return grid_; }
  [[nodiscard]] router::PortCounters port_counters(topo::RouterId r,
                                                   topo::PortId p) const {
    return grid_.counters(r, p);
  }
  [[nodiscard]] const Nic& nic(topo::NodeId n) const {
    return nics_[static_cast<std::size_t>(n)];
  }
  /// System-wide counters, summed over the per-shard accumulators (one in
  /// serial mode). Returns by value; call at a quiesced point in sharded
  /// mode (between runs, or from a schedule_quiesced callback).
  [[nodiscard]] NetworkStats stats() const;

  [[nodiscard]] bool sharded() const { return se_ != nullptr; }
  [[nodiscard]] const topo::ShardPlan* shard_plan() const { return plan_; }
  /// Refresh the router/node -> shard routing tables from the current
  /// contents of the plan this network was constructed with. The caller
  /// (mpi::Machine::rebalance_shards) may rewrite the plan's block
  /// boundaries BEFORE any event has executed; the shard count and the
  /// lookahead grid must not change. No-op in serial mode.
  void rebind_shards();

  /// Run `fn` after `delay` ns at a point where the whole network state is
  /// consistent: a plain event in serial mode, a window barrier (the first
  /// one at or after now+delay) in sharded mode. Monitors that read
  /// system-wide counters (LDMS, AutoPerf) must sample through this.
  void schedule_quiesced(sim::Tick delay, std::function<void()> fn);

  /// Counters summed over the whole system (NIC injection counters fold into
  /// the processor classes, as on Aries where processor tiles carry both
  /// directions).
  [[nodiscard]] CounterSnapshot snapshot_all() const;
  /// Counters summed over a subset of routers (AutoPerf's local view) and
  /// the NICs attached to them.
  [[nodiscard]] CounterSnapshot snapshot_routers(
      std::span<const topo::RouterId> routers) const;

  /// Per-tile-class flit serialization times for this network's links.
  [[nodiscard]] FlitTimes flit_times() const {
    return FlitTimes::from_config(topo_.config());
  }

  /// Number of in-flight (allocated) packets; 0 when fully drained.
  /// Fault drops end a packet's flight without a delivery, so they are
  /// subtracted (pre-injection discards were never counted as injected).
  [[nodiscard]] std::int64_t packets_in_flight() const {
    std::int64_t n = 0;
    for (const NetworkStats& s : stats_sh_)
      n += s.packets_injected - s.packets_delivered;
    for (const FaultShardCounters& f : fault_sh_)
      n -= f.dropped - f.dropped_preinject;
    return n;
  }

  /// Current injection-gap multiplier applied by congestion throttling
  /// (1.0 = unthrottled). Only changes when Config::throttle_enabled.
  [[nodiscard]] double throttle_factor() const { return throttle_factor_; }

  /// Attach (or detach with nullptr) a packet tracer; the caller keeps
  /// ownership and must outlive the network or detach first. Tracing records
  /// events in execution order from every shard, which is not meaningful
  /// (or thread-safe) under sharded execution — unsupported there.
  void set_tracer(monitor::PacketTracer* tracer);

  /// Attach (or detach with nullptr) a per-event-kind profile; the caller
  /// keeps ownership. Profiling adds two steady_clock reads per event.
  /// Unsupported in sharded mode (events fire concurrently across shards).
  void set_event_profile(EventProfile* profile);

  /// Pre-size the packet pools, message slab, and blocked-sender slabs for a
  /// known workload bound, so the pools never grow mid-run (capacity only;
  /// ids, results, and event order are unaffected). Used by the zero-
  /// allocation stress harnesses to pin "steady state allocates nothing".
  /// `packets` is per shard in sharded mode.
  void reserve(std::size_t packets, std::size_t msgs, std::size_t waiters) {
    for (PktPool& pool : pools_) reserve_pool(pool, packets);
    msg_pool_.reserve(msgs);
    grid_.reserve_waiters(waiters);
  }

  /// Toggle per-hop / per-injection event fusion (default on). The unfused
  /// path schedules the historical two events per hop; results are
  /// bit-identical either way (the determinism suite pins this).
  void set_event_coalescing(bool on) { coalesce_ = on; }
  [[nodiscard]] bool event_coalescing() const { return coalesce_; }

  // --- Fault injection (see docs/MODEL.md section 10) ---
  /// Schedule the plan's events at their simulated times (clamped to now).
  /// In sharded mode they apply at window barriers via schedule_global, so
  /// results stay byte-identical for every shard count; an empty plan is a
  /// no-op and leaves every hot path byte-identical to a fault-free build.
  /// May be called more than once (plans accumulate).
  void apply_fault_plan(const fault::FaultPlan& plan);
  /// Aggregated fault statistics; call at a quiesced point in sharded mode.
  [[nodiscard]] fault::FaultStats fault_stats() const;
  [[nodiscard]] bool faults_enabled() const { return fault_on_; }

  /// Fold the observable forwarding-plane state into `h`: port/VC SoA
  /// arrays (occupancy, FIFOs, counters, stall state), NIC state, packet-
  /// pool high-water/free-list heads, the message slab, per-shard stats,
  /// credits, throttle and fault state. Two runs of the same scenario that
  /// reach the same quiesced simulated time MUST produce the same digest;
  /// sim::EngineSnapshot uses this to prove a restored run re-reached the
  /// checkpoint state. Call only at a quiesced point (between runs, or
  /// from a schedule_quiesced callback).
  void digest_state(sim::Hasher128& h) const;

 private:
  /// Message completion slab. MsgId = (generation << 32) | slot; the
  /// generation tag keeps recycled slots producing fresh ids. Host-shard
  /// owned in sharded mode (allocated by send_message, progressed by
  /// barrier-applied kMailMsgProgress records).
  struct MsgRec {
    std::int64_t remaining_bytes = 0;
    /// Payload dropped on a failing path, awaiting the retry timer. Never
    /// counted into remaining_bytes until re-injected or abandoned, so a
    /// message with losses cannot complete prematurely.
    std::int64_t lost_bytes = 0;
    DeliveryCallback on_delivered;
    topo::NodeId src = -1;  ///< endpoints + mode, for retry re-injection
    topo::NodeId dst = -1;
    std::uint32_t gen = 0;
    std::int32_t next_free = -1;
    std::int16_t retries = 0;
    std::uint8_t mode = 0;  ///< routing::Mode of the original send
    bool retry_armed = false;
  };

  [[nodiscard]] std::int32_t alloc_msg();
  void free_msg(std::int32_t slot);
  [[nodiscard]] static std::int32_t msg_slot(MsgId id) {
    return static_cast<std::int32_t>(id & 0x7fffffff);
  }

  // --- Packet pools ---
  // One pool per shard (one in serial mode); PacketId = (shard << 24) | idx.
  // Storage is chunked so a pool can grow (owner shard only) without ever
  // moving packets other shards may be reading — the chunk-pointer vector is
  // reserved to its maximum up front, so pkt() never observes a relocation.
  // Each chunk carries a parallel `ingress` sideband: the global port index
  // of the rank-3 port the packet last arrived through (-1 otherwise), which
  // is where the buffer-credit must return when the packet vacates its
  // queue. Packet itself has no spare byte (see net/packet.hpp), hence the
  // sideband. Serial mode uses pool 0 and yields the exact id sequence of
  // the historical flat pool (same LIFO free list, same append order).
  static constexpr int kPktShardShift = 24;
  static constexpr std::uint32_t kPktIdxMask = (1u << kPktShardShift) - 1;
  static constexpr int kChunkShift = 12;
  static constexpr std::size_t kChunkPkts = std::size_t{1} << kChunkShift;
  static constexpr std::uint32_t kChunkMask =
      static_cast<std::uint32_t>(kChunkPkts) - 1;

  struct PktChunk {
    Packet p[kChunkPkts];
    std::int32_t ingress[kChunkPkts];
  };
  struct PktPool {
    std::vector<std::unique_ptr<PktChunk>> chunks;
    std::uint32_t count = 0;  ///< high-water slot count
    PacketId free_head = -1;  ///< intrusive LIFO through Packet::next
  };

  PacketId alloc_packet(int sh);
  /// Return `id` to its owner pool. `sh` is the calling shard: a foreign
  /// owner means the free must travel as mail (owner pools are single-writer
  /// between barriers).
  void free_packet_from(PacketId id, int sh);
  void free_local(PacketId id);
  static void reserve_pool(PktPool& pool, std::size_t packets);
  Packet& pkt(PacketId id) {
    PktPool& pool = pools_[static_cast<std::size_t>(id >> kPktShardShift)];
    const auto ix = static_cast<std::uint32_t>(id) & kPktIdxMask;
    return pool.chunks[ix >> kChunkShift]->p[ix & kChunkMask];
  }
  std::int32_t& ingress_of(PacketId id) {
    PktPool& pool = pools_[static_cast<std::size_t>(id >> kPktShardShift)];
    const auto ix = static_cast<std::uint32_t>(id) & kPktIdxMask;
    return pool.chunks[ix >> kChunkShift]->ingress[ix & kChunkMask];
  }

  // Intrusive FIFO helpers over {head, tail} PacketId pairs.
  void fifo_push(PacketId& head, PacketId& tail, PacketId id);
  PacketId fifo_pop(PacketId& head, PacketId& tail);

  // NIC side.
  void nic_try_inject(topo::NodeId node);
  void inject_busy_done(topo::NodeId node);
  void inject_arrive(PacketId pid, topo::RouterId r0, topo::PortId q0,
                     int q0_vc);
  void nic_rx_complete(topo::NodeId node, PacketId id);
  void deliver(PacketId id);
  void loopback_deliver(std::int32_t slot);

  // Router side.
  void try_start_port(topo::RouterId r, topo::PortId p);
  /// Attempt to transmit the head of (r, p, vc). Returns true on transmit.
  bool try_transmit(topo::RouterId r, topo::PortId p, int vc);
  void hop_ser_done(topo::RouterId r, topo::PortId p, int vc,
                    std::int32_t flits, PacketId pid);
  void hop_arrive(PacketId pid, topo::RouterId rb, topo::PortId qn, int qn_vc);
  void eject_ser_done(topo::RouterId r, topo::PortId p, int vc,
                      std::int32_t flits, PacketId pid, topo::NodeId node);
  void notify_waiters(std::size_t vq, int sh);

  // --- Sharded-mode machinery (see docs/MODEL.md section 9) ---
  /// Mail record kinds, in barrier-apply priority order at equal due time.
  enum MailKind : std::uint32_t {
    kMailCredit = 0,   ///< key = rank-3 sender port; a = flits returned
    kMailFree,         ///< key = packet id to return to its owner pool
    kMailMsgProgress,  ///< key = msg slot; a = payload bytes delivered
    kMailInject,       ///< key = global send seq; a = src<<32|dst, b = bytes,
                       ///<   c = MsgId, d = routing mode
    kMailArrive,       ///< key = sender port; a = pid, b = sender port,
                       ///<   c = dst router (becomes a dst-shard event)
    kMailMsgLost,      ///< key = msg slot; a = payload bytes lost, b = gen.
                       ///< Applied after kMailMsgProgress at a barrier, so a
                       ///< message's delivered bytes land before its losses
                       ///< and the slot is provably still live (its payload
                       ///< cannot have fully delivered AND been lost).
  };
  void apply_mail(int dst, std::span<sim::MailRecord> records);
  void apply_inject(topo::NodeId src, topo::NodeId dst, std::int64_t bytes,
                    MsgId id, routing::Mode mode);
  /// Rank-3 sender-side serialization finished: free the local queue,
  /// return any ingress credit, and mail the arrival to the peer's shard.
  void r3_ser_done(topo::RouterId r, topo::PortId p, int vc,
                   std::int32_t flits, PacketId pid, std::int32_t pt,
                   topo::RouterId rb, sim::Tick delta);
  /// Rank-3 arrival at the destination shard: level bump, next-port
  /// decision (dst-group RNG and loads), occupancy bump, ingress record.
  void r3_arrive(PacketId pid, topo::RouterId rb, std::int32_t ingress_pt);
  /// If `pid` entered its current router via rank-3, mail the freed buffer
  /// space back to the sender port's credit pool. No-op in serial mode.
  void post_ingress_credit(PacketId pid, std::int32_t flits, sim::Tick now,
                           int sh);

  [[nodiscard]] int sh_r(topo::RouterId r) const {
    return shard_of_router_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int sh_n(topo::NodeId n) const {
    return shard_of_node_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] sim::Engine& eng_r(topo::RouterId r) {
    return *eng_by_router_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] sim::Engine& eng_n(topo::NodeId n) {
    return *eng_by_node_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] NetworkStats& st(int sh) {
    return stats_sh_[static_cast<std::size_t>(sh)];
  }

  [[nodiscard]] std::int64_t capacity_flits() const { return capacity_flits_; }
  [[nodiscard]] bool has_space(std::size_t vq, std::int32_t flits) const {
    return grid_.occupancy_flits[vq] + flits <= capacity_flits_;
  }

  // --- Fault machinery (dormant until apply_fault_plan) ---
  // All health mutation happens in globally-ordered context (serial events /
  // shard barriers); shard threads only read health between barriers.
  void ensure_fault_state();
  void apply_fault_event(const fault::FaultEvent& ev);
  void fault_fail_link(topo::RouterId r, topo::PortId p, sim::Tick now);
  void fault_fail_router(topo::RouterId r, sim::Tick now);
  void fault_degrade_link(topo::RouterId r, topo::PortId p, double factor,
                          sim::Tick now);
  void fault_repair(topo::RouterId r, topo::PortId p, sim::Tick now);
  /// Mark one direction dead and discard its queued packets (in-flight
  /// transmissions complete: the head was already committed to the wire).
  void fault_fail_port_one_way(topo::RouterId r, topo::PortId p, sim::Tick now);
  void fault_restore_port_one_way(topo::RouterId r, topo::PortId p,
                                  sim::Tick now);
  void fault_set_degrade_one_way(topo::RouterId r, topo::PortId p,
                                 double factor, sim::Tick now);
  /// Planner recompute for one end of a changed link (+ recompute counter).
  void fault_recompute_for(topo::RouterId r, topo::PortId p);
  void drop_port_queues(topo::RouterId r, topo::PortId p, sim::Tick now);
  /// Discard a packet that cannot be forwarded: counters, ingress credit,
  /// message-loss note (-> retry), pool free. `pid` must be detached from
  /// every queue and have no pending events.
  void fault_drop_packet(PacketId pid, int sh, sim::Tick now,
                         bool injected = true);
  void note_msg_loss(std::int32_t slot, std::uint32_t gen, std::int64_t bytes);
  /// Retry timer: re-inject the lost payload, or abandon after max retries.
  void msg_retry(std::int32_t slot, std::uint32_t gen);
  void accrue_degraded(sim::Tick now);
  [[nodiscard]] bool port_dead(std::size_t pt) const {
    return fault_on_ && health_.port_dead[pt] != 0;
  }
  [[nodiscard]] bool router_dead(topo::RouterId r) const {
    return fault_on_ && health_.router_dead[static_cast<std::size_t>(r)] != 0;
  }

  struct FaultShardCounters {
    std::int64_t dropped = 0;
    std::int64_t dropped_preinject = 0;  ///< of `dropped`: never injected
                                         ///< (discarded from a NIC queue)
    std::int64_t dead_tx = 0;  ///< invariant counter; must stay 0
  };

  /// Per-port constants a forwarding step needs, flattened by global port
  /// index (same indexing as PortGrid) so try_transmit reads one contiguous
  /// record instead of chasing topo_'s router -> port vectors. The tile
  /// class lives in PortGrid::tile_cls.
  struct PortHot {
    double bw_gbps = 0.0;
    sim::Tick hop_delta = 0;  ///< link latency + downstream router latency
    topo::RouterId peer_router = -1;
    topo::NodeId eject_node = -1;  ///< for processor (ejection) ports
  };

  /// Master constructor; the public ones delegate (se/plan null in serial).
  Network(sim::Engine& host, const topo::Topology& topo, std::uint64_t seed,
          sim::ShardedEngine* se, const topo::ShardPlan* plan);

  sim::Engine& engine_;  ///< host engine (shard 0's in sharded mode)
  const topo::Topology& topo_;
  sim::ShardedEngine* se_ = nullptr;        ///< null in serial mode
  const topo::ShardPlan* plan_ = nullptr;   ///< null in serial mode
  routing::RoutePlanner planner_;
  router::PortGrid grid_;
  std::vector<PortHot> port_hot_;  ///< [port_index]
  std::int64_t capacity_flits_ = 1;   ///< cached config().buffer_flits
  sim::Tick escape_timeout_ = 0;      ///< cached config().escape_timeout
  std::vector<Nic> nics_;
  std::vector<PktPool> pools_;        ///< [shard] (single pool in serial)
  std::vector<MsgRec> msg_pool_;
  std::int32_t msg_free_head_ = -1;
  std::vector<NetworkStats> stats_sh_;  ///< [shard] counter accumulators
  // Shard routing tables; in serial mode all-zero / all-&engine_, so the
  // hot paths take the same loads in both modes.
  std::vector<std::int32_t> shard_of_router_, shard_of_node_;
  std::vector<sim::Engine*> eng_by_router_, eng_by_node_;
  /// Sender-side credit pool per rank-3 port (sharded mode; flow control
  /// for cross-shard links — each rank-3 ingress gets buffer_flits of
  /// dedicated downstream buffering, replenished by kMailCredit records).
  std::vector<std::int64_t> r3_credits_;
  std::vector<std::int32_t> pt_router_;  ///< [port_index] owning router
  std::vector<std::int32_t> pt_port_;    ///< [port_index] port within router
  std::uint64_t inject_seq_ = 0;  ///< host-order tiebreak for kMailInject
  /// Periodic congestion-throttle evaluation. Self-rescheduling only while
  /// there is traffic to govern (or an elevated factor still decaying):
  /// once the network is idle the tick stops, letting the event queue
  /// drain; ensure_throttle_tick() restarts it on the next injection.
  void throttle_tick();
  void ensure_throttle_tick();
  /// True when no packet is in flight and no NIC has queued injections.
  [[nodiscard]] bool network_idle() const;

  // --- Fault state (empty until the first apply_fault_plan) ---
  bool fault_on_ = false;
  fault::LinkHealth health_;          ///< arrays sized once; pointers shared
                                      ///< with the planner's FaultTables
  fault::FaultStats fault_ctr_;       ///< host-context counters
  std::vector<FaultShardCounters> fault_sh_;  ///< [shard] forwarding-path
  std::vector<double> bw_pristine_;   ///< [port_index] pre-degrade bandwidth
  double degr_rate_sum_ = 0.0;        ///< GB/s currently out of service
  sim::Tick degr_last_ = 0;           ///< last degraded-integral accrual
  sim::Tick retry_timeout_ = 0;       ///< cached config().msg_retry_timeout
  int max_retries_ = 0;               ///< cached config().msg_max_retries

  std::int32_t header_bytes_ = 16;
  sim::Tick rx_overhead_ = 100;  ///< ns per packet of NIC rx processing
  double throttle_factor_ = 1.0;
  bool throttle_scheduled_ = false;
  bool coalesce_ = true;
  CounterSnapshot throttle_base_;
  monitor::PacketTracer* tracer_ = nullptr;
  EventProfile* profile_ = nullptr;
};

}  // namespace dfsim::net
