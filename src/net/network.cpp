#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dfsim::net {

using sim::Tick;
using topo::TileClass;

CounterSnapshot& CounterSnapshot::operator-=(const CounterSnapshot& o) {
  auto sub = [](ClassCounters& a, const ClassCounters& b) {
    a.flits -= b.flits;
    a.stall_ns -= b.stall_ns;
  };
  sub(rank1, o.rank1);
  sub(rank2, o.rank2);
  sub(rank3, o.rank3);
  sub(proc_req, o.proc_req);
  sub(proc_rsp, o.proc_rsp);
  nic_rsp_time_sum_ns -= o.nic_rsp_time_sum_ns;
  nic_rsp_track_count -= o.nic_rsp_track_count;
  return *this;
}

CounterSnapshot CounterSnapshot::delta_since(const CounterSnapshot& base) const {
  CounterSnapshot d = *this;
  d -= base;
  return d;
}

double CounterSnapshot::stall_flit_ratio(const ClassCounters& c,
                                         double flit_time_ns) {
  if (c.flits <= 0) return 0.0;
  const double stall_flits = static_cast<double>(c.stall_ns) / flit_time_ns;
  return stall_flits / static_cast<double>(c.flits);
}

FlitTimes FlitTimes::from_config(const topo::Config& cfg) {
  const auto fb = static_cast<double>(cfg.flit_bytes);
  FlitTimes ft;
  ft.rank1 = fb / cfg.rank1_bw_gbps;
  // Rank-2 ports fold the parallel links into one port (topo::Dragonfly
  // does the same for PortInfo::bw_gbps), so a flit serializes that much
  // faster across the folded port.
  ft.rank2 = fb / (cfg.rank2_bw_gbps * cfg.rank2_parallel);
  ft.rank3 = fb / cfg.rank3_bw_gbps;
  ft.proc = fb / cfg.inject_bw_gbps;
  return ft;
}

Network::Network(sim::Engine& engine, const topo::Dragonfly& topo,
                 std::uint64_t seed)
    : engine_(engine), topo_(topo), planner_(topo, *this, sim::Rng(seed)) {
  routers_.resize(static_cast<std::size_t>(topo_.config().num_routers()));
  for (topo::RouterId r = 0; r < topo_.config().num_routers(); ++r)
    routers_[static_cast<std::size_t>(r)].ports.resize(
        static_cast<std::size_t>(topo_.num_ports(r)));
  nics_.resize(static_cast<std::size_t>(topo_.config().num_nodes()));
  for (topo::NodeId n = 0; n < topo_.config().num_nodes(); ++n)
    nics_[static_cast<std::size_t>(n)].node = n;
  ensure_throttle_tick();
}

bool Network::network_idle() const {
  if (packets_in_flight() > 0) return false;
  for (const auto& nic : nics_)
    if (!nic.inject_queue.empty()) return false;
  return true;
}

void Network::ensure_throttle_tick() {
  if (!topo_.config().throttle_enabled || throttle_scheduled_) return;
  throttle_scheduled_ = true;
  engine_.schedule(topo_.config().throttle_window, [this] { throttle_tick(); });
}

void Network::throttle_tick() {
  throttle_scheduled_ = false;
  const auto& cfg = topo_.config();
  const CounterSnapshot now_snap = snapshot_all();
  const CounterSnapshot d = now_snap.delta_since(throttle_base_);
  throttle_base_ = now_snap;
  const FlitTimes ft = flit_times();
  const auto flits = static_cast<double>(d.rank1.flits + d.rank2.flits +
                                         d.rank3.flits);
  const double stall_flits =
      static_cast<double>(d.rank1.stall_ns) / ft.rank1 +
      static_cast<double>(d.rank2.stall_ns) / ft.rank2 +
      static_cast<double>(d.rank3.stall_ns) / ft.rank3;
  const double ratio = flits > 0.0 ? stall_flits / flits : 0.0;
  if (ratio > cfg.throttle_hi_ratio) {
    throttle_factor_ =
        std::min(cfg.throttle_max_factor, throttle_factor_ * cfg.throttle_step);
    ++stats_.throttle_activations;
  } else if (ratio < cfg.throttle_lo_ratio && throttle_factor_ > 1.0) {
    throttle_factor_ = std::max(1.0, throttle_factor_ / cfg.throttle_step);
  }
  // Keep ticking while there is traffic to govern or an elevated factor
  // still decaying; otherwise stop so the event queue can drain (the next
  // injection restarts the tick).
  if (!network_idle() || throttle_factor_ > 1.0) ensure_throttle_tick();
}

PacketId Network::alloc_packet() {
  if (!free_list_.empty()) {
    const PacketId id = free_list_.back();
    free_list_.pop_back();
    pool_[static_cast<std::size_t>(id)] = Packet{};
    pool_[static_cast<std::size_t>(id)].in_use = true;
    return id;
  }
  pool_.emplace_back();
  pool_.back().in_use = true;
  return static_cast<PacketId>(pool_.size() - 1);
}

void Network::free_packet(PacketId id) {
  pkt(id).in_use = false;
  free_list_.push_back(id);
}

MsgId Network::send_message(topo::NodeId src, topo::NodeId dst,
                            std::int64_t bytes, routing::Mode mode,
                            DeliveryCallback on_delivered) {
  if (src < 0 || src >= topo_.config().num_nodes() || dst < 0 ||
      dst >= topo_.config().num_nodes())
    throw std::invalid_argument("Network::send_message: bad endpoint");
  if (bytes <= 0) bytes = 1;
  const MsgId id = next_msg_++;
  if (src == dst) {
    // Loopback through host memory: no network traversal.
    engine_.schedule(2 * topo_.config().nic_latency,
                     [cb = std::move(on_delivered)] {
                       if (cb) cb();
                     });
    return id;
  }
  msgs_.emplace(id, MsgRec{bytes, std::move(on_delivered)});
  ensure_throttle_tick();
  const std::int64_t payload = topo_.config().packet_payload_bytes;
  const int fb = topo_.config().flit_bytes;
  for (std::int64_t off = 0; off < bytes; off += payload) {
    const auto chunk = static_cast<std::int32_t>(std::min(payload, bytes - off));
    const PacketId pid = alloc_packet();
    Packet& p = pkt(pid);  // NOTE: reference valid only until the next alloc
    p.src = src;
    p.dst = dst;
    p.bytes = chunk + header_bytes_;
    p.flits = (p.bytes + fb - 1) / fb;
    p.vc = kVcRequest;
    p.want_response = topo_.config().generate_responses;
    p.route.mode = mode;
    p.msg = id;
    nics_[static_cast<std::size_t>(src)].inject_queue.push_back(pid);
  }
  nic_try_inject(src);
  return id;
}

std::int64_t Network::load_units(topo::RouterId r, topo::PortId p) const {
  const auto& port =
      routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
  std::int64_t occ = 0;
  for (const auto& vq : port.vc) occ += vq.occupancy_flits;
  return occ * routing::kLoadScale / topo_.config().buffer_flits;
}

void Network::add_waiter(router::VcQueue& vq, router::WaiterRef w) {
  for (const auto& x : vq.waiters)
    if (x.router == w.router && x.port == w.port) return;
  vq.waiters.push_back(w);
}

void Network::notify_waiters(router::VcQueue& vq) {
  if (vq.waiters.empty()) return;
  std::vector<router::WaiterRef> ws;
  ws.swap(vq.waiters);
  for (const auto& w : ws) {
    if (w.router < 0)
      nic_try_inject(static_cast<topo::NodeId>(w.port));
    else
      try_start_port(w.router, w.port);
  }
}

void Network::nic_try_inject(topo::NodeId node) {
  Nic& nic = nics_[static_cast<std::size_t>(node)];
  if (nic.tx_busy || nic.inject_queue.empty()) return;
  const auto& cfg = topo_.config();
  const Tick now = engine_.now();
  const PacketId pid = nic.inject_queue.front();
  Packet& p = pkt(pid);
  const topo::RouterId r0 = topo_.router_of_node(node);

  // Fresh adaptive decision each attempt (load view may have changed).
  routing::RouteState rs{};
  rs.mode = p.route.mode;
  if (p.vc == kVcRequest) planner_.decide_injection(r0, p.dst, rs);
  const topo::PortId q0 = planner_.next_port(r0, p.dst, rs);
  const int q0_vc = vc_queue_index(p.vc, rs.level);
  auto& vq = routers_[static_cast<std::size_t>(r0)]
                 .ports[static_cast<std::size_t>(q0)]
                 .vc[static_cast<std::size_t>(q0_vc)];

  const bool escape_due =
      nic.stall_since >= 0 && now - nic.stall_since >= cfg.escape_timeout;
  if (!has_space(vq, p.flits)) {
    if (!escape_due) {
      if (nic.stall_since < 0) nic.stall_since = now;
      add_waiter(vq, router::WaiterRef{-1, static_cast<topo::PortId>(node)});
      if (!nic.escape_scheduled) {
        nic.escape_scheduled = true;
        engine_.schedule(cfg.escape_timeout, [this, node] {
          nics_[static_cast<std::size_t>(node)].escape_scheduled = false;
          nic_try_inject(node);
        });
      }
      return;
    }
    ++stats_.escapes;
  }
  if (nic.stall_since >= 0) {
    nic.ctr.inj_stall_ns[p.vc] += now - nic.stall_since;
    nic.stall_since = -1;
  }

  // Commit the route decision and the transmission.
  p.route = rs;
  if (p.vc == kVcRequest) {
    p.inject_time = now;
    const auto mi = static_cast<std::size_t>(rs.mode);
    if (rs.nonminimal) {
      ++stats_.nonminimal_decisions;
      ++stats_.decisions_by_mode[mi][1];
    } else {
      ++stats_.minimal_decisions;
      ++stats_.decisions_by_mode[mi][0];
    }
  }
  vq.occupancy_flits += p.flits;
  nic.inject_queue.pop_front();
  nic.tx_busy = true;
  nic.ctr.inj_flits[p.vc] += p.flits;
  ++stats_.packets_injected;
  if (tracer_ != nullptr)
    tracer_->record({now, monitor::TraceEvent::kInject, pid, p.src, p.dst, -1,
                     p.vc, rs.level, rs.nonminimal});

  const Tick ser = sim::serialization_ns(p.bytes, cfg.inject_bw_gbps);
  const Tick gap =
      static_cast<Tick>(1000.0 / cfg.nic_msg_rate_mps * throttle_factor_);
  const Tick busy = std::max(ser, gap);
  engine_.schedule(busy, [this, node] {
    nics_[static_cast<std::size_t>(node)].tx_busy = false;
    nic_try_inject(node);
  });
  engine_.schedule(ser + cfg.nic_latency + cfg.router_latency,
                   [this, pid, r0, q0, q0_vc] {
                     routers_[static_cast<std::size_t>(r0)]
                         .ports[static_cast<std::size_t>(q0)]
                         .vc[static_cast<std::size_t>(q0_vc)]
                         .queue.push_back(pid);
                     try_start_port(r0, q0);
                   });
}

void Network::try_start_port(topo::RouterId r, topo::PortId p) {
  auto& port =
      routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
  if (port.busy) return;
  for (int pass = 0; pass < kNumVcs; ++pass) {
    const int vc = (port.last_served + 1 + pass) % kNumVcs;
    if (port.vc[vc].queue.empty()) continue;
    if (try_transmit(r, p, vc)) return;
  }
}

bool Network::try_transmit(topo::RouterId r, topo::PortId p, int vc) {
  auto& port =
      routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
  auto& vq = port.vc[vc];
  const PacketId pid = vq.queue.front();
  Packet& pk = pkt(pid);
  const topo::PortInfo& pi = topo_.port(r, p);
  const auto& cfg = topo_.config();
  const Tick now = engine_.now();

  if (pi.cls == TileClass::kProc) {
    // Ejection. Serialization overlaps the NIC rx unit processing the
    // previous packet; if rx is still busy when serialization finishes, the
    // ejected packet sits in a 1-slot skid buffer and the port stalls
    // (counted on the processor tile) until the rx unit frees.
    if (port.stall_since[vc] >= 0) {
      port.ctr.stall_ns[vc] += now - port.stall_since[vc];
      port.stall_since[vc] = -1;
    }
    port.last_served = static_cast<std::uint8_t>(vc);
    vq.queue.pop_front();
    port.busy = true;
    port.ctr.flits[vc] += pk.flits;
    const Tick ser = sim::serialization_ns(pk.bytes, pi.bw_gbps);
    const auto flits = pk.flits;
    engine_.schedule(ser, [this, r, p, vc, flits, pid, node = pi.eject_node] {
      auto& prt = routers_[static_cast<std::size_t>(r)]
                      .ports[static_cast<std::size_t>(p)];
      prt.vc[vc].occupancy_flits -= flits;
      notify_waiters(prt.vc[vc]);
      Nic& nic = nics_[static_cast<std::size_t>(node)];
      if (!nic.rx_busy) {
        nic.rx_busy = true;
        prt.busy = false;
        try_start_port(r, p);
        engine_.schedule(rx_overhead_,
                         [this, node, pid] { nic_rx_complete(node, pid); });
      } else {
        // rx unit is the bottleneck: hold the port (stall accrues on the
        // processor tile for this packet's VC) until the rx unit frees.
        nic.rx_pending = pid;
        nic.rx_pending_vc = static_cast<std::uint8_t>(vc);
        nic.rx_pending_since = engine_.now();
      }
    });
    return true;
  }

  // Network hop: compute the next output queue at the peer and check space.
  // Crossing a rank-3 link enters a new group: the packet moves one level up
  // the deadlock-avoidance VC ladder (next_port() handles the intra-group
  // Valiant bump itself).
  const topo::RouterId rb = pi.peer_router;
  routing::RouteState rs = pk.route;
  if (pi.cls == TileClass::kRank3 && rs.level + 1 < kNumVcLevels) ++rs.level;
  const topo::PortId qn = planner_.next_port(rb, pk.dst, rs);
  const int qn_vc = vc_queue_index(vc_plane(vc), rs.level);
  auto& vqn = routers_[static_cast<std::size_t>(rb)]
                  .ports[static_cast<std::size_t>(qn)]
                  .vc[static_cast<std::size_t>(qn_vc)];
  const bool escape_due = port.stall_since[vc] >= 0 &&
                          now - port.stall_since[vc] >= cfg.escape_timeout;
  if (!has_space(vqn, pk.flits)) {
    if (!escape_due) {
      if (port.stall_since[vc] < 0) port.stall_since[vc] = now;
      add_waiter(vqn, router::WaiterRef{r, p});
      if (!port.escape_scheduled[vc]) {
        port.escape_scheduled[vc] = true;
        engine_.schedule(cfg.escape_timeout, [this, r, p, vc] {
          routers_[static_cast<std::size_t>(r)]
              .ports[static_cast<std::size_t>(p)]
              .escape_scheduled[vc] = false;
          try_start_port(r, p);
        });
      }
      return false;
    }
    ++stats_.escapes;
  }
  if (port.stall_since[vc] >= 0) {
    port.ctr.stall_ns[vc] += now - port.stall_since[vc];
    port.stall_since[vc] = -1;
  }
  port.last_served = static_cast<std::uint8_t>(vc);
  vq.queue.pop_front();
  port.busy = true;
  port.ctr.flits[vc] += pk.flits;
  pk.route = rs;  // commit the next-hop decision made above
  vqn.occupancy_flits += pk.flits;
  const Tick ser = sim::serialization_ns(pk.bytes, pi.bw_gbps);
  const auto flits = pk.flits;
  engine_.schedule(ser, [this, r, p, vc, flits] {
    auto& prt =
        routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
    prt.busy = false;
    prt.vc[vc].occupancy_flits -= flits;
    notify_waiters(prt.vc[vc]);
    try_start_port(r, p);
  });
  engine_.schedule(ser + pi.latency + cfg.router_latency,
                   [this, pid, rb, qn, qn_vc] {
                     Packet& pp = pkt(pid);
                     ++pp.hops;
                     ++stats_.total_hops;
                     if (tracer_ != nullptr)
                       tracer_->record({engine_.now(),
                                        monitor::TraceEvent::kHop, pid, pp.src,
                                        pp.dst, rb, pp.vc, pp.route.level,
                                        pp.route.nonminimal});
                     routers_[static_cast<std::size_t>(rb)]
                         .ports[static_cast<std::size_t>(qn)]
                         .vc[static_cast<std::size_t>(qn_vc)]
                         .queue.push_back(pid);
                     try_start_port(rb, qn);
                   });
  return true;
}

void Network::nic_rx_complete(topo::NodeId node, PacketId id) {
  Nic& nic = nics_[static_cast<std::size_t>(node)];
  const topo::RouterId r = topo_.router_of_node(node);
  const topo::PortId ep = topo_.eject_port(r, node);
  if (nic.rx_pending >= 0) {
    // Hand the skid-buffered packet to the rx unit, charge the port stall,
    // and release the ejection port.
    const PacketId next = nic.rx_pending;
    auto& prt =
        routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(ep)];
    prt.ctr.stall_ns[nic.rx_pending_vc] += engine_.now() - nic.rx_pending_since;
    nic.rx_pending = -1;
    nic.rx_pending_since = -1;
    prt.busy = false;
    engine_.schedule(rx_overhead_,
                     [this, node, next] { nic_rx_complete(node, next); });
  } else {
    nic.rx_busy = false;
  }
  deliver(id);
  try_start_port(r, ep);
}

void Network::deliver(PacketId id) {
  ++stats_.packets_delivered;
  if (tracer_ != nullptr) {
    const Packet& p0 = pkt(id);
    tracer_->record({engine_.now(), monitor::TraceEvent::kDeliver, id, p0.src,
                     p0.dst, -1, p0.vc, p0.route.level, p0.route.nonminimal});
  }
  // Snapshot: the completion callback below may inject new messages, growing
  // the packet pool and invalidating references into it.
  const Packet snap = pkt(id);
  if (snap.vc == kVcResponse) {
    // Response arrives back at the original requester: ORB tracking.
    Nic& nic = nics_[static_cast<std::size_t>(snap.dst)];
    nic.ctr.rsp_time_sum_ns += engine_.now() - snap.inject_time;
    ++nic.ctr.rsp_track_count;
    free_packet(id);
    return;
  }
  DeliveryCallback cb;
  const auto it = msgs_.find(snap.msg);
  if (it != msgs_.end()) {
    it->second.remaining_bytes -= snap.bytes - header_bytes_;
    if (it->second.remaining_bytes <= 0) {
      cb = std::move(it->second.on_delivered);
      msgs_.erase(it);
    }
  }
  if (snap.want_response) {
    // Reuse the packet as its own 1-flit response. Responses always route
    // minimally (the paper notes routing mode does not affect response
    // traffic) on the response VC.
    Packet& p = pkt(id);
    p.src = snap.dst;
    p.dst = snap.src;
    p.bytes = header_bytes_;
    p.flits = 1;
    p.vc = kVcResponse;
    p.want_response = false;
    p.route = routing::RouteState{};
    p.route.mode = snap.route.mode;
    p.hops = 0;
    p.msg = -1;
    nics_[static_cast<std::size_t>(snap.dst)].inject_queue.push_back(id);
    nic_try_inject(snap.dst);
  } else {
    free_packet(id);
  }
  // Run the message-completion callback last, with no packet references
  // held: it typically resumes rank coroutines that post further traffic.
  if (cb) cb();
}

CounterSnapshot Network::snapshot_all() const {
  CounterSnapshot s;
  for (topo::RouterId r = 0; r < topo_.config().num_routers(); ++r) {
    const auto& rt = routers_[static_cast<std::size_t>(r)];
    for (topo::PortId p = 0; p < static_cast<topo::PortId>(rt.ports.size());
         ++p) {
      const auto& port = rt.ports[static_cast<std::size_t>(p)];
      const TileClass cls = topo_.port(r, p).cls;
      auto add = [&](ClassCounters& c, int vc) {
        c.flits += port.ctr.flits[vc];
        c.stall_ns += port.ctr.stall_ns[vc];
      };
      for (int vc = 0; vc < kNumVcs; ++vc) {
        switch (cls) {
          case TileClass::kRank1: add(s.rank1, vc); break;
          case TileClass::kRank2: add(s.rank2, vc); break;
          case TileClass::kRank3: add(s.rank3, vc); break;
          case TileClass::kProc:
            add(vc_plane(vc) == kVcRequest ? s.proc_req : s.proc_rsp, vc);
            break;
        }
      }
    }
  }
  for (const auto& nic : nics_) {
    s.proc_req.flits += nic.ctr.inj_flits[0];
    s.proc_req.stall_ns += nic.ctr.inj_stall_ns[0];
    s.proc_rsp.flits += nic.ctr.inj_flits[1];
    s.proc_rsp.stall_ns += nic.ctr.inj_stall_ns[1];
    s.nic_rsp_time_sum_ns += nic.ctr.rsp_time_sum_ns;
    s.nic_rsp_track_count += nic.ctr.rsp_track_count;
  }
  return s;
}

CounterSnapshot Network::snapshot_routers(
    std::span<const topo::RouterId> rs) const {
  CounterSnapshot s;
  for (const topo::RouterId r : rs) {
    const auto& rt = routers_[static_cast<std::size_t>(r)];
    for (topo::PortId p = 0; p < static_cast<topo::PortId>(rt.ports.size());
         ++p) {
      const auto& port = rt.ports[static_cast<std::size_t>(p)];
      const TileClass cls = topo_.port(r, p).cls;
      auto add = [&](ClassCounters& c, int vc) {
        c.flits += port.ctr.flits[vc];
        c.stall_ns += port.ctr.stall_ns[vc];
      };
      for (int vc = 0; vc < kNumVcs; ++vc) {
        switch (cls) {
          case TileClass::kRank1: add(s.rank1, vc); break;
          case TileClass::kRank2: add(s.rank2, vc); break;
          case TileClass::kRank3: add(s.rank3, vc); break;
          case TileClass::kProc:
            add(vc_plane(vc) == kVcRequest ? s.proc_req : s.proc_rsp, vc);
            break;
        }
      }
    }
    for (int k = 0; k < topo_.config().nodes_per_router; ++k) {
      const auto n = static_cast<std::size_t>(
          r * topo_.config().nodes_per_router + k);
      const auto& nic = nics_[n];
      s.proc_req.flits += nic.ctr.inj_flits[0];
      s.proc_req.stall_ns += nic.ctr.inj_stall_ns[0];
      s.proc_rsp.flits += nic.ctr.inj_flits[1];
      s.proc_rsp.stall_ns += nic.ctr.inj_stall_ns[1];
      s.nic_rsp_time_sum_ns += nic.ctr.rsp_time_sum_ns;
      s.nic_rsp_track_count += nic.ctr.rsp_track_count;
    }
  }
  return s;
}

}  // namespace dfsim::net
