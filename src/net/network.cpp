#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace dfsim::net {

using router::PortGrid;
using sim::Tick;
using topo::TileClass;

namespace {

/// Counts one event firing and its wall time into an EventProfile (no-op,
/// and no clock reads, when no profile is attached).
class ProfScope {
 public:
  ProfScope(EventProfile* p, EventKind k) : p_(p), k_(k) {
    if (p_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
  ~ProfScope() {
    if (p_ != nullptr) {
      ++p_->count[k_];
      p_->wall_ns[k_] += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0_)
                             .count();
    }
  }

 private:
  EventProfile* p_;
  EventKind k_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

const char* event_kind_name(int kind) {
  switch (kind) {
    case kEvInjection: return "injection";
    case kEvHop: return "hop";
    case kEvEjection: return "ejection";
    case kEvThrottle: return "throttle";
    case kEvEscape: return "escape";
    case kEvLoopback: return "loopback";
    default: return "unknown";
  }
}

CounterSnapshot& CounterSnapshot::operator-=(const CounterSnapshot& o) {
  auto sub = [](ClassCounters& a, const ClassCounters& b) {
    a.flits -= b.flits;
    a.stall_ns -= b.stall_ns;
  };
  sub(rank1, o.rank1);
  sub(rank2, o.rank2);
  sub(rank3, o.rank3);
  sub(proc_req, o.proc_req);
  sub(proc_rsp, o.proc_rsp);
  nic_rsp_time_sum_ns -= o.nic_rsp_time_sum_ns;
  nic_rsp_track_count -= o.nic_rsp_track_count;
  return *this;
}

CounterSnapshot CounterSnapshot::delta_since(const CounterSnapshot& base) const {
  CounterSnapshot d = *this;
  d -= base;
  return d;
}

double CounterSnapshot::stall_flit_ratio(const ClassCounters& c,
                                         double flit_time_ns) {
  if (c.flits <= 0) return 0.0;
  const double stall_flits = static_cast<double>(c.stall_ns) / flit_time_ns;
  return stall_flits / static_cast<double>(c.flits);
}

FlitTimes FlitTimes::from_config(const topo::Config& cfg) {
  const auto fb = static_cast<double>(cfg.flit_bytes);
  FlitTimes ft;
  ft.rank1 = fb / cfg.rank1_bw_gbps;
  // Rank-2 ports fold the parallel links into one port (topo::Topology
  // does the same for PortInfo::bw_gbps), so a flit serializes that much
  // faster across the folded port.
  ft.rank2 = fb / (cfg.rank2_bw_gbps * cfg.rank2_parallel);
  ft.rank3 = fb / cfg.rank3_bw_gbps;
  ft.proc = fb / cfg.inject_bw_gbps;
  return ft;
}

Network::Network(sim::Engine& engine, const topo::Topology& topo,
                 std::uint64_t seed)
    : Network(engine, topo, seed, nullptr, nullptr) {}

Network::Network(sim::ShardedEngine& se, const topo::Topology& topo,
                 std::uint64_t seed, const topo::ShardPlan& plan)
    : Network(se.host(), topo, seed, &se, &plan) {
  if (se.num_shards() != plan.shards)
    throw std::invalid_argument("Network: engine/plan shard count mismatch");
}

Network::Network(sim::Engine& host, const topo::Topology& topo,
                 std::uint64_t seed, sim::ShardedEngine* se,
                 const topo::ShardPlan* plan)
    : engine_(host), topo_(topo), se_(se), plan_(plan),
      planner_(topo, *this, sim::Rng(seed)) {
  grid_.build(topo_);
  const auto& cfg = topo_.config();
  capacity_flits_ = cfg.buffer_flits;
  escape_timeout_ = cfg.escape_timeout;
  retry_timeout_ = cfg.msg_retry_timeout;
  max_retries_ = cfg.msg_max_retries;
  port_hot_.resize(grid_.num_ports());
  for (topo::RouterId r = 0; r < topo_.num_routers(); ++r) {
    for (topo::PortId p = 0; p < topo_.num_ports(r); ++p) {
      const topo::PortInfo& pi = topo_.port(r, p);
      PortHot& h = port_hot_[grid_.port_index(r, p)];
      h.bw_gbps = pi.bw_gbps;
      h.hop_delta = pi.latency + cfg.router_latency;
      h.peer_router = pi.peer_router;
      h.eject_node = pi.eject_node;
    }
  }
  nics_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    Nic& nic = nics_[static_cast<std::size_t>(n)];
    nic.node = n;
    nic.router = topo_.router_of_node(n);
    nic.eject_pt = topo_.eject_port(nic.router, n);
  }

  const int shards = plan_ != nullptr ? plan_->shards : 1;
  pools_.resize(static_cast<std::size_t>(shards));
  // A pool's chunk-pointer table must never relocate once shards run (other
  // shards read packets through it); reserve its maximum once — the 24-bit
  // index space is the hard per-shard packet limit.
  for (PktPool& pool : pools_)
    pool.chunks.reserve((kPktIdxMask + 1) >> kChunkShift);
  stats_sh_.resize(static_cast<std::size_t>(shards));
  shard_of_router_.assign(static_cast<std::size_t>(topo_.num_routers()), 0);
  shard_of_node_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
  eng_by_router_.assign(static_cast<std::size_t>(topo_.num_routers()),
                        &engine_);
  eng_by_node_.assign(static_cast<std::size_t>(topo_.num_nodes()), &engine_);
  if (se_ != nullptr) {
    rebind_shards();
    pt_router_.resize(grid_.num_ports());
    pt_port_.resize(grid_.num_ports());
    for (topo::RouterId r = 0; r < topo_.num_routers(); ++r) {
      for (topo::PortId p = 0; p < topo_.num_ports(r); ++p) {
        pt_router_[grid_.port_index(r, p)] = r;
        pt_port_[grid_.port_index(r, p)] = p;
      }
    }
    r3_credits_.assign(grid_.num_ports(), capacity_flits_);
    grid_.set_waiter_shards(shards);
    planner_.enable_group_rngs(seed);
    se_->set_mail_handler([this](int dst, std::span<sim::MailRecord> recs) {
      apply_mail(dst, recs);
    });
  }

  // Hand the planner a direct view of the occupancy tables (they are sized
  // once by grid_.build and never reallocate, so the pointers stay valid).
  planner_.set_load_view(routing::LoadView{grid_.occupancy_flits.data(),
                                           grid_.port_base_data(), kNumVcs,
                                           capacity_flits_});
  // Pre-size the hot slabs from the topology so a typical run's steady state
  // performs no pool growth: a few packets per node in flight, one message
  // slab entry per node burst, and a waiter bound of every port plus every
  // NIC blocking at once (capacity only; behavior is unaffected).
  const auto nn = static_cast<std::size_t>(topo_.num_nodes());
  reserve(nn * 8 / static_cast<std::size_t>(shards) + kChunkPkts, nn * 8,
          grid_.num_ports() + nn);
  ensure_throttle_tick();
}

void Network::rebind_shards() {
  if (se_ == nullptr) return;
  if (plan_->shards != se_->num_shards())
    throw std::invalid_argument("Network: rebind changes the shard count");
  for (topo::RouterId r = 0; r < topo_.num_routers(); ++r) {
    const int sh = plan_->shard_of_router[static_cast<std::size_t>(r)];
    shard_of_router_[static_cast<std::size_t>(r)] = sh;
    eng_by_router_[static_cast<std::size_t>(r)] = &se_->shard(sh);
  }
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const int sh = plan_->shard_of_node[static_cast<std::size_t>(n)];
    shard_of_node_[static_cast<std::size_t>(n)] = sh;
    eng_by_node_[static_cast<std::size_t>(n)] = &se_->shard(sh);
  }
}

void Network::set_tracer(monitor::PacketTracer* tracer) {
  if (se_ != nullptr && tracer != nullptr)
    throw std::logic_error("Network: packet tracing requires serial mode");
  tracer_ = tracer;
}

void Network::set_event_profile(EventProfile* profile) {
  if (se_ != nullptr && profile != nullptr)
    throw std::logic_error("Network: event profiling requires serial mode");
  profile_ = profile;
}

NetworkStats Network::stats() const {
  NetworkStats total = stats_sh_.front();
  for (std::size_t sh = 1; sh < stats_sh_.size(); ++sh) {
    const NetworkStats& s = stats_sh_[sh];
    total.packets_injected += s.packets_injected;
    total.packets_delivered += s.packets_delivered;
    total.minimal_decisions += s.minimal_decisions;
    total.nonminimal_decisions += s.nonminimal_decisions;
    total.total_hops += s.total_hops;
    total.escapes += s.escapes;
    total.throttle_activations += s.throttle_activations;
    for (std::size_t m = 0; m < static_cast<std::size_t>(routing::kNumModes);
         ++m) {
      total.decisions_by_mode[m][0] += s.decisions_by_mode[m][0];
      total.decisions_by_mode[m][1] += s.decisions_by_mode[m][1];
    }
  }
  return total;
}

void Network::digest_state(sim::Hasher128& h) const {
  // Port/VC structure-of-arrays state. Queue contents are captured by the
  // intrusive FIFO head/tail packet ids (packet id assignment is itself
  // deterministic: per-shard LIFO free lists refilled in model order), so
  // two runs whose digests match here hold identical queues.
  const auto vec_i32 = [&h](const std::vector<std::int32_t>& v) {
    h.update_u64(v.size());
    for (const std::int32_t x : v) h.update_u32(static_cast<std::uint32_t>(x));
  };
  const auto vec_i64 = [&h](const std::vector<std::int64_t>& v) {
    h.update_u64(v.size());
    for (const std::int64_t x : v) h.update_i64(x);
  };
  const auto vec_u8 = [&h](const std::vector<std::uint8_t>& v) {
    h.update_u64(v.size());
    h.update(v.data(), v.size());
  };
  vec_i32(grid_.occupancy_flits);
  h.update_u64(grid_.q.size());
  for (const PortGrid::VcFifo& f : grid_.q) {
    h.update_u32(static_cast<std::uint32_t>(f.head));
    h.update_u32(static_cast<std::uint32_t>(f.tail));
  }
  h.update_u64(grid_.stall_since.size());
  for (const sim::Tick t : grid_.stall_since) h.update_i64(t);
  vec_u8(grid_.escape_scheduled);
  vec_i32(grid_.waiter_head);
  vec_i32(grid_.waiter_tail);
  vec_i64(grid_.flits_ctr);
  vec_i64(grid_.stall_ns_ctr);
  vec_u8(grid_.busy);
  vec_u8(grid_.last_served);

  h.update_u64(nics_.size());
  for (const Nic& n : nics_) {
    h.update_u32(static_cast<std::uint32_t>(n.inject_head));
    h.update_u32(static_cast<std::uint32_t>(n.inject_tail));
    h.update_u32(static_cast<std::uint32_t>((n.tx_busy ? 1 : 0) |
                                            (n.rx_busy ? 2 : 0) |
                                            (n.escape_scheduled ? 4 : 0)));
    h.update_u32(static_cast<std::uint32_t>(n.rx_pending));
    h.update_u32(n.rx_pending_vc);
    h.update_i64(n.rx_pending_since);
    h.update_i64(n.stall_since);
    h.update_i64(n.ctr.inj_flits[0]);
    h.update_i64(n.ctr.inj_flits[1]);
    h.update_i64(n.ctr.inj_stall_ns[0]);
    h.update_i64(n.ctr.inj_stall_ns[1]);
    h.update_i64(n.ctr.rsp_time_sum_ns);
    h.update_i64(n.ctr.rsp_track_count);
  }

  h.update_u64(pools_.size());
  for (const PktPool& pool : pools_) {
    h.update_u32(pool.count);
    h.update_u32(static_cast<std::uint32_t>(pool.free_head));
  }

  h.update_u64(msg_pool_.size());
  h.update_u32(static_cast<std::uint32_t>(msg_free_head_));
  for (const MsgRec& m : msg_pool_) {
    h.update_i64(m.remaining_bytes);
    h.update_i64(m.lost_bytes);
    h.update_u32(static_cast<std::uint32_t>(m.src));
    h.update_u32(static_cast<std::uint32_t>(m.dst));
    h.update_u32(m.gen);
    h.update_u32(static_cast<std::uint32_t>(m.next_free));
    h.update_u32(static_cast<std::uint32_t>(
        (static_cast<std::uint32_t>(m.retries) << 16) |
        (static_cast<std::uint32_t>(m.mode) << 8) |
        (m.retry_armed ? 1u : 0u)));
  }

  for (const NetworkStats& s : stats_sh_) {
    h.update_i64(s.packets_injected);
    h.update_i64(s.packets_delivered);
    h.update_i64(s.minimal_decisions);
    h.update_i64(s.nonminimal_decisions);
    h.update_i64(s.total_hops);
    h.update_i64(s.escapes);
    h.update_i64(s.throttle_activations);
    for (const auto& row : s.decisions_by_mode) {
      h.update_i64(row[0]);
      h.update_i64(row[1]);
    }
  }

  vec_i64(r3_credits_);
  h.update_u64(inject_seq_);
  h.update_f64(throttle_factor_);
  h.update_u32(throttle_scheduled_ ? 1u : 0u);

  h.update_u32(fault_on_ ? 1u : 0u);
  if (fault_on_) {
    const fault::FaultStats fs = fault_stats();
    h.update_i64(fs.packets_dropped);
    h.update_i64(fs.packets_rerouted);
    h.update_i64(fs.dead_link_transmissions);
    h.update_f64(fs.degraded_bw_gbs);
    vec_u8(health_.port_dead);
    vec_u8(health_.router_dead);
  }
}

void Network::schedule_quiesced(sim::Tick delay, std::function<void()> fn) {
  if (se_ != nullptr)
    se_->schedule_global(engine_.now() + delay, std::move(fn));
  else
    engine_.schedule(delay, std::move(fn));
}

bool Network::network_idle() const {
  if (packets_in_flight() > 0) return false;
  for (const auto& nic : nics_)
    if (nic.inject_head >= 0) return false;
  return true;
}

void Network::ensure_throttle_tick() {
  if (!topo_.config().throttle_enabled || throttle_scheduled_) return;
  throttle_scheduled_ = true;
  // Sharded: the tick reads every shard's counters and publishes the factor
  // all shards' injectors read, so it must run quiesced (at a barrier).
  schedule_quiesced(topo_.config().throttle_window, [this] {
    ProfScope ps(profile_, kEvThrottle);
    throttle_tick();
  });
}

void Network::throttle_tick() {
  throttle_scheduled_ = false;
  const auto& cfg = topo_.config();
  const CounterSnapshot now_snap = snapshot_all();
  const CounterSnapshot d = now_snap.delta_since(throttle_base_);
  throttle_base_ = now_snap;
  const FlitTimes ft = flit_times();
  const auto flits = static_cast<double>(d.rank1.flits + d.rank2.flits +
                                         d.rank3.flits);
  const double stall_flits =
      static_cast<double>(d.rank1.stall_ns) / ft.rank1 +
      static_cast<double>(d.rank2.stall_ns) / ft.rank2 +
      static_cast<double>(d.rank3.stall_ns) / ft.rank3;
  const double ratio = flits > 0.0 ? stall_flits / flits : 0.0;
  if (ratio > cfg.throttle_hi_ratio) {
    throttle_factor_ =
        std::min(cfg.throttle_max_factor, throttle_factor_ * cfg.throttle_step);
    ++st(0).throttle_activations;
  } else if (ratio < cfg.throttle_lo_ratio && throttle_factor_ > 1.0) {
    throttle_factor_ = std::max(1.0, throttle_factor_ / cfg.throttle_step);
  }
  // Keep ticking while there is traffic to govern or an elevated factor
  // still decaying; otherwise stop so the event queue can drain (the next
  // injection restarts the tick).
  if (!network_idle() || throttle_factor_ > 1.0) ensure_throttle_tick();
}

PacketId Network::alloc_packet(int sh) {
  PktPool& pool = pools_[static_cast<std::size_t>(sh)];
  if (pool.free_head >= 0) {
    const PacketId id = pool.free_head;
    Packet& p = pkt(id);
    pool.free_head = p.next;
    p = Packet{};
    p.in_use = true;
    ingress_of(id) = -1;
    return id;
  }
  const std::uint32_t ix = pool.count++;
  if (ix > kPktIdxMask)
    throw std::length_error("Network: per-shard packet pool exhausted");
  if ((ix >> kChunkShift) == pool.chunks.size())
    pool.chunks.push_back(std::make_unique<PktChunk>());
  const auto id =
      static_cast<PacketId>((static_cast<std::uint32_t>(sh)
                             << kPktShardShift) |
                            ix);
  Packet& p = pkt(id);
  p = Packet{};
  p.in_use = true;
  ingress_of(id) = -1;
  return id;
}

void Network::free_local(PacketId id) {
  PktPool& pool = pools_[static_cast<std::size_t>(id >> kPktShardShift)];
  Packet& p = pkt(id);
  p.in_use = false;
  p.next = pool.free_head;
  pool.free_head = id;
}

void Network::free_packet_from(PacketId id, int sh) {
  const int owner = id >> kPktShardShift;
  if (owner == sh) {
    free_local(id);
    return;
  }
  // Foreign pool: the owner reclaims the slot at the next barrier, in
  // canonical mail order, so its free-list (and hence future packet ids)
  // stays partition-independent.
  sim::MailRecord rec;
  rec.due = se_->shard(sh).now();
  rec.kind = kMailFree;
  rec.key = id;
  se_->post_mail(sh, owner, rec);
}

void Network::reserve_pool(PktPool& pool, std::size_t packets) {
  while (pool.chunks.size() * kChunkPkts < packets)
    pool.chunks.push_back(std::make_unique<PktChunk>());
}

void Network::fifo_push(PacketId& head, PacketId& tail, PacketId id) {
  pkt(id).next = -1;
  if (tail >= 0)
    pkt(tail).next = id;
  else
    head = id;
  tail = id;
}

PacketId Network::fifo_pop(PacketId& head, PacketId& tail) {
  const PacketId id = head;
  head = pkt(id).next;
  if (head < 0) tail = -1;
  pkt(id).next = -1;
  return id;
}

std::int32_t Network::alloc_msg() {
  if (msg_free_head_ >= 0) {
    const std::int32_t s = msg_free_head_;
    msg_free_head_ = msg_pool_[static_cast<std::size_t>(s)].next_free;
    msg_pool_[static_cast<std::size_t>(s)].next_free = -1;
    return s;
  }
  msg_pool_.emplace_back();
  return static_cast<std::int32_t>(msg_pool_.size() - 1);
}

void Network::free_msg(std::int32_t slot) {
  MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
  m.on_delivered = DeliveryCallback{};
  m.remaining_bytes = 0;
  m.lost_bytes = 0;
  m.retries = 0;
  m.retry_armed = false;  // a pending timer no-ops on the gen mismatch
  ++m.gen;  // recycled slot yields fresh MsgIds
  m.next_free = msg_free_head_;
  msg_free_head_ = slot;
}

MsgId Network::send_message(topo::NodeId src, topo::NodeId dst,
                            std::int64_t bytes, routing::Mode mode,
                            DeliveryCallback on_delivered) {
  if (src < 0 || src >= topo_.num_nodes() || dst < 0 ||
      dst >= topo_.num_nodes())
    throw std::invalid_argument("Network::send_message: bad endpoint");
  if (bytes <= 0) bytes = 1;
  const std::int32_t slot = alloc_msg();
  MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
  m.on_delivered = std::move(on_delivered);
  const MsgId id =
      (static_cast<MsgId>(m.gen & 0x7fffffffu) << 32) | static_cast<MsgId>(slot);
  if (src == dst) {
    // Loopback through host memory: no network traversal. The slab holds
    // the callback so the scheduled closure stays pointer-sized.
    m.remaining_bytes = 0;
    engine_.schedule(2 * topo_.config().nic_latency, [this, slot] {
      ProfScope ps(profile_, kEvLoopback);
      loopback_deliver(slot);
    });
    return id;
  }
  m.remaining_bytes = bytes;
  // Endpoints and mode are kept for fault-path retries (msg_retry).
  m.src = src;
  m.dst = dst;
  m.mode = static_cast<std::uint8_t>(mode);
  ensure_throttle_tick();
  if (se_ != nullptr) {
    // Host-side call (an application event or a barrier-time completion
    // callback); the source NIC lives on its own shard, so the injection is
    // mailed there and materializes at the next barrier. The global send
    // sequence number keeps equal-time sends in host call order, which is
    // itself partition-independent.
    sim::MailRecord rec;
    rec.due = engine_.now();
    rec.kind = kMailInject;
    rec.key = static_cast<std::int64_t>(inject_seq_++);
    rec.a = (static_cast<std::int64_t>(src) << 32) |
            static_cast<std::uint32_t>(dst);
    rec.b = bytes;
    rec.c = id;
    rec.d = static_cast<std::int64_t>(mode);
    se_->post_mail(0, sh_n(src), rec);
    return id;
  }
  apply_inject(src, dst, bytes, id, mode);
  return id;
}

void Network::apply_inject(topo::NodeId src, topo::NodeId dst,
                           std::int64_t bytes, MsgId id, routing::Mode mode) {
  const std::int64_t payload = topo_.config().packet_payload_bytes;
  const int fb = topo_.config().flit_bytes;
  const int sh = sh_n(src);
  Nic& nic = nics_[static_cast<std::size_t>(src)];
  for (std::int64_t off = 0; off < bytes; off += payload) {
    const auto chunk = static_cast<std::int32_t>(std::min(payload, bytes - off));
    const PacketId pid = alloc_packet(sh);
    Packet& p = pkt(pid);
    p.src = src;
    p.dst = dst;
    p.bytes = chunk + header_bytes_;
    p.flits = (p.bytes + fb - 1) / fb;
    p.vc = kVcRequest;
    p.want_response = topo_.config().generate_responses;
    p.route.mode = mode;
    p.msg = id;
    fifo_push(nic.inject_head, nic.inject_tail, pid);
  }
  nic_try_inject(src);
}

void Network::loopback_deliver(std::int32_t slot) {
  DeliveryCallback cb =
      std::move(msg_pool_[static_cast<std::size_t>(slot)].on_delivered);
  free_msg(slot);
  if (cb) cb();
}

std::int64_t Network::load_units(topo::RouterId r, topo::PortId p) const {
  const std::size_t base = PortGrid::vq_index(grid_.port_index(r, p), 0);
  std::int64_t occ = 0;
  for (int vc = 0; vc < kNumVcs; ++vc)
    occ += grid_.occupancy_flits[base + static_cast<std::size_t>(vc)];
  return occ * routing::kLoadScale / capacity_flits_;
}

void Network::notify_waiters(std::size_t vq, int sh) {
  std::int32_t w = grid_.detach_waiters(vq);
  while (w >= 0) {
    // Copy before freeing: the woken sender may register new waiters,
    // reusing this very node.
    const router::WaiterNode node = grid_.waiter(w, sh);
    grid_.free_waiter(w, sh);
    if (node.ref.router < 0)
      nic_try_inject(static_cast<topo::NodeId>(node.ref.port));
    else
      try_start_port(node.ref.router, node.ref.port);
    w = node.next;
  }
}

void Network::inject_busy_done(topo::NodeId node) {
  nics_[static_cast<std::size_t>(node)].tx_busy = false;
  nic_try_inject(node);
}

void Network::inject_arrive(PacketId pid, topo::RouterId r0, topo::PortId q0,
                            int q0_vc) {
  const std::size_t pt = grid_.port_index(r0, q0);
  const std::size_t vq = PortGrid::vq_index(pt, q0_vc);
  if (router_dead(r0) || port_dead(pt)) {
    // Router or port died after the NIC committed: release the occupancy
    // reserved at commit and discard the packet.
    const int sh = sh_r(r0);
    grid_.occupancy_flits[vq] -= pkt(pid).flits;
    notify_waiters(vq, sh);
    fault_drop_packet(pid, sh, eng_r(r0).now());
    return;
  }
  fifo_push(grid_.q[vq].head, grid_.q[vq].tail, pid);
  try_start_port(r0, q0);
}

void Network::nic_try_inject(topo::NodeId node) {
  Nic& nic = nics_[static_cast<std::size_t>(node)];
  if (nic.tx_busy || nic.inject_head < 0) return;
  const auto& cfg = topo_.config();
  sim::Engine& eng = eng_n(node);
  const int sh = sh_n(node);
  const Tick now = eng.now();
  const topo::RouterId r0 = nic.router;

  if (router_dead(r0)) {
    // The attached router failed: injection is impossible. Discard the
    // queue; message-level retries re-inject elsewhere in time (and
    // eventually abandon), so senders never hang on a dead endpoint.
    if (nic.stall_since >= 0) {
      nic.ctr.inj_stall_ns[pkt(nic.inject_head).vc] += now - nic.stall_since;
      nic.stall_since = -1;
    }
    while (nic.inject_head >= 0)
      fault_drop_packet(fifo_pop(nic.inject_head, nic.inject_tail), sh, now,
                        /*injected=*/false);
    return;
  }

  PacketId pid = nic.inject_head;
  // Fresh adaptive decision each attempt (load view may have changed).
  routing::RouteState rs{};
  topo::PortId q0 = -1;
  for (;;) {
    Packet& hp = pkt(pid);
    rs = routing::RouteState{};
    rs.mode = hp.route.mode;
    if (hp.vc == kVcRequest) planner_.decide_injection(r0, hp.dst, rs);
    q0 = planner_.next_port(r0, hp.dst, rs);
    if (q0 >= 0) break;
    // Faults only: no route from this router toward the destination.
    // Drop the head and consider the next queued packet.
    if (nic.stall_since >= 0) {
      nic.ctr.inj_stall_ns[hp.vc] += now - nic.stall_since;
      nic.stall_since = -1;
    }
    fifo_pop(nic.inject_head, nic.inject_tail);
    fault_drop_packet(pid, sh, now, /*injected=*/false);
    pid = nic.inject_head;
    if (pid < 0) return;
  }
  Packet& p = pkt(pid);
  const int q0_vc = vc_queue_index(p.vc, rs.level);
  const std::size_t vq = PortGrid::vq_index(grid_.port_index(r0, q0), q0_vc);

  const bool escape_due =
      nic.stall_since >= 0 && now - nic.stall_since >= escape_timeout_;
  if (!has_space(vq, p.flits)) {
    if (!escape_due) {
      if (nic.stall_since < 0) nic.stall_since = now;
      grid_.add_waiter(
          vq, router::WaiterRef{-1, static_cast<topo::PortId>(node)}, sh);
      if (!nic.escape_scheduled) {
        nic.escape_scheduled = true;
        eng.schedule(escape_timeout_, [this, node] {
          ProfScope ps(profile_, kEvEscape);
          nics_[static_cast<std::size_t>(node)].escape_scheduled = false;
          nic_try_inject(node);
        });
      }
      return;
    }
    ++st(sh).escapes;
  }
  if (nic.stall_since >= 0) {
    nic.ctr.inj_stall_ns[p.vc] += now - nic.stall_since;
    nic.stall_since = -1;
  }

  // Commit the route decision and the transmission.
  p.route = rs;
  if (p.vc == kVcRequest) {
    p.inject_time = now;
    const auto mi = static_cast<std::size_t>(rs.mode);
    if (rs.nonminimal) {
      ++st(sh).nonminimal_decisions;
      ++st(sh).decisions_by_mode[mi][1];
    } else {
      ++st(sh).minimal_decisions;
      ++st(sh).decisions_by_mode[mi][0];
    }
  }
  grid_.occupancy_flits[vq] += p.flits;
  fifo_pop(nic.inject_head, nic.inject_tail);
  nic.tx_busy = true;
  nic.ctr.inj_flits[p.vc] += p.flits;
  ++st(sh).packets_injected;
  if (tracer_ != nullptr)
    tracer_->record({now, monitor::TraceEvent::kInject, pid, p.src, p.dst, -1,
                     p.vc, rs.level, rs.nonminimal});

  const Tick ser = sim::serialization_ns(p.bytes, cfg.inject_bw_gbps);
  const Tick gap =
      static_cast<Tick>(1000.0 / cfg.nic_msg_rate_mps * throttle_factor_);
  const Tick busy = std::max(ser, gap);
  const Tick arr = ser + cfg.nic_latency + cfg.router_latency;
  if (coalesce_) {
    // One pooled event drives both phases; whichever time comes first fires
    // first and the callback rearms itself (same slot, same insertion seq)
    // for the other. At equal times the busy-release phase runs first —
    // exactly the unfused push order.
    const bool busy_first = busy <= arr;
    const Tick dt = busy_first ? arr - busy : busy - arr;
    auto ev = [this, dt, node, pid, r0, q0,
               q0_vc8 = static_cast<std::int8_t>(q0_vc), busy_first,
               phase = std::int8_t{0}]() mutable {
      ProfScope ps(profile_, kEvInjection);
      if (phase == 0) {
        phase = 1;
        if (busy_first)
          inject_busy_done(node);
        else
          inject_arrive(pid, r0, q0, q0_vc8);
        eng_n(node).rearm(dt);
      } else {
        if (busy_first)
          inject_arrive(pid, r0, q0, q0_vc8);
        else
          inject_busy_done(node);
      }
    };
    static_assert(sizeof(ev) <= sim::EventQueue::kInlineBytes);
    eng.schedule(std::min(busy, arr), std::move(ev));
  } else {
    eng.schedule(busy, [this, node] {
      ProfScope ps(profile_, kEvInjection);
      inject_busy_done(node);
    });
    eng.schedule(arr, [this, pid, r0, q0, q0_vc] {
      ProfScope ps(profile_, kEvInjection);
      inject_arrive(pid, r0, q0, q0_vc);
    });
  }
}

void Network::try_start_port(topo::RouterId r, topo::PortId p) {
  const std::size_t pt = grid_.port_index(r, p);
  if (grid_.busy[pt]) return;
  // A dead port never transmits — this single gate is what keeps the
  // dead_link_transmissions invariant at zero (every transmit goes through
  // here first).
  if (port_dead(pt)) return;
  const std::size_t base = PortGrid::vq_index(pt, 0);
  const int last = grid_.last_served[pt];
  for (int pass = 0; pass < kNumVcs; ++pass) {
    const int vc = (last + 1 + pass) % kNumVcs;
    if (grid_.q[base + static_cast<std::size_t>(vc)].head < 0) continue;
    if (try_transmit(r, p, vc)) return;
  }
}

void Network::post_ingress_credit(PacketId pid, std::int32_t flits, Tick now,
                                  int sh) {
  if (se_ == nullptr) return;
  std::int32_t& ing = ingress_of(pid);
  if (ing < 0) return;
  // The flits this packet held just left the buffer its rank-3 sender
  // reserved from; return them to that port's credit pool at the barrier.
  sim::MailRecord rec;
  rec.due = now;
  rec.kind = kMailCredit;
  rec.key = ing;
  rec.a = flits;
  se_->post_mail(sh, sh_r(pt_router_[static_cast<std::size_t>(ing)]), rec);
  ing = -1;
}

void Network::hop_ser_done(topo::RouterId r, topo::PortId p, int vc,
                           std::int32_t flits, PacketId pid) {
  const std::size_t pt = grid_.port_index(r, p);
  const std::size_t vq = PortGrid::vq_index(pt, vc);
  const int sh = sh_r(r);
  grid_.busy[pt] = 0;
  grid_.occupancy_flits[vq] -= flits;
  post_ingress_credit(pid, flits, eng_r(r).now(), sh);
  notify_waiters(vq, sh);
  try_start_port(r, p);
}

void Network::hop_arrive(PacketId pid, topo::RouterId rb, topo::PortId qn,
                         int qn_vc) {
  Packet& pp = pkt(pid);
  const std::size_t pt = grid_.port_index(rb, qn);
  if (router_dead(rb) || port_dead(pt)) {
    // The next hop died while the packet was on the wire: release the
    // occupancy the sender reserved at commit and discard the packet.
    const std::size_t vq = PortGrid::vq_index(pt, qn_vc);
    const int sh = sh_r(rb);
    grid_.occupancy_flits[vq] -= pp.flits;
    notify_waiters(vq, sh);
    fault_drop_packet(pid, sh, eng_r(rb).now());
    return;
  }
  ++pp.hops;
  ++st(sh_r(rb)).total_hops;
  if (tracer_ != nullptr)
    tracer_->record({engine_.now(), monitor::TraceEvent::kHop, pid, pp.src,
                     pp.dst, rb, pp.vc, pp.route.level, pp.route.nonminimal});
  const std::size_t vq = PortGrid::vq_index(pt, qn_vc);
  fifo_push(grid_.q[vq].head, grid_.q[vq].tail, pid);
  try_start_port(rb, qn);
}

void Network::eject_ser_done(topo::RouterId r, topo::PortId p, int vc,
                             std::int32_t flits, PacketId pid,
                             topo::NodeId node) {
  const std::size_t pt = grid_.port_index(r, p);
  const std::size_t vq = PortGrid::vq_index(pt, vc);
  const int sh = sh_r(r);
  sim::Engine& eng = eng_r(r);
  grid_.occupancy_flits[vq] -= flits;
  post_ingress_credit(pid, flits, eng.now(), sh);
  notify_waiters(vq, sh);
  Nic& nic = nics_[static_cast<std::size_t>(node)];
  if (!nic.rx_busy) {
    nic.rx_busy = true;
    grid_.busy[pt] = 0;
    try_start_port(r, p);
    eng.schedule(rx_overhead_, [this, node, pid] {
      ProfScope ps(profile_, kEvEjection);
      nic_rx_complete(node, pid);
    });
  } else {
    // rx unit is the bottleneck: hold the port (stall accrues on the
    // processor tile for this packet's VC) until the rx unit frees.
    nic.rx_pending = pid;
    nic.rx_pending_vc = static_cast<std::uint8_t>(vc);
    nic.rx_pending_since = eng.now();
  }
}

bool Network::try_transmit(topo::RouterId r, topo::PortId p, int vc) {
  const std::size_t pt = grid_.port_index(r, p);
  const std::size_t vq = PortGrid::vq_index(pt, vc);
  const PacketId pid = grid_.q[vq].head;
  Packet& pk = pkt(pid);
  const PortHot& ph = port_hot_[pt];
  const auto cls = static_cast<TileClass>(grid_.tile_cls[pt]);
  const Tick now = eng_r(r).now();

  if (cls == TileClass::kProc) {
    // Ejection. Serialization overlaps the NIC rx unit processing the
    // previous packet; if rx is still busy when serialization finishes, the
    // ejected packet sits in a 1-slot skid buffer and the port stalls
    // (counted on the processor tile) until the rx unit frees.
    if (grid_.stall_since[vq] >= 0) {
      grid_.stall_ns_ctr[vq] += now - grid_.stall_since[vq];
      grid_.stall_since[vq] = -1;
    }
    grid_.last_served[pt] = static_cast<std::uint8_t>(vc);
    fifo_pop(grid_.q[vq].head, grid_.q[vq].tail);
    grid_.busy[pt] = 1;
    if (port_dead(pt)) ++fault_sh_[static_cast<std::size_t>(sh_r(r))].dead_tx;
    grid_.flits_ctr[vq] += pk.flits;
    const Tick ser = sim::serialization_ns(pk.bytes, ph.bw_gbps);
    const std::int32_t flits = pk.flits;
    eng_r(r).schedule(ser, [this, r, p, vc, flits, pid, node = ph.eject_node] {
      ProfScope ps(profile_, kEvEjection);
      eject_ser_done(r, p, vc, flits, pid, node);
    });
    return true;
  }

  const topo::RouterId rb = ph.peer_router;

  if (se_ != nullptr && cls == TileClass::kRank3) {
    // Sharded rank-3 hop. The peer may be another shard mid-window, so no
    // remote state is read or reserved here: transmission is gated on this
    // port's own credit pool, and the next-queue decision happens at the
    // peer when the packet arrives (mailed across the barrier). The VC
    // ladder level also bumps at arrival.
    const int sh = sh_r(r);
    const bool escape_due = grid_.stall_since[vq] >= 0 &&
                            now - grid_.stall_since[vq] >= escape_timeout_;
    if (r3_credits_[pt] < pk.flits) {
      if (!escape_due) {
        if (grid_.stall_since[vq] < 0) grid_.stall_since[vq] = now;
        if (!grid_.escape_scheduled[vq]) {
          grid_.escape_scheduled[vq] = 1;
          eng_r(r).schedule(escape_timeout_, [this, r, p, vc] {
            grid_.escape_scheduled[PortGrid::vq_index(grid_.port_index(r, p),
                                                      vc)] = 0;
            try_start_port(r, p);
          });
        }
        return false;
      }
      ++st(sh).escapes;  // forced overflow: credits go negative
    }
    if (grid_.stall_since[vq] >= 0) {
      grid_.stall_ns_ctr[vq] += now - grid_.stall_since[vq];
      grid_.stall_since[vq] = -1;
    }
    grid_.last_served[pt] = static_cast<std::uint8_t>(vc);
    fifo_pop(grid_.q[vq].head, grid_.q[vq].tail);
    grid_.busy[pt] = 1;
    if (port_dead(pt)) ++fault_sh_[static_cast<std::size_t>(sh)].dead_tx;
    grid_.flits_ctr[vq] += pk.flits;
    r3_credits_[pt] -= pk.flits;
    const Tick ser = sim::serialization_ns(pk.bytes, ph.bw_gbps);
    auto ev = [this, r, p, vc8 = static_cast<std::int8_t>(vc),
               flits = pk.flits, pid, pt32 = static_cast<std::int32_t>(pt),
               rb, delta = ph.hop_delta] {
      r3_ser_done(r, p, vc8, flits, pid, pt32, rb, delta);
    };
    static_assert(sizeof(ev) <= sim::EventQueue::kInlineBytes);
    eng_r(r).schedule(ser, std::move(ev));
    return true;
  }

  // Network hop: compute the next output queue at the peer and check space.
  // Crossing a rank-3 link enters a new group: the packet moves one level up
  // the deadlock-avoidance VC ladder (next_port() handles the intra-group
  // Valiant bump itself). In sharded mode this path only ever runs for
  // rank-1/rank-2 links, whose peer is always on this shard.
  PacketId hpid = pid;
  routing::RouteState rs{};
  topo::PortId qn = -1;
  for (;;) {
    Packet& hpk = pkt(hpid);
    rs = hpk.route;
    if (cls == TileClass::kRank3 && rs.level + 1 < kNumVcLevels) ++rs.level;
    qn = planner_.next_port(rb, hpk.dst, rs);
    if (qn >= 0) break;
    // Faults only: the queue head has no route onward from the peer (the
    // peer router died, or its group lost every usable exit). Discard it in
    // place of transmitting and consider the next queued packet.
    if (grid_.stall_since[vq] >= 0) {
      grid_.stall_ns_ctr[vq] += now - grid_.stall_since[vq];
      grid_.stall_since[vq] = -1;
    }
    fifo_pop(grid_.q[vq].head, grid_.q[vq].tail);
    grid_.occupancy_flits[vq] -= hpk.flits;
    notify_waiters(vq, sh_r(r));
    fault_drop_packet(hpid, sh_r(r), now);
    hpid = grid_.q[vq].head;
    if (hpid < 0) return false;
  }
  Packet& hpk = pkt(hpid);
  const int qn_vc = vc_queue_index(vc_plane(vc), rs.level);
  const std::size_t vqn = PortGrid::vq_index(grid_.port_index(rb, qn), qn_vc);
  const bool escape_due = grid_.stall_since[vq] >= 0 &&
                          now - grid_.stall_since[vq] >= escape_timeout_;
  if (!has_space(vqn, hpk.flits)) {
    if (!escape_due) {
      if (grid_.stall_since[vq] < 0) grid_.stall_since[vq] = now;
      grid_.add_waiter(vqn, router::WaiterRef{r, p}, sh_r(r));
      if (!grid_.escape_scheduled[vq]) {
        grid_.escape_scheduled[vq] = 1;
        eng_r(r).schedule(escape_timeout_, [this, r, p, vc] {
          ProfScope ps(profile_, kEvEscape);
          grid_.escape_scheduled[PortGrid::vq_index(grid_.port_index(r, p),
                                                    vc)] = 0;
          try_start_port(r, p);
        });
      }
      return false;
    }
    ++st(sh_r(r)).escapes;
  }
  if (grid_.stall_since[vq] >= 0) {
    grid_.stall_ns_ctr[vq] += now - grid_.stall_since[vq];
    grid_.stall_since[vq] = -1;
  }
  grid_.last_served[pt] = static_cast<std::uint8_t>(vc);
  fifo_pop(grid_.q[vq].head, grid_.q[vq].tail);
  grid_.busy[pt] = 1;
  if (port_dead(pt)) ++fault_sh_[static_cast<std::size_t>(sh_r(r))].dead_tx;
  grid_.flits_ctr[vq] += hpk.flits;
  hpk.route = rs;  // commit the next-hop decision made above
  grid_.occupancy_flits[vqn] += hpk.flits;
  const Tick ser = sim::serialization_ns(hpk.bytes, ph.bw_gbps);
  const std::int32_t flits = hpk.flits;
  const Tick delta = ph.hop_delta;
  if (coalesce_) {
    // One pooled event per hop: phase 0 releases the port when serialization
    // finishes, then rearms itself (same slot, same insertion seq) to land
    // the packet at the peer after the link+router latency.
    auto ev = [this, delta, r, rb, pid = hpid, flits, p, qn,
               vc8 = static_cast<std::int8_t>(vc),
               qn_vc8 = static_cast<std::int8_t>(qn_vc),
               phase = std::int8_t{0}]() mutable {
      ProfScope ps(profile_, kEvHop);
      if (phase == 0) {
        phase = 1;
        hop_ser_done(r, p, vc8, flits, pid);
        eng_r(r).rearm(delta);
      } else {
        hop_arrive(pid, rb, qn, qn_vc8);
      }
    };
    static_assert(sizeof(ev) <= sim::EventQueue::kInlineBytes);
    eng_r(r).schedule(ser, std::move(ev));
  } else {
    eng_r(r).schedule(ser, [this, r, p, vc, flits, pid = hpid] {
      ProfScope ps(profile_, kEvHop);
      hop_ser_done(r, p, vc, flits, pid);
    });
    eng_r(r).schedule(ser + delta, [this, pid = hpid, rb, qn, qn_vc] {
      ProfScope ps(profile_, kEvHop);
      hop_arrive(pid, rb, qn, qn_vc);
    });
  }
  return true;
}

void Network::r3_ser_done(topo::RouterId r, topo::PortId p, int vc,
                          std::int32_t flits, PacketId pid, std::int32_t pt,
                          topo::RouterId rb, Tick delta) {
  const std::size_t pti = static_cast<std::size_t>(pt);
  const std::size_t vq = PortGrid::vq_index(pti, vc);
  const int sh = sh_r(r);
  const Tick now = eng_r(r).now();
  grid_.busy[pti] = 0;
  grid_.occupancy_flits[vq] -= flits;
  post_ingress_credit(pid, flits, now, sh);
  notify_waiters(vq, sh);
  try_start_port(r, p);
  // The arrival lands strictly after the next barrier (delta >= lookahead by
  // construction), so it is mailed as a future event on the peer's shard.
  // The sender port index keys equal-time arrivals: one port's ser_done
  // times are strictly increasing, so (due, port) is unique.
  sim::MailRecord rec;
  rec.due = now + delta;
  rec.kind = kMailArrive;
  rec.key = pt;
  rec.a = pid;
  rec.b = pt;
  rec.c = rb;
  se_->post_mail(sh, sh_r(rb), rec);
}

void Network::r3_arrive(PacketId pid, topo::RouterId rb,
                        std::int32_t ingress_pt) {
  Packet& pp = pkt(pid);
  if (router_dead(rb)) {
    // Destination-side router died while the packet crossed the cable.
    // Record the ingress first so the sender's credit pool is refilled.
    ingress_of(pid) = ingress_pt;
    fault_drop_packet(pid, sh_r(rb), eng_r(rb).now());
    return;
  }
  routing::RouteState rs = pp.route;
  if (rs.level + 1 < kNumVcLevels) ++rs.level;  // crossed into a new group
  const topo::PortId qn = planner_.next_port(rb, pp.dst, rs);
  if (qn < 0) {
    // Faults only: no route onward from the landing router.
    ingress_of(pid) = ingress_pt;
    fault_drop_packet(pid, sh_r(rb), eng_r(rb).now());
    return;
  }
  const int qn_vc = vc_queue_index(pp.vc, rs.level);
  pp.route = rs;
  const std::size_t vqn = PortGrid::vq_index(grid_.port_index(rb, qn), qn_vc);
  // Occupancy is claimed at arrival (not at the remote sender's commit, as
  // in serial mode): local senders into this queue see the flits from now
  // until the packet's own ser_done frees them; the rank-3 link itself is
  // governed by the sender-side credit pool instead.
  grid_.occupancy_flits[vqn] += pp.flits;
  ingress_of(pid) = ingress_pt;
  ++pp.hops;
  ++st(sh_r(rb)).total_hops;
  fifo_push(grid_.q[vqn].head, grid_.q[vqn].tail, pid);
  try_start_port(rb, qn);
}

void Network::nic_rx_complete(topo::NodeId node, PacketId id) {
  Nic& nic = nics_[static_cast<std::size_t>(node)];
  const topo::RouterId r = nic.router;
  const topo::PortId ep = nic.eject_pt;
  sim::Engine& eng = eng_n(node);
  if (nic.rx_pending >= 0) {
    // Hand the skid-buffered packet to the rx unit, charge the port stall,
    // and release the ejection port.
    const PacketId next = nic.rx_pending;
    const std::size_t pt = grid_.port_index(r, ep);
    grid_.stall_ns_ctr[PortGrid::vq_index(pt, nic.rx_pending_vc)] +=
        eng.now() - nic.rx_pending_since;
    nic.rx_pending = -1;
    nic.rx_pending_since = -1;
    grid_.busy[pt] = 0;
    eng.schedule(rx_overhead_, [this, node, next] {
      ProfScope ps(profile_, kEvEjection);
      nic_rx_complete(node, next);
    });
  } else {
    nic.rx_busy = false;
  }
  deliver(id);
  try_start_port(r, ep);
}

void Network::deliver(PacketId id) {
  // Snapshot: the completion callback below may inject new messages, growing
  // the packet pool and invalidating references into it.
  const Packet snap = pkt(id);
  const int sh = sh_n(snap.dst);
  sim::Engine& eng = eng_n(snap.dst);
  ++st(sh).packets_delivered;
  if (tracer_ != nullptr)
    tracer_->record({eng.now(), monitor::TraceEvent::kDeliver, id, snap.src,
                     snap.dst, -1, snap.vc, snap.route.level,
                     snap.route.nonminimal});
  if (snap.vc == kVcResponse) {
    // Response arrives back at the original requester: ORB tracking.
    Nic& nic = nics_[static_cast<std::size_t>(snap.dst)];
    nic.ctr.rsp_time_sum_ns += eng.now() - snap.inject_time;
    ++nic.ctr.rsp_track_count;
    free_packet_from(id, sh);
    return;
  }
  DeliveryCallback cb;
  if (snap.msg >= 0) {
    if (se_ != nullptr) {
      // The message slab is host-owned: progress travels as mail and is
      // applied — running the completion callback at exhaustion — at the
      // next barrier, in canonical order. remaining_bytes only crosses zero
      // on the message's final payload record, so the slot is freed exactly
      // once no matter how deliveries interleave across shards. Progress is
      // a pure accumulation (only the final increment has a side effect),
      // so per-slot records within a window are folded into one: a
      // message's packets all land on the destination node's shard, making
      // the fold single-source, and the merged record keeps the final
      // increment's due — the canonical position of the zero crossing.
      sim::MailRecord rec;
      rec.due = eng.now();
      rec.kind = kMailMsgProgress;
      rec.key = msg_slot(snap.msg);
      rec.a = snap.bytes - header_bytes_;
      se_->post_mail_accum(sh, 0, rec);
    } else {
      const std::int32_t slot = msg_slot(snap.msg);
      MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
      m.remaining_bytes -= snap.bytes - header_bytes_;
      if (m.remaining_bytes <= 0) {
        cb = std::move(m.on_delivered);
        free_msg(slot);
      }
    }
  }
  if (snap.want_response) {
    // Reuse the packet as its own 1-flit response. Responses always route
    // minimally (the paper notes routing mode does not affect response
    // traffic) on the response VC.
    Packet& p = pkt(id);
    p.src = snap.dst;
    p.dst = snap.src;
    p.bytes = header_bytes_;
    p.flits = 1;
    p.vc = kVcResponse;
    p.want_response = false;
    p.route = routing::RouteState{};
    p.route.mode = snap.route.mode;
    p.hops = 0;
    p.msg = -1;
    Nic& nic = nics_[static_cast<std::size_t>(snap.dst)];
    fifo_push(nic.inject_head, nic.inject_tail, id);
    nic_try_inject(snap.dst);
  } else {
    free_packet_from(id, sh);
  }
  // Run the message-completion callback last, with no packet references
  // held: it typically resumes rank coroutines that post further traffic.
  if (cb) cb();
}

void Network::apply_mail(int dst, std::span<sim::MailRecord> records) {
  // Runs on the coordinator thread at a window barrier, records already in
  // canonical (due, kind, key, seq) order. Every shard engine sits exactly
  // at the barrier time, so direct state mutation here is equivalent to an
  // event at the barrier instant.
  for (const sim::MailRecord& rec : records) {
    switch (rec.kind) {
      case kMailCredit: {
        const auto pt = static_cast<std::size_t>(rec.key);
        r3_credits_[pt] += rec.a;
        try_start_port(pt_router_[pt], pt_port_[pt]);
        break;
      }
      case kMailFree:
        free_local(static_cast<PacketId>(rec.key));
        break;
      case kMailMsgProgress: {
        const auto slot = static_cast<std::int32_t>(rec.key);
        MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
        m.remaining_bytes -= rec.a;
        if (m.remaining_bytes <= 0) {
          DeliveryCallback cb = std::move(m.on_delivered);
          free_msg(slot);
          if (cb) cb();
        }
        break;
      }
      case kMailInject:
        apply_inject(static_cast<topo::NodeId>(rec.a >> 32),
                     static_cast<topo::NodeId>(rec.a & 0xffffffff), rec.b,
                     static_cast<MsgId>(rec.c),
                     static_cast<routing::Mode>(rec.d));
        break;
      case kMailMsgLost:
        // Ordered after kMailMsgProgress at the same barrier (enum order),
        // so a message that also completed here has already been recycled
        // and the gen check below makes this a no-op. Loss accumulation is
        // commutative, so seq-order ties across shards cannot matter.
        note_msg_loss(static_cast<std::int32_t>(rec.key),
                      static_cast<std::uint32_t>(rec.b), rec.a);
        break;
      case kMailArrive: {
        const auto pid = static_cast<PacketId>(rec.a);
        const auto pt = static_cast<std::int32_t>(rec.b);
        const auto rb = static_cast<topo::RouterId>(rec.c);
        // Arrival is strictly in the future (link delta >= lookahead):
        // becomes an ordinary event on the destination shard.
        se_->shard(dst).schedule_at(rec.due, [this, pid, rb, pt] {
          r3_arrive(pid, rb, pt);
        });
        break;
      }
      default:
        break;
    }
  }
}

void Network::ensure_fault_state() {
  if (fault_on_) return;
  const std::size_t np = grid_.num_ports();
  const auto nr = static_cast<std::size_t>(topo_.num_routers());
  health_.port_dead.assign(np, 0);
  health_.router_dead.assign(nr, 0);
  health_.penalty_q8.assign(np, fault::kPenaltyUnit);
  bw_pristine_.resize(np);
  for (std::size_t pt = 0; pt < np; ++pt)
    bw_pristine_[pt] = port_hot_[pt].bw_gbps;
  fault_sh_.assign(pools_.size(), FaultShardCounters{});
  degr_last_ = engine_.now();
  planner_.set_fault_tables(routing::FaultTables{
      health_.port_dead.data(), health_.router_dead.data(),
      health_.penalty_q8.data()});
  fault_on_ = true;  // set last: port_dead()/router_dead() gate on it
}

void Network::apply_fault_plan(const fault::FaultPlan& plan) {
  if (plan.empty()) return;
  ensure_fault_state();
  const Tick base = engine_.now();
  // Canonical order + a fixed barrier grid (sharded lookahead windows are
  // partition-independent) keep fault application deterministic for any
  // shard count. Past times clamp to "now".
  for (const fault::FaultEvent& ev : plan.canonical()) {
    const Tick at = std::max(ev.at, base);
    if (se_ != nullptr)
      se_->schedule_global(at, [this, ev] { apply_fault_event(ev); });
    else
      engine_.schedule_at(at, [this, ev] { apply_fault_event(ev); });
  }
}

void Network::apply_fault_event(const fault::FaultEvent& ev) {
  const Tick now = engine_.now();
  switch (ev.kind) {
    case fault::FaultKind::kLinkFail:
      fault_fail_link(ev.router, ev.port, now);
      break;
    case fault::FaultKind::kLinkDegrade:
      fault_degrade_link(ev.router, ev.port, ev.factor, now);
      break;
    case fault::FaultKind::kRouterFail:
      fault_fail_router(ev.router, now);
      break;
    case fault::FaultKind::kRepair:
      fault_repair(ev.router, ev.port, now);
      break;
  }
}

void Network::fault_fail_link(topo::RouterId r, topo::PortId p, Tick now) {
  const topo::PortInfo& pi = topo_.port(r, p);
  fault_fail_port_one_way(r, p, now);
  if (pi.peer_router >= 0 && pi.peer_port >= 0)
    fault_fail_port_one_way(pi.peer_router, pi.peer_port, now);
  ++fault_ctr_.faults_applied;
  fault_recompute_for(r, p);
}

void Network::fault_fail_port_one_way(topo::RouterId r, topo::PortId p,
                                      Tick now) {
  const std::size_t pt = grid_.port_index(r, p);
  if (health_.port_dead[pt] != 0) return;
  // A degraded port that subsequently fails stops accruing the degraded
  // integral (failure is accounted through drops, not bandwidth-seconds).
  if (health_.penalty_q8[pt] != fault::kPenaltyUnit) {
    accrue_degraded(now);
    degr_rate_sum_ -= bw_pristine_[pt] - port_hot_[pt].bw_gbps;
    port_hot_[pt].bw_gbps = bw_pristine_[pt];
    health_.penalty_q8[pt] = fault::kPenaltyUnit;
  }
  health_.port_dead[pt] = 1;
  drop_port_queues(r, p, now);
}

void Network::fault_restore_port_one_way(topo::RouterId r, topo::PortId p,
                                         Tick now) {
  // Ports of a dead router stay down until the router itself repairs.
  if (health_.router_dead[static_cast<std::size_t>(r)] != 0) return;
  const std::size_t pt = grid_.port_index(r, p);
  if (health_.penalty_q8[pt] != fault::kPenaltyUnit) {
    accrue_degraded(now);
    degr_rate_sum_ -= bw_pristine_[pt] - port_hot_[pt].bw_gbps;
    health_.penalty_q8[pt] = fault::kPenaltyUnit;
  }
  port_hot_[pt].bw_gbps = bw_pristine_[pt];
  if (health_.port_dead[pt] != 0) {
    health_.port_dead[pt] = 0;
    // Rank-3 credits conserve across drops (every consumed credit is
    // returned exactly once, including on the drop paths), so no reset is
    // needed; just offer the port to any requeued traffic.
    try_start_port(r, p);
  }
}

void Network::fault_set_degrade_one_way(topo::RouterId r, topo::PortId p,
                                        double factor, Tick now) {
  const std::size_t pt = grid_.port_index(r, p);
  if (health_.port_dead[pt] != 0) return;  // dead dominates degraded
  accrue_degraded(now);
  degr_rate_sum_ -= bw_pristine_[pt] - port_hot_[pt].bw_gbps;
  port_hot_[pt].bw_gbps = bw_pristine_[pt] * factor;
  degr_rate_sum_ += bw_pristine_[pt] * (1.0 - factor);
  // Bias divisor: a link at 1/4 bandwidth looks 4x as loaded to AD0-AD3.
  health_.penalty_q8[pt] = static_cast<std::uint16_t>(
      std::min<long>(65535, std::lround(256.0 / factor)));
}

void Network::fault_degrade_link(topo::RouterId r, topo::PortId p,
                                 double factor, Tick now) {
  factor = std::clamp(factor, 0.05, 1.0);
  const topo::PortInfo& pi = topo_.port(r, p);
  fault_set_degrade_one_way(r, p, factor, now);
  if (pi.peer_router >= 0 && pi.peer_port >= 0)
    fault_set_degrade_one_way(pi.peer_router, pi.peer_port, factor, now);
  ++fault_ctr_.faults_applied;
  // No reachability change: degraded links still forward, only the planner's
  // load scoring shifts (via penalty_q8), so no table recompute is needed.
}

void Network::fault_fail_router(topo::RouterId r, Tick now) {
  if (health_.router_dead[static_cast<std::size_t>(r)] != 0) return;
  health_.router_dead[static_cast<std::size_t>(r)] = 1;
  const int np = topo_.num_ports(r);
  for (topo::PortId p = 0; p < np; ++p) {
    const topo::PortInfo& pi = topo_.port(r, p);
    fault_fail_port_one_way(r, p, now);
    if (pi.peer_router >= 0 && pi.peer_port >= 0)
      fault_fail_port_one_way(pi.peer_router, pi.peer_port, now);
  }
  // The attached NICs can never drain their injection queues; discard them
  // so message retries (and eventual abandonment) keep senders live.
  const topo::NodeId nf = topo_.node_first(r);
  for (int k = 0; k < topo_.node_count(r); ++k) {
    const auto n = static_cast<topo::NodeId>(nf + k);
    Nic& nic = nics_[static_cast<std::size_t>(n)];
    nic.stall_since = -1;
    const int shn = sh_n(n);
    while (nic.inject_head >= 0)
      fault_drop_packet(fifo_pop(nic.inject_head, nic.inject_tail), shn, now,
                        /*injected=*/false);
  }
  ++fault_ctr_.faults_applied;
  const topo::GroupId g = topo_.group_of_router(r);
  planner_.recompute_local(g);
  ++fault_ctr_.recomputes;
  for (topo::PortId p = 0; p < np; ++p) {
    const topo::PortInfo& pi = topo_.port(r, p);
    if (pi.cls == TileClass::kRank3) {
      planner_.recompute_gateway_pair(g, pi.target_group);
      planner_.recompute_gateway_pair(pi.target_group, g);
      fault_ctr_.recomputes += 2;
    }
  }
}

void Network::fault_repair(topo::RouterId r, topo::PortId p, Tick now) {
  if (p >= 0) {
    const topo::PortInfo& pi = topo_.port(r, p);
    fault_restore_port_one_way(r, p, now);
    if (pi.peer_router >= 0 && pi.peer_port >= 0)
      fault_restore_port_one_way(pi.peer_router, pi.peer_port, now);
    ++fault_ctr_.repairs_applied;
    fault_recompute_for(r, p);
    return;
  }
  // Router repair: the router and all of its links come back pristine.
  health_.router_dead[static_cast<std::size_t>(r)] = 0;
  const int np = topo_.num_ports(r);
  for (topo::PortId q = 0; q < np; ++q) {
    const topo::PortInfo& pi = topo_.port(r, q);
    fault_restore_port_one_way(r, q, now);
    if (pi.peer_router >= 0 && pi.peer_port >= 0)
      fault_restore_port_one_way(pi.peer_router, pi.peer_port, now);
  }
  ++fault_ctr_.repairs_applied;
  const topo::GroupId g = topo_.group_of_router(r);
  planner_.recompute_local(g);
  ++fault_ctr_.recomputes;
  for (topo::PortId q = 0; q < np; ++q) {
    const topo::PortInfo& pi = topo_.port(r, q);
    if (pi.cls == TileClass::kRank3) {
      planner_.recompute_gateway_pair(g, pi.target_group);
      planner_.recompute_gateway_pair(pi.target_group, g);
      fault_ctr_.recomputes += 2;
    }
  }
  // Wake the attached NICs: queued sends may now inject.
  const topo::NodeId nf = topo_.node_first(r);
  for (int k = 0; k < topo_.node_count(r); ++k)
    nic_try_inject(static_cast<topo::NodeId>(nf + k));
}

void Network::fault_recompute_for(topo::RouterId r, topo::PortId p) {
  const topo::PortInfo& pi = topo_.port(r, p);
  const topo::GroupId g = topo_.group_of_router(r);
  if (pi.cls == TileClass::kRank3) {
    planner_.recompute_gateway_pair(g, pi.target_group);
    planner_.recompute_gateway_pair(pi.target_group, g);
    fault_ctr_.recomputes += 2;
  } else {
    planner_.recompute_local(g);
    ++fault_ctr_.recomputes;
  }
}

void Network::drop_port_queues(topo::RouterId r, topo::PortId p, Tick now) {
  const std::size_t pt = grid_.port_index(r, p);
  const int sh = sh_r(r);
  for (int vc = 0; vc < kNumVcs; ++vc) {
    const std::size_t vq = PortGrid::vq_index(pt, vc);
    if (grid_.stall_since[vq] >= 0) {
      grid_.stall_ns_ctr[vq] += now - grid_.stall_since[vq];
      grid_.stall_since[vq] = -1;
    }
    while (grid_.q[vq].head >= 0) {
      const PacketId pid = fifo_pop(grid_.q[vq].head, grid_.q[vq].tail);
      grid_.occupancy_flits[vq] -= pkt(pid).flits;
      fault_drop_packet(pid, sh, now);
    }
    notify_waiters(vq, sh);
  }
}

void Network::fault_drop_packet(PacketId pid, int sh, Tick now, bool injected) {
  Packet& p = pkt(pid);
  FaultShardCounters& fc = fault_sh_[static_cast<std::size_t>(sh)];
  ++fc.dropped;
  if (!injected) ++fc.dropped_preinject;
  post_ingress_credit(pid, p.flits, now, sh);
  if (p.msg >= 0) {
    const std::int64_t lost = p.bytes - header_bytes_;
    const std::int32_t slot = msg_slot(p.msg);
    const auto gen = static_cast<std::uint32_t>(p.msg >> 32);
    if (se_ == nullptr) {
      note_msg_loss(slot, gen, lost);
    } else {
      sim::MailRecord rec;
      rec.due = now;
      rec.kind = kMailMsgLost;
      rec.key = slot;
      rec.a = lost;
      rec.b = static_cast<std::int64_t>(gen);
      se_->post_mail(sh, 0, rec);
    }
  }
  // Response packets (msg < 0) vanish silently: the requester's ORB latency
  // tracking simply never counts them, and no liveness hangs on them.
  free_packet_from(pid, sh);
}

void Network::note_msg_loss(std::int32_t slot, std::uint32_t gen,
                            std::int64_t bytes) {
  MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
  if ((m.gen & 0x7fffffffu) != gen) return;  // message already completed
  m.lost_bytes += bytes;
  if (!m.retry_armed) {
    m.retry_armed = true;
    // One timer batches every loss within the timeout window into a single
    // re-injection. Host-owned slab: the timer runs in globally-ordered
    // context (plain event serially, barrier callback sharded).
    const std::uint32_t g32 = m.gen;
    auto fire = [this, slot, g32] { msg_retry(slot, g32); };
    if (se_ != nullptr)
      se_->schedule_global(engine_.now() + retry_timeout_, std::move(fire));
    else
      engine_.schedule(retry_timeout_, std::move(fire));
  }
}

void Network::msg_retry(std::int32_t slot, std::uint32_t gen) {
  MsgRec& m = msg_pool_[static_cast<std::size_t>(slot)];
  if (m.gen != gen) return;  // completed and recycled since the timer armed
  m.retry_armed = false;
  const std::int64_t lost = m.lost_bytes;
  if (lost <= 0) return;
  m.lost_bytes = 0;
  if (m.retries >= max_retries_) {
    // Graceful degradation: write the lost payload off so the message (and
    // the rank coroutine blocked on it) completes rather than hangs.
    ++fault_ctr_.messages_abandoned;
    fault_ctr_.bytes_abandoned += lost;
    m.remaining_bytes -= lost;
    if (m.remaining_bytes <= 0) {
      DeliveryCallback cb = std::move(m.on_delivered);
      free_msg(slot);
      if (cb) cb();
    }
    return;
  }
  ++m.retries;
  ++fault_ctr_.messages_retried;
  const MsgId id = (static_cast<MsgId>(m.gen & 0x7fffffffu) << 32) |
                   static_cast<MsgId>(slot);
  if (se_ != nullptr) {
    sim::MailRecord rec;
    rec.due = engine_.now();
    rec.kind = kMailInject;
    rec.key = static_cast<std::int64_t>(inject_seq_++);
    rec.a = (static_cast<std::int64_t>(m.src) << 32) |
            static_cast<std::uint32_t>(m.dst);
    rec.b = lost;
    rec.c = static_cast<std::int64_t>(id);
    rec.d = static_cast<std::int64_t>(m.mode);
    se_->post_mail(0, sh_n(m.src), rec);
  } else {
    apply_inject(m.src, m.dst, lost, id, static_cast<routing::Mode>(m.mode));
  }
}

void Network::accrue_degraded(Tick now) {
  if (now > degr_last_)
    fault_ctr_.degraded_bw_gbs +=
        degr_rate_sum_ * static_cast<double>(now - degr_last_) * 1e-9;
  degr_last_ = now;
}

fault::FaultStats Network::fault_stats() const {
  fault::FaultStats s = fault_ctr_;
  if (fault_on_) {
    const Tick now = engine_.now();
    if (now > degr_last_)
      s.degraded_bw_gbs +=
          degr_rate_sum_ * static_cast<double>(now - degr_last_) * 1e-9;
    for (const FaultShardCounters& f : fault_sh_) {
      s.packets_dropped += f.dropped;
      s.dead_link_transmissions += f.dead_tx;
    }
    s.packets_rerouted = planner_.rerouted_count();
  }
  return s;
}

CounterSnapshot Network::snapshot_all() const {
  CounterSnapshot s;
  const std::size_t np = grid_.num_ports();
  for (std::size_t pt = 0; pt < np; ++pt) {
    const auto cls = static_cast<TileClass>(grid_.tile_cls[pt]);
    const std::size_t base = PortGrid::vq_index(pt, 0);
    for (int vc = 0; vc < kNumVcs; ++vc) {
      const std::size_t q = base + static_cast<std::size_t>(vc);
      ClassCounters* c = nullptr;
      switch (cls) {
        case TileClass::kRank1: c = &s.rank1; break;
        case TileClass::kRank2: c = &s.rank2; break;
        case TileClass::kRank3: c = &s.rank3; break;
        case TileClass::kProc:
          c = vc_plane(vc) == kVcRequest ? &s.proc_req : &s.proc_rsp;
          break;
      }
      c->flits += grid_.flits_ctr[q];
      c->stall_ns += grid_.stall_ns_ctr[q];
    }
  }
  for (const auto& nic : nics_) {
    s.proc_req.flits += nic.ctr.inj_flits[0];
    s.proc_req.stall_ns += nic.ctr.inj_stall_ns[0];
    s.proc_rsp.flits += nic.ctr.inj_flits[1];
    s.proc_rsp.stall_ns += nic.ctr.inj_stall_ns[1];
    s.nic_rsp_time_sum_ns += nic.ctr.rsp_time_sum_ns;
    s.nic_rsp_track_count += nic.ctr.rsp_track_count;
  }
  return s;
}

CounterSnapshot Network::snapshot_routers(
    std::span<const topo::RouterId> rs) const {
  CounterSnapshot s;
  for (const topo::RouterId r : rs) {
    const int nports = grid_.ports_of_router(r);
    for (topo::PortId p = 0; p < nports; ++p) {
      const std::size_t pt = grid_.port_index(r, p);
      const auto cls = static_cast<TileClass>(grid_.tile_cls[pt]);
      const std::size_t base = PortGrid::vq_index(pt, 0);
      for (int vc = 0; vc < kNumVcs; ++vc) {
        const std::size_t q = base + static_cast<std::size_t>(vc);
        ClassCounters* c = nullptr;
        switch (cls) {
          case TileClass::kRank1: c = &s.rank1; break;
          case TileClass::kRank2: c = &s.rank2; break;
          case TileClass::kRank3: c = &s.rank3; break;
          case TileClass::kProc:
            c = vc_plane(vc) == kVcRequest ? &s.proc_req : &s.proc_rsp;
            break;
        }
        c->flits += grid_.flits_ctr[q];
        c->stall_ns += grid_.stall_ns_ctr[q];
      }
    }
    for (int k = 0; k < topo_.node_count(r); ++k) {
      const auto n = static_cast<std::size_t>(topo_.node_first(r) + k);
      const auto& nic = nics_[n];
      s.proc_req.flits += nic.ctr.inj_flits[0];
      s.proc_req.stall_ns += nic.ctr.inj_stall_ns[0];
      s.proc_rsp.flits += nic.ctr.inj_flits[1];
      s.proc_rsp.stall_ns += nic.ctr.inj_stall_ns[1];
      s.nic_rsp_time_sum_ns += nic.ctr.rsp_time_sum_ns;
      s.nic_rsp_track_count += nic.ctr.rsp_track_count;
    }
  }
  return s;
}

}  // namespace dfsim::net
