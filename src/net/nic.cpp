// NIC is passive state; the injection/rx engine lives in net/network.cpp.
#include "net/nic.hpp"
