// Simulation packets.
//
// Messages are segmented into fixed-granularity simulation packets; each
// packet carries its own adaptive routing state (Aries routes every packet
// independently — paper abstract). Request packets travel on VC 0 and
// optionally trigger a 1-flit response on VC 1, which the source NIC's ORB
// uses for packet-pair latency tracking (paper Section V-D).
#pragma once

#include <cstdint>

#include "routing/adaptive.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::net {

using PacketId = std::int32_t;
using MsgId = std::int64_t;

// Two traffic planes (request / response) x three VC levels. The level
// increments on every group crossing (and when an intra-group Valiant
// packet passes its intermediate router), the standard dragonfly
// deadlock-avoidance ladder: within a level, local routing is row-first
// (rank-1 then rank-2) and therefore acyclic; crossings only move to higher
// levels, so no cyclic buffer-wait can form.
inline constexpr int kVcRequest = 0;   ///< plane index
inline constexpr int kVcResponse = 1;  ///< plane index
inline constexpr int kNumPlanes = 2;
inline constexpr int kNumVcLevels = routing::kVcLadderLevels;
inline constexpr int kNumVcs = kNumPlanes * kNumVcLevels;  ///< buffer queues

/// Buffer-queue index for a plane (kVcRequest/kVcResponse) and ladder level.
constexpr int vc_queue_index(int plane, int level) {
  const int l = level < kNumVcLevels ? level : kNumVcLevels - 1;
  return plane * kNumVcLevels + l;
}
/// Plane of a buffer-queue index (for counter classification).
constexpr int vc_plane(int queue_index) { return queue_index / kNumVcLevels; }

/// Field order packs a Packet into one 64-byte cache line: every packet is
/// touched at random pool offsets by the forwarding hot path, so a fetch
/// costs exactly one line instead of two.
struct Packet {
  topo::NodeId src = -1;
  topo::NodeId dst = -1;
  std::int32_t bytes = 0;  ///< wire bytes incl. header
  std::int32_t flits = 0;
  routing::RouteState route;
  /// Intrusive link: successor in whichever FIFO (VC queue, NIC injection
  /// queue) or free list currently holds this packet. A packet is in at
  /// most one list at a time, so one link suffices — queues are just
  /// {head, tail} id pairs and never heap-allocate.
  PacketId next = -1;
  sim::Tick inject_time = 0;  ///< request injection time (carried into rsp)
  MsgId msg = -1;             ///< owning message; -1 for responses
  std::int16_t hops = 0;
  std::uint8_t vc = kVcRequest;
  bool want_response = false;
  bool in_use = false;
};
static_assert(sizeof(Packet) <= 64);

}  // namespace dfsim::net
