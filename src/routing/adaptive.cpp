#include "routing/adaptive.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>

namespace dfsim::routing {

RoutePlanner::RoutePlanner(const topo::Topology& topo, const LoadOracle& loads,
                           sim::Rng rng)
    : topo_(topo), loads_(loads), rng_(std::move(rng)) {
  build_tables();
}

void RoutePlanner::enable_group_rngs(std::uint64_t seed) {
  group_rngs_.clear();
  group_rngs_.reserve(static_cast<std::size_t>(groups_));
  for (int g = 0; g < groups_; ++g)
    group_rngs_.emplace_back(
        seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(g + 1)));
}

void RoutePlanner::build_tables() {
  rpg_ = topo_.routers_per_group();
  groups_ = topo_.groups();
  const int nr = topo_.num_routers();

  group_of_.resize(static_cast<std::size_t>(nr));
  eject_base_.resize(static_cast<std::size_t>(nr));
  for (topo::RouterId r = 0; r < nr; ++r) {
    group_of_[static_cast<std::size_t>(r)] = topo_.group_of_router(r);
    eject_base_[static_cast<std::size_t>(r)] =
        static_cast<topo::PortId>(topo_.proc_port_base(r));
  }

  // First-hop port toward every router of the same group, as chosen by the
  // topology's deterministic pristine rule (the dragonfly picks rank-1
  // first). A deterministic order keeps the within-level channel dependency
  // graph acyclic, which the VC ladder's deadlock-freedom argument relies
  // on. -1 on the diagonal (t == r). This is the only place the planner
  // touches a topology virtual — construction time, never per packet.
  local_first_.resize(static_cast<std::size_t>(nr) *
                      static_cast<std::size_t>(rpg_));
  for (topo::RouterId r = 0; r < nr; ++r) {
    const topo::GroupId g = group_of_[static_cast<std::size_t>(r)];
    const topo::RouterId base = static_cast<topo::RouterId>(g * rpg_);
    for (int s = 0; s < rpg_; ++s) {
      const topo::RouterId t = base + s;
      local_first_[static_cast<std::size_t>(r) * static_cast<std::size_t>(rpg_) +
                   static_cast<std::size_t>(s)] = topo_.local_first_hop(r, t);
    }
  }

  // CSR copies of the topology's per-(router, target group) rank-3 port
  // lists and per-(group, target group) gateway lists, in the topology's
  // iteration order (gateway sampling order must not change).
  gp_off_.assign(static_cast<std::size_t>(nr) * groups_ + 1, 0);
  for (topo::RouterId r = 0; r < nr; ++r) {
    for (topo::GroupId tg = 0; tg < groups_; ++tg) {
      const auto ports = topo_.global_ports_to(r, tg);
      gp_ports_.insert(gp_ports_.end(), ports.begin(), ports.end());
      gp_off_[static_cast<std::size_t>(r) * groups_ + tg + 1] =
          static_cast<std::uint32_t>(gp_ports_.size());
    }
  }
  gw_off_.assign(static_cast<std::size_t>(groups_) * groups_ + 1, 0);
  for (topo::GroupId g = 0; g < groups_; ++g) {
    for (topo::GroupId tg = 0; tg < groups_; ++tg) {
      const auto gws = topo_.gateways(g, tg);
      gw_list_.insert(gw_list_.end(), gws.begin(), gws.end());
      gw_off_[static_cast<std::size_t>(g) * groups_ + tg + 1] =
          static_cast<std::uint32_t>(gw_list_.size());
    }
  }
}

std::int64_t RoutePlanner::local_first_load(topo::RouterId r,
                                            topo::RouterId t) const {
  const topo::PortId p = local_first_port(r, t);
  // Under faults the BFS table marks unreachable targets with -1.
  if (faults_on_ && p < 0) return std::numeric_limits<std::int64_t>::max();
  return load_units(r, p);
}

topo::PortId RoutePlanner::best_global_port(topo::RouterId r,
                                            topo::GroupId tg) const {
  const auto ports = global_ports(r, tg);
  if (faults_on_) {
    // Fault-aware scalar pass: skip dead cables; -1 when none are left.
    topo::PortId best = -1;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    for (const topo::PortId p : ports) {
      if (!port_ok(r, p)) continue;
      const std::int64_t l = load_units(r, p);
      if (l < best_load) {
        best_load = l;
        best = p;
      }
    }
    return best;
  }
  // Branchless strict-< first-wins argmin: the loads are independent array
  // reads, so the loop body is straight-line selects the compiler can
  // pipeline instead of a compare-and-branch per port.
  std::size_t best = 0;
  std::int64_t best_load = load_units(r, ports.front());
  for (std::size_t i = 1; i < ports.size(); ++i) {
    const std::int64_t l = load_units(r, ports[i]);
    const bool lt = l < best_load;
    best = lt ? i : best;
    best_load = lt ? l : best_load;
  }
  return ports[best];
}

bool RoutePlanner::has_alive_global_port(topo::RouterId r,
                                         topo::GroupId tg) const {
  for (const topo::PortId p : global_ports(r, tg))
    if (port_ok(r, p)) return true;
  return false;
}

topo::GroupId RoutePlanner::fallback_via(topo::GroupId g,
                                         topo::GroupId gd) const {
  for (topo::GroupId cand = 0; cand < groups_; ++cand) {
    if (cand == g || cand == gd) continue;
    if (groups_connected(g, cand) && groups_connected(cand, gd)) return cand;
  }
  return -1;
}

std::int64_t RoutePlanner::rerouted_count() const {
  std::int64_t n = 0;
  for (const std::int64_t v : rerouted_) n += v;
  return n;
}

void RoutePlanner::set_fault_tables(const FaultTables& t) {
  assert(view_.occupancy != nullptr && view_.port_base != nullptr);
  assert(t.port_dead != nullptr && t.router_dead != nullptr &&
         t.penalty_q8 != nullptr);
  fault_ = t;
  faults_on_ = true;
  local_first_pristine_ = local_first_;
  rerouted_.assign(static_cast<std::size_t>(groups_), 0);
  gw_alive_.assign(static_cast<std::size_t>(groups_) * groups_, 0);
  for (topo::GroupId g = 0; g < groups_; ++g)
    for (topo::GroupId tg = 0; tg < groups_; ++tg)
      if (g != tg) recompute_gateway_pair(g, tg);
}

void RoutePlanner::recompute_gateway_pair(topo::GroupId g, topo::GroupId tg) {
  if (g == tg) return;
  std::int32_t alive = 0;
  for (const auto& gw : gateways(g, tg))
    if (router_ok(gw.router) && has_alive_global_port(gw.router, tg)) ++alive;
  gw_alive_[static_cast<std::size_t>(g) * groups_ +
            static_cast<std::size_t>(tg)] = alive;
}

void RoutePlanner::recompute_local(topo::GroupId g) {
  const auto base_r = static_cast<topo::RouterId>(g * rpg_);
  // Local ports of router r are [0, topo_.local_end(r)) — per router, not
  // uniform: Dragonfly+ leaves and spines have different local degrees.
  const std::size_t row0 =
      static_cast<std::size_t>(base_r) * static_cast<std::size_t>(rpg_);
  const std::size_t cells =
      static_cast<std::size_t>(rpg_) * static_cast<std::size_t>(rpg_);

  bool any_fault = false;
  for (int i = 0; i < rpg_ && !any_fault; ++i) {
    const topo::RouterId r = base_r + i;
    if (!router_ok(r)) {
      any_fault = true;
      break;
    }
    const topo::PortId lend = topo_.local_end(r);
    for (topo::PortId p = 0; p < lend; ++p)
      if (!port_ok(r, p)) {
        any_fault = true;
        break;
      }
  }
  if (!any_fault) {
    // Group fully healthy (e.g. after repair): restore the pristine rows.
    std::copy_n(local_first_pristine_.begin() +
                    static_cast<std::ptrdiff_t>(row0),
                cells, local_first_.begin() + static_cast<std::ptrdiff_t>(row0));
    return;
  }

  // Per-source BFS over healthy intra-group links. Neighbor iteration in
  // port order gives a deterministic tie-break that reproduces the pristine
  // rank-1-first two-hop choice on healthy paths.
  const auto n = static_cast<std::size_t>(rpg_);
  for (int si = 0; si < rpg_; ++si) {
    const topo::RouterId s = base_r + si;
    topo::PortId* row = local_first_.data() + row0 +
                        static_cast<std::size_t>(si) * n;
    std::fill(row, row + n, static_cast<topo::PortId>(-1));
    if (!router_ok(s)) continue;
    bfs_dist_.assign(n, -1);
    bfs_first_.assign(n, static_cast<topo::PortId>(-1));
    bfs_queue_.clear();
    bfs_queue_.push_back(si);
    bfs_dist_[static_cast<std::size_t>(si)] = 0;
    for (std::size_t qi = 0; qi < bfs_queue_.size(); ++qi) {
      const int ui = bfs_queue_[qi];
      const topo::RouterId u = base_r + ui;
      const topo::PortId lend = topo_.local_end(u);
      for (topo::PortId p = 0; p < lend; ++p) {
        if (!port_ok(u, p)) continue;
        const topo::RouterId v = topo_.port(u, p).peer_router;
        if (!router_ok(v)) continue;
        const auto vi = static_cast<std::size_t>(v - base_r);
        if (bfs_dist_[vi] >= 0) continue;
        bfs_dist_[vi] = bfs_dist_[static_cast<std::size_t>(ui)] + 1;
        bfs_first_[vi] = ui == si ? p : bfs_first_[static_cast<std::size_t>(ui)];
        bfs_queue_.push_back(static_cast<std::int32_t>(vi));
      }
    }
    for (std::size_t ti = 0; ti < n; ++ti)
      if (ti != static_cast<std::size_t>(si)) row[ti] = bfs_first_[ti];
  }
}

topo::RouterId RoutePlanner::pick_gateway_fault(topo::RouterId r,
                                                topo::GroupId tg,
                                                std::int64_t* score_out) {
  // Fault-aware twin of pick_gateway: same candidate structure (self first,
  // then kGatewaySample random draws — the RNG draw count per decision is
  // fixed, keeping the stream partition-independent), but dead routers,
  // dead cables, and locally-unreachable gateways are skipped. Returns -1
  // when no usable gateway remains (caller drops or falls back).
  const topo::GroupId g = group_of(r);
  const auto gws = gateways(g, tg);
  sim::Rng& rng = rng_for(g);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

  topo::RouterId best = -1;
  std::int64_t best_score = kInf;
  if (router_ok(r) && has_alive_global_port(r, tg)) {
    best = r;
    best_score = load_units(r, best_global_port(r, tg));
  }
  const int samples =
      std::min<int>(kGatewaySample, static_cast<int>(gws.size()));
  for (int i = 0; i < samples; ++i) {
    const auto& gw = gws[rng.uniform_u64(gws.size())];
    const topo::RouterId gr = gw.router;
    if (gr == r) continue;  // self is candidate 0
    if (!router_ok(gr)) continue;
    const topo::PortId p0 = local_first_port(r, gr);
    if (p0 < 0) continue;  // group partition: gateway unreachable locally
    if (!has_alive_global_port(gr, tg)) continue;
    // Score with the listed cable when alive, else the gateway's best one.
    const topo::PortId gp =
        port_ok(gr, gw.port) ? gw.port : best_global_port(gr, tg);
    const std::int64_t s = load_units(r, p0) + load_units(gr, gp);
    if (s < best_score) {
      best_score = s;
      best = gr;
    }
  }
  if (score_out != nullptr) *score_out = best_score;
  return best;
}

topo::RouterId RoutePlanner::pick_gateway(topo::RouterId r, topo::GroupId tg,
                                          std::int64_t* score_out) {
  if (faults_on_) return pick_gateway_fault(r, tg, score_out);
  const topo::GroupId g = group_of(r);
  const auto gws = gateways(g, tg);
  sim::Rng& rng = rng_for(g);
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

  // Hop-event hot path (half the wall in profile): gather candidates into a
  // flat array, then score and select in straight-line passes instead of a
  // branchy sample loop. Candidate 0 is the router itself when it owns a
  // cable toward tg (no local hop needed; scored by its best global port);
  // candidates after that are the random gateway samples, drawn in the exact
  // order the scalar loop drew them so the RNG stream is unchanged.
  topo::RouterId cand[1 + kGatewaySample];
  topo::PortId gport[kGatewaySample];
  std::int64_t score[1 + kGatewaySample];
  int base = 0;
  if (!global_ports(r, tg).empty()) {
    cand[0] = r;
    score[0] = load_units(r, best_global_port(r, tg));
    base = 1;
  }
  const int samples =
      std::min<int>(kGatewaySample, static_cast<int>(gws.size()));
  for (int i = 0; i < samples; ++i) {
    const auto& gw = gws[rng.uniform_u64(gws.size())];
    cand[base + i] = gw.router;
    gport[i] = gw.port;
  }
  // Scoring pass, no data-dependent branches. A sample that drew the router
  // itself has no local first hop (the table diagonal is -1): clamp the port
  // to 0 — any in-bounds read, the value is discarded — and force the score
  // to +inf. A self-sample implies r owns a cable, so candidate 0 exists and
  // the +inf entry can never be selected.
  for (int i = 0; i < samples; ++i) {
    const topo::RouterId gr = cand[base + i];
    const topo::PortId p0 = local_first_port(r, gr);
    const std::int64_t s = load_units(r, p0 < 0 ? 0 : p0) +
                           load_units(gr, gport[i]);
    score[base + i] = gr == r ? kInf : s;
  }
  // Strict-< first-wins argmin — identical tie-breaking to the scalar loop
  // (candidate 0 beats an equal-scored sample; earlier sample beats later).
  const int n = base + samples;
  int best = 0;
  std::int64_t best_score = kInf;
  for (int i = 0; i < n; ++i) {
    const bool lt = score[i] < best_score;
    best = lt ? i : best;
    best_score = lt ? score[i] : best_score;
  }
  topo::RouterId best_router = best_score != kInf ? cand[best] : -1;
  if (best_router < 0) {
    // No global ports here and every sample drew this router — impossible —
    // or there were no candidates at all (n == 0 requires an empty gateway
    // list). Preserve the scalar loop's fallback: take the first gateway.
    best_router = gws.front().router;
    best_score = local_first_load(r, best_router) +
                 load_units(gws.front().router, gws.front().port);
  }
  if (score_out != nullptr) *score_out = best_score;
  return best_router;
}

std::int64_t RoutePlanner::gateway_score(topo::RouterId r, topo::GroupId tg) {
  std::int64_t score = 0;
  (void)pick_gateway(r, tg, &score);
  return score;
}

void RoutePlanner::decide_injection(topo::RouterId src_router, topo::NodeId dst,
                                    RouteState& state) {
  const BiasParams params = params_for(state.mode);
  const topo::RouterId dst_router = topo_.router_of_node(dst);
  if (src_router == dst_router) return;  // NIC-to-NIC on one router: minimal
  const topo::GroupId gs = group_of(src_router);
  const topo::GroupId gd = group_of(dst_router);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

  if (gs == gd) {
    // Intra-group: non-minimal = Valiant via a random intermediate router.
    const std::int64_t load_min = local_first_load(src_router, dst_router);
    topo::RouterId via = -1;
    for (int attempt = 0; attempt < 4 && via < 0; ++attempt) {
      const auto cand = static_cast<topo::RouterId>(
          gs * rpg_ + static_cast<int>(rng_for(gs).uniform_u64(rpg_)));
      if (cand != src_router && cand != dst_router) via = cand;
    }
    if (via < 0) return;  // tiny group, no intermediate available
    // Under faults a dead/unreachable intermediate makes the detour useless
    // (and an unreachable destination is dropped at next_port regardless).
    if (faults_on_ && (!router_ok(via) || load_min == kInf)) return;
    const std::int64_t load_nonmin = local_first_load(src_router, via);
    if (faults_on_ && load_nonmin == kInf) return;
    if (!choose_minimal(load_min, load_nonmin, 0, params)) {
      state.nonminimal = true;
      state.via_router = via;
    }
    return;
  }

  if (faults_on_ && !groups_connected(gs, gd)) {
    // No alive gateway toward the destination group: force a Valiant detour
    // through the first group that still connects both sides (no RNG draws —
    // the choice must not depend on sampling luck). next_port drops the
    // packet if even that fails.
    const topo::GroupId fb = fallback_via(gs, gd);
    if (fb >= 0) {
      state.nonminimal = true;
      state.via_group = fb;
      ++rerouted_[static_cast<std::size_t>(gs)];
    }
    return;
  }

  // Inter-group: non-minimal = Valiant via a random intermediate group.
  std::int64_t load_min = 0;
  (void)pick_gateway(src_router, gd, &load_min);
  topo::GroupId best_via = -1;
  std::int64_t load_nonmin = kInf;
  for (int i = 0; i < kViaGroupSample; ++i) {
    const auto cand = static_cast<topo::GroupId>(
        rng_for(gs).uniform_u64(static_cast<std::uint64_t>(groups_)));
    if (cand == gs || cand == gd) continue;
    if (faults_on_ &&
        (!groups_connected(gs, cand) || !groups_connected(cand, gd)))
      continue;
    std::int64_t score = 0;
    (void)pick_gateway(src_router, cand, &score);
    if (score < load_nonmin) {
      load_nonmin = score;
      best_via = cand;
    }
  }
  if (best_via < 0) return;  // two-group system: minimal only
  if (faults_on_) {
    if (load_nonmin == kInf) return;
    if (load_min == kInf) {
      // Minimal path unusable from here (e.g. local partition): detour.
      state.nonminimal = true;
      state.via_group = best_via;
      ++rerouted_[static_cast<std::size_t>(gs)];
      return;
    }
  }
  if (!choose_minimal(load_min, load_nonmin, 0, params)) {
    state.nonminimal = true;
    state.via_group = best_via;
  }
}

topo::PortId RoutePlanner::next_port(topo::RouterId r, topo::NodeId dst,
                                     RouteState& state) {
  const topo::RouterId dst_router = topo_.router_of_node(dst);
  // A dead destination router makes the packet undeliverable from anywhere.
  if (faults_on_ && !router_ok(dst_router)) return kNoRoute;
  // Intra-group Valiant: reach the intermediate router first, even if the
  // detour happens to pass through the destination router.
  if (state.nonminimal && state.via_router >= 0 && !state.via_done) {
    if (r != state.via_router) {
      const topo::PortId via_p = local_first_port(r, state.via_router);
      if (!faults_on_ || (router_ok(state.via_router) && via_p >= 0))
        return counted_local(r, state.via_router, via_p);
      // The intermediate died or became unreachable: abandon the detour
      // and head straight for the destination.
      ++rerouted_[static_cast<std::size_t>(group_of(r))];
    }
    state.via_done = true;
    // Leaving the Valiant intermediate: bump the VC ladder level so the
    // second (via -> destination) local leg cannot form a cycle with the
    // first.
    if (state.level + 1 < kVcLadderLevels) ++state.level;
  }
  if (r == dst_router) {
    state.gateway = -1;
    return eject_base_[static_cast<std::size_t>(r)] +
           static_cast<topo::PortId>(topo_.node_slot(dst));
  }
  const topo::GroupId g = group_of(r);
  const topo::GroupId gd = group_of(dst_router);
  // Inter-group Valiant: first reach the intermediate group.
  topo::GroupId target_group = gd;
  if (state.nonminimal && state.via_group >= 0 && !state.via_done) {
    if (g == state.via_group) {
      state.via_done = true;
    } else {
      target_group = state.via_group;
    }
  }

  // Local leg: in the destination group and not detouring elsewhere.
  if (g == gd && target_group == gd)
    return counted_local(r, dst_router, local_first_port(r, dst_router));
  // A packet may pass *through* its destination group while still heading to
  // a Valiant intermediate group (the target_group != gd case above), but it
  // can never already be *in* the intermediate group here: via_done is set
  // the moment it arrives.
  assert(g != target_group);

  if (faults_on_ && !groups_connected(g, target_group)) {
    if (target_group != gd) {
      // The Valiant intermediate became unreachable: abandon the detour.
      state.via_done = true;
      target_group = gd;
      ++rerouted_[static_cast<std::size_t>(g)];
      if (!groups_connected(g, gd)) return kNoRoute;
    } else if (state.via_group < 0 && !state.via_done) {
      // Minimal packet, destination group cut off: one forced detour.
      const topo::GroupId fb = fallback_via(g, gd);
      if (fb < 0) return kNoRoute;
      state.nonminimal = true;
      state.via_group = fb;
      target_group = fb;
      ++rerouted_[static_cast<std::size_t>(g)];
    } else {
      // Already spent the detour budget (VC ladder bounds one intermediate).
      return kNoRoute;
    }
  }

  // Need a global hop toward target_group.
  if (state.gateway >= 0 && group_of(state.gateway) != g)
    state.gateway = -1;  // stale: left the group where it was chosen
  if (faults_on_ && state.gateway >= 0) {
    // The sticky gateway may have died or lost its cables since chosen.
    if (!router_ok(state.gateway) ||
        !has_alive_global_port(state.gateway, target_group) ||
        (state.gateway != r && local_first_port(r, state.gateway) < 0)) {
      state.gateway = -1;
      ++rerouted_[static_cast<std::size_t>(g)];
    }
  }
  if (state.gateway < 0) {
    const bool own_cable = faults_on_
                               ? has_alive_global_port(r, target_group)
                               : !global_ports(r, target_group).empty();
    if (own_cable) {
      state.gateway = r;
    } else {
      state.gateway = pick_gateway(r, target_group, nullptr);
      if (state.gateway < 0) return kNoRoute;  // faults only: no gateway left
    }
  }
  if (state.gateway == r) {
    const topo::PortId p = best_global_port(r, target_group);
    state.gateway = -1;  // crossing into a new group resets the choice
    return p;
  }
  return counted_local(r, state.gateway, local_first_port(r, state.gateway));
}

}  // namespace dfsim::routing
