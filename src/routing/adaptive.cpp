#include "routing/adaptive.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace dfsim::routing {

topo::PortId RoutePlanner::local_first_port(topo::RouterId r,
                                            topo::RouterId t) const {
  // Row-first (rank-1 then rank-2) dimension order. Deterministic order
  // keeps the within-level channel dependency graph acyclic, which the VC
  // ladder's deadlock-freedom argument relies on.
  const topo::PortId direct = topo_.local_port_to(r, t);
  if (direct >= 0) return direct;
  const topo::GroupId g = topo_.group_of_router(r);
  const topo::RouterId via_r1 =
      topo_.router_at(g, topo_.chassis_of(r), topo_.slot_of(t));
  return topo_.local_port_to(r, via_r1);
}

std::int64_t RoutePlanner::local_first_load(topo::RouterId r,
                                            topo::RouterId t) const {
  return loads_.load_units(r, local_first_port(r, t));
}

topo::PortId RoutePlanner::best_global_port(topo::RouterId r,
                                            topo::GroupId tg) const {
  const auto ports = topo_.global_ports_to(r, tg);
  topo::PortId best = ports.front();
  std::int64_t best_load = loads_.load_units(r, best);
  for (std::size_t i = 1; i < ports.size(); ++i) {
    const std::int64_t l = loads_.load_units(r, ports[i]);
    if (l < best_load) {
      best_load = l;
      best = ports[i];
    }
  }
  return best;
}

topo::RouterId RoutePlanner::pick_gateway(topo::RouterId r, topo::GroupId tg,
                                          std::int64_t* score_out) {
  const topo::GroupId g = topo_.group_of_router(r);
  const auto gws = topo_.gateways(g, tg);
  // If this router owns a cable, it is always a candidate (score = its best
  // global port load; no local hop needed).
  topo::RouterId best_router = -1;
  std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
  if (!topo_.global_ports_to(r, tg).empty()) {
    best_router = r;
    best_score = loads_.load_units(r, best_global_port(r, tg));
  }
  const int samples =
      std::min<int>(kGatewaySample, static_cast<int>(gws.size()));
  for (int i = 0; i < samples; ++i) {
    const auto& gw = gws[rng_.uniform_u64(gws.size())];
    if (gw.router == r) continue;
    const std::int64_t score = local_first_load(r, gw.router) +
                               loads_.load_units(gw.router, gw.port);
    if (score < best_score) {
      best_score = score;
      best_router = gw.router;
    }
  }
  if (best_router < 0) {
    // Sampling can repeat the same gateway; fall back to the first one.
    best_router = gws.front().router;
    best_score = local_first_load(r, best_router) +
                 loads_.load_units(gws.front().router, gws.front().port);
  }
  if (score_out != nullptr) *score_out = best_score;
  return best_router;
}

std::int64_t RoutePlanner::gateway_score(topo::RouterId r, topo::GroupId tg) {
  std::int64_t score = 0;
  (void)pick_gateway(r, tg, &score);
  return score;
}

void RoutePlanner::decide_injection(topo::RouterId src_router, topo::NodeId dst,
                                    RouteState& state) {
  const BiasParams params = params_for(state.mode);
  const topo::RouterId dst_router = topo_.router_of_node(dst);
  if (src_router == dst_router) return;  // NIC-to-NIC on one router: minimal
  const topo::GroupId gs = topo_.group_of_router(src_router);
  const topo::GroupId gd = topo_.group_of_router(dst_router);

  if (gs == gd) {
    // Intra-group: non-minimal = Valiant via a random intermediate router.
    const std::int64_t load_min = local_first_load(src_router, dst_router);
    const int rpg = topo_.config().routers_per_group();
    topo::RouterId via = -1;
    for (int attempt = 0; attempt < 4 && via < 0; ++attempt) {
      const auto cand = static_cast<topo::RouterId>(
          gs * rpg + static_cast<int>(rng_.uniform_u64(rpg)));
      if (cand != src_router && cand != dst_router) via = cand;
    }
    if (via < 0) return;  // tiny group, no intermediate available
    const std::int64_t load_nonmin = local_first_load(src_router, via);
    if (!choose_minimal(load_min, load_nonmin, 0, params)) {
      state.nonminimal = true;
      state.via_router = via;
    }
    return;
  }

  // Inter-group: non-minimal = Valiant via a random intermediate group.
  std::int64_t load_min = 0;
  (void)pick_gateway(src_router, gd, &load_min);
  topo::GroupId best_via = -1;
  std::int64_t load_nonmin = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < kViaGroupSample; ++i) {
    const auto cand = static_cast<topo::GroupId>(
        rng_.uniform_u64(static_cast<std::uint64_t>(topo_.config().groups)));
    if (cand == gs || cand == gd) continue;
    std::int64_t score = 0;
    (void)pick_gateway(src_router, cand, &score);
    if (score < load_nonmin) {
      load_nonmin = score;
      best_via = cand;
    }
  }
  if (best_via < 0) return;  // two-group system: minimal only
  if (!choose_minimal(load_min, load_nonmin, 0, params)) {
    state.nonminimal = true;
    state.via_group = best_via;
  }
}

topo::PortId RoutePlanner::next_port(topo::RouterId r, topo::NodeId dst,
                                     RouteState& state) {
  const topo::RouterId dst_router = topo_.router_of_node(dst);
  // Intra-group Valiant: reach the intermediate router first, even if the
  // detour happens to pass through the destination router.
  if (state.nonminimal && state.via_router >= 0 && !state.via_done) {
    if (r == state.via_router) {
      state.via_done = true;
      // Leaving the Valiant intermediate: bump the VC ladder level so the
      // second (via -> destination) local leg cannot form a cycle with the
      // first.
      if (state.level + 1 < kVcLadderLevels) ++state.level;
    } else {
      return local_first_port(r, state.via_router);
    }
  }
  if (r == dst_router) {
    state.gateway = -1;
    return topo_.eject_port(r, dst);
  }
  const topo::GroupId g = topo_.group_of_router(r);
  const topo::GroupId gd = topo_.group_of_router(dst_router);
  // Inter-group Valiant: first reach the intermediate group.
  topo::GroupId target_group = gd;
  if (state.nonminimal && state.via_group >= 0 && !state.via_done) {
    if (g == state.via_group) {
      state.via_done = true;
    } else {
      target_group = state.via_group;
    }
  }

  if (g == target_group || (g == gd && (state.via_done || !state.nonminimal))) {
    if (g == gd) return local_first_port(r, dst_router);
  }
  if (g == target_group && g != gd) {
    // We are inside the via group but have not recognized it yet: cannot
    // happen (via_done was set above). Defensive: head to dst group.
    target_group = gd;
  }

  // Need a global hop toward target_group.
  if (state.gateway >= 0 && topo_.group_of_router(state.gateway) != g)
    state.gateway = -1;  // stale: left the group where it was chosen
  if (state.gateway < 0) {
    if (!topo_.global_ports_to(r, target_group).empty()) {
      state.gateway = r;
    } else {
      state.gateway = pick_gateway(r, target_group, nullptr);
    }
  }
  if (state.gateway == r) {
    const topo::PortId p = best_global_port(r, target_group);
    state.gateway = -1;  // crossing into a new group resets the choice
    return p;
  }
  return local_first_port(r, state.gateway);
}

}  // namespace dfsim::routing
