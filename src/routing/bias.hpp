// Adaptive routing bias modes (paper Section II-D).
//
// Cray Aries defines four adaptive routing modes selectable per message
// (MPICH_GNI_ROUTING_MODE / MPICH_GNI_A2A_ROUTING_MODE). A mode is a bias in
// the per-packet comparison between the load on a minimal and a non-minimal
// candidate path, expressed as a shift and an add (each 0..15):
//
//     take the minimal path  iff  (load_min >> shift) <= load_nonmin + add
//
//  * AD0 (default): shift=0 add=0 — equal bias, pure load comparison.
//  * AD1: "increasingly minimal" — bias toward minimal grows as the packet
//    takes more hops. Our decision point is packet injection (hops taken =
//    0), so we use the expectation of the progressive schedule there:
//    shift=1 (non-minimal only when minimal load exceeds 2x), and grow the
//    bias by `progressive_add_per_hop` at any later re-evaluation.
//  * AD2: shift=0 add=4 — weak additive bias toward minimal.
//  * AD3: shift=2 add=0 — strong bias: minimal until its load exceeds 4x
//    the non-minimal load.
//
// Loads are normalized to 0..kLoadScale (credit-like units) so the additive
// bias has the same relative meaning at every buffer size.
#pragma once

#include <cstdint>
#include <string_view>

namespace dfsim::routing {

enum class Mode : std::uint8_t { kAd0 = 0, kAd1 = 1, kAd2 = 2, kAd3 = 3 };
inline constexpr int kNumModes = 4;

/// Load values handed to the bias comparison are scaled to [0, kLoadScale].
inline constexpr std::int64_t kLoadScale = 64;

/// UGAL hop weighting: a Valiant path is ~2x the hops of a minimal path, so
/// its load counts double in the comparison (Kim et al. [1]).
inline constexpr std::int64_t kNonminHopWeight = 2;
/// Fixed preference for minimal routes (in load units): transient single-
/// packet queues on the minimal path should not trigger detours.
inline constexpr std::int64_t kUgalThreshold = 2;

struct BiasParams {
  int shift = 0;
  int add = 0;
  bool progressive = false;      ///< AD1: bias grows with hops taken
  int progressive_add_per_hop = 2;
};

constexpr BiasParams params_for(Mode m) {
  switch (m) {
    case Mode::kAd0: return {0, 0, false, 0};
    case Mode::kAd1: return {1, 0, true, 2};
    case Mode::kAd2: return {0, 4, false, 0};
    case Mode::kAd3: return {2, 0, false, 0};
  }
  return {};
}

/// The biased UGAL comparison. The candidate loads enter as credit-like
/// occupancy estimates; the non-minimal load is weighted by its ~2x hop
/// count and a fixed threshold keeps packets minimal through transient
/// single-packet queues. The mode's shift/add then bias the minimal side
/// exactly as Section II-D describes (AD3: minimal until its weighted load
/// exceeds 4x the non-minimal one). Ties go minimal, so an idle network
/// routes minimally under every mode.
constexpr bool choose_minimal(std::int64_t load_min, std::int64_t load_nonmin,
                              int hops_taken, const BiasParams& p) {
  std::int64_t add = p.add;
  if (p.progressive) add += static_cast<std::int64_t>(p.progressive_add_per_hop) * hops_taken;
  return (load_min >> p.shift) <=
         kNonminHopWeight * load_nonmin + add + kUgalThreshold;
}

constexpr bool choose_minimal(std::int64_t load_min, std::int64_t load_nonmin,
                              int hops_taken, Mode m) {
  return choose_minimal(load_min, load_nonmin, hops_taken, params_for(m));
}

constexpr std::string_view mode_name(Mode m) {
  switch (m) {
    case Mode::kAd0: return "AD0";
    case Mode::kAd1: return "AD1";
    case Mode::kAd2: return "AD2";
    case Mode::kAd3: return "AD3";
  }
  return "?";
}

/// Parse "AD0".."AD3" (case-sensitive prefix "AD" optional). Returns true on
/// success.
constexpr bool parse_mode(std::string_view s, Mode& out) {
  if (s.size() >= 2 && (s.substr(0, 2) == "AD" || s.substr(0, 2) == "ad"))
    s.remove_prefix(2);
  if (s.size() != 1 || s[0] < '0' || s[0] > '3') return false;
  out = static_cast<Mode>(s[0] - '0');
  return true;
}

}  // namespace dfsim::routing
