// Per-packet adaptive route planning on the dragonfly.
//
// Implements UGAL-style source-adaptive routing with Aries bias semantics:
// at injection the planner compares the load of the best sampled minimal
// first hop against the best sampled non-minimal (Valiant) first hop using
// the packet's bias mode, then commits the packet to a minimal route or to a
// route via an intermediate group (inter-group) / intermediate router
// (intra-group). Within a group, two-hop local routes adaptively pick
// rank-1-first or rank-2-first by load. Gateway selection toward a target
// group samples a handful of gateways and is sticky per group visit so the
// packet always makes forward progress.
#pragma once

#include <cstdint>

#include "routing/bias.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::routing {

/// Load oracle: occupancy of a router output queue in [0, kLoadScale]
/// credit-like units (possibly above kLoadScale when overflowed).
class LoadOracle {
 public:
  virtual ~LoadOracle() = default;
  [[nodiscard]] virtual std::int64_t load_units(topo::RouterId r,
                                                topo::PortId p) const = 0;
};

/// Depth of the deadlock-avoidance VC ladder (source group, one Valiant
/// intermediate, destination group).
inline constexpr int kVcLadderLevels = 3;

/// Mutable routing state carried by each packet.
struct RouteState {
  Mode mode = Mode::kAd0;
  bool nonminimal = false;
  topo::GroupId via_group = -1;    ///< Valiant intermediate group (-1: none)
  topo::RouterId via_router = -1;  ///< intra-group Valiant intermediate
  bool via_done = false;
  topo::RouterId gateway = -1;  ///< sticky gateway within the current group
  std::int16_t hops = 0;
  /// Deadlock-avoidance VC ladder level: 0 in the source group, +1 per
  /// group crossing (bumped by the network on rank-3 traversal) and +1 when
  /// an intra-group Valiant detour passes its intermediate router (bumped
  /// by next_port()).
  std::uint8_t level = 0;
};

class RoutePlanner {
 public:
  RoutePlanner(const topo::Dragonfly& topo, const LoadOracle& loads,
               sim::Rng rng)
      : topo_(topo), loads_(loads), rng_(std::move(rng)) {}

  /// Number of gateway / via-group candidates sampled per decision.
  static constexpr int kGatewaySample = 3;
  static constexpr int kViaGroupSample = 2;

  /// Decide minimal vs non-minimal for a fresh packet at its source router.
  /// Fills state.nonminimal / via_group / via_router.
  void decide_injection(topo::RouterId src_router, topo::NodeId dst,
                        RouteState& state);

  /// Next output port for a packet currently at `r`, updating `state`
  /// (via_done transitions, sticky gateway, hop count is NOT advanced here —
  /// the network advances it when the hop commits).
  /// Returns the port id; if the packet is at its destination router this is
  /// the ejection port.
  [[nodiscard]] topo::PortId next_port(topo::RouterId r, topo::NodeId dst,
                                       RouteState& state);

  /// Exposed for tests: load score of the best sampled gateway from
  /// `r` toward group `tg` (first-hop load + global-port load).
  [[nodiscard]] std::int64_t gateway_score(topo::RouterId r, topo::GroupId tg);

 private:
  /// First-hop port from `r` toward local router `t` (adaptive 2-hop choice).
  [[nodiscard]] topo::PortId local_first_port(topo::RouterId r, topo::RouterId t) const;
  /// Load of the first hop from `r` toward local router `t`.
  [[nodiscard]] std::int64_t local_first_load(topo::RouterId r, topo::RouterId t) const;
  /// Pick a gateway router in group(r) toward `tg`, minimizing
  /// local-first-hop + global-port load over a sample.
  [[nodiscard]] topo::RouterId pick_gateway(topo::RouterId r, topo::GroupId tg,
                                            std::int64_t* score_out);
  /// Least-loaded rank-3 port on `r` toward `tg` (must exist).
  [[nodiscard]] topo::PortId best_global_port(topo::RouterId r, topo::GroupId tg) const;

  const topo::Dragonfly& topo_;
  const LoadOracle& loads_;
  sim::Rng rng_;
};

}  // namespace dfsim::routing
