// Per-packet adaptive route planning on the dragonfly.
//
// Implements UGAL-style source-adaptive routing with Aries bias semantics:
// at injection the planner compares the load of the best sampled minimal
// first hop against the best sampled non-minimal (Valiant) first hop using
// the packet's bias mode, then commits the packet to a minimal route or to a
// route via an intermediate group (inter-group) / intermediate router
// (intra-group). Within a group, two-hop local routes adaptively pick
// rank-1-first or rank-2-first by load. Gateway selection toward a target
// group samples a handful of gateways and is sticky per group visit so the
// packet always makes forward progress.
//
// Hot-path lookups are precomputed once from the topology at construction:
// the first-hop port toward every router of the same group, CSR tables of
// the rank-3 ports per (router, target group) and of the gateways per
// (group, target group), and per-router group/ejection bases. Per-packet
// decisions are table lookups plus load reads — no topology traversal.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "routing/bias.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace dfsim::routing {

/// Load oracle: occupancy of a router output queue in [0, kLoadScale]
/// credit-like units (possibly above kLoadScale when overflowed).
class LoadOracle {
 public:
  virtual ~LoadOracle() = default;
  [[nodiscard]] virtual std::int64_t load_units(topo::RouterId r,
                                                topo::PortId p) const = 0;
};

/// Zero-indirection view of a table-backed load oracle: per-VC-queue
/// occupancy as one flat array plus the per-router port-index prefix sums
/// (the net::Network / router::PortGrid SoA layout). When an owner installs
/// one via RoutePlanner::set_load_view, the planner reads loads straight
/// from these arrays — same arithmetic as LoadOracle::load_units, minus the
/// virtual dispatch — which matters because adaptive decisions sample loads
/// several times per packet. The pointers must stay valid and stable for
/// the planner's lifetime.
struct LoadView {
  const std::int32_t* occupancy = nullptr;   ///< [vq] occupancy in flits
  const std::uint32_t* port_base = nullptr;  ///< [router] prefix sums
  std::size_t vc_stride = 1;  ///< VC queues per port (vq = port * stride + vc)
  std::int64_t capacity = 1;  ///< buffer capacity in flits (load divisor)
};

/// Depth of the deadlock-avoidance VC ladder (source group, one Valiant
/// intermediate, destination group).
inline constexpr int kVcLadderLevels = 3;

/// next_port() result when fault state leaves no usable route toward the
/// destination (only possible after set_fault_tables; the network drops the
/// packet and the message-level retry recovers it).
inline constexpr topo::PortId kNoRoute = -1;

/// Raw views of the owner's live health arrays (net::Network owns a
/// fault::LinkHealth; routing/ stays independent of fault/ by taking
/// pointers). Indexed like LoadView: port arrays by port_base[r] + p.
/// The pointers must stay valid and stable for the planner's lifetime;
/// writes happen only in globally-ordered event context (serial events or
/// shard barriers), never concurrently with decisions.
struct FaultTables {
  const std::uint8_t* port_dead = nullptr;    ///< [port_index] 1 = dead
  const std::uint8_t* router_dead = nullptr;  ///< [router] 1 = dead
  const std::uint16_t* penalty_q8 = nullptr;  ///< [port_index] q8 load mult
};

/// Mutable routing state carried by each packet. Field order packs the
/// struct into 20 bytes so the whole net::Packet stays within one cache
/// line (see the static_assert in net/packet.hpp).
struct RouteState {
  topo::GroupId via_group = -1;    ///< Valiant intermediate group (-1: none)
  topo::RouterId via_router = -1;  ///< intra-group Valiant intermediate
  topo::RouterId gateway = -1;  ///< sticky gateway within the current group
  std::int16_t hops = 0;
  Mode mode = Mode::kAd0;
  bool nonminimal = false;
  bool via_done = false;
  /// Deadlock-avoidance VC ladder level: 0 in the source group, +1 per
  /// group crossing (bumped by the network on rank-3 traversal) and +1 when
  /// an intra-group Valiant detour passes its intermediate router (bumped
  /// by next_port()).
  std::uint8_t level = 0;
};
static_assert(sizeof(RouteState) <= 20);

class RoutePlanner {
 public:
  RoutePlanner(const topo::Topology& topo, const LoadOracle& loads,
               sim::Rng rng);

  /// Number of gateway / via-group candidates sampled per decision.
  static constexpr int kGatewaySample = 3;
  static constexpr int kViaGroupSample = 2;

  /// Decide minimal vs non-minimal for a fresh packet at its source router.
  /// Fills state.nonminimal / via_group / via_router.
  void decide_injection(topo::RouterId src_router, topo::NodeId dst,
                        RouteState& state);

  /// Next output port for a packet currently at `r`, updating `state`
  /// (via_done transitions, sticky gateway, hop count is NOT advanced here —
  /// the network advances it when the hop commits).
  /// Returns the port id; if the packet is at its destination router this is
  /// the ejection port.
  [[nodiscard]] topo::PortId next_port(topo::RouterId r, topo::NodeId dst,
                                       RouteState& state);

  /// Exposed for tests: load score of the best sampled gateway from
  /// `r` toward group `tg` (first-hop load + global-port load).
  [[nodiscard]] std::int64_t gateway_score(topo::RouterId r, topo::GroupId tg);

  /// Install a direct view of the oracle's load tables (see LoadView).
  /// Optional: without one, loads go through the LoadOracle virtual call.
  void set_load_view(LoadView v) { view_ = v; }

  // --- Fault awareness (see docs/MODEL.md section 10) ---
  // With tables installed, decisions skip dead ports/routers/gateways, the
  // load scoring multiplies in the degraded-link penalty, and next_port()
  // may return kNoRoute when the destination is unreachable. Without them
  // (the default) every fault branch is compiled around a single flag test
  // and the decision stream is byte-identical to the pristine planner.

  /// Install health views. Requires a LoadView (for port indexing).
  /// Tables start pristine; call the recompute entry points after mutating.
  void set_fault_tables(const FaultTables& t);
  [[nodiscard]] bool faults_active() const { return faults_on_; }
  /// Rebuild group `g`'s intra-group first-hop table: per-source BFS over
  /// healthy links (deterministic port-order tie-break; reproduces the
  /// pristine table when the group is healthy). Unreachable targets get -1.
  void recompute_local(topo::GroupId g);
  /// Recount alive gateways of `g` toward `tg` (one direction).
  void recompute_gateway_pair(topo::GroupId g, topo::GroupId tg);
  /// Any alive gateway left from g toward tg? (true when faults inactive).
  [[nodiscard]] bool groups_connected(topo::GroupId g, topo::GroupId tg) const {
    return !faults_on_ || g == tg ||
           gw_alive_[static_cast<std::size_t>(g) * groups_ +
                     static_cast<std::size_t>(tg)] > 0;
  }
  /// Decisions diverted by fault state so far (summed over groups).
  [[nodiscard]] std::int64_t rerouted_count() const;

  /// Switch from the single RNG stream to one independent stream per group,
  /// derived from `seed`. Every adaptive draw for a decision at router `r`
  /// then comes from group(r)'s stream, making the draw sequence a function
  /// of that group's (partition-independent) decision order alone — the
  /// property sharded execution needs, and why results change versus the
  /// single-stream serial mode the moment this is enabled.
  void enable_group_rngs(std::uint64_t seed);

  /// First-hop port from `r` toward local router `t` (adaptive 2-hop choice;
  /// cached table lookup). Exposed for tests. Precondition: same group.
  [[nodiscard]] topo::PortId local_first_port(topo::RouterId r,
                                              topo::RouterId t) const {
    assert(group_of_[static_cast<std::size_t>(r)] ==
           group_of_[static_cast<std::size_t>(t)]);
    return local_first_[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(rpg_) +
                        static_cast<std::size_t>(t % rpg_)];
  }

 private:
  /// Load of `r`'s output port `p`, via the direct view when installed.
  /// Identical arithmetic either way: summed VC occupancy, scaled to
  /// [0, kLoadScale] credit units by the buffer capacity.
  [[nodiscard]] std::int64_t load_units(topo::RouterId r,
                                        topo::PortId p) const {
    if (view_.occupancy == nullptr) return loads_.load_units(r, p);
    const std::size_t pt =
        static_cast<std::size_t>(view_.port_base[static_cast<std::size_t>(r)]) +
        static_cast<std::size_t>(p);
    const std::size_t base = pt * view_.vc_stride;
    std::int64_t occ = 0;
    for (std::size_t vc = 0; vc < view_.vc_stride; ++vc)
      occ += view_.occupancy[base + vc];
    std::int64_t lu = occ * kLoadScale / view_.capacity;
    // Degraded links look proportionally busier to the bias scoring
    // (penalty is 256/bw_factor in q8; 256 — pristine — is exact identity).
    if (faults_on_) lu = (lu * fault_.penalty_q8[pt]) >> 8;
    return lu;
  }

  /// Flat port index (LoadView layout). Only valid with a view installed.
  [[nodiscard]] std::size_t pt_index(topo::RouterId r, topo::PortId p) const {
    return static_cast<std::size_t>(view_.port_base[static_cast<std::size_t>(r)]) +
           static_cast<std::size_t>(p);
  }
  // The *_ok helpers assume faults_on_ (callers gate on it).
  [[nodiscard]] bool port_ok(topo::RouterId r, topo::PortId p) const {
    return fault_.port_dead[pt_index(r, p)] == 0;
  }
  [[nodiscard]] bool router_ok(topo::RouterId r) const {
    return fault_.router_dead[static_cast<std::size_t>(r)] == 0;
  }
  [[nodiscard]] bool has_alive_global_port(topo::RouterId r,
                                           topo::GroupId tg) const;
  /// First group g' (ascending) with alive gateways g -> g' and g' -> gd,
  /// or -1. Deterministic fallback Valiant hop for disconnected pairs.
  [[nodiscard]] topo::GroupId fallback_via(topo::GroupId g,
                                           topo::GroupId gd) const;
  [[nodiscard]] topo::RouterId pick_gateway_fault(topo::RouterId r,
                                                  topo::GroupId tg,
                                                  std::int64_t* score_out);

  /// Load of the first hop from `r` toward local router `t`.
  [[nodiscard]] std::int64_t local_first_load(topo::RouterId r, topo::RouterId t) const;
  /// Pick a gateway router in group(r) toward `tg`, minimizing
  /// local-first-hop + global-port load over a sample.
  [[nodiscard]] topo::RouterId pick_gateway(topo::RouterId r, topo::GroupId tg,
                                            std::int64_t* score_out);
  /// Least-loaded rank-3 port on `r` toward `tg` (must exist).
  [[nodiscard]] topo::PortId best_global_port(topo::RouterId r, topo::GroupId tg) const;

  /// Cached group of a router (avoids a per-call integer division).
  [[nodiscard]] topo::GroupId group_of(topo::RouterId r) const {
    return group_of_[static_cast<std::size_t>(r)];
  }
  /// RNG stream for decisions taken at a router of group `g`.
  [[nodiscard]] sim::Rng& rng_for(topo::GroupId g) {
    return group_rngs_.empty() ? rng_
                               : group_rngs_[static_cast<std::size_t>(g)];
  }
  /// Cached rank-3 ports on `r` toward `tg` (CSR slice of the topo table).
  [[nodiscard]] std::span<const topo::PortId> global_ports(
      topo::RouterId r, topo::GroupId tg) const {
    const auto i = static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(groups_) +
                   static_cast<std::size_t>(tg);
    return {gp_ports_.data() + gp_off_[i], gp_off_[i + 1] - gp_off_[i]};
  }
  /// Cached gateways of group `g` toward `tg` (CSR slice).
  [[nodiscard]] std::span<const topo::Gateway> gateways(
      topo::GroupId g, topo::GroupId tg) const {
    const auto i = static_cast<std::size_t>(g) *
                       static_cast<std::size_t>(groups_) +
                   static_cast<std::size_t>(tg);
    return {gw_list_.data() + gw_off_[i], gw_off_[i + 1] - gw_off_[i]};
  }

  void build_tables();

  const topo::Topology& topo_;
  const LoadOracle& loads_;
  LoadView view_;  ///< optional direct load tables (empty: use loads_)
  sim::Rng rng_;
  std::vector<sim::Rng> group_rngs_;  ///< per-group streams (empty: use rng_)

  // --- lookup tables, built once from topo_ ---
  int rpg_ = 0;     ///< routers per group
  int groups_ = 0;  ///< group count
  std::vector<topo::GroupId> group_of_;     ///< [router]
  std::vector<topo::PortId> eject_base_;    ///< [router] first processor port
  std::vector<topo::PortId> local_first_;   ///< [router][slot-in-group]
  std::vector<std::uint32_t> gp_off_;       ///< CSR offsets into gp_ports_
  std::vector<topo::PortId> gp_ports_;      ///< rank-3 ports, (r, tg)-major
  std::vector<std::uint32_t> gw_off_;       ///< CSR offsets into gw_list_
  std::vector<topo::Gateway> gw_list_;         ///< gateways, (g, tg)-major

  /// Returns `p` unchanged; under faults, counts the decision as rerouted
  /// when the BFS-recomputed local table diverted it from the pristine
  /// first-hop choice. Call only at next_port return points.
  topo::PortId counted_local(topo::RouterId r, topo::RouterId t,
                             topo::PortId p) {
    if (faults_on_ && p >= 0) {
      const std::size_t idx = static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(rpg_) +
                              static_cast<std::size_t>(t % rpg_);
      if (p != local_first_pristine_[idx])
        ++rerouted_[static_cast<std::size_t>(group_of(r))];
    }
    return p;
  }

  // --- fault state (inactive and empty until set_fault_tables) ---
  bool faults_on_ = false;
  FaultTables fault_;
  std::vector<topo::PortId> local_first_pristine_;  ///< snapshot for repairs
  std::vector<std::int32_t> gw_alive_;  ///< [g][tg] alive gateway count
  /// [group] fault-diverted decisions. Decisions at a router run on the
  /// shard owning its group, so per-group counters need no atomics.
  std::vector<std::int64_t> rerouted_;
  std::vector<std::int32_t> bfs_dist_;   ///< recompute_local scratch
  std::vector<topo::PortId> bfs_first_;
  std::vector<std::int32_t> bfs_queue_;
};

}  // namespace dfsim::routing
