#include "monitor/autoperf.hpp"

namespace dfsim::monitor {

std::vector<mpi::Op> AutoPerfReport::top_ops(int k) const {
  auto order = profile.ops_by_time();
  if (static_cast<int>(order.size()) > k)
    order.resize(static_cast<std::size_t>(k));
  return order;
}

double AutoPerfReport::avg_bytes(mpi::Op op) const {
  const auto& s = profile.stats(op);
  return s.calls > 0
             ? static_cast<double>(s.bytes) / static_cast<double>(s.calls)
             : 0.0;
}

net::CounterSnapshot local_baseline(const mpi::Machine& m, mpi::JobId id) {
  const auto routers = m.job_routers(id);
  return m.network().snapshot_routers(routers);
}

AutoPerfReport collect(const mpi::Machine& m, mpi::JobId id,
                       const net::CounterSnapshot& baseline) {
  AutoPerfReport r;
  const auto& job = m.job(id);
  r.app = job.spec.name;
  r.nranks = static_cast<int>(job.spec.nodes.size());
  r.runtime_ms = job.complete() ? sim::to_ms(job.runtime()) : -1.0;
  r.profile = m.job_profile(id);
  const auto routers = m.job_routers(id);
  r.local = m.network().snapshot_routers(routers).delta_since(baseline);
  if (job.complete() && job.runtime() > 0)
    r.mpi_fraction = static_cast<double>(r.profile.total_mpi_ns()) /
                     (static_cast<double>(r.nranks) *
                      static_cast<double>(job.runtime()));
  return r;
}

}  // namespace dfsim::monitor
