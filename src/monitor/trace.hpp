// Packet-event tracing.
//
// Optional observability hook: when attached to a Network, records a
// bounded ring of packet lifecycle events (inject, hop, deliver) that can
// be dumped as text or as a chrome://tracing / Perfetto JSON file. Tracing
// is off unless a tracer is attached; the hot path pays one pointer test.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::monitor {

enum class TraceEvent : std::uint8_t {
  kInject = 0,  ///< packet left its source NIC
  kHop,         ///< packet traversed a router-to-router link
  kDeliver,     ///< packet processed by the destination NIC
};

const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  sim::Tick t = 0;
  TraceEvent event = TraceEvent::kInject;
  std::int32_t packet = -1;
  topo::NodeId src = -1;
  topo::NodeId dst = -1;
  topo::RouterId router = -1;  ///< router reached (kHop) / -1 otherwise
  std::uint8_t plane = 0;      ///< request (0) / response (1)
  std::uint8_t level = 0;      ///< VC ladder level
  bool nonminimal = false;
};

class PacketTracer {
 public:
  /// Keeps the most recent `capacity` records (ring buffer).
  explicit PacketTracer(std::size_t capacity = 1 << 16);

  void record(const TraceRecord& r);

  [[nodiscard]] std::size_t size() const {
    return full_ ? ring_.size() : head_;
  }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }

  /// Records in chronological order (oldest first).
  [[nodiscard]] std::vector<TraceRecord> chronological() const;

  /// Human-readable dump.
  void dump(std::ostream& os, std::size_t max_rows = 100) const;

  /// chrome://tracing "Trace Event Format" JSON: one instant event per
  /// record, one track per router/NIC. Load in chrome://tracing or Perfetto.
  void write_chrome_json(std::ostream& os) const;

  void clear();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  bool full_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace dfsim::monitor
