// AutoPerf: per-application profiling (paper Section III-B).
//
// The real AutoPerf is a PMPI intercept library that reports per-interface
// MPI usage and reads the Aries router tiles local to the job's nodes.
// Here it snapshots the same data from the simulated machine: the merged
// MPI profile of a job plus counter deltas over the routers the job's NICs
// attach to (the paper's "local view").
#pragma once

#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "net/network.hpp"

namespace dfsim::monitor {

struct AutoPerfReport {
  std::string app;
  int nranks = 0;
  double runtime_ms = 0.0;
  mpi::Profile profile;
  net::CounterSnapshot local;  ///< counter delta over the job's routers
  double mpi_fraction = 0.0;   ///< total MPI time / (nranks * runtime)

  /// Top `k` MPI interfaces by time.
  [[nodiscard]] std::vector<mpi::Op> top_ops(int k = 3) const;
  /// Average bytes per call for an op (0 if never called).
  [[nodiscard]] double avg_bytes(mpi::Op op) const;
};

/// Snapshot the job-local counters before the job runs.
net::CounterSnapshot local_baseline(const mpi::Machine& m, mpi::JobId id);

/// Collect the report after the job completed. `baseline` is the snapshot
/// taken at submission (so concurrent-jobs contamination matches what real
/// AutoPerf sees on shared routers).
AutoPerfReport collect(const mpi::Machine& m, mpi::JobId id,
                       const net::CounterSnapshot& baseline);

}  // namespace dfsim::monitor
