#include "monitor/trace.hpp"

#include <algorithm>

namespace dfsim::monitor {

const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kInject: return "inject";
    case TraceEvent::kHop: return "hop";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

PacketTracer::PacketTracer(std::size_t capacity) {
  ring_.reserve(capacity);
  ring_.resize(capacity);
  clear();
}

void PacketTracer::clear() {
  head_ = 0;
  full_ = false;
  total_ = 0;
}

void PacketTracer::record(const TraceRecord& r) {
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  if (head_ == 0) full_ = true;
  ++total_;
}

std::vector<TraceRecord> PacketTracer::chronological() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  if (full_)
    for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

void PacketTracer::dump(std::ostream& os, std::size_t max_rows) const {
  const auto recs = chronological();
  const std::size_t start = recs.size() > max_rows ? recs.size() - max_rows : 0;
  for (std::size_t i = start; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << r.t << " ns  " << trace_event_name(r.event) << " pkt=" << r.packet
       << " " << r.src << "->" << r.dst
       << (r.plane != 0 ? " rsp" : " req") << " lvl="
       << static_cast<int>(r.level) << (r.nonminimal ? " valiant" : " minimal");
    if (r.router >= 0) os << " @router " << r.router;
    os << "\n";
  }
}

void PacketTracer::write_chrome_json(std::ostream& os) const {
  os << "[\n";
  const auto recs = chronological();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    // Instant event; pid 0, tid = router id (or dst node for endpoint
    // events offset out of the router id space).
    const std::int64_t tid =
        r.router >= 0 ? r.router : 1'000'000 + (r.event == TraceEvent::kInject
                                                    ? r.src
                                                    : r.dst);
    os << "  {\"name\": \"" << trace_event_name(r.event) << " pkt "
       << r.packet << "\", \"ph\": \"i\", \"ts\": "
       << static_cast<double>(r.t) / 1000.0 << ", \"pid\": 0, \"tid\": " << tid
       << ", \"s\": \"t\", \"args\": {\"src\": " << r.src << ", \"dst\": "
       << r.dst << ", \"plane\": " << static_cast<int>(r.plane)
       << ", \"level\": " << static_cast<int>(r.level) << ", \"valiant\": "
       << (r.nonminimal ? "true" : "false") << "}}"
       << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace dfsim::monitor
