#include "monitor/ldms.hpp"

namespace dfsim::monitor {

LdmsSampler::LdmsSampler(net::Network& net, sim::Tick period, int max_samples)
    : net_(net), period_(period), max_samples_(max_samples) {}

void LdmsSampler::start() {
  if (running_) return;
  running_ = true;
  samples_.push_back(LdmsSample{net_.engine().now(), net_.snapshot_all(),
                                net_.fault_stats()});
  // Quiesced scheduling: snapshot_all() reads every router's counters, so
  // under sharded execution the tick must run at a window barrier (serial
  // mode: an ordinary event at exactly +period).
  net_.schedule_quiesced(period_, [this] { tick(); });
}

void LdmsSampler::tick() {
  if (!running_) return;
  samples_.push_back(LdmsSample{net_.engine().now(), net_.snapshot_all(),
                                net_.fault_stats()});
  if (static_cast<int>(samples_.size()) >= max_samples_) {
    running_ = false;
    return;
  }
  net_.schedule_quiesced(period_, [this] { tick(); });
}

std::vector<LdmsSample> LdmsSampler::interval_deltas() const {
  std::vector<LdmsSample> out;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    LdmsSample d;
    d.t = samples_[i].t;
    d.cumulative = samples_[i].cumulative.delta_since(samples_[i - 1].cumulative);
    out.push_back(d);
  }
  return out;
}

std::vector<TileCounters> per_tile_counters(const net::Network& net) {
  std::vector<TileCounters> out;
  const auto& topo = net.topology();
  for (topo::RouterId r = 0; r < topo.num_routers(); ++r) {
    const int nports = net.grid().ports_of_router(r);
    for (topo::PortId p = 0; p < nports; ++p) {
      const router::PortCounters ctr = net.port_counters(r, p);
      TileCounters t;
      t.router = r;
      t.port = p;
      t.cls = topo.port(r, p).cls;
      for (int vc = 0; vc < net::kNumVcs; ++vc) {
        t.flits += ctr.flits[vc];
        t.stall_ns += ctr.stall_ns[vc];
      }
      out.push_back(t);
    }
  }
  return out;
}

std::vector<double> nic_mean_latencies(const net::Network& net) {
  std::vector<double> out;
  const int n = net.topology().num_nodes();
  for (topo::NodeId i = 0; i < n; ++i) {
    const auto& nic = net.nic(i);
    if (nic.ctr.rsp_track_count > 0) out.push_back(nic.ctr.mean_latency_ns());
  }
  return out;
}

}  // namespace dfsim::monitor
