// LDMS: system-wide periodic counter sampling (paper Section III-B).
//
// The real LDMS daemon samples the Aries counters of every router at a
// configurable period (1 minute on Theta) giving the global view used for
// Figs. 10-14. LdmsSampler does the same on the simulated network, and also
// exposes the per-tile counter dump the paper's scatter plots (Figs. 10, 12)
// are drawn from, plus the NIC ORB latency sampling of Fig. 14.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace dfsim::monitor {

struct LdmsSample {
  sim::Tick t = 0;
  net::CounterSnapshot cumulative;
  /// Cumulative fault/recovery state at sample time (all-zero on a healthy
  /// run) — the degraded-system view a production LDMS feed would carry.
  fault::FaultStats faults;
};

class LdmsSampler {
 public:
  /// Samples every `period` ns once started. Stops sampling after
  /// `max_samples` (safety bound) or when stop() is called.
  LdmsSampler(net::Network& net, sim::Tick period, int max_samples = 100000);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<LdmsSample>& samples() const {
    return samples_;
  }
  /// Per-interval deltas between consecutive samples.
  [[nodiscard]] std::vector<LdmsSample> interval_deltas() const;

 private:
  void tick();

  net::Network& net_;
  sim::Tick period_;
  int max_samples_;
  bool running_ = false;
  std::vector<LdmsSample> samples_;
};

/// One row per router tile (network port or processor port), the unit of
/// the paper's 49152-tile scatter plots.
struct TileCounters {
  topo::RouterId router = -1;
  topo::PortId port = -1;
  topo::TileClass cls = topo::TileClass::kRank1;
  std::int64_t flits = 0;
  std::int64_t stall_ns = 0;
};
std::vector<TileCounters> per_tile_counters(const net::Network& net);

/// Mean request-response packet latency per NIC (Fig. 14's sampling unit),
/// in nanoseconds; NICs that tracked no packet pairs are skipped.
std::vector<double> nic_mean_latencies(const net::Network& net);

}  // namespace dfsim::monitor
