// Scheduler facade: a Machine plus a NodeAllocator plus the submission
// conventions the paper's experiments use (routing-mode environment
// variables, placement policies, background workloads).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "apps/registry.hpp"
#include "mpi/machine.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "sched/workload.hpp"

namespace dfsim::sched {

class Scheduler {
 public:
  /// `shards` selects the machine's execution substrate (0 = legacy serial
  /// engine; N >= 1 = sharded, see mpi::Machine); `shard_workers` caps its
  /// executor threads (0 = auto; wall-clock only).
  Scheduler(topo::Config cfg, std::uint64_t seed, int shards = 0,
            int shard_workers = 0);

  [[nodiscard]] mpi::Machine& machine() { return machine_; }
  [[nodiscard]] NodeAllocator& allocator() { return alloc_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Submit one of the paper applications. `mode` maps to the two Cray MPI
  /// environment knobs the way the paper's experiments set them: AD0 keeps
  /// the stock defaults (p2p AD0, alltoall AD1); any other mode sets both.
  /// Returns -1 if the allocation fails.
  mpi::JobId submit_app(std::string_view app, int nnodes, Placement placement,
                        routing::Mode mode, const apps::AppParams& params,
                        int target_groups = 0);

  /// Submit on an explicit node list (caller already owns the allocation).
  mpi::JobId submit_app_on(std::string_view app,
                           std::vector<topo::NodeId> nodes,
                           routing::Mode mode, const apps::AppParams& params);

  /// Nodes of a previously submitted job.
  [[nodiscard]] const std::vector<topo::NodeId>& job_nodes(mpi::JobId id) const {
    return machine_.job(id).spec.nodes;
  }
  /// Groups spanned by a job's allocation.
  [[nodiscard]] int job_groups_spanned(mpi::JobId id) const;

  /// Populate background noise at `utilization` using the workload model.
  BackgroundSet add_background(double utilization, routing::Mode default_mode);
  void stop_background(const BackgroundSet& set);

 private:
  mpi::Machine machine_;
  NodeAllocator alloc_;
  WorkloadModel model_;
  sim::Rng rng_;
};

/// Mode pair the paper's methodology implies for a requested mode.
struct ModePair {
  routing::Mode p2p;
  routing::Mode a2a;
};
ModePair modes_for(routing::Mode requested);

}  // namespace dfsim::sched
