// Scheduler facade: a Machine plus a NodeAllocator plus the submission
// conventions the paper's experiments use (routing-mode environment
// variables, placement policies, background workloads).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "apps/registry.hpp"
#include "mpi/machine.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "sched/workload.hpp"

namespace dfsim::sched {

class Scheduler {
 public:
  /// `shards` selects the machine's execution substrate (0 = legacy serial
  /// engine; N >= 1 = sharded, see mpi::Machine); `shard_workers` caps its
  /// executor threads (0 = auto; wall-clock only).
  ///
  /// The scheduler registers itself as the machine's job-completion
  /// listener: allocations it owns (submit_app, or adopted via
  /// adopt_allocation) are released the moment their job completes, so
  /// utilization falls back as jobs drain — a real scheduler, not a
  /// one-way ratchet. Chain further completion work with on_job_complete().
  Scheduler(topo::Config cfg, std::uint64_t seed, int shards = 0,
            int shard_workers = 0);

  [[nodiscard]] mpi::Machine& machine() { return machine_; }
  [[nodiscard]] NodeAllocator& allocator() { return alloc_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Submit one of the paper applications. `mode` maps to the two Cray MPI
  /// environment knobs the way the paper's experiments set them: AD0 keeps
  /// the stock defaults (p2p AD0, alltoall AD1); any other mode sets both.
  /// Returns -1 if the allocation fails.
  mpi::JobId submit_app(std::string_view app, int nnodes, Placement placement,
                        routing::Mode mode, const apps::AppParams& params,
                        int target_groups = 0);

  /// Submit on an explicit node list (caller already owns the allocation).
  mpi::JobId submit_app_on(std::string_view app,
                           std::vector<topo::NodeId> nodes,
                           routing::Mode mode, const apps::AppParams& params);

  /// Nodes of a previously submitted job.
  [[nodiscard]] const std::vector<topo::NodeId>& job_nodes(mpi::JobId id) const {
    return machine_.job(id).spec.nodes;
  }
  /// Groups spanned by a job's allocation.
  [[nodiscard]] int job_groups_spanned(mpi::JobId id) const;

  /// Take ownership of a job's node allocation: when the job completes, the
  /// scheduler releases `machine().job(id).spec.nodes` back to the
  /// allocator. submit_app() adopts automatically; submit_app_on() callers
  /// that allocated through allocator() call this to hand the lease over.
  void adopt_allocation(mpi::JobId id);
  /// True if the scheduler will release this job's nodes on completion.
  [[nodiscard]] bool owns_allocation(mpi::JobId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < owns_.size() &&
           owns_[static_cast<std::size_t>(id)] != 0;
  }

  /// Completion hook, fired after the scheduler's own release bookkeeping
  /// (so the hook observes the freed capacity). At most one hook;
  /// SystemScheduler uses it to start queued jobs on the freed nodes.
  void on_job_complete(std::function<void(mpi::JobId, sim::Tick)> hook) {
    completion_hook_ = std::move(hook);
  }

  /// Populate background noise at `utilization` using the workload model.
  /// `bg_placement` selects the per-job placement policy (kMixed = the
  /// legacy 70/30 random/compact sampling).
  BackgroundSet add_background(double utilization, routing::Mode default_mode,
                               BgPlacement bg_placement = BgPlacement::kMixed);
  /// Request cooperative stop of every background job and release their
  /// node allocations (idempotent per set: `set.released` guards the
  /// double-release that would free someone else's reallocation).
  void stop_background(BackgroundSet& set);

 private:
  void handle_completion(mpi::JobId id, sim::Tick end_time);

  mpi::Machine machine_;
  NodeAllocator alloc_;
  WorkloadModel model_;
  sim::Rng rng_;
  std::vector<char> owns_;  ///< by JobId: release spec.nodes on completion
  std::function<void(mpi::JobId, sim::Tick)> completion_hook_;
};

/// Mode pair the paper's methodology implies for a requested mode.
struct ModePair {
  routing::Mode p2p;
  routing::Mode a2a;
};
ModePair modes_for(routing::Mode requested);

}  // namespace dfsim::sched
