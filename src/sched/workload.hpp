// Production workload model (paper Sections II-F, III-A).
//
// The paper's "production" condition is other users' jobs sharing the
// network: a job-size mix whose core-hour CCDF is Fig. 1 (~40% of core-hours
// in 128-512 node jobs, medium jobs spanning 5+ groups), random or compact
// placement, and the system-default routing mode. This module samples
// synthetic background jobs from that distribution and populates a Machine
// up to a target utilization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "mpi/machine.hpp"
#include "routing/bias.hpp"
#include "sched/placement.hpp"
#include "sim/rng.hpp"

namespace dfsim::sched {

struct JobSizeBucket {
  int nodes;          ///< job size in nodes (at Theta scale)
  double corehours;   ///< relative core-hour weight (Fig. 1 calibration)
};

/// The Fig. 1 job-size mix. Weights are core-hour fractions.
std::vector<JobSizeBucket> theta_jobsize_mix();

class WorkloadModel {
 public:
  /// `size_scale` rescales job sizes to smaller systems (1.0 = Theta scale).
  explicit WorkloadModel(double size_scale = 1.0);

  /// Sample a job size in nodes (by job count: core-hour weight / size).
  [[nodiscard]] int sample_job_size(sim::Rng& rng) const;
  /// Sample a traffic pattern name for a background job.
  [[nodiscard]] std::string sample_pattern(sim::Rng& rng) const;
  /// Sample traffic intensity parameters.
  [[nodiscard]] apps::SyntheticParams sample_traffic(sim::Rng& rng) const;
  /// Sample a placement policy (the real scheduler mostly yields scattered
  /// allocations; some jobs land compactly).
  [[nodiscard]] Placement sample_placement(sim::Rng& rng) const;

  [[nodiscard]] const std::vector<JobSizeBucket>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<JobSizeBucket> buckets_;
  std::vector<double> job_count_weights_;  // corehours / nodes, cumulative
  double size_scale_;
};

/// Background jobs running on a machine (owns their node allocations).
///
/// populate_background() can undershoot its target (fragmentation, repeated
/// allocation failures, a nearly full machine) — the fill accounting below
/// records what actually happened so reports never have to pretend the
/// target was met. `achieved_utilization` is the allocator utilization at
/// the moment population finished (background plus anything already
/// resident, e.g. an earlier foreground allocation).
struct BackgroundSet {
  std::vector<mpi::JobId> jobs;
  std::vector<std::vector<topo::NodeId>> nodes;
  int total_nodes = 0;
  double target_utilization = 0.0;    ///< what the caller asked for
  double achieved_utilization = 0.0;  ///< allocator utilization after filling
  int allocation_attempts = 0;        ///< allocate() calls made
  int allocation_failures = 0;        ///< allocate() calls that found no fit
  bool released = false;  ///< nodes returned to the allocator (stop path)
};

/// Fill `machine` with background jobs until allocator utilization reaches
/// `target_utilization` (or no further job fits — check the fill accounting
/// on the returned set for the achieved utilization). All background jobs
/// use `default_mode` for p2p (and AD1 for alltoall), like the paper's
/// production test period where everyone ran the system default.
/// `bg_placement` selects the per-job placement policy; the kMixed default
/// is the legacy 70/30 random/compact sampling and draws exactly the rng
/// sequence it always has, so existing scenarios stay byte-identical.
BackgroundSet populate_background(mpi::Machine& machine, NodeAllocator& alloc,
                                  const WorkloadModel& model,
                                  double target_utilization,
                                  routing::Mode default_mode, sim::Rng& rng,
                                  BgPlacement bg_placement = BgPlacement::kMixed);

/// Request cooperative stop of every job in the set. Best-effort: ranks
/// check the flag at their next iteration boundary, so a rank whose peer
/// already exited may stay blocked in a receive forever. In-flight traffic
/// always drains; callers should not run_to_completion() on stopped
/// background jobs (foreground-driven runs never need to).
void stop_background(mpi::Machine& machine, const BackgroundSet& set);

}  // namespace dfsim::sched
