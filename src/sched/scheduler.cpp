#include "sched/scheduler.hpp"

namespace dfsim::sched {

ModePair modes_for(routing::Mode requested) {
  if (requested == routing::Mode::kAd0)
    return {routing::Mode::kAd0, routing::Mode::kAd1};  // Cray MPI defaults
  return {requested, requested};
}

Scheduler::Scheduler(topo::Config cfg, std::uint64_t seed, int shards,
                     int shard_workers)
    : machine_(cfg, seed, shards, shard_workers),
      alloc_(machine_.topology()),
      model_(static_cast<double>(machine_.topology().num_nodes()) /
             static_cast<double>(topo::Config::theta().num_nodes())),
      rng_(seed ^ 0x5EED5EEDULL) {
  machine_.set_job_completion_listener(
      [this](mpi::JobId id, sim::Tick end_time) {
        handle_completion(id, end_time);
      });
}

mpi::JobId Scheduler::submit_app(std::string_view app, int nnodes,
                                 Placement placement, routing::Mode mode,
                                 const apps::AppParams& params,
                                 int target_groups) {
  auto nodes = alloc_.allocate(nnodes, placement, rng_, target_groups);
  if (nodes.empty()) return -1;
  const mpi::JobId id = submit_app_on(app, std::move(nodes), mode, params);
  adopt_allocation(id);
  return id;
}

mpi::JobId Scheduler::submit_app_on(std::string_view app,
                                    std::vector<topo::NodeId> nodes,
                                    routing::Mode mode,
                                    const apps::AppParams& params) {
  const ModePair mp = modes_for(mode);
  mpi::JobSpec spec;
  spec.name = std::string(app);
  spec.nodes = std::move(nodes);
  spec.mode_p2p = mp.p2p;
  spec.mode_a2a = mp.a2a;
  spec.app = apps::make_app(app, params);
  return machine_.submit(std::move(spec));
}

int Scheduler::job_groups_spanned(mpi::JobId id) const {
  const auto& nodes = machine_.job(id).spec.nodes;
  return machine_.topology().groups_spanned(nodes);
}

void Scheduler::adopt_allocation(mpi::JobId id) {
  if (id < 0) return;
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= owns_.size()) owns_.resize(idx + 1, 0);
  owns_[idx] = 1;
}

void Scheduler::handle_completion(mpi::JobId id, sim::Tick end_time) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx < owns_.size() && owns_[idx] != 0) {
    owns_[idx] = 0;
    alloc_.release(machine_.job(id).spec.nodes);
  }
  if (completion_hook_) completion_hook_(id, end_time);
}

BackgroundSet Scheduler::add_background(double utilization,
                                        routing::Mode default_mode,
                                        BgPlacement bg_placement) {
  return populate_background(machine_, alloc_, model_, utilization,
                             default_mode, rng_, bg_placement);
}

void Scheduler::stop_background(BackgroundSet& set) {
  sched::stop_background(machine_, set);
  // Background jobs are open-ended streamers: a stop request frees their
  // capacity for scheduling purposes immediately, even though the ranks
  // wind down cooperatively. Guarded so a second stop on the same set
  // cannot free nodes that were since reallocated to someone else.
  if (!set.released) {
    set.released = true;
    for (const auto& nodes : set.nodes) alloc_.release(nodes);
  }
}

}  // namespace dfsim::sched
