#include "sched/scheduler.hpp"

namespace dfsim::sched {

ModePair modes_for(routing::Mode requested) {
  if (requested == routing::Mode::kAd0)
    return {routing::Mode::kAd0, routing::Mode::kAd1};  // Cray MPI defaults
  return {requested, requested};
}

Scheduler::Scheduler(topo::Config cfg, std::uint64_t seed, int shards,
                     int shard_workers)
    : machine_(cfg, seed, shards, shard_workers),
      alloc_(machine_.topology()),
      model_(static_cast<double>(machine_.topology().config().num_nodes()) /
             static_cast<double>(topo::Config::theta().num_nodes())),
      rng_(seed ^ 0x5EED5EEDULL) {}

mpi::JobId Scheduler::submit_app(std::string_view app, int nnodes,
                                 Placement placement, routing::Mode mode,
                                 const apps::AppParams& params,
                                 int target_groups) {
  auto nodes = alloc_.allocate(nnodes, placement, rng_, target_groups);
  if (nodes.empty()) return -1;
  return submit_app_on(app, std::move(nodes), mode, params);
}

mpi::JobId Scheduler::submit_app_on(std::string_view app,
                                    std::vector<topo::NodeId> nodes,
                                    routing::Mode mode,
                                    const apps::AppParams& params) {
  const ModePair mp = modes_for(mode);
  mpi::JobSpec spec;
  spec.name = std::string(app);
  spec.nodes = std::move(nodes);
  spec.mode_p2p = mp.p2p;
  spec.mode_a2a = mp.a2a;
  spec.app = apps::make_app(app, params);
  return machine_.submit(std::move(spec));
}

int Scheduler::job_groups_spanned(mpi::JobId id) const {
  const auto& nodes = machine_.job(id).spec.nodes;
  return machine_.topology().groups_spanned(nodes);
}

BackgroundSet Scheduler::add_background(double utilization,
                                        routing::Mode default_mode) {
  return populate_background(machine_, alloc_, model_, utilization,
                             default_mode, rng_);
}

void Scheduler::stop_background(const BackgroundSet& set) {
  sched::stop_background(machine_, set);
}

}  // namespace dfsim::sched
