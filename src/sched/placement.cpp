#include "sched/placement.hpp"

#include <algorithm>
#include <numeric>

namespace dfsim::sched {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kCompact: return "compact";
    case Placement::kRandom: return "random";
    case Placement::kGroups: return "groups";
  }
  return "?";
}

const char* bg_placement_name(BgPlacement p) {
  switch (p) {
    case BgPlacement::kMixed: return "mixed";
    case BgPlacement::kRandom: return "random";
    case BgPlacement::kCompact: return "compact";
  }
  return "?";
}

bool parse_bg_placement(const std::string& name, BgPlacement& out) {
  if (name == "mixed") out = BgPlacement::kMixed;
  else if (name == "random") out = BgPlacement::kRandom;
  else if (name == "compact") out = BgPlacement::kCompact;
  else return false;
  return true;
}

NodeAllocator::NodeAllocator(const topo::Topology& topo) : topo_(topo) {
  busy_.assign(static_cast<std::size_t>(topo.num_nodes()), 0);
  free_ = topo.num_nodes();
}

void NodeAllocator::mark(std::span<const topo::NodeId> nodes) {
  for (const topo::NodeId n : nodes) {
    busy_[static_cast<std::size_t>(n)] = 1;
    --free_;
  }
}

void NodeAllocator::release(std::span<const topo::NodeId> nodes) {
  for (const topo::NodeId n : nodes) {
    if (busy_[static_cast<std::size_t>(n)] != 0) {
      busy_[static_cast<std::size_t>(n)] = 0;
      ++free_;
    }
  }
}

std::vector<topo::NodeId> NodeAllocator::allocate(int n, Placement policy,
                                                  sim::Rng& rng,
                                                  int target_groups) {
  if (n <= 0 || n > free_) return {};
  std::vector<topo::NodeId> out;
  switch (policy) {
    case Placement::kCompact: out = allocate_compact(n); break;
    case Placement::kRandom: out = allocate_random(n, rng); break;
    case Placement::kGroups: out = allocate_groups(n, target_groups, rng); break;
  }
  if (!out.empty()) mark(out);
  return out;
}

std::vector<topo::NodeId> NodeAllocator::allocate_compact(int n) {
  // First-fit in node-id order: node ids follow router/chassis/group order,
  // so low ids pack into as few groups as possible.
  std::vector<topo::NodeId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId i = 0;
       i < static_cast<topo::NodeId>(busy_.size()) &&
       static_cast<int>(out.size()) < n;
       ++i)
    if (busy_[static_cast<std::size_t>(i)] == 0) out.push_back(i);
  if (static_cast<int>(out.size()) < n) out.clear();
  return out;
}

std::vector<topo::NodeId> NodeAllocator::allocate_random(int n, sim::Rng& rng) {
  std::vector<topo::NodeId> frees;
  frees.reserve(static_cast<std::size_t>(free_));
  for (topo::NodeId i = 0; i < static_cast<topo::NodeId>(busy_.size()); ++i)
    if (busy_[static_cast<std::size_t>(i)] == 0) frees.push_back(i);
  const auto pick = rng.sample_without_replacement(frees.size(),
                                                   static_cast<std::size_t>(n));
  std::vector<topo::NodeId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (const std::size_t i : pick) out.push_back(frees[i]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<topo::NodeId> NodeAllocator::allocate_groups(int n,
                                                         int target_groups,
                                                         sim::Rng& rng) {
  const int groups = topo_.groups();
  if (target_groups <= 0) target_groups = 1;
  target_groups = std::min(target_groups, groups);
  // Free nodes per group.
  std::vector<std::vector<topo::NodeId>> free_by_group(
      static_cast<std::size_t>(groups));
  for (topo::NodeId i = 0; i < static_cast<topo::NodeId>(busy_.size()); ++i)
    if (busy_[static_cast<std::size_t>(i)] == 0)
      free_by_group[static_cast<std::size_t>(topo_.group_of_node(i))].push_back(i);
  // Candidate groups with any capacity, shuffled.
  std::vector<int> cand;
  for (int g = 0; g < groups; ++g)
    if (!free_by_group[static_cast<std::size_t>(g)].empty()) cand.push_back(g);
  rng.shuffle(cand);
  // Grow the group count if the target can't hold n nodes.
  while (target_groups < static_cast<int>(cand.size())) {
    int cap = 0;
    for (int i = 0; i < target_groups; ++i)
      cap += static_cast<int>(free_by_group[static_cast<std::size_t>(cand[static_cast<std::size_t>(i)])].size());
    if (cap >= n) break;
    ++target_groups;
  }
  if (target_groups > static_cast<int>(cand.size())) return {};
  // Round-robin across the chosen groups.
  std::vector<topo::NodeId> out;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(target_groups), 0);
  while (static_cast<int>(out.size()) < n) {
    bool progress = false;
    for (int i = 0; i < target_groups && static_cast<int>(out.size()) < n; ++i) {
      auto& fg = free_by_group[static_cast<std::size_t>(cand[static_cast<std::size_t>(i)])];
      auto& cur = cursor[static_cast<std::size_t>(i)];
      if (cur < fg.size()) {
        out.push_back(fg[cur++]);
        progress = true;
      }
    }
    if (!progress) return {};  // not enough capacity in the chosen groups
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dfsim::sched
