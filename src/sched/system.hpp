// Long-horizon system mode (paper Section III-A's production condition,
// driven end to end).
//
// The controlled experiments elsewhere in this repo hold the machine state
// fixed around one foreground job. A production system is the opposite: a
// stream of jobs arrives over hours, each waits in a queue, gets an
// allocation, runs, and releases its nodes for whoever is waiting. This
// module closes that loop: a deterministic job arrival stream sampled from
// the WorkloadModel (exponential interarrivals, the Fig. 1 size mix,
// per-job routing modes mirroring the paper's observation that most users
// keep the system default while some opt into AD3), an FCFS queue with
// liberal backfill on top of NodeAllocator, and per-job wait/runtime
// records. It relies on the Scheduler's completion-driven release: a
// finished job's nodes are back in the allocator before the queue is
// re-scanned, so waiting jobs start on freed capacity.
//
// Determinism: every scheduling decision (arrival, queue scan, allocation
// draw, completion) executes as a host-engine event, so the decision
// sequence is a pure function of the seed and the simulated schedule. Runs
// are byte-identical across shard counts within an execution family and
// across TrialRunner jobs counts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace dfsim::sched {

/// One job in an arrival stream. Either a registry (paper) application
/// (`app` non-empty) or a finite synthetic traffic job (`pattern` +
/// `traffic`, traffic.iterations > 0).
struct SystemJobSpec {
  sim::Tick arrival = 0;  ///< submission time (queue entry)
  int nnodes = 2;
  Placement placement = Placement::kRandom;
  routing::Mode mode = routing::Mode::kAd0;  ///< expanded via modes_for()
  std::string app;      ///< registry app name; "" = synthetic
  std::string pattern;  ///< synthetic pattern (stencil3d/uniform/bisection/compute)
  apps::AppParams app_params;     ///< registry apps only
  apps::SyntheticParams traffic;  ///< synthetic jobs only; iterations > 0
};

/// Knobs for stream generation (make_stream) and queueing policy.
struct SystemConfig {
  int num_jobs = 50;
  sim::Tick mean_interarrival = 40 * sim::kMicrosecond;
  double ad3_fraction = 0.25;      ///< jobs opting into AD3 (rest run AD0)
  double registry_fraction = 0.2;  ///< jobs running paper apps vs synthetic
  bool backfill = true;            ///< liberal (no-reservation) backfill
  int app_iterations = 1;          ///< registry app iterations
  double app_scale = 0.05;         ///< registry app msg/compute scale
};

/// Outcome of one stream job.
struct SystemJobRecord {
  int index = -1;  ///< position in the arrival stream
  SystemJobSpec spec;
  mpi::JobId job = -1;        ///< machine job id once started
  sim::Tick start_time = -1;  ///< dispatch time (-1 = never started)
  sim::Tick end_time = -1;    ///< completion time (-1 = unfinished)
  bool backfilled = false;    ///< started ahead of an earlier queued job

  [[nodiscard]] bool started() const { return start_time >= 0; }
  [[nodiscard]] bool completed() const { return end_time >= 0; }
  [[nodiscard]] sim::Tick wait() const {
    return started() ? start_time - spec.arrival : -1;
  }
};

/// Aggregates over a finished (or stalled) run.
struct SystemStats {
  int total = 0;
  int completed = 0;
  int backfilled = 0;          ///< completed or running jobs started out of order
  sim::Tick makespan = 0;      ///< last completion time
  double mean_wait_us = 0.0;   ///< over started jobs
  double max_wait_us = 0.0;
  double peak_utilization = 0.0;  ///< allocator high-water mark
};

class SystemScheduler {
 public:
  /// Drive `stream` through `sched`'s machine. The system scheduler takes
  /// over the scheduler's completion hook for its lifetime. Jobs whose
  /// nnodes exceed the machine can never start; make_stream clamps sizes.
  SystemScheduler(Scheduler& sched, std::vector<SystemJobSpec> stream,
                  bool backfill = true);
  /// Convenience: generate the stream from `cfg` with `seed`, then drive it.
  SystemScheduler(Scheduler& sched, const SystemConfig& cfg,
                  std::uint64_t seed);

  /// Sample a deterministic arrival stream: exponential interarrivals at
  /// cfg.mean_interarrival, sizes from the Fig. 1 mix rescaled to
  /// `total_nodes` and clamped to total_nodes/4 (min 2) so the queue always
  /// drains, placement/pattern/traffic from the workload model, AD3 for an
  /// ad3_fraction minority, registry apps for a registry_fraction share.
  static std::vector<SystemJobSpec> make_stream(const SystemConfig& cfg,
                                                int total_nodes,
                                                sim::Rng& rng);

  /// Schedule the arrivals and run until every stream job completes (true)
  /// or the engine gives up first — budget exhausted or event queue drained
  /// with jobs still waiting (false). Call once.
  bool run();

  [[nodiscard]] const std::vector<SystemJobRecord>& records() const {
    return records_;
  }
  [[nodiscard]] SystemStats stats() const;
  [[nodiscard]] int queue_depth() const { return static_cast<int>(queue_.size()); }

 private:
  void on_arrival(int idx);
  void on_complete(mpi::JobId id, sim::Tick end_time);
  /// FCFS head first; then, if enabled, one liberal-backfill scan of the
  /// rest of the queue in arrival order.
  void try_start();
  bool start_job(int idx, bool backfilled);

  Scheduler& sched_;
  bool backfill_;
  std::vector<SystemJobRecord> records_;
  std::deque<int> queue_;           ///< waiting stream indices, arrival order
  std::vector<int> job_to_record_;  ///< machine JobId -> stream index (-1 none)
  int completed_ = 0;
  int running_ = 0;
  double peak_util_ = 0.0;
  sim::Rng place_rng_;  ///< allocation draws (forked from scheduler rng)
};

}  // namespace dfsim::sched
