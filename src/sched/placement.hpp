// Job placement policies (paper Section II-C).
//
// The paper contrasts compact placement (contiguous nodes, few groups, less
// rank-3 exposure) with dispersed/random placement (nodes from many groups,
// more rank-3 bandwidth but more interference). NodeAllocator tracks which
// nodes are busy so concurrent jobs (foreground + background) never share
// nodes, like a real scheduler.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace dfsim::sched {

enum class Placement {
  kCompact,  ///< first-fit contiguous node ids (fills routers/chassis/groups)
  kRandom,   ///< uniformly random free nodes across the system
  kGroups,   ///< spread evenly over a chosen number of groups
};

const char* placement_name(Placement p);

/// Placement mix for synthetic background jobs. The legacy production mix
/// (kMixed) samples 70% random / 30% compact per job — compact background
/// jobs first-fit into the lowest free node ids, which concentrates them
/// (realistically) in the lowest-numbered groups. Scenarios that need
/// spread or worst-case-hotspot background force one policy instead. Part
/// of the scenario (it changes traffic), so it is a CSV column and a
/// fingerprint input.
enum class BgPlacement {
  kMixed,    ///< legacy sampling: 70% random / 30% compact per job
  kRandom,   ///< every background job randomly scattered
  kCompact,  ///< every background job first-fit compact (maximal hotspot)
};

const char* bg_placement_name(BgPlacement p);
bool parse_bg_placement(const std::string& name, BgPlacement& out);

class NodeAllocator {
 public:
  explicit NodeAllocator(const topo::Topology& topo);

  /// Allocate `n` nodes with the given policy. For kGroups, `target_groups`
  /// picks how many distinct groups to span (clamped to what fits).
  /// Returns an empty vector if the request cannot be satisfied.
  std::vector<topo::NodeId> allocate(int n, Placement policy, sim::Rng& rng,
                                     int target_groups = 0);

  void release(std::span<const topo::NodeId> nodes);

  [[nodiscard]] int free_count() const { return free_; }
  [[nodiscard]] int total_count() const { return static_cast<int>(busy_.size()); }
  [[nodiscard]] bool is_busy(topo::NodeId n) const {
    return busy_[static_cast<std::size_t>(n)] != 0;
  }
  [[nodiscard]] double utilization() const {
    return 1.0 - static_cast<double>(free_) / static_cast<double>(busy_.size());
  }

 private:
  std::vector<topo::NodeId> allocate_compact(int n);
  std::vector<topo::NodeId> allocate_random(int n, sim::Rng& rng);
  std::vector<topo::NodeId> allocate_groups(int n, int target_groups,
                                            sim::Rng& rng);
  void mark(std::span<const topo::NodeId> nodes);

  const topo::Topology& topo_;
  std::vector<char> busy_;
  int free_ = 0;
};

}  // namespace dfsim::sched
