#include "sched/system.hpp"

#include <algorithm>
#include <utility>

namespace dfsim::sched {

SystemScheduler::SystemScheduler(Scheduler& sched,
                                 std::vector<SystemJobSpec> stream,
                                 bool backfill)
    : sched_(sched), backfill_(backfill), place_rng_(sched.rng().fork()) {
  records_.reserve(stream.size());
  int idx = 0;
  for (auto& spec : stream) {
    SystemJobRecord rec;
    rec.index = idx++;
    rec.spec = std::move(spec);
    records_.push_back(std::move(rec));
  }
  sched_.on_job_complete([this](mpi::JobId id, sim::Tick end_time) {
    on_complete(id, end_time);
  });
}

SystemScheduler::SystemScheduler(Scheduler& sched, const SystemConfig& cfg,
                                 std::uint64_t seed)
    : SystemScheduler(
          sched,
          [&] {
            sim::Rng rng(seed ^ 0x5157E375ULL);
            return make_stream(cfg, sched.allocator().total_count(), rng);
          }(),
          cfg.backfill) {}

std::vector<SystemJobSpec> SystemScheduler::make_stream(
    const SystemConfig& cfg, int total_nodes, sim::Rng& rng) {
  const WorkloadModel model(
      static_cast<double>(total_nodes) /
      static_cast<double>(topo::Config::theta().num_nodes()));
  // Cap any single job at a quarter machine: the queue must always be able
  // to drain, and the production mix is many jobs, not one monolith.
  const int cap = std::max(2, total_nodes / 4);
  const double rate =
      1.0 / static_cast<double>(std::max<sim::Tick>(1, cfg.mean_interarrival));
  std::vector<SystemJobSpec> stream;
  stream.reserve(static_cast<std::size_t>(std::max(0, cfg.num_jobs)));
  sim::Tick arrival = 0;
  for (int i = 0; i < cfg.num_jobs; ++i) {
    arrival += static_cast<sim::Tick>(rng.exponential(rate));
    SystemJobSpec spec;
    spec.arrival = arrival;
    spec.nnodes = std::min(model.sample_job_size(rng), cap);
    spec.placement = model.sample_placement(rng);
    spec.mode = rng.uniform() < cfg.ad3_fraction ? routing::Mode::kAd3
                                                 : routing::Mode::kAd0;
    if (rng.uniform() < cfg.registry_fraction) {
      const auto& names = apps::paper_app_names();
      spec.app = names[rng.uniform_u64(names.size())];
      spec.app_params.iterations = cfg.app_iterations;
      spec.app_params.msg_scale = cfg.app_scale;
      spec.app_params.compute_scale = cfg.app_scale;
      spec.app_params.seed = rng.next();
    } else {
      spec.pattern = model.sample_pattern(rng);
      spec.traffic = model.sample_traffic(rng);
      // System-mode synthetic jobs are finite: they hold their allocation
      // for a bounded burst, then complete and release.
      spec.traffic.iterations =
          static_cast<int>(rng.uniform_int(4, 16));
    }
    stream.push_back(std::move(spec));
  }
  return stream;
}

bool SystemScheduler::run() {
  auto& engine = sched_.machine().engine();
  for (const auto& rec : records_) {
    const int idx = rec.index;
    engine.schedule_at(rec.spec.arrival, [this, idx] { on_arrival(idx); });
  }
  if (records_.empty()) return true;
  sched_.machine().run_until_stopped();
  return completed_ == static_cast<int>(records_.size());
}

void SystemScheduler::on_arrival(int idx) {
  queue_.push_back(idx);
  try_start();
}

void SystemScheduler::on_complete(mpi::JobId id, sim::Tick end_time) {
  const auto jid = static_cast<std::size_t>(id);
  if (jid >= job_to_record_.size() || job_to_record_[jid] < 0) return;
  SystemJobRecord& rec = records_[static_cast<std::size_t>(job_to_record_[jid])];
  rec.end_time = end_time;
  --running_;
  ++completed_;
  if (completed_ == static_cast<int>(records_.size())) {
    // Stream drained: stop the engine (the sharded driver observes the stop
    // at its next window barrier; final state is identical either way).
    sched_.machine().engine().stop();
    return;
  }
  // The scheduler released this job's nodes before forwarding the
  // completion here, so waiting jobs can start on the freed capacity now.
  try_start();
}

void SystemScheduler::try_start() {
  while (!queue_.empty() && start_job(queue_.front(), /*backfilled=*/false))
    queue_.pop_front();
  if (!backfill_ || queue_.size() < 2) return;
  // The head doesn't fit. Liberal backfill: start anything later in the
  // queue that does, in arrival order. Starting a job only consumes nodes,
  // so one scan per wakeup is exhaustive.
  for (auto it = std::next(queue_.begin()); it != queue_.end();) {
    if (start_job(*it, /*backfilled=*/true))
      it = queue_.erase(it);
    else
      ++it;
  }
}

bool SystemScheduler::start_job(int idx, bool backfilled) {
  SystemJobRecord& rec = records_[static_cast<std::size_t>(idx)];
  auto& alloc = sched_.allocator();
  auto nodes = alloc.allocate(rec.spec.nnodes, rec.spec.placement, place_rng_);
  if (nodes.empty()) return false;
  mpi::JobId id = -1;
  if (!rec.spec.app.empty()) {
    id = sched_.submit_app_on(rec.spec.app, std::move(nodes), rec.spec.mode,
                              rec.spec.app_params);
  } else {
    const ModePair mp = modes_for(rec.spec.mode);
    mpi::JobSpec spec;
    spec.name = "sys:" + rec.spec.pattern;
    spec.nodes = std::move(nodes);
    spec.mode_p2p = mp.p2p;
    spec.mode_a2a = mp.a2a;
    const auto traffic = rec.spec.traffic;
    if (rec.spec.pattern == "stencil3d")
      spec.app = [traffic](mpi::RankCtx& c) {
        return apps::stencil3d_traffic(c, traffic);
      };
    else if (rec.spec.pattern == "uniform")
      spec.app = [traffic](mpi::RankCtx& c) {
        return apps::uniform_traffic(c, traffic);
      };
    else if (rec.spec.pattern == "bisection")
      spec.app = [traffic](mpi::RankCtx& c) {
        return apps::bisection_traffic(c, traffic);
      };
    else
      spec.app = [traffic](mpi::RankCtx& c) {
        return apps::compute_only(c, traffic);
      };
    id = sched_.machine().submit(std::move(spec));
  }
  sched_.adopt_allocation(id);
  const auto jid = static_cast<std::size_t>(id);
  if (jid >= job_to_record_.size()) job_to_record_.resize(jid + 1, -1);
  job_to_record_[jid] = idx;
  rec.job = id;
  rec.start_time = sched_.machine().engine().now();
  rec.backfilled = backfilled;
  ++running_;
  peak_util_ = std::max(peak_util_, alloc.utilization());
  return true;
}

SystemStats SystemScheduler::stats() const {
  SystemStats st;
  st.total = static_cast<int>(records_.size());
  st.completed = completed_;
  st.peak_utilization = peak_util_;
  double wait_sum = 0.0;
  int started = 0;
  for (const auto& rec : records_) {
    if (!rec.started()) continue;
    ++started;
    if (rec.backfilled) ++st.backfilled;
    const double wait_us =
        static_cast<double>(rec.wait()) / static_cast<double>(sim::kMicrosecond);
    wait_sum += wait_us;
    st.max_wait_us = std::max(st.max_wait_us, wait_us);
    if (rec.completed()) st.makespan = std::max(st.makespan, rec.end_time);
  }
  if (started > 0) st.mean_wait_us = wait_sum / started;
  return st;
}

}  // namespace dfsim::sched
