#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>

namespace dfsim::sched {

std::vector<JobSizeBucket> theta_jobsize_mix() {
  // Calibrated to Fig. 1's CCDF: ~40% of core-hours from 128-512 node jobs,
  // a long tail up to full-machine (4392) runs.
  return {
      {64, 0.04},  {128, 0.16}, {256, 0.14}, {384, 0.05}, {512, 0.09},
      {640, 0.05}, {896, 0.07}, {1024, 0.10}, {1408, 0.05}, {2048, 0.11},
      {3072, 0.06}, {4392, 0.08},
  };
}

WorkloadModel::WorkloadModel(double size_scale)
    : buckets_(theta_jobsize_mix()), size_scale_(size_scale) {
  double cum = 0.0;
  for (const auto& b : buckets_) {
    // Sampling by job count: weight = core-hours / size.
    cum += b.corehours / static_cast<double>(b.nodes);
    job_count_weights_.push_back(cum);
  }
}

int WorkloadModel::sample_job_size(sim::Rng& rng) const {
  const double u = rng.uniform() * job_count_weights_.back();
  const auto it = std::lower_bound(job_count_weights_.begin(),
                                   job_count_weights_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::distance(job_count_weights_.begin(), it));
  const int raw = buckets_[std::min(idx, buckets_.size() - 1)].nodes;
  const int scaled = std::max(2, static_cast<int>(std::lround(
                                     static_cast<double>(raw) * size_scale_)));
  return scaled;
}

std::string WorkloadModel::sample_pattern(sim::Rng& rng) const {
  const double u = rng.uniform();
  if (u < 0.35) return "stencil3d";
  if (u < 0.60) return "uniform";
  if (u < 0.75) return "bisection";
  return "compute";
}

apps::SyntheticParams WorkloadModel::sample_traffic(sim::Rng& rng) const {
  apps::SyntheticParams p;
  // Message sizes log-uniform in [8KB, 256KB]; compute blocks 40-280us.
  // Average per-node demand of a few hundred MB/s: a busy production
  // network whose stall-to-flit ratios land in the paper's 0-10 range.
  const double lg = rng.uniform();
  p.msg_bytes = static_cast<std::int64_t>(8192.0 * std::pow(32.0, lg));
  p.compute_ns = static_cast<sim::Tick>(
      (40.0 + 240.0 * rng.uniform()) * static_cast<double>(sim::kMicrosecond));
  p.iterations = 0;  // run until stopped
  p.seed = rng.next();
  return p;
}

Placement WorkloadModel::sample_placement(sim::Rng& rng) const {
  return rng.uniform() < 0.7 ? Placement::kRandom : Placement::kCompact;
}

BackgroundSet populate_background(mpi::Machine& machine, NodeAllocator& alloc,
                                  const WorkloadModel& model,
                                  double target_utilization,
                                  routing::Mode default_mode, sim::Rng& rng,
                                  BgPlacement bg_placement) {
  BackgroundSet set;
  set.target_utilization = target_utilization;
  // Cap individual background jobs at 1/6 of the machine: the production
  // mix is many jobs, and a single near-machine-size streamer would make
  // run-to-run variability depend on one coin flip.
  const int cap = std::max(4, alloc.total_count() / 6);
  while (alloc.utilization() < target_utilization &&
         set.allocation_failures < 8) {
    int size = std::min(model.sample_job_size(rng), cap);
    size = std::min(size, alloc.free_count());
    if (size < 2) break;
    ++set.allocation_attempts;
    const Placement pl = bg_placement == BgPlacement::kMixed
                             ? model.sample_placement(rng)
                             : (bg_placement == BgPlacement::kRandom
                                    ? Placement::kRandom
                                    : Placement::kCompact);
    auto nodes = alloc.allocate(size, pl, rng);
    if (nodes.empty()) {
      ++set.allocation_failures;
      continue;
    }
    const auto pattern = model.sample_pattern(rng);
    const auto traffic = model.sample_traffic(rng);
    mpi::JobSpec spec;
    spec.name = "bg:" + pattern;
    spec.nodes = nodes;
    spec.mode_p2p = default_mode;
    spec.mode_a2a = routing::Mode::kAd1;
    if (pattern == "stencil3d")
      spec.app = [traffic](mpi::RankCtx& c) { return apps::stencil3d_traffic(c, traffic); };
    else if (pattern == "uniform")
      spec.app = [traffic](mpi::RankCtx& c) { return apps::uniform_traffic(c, traffic); };
    else if (pattern == "bisection")
      spec.app = [traffic](mpi::RankCtx& c) { return apps::bisection_traffic(c, traffic); };
    else
      spec.app = [traffic](mpi::RankCtx& c) { return apps::compute_only(c, traffic); };
    set.jobs.push_back(machine.submit(std::move(spec)));
    set.total_nodes += size;
    set.nodes.push_back(std::move(nodes));
  }
  set.achieved_utilization = alloc.utilization();
  return set;
}

void stop_background(mpi::Machine& machine, const BackgroundSet& set) {
  for (const mpi::JobId id : set.jobs) machine.request_stop(id);
}

}  // namespace dfsim::sched
