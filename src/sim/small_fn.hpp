// Move-only `void()` callable with inline storage.
//
// std::function's 16-byte small-buffer optimization (libstdc++) is too small
// for the capture lists the simulator's completion callbacks carry (the MPI
// machine's delivery callback is ~48 bytes), so storing one per in-flight
// message heap-allocates on the forwarding plane's hot path. SmallFn keeps
// captures up to kInlineBytes in the object itself and falls back to one
// heap allocation only for oversized or potentially-throwing-move callables
// (nothing in the simulator needs the fallback). Unlike std::function it is
// move-only, so reference-capturing and move-only captures are both fine.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dfsim::sim {

class SmallFn {
 public:
  /// Inline capture capacity; covers every callback the simulator registers.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() const { ops_->call(const_cast<std::byte*>(buf_)); }

 private:
  struct Ops {
    void (*call)(std::byte*);
    /// Move-construct the payload into `dst` from `src`, destroying `src`.
    void (*relocate)(std::byte* dst, std::byte* src);
    void (*destroy)(std::byte*);
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    // Inline relocation happens inside the noexcept move members, so the
    // payload's move constructor must be noexcept; otherwise fall back to a
    // heap payload whose relocation is a pointer copy.
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static Fn* as(std::byte* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <class Fn>
  static constexpr Ops inline_ops{
      [](std::byte* p) { (*as<Fn>(p))(); },
      [](std::byte* dst, std::byte* src) {
        ::new (static_cast<void*>(dst)) Fn(std::move(*as<Fn>(src)));
        as<Fn>(src)->~Fn();
      },
      [](std::byte* p) { as<Fn>(p)->~Fn(); },
  };

  template <class Fn>
  static constexpr Ops heap_ops{
      [](std::byte* p) { (**as<Fn*>(p))(); },
      [](std::byte* dst, std::byte* src) {
        ::new (static_cast<void*>(dst)) Fn*(*as<Fn*>(src));
      },
      [](std::byte* p) { delete *as<Fn*>(p); },
  };

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace dfsim::sim
