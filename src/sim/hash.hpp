// Deterministic 128-bit streaming hash.
//
// The campaign layer keys its content-addressed result cache by a hash of
// the canonical scenario description, and the snapshot machinery digests
// engine/network state to verify that a restored run re-reached the exact
// checkpointed state. Both need a hash that is a pure function of the fed
// bytes: no seeding from wall clock or ASLR, no dependence on host
// endianness (multi-byte integers are absorbed in explicit little-endian
// order), and no dependence on the chunking of update() calls beyond the
// byte stream itself (an internal word buffer re-aligns arbitrary update
// boundaries). Not cryptographic — collision resistance is that of two
// independent 64-bit multiply-xor lanes, which is ample for cache keying
// and divergence detection.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dfsim::sim {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;

  /// 32 lowercase hex digits, hi half first.
  [[nodiscard]] std::string hex() const {
    static const char* d = "0123456789abcdef";
    std::string s(32, '0');
    for (int i = 0; i < 16; ++i)
      s[static_cast<std::size_t>(i)] = d[(hi >> (60 - 4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i)
      s[static_cast<std::size_t>(16 + i)] = d[(lo >> (60 - 4 * i)) & 0xF];
    return s;
  }
  /// First `n` hex digits (handy for log-friendly prefixes).
  [[nodiscard]] std::string hex_prefix(int n) const {
    return hex().substr(0, static_cast<std::size_t>(n));
  }
};

class Hasher128 {
 public:
  Hasher128() = default;

  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    total_ += static_cast<std::uint64_t>(n);
    while (n > 0) {
      buf_[fill_++] = *p++;
      --n;
      if (fill_ == 8) {
        absorb(load_le(buf_));
        fill_ = 0;
      }
    }
  }
  void update(std::string_view s) { update(s.data(), s.size()); }
  void update_u64(std::uint64_t v) {
    unsigned char b[8];
    store_le(b, v);
    update(b, 8);
  }
  void update_i64(std::int64_t v) {
    update_u64(static_cast<std::uint64_t>(v));
  }
  void update_u32(std::uint32_t v) { update_u64(v); }
  /// Bit-pattern hash: distinguishes -0.0 from 0.0 and every NaN payload,
  /// which is exactly right for "did the state diverge" digests.
  void update_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    update_u64(bits);
  }
  /// Length-prefixed string absorb, so ("ab","c") != ("a","bc") when
  /// hashing a sequence of fields.
  void update_field(std::string_view s) {
    update_u64(s.size());
    update(s);
  }

  [[nodiscard]] Hash128 finalize() const {
    // Flush the tail word (zero-padded; the absorbed length disambiguates)
    // without disturbing the live state.
    std::uint64_t a = a_;
    std::uint64_t b = b_;
    if (fill_ > 0) {
      unsigned char tail[8] = {};
      std::memcpy(tail, buf_, fill_);
      absorb_into(a, b, load_le(tail));
    }
    absorb_into(a, b, total_ ^ 0x9e3779b97f4a7c15ULL);
    Hash128 h;
    h.hi = avalanche(a ^ rotl(b, 32));
    h.lo = avalanche(b ^ rotl(a, 17) ^ 0x94d049bb133111ebULL);
    return h;
  }

 private:
  static constexpr std::uint64_t kP1 = 0x9e3779b185ebca87ULL;
  static constexpr std::uint64_t kP2 = 0xc2b2ae3d27d4eb4fULL;

  static std::uint64_t rotl(std::uint64_t v, int s) {
    return (v << s) | (v >> (64 - s));
  }
  static std::uint64_t avalanche(std::uint64_t v) {
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return v;
  }
  static std::uint64_t load_le(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  static void store_le(unsigned char* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  static void absorb_into(std::uint64_t& a, std::uint64_t& b,
                          std::uint64_t w) {
    a = rotl((a ^ w) * kP1, 27);
    b = rotl((b ^ rotl(w, 31)) * kP2, 29) + a;
  }
  void absorb(std::uint64_t w) { absorb_into(a_, b_, w); }

  std::uint64_t a_ = 0x243f6a8885a308d3ULL;  // pi digits: nothing up sleeves
  std::uint64_t b_ = 0x13198a2e03707344ULL;
  std::uint64_t total_ = 0;
  unsigned char buf_[8] = {};
  std::size_t fill_ = 0;
};

}  // namespace dfsim::sim
