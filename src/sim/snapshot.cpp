#include "sim/snapshot.hpp"

namespace dfsim::sim {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
  std::span<const std::uint8_t> b;
  std::size_t at = 0;

  void need(std::size_t n) const {
    if (b.size() - at < n) throw SnapshotError("snapshot: truncated stream");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[at + static_cast<std::size_t>(i)];
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[at + static_cast<std::size_t>(i)];
    at += 8;
    return v;
  }
};

constexpr std::uint32_t kMagic = 0x44465053;  // "DFPS"

}  // namespace

std::vector<std::uint8_t> EngineSnapshot::to_bytes() const {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kFormatVersion);
  put_u64(out, scenario_hi);
  put_u64(out, scenario_lo);
  put_u64(out, salt.size());
  out.insert(out.end(), salt.begin(), salt.end());
  put_u64(out, static_cast<std::uint64_t>(checkpoint_time));
  put_u64(out, shards.size());
  for (const ShardClock& s : shards) {
    put_u64(out, static_cast<std::uint64_t>(s.now));
    put_u64(out, s.events);
  }
  put_u64(out, digest_hi);
  put_u64(out, digest_lo);
  return out;
}

EngineSnapshot EngineSnapshot::from_bytes(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u32() != kMagic) throw SnapshotError("snapshot: bad magic");
  if (r.u32() != kFormatVersion)
    throw SnapshotError("snapshot: unsupported format version");
  EngineSnapshot s;
  s.scenario_hi = r.u64();
  s.scenario_lo = r.u64();
  const std::uint64_t salt_len = r.u64();
  r.need(salt_len);
  s.salt.assign(reinterpret_cast<const char*>(r.b.data() + r.at),
                static_cast<std::size_t>(salt_len));
  r.at += static_cast<std::size_t>(salt_len);
  s.checkpoint_time = static_cast<Tick>(r.u64());
  const std::uint64_t n = r.u64();
  // Bound by the remaining bytes so a corrupt count cannot drive a huge
  // allocation (each entry needs 16 bytes).
  if (n > (r.b.size() - r.at) / 16)
    throw SnapshotError("snapshot: shard count exceeds stream");
  s.shards.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ShardClock c;
    c.now = static_cast<Tick>(r.u64());
    c.events = r.u64();
    s.shards.push_back(c);
  }
  s.digest_hi = r.u64();
  s.digest_lo = r.u64();
  if (r.at != r.b.size()) throw SnapshotError("snapshot: trailing bytes");
  return s;
}

bool EngineSnapshot::operator==(const EngineSnapshot& o) const {
  if (scenario_hi != o.scenario_hi || scenario_lo != o.scenario_lo ||
      salt != o.salt || checkpoint_time != o.checkpoint_time ||
      digest_hi != o.digest_hi || digest_lo != o.digest_lo ||
      shards.size() != o.shards.size())
    return false;
  for (std::size_t i = 0; i < shards.size(); ++i)
    if (shards[i].now != o.shards[i].now ||
        shards[i].events != o.shards[i].events)
      return false;
  return true;
}

}  // namespace dfsim::sim
