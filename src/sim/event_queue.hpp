// Priority event queue for the discrete-event engine.
//
// Events fire in (time, insertion-sequence) order so simultaneous events are
// processed deterministically in schedule order.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dfsim::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `t`.
  void push(Tick t, Callback fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_time() const { return heap_.front().time; }

  /// Remove and return the earliest event's callback.
  /// Precondition: !empty().
  Callback pop_and_take();

  void clear();

 private:
  struct Entry {
    Tick time;
    std::uint64_t seq;
    Callback fn;
  };
  // Min-heap ordering: std::push_heap keeps the *largest* at front, so the
  // comparator inverts (later time / later seq compares "less").
  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dfsim::sim
