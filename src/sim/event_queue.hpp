// Priority event queue for the discrete-event engine.
//
// Events fire in (time, insertion-sequence) order so simultaneous events are
// processed deterministically in schedule order.
//
// Hot-path design: the queue is allocation-free in steady state. Callback
// payloads live in fixed-size pool slots (kInlineBytes of inline storage —
// enough for everything net::Network schedules: a `this` pointer plus a
// handful of node/packet/router/port ids, or a whole std::function) that are
// recycled through a free list; closures larger than a slot fall back to one
// heap allocation each (rare — nothing in the simulator needs it). Pool
// chunks have stable addresses, so a running callback may safely push new
// events (growing the pool) while it executes from its own slot. The 4-ary
// heap itself orders lightweight packed {time, seq|slot} entries, so heapify
// moves 16-byte records instead of type-erased closures.
//
// Event coalescing: a running callback may call rearm_current(t) to be
// re-inserted at a later time with its slot, payload (including any state
// the callback mutated), and — crucially — its original insertion sequence
// intact. This lets one pushed event fire at several points in time, which
// net::Network uses to fuse the per-hop "serialization done" + "arrival"
// event pair into a single push. Keeping the original sequence number is
// what makes the fusion bit-exact: two same-tick events still execute in
// original push order, so coalesced and non-coalesced runs of the simulator
// order every conflicting pair of events identically (see docs/MODEL.md,
// "Forwarding-plane memory layout & event coalescing").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dfsim::sim {

class EventQueue {
 public:
  /// Legacy callback type; still schedulable (it fits a slot inline).
  using Callback = std::function<void()>;

  /// Inline payload capacity of one pool slot. Covers every closure the
  /// network/NIC/monitor hot paths schedule (max observed: a pointer plus
  /// six 32-bit ids = 32 bytes) and a std::function (32 bytes on libstdc++).
  static constexpr std::size_t kInlineBytes = 48;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() { clear(); }

  /// Schedule `fn` at absolute time `t`.
  template <class F>
  void push(Tick t, F&& fn) {
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(fn));
      s.run = [](EventQueue& q, Slot& sl) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(sl.buf));
        // Invoked in place: pool chunks are address-stable, so the callback
        // may push new events (growing the pool) while it runs. Calling
        // EventQueue::clear() from inside a callback is not supported.
        (*f)();
        // A rearmed payload survives (mutated state and all) to fire again.
        if (!q.rearm_pending_) f->~Fn();
      };
      s.drop = [](Slot& sl) {
        std::launder(reinterpret_cast<Fn*>(sl.buf))->~Fn();
      };
    } else {
      // Type-erased fallback for rare oversized closures.
      ::new (static_cast<void*>(s.buf)) Fn*(new Fn(std::forward<F>(fn)));
      s.run = [](EventQueue& q, Slot& sl) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(sl.buf));
        (*f)();
        if (!q.rearm_pending_) delete f;
      };
      s.drop = [](Slot& sl) {
        delete *std::launder(reinterpret_cast<Fn**>(sl.buf));
      };
    }
    if (next_seq_ == kMaxSeq) renumber_seqs();
    heap_.push_back(Entry{t, (static_cast<std::uint64_t>(next_seq_++) << 32) |
                                 idx});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_time() const { return heap_.front().time; }

  /// Remove the earliest event and run its callback, then recycle the slot.
  /// Precondition: !empty().
  void pop_and_run();

  /// From inside a running callback only: re-insert the current event at
  /// absolute time `t` (>= its own fire time) instead of recycling it. The
  /// payload is kept alive — including any state the callback mutated — and
  /// the entry keeps its original insertion sequence, so at equal times the
  /// rearmed firing still orders exactly where the original push would
  /// have. At most one pending rearm per firing (the last call wins).
  void rearm_current(Tick t);

  /// Drop all pending events (destroying their payloads) and reset.
  void clear();

  /// Pre-size the slot pool and heap for at least `events` simultaneously
  /// pending events, so reaching that population later allocates nothing.
  /// Capacity only: pending events and their order are unaffected.
  void reserve(std::size_t events);

  /// Pool capacity in slots (allocated high-water mark; for tests/benches).
  [[nodiscard]] std::size_t pool_slots() const {
    return chunks_.size() * kChunkSlots;
  }

 private:
  static constexpr std::size_t kChunkSlots = 256;  // slots per stable chunk

  /// One slot per cache line: 48 payload bytes + two thunk pointers.
  struct alignas(64) Slot {
    std::byte buf[kInlineBytes];
    /// Invoke the payload; destroy it unless a rearm is pending.
    void (*run)(EventQueue&, Slot&) = nullptr;
    void (*drop)(Slot&) = nullptr;  ///< destroy payload without invoking
  };
  static_assert(sizeof(Slot) == 64);

  /// 16 bytes: absolute time + a packed {seq:32 | slot:32} key. Comparing
  /// keys orders by sequence number (slot bits are tie-break-irrelevant:
  /// seqs are unique), so (time, key) gives the FIFO-at-equal-time order
  /// with one 64-bit compare. push() renumbers pending seqs before the
  /// 32-bit space wraps, so the order survives arbitrarily long runs.
  struct Entry {
    Tick time;
    std::uint64_t key;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key);
    }
  };
  static_assert(sizeof(Entry) == 16);

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t);
  }

  static bool before(const Entry& a, const Entry& b) {
    // Bitwise (not short-circuit) form: compiles to flag ops + cmov instead
    // of two data-dependent branches.
    return (a.time < b.time) |
           (static_cast<int>(a.time == b.time) & static_cast<int>(a.key < b.key));
  }

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) { free_.push_back(idx); }

  // Hand-rolled d-ary min-heap over heap_. A 4-ary heap halves the depth of
  // a binary heap, and heap sift cost is dominated by data-dependent branch
  // mispredictions per level, so fewer levels beat fewer compares; the four
  // children of a node also share a cache line (4 x 16-byte entries).
  static constexpr std::size_t kHeapArity = 4;
  void sift_up(std::size_t i);
  void sift_down_from_root();

  /// Reassign pending entries' sequence numbers to 0..n-1, preserving their
  /// relative order (heap invariant untouched). Called once per 2^32 pushes.
  void renumber_seqs();
  static constexpr std::uint32_t kMaxSeq = 0xFFFFFFFFu;

  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;  ///< stable slot storage
  std::vector<std::uint32_t> free_;              ///< recycled slot indices
  std::uint32_t next_seq_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by clear(); guards slot recycling
  // rearm_current() handshake between a running callback and pop_and_run().
  bool running_ = false;
  bool rearm_pending_ = false;
  Tick rearm_time_ = 0;
  /// Bumped by renumber_seqs(); a rearm that straddles a renumber takes a
  /// fresh sequence number instead of its (now stale) original one.
  std::uint64_t renumber_gen_ = 0;
};

}  // namespace dfsim::sim
