#include "sim/event_queue.hpp"

#include <algorithm>

namespace dfsim::sim {

void EventQueue::push(Tick t, Callback fn) {
  heap_.push_back(Entry{t, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

EventQueue::Callback EventQueue::pop_and_take() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Callback fn = std::move(heap_.back().fn);
  heap_.pop_back();
  return fn;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace dfsim::sim
