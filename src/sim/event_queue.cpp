#include "sim/event_queue.hpp"
#include <algorithm>
#include <stdexcept>

namespace dfsim::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  const auto idx =
      static_cast<std::uint32_t>(chunks_.size() * kChunkSlots);
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  // Hand out the chunk's first slot; queue the rest for later.
  free_.reserve(free_.size() + kChunkSlots - 1);
  for (std::size_t k = kChunkSlots - 1; k > 0; --k)
    free_.push_back(idx + static_cast<std::uint32_t>(k));
  return idx;
}

void EventQueue::pop_and_run() {
  const Entry cur = heap_.front();
  const std::uint32_t idx = cur.slot();
  // Remove the root before running: the callback may push new events.
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down_from_root();
  } else {
    heap_.pop_back();
  }
  Slot& s = slot(idx);
  const std::uint64_t epoch = epoch_;
  const std::uint64_t renum = renumber_gen_;
  running_ = true;
  rearm_pending_ = false;
  s.run(*this, s);
  running_ = false;
  // If the callback called clear(), the pool was rebuilt under us; this
  // slot index must not be recycled into the new epoch's free list.
  if (epoch != epoch_) return;
  if (rearm_pending_) {
    rearm_pending_ = false;
    // Keep the original sequence so same-tick ordering matches where the
    // original push sat. If a renumber happened while the callback ran (one
    // per 2^32 pushes; unreachable inside a single event in practice), the
    // old sequence could collide with a renumbered one — take a fresh seq.
    std::uint64_t key = cur.key;
    if (renum != renumber_gen_) {
      if (next_seq_ == kMaxSeq) renumber_seqs();
      key = (static_cast<std::uint64_t>(next_seq_++) << 32) | idx;
    }
    heap_.push_back(Entry{rearm_time_, key});
    sift_up(heap_.size() - 1);
    return;
  }
  release_slot(idx);
}

void EventQueue::rearm_current(Tick t) {
  if (!running_)
    throw std::logic_error(
        "EventQueue::rearm_current: no event is currently running");
  rearm_pending_ = true;
  rearm_time_ = t;
}

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  const std::size_t target_chunks = (events + kChunkSlots - 1) / kChunkSlots;
  if (target_chunks > chunks_.size()) {
    chunks_.reserve(target_chunks);
    free_.reserve(target_chunks * kChunkSlots);
    while (chunks_.size() < target_chunks) {
      const auto idx = static_cast<std::uint32_t>(chunks_.size() * kChunkSlots);
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
      // Same hand-out order acquire_slot() produces: lowest index first.
      for (std::size_t k = kChunkSlots; k > 0; --k)
        free_.push_back(idx + static_cast<std::uint32_t>(k - 1));
    }
  }
}

void EventQueue::clear() {
  for (const Entry& e : heap_) {
    Slot& s = slot(e.slot());
    s.drop(s);
  }
  heap_.clear();
  chunks_.clear();
  free_.clear();
  next_seq_ = 0;
  rearm_pending_ = false;
  ++epoch_;
}

void EventQueue::renumber_seqs() {
  // Rank the pending entries by their current key and rewrite the seq half
  // of each key with its rank: relative (time, key) order — and therefore
  // the heap invariant — is preserved exactly.
  std::vector<std::uint32_t> order(heap_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return heap_[a].key < heap_[b].key;
  });
  std::uint32_t rank = 0;
  for (const std::uint32_t i : order)
    heap_[i].key = (static_cast<std::uint64_t>(rank++) << 32) |
                   (heap_[i].key & 0xFFFFFFFFull);
  next_seq_ = rank;
  ++renumber_gen_;
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down_from_root() {
  const std::size_t n = heap_.size();
  const Entry e = heap_[0];
  std::size_t i = 0;
  // Fast path while all four children exist: branchless min-of-4 select
  // (data-dependent branches here mispredict ~50% and dominate sift cost;
  // cmov chains do not). The children of one node share a cache line.
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first + kHeapArity > n) break;
    const std::size_t a = first + static_cast<std::size_t>(
                                      before(heap_[first + 1], heap_[first]));
    const std::size_t b =
        first + 2 +
        static_cast<std::size_t>(before(heap_[first + 3], heap_[first + 2]));
    const std::size_t best =
        before(heap_[b], heap_[a]) ? b : a;
    if (!before(heap_[best], e)) {
      heap_[i] = e;
      return;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  // Tail: node with a partial set of children.
  const std::size_t first = kHeapArity * i + 1;
  if (first < n) {
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (before(heap_[best], e)) {
      heap_[i] = heap_[best];
      i = best;
    }
  }
  heap_[i] = e;
}

}  // namespace dfsim::sim
