#include "sim/engine.hpp"

namespace dfsim::sim {

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && executed_ < budget_) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_window(Tick end, bool inclusive) {
  std::uint64_t n = 0;
  while (!queue_.empty() && executed_ < budget_ &&
         (queue_.next_time() < end ||
          (inclusive && queue_.next_time() == end))) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
    ++n;
  }
  if (now_ < end) now_ = end;
  return n;
}

std::uint64_t Engine::run_until(Tick t) {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && executed_ < budget_ &&
         queue_.next_time() <= t) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace dfsim::sim
