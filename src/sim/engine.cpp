#include "sim/engine.hpp"

#include <stdexcept>

namespace dfsim::sim {

void Engine::schedule_at(Tick t, Callback fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule_at: time in the past");
  queue_.push(t, std::move(fn));
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && executed_ < budget_) {
    now_ = queue_.next_time();
    auto fn = queue_.pop_and_take();
    fn();
    ++executed_;
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(Tick t) {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && executed_ < budget_ &&
         queue_.next_time() <= t) {
    now_ = queue_.next_time();
    auto fn = queue_.pop_and_take();
    fn();
    ++executed_;
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace dfsim::sim
