// Discrete-event simulation engine.
//
// Single-threaded, deterministic. All model components schedule callbacks on
// one Engine; time only advances between events. The engine never invents
// wall-clock entropy: runs are exactly reproducible from the model's seeds.
//
// schedule()/schedule_at() accept any callable; small closures (everything
// the simulator's hot paths produce) are stored inline in recycled
// EventQueue pool slots, so steady-state scheduling performs no heap
// allocation — see sim/event_queue.hpp for the slot design.
//
// Thread confinement: an Engine (and the simulation stack built on it) is
// self-contained — all state lives in the instance, none of it is shared or
// global — so *distinct* Engine instances may run concurrently on different
// threads (core::TrialRunner relies on this). A single instance must only
// ever be driven from one thread at a time. Copying is deleted: queued
// callbacks capture pointers into their owning model, so a copied engine
// would alias live state.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dfsim::sim {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule at absolute time `t` (must be >= now()).
  template <class F>
  void schedule_at(Tick t, F&& fn) {
    if (t < now_)
      throw std::invalid_argument("Engine::schedule_at: time in the past");
    queue_.push(t, std::forward<F>(fn));
  }

  /// Schedule `delay` ns from now (delay >= 0).
  template <class F>
  void schedule(Tick delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// From inside a running event only: fire this event's callback again
  /// `delay` ns from now, reusing its queue slot, payload (with any state
  /// the callback mutated), and original insertion sequence. One push can
  /// thus drive a multi-phase event — the forwarding plane fuses its
  /// per-hop "serialization done" / "arrival" pair this way.
  void rearm(Tick delay) {
    if (delay < 0) throw std::invalid_argument("Engine::rearm: negative delay");
    queue_.rearm_current(now_ + delay);
  }

  /// Run until the queue drains, stop() is called, or the event budget is
  /// exhausted. Returns the number of events executed in this call.
  std::uint64_t run();

  /// Run events with time <= `t`, then set now() = t (if not stopped early).
  /// Returns the number of events executed in this call.
  std::uint64_t run_until(Tick t);

  /// Sentinel returned by next_event_time() when the queue is empty.
  static constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();
  /// Time of the earliest pending event, or kNoEvent when empty.
  [[nodiscard]] Tick next_event_time() const {
    return queue_.empty() ? kNoEvent : queue_.next_time();
  }

  /// Window execution primitive for the sharded engine: run events with
  /// time < `end` (or <= `end` when `inclusive`, used for the final partial
  /// window of a bounded run), then advance now() to `end`. Unlike run() /
  /// run_until() this deliberately ignores stop(): a shard must always
  /// reach the window barrier so that stop/budget decisions are taken at
  /// partition-independent points only. The event budget still bounds the
  /// loop (a runaway shard stops popping; the coordinator aborts at the
  /// next barrier). Returns the number of events executed.
  std::uint64_t run_window(Tick end, bool inclusive = false);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  void clear_stop() { stopped_ = false; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Pre-size the event queue for `n` simultaneously pending events
  /// (capacity only; see EventQueue::reserve).
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Hard safety budget on total events executed (guards runaway models).
  void set_event_budget(std::uint64_t budget) { budget_ = budget; }
  [[nodiscard]] bool budget_exhausted() const { return executed_ >= budget_; }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t budget_ = std::numeric_limits<std::uint64_t>::max();
};

}  // namespace dfsim::sim
