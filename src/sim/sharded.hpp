// Conservatively synchronized sharded execution of cooperating Engines.
//
// One Engine per shard, driven in lock-step bounded time windows whose
// width is the model's lookahead (the minimum latency of any cross-shard
// interaction; for the dragonfly, the minimum rank-3 link + router latency,
// see topo::ShardPlan). Within a window each shard executes its own events
// serially and independently; all cross-shard effects are posted as
// MailRecords into per-(src, dst) outboxes and merged at the window
// barrier in a canonical (due, kind, key, seq) order that does not depend
// on the physical interleaving of the workers — so the simulation result
// is a pure function of the shard *plan*, never of thread timing, worker
// count, or which shard happened to run first.
//
// Determinism contract: the schedule produced for a given model is
// identical for every shard count S >= 1, because
//  * the window grid is derived from the lookahead alone (ShardPlan makes
//    the lookahead partition-independent),
//  * each shard's window execution is a serial (time, seq) run over state
//    only that shard touches,
//  * mail is merged at every barrier that carries mail, under a total
//    order computed from model quantities (due time, record kind, a
//    model-assigned key),
//  * stop requests and event budgets are only evaluated at barriers.
// The owner (net::Network) must uphold its side: all cross-shard state
// transfer goes through mail, and records that could collide at equal due
// carry distinguishing keys.
//
// Adaptive coordination (the multi-worker fast path): the lookahead grid —
// and with it every event's execution window — is fixed, but the expensive
// part of a window barrier (waking the coordinator, merging mail, running
// globals) is only needed when there is something to coordinate. Executors
// therefore run *fused window runs*: after finishing a window they meet at
// a spin-then-park barrier, and the last arriver decides, from model state
// alone (the O(1) pending-mail count, the global-event heap, the host stop
// flag, the event budget), whether everyone proceeds directly into the
// next grid window or the run ends and the coordinator merges. The
// effective synchronization window thus widens automatically while no
// cross-shard mail is in flight and snaps back to a single lookahead the
// moment mail appears — without ever moving an event to a different
// window, which is what keeps both determinism families intact.
//
// In-run merges extend the same idea to barriers that DO carry mail: the
// last arriver performs the merge itself, inline, while every other
// executor is parked at the barrier (exclusive access to all shard state —
// the same quiescence the coordinator would have), then releases everyone
// straight into the next grid window. A run then returns to the calling
// thread only on stop, idle, budget, or a bounded limit — the coordinator
// round-trip (run-gate wake + check-in drain) drops from once per merge to
// once per run. The merge content, the window/merge sequence, and every
// event's execution window are identical with the optimization on or off
// (set_inline_merge is the A/B switch); only which thread performs the
// merge and how often the run gate cycles change, so both determinism
// families are preserved bit for bit.
//
// Threading: shards are distributed over min(S, workers) executor threads
// in contiguous blocks (the calling thread is executor 0 and always owns
// shard 0, the "host" shard with the MPI/application layer). The worker
// count affects wall-clock only — results depend on the shard count, never
// on the worker count. schedule_global() and post_mail() during the apply
// phase must only be used from the merging thread — the coordinator, or
// with inline merges the deciding executor, either way a single thread
// with every shard quiesced; post_mail(src, ...) during a window only from
// the thread executing shard `src`.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dfsim::sim {

/// One cross-shard effect. Sorted at the barrier by (due, kind, key, seq);
/// the owner defines kind/key/seq such that no two records that could
/// interact compare equal. a..d are owner-defined payload.
struct MailRecord {
  Tick due = 0;
  std::uint32_t kind = 0;
  std::uint32_t seq = 0;
  std::int64_t key = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
};

class ShardedEngine {
 public:
  /// `workers` = executor thread cap (0 = DFSIM_SHARD_WORKERS env, else
  /// min(shards, hardware threads); explicit values are clamped to the
  /// shard count only). Never affects results.
  ShardedEngine(int shards, Tick lookahead, int workers = 0);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] int num_shards() const { return static_cast<int>(engines_.size()); }
  [[nodiscard]] int num_workers() const { return workers_total_; }
  [[nodiscard]] Tick lookahead() const { return lookahead_; }
  [[nodiscard]] Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }
  /// Shard 0: owns the MPI/application layer and the global clock queries.
  [[nodiscard]] Engine& host() { return shard(0); }

  /// Post a cross-shard effect; delivered to the mail handler at the next
  /// window barrier. Single-writer per `src` (see file comment).
  void post_mail(int src, int dst, const MailRecord& rec) {
    outbox(src, dst).push_back(rec);
    mail_posted_.fetch_add(1, std::memory_order_relaxed);
    mail_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Post a record whose payload `a` accumulates: if a record with the same
  /// (kind, key) is already pending in the (src, dst) outbox, the new
  /// increment is folded into it (a summed; due/seq/b/c/d taken from the
  /// newer record, i.e. the merged record sorts at the canonical position
  /// of the *final* increment). Only valid for kinds whose application is
  /// a pure accumulation with at most one threshold-crossing side effect
  /// that fires on the final increment (see net::Network's
  /// kMailMsgProgress); for such kinds the handler observes a single summed
  /// record — same end state, same callback position, fewer records.
  void post_mail_accum(int src, int dst, const MailRecord& rec);

  /// Barrier mail delivery: called once per destination shard with that
  /// shard's records sorted canonically. Runs on the coordinating thread
  /// with every shard parked at the barrier (now() == barrier time).
  using MailHandler = std::function<void(int dst, std::span<MailRecord>)>;
  void set_mail_handler(MailHandler h) { handler_ = std::move(h); }

  /// Run `fn` at the first barrier with time >= t (ties in registration
  /// order), with all shards quiesced. Call from the host thread between
  /// runs, or from within a global/mail handler during the apply phase
  /// (re-registering periodic globals) — never from a window.
  void schedule_global(Tick t, std::function<void()> fn);

  /// Total event budget across all shards, evaluated at barriers.
  void set_event_budget(std::uint64_t total);
  [[nodiscard]] bool budget_exhausted() const {
    return events_executed() >= total_budget_;
  }
  [[nodiscard]] std::uint64_t events_executed() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->events_executed();
    return n;
  }

  /// Run windows until the host shard requests stop (observed at a
  /// barrier), the whole system is idle, or the budget is exhausted.
  void run();
  /// Run windows covering events with time <= t; every shard's clock ends
  /// at exactly t (the final partial window is barriered at t itself).
  void run_until(Tick t);
  /// Checkpoint-boundary variant: run events with time strictly < t and
  /// leave every shard quiesced at exactly t. When t lies ON the lookahead
  /// grid, the executed window/merge sequence is exactly the prefix a
  /// single unbounded run() would produce — events at t stay queued for
  /// the window (t, t+lookahead], and a global due exactly at t fires at
  /// the next barrier, as the grid rule ("events on a barrier belong to
  /// the following window") demands. run_until(t) cannot provide this: its
  /// final window is inclusive, which pulls time-t events and globals one
  /// barrier early. sim::EngineSnapshot captures here, so a restored run's
  /// continuation is byte-identical to never having stopped.
  void run_until_exclusive(Tick t);

  /// A/B switch for in-run merges (see the file comment). Wall-clock only:
  /// results, windows, and merges are byte-identical either way. Call
  /// between runs.
  void set_inline_merge(bool on) { inline_merge_ = on; }
  [[nodiscard]] bool inline_merge() const { return inline_merge_; }

  struct Stats {
    std::uint64_t windows = 0;        ///< lookahead-grid windows executed
    std::uint64_t merges = 0;         ///< barriers that actually merged mail
    /// Windows entered straight from a barrier decision — no coordinator
    /// round-trip. With inline merges on this includes post-merge
    /// continuations; the remainder (windows - fused) is the number of
    /// run-gate cycles the run cost.
    std::uint64_t fused = 0;
    std::uint64_t mail_records = 0;   ///< records delivered (post-compaction)
    std::uint64_t mail_posted = 0;    ///< records posted (pre-compaction)
    std::uint64_t mail_compacted = 0; ///< increments folded by post_mail_accum
    std::int64_t barrier_wait_ns = 0; ///< executor-0 time parked at barriers
    /// Window-coordination time on the coordinating thread — merges,
    /// barrier decisions, window bookkeeping — accumulated on the threaded
    /// AND the single-worker path (it is the serial fraction of a sharded
    /// run either way).
    std::int64_t coord_ns = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Per-executor wall-clock accounting (sized num_workers()). busy_ns is
  /// time spent executing shard events; wait_ns is time parked at window
  /// barriers waiting for slower executors — the load-imbalance signal.
  struct alignas(64) ExecutorStat {
    std::int64_t busy_ns = 0;
    std::int64_t wait_ns = 0;
    std::uint64_t windows = 0;
  };
  [[nodiscard]] const std::vector<ExecutorStat>& executor_stats() const {
    return exec_;
  }

  /// True while undelivered mail sits in any outbox. O(1): a counter
  /// maintained by post_mail / the barrier merge, not an outbox scan.
  [[nodiscard]] bool mail_pending() const {
    return mail_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Earliest pending work across the whole substrate: shard events,
  /// scheduled globals, or undelivered mail (which counts as due "now").
  /// Engine::kNoEvent means a run() would return immediately — the idle
  /// test bounded drivers (campaign checkpoint slicing) use to tell an
  /// idle gap from a dead system. Call only between runs.
  [[nodiscard]] Tick next_event_time() const {
    Tick nt = Engine::kNoEvent;
    for (const auto& e : engines_) nt = std::min(nt, e->next_event_time());
    if (!globals_.empty()) nt = std::min(nt, globals_.front().t);
    if (mail_pending()) nt = std::min(nt, engines_.front()->now());
    return nt;
  }

 private:
  /// Spin-then-park gate: waiters spin briefly on `gen` (`spin`
  /// iterations), then park in atomic wait; bumping wakes them only when
  /// someone is actually parked.
  struct Gate {
    std::atomic<std::uint32_t> gen{0};
    std::atomic<std::uint32_t> parked{0};
    void bump_and_release();
    void await(std::uint32_t old, int spin);
  };

  struct GlobalEvent {
    Tick t = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  std::vector<MailRecord>& outbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * engines_.size() +
                 static_cast<std::size_t>(dst)];
  }

  void drive(Tick limit, bool bounded);
  void run_fused(Tick end, bool inclusive);
  void executor_run(int executor);
  void exec_window(int executor);
  bool decide();
  void merge_and_apply(Tick barrier);
  void worker_loop(int executor);
  void pop_global_min(GlobalEvent& out);

  std::vector<std::unique_ptr<Engine>> engines_;
  Tick lookahead_ = 1;
  std::vector<std::vector<MailRecord>> mail_;  ///< [src * S + dst] outboxes
  /// Per-outbox (key, record position) index for post_mail_accum; cleared
  /// when the outbox drains at a merge.
  std::vector<std::vector<std::pair<std::int64_t, std::uint32_t>>> accum_;
  std::vector<std::vector<MailRecord>> staged_;  ///< [dst] barrier staging
  MailHandler handler_;
  std::vector<GlobalEvent> globals_;  ///< min-heap on (t, seq)
  std::uint64_t global_seq_ = 0;
  std::uint64_t total_budget_ = std::numeric_limits<std::uint64_t>::max();
  Stats stats_;
  std::vector<ExecutorStat> exec_;

  // --- executor coordination (see the adaptive-coordination file comment).
  // Plan fields (win_end_, win_incl_, run_done_, limit_, bounded_) are
  // plain: they are written by the coordinator before a Gate release-bump
  // or by the deciding executor before the barrier release-bump, and read
  // only after the matching acquire.
  int workers_total_ = 1;  ///< executors incl. the coordinating thread
  /// Barrier spin depth before parking. 0 when the executor count exceeds
  /// the hardware thread count: an oversubscribed spinner only steals the
  /// core its partner needs, so parking immediately is strictly better.
  int spin_ = 2048;
  std::vector<int> shard_lo_;  ///< executor e runs shards [lo[e], lo[e+1])
  std::vector<std::thread> threads_;
  Gate run_;                ///< launches a fused run on the workers
  Gate barrier_;            ///< per-window rendezvous within a run
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint32_t> checked_in_{0};  ///< workers still in the run
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> mail_count_{0};  ///< records pending delivery
  std::atomic<std::uint64_t> mail_posted_{0};
  std::atomic<std::uint64_t> mail_compacted_{0};
  Tick win_end_ = 0;
  bool win_incl_ = false;
  bool run_done_ = false;
  Tick limit_ = 0;
  bool bounded_ = false;
  bool inline_merge_ = true;  ///< last arriver merges in-run (wall-clock only)
  /// Set by decide() when it ends a run at a barrier it already merged
  /// inline, so drive() must not merge that barrier a second time (the
  /// double merge would be a state no-op but would skew stats_.merges off
  /// the fixed-coordination count, breaking A/B comparability).
  bool final_merged_ = false;
  /// Exclusive bound (run_until_exclusive): the final window ends AT the
  /// limit but stays exclusive, and globals due exactly at the limit are
  /// left for the continuation — both required for checkpoint slicing to
  /// reproduce the unsliced window/merge sequence.
  bool excl_ = false;
};

}  // namespace dfsim::sim
