// Conservatively synchronized sharded execution of cooperating Engines.
//
// One Engine per shard, driven in lock-step bounded time windows whose
// width is the model's lookahead (the minimum latency of any cross-shard
// interaction; for the dragonfly, the minimum rank-3 link + router latency,
// see topo::ShardPlan). Within a window each shard executes its own events
// serially and independently; all cross-shard effects are posted as
// MailRecords into per-(src, dst) outboxes and merged at the window
// barrier in a canonical (due, kind, key, seq) order that does not depend
// on the physical interleaving of the workers — so the simulation result
// is a pure function of the shard *plan*, never of thread timing, worker
// count, or which shard happened to run first.
//
// Determinism contract: the schedule produced for a given model is
// identical for every shard count S >= 1, because
//  * the window grid is derived from the lookahead alone (ShardPlan makes
//    the lookahead partition-independent),
//  * each shard's window execution is a serial (time, seq) run over state
//    only that shard touches,
//  * mail is merged at every barrier under a total order computed from
//    model quantities (due time, record kind, a model-assigned key),
//  * stop requests and event budgets are only evaluated at barriers.
// The owner (net::Network) must uphold its side: all cross-shard state
// transfer goes through mail, and records that could collide at equal due
// carry distinguishing keys.
//
// Threading: shards are distributed over min(S, workers) executor threads
// (the calling thread is executor 0). The worker count affects wall-clock
// only — results depend on the shard count, never on the worker count.
// schedule_global() and post_mail() during the apply phase must only be
// used from the coordinating thread; post_mail(src, ...) during a window
// only from the thread executing shard `src`. Shard 0 (the "host" shard,
// which owns the MPI/application layer) always runs on executor 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dfsim::sim {

/// One cross-shard effect. Sorted at the barrier by (due, kind, key, seq);
/// the owner defines kind/key/seq such that no two records that could
/// interact compare equal. a..d are owner-defined payload.
struct MailRecord {
  Tick due = 0;
  std::uint32_t kind = 0;
  std::uint32_t seq = 0;
  std::int64_t key = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;
};

class ShardedEngine {
 public:
  /// `workers` = executor thread cap (0 = DFSIM_SHARD_WORKERS env, else
  /// min(shards, hardware threads)). Never affects results.
  ShardedEngine(int shards, Tick lookahead, int workers = 0);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] int num_shards() const { return static_cast<int>(engines_.size()); }
  [[nodiscard]] int num_workers() const { return workers_total_; }
  [[nodiscard]] Tick lookahead() const { return lookahead_; }
  [[nodiscard]] Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }
  /// Shard 0: owns the MPI/application layer and the global clock queries.
  [[nodiscard]] Engine& host() { return shard(0); }

  /// Post a cross-shard effect; delivered to the mail handler at the next
  /// window barrier. Single-writer per `src` (see file comment).
  void post_mail(int src, int dst, const MailRecord& rec) {
    mail_[static_cast<std::size_t>(src) * engines_.size() +
          static_cast<std::size_t>(dst)]
        .push_back(rec);
  }

  /// Barrier mail delivery: called once per destination shard with that
  /// shard's records sorted canonically. Runs on the coordinating thread
  /// with every shard parked at the barrier (now() == barrier time).
  using MailHandler = std::function<void(int dst, std::span<MailRecord>)>;
  void set_mail_handler(MailHandler h) { handler_ = std::move(h); }

  /// Run `fn` at the first barrier with time >= t (ties in registration
  /// order), with all shards quiesced. Host-thread only.
  void schedule_global(Tick t, std::function<void()> fn);

  /// Total event budget across all shards, evaluated at barriers.
  void set_event_budget(std::uint64_t total);
  [[nodiscard]] bool budget_exhausted() const {
    return events_executed() >= total_budget_;
  }
  [[nodiscard]] std::uint64_t events_executed() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->events_executed();
    return n;
  }

  /// Run windows until the host shard requests stop (observed at a
  /// barrier), the whole system is idle, or the budget is exhausted.
  void run();
  /// Run windows covering events with time <= t; every shard's clock ends
  /// at exactly t (the final partial window is barriered at t itself).
  void run_until(Tick t);

  struct Stats {
    std::uint64_t windows = 0;          ///< barriers executed
    std::uint64_t mail_records = 0;     ///< records merged over the run
    std::int64_t barrier_wait_ns = 0;   ///< coordinator time parked waiting
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void drive(Tick limit, bool bounded);
  void run_window_parallel(Tick end, bool inclusive);
  void run_shards_of(int executor, Tick end, bool inclusive);
  void merge_and_apply(Tick barrier);
  void worker_loop(int executor);
  [[nodiscard]] bool mail_pending() const;

  struct GlobalEvent {
    Tick t = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  std::vector<std::unique_ptr<Engine>> engines_;
  Tick lookahead_ = 1;
  std::vector<std::vector<MailRecord>> mail_;  ///< [src * S + dst] outboxes
  std::vector<std::vector<MailRecord>> staged_;  ///< [dst] barrier staging
  MailHandler handler_;
  std::vector<GlobalEvent> globals_;  ///< kept sorted by (t, seq)
  std::uint64_t global_seq_ = 0;
  std::uint64_t total_budget_ = std::numeric_limits<std::uint64_t>::max();
  Stats stats_;

  // Window barrier (mutex + condvar; windows are coarse enough that the
  // wakeup cost is noise next to the events they contain).
  int workers_total_ = 1;  ///< executors incl. the coordinating thread
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_go_, cv_done_;
  std::uint64_t window_gen_ = 0;
  int running_ = 0;
  Tick win_end_ = 0;
  bool win_incl_ = false;
  bool shutdown_ = false;
};

}  // namespace dfsim::sim
