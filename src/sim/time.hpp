// Simulation time base for dfsim.
//
// All simulation time is kept in integer nanoseconds (`Tick`). Integer time
// keeps event ordering exact and reproducible across platforms; helpers below
// convert to/from human units.
#pragma once

#include <cstdint>

namespace dfsim::sim {

/// Simulation time in nanoseconds. Signed so durations/differences are safe.
using Tick = std::int64_t;

inline constexpr Tick kNanosecond = 1;
inline constexpr Tick kMicrosecond = 1'000;
inline constexpr Tick kMillisecond = 1'000'000;
inline constexpr Tick kSecond = 1'000'000'000;

/// Convert a tick count to floating-point microseconds.
constexpr double to_us(Tick t) { return static_cast<double>(t) / 1e3; }
/// Convert a tick count to floating-point milliseconds.
constexpr double to_ms(Tick t) { return static_cast<double>(t) / 1e6; }
/// Convert a tick count to floating-point seconds.
constexpr double to_s(Tick t) { return static_cast<double>(t) / 1e9; }

/// Serialization time in ns for `bytes` at `gbytes_per_s` (GB/s, base-10).
/// Rounds up so zero-cost transmission is impossible for non-empty payloads.
constexpr Tick serialization_ns(std::int64_t bytes, double gbytes_per_s) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) / gbytes_per_s;
  const Tick t = static_cast<Tick>(ns);
  return t > 0 ? t : 1;
}

}  // namespace dfsim::sim
