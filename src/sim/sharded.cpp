#include "sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace dfsim::sim {

namespace {

int resolve_workers(int shards, int requested) {
  if (requested <= 0) {
    if (const char* env = std::getenv("DFSIM_SHARD_WORKERS")) {
      const int v = std::atoi(env);
      if (v > 0) requested = v;
    }
  }
  if (requested <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? static_cast<int>(hw) : 1;
  }
  return std::clamp(requested, 1, shards);
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool mail_less(const MailRecord& x, const MailRecord& y) {
  if (x.due != y.due) return x.due < y.due;
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.key != y.key) return x.key < y.key;
  return x.seq < y.seq;
}

}  // namespace

ShardedEngine::ShardedEngine(int shards, Tick lookahead, int workers)
    : lookahead_(lookahead > 0 ? lookahead : 1) {
  if (shards < 1) shards = 1;
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    engines_.push_back(std::make_unique<Engine>());
  mail_.resize(static_cast<std::size_t>(shards) *
               static_cast<std::size_t>(shards));

  workers_total_ = resolve_workers(shards, workers);
  threads_.reserve(static_cast<std::size_t>(workers_total_ - 1));
  for (int w = 1; w < workers_total_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_go_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardedEngine::schedule_global(Tick t, std::function<void()> fn) {
  GlobalEvent ev{t, global_seq_++, std::move(fn)};
  auto it = std::upper_bound(
      globals_.begin(), globals_.end(), ev,
      [](const GlobalEvent& x, const GlobalEvent& y) {
        return x.t != y.t ? x.t < y.t : x.seq < y.seq;
      });
  globals_.insert(it, std::move(ev));
}

void ShardedEngine::set_event_budget(std::uint64_t total) {
  total_budget_ = total;
  // Each shard also stops popping at the total, bounding how far a runaway
  // window can run past the abort decision taken at the next barrier.
  for (auto& e : engines_) e->set_event_budget(total);
}

void ShardedEngine::run_shards_of(int executor, Tick end, bool inclusive) {
  for (int s = executor; s < num_shards(); s += workers_total_)
    engines_[static_cast<std::size_t>(s)]->run_window(end, inclusive);
}

void ShardedEngine::worker_loop(int executor) {
  std::uint64_t seen = 0;
  for (;;) {
    Tick end;
    bool incl;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_go_.wait(lk, [&] { return shutdown_ || window_gen_ != seen; });
      if (shutdown_) return;
      seen = window_gen_;
      end = win_end_;
      incl = win_incl_;
    }
    run_shards_of(executor, end, incl);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ShardedEngine::run_window_parallel(Tick end, bool inclusive) {
  if (threads_.empty()) {
    run_shards_of(0, end, inclusive);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    win_end_ = end;
    win_incl_ = inclusive;
    running_ = static_cast<int>(threads_.size());
    ++window_gen_;
  }
  cv_go_.notify_all();
  run_shards_of(0, end, inclusive);
  const std::int64_t t0 = steady_ns();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return running_ == 0; });
  }
  stats_.barrier_wait_ns += steady_ns() - t0;
}

bool ShardedEngine::mail_pending() const {
  for (const auto& box : mail_)
    if (!box.empty()) return true;
  return false;
}

void ShardedEngine::merge_and_apply(Tick barrier) {
  const int S = num_shards();
  if (staged_.size() != static_cast<std::size_t>(S))
    staged_.resize(static_cast<std::size_t>(S));
  // Phase 1: move EVERY outbox into per-destination staging before ANY
  // handler runs. Mail the handlers themselves post (a completion callback
  // injecting a fresh message, a credit return restarting a port that
  // immediately transmits) then stays in the outboxes until the next
  // barrier, so delivery timing never depends on which destination happens
  // to be processed first.
  for (int dst = 0; dst < S; ++dst) {
    auto& stage = staged_[static_cast<std::size_t>(dst)];
    stage.clear();
    for (int src = 0; src < S; ++src) {
      auto& box = mail_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(S) +
                        static_cast<std::size_t>(dst)];
      stage.insert(stage.end(), box.begin(), box.end());
      box.clear();
    }
  }
  // Phase 2: canonical order, then deliver. stable_sort, so records equal
  // under (due, kind, key, seq) keep concatenation order; by the owner's
  // contract such ties are either single-source (their relative order is
  // that shard's serial event order, which is partition-independent) or
  // fully commutative (per-message byte progress).
  for (int dst = 0; dst < S; ++dst) {
    auto& stage = staged_[static_cast<std::size_t>(dst)];
    if (stage.empty()) continue;
    std::stable_sort(stage.begin(), stage.end(), mail_less);
    stats_.mail_records += stage.size();
    if (handler_) handler_(dst, std::span<MailRecord>(stage));
  }
  // Then globals due at or before this barrier, in (t, seq) order. A global
  // may register further globals; those run this barrier too if already due.
  while (!globals_.empty() && globals_.front().t <= barrier) {
    auto fn = std::move(globals_.front().fn);
    globals_.erase(globals_.begin());
    fn();
  }
}

void ShardedEngine::drive(Tick limit, bool bounded) {
  for (;;) {
    if (budget_exhausted() || host().stopped()) return;

    Tick nt = Engine::kNoEvent;
    for (const auto& e : engines_) nt = std::min(nt, e->next_event_time());
    if (!globals_.empty()) nt = std::min(nt, globals_.front().t);
    // Undelivered outbox mail (posted during the last apply phase) keeps
    // the system live even when every engine is idle: run one more window
    // so the next barrier delivers it.
    if (mail_pending()) nt = std::min(nt, host().now());

    if (nt == Engine::kNoEvent || (bounded && nt > limit)) {
      if (bounded)
        for (auto& e : engines_)
          e->run_window(limit, false);  // no events; just advance clocks
      return;
    }

    // Next barrier on the lookahead grid strictly after nt; events exactly
    // on a barrier belong to the *following* window (strict < in
    // run_window), so the grid itself is partition-independent.
    Tick end = (nt / lookahead_ + 1) * lookahead_;
    bool inclusive = false;
    if (bounded && end >= limit) {
      end = limit;  // final partial window, closed at the limit itself
      inclusive = true;
    }

    run_window_parallel(end, inclusive);
    merge_and_apply(end);
    ++stats_.windows;
  }
}

void ShardedEngine::run() { drive(0, /*bounded=*/false); }

void ShardedEngine::run_until(Tick t) { drive(t, /*bounded=*/true); }

}  // namespace dfsim::sim
