#include "sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace dfsim::sim {

namespace {

int resolve_workers(int shards, int requested) {
  if (requested <= 0) {
    if (const char* env = std::getenv("DFSIM_SHARD_WORKERS")) {
      const int v = std::atoi(env);
      if (v > 0) requested = v;
    }
  }
  if (requested <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? static_cast<int>(hw) : 1;
  }
  // Explicit requests are honoured even past the hardware thread count
  // (oversubscription is a wall-clock choice, never a correctness one);
  // only the shard count bounds the useful executor count.
  return std::clamp(requested, 1, shards);
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

bool mail_less(const MailRecord& x, const MailRecord& y) {
  if (x.due != y.due) return x.due < y.due;
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.key != y.key) return x.key < y.key;
  return x.seq < y.seq;
}

}  // namespace

// ---------------------------------------------------------------------------
// Gate: centralized spin-then-park rendezvous.
//
// A waiter spins briefly on `gen` (windows are short — ~100 µs of events —
// so the partner is usually microseconds away) and only then parks in the
// futex-backed atomic wait. The bumper pays the wake syscall only when
// someone actually parked. atomic::wait re-checks the value before
// blocking, so the park/bump race cannot lose a wakeup: if the bump lands
// between a waiter's last spin probe and its park, the wait call returns
// immediately.

void ShardedEngine::Gate::bump_and_release() {
  gen.fetch_add(1, std::memory_order_release);
  if (parked.load(std::memory_order_seq_cst) > 0) gen.notify_all();
}

void ShardedEngine::Gate::await(std::uint32_t old, int spin) {
  for (int i = 0; i < spin; ++i) {
    if (gen.load(std::memory_order_acquire) != old) return;
    cpu_relax();
  }
  if (gen.load(std::memory_order_acquire) != old) return;
  parked.fetch_add(1, std::memory_order_seq_cst);
  while (gen.load(std::memory_order_acquire) == old)
    gen.wait(old, std::memory_order_acquire);
  parked.fetch_sub(1, std::memory_order_relaxed);
}

ShardedEngine::ShardedEngine(int shards, Tick lookahead, int workers)
    : lookahead_(lookahead > 0 ? lookahead : 1) {
  if (shards < 1) shards = 1;
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    engines_.push_back(std::make_unique<Engine>());
  mail_.resize(static_cast<std::size_t>(shards) *
               static_cast<std::size_t>(shards));
  accum_.resize(mail_.size());

  workers_total_ = resolve_workers(shards, workers);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && static_cast<unsigned>(workers_total_) > hw) spin_ = 0;
  exec_.resize(static_cast<std::size_t>(workers_total_));

  // Contiguous shard blocks: executor e runs [shard_lo_[e], shard_lo_[e+1]).
  // Contiguity keeps each executor's engines (and their event-queue slabs)
  // adjacent, and pins shard 0 — the host shard — to executor 0, the
  // coordinating thread.
  shard_lo_.resize(static_cast<std::size_t>(workers_total_) + 1, 0);
  const int base = shards / workers_total_;
  const int rem = shards % workers_total_;
  for (int e = 0; e < workers_total_; ++e)
    shard_lo_[static_cast<std::size_t>(e) + 1] =
        shard_lo_[static_cast<std::size_t>(e)] + base + (e < rem ? 1 : 0);

  threads_.reserve(static_cast<std::size_t>(workers_total_ - 1));
  for (int w = 1; w < workers_total_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ShardedEngine::~ShardedEngine() {
  shutdown_.store(true, std::memory_order_release);
  run_.bump_and_release();
  for (auto& t : threads_) t.join();
}

void ShardedEngine::schedule_global(Tick t, std::function<void()> fn) {
  globals_.push_back(GlobalEvent{t, global_seq_++, std::move(fn)});
  std::push_heap(globals_.begin(), globals_.end(),
                 [](const GlobalEvent& x, const GlobalEvent& y) {
                   return x.t != y.t ? x.t > y.t : x.seq > y.seq;
                 });
}

void ShardedEngine::pop_global_min(GlobalEvent& out) {
  std::pop_heap(globals_.begin(), globals_.end(),
                [](const GlobalEvent& x, const GlobalEvent& y) {
                  return x.t != y.t ? x.t > y.t : x.seq > y.seq;
                });
  out = std::move(globals_.back());
  globals_.pop_back();
}

void ShardedEngine::set_event_budget(std::uint64_t total) {
  total_budget_ = total;
  // Each shard also stops popping at the total, bounding how far a runaway
  // window can run past the abort decision taken at the next barrier.
  for (auto& e : engines_) e->set_event_budget(total);
}

void ShardedEngine::post_mail_accum(int src, int dst, const MailRecord& rec) {
  const std::size_t box_ix = static_cast<std::size_t>(src) * engines_.size() +
                             static_cast<std::size_t>(dst);
  auto& box = mail_[box_ix];
  auto& index = accum_[box_ix];
  for (const auto& [key, pos] : index) {
    if (key != rec.key) continue;
    MailRecord& m = box[pos];
    if (m.kind != rec.kind) continue;
    // Fold: sum the accumulating payload, keep everything else from the
    // newer record so the merged record sorts at the canonical position of
    // the final increment (the one whose threshold crossing matters).
    const std::int64_t sum = m.a + rec.a;
    m = rec;
    m.a = sum;
    mail_posted_.fetch_add(1, std::memory_order_relaxed);
    mail_compacted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Cap the linear index; past it, extra keys fall back to plain posts
  // (correct, just uncompacted).
  constexpr std::size_t kAccumIndexCap = 64;
  if (index.size() < kAccumIndexCap)
    index.emplace_back(rec.key, static_cast<std::uint32_t>(box.size()));
  post_mail(src, dst, rec);
}

void ShardedEngine::exec_window(int executor) {
  const Tick end = win_end_;
  const bool incl = win_incl_;
  auto& st = exec_[static_cast<std::size_t>(executor)];
  const std::int64_t t0 = steady_ns();
  for (int s = shard_lo_[static_cast<std::size_t>(executor)];
       s < shard_lo_[static_cast<std::size_t>(executor) + 1]; ++s)
    engines_[static_cast<std::size_t>(s)]->run_window(end, incl);
  st.busy_ns += steady_ns() - t0;
  ++st.windows;
}

bool ShardedEngine::decide() {
  ++stats_.windows;
  const Tick bar = win_end_;
  final_merged_ = false;
  // Reasons the run must return to the coordinator, checked from model
  // state only (every executor is quiesced at this barrier, and the
  // acq_rel arrival chain made all their writes visible here).
  if (win_incl_) return true;  // final bounded window: limit reached
  if (excl_ && bar >= limit_) return true;  // final exclusive window
  if (host().stopped()) return true;
  if (budget_exhausted()) return true;

  const bool due_mail = mail_count_.load(std::memory_order_relaxed) != 0;
  const bool due_global = !globals_.empty() && globals_.front().t <= bar;
  if (due_mail || due_global) {
    if (!inline_merge_) return true;
    // In-run merge: every other executor is parked at this barrier, so the
    // deciding thread has the same exclusive quiesced access the
    // coordinator would — merge here and release everyone straight into
    // the next window. Exactly the merge drive() would have performed at
    // this barrier, so the merge sequence is mode-independent.
    merge_and_apply(bar);
    ++stats_.merges;
    final_merged_ = true;
    // A merge can flip the stop conditions (a threshold-crossing delivery
    // completing the watched job, the budget check absorbing merge-
    // scheduled work); drive() re-checks these at its loop top, so the
    // post-merge continuation must too — without merging again.
    if (host().stopped()) return true;
    if (budget_exhausted()) return true;
    // Post-merge continuation: mirror drive()'s next-window formula
    // EXACTLY — future globals keep the system live, and handler-posted
    // mail (due "now", i.e. at this barrier) forces one more window so the
    // next barrier delivers it. Any divergence here would give the A/B
    // modes different window sequences.
    Tick nt = Engine::kNoEvent;
    for (const auto& e : engines_) nt = std::min(nt, e->next_event_time());
    if (!globals_.empty()) nt = std::min(nt, globals_.front().t);
    if (mail_pending()) nt = std::min(nt, bar);
    if (nt == Engine::kNoEvent) return true;  // idle: drive() confirms
    if (bounded_ && (excl_ ? nt >= limit_ : nt > limit_)) return true;
    Tick end = (nt / lookahead_ + 1) * lookahead_;
    bool inclusive = false;
    if (bounded_ && end >= limit_) {
      end = limit_;
      inclusive = !excl_;
    }
    win_end_ = end;
    win_incl_ = inclusive;
    final_merged_ = false;  // the merged barrier is behind us now
    ++stats_.fused;
    return false;
  }

  Tick nt = Engine::kNoEvent;
  for (const auto& e : engines_) nt = std::min(nt, e->next_event_time());
  if (nt == Engine::kNoEvent) return true;  // idle: nothing anywhere
  if (bounded_ && (excl_ ? nt >= limit_ : nt > limit_)) return true;

  // No mail, no due globals, no stop: the merge here would be a no-op, so
  // fuse straight into the next grid window. Same formula as the
  // coordinator's, from the same quiesced state — the window sequence is
  // exactly what the unfused loop would have produced. (Engines-only nt,
  // deliberately: this is the legacy fused path and both A/B modes take it
  // when the barrier is empty, so it must stay formula-identical to
  // itself, not to drive().)
  Tick end = (nt / lookahead_ + 1) * lookahead_;
  bool inclusive = false;
  if (bounded_ && end >= limit_) {
    end = limit_;
    inclusive = !excl_;
  }
  win_end_ = end;
  win_incl_ = inclusive;
  ++stats_.fused;
  return false;
}

void ShardedEngine::executor_run(int executor) {
  auto& st = exec_[static_cast<std::size_t>(executor)];
  for (;;) {
    exec_window(executor);
    // Centralized barrier; the last arriver decides whether the run fuses
    // into another window or ends. Capturing the generation BEFORE
    // arriving is what makes the await race-free: the bump for this
    // barrier cannot happen until after our own arrival.
    const std::uint32_t gen = barrier_.gen.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        static_cast<std::uint32_t>(workers_total_)) {
      run_done_ = decide();
      arrived_.store(0, std::memory_order_relaxed);
      barrier_.bump_and_release();
    } else {
      const std::int64_t t0 = steady_ns();
      barrier_.await(gen, spin_);
      st.wait_ns += steady_ns() - t0;
    }
    if (run_done_) return;
  }
}

void ShardedEngine::worker_loop(int executor) {
  std::uint32_t seen = 0;
  for (;;) {
    run_.await(seen, spin_);
    ++seen;
    if (shutdown_.load(std::memory_order_acquire)) return;
    executor_run(executor);
    checked_in_.fetch_sub(1, std::memory_order_release);
  }
}

void ShardedEngine::run_fused(Tick end, bool inclusive) {
  win_end_ = end;
  win_incl_ = inclusive;
  run_done_ = false;
  if (workers_total_ == 1) {
    executor_run(0);
    return;
  }
  checked_in_.store(static_cast<std::uint32_t>(workers_total_ - 1),
                    std::memory_order_relaxed);
  run_.bump_and_release();
  executor_run(0);
  // The final barrier released everyone, but a straggler may still be
  // between that release and its check-in; drain before the coordinator
  // touches plan fields or reads executor stats. Spin briefly, then yield —
  // on an oversubscribed host the straggler needs this core to get there.
  for (int i = 0; checked_in_.load(std::memory_order_acquire) != 0; ++i) {
    if (i < spin_)
      cpu_relax();
    else
      std::this_thread::yield();
  }
}

void ShardedEngine::merge_and_apply(Tick barrier) {
  const int S = num_shards();
  if (staged_.size() != static_cast<std::size_t>(S))
    staged_.resize(static_cast<std::size_t>(S));
  // Phase 1: move EVERY outbox into per-destination staging before ANY
  // handler runs. Mail the handlers themselves post (a completion callback
  // injecting a fresh message, a credit return restarting a port that
  // immediately transmits) then stays in the outboxes until the next
  // barrier, so delivery timing never depends on which destination happens
  // to be processed first.
  for (int dst = 0; dst < S; ++dst) {
    auto& stage = staged_[static_cast<std::size_t>(dst)];
    stage.clear();
    for (int src = 0; src < S; ++src) {
      const std::size_t box_ix = static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(S) +
                                 static_cast<std::size_t>(dst);
      auto& box = mail_[box_ix];
      stage.insert(stage.end(), box.begin(), box.end());
      box.clear();
      accum_[box_ix].clear();
    }
  }
  // All pending mail is now staged; handler-posted mail re-increments.
  mail_count_.store(0, std::memory_order_relaxed);
  // Phase 2: canonical order, then deliver. stable_sort, so records equal
  // under (due, kind, key, seq) keep concatenation order; by the owner's
  // contract such ties are either single-source (their relative order is
  // that shard's serial event order, which is partition-independent) or
  // fully commutative (per-message byte progress).
  for (int dst = 0; dst < S; ++dst) {
    auto& stage = staged_[static_cast<std::size_t>(dst)];
    if (stage.empty()) continue;
    std::stable_sort(stage.begin(), stage.end(), mail_less);
    stats_.mail_records += stage.size();
    if (handler_) handler_(dst, std::span<MailRecord>(stage));
  }
  // Then globals due at or before this barrier, in (t, seq) order. A global
  // may register further globals; those run this barrier too if already due.
  // At an exclusive limit the comparison is strict: a global due exactly at
  // the limit belongs to the continuation's first barrier (the unbounded
  // loop would only reach it with a window ending at limit + lookahead, so
  // running it here would fire it one barrier early vs an unsliced run).
  const Tick due_bound = (excl_ && barrier >= limit_) ? barrier - 1 : barrier;
  while (!globals_.empty() && globals_.front().t <= due_bound) {
    GlobalEvent ev;
    pop_global_min(ev);
    ev.fn();
  }
}

void ShardedEngine::drive(Tick limit, bool bounded) {
  limit_ = limit;
  bounded_ = bounded;
  const std::int64_t wall0 = steady_ns();
  const std::int64_t busy0 = exec_[0].busy_ns;
  const std::int64_t wait0 = exec_[0].wait_ns;
  for (;;) {
    if (budget_exhausted() || host().stopped()) break;

    Tick nt = Engine::kNoEvent;
    for (const auto& e : engines_) nt = std::min(nt, e->next_event_time());
    if (!globals_.empty()) nt = std::min(nt, globals_.front().t);
    // Undelivered outbox mail (posted during the last apply phase) keeps
    // the system live even when every engine is idle: run one more window
    // so the next barrier delivers it.
    if (mail_pending()) nt = std::min(nt, host().now());

    if (nt == Engine::kNoEvent ||
        (bounded && (excl_ ? nt >= limit : nt > limit))) {
      if (bounded)
        for (auto& e : engines_)
          e->run_window(limit, false);  // no events; just advance clocks
      break;
    }

    // Next barrier on the lookahead grid strictly after nt; events exactly
    // on a barrier belong to the *following* window (strict < in
    // run_window), so the grid itself is partition-independent.
    Tick end = (nt / lookahead_ + 1) * lookahead_;
    bool inclusive = false;
    if (bounded && end >= limit) {
      // Final partial window. run_until closes it at the limit itself;
      // run_until_exclusive keeps it exclusive so time-limit events stay
      // queued for the continuation's first window.
      end = limit;
      inclusive = !excl_;
    }

    // Fused run: executes one or more consecutive grid windows and returns
    // with every shard quiesced at win_end_. With inline merges on, the
    // deciding executor may already have merged this final barrier (and
    // every earlier one) in-run — merge here only when it did not.
    run_fused(end, inclusive);
    if (!final_merged_) {
      merge_and_apply(win_end_);
      ++stats_.merges;
    }
  }
  stats_.barrier_wait_ns = exec_[0].wait_ns;
  stats_.mail_posted = mail_posted_.load(std::memory_order_relaxed);
  stats_.mail_compacted = mail_compacted_.load(std::memory_order_relaxed);
  // Coordination time = everything on this thread that was neither shard
  // execution nor barrier waiting: merges, globals, window planning. This
  // is the serial fraction of a sharded run, and it is just as real on the
  // single-worker path (where barrier_wait_ns is legitimately ~0).
  stats_.coord_ns += (steady_ns() - wall0) - (exec_[0].busy_ns - busy0) -
                     (exec_[0].wait_ns - wait0);
}

void ShardedEngine::run() { drive(0, /*bounded=*/false); }

void ShardedEngine::run_until(Tick t) { drive(t, /*bounded=*/true); }

void ShardedEngine::run_until_exclusive(Tick t) {
  excl_ = true;
  drive(t, /*bounded=*/true);
  excl_ = false;
}

}  // namespace dfsim::sim
