// Deterministic random number generation for dfsim.
//
// xoshiro256** seeded via splitmix64. We intentionally avoid <random>'s
// distributions for cross-platform reproducibility of experiment streams: a
// given seed must yield the same placements, workloads, and traffic on every
// build. `fork()` derives statistically independent child streams so that
// subsystems (placement, per-rank jitter, background workload) cannot perturb
// each other's sequences.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace dfsim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
    for (auto& word : state_) {
      std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Gaussian via Box-Muller (no cached spare: keeps the stream stateless
  /// with respect to call interleavings).
  double normal(double mu, double sigma) {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Exponential with the given rate (1/mean).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Log-normal with the given underlying normal parameters.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct elements from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform_u64(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  /// Derive an independent child stream.
  Rng fork() { return Rng(next() ^ 0xD6E8FEB86659FD93ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dfsim::sim
