// Verified logical checkpoints of a running simulation.
//
// An EngineSnapshot does NOT serialize raw engine memory — event queues
// hold pooled callbacks (SmallFn closures capturing model pointers) and
// suspended coroutine frames, neither of which has a stable byte
// representation. Instead it captures what the determinism contract makes
// sufficient: WHERE the run is (the quiesced checkpoint time, per-shard
// clocks and event counts) and a 128-bit digest of the observable model
// state there (net::Network::digest_state). Because every run of a
// scenario is a pure function of its resolved config + seed, restoring is
// deterministic re-execution: rebuild the machine, run to the checkpoint
// time with the same slicing primitive, and verify the digest — from that
// point the continuation is byte-identical to a run that never stopped
// (see ShardedEngine::run_until_exclusive for why the slice boundary is
// exact). A digest mismatch means the snapshot does not belong to this
// scenario/engine version and the restore must be rejected, never trusted.
//
// Snapshots embed the campaign scenario fingerprint (as two opaque words —
// sim does not depend on campaign) and the engine-version salt string, so
// a snapshot taken by a different build or for a different scenario is
// rejected before any replay work happens.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dfsim::sim {

struct SnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct EngineSnapshot {
  /// Bump on any layout change; parse() rejects other versions.
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint64_t scenario_hi = 0;  ///< campaign scenario fingerprint words
  std::uint64_t scenario_lo = 0;
  std::string salt;               ///< engine-version salt of the writer
  Tick checkpoint_time = 0;       ///< quiesced simulated time of capture

  struct ShardClock {
    Tick now = 0;
    std::uint64_t events = 0;  ///< events executed by this shard so far
  };
  std::vector<ShardClock> shards;  ///< one entry in serial mode

  std::uint64_t digest_hi = 0;  ///< model-state digest at checkpoint_time
  std::uint64_t digest_lo = 0;

  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  /// Throws SnapshotError on any malformed, truncated, or
  /// version-mismatched stream.
  [[nodiscard]] static EngineSnapshot from_bytes(
      std::span<const std::uint8_t> bytes);

  /// Full value equality — what "the restored run re-reached the same
  /// state" means.
  [[nodiscard]] bool operator==(const EngineSnapshot& o) const;
};

}  // namespace dfsim::sim
