#!/usr/bin/env python3
"""Plot the CSV artifacts the benches write with --csv=DIR.

Usage:
    for b in build/bench/*; do $b --csv=out; done
    python3 tools/plot_results.py out/

Produces PNGs next to each recognized CSV. Only needs matplotlib; any CSV
it does not recognize is listed and skipped, so the script stays usable as
new benches add artifacts.
"""
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def plot_table2(path, plt):
    rows = read_csv(path)
    apps = sorted({r["app"] for r in rows})
    fig, ax = plt.subplots(figsize=(8, 4))
    for i, app in enumerate(apps):
        for j, mode in enumerate(("AD0", "AD3")):
            ys = [float(r["runtime_ms"]) for r in rows
                  if r["app"] == app and r["mode"] == mode]
            xs = [i + (j - 0.5) * 0.3] * len(ys)
            ax.plot(xs, ys, "o", color="C0" if mode == "AD0" else "C3",
                    alpha=0.6, label=mode if i == 0 else None)
    ax.set_xticks(range(len(apps)))
    ax.set_xticklabels(apps, rotation=30, ha="right")
    ax.set_ylabel("runtime (ms)")
    ax.set_title("Table II — per-run runtimes, AD0 vs AD3")
    ax.legend()
    return fig


def plot_fig14(path, plt):
    rows = read_csv(path)
    fig, ax = plt.subplots(figsize=(7, 4))
    pct = [r["percentile"] for r in rows]
    chg = [float(r["change_pct"]) for r in rows]
    ax.bar(pct, chg, color=["C3" if c < 0 else "C0" for c in chg])
    ax.axhline(0, color="k", lw=0.8)
    ax.set_ylabel("% change in latency (AD3 vs AD0)")
    ax.set_title("Fig. 14 — packet-pair latency percentiles")
    return fig


def plot_tiles(path, plt):
    rows = read_csv(path)
    fig, ax = plt.subplots(figsize=(8, 4))
    colors = {"Rank1": "green", "Rank2": "grey", "Rank3": "blue",
              "Proc": "red"}
    for cls, color in colors.items():
        pts = [(int(r["flits"]), int(r["stall_ns"])) for r in rows
               if r["class"] == cls]
        if not pts:
            continue
        ax.scatter([p[0] for p in pts], [p[1] for p in pts], s=4, c=color,
                   label=cls, alpha=0.5)
    ax.set_xlabel("flits")
    ax.set_ylabel("stall time (ns)")
    ax.set_xscale("symlog")
    ax.set_yscale("symlog")
    ax.set_title(os.path.basename(path).replace(".csv", "") +
                 " — per-tile counters (paper Figs. 10/12 scatter)")
    ax.legend()
    return fig


HANDLERS = {
    "table2_runs.csv": plot_table2,
    "fig14_latency.csv": plot_fig14,
}


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1
    outdir = sys.argv[1]
    made = 0
    for name in sorted(os.listdir(outdir)):
        if not name.endswith(".csv"):
            continue
        path = os.path.join(outdir, name)
        handler = HANDLERS.get(name)
        if handler is None and name.startswith(("fig10_tiles", "fig12_tiles")):
            handler = plot_tiles
        if handler is None:
            print(f"skip (no handler): {name}")
            continue
        fig = handler(path, plt)
        png = path[:-4] + ".png"
        fig.savefig(png, dpi=130, bbox_inches="tight")
        print(f"wrote {png}")
        made += 1
    return 0 if made else 1


if __name__ == "__main__":
    sys.exit(main())
