#!/usr/bin/env python3
"""Summarize (or diff) campaign sweep journals.

Usage:
    python3 tools/campaign_journal.py sweep.jsonl
    python3 tools/campaign_journal.py a.jsonl b.jsonl   # diff by cell

A journal is the JSONL file `bench/ext_campaign_sweep` (campaign::Runner)
writes: one record per cell with only deterministic fields, so two
journals of the same grid are comparable line by line. With one argument
this prints a per-cell table and totals; with two it reports which cells
diverge (by fingerprint or result digest) — useful when a resumed or
re-sharded run is NOT byte-identical and you want the first bad cell
rather than a wall of diff.

Stdlib only; a torn final line (killed run) is reported, not fatal.
"""
import json
import sys


def load(path):
    cells, torn = [], None
    with open(path, "rb") as f:
        data = f.read().decode("utf-8", errors="replace")
    for i, line in enumerate(data.split("\n")):
        if not line:
            continue
        try:
            cells.append(json.loads(line))
        except json.JSONDecodeError:
            torn = i
    return cells, torn


def summarize(path):
    cells, torn = load(path)
    print(f"{path}: {len(cells)} cells" +
          (f" (+ 1 torn line — killed mid-write)" if torn is not None else ""))
    if not cells:
        return 0
    width = max(len(c.get("label", "")) for c in cells)
    for c in cells:
        status = "ok" if c.get("ok") else "FAIL"
        print(f"  [{c['i']:3d}] {c.get('label', ''):{width}s}  {status}  "
              f"runtime {c.get('runtime_ms', 0):9.3f} ms  "
              f"events {c.get('events', 0):>12,}  "
              f"digest {c.get('digest', '')[:16]}")
        if not c.get("ok"):
            print(f"        reason: {c.get('fail_reason', '?')}")
    failed = sum(1 for c in cells if not c.get("ok"))
    print(f"  total: {len(cells)} cells, {failed} failed")
    return 1 if failed else 0


def diff(a_path, b_path):
    a, a_torn = load(a_path)
    b, b_torn = load(b_path)
    a_by_i = {c["i"]: c for c in a}
    b_by_i = {c["i"]: c for c in b}
    bad = 0
    for i in sorted(set(a_by_i) | set(b_by_i)):
        ca, cb = a_by_i.get(i), b_by_i.get(i)
        if ca is None or cb is None:
            print(f"cell {i}: only in {b_path if ca is None else a_path}")
            bad += 1
            continue
        for key in ("fp", "digest", "ok", "events", "runtime_ms"):
            if ca.get(key) != cb.get(key):
                print(f"cell {i} ({ca.get('label', '')}): {key} differs — "
                      f"{ca.get(key)} vs {cb.get(key)}")
                bad += 1
                break
    if a_torn is not None or b_torn is not None:
        print("note: torn final line in " +
              ", ".join(p for p, t in ((a_path, a_torn), (b_path, b_torn))
                        if t is not None))
    print("journals agree on every cell" if bad == 0
          else f"{bad} divergent cells")
    return 1 if bad else 0


def main(argv):
    if len(argv) == 2:
        return summarize(argv[1])
    if len(argv) == 3:
        return diff(argv[1], argv[2])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
