#!/usr/bin/env sh
# Golden pin for the paper-figure benches (fig01..fig14) on the Aries
# default topology.
#
# Runs every fig bench at a fixed small scale with fixed seeds/jobs and
# writes its stdout — minus wall-clock-bearing lines, which legitimately
# vary run to run — into OUT_DIR, one file per bench. Simulated results
# (runtimes, counters, distributions) are deterministic, so two builds that
# claim byte-identical Aries behaviour must produce byte-identical files:
#
#   tools/golden_figs.sh build/bench /tmp/a      # before a refactor
#   tools/golden_figs.sh build/bench /tmp/b      # after
#   diff -r /tmp/a /tmp/b                        # must be empty
#
# The repository pins tests/golden/figs/ (captured from the pre-abstraction
# seed at these settings); CI or a local run can re-capture and diff.
set -eu

BIN_DIR=${1:?usage: golden_figs.sh BENCH_BIN_DIR OUT_DIR}
OUT_DIR=${2:?usage: golden_figs.sh BENCH_BIN_DIR OUT_DIR}
mkdir -p "$OUT_DIR"

# Fixed, small settings: one sample per cell, one iteration, tiny message
# scale — enough traffic to exercise every code path, minutes for the suite.
FLAGS="--samples=1 --iterations=1 --scale=0.05 --seed=2021 --jobs=2 --shards=0"

# Wall-clock lines to strip: the report_batch throughput line and any
# explicit wall/trials-per-second report.
FILTER='/trials\/sec/d; /wall/d; /trials on [0-9]* worker/d'

for b in fig01_jobsize_ccdf fig02_milc_runtime_pdf fig03_milc_groups_theta \
         fig04_milc_groups_cori fig05_milc_breakdown fig06_milc_counters \
         fig07_all_apps_normalized fig08_hacc_breakdown \
         fig09_controlled_all_modes fig10_milc_ensemble_counters \
         fig11_stalls_pdf_comparison fig12_hacc_ensemble_counters \
         fig13_system_default_change fig14_latency_percentiles; do
  echo "golden: $b" >&2
  "$BIN_DIR/$b" $FLAGS | sed "$FILTER" > "$OUT_DIR/$b.txt"
done
echo "golden: wrote $OUT_DIR" >&2
