#!/usr/bin/env python3
"""Replace named '######## <bench> ########' sections of a bench output file
with the sections found in another file, and append sections that are
missing. Used to refresh individual bench results inside bench_output.txt
without rerunning the whole sweep.

Usage: splice_bench_sections.py TARGET SOURCE
"""
import re
import sys


def split_sections(text):
    parts = re.split(r"^(######## \S+ ########)$", text, flags=re.M)
    head = parts[0]
    sections = {}
    order = []
    for i in range(1, len(parts), 2):
        name = re.match(r"######## (\S+) ########", parts[i]).group(1)
        sections[name] = parts[i] + parts[i + 1]
        order.append(name)
    return head, sections, order


def main():
    target, source = sys.argv[1], sys.argv[2]
    head, tsec, torder = split_sections(open(target).read())
    _, ssec, sorder = split_sections(open(source).read())
    for name in sorder:
        if name in tsec:
            tsec[name] = ssec[name]
        else:
            torder.append(name)
            tsec[name] = ssec[name]
    with open(target, "w") as f:
        f.write(head)
        for name in torder:
            f.write(tsec[name])
    print(f"spliced {len(sorder)} sections into {target}")


if __name__ == "__main__":
    main()
