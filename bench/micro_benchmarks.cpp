// Micro-benchmarks (google-benchmark): engine event throughput, topology
// construction, route planning, and end-to-end packet cost. These track the
// simulator's own performance, which bounds how much paper-scale evaluation
// a given wall-clock budget buys.
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "routing/adaptive.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"

namespace {

using namespace dfsim;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) e.schedule(i % 997, [] {});
    e.run();
    benchmark::DoNotOptimize(e.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_TopologyConstruct(benchmark::State& state) {
  const topo::Config cfg =
      state.range(0) == 0 ? topo::Config::theta_scaled() : topo::Config::theta();
  for (auto _ : state) {
    topo::Dragonfly d(cfg);
    benchmark::DoNotOptimize(d.num_ports(0));
  }
}
BENCHMARK(BM_TopologyConstruct)->Arg(0)->Arg(1);

void BM_MinimalHops(benchmark::State& state) {
  const topo::Dragonfly d(topo::Config::theta());
  sim::Rng rng(1);
  for (auto _ : state) {
    const auto a =
        static_cast<topo::RouterId>(rng.uniform_u64(d.config().num_routers()));
    const auto b =
        static_cast<topo::RouterId>(rng.uniform_u64(d.config().num_routers()));
    benchmark::DoNotOptimize(d.minimal_hops(a, b));
  }
}
BENCHMARK(BM_MinimalHops);

class ZeroLoad final : public routing::LoadOracle {
 public:
  [[nodiscard]] std::int64_t load_units(topo::RouterId,
                                        topo::PortId) const override {
    return 0;
  }
};

void BM_RoutePlanInjection(benchmark::State& state) {
  const topo::Dragonfly d(topo::Config::theta());
  ZeroLoad oracle;
  routing::RoutePlanner pl(d, oracle, sim::Rng(2));
  sim::Rng rng(3);
  for (auto _ : state) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    routing::RouteState st;
    st.mode = routing::Mode::kAd0;
    pl.decide_injection(d.router_of_node(src), dst, st);
    benchmark::DoNotOptimize(st.nonminimal);
  }
}
BENCHMARK(BM_RoutePlanInjection);

void BM_EndToEndMessage(benchmark::State& state) {
  // Cost of one cross-group 64KB message including responses, on a scaled
  // Theta. Reported as items = packets.
  const topo::Dragonfly d(topo::Config::theta_scaled());
  std::int64_t packets = 0;
  for (auto _ : state) {
    sim::Engine e;
    net::Network net(e, d, 7);
    net.send_message(0, d.config().num_nodes() - 1, 64 * 1024,
                     routing::Mode::kAd0, {});
    e.run();
    packets += net.stats().packets_delivered;
  }
  state.SetItemsProcessed(packets);
}
BENCHMARK(BM_EndToEndMessage);

}  // namespace

BENCHMARK_MAIN();
