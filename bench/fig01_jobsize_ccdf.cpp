// Fig. 1 — Theta job size distribution.
//
// Paper: complementary CDF of core-hours by job size on Theta;
// ~40% of all core-hours come from 128-512 node jobs (the "medium" jobs most
// susceptible to congestion, which motivates the 128/256/512-node focus).
// We sample the workload model the production experiments use and print the
// same CCDF.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "sched/workload.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 1", "Theta job size distribution (CCDF of core-hours)");

  const sched::WorkloadModel model(1.0);
  sim::Rng rng(opt.seed);
  const int njobs = 20000;
  std::vector<double> sizes, hours;
  for (int i = 0; i < njobs; ++i) {
    const int s = model.sample_job_size(rng);
    sizes.push_back(static_cast<double>(s));
    // Core-hours proportional to nodes x (sampled runtime ~ exp).
    hours.push_back(static_cast<double>(s) * rng.exponential(1.0));
  }
  const auto ccdf = stats::weighted_ccdf(sizes, hours);

  std::printf("\n  nodes >= x   |  fraction of core-hours\n");
  for (const auto& [x, p] : ccdf)
    std::printf("  %10.0f  |  %.3f %s\n", x, p,
                std::string(static_cast<std::size_t>(p * 40), '#').c_str());

  // The paper's headline share: core-hours from 128-512 node jobs.
  double total = 0.0, mid = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    total += hours[i];
    if (sizes[i] >= 128 && sizes[i] <= 512) mid += hours[i];
  }
  std::printf("\n  core-hour share of 128-512 node jobs: %.1f%% (paper: ~40%%)\n",
              100.0 * mid / total);
  bench::footnote(opt, opt.theta());
  return 0;
}
