// Extension — AWR (application-aware routing, De Sensi et al. SC'19)
// versus static bias modes.
//
// The paper motivates itself against AWR with two observations (Section I):
// (1) the runtime's per-message counter polling was too expensive on
// many-core KNL CPUs, and (2) "individual bias policies often outperformed
// the adaptive runtime". This bench runs MILC (latency-bound) and HACC
// (bisection-bound) under static AD0, static AD3, an idealized zero-cost
// AWR, and an AWR with modeled polling overhead.
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"
#include "core/awr.hpp"
#include "sched/scheduler.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace dfsim;

struct Result {
  double runtime_ms = 0.0;
  int mode_changes = 0;
};

Result run_once(const bench::Options& opt, const std::string& app, bool awr,
                routing::Mode static_mode, sim::Tick poll_overhead,
                std::uint64_t seed) {
  sched::Scheduler sched(opt.theta(), seed);
  sched.machine().engine().set_event_budget(core::kEventBudget);
  auto nodes = sched.allocator().allocate(256, sched::Placement::kRandom,
                                          sched.rng());
  if (nodes.empty()) return {};
  const auto bg = sched.add_background(opt.bg, routing::Mode::kAd0);
  (void)bg;
  sched.machine().run_for(300 * sim::kMicrosecond);
  const mpi::JobId job = sched.submit_app_on(
      app, std::move(nodes), awr ? routing::Mode::kAd0 : static_mode,
      opt.params_for(app));

  // The controller's constructor pins the job to its initial mode, so only
  // instantiate it for the AWR policies.
  std::optional<core::AwrController> ctl;
  if (awr) {
    core::AwrController::Params ap;
    ap.poll_overhead = poll_overhead;
    ctl.emplace(sched.machine(), job, ap);
    ctl->start();
  }

  const mpi::JobId w[] = {job};
  if (!sched.machine().run_to_completion(w)) return {};
  Result r;
  r.runtime_ms = sim::to_ms(sched.machine().job(job).runtime() +
                            (ctl ? ctl->overhead_ns() : 0));
  r.mode_changes = ctl ? static_cast<int>(ctl->decisions().size()) : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension", "AWR adaptive runtime vs static bias modes");

  stats::Table t({"App", "policy", "mean runtime (ms)", "sigma",
                  "mode changes/run"});
  for (const std::string app : {"MILC", "HACC"}) {
    struct Policy {
      const char* name;
      bool awr;
      routing::Mode mode;
      sim::Tick overhead;
    };
    // The modeled AWR overhead: polling NIC counters from the host steals
    // CPU from the app; on KNL the paper measured it as prohibitive.
    const Policy policies[] = {
        {"static AD0", false, routing::Mode::kAd0, 0},
        {"static AD3", false, routing::Mode::kAd3, 0},
        {"AWR (ideal)", true, routing::Mode::kAd0, 0},
        {"AWR (KNL-cost)", true, routing::Mode::kAd0, 40 * sim::kMicrosecond},
    };
    for (const auto& pol : policies) {
      std::vector<double> xs;
      double changes = 0.0;
      sim::Rng seeder(opt.seed + 91);
      for (int s = 0; s < opt.samples; ++s) {
        const Result r = run_once(opt, app, pol.awr, pol.mode, pol.overhead,
                                  seeder.next());
        if (r.runtime_ms <= 0.0) continue;
        xs.push_back(r.runtime_ms);
        changes += r.mode_changes;
      }
      const auto s = stats::summarize(xs);
      t.add_row({app, pol.name, stats::fmt(s.mean, 3), stats::fmt(s.stddev, 3),
                 stats::fmt(xs.empty() ? 0.0 : changes / xs.size(), 1)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected (paper Section I / De Sensi): a well-chosen static bias "
      "matches or beats the adaptive runtime, and polling overhead erases "
      "AWR's remaining benefit on many-core nodes.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
