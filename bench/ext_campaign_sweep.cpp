// Extension — resumable campaign sweep over the content-addressed cache.
//
// Sweeps the bias x fault-rate x placement x app grid through
// campaign::Runner: every cell is fingerprinted, answered from the result
// cache when a valid entry exists, executed (optionally with verified
// checkpoint slicing) otherwise, and journaled as one JSONL record. The
// journal doubles as the resume marker: kill this binary at any point and
// re-run it with --resume to continue from the first missing cell with
// byte-identical output.
//
// --bench mode is the perf harness for the campaign service: it wipes the
// cache directory, times a cold pass (every cell simulated) and a warm pass
// (every cell served from cache), checks the two journals byte-for-byte,
// and gates warm/cold speedup >= --min-warm-speedup (default 10x). The
// measured section is emitted to --bench-json for BENCH_hotpath.json.
//
// Determinism: the journal holds only deterministic fields, results are
// byte-identical for every --shards value >= 1 (shards <= 0 is normalized
// to 1 here, as in the other ext_ benches), and cache entries are keyed by
// the determinism FAMILY, so --shards=1 and --shards=4 share entries.
#include <cstdio>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/runner.hpp"
#include "common.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "sched/placement.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace dfsim;

// One fault plan per fraction, shared across modes/placements/apps so the
// grid is paired: the same links die at the same simulated time.
fault::FaultPlan plan_for(const bench::Options& opt, const topo::Config& sys,
                          double frac) {
  if (frac <= 0.0) return {};
  fault::RandomFaultSpec spec;
  spec.seed = opt.fault_seed;
  spec.link_fail_fraction = frac;
  const double at_us = opt.fault_at_us > 0.0 ? opt.fault_at_us : 400.0;
  spec.window_begin = static_cast<sim::Tick>(at_us * sim::kMicrosecond);
  spec.window_end = spec.window_begin;
  spec.repair_after =
      static_cast<sim::Tick>(opt.fault_repair_us * sim::kMicrosecond);
  return fault::FaultPlan::random(sys, spec);
}

std::vector<campaign::SweepCell> build_grid(const bench::Options& opt,
                                            bool quick) {
  const topo::Config sys = opt.theta();
  const int shards = opt.shards <= 0 ? 1 : opt.shards;
  const int nnodes = quick ? 128 : 256;
  const std::vector<std::string> apps =
      quick ? std::vector<std::string>{"MILC"}
            : std::vector<std::string>{"MILC", "HACC"};
  const double fracs[] = {0.0, 0.02};
  const sched::Placement placements[] = {sched::Placement::kRandom,
                                         sched::Placement::kCompact};
  const routing::Mode modes[] = {routing::Mode::kAd0, routing::Mode::kAd3};

  std::vector<campaign::SweepCell> cells;
  for (const std::string& app : apps) {
    for (const double frac : fracs) {
      const fault::FaultPlan plan = plan_for(opt, sys, frac);
      for (const sched::Placement pl : placements) {
        for (const routing::Mode mode : modes) {
          campaign::SweepCell cell;
          cell.cfg = core::Scenario::production()
                         .system(sys)
                         .app(app)
                         .nnodes(nnodes)
                         .mode(mode)
                         .params(opt.params_for(app))
                         .background(opt.bg)
                         .seed(opt.seed)
                         .shards(shards)
                         .faults(plan)
                         .config();
          cell.cfg.shard_workers = opt.workers;
          cell.cfg.placement = pl;
          char frac_label[16];
          std::snprintf(frac_label, sizeof frac_label, "%g%%", frac * 100.0);
          cell.label = app + "/" + std::string(routing::mode_name(mode)) +
                       "/fault=" + frac_label + "/" +
                       sched::placement_name(pl);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

struct TimedPass {
  campaign::Runner::Outcome oc;
  double wall_ms = 0.0;
};

TimedPass run_pass(const std::vector<campaign::SweepCell>& cells,
                   campaign::ResultCache& cache,
                   const campaign::RunnerOptions& ropt) {
  TimedPass p;
  const auto t0 = std::chrono::steady_clock::now();
  campaign::Runner runner(cells, cache, ropt);
  p.oc = runner.run();
  p.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return p;
}

void print_outcome(const char* what, const campaign::Runner::Outcome& oc,
                   double wall_ms) {
  std::printf(
      "%s: %d cells (%d journaled, %d executed, %d cached, %d failed, "
      "%llu snapshots) in %.1f ms\n",
      what, oc.total, oc.skipped, oc.executed, oc.served, oc.failed,
      static_cast<unsigned long long>(oc.snapshots), wall_ms);
}

std::string f64_json(double v) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.3f", v);
  return std::string(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  namespace fs = std::filesystem;

  bench::Options opt;
  std::string cache_dir = ".dfsim-cache";
  std::string out_path = "campaign_sweep.jsonl";
  std::string bench_json;
  double checkpoint_ms = 0.0;
  double min_warm_speedup = 10.0;
  std::uint64_t cache_gc_bytes = 0;
  int cell_jobs = 1;
  bool resume = false;
  bool bench_mode = false;
  bool quick = false;

  bench::Cli cli(argc > 0 ? argv[0] : "ext_campaign_sweep");
  opt.register_flags(cli);
  cli.flag("cache-dir", &cache_dir,
           "result cache root (empty value = in-memory cache only)")
      .flag("out", &out_path, "JSONL journal path (doubles as resume marker)")
      .flag("resume", &resume,
            "continue a previous run of the same grid into --out")
      .flag("checkpoint-ms", &checkpoint_ms,
            "take a verified engine snapshot every X simulated ms (0 = off)")
      .flag("bench", &bench_mode,
            "perf mode: WIPES --cache-dir, times cold vs warm pass, gates "
            "warm speedup")
      .flag("min-warm-speedup", &min_warm_speedup,
            "gate: warm pass must be at least this much faster (--bench)")
      .flag("bench-json", &bench_json,
            "write the measured campaign perf section to this JSON file")
      .flag("cell-jobs", &cell_jobs,
            "cells executed concurrently (0 = one per hardware thread); "
            "journal bytes are identical to --cell-jobs=1 at any width")
      .flag("cache-gc-bytes", &cache_gc_bytes,
            "after the sweep, prune coldest cache entries until the cache "
            "directory fits this byte budget (0 = no gc)")
      .flag("quick", &quick, "small grid (MILC only, 128 nodes)");
  cli.parse(argc, argv);

  bench::header("Extension", "resumable campaign sweep (cache + snapshots)");

  campaign::ResultCache::Options copt;
  copt.dir = cache_dir;
  const sim::Tick interval =
      static_cast<sim::Tick>(checkpoint_ms * sim::kMillisecond);
  const std::vector<campaign::SweepCell> cells = build_grid(opt, quick);
  std::printf("grid: %zu cells, cache %s, journal %s%s%s\n\n", cells.size(),
              cache_dir.empty() ? "(memory only)" : cache_dir.c_str(),
              out_path.c_str(), resume ? ", resuming" : "",
              interval > 0 ? ", checkpointing" : "");

  if (!bench_mode) {
    campaign::ResultCache cache(copt);
    campaign::RunnerOptions ropt;
    ropt.out_path = out_path;
    ropt.resume = resume;
    ropt.checkpoint_interval = interval;
    ropt.cell_jobs = cell_jobs;
    const TimedPass p = run_pass(cells, cache, ropt);
    if (!p.oc.ok) {
      std::fprintf(stderr, "error: %s\n", p.oc.error.c_str());
      return 1;
    }
    print_outcome("sweep", p.oc, p.wall_ms);
    if (cache_gc_bytes > 0) cache.gc(cache_gc_bytes);
    core::print_cache_summary(std::cout, cache.stats());
    return p.oc.failed > 0 ? 1 : 0;
  }

  // --bench: cold pass against an empty cache, warm pass against the
  // entries the cold pass committed, byte-compare the journals, gate.
  if (!cache_dir.empty()) {
    std::error_code ec;
    fs::remove_all(cache_dir, ec);
  }
  campaign::ResultCache cache(copt);

  campaign::RunnerOptions cold_opt;
  cold_opt.out_path = out_path;
  cold_opt.checkpoint_interval = interval;
  cold_opt.cell_jobs = cell_jobs;
  const TimedPass cold = run_pass(cells, cache, cold_opt);
  if (!cold.oc.ok || cold.oc.failed > 0) {
    std::fprintf(stderr, "error: cold pass failed (%s)\n",
                 cold.oc.error.c_str());
    return 1;
  }
  print_outcome("cold", cold.oc, cold.wall_ms);
  const campaign::CacheStats after_cold = cache.stats();

  campaign::RunnerOptions warm_opt;
  warm_opt.out_path = out_path + ".warm";
  warm_opt.checkpoint_interval = interval;
  warm_opt.cell_jobs = cell_jobs;
  const TimedPass warm = run_pass(cells, cache, warm_opt);
  if (!warm.oc.ok || warm.oc.failed > 0) {
    std::fprintf(stderr, "error: warm pass failed (%s)\n",
                 warm.oc.error.c_str());
    return 1;
  }
  print_outcome("warm", warm.oc, warm.wall_ms);
  core::print_cache_summary(std::cout, cache.stats());

  const campaign::CacheStats after_warm = cache.stats();
  const std::uint64_t warm_hits = after_warm.hits - after_cold.hits;
  const std::uint64_t warm_misses = after_warm.misses - after_cold.misses;
  const double hit_rate =
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0.0;
  const double speedup =
      warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0;

  std::string cold_bytes, warm_bytes;
  const bool identical = read_file(out_path, cold_bytes) &&
                         read_file(out_path + ".warm", warm_bytes) &&
                         cold_bytes == warm_bytes;
  std::printf(
      "\nwarm vs cold: %.1f ms -> %.1f ms (%.1fx), hit rate %.0f%%, "
      "journals %s\n",
      cold.wall_ms, warm.wall_ms, speedup, hit_rate * 100.0,
      identical ? "byte-identical" : "DIFFER");

  if (!bench_json.empty()) {
    std::FILE* f = std::fopen(bench_json.c_str(), "wb");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n  \"campaign\": {\n    \"cells\": %zu,\n"
                   "    \"cold_wall_ms\": %s,\n    \"warm_wall_ms\": %s,\n"
                   "    \"hit_rate\": %s,\n"
                   "    \"speedup_warm_vs_cold\": %s\n  }\n}\n",
                   cells.size(), f64_json(cold.wall_ms).c_str(),
                   f64_json(warm.wall_ms).c_str(), f64_json(hit_rate).c_str(),
                   f64_json(speedup).c_str());
      std::fclose(f);
      std::printf("wrote %s\n", bench_json.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", bench_json.c_str());
    }
  }

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "GATE FAIL: warm journal differs from cold\n");
    ok = false;
  }
  if (warm.oc.executed != 0) {
    std::fprintf(stderr, "GATE FAIL: warm pass executed %d cells (want 0)\n",
                 warm.oc.executed);
    ok = false;
  }
  if (min_warm_speedup > 0.0 && speedup < min_warm_speedup) {
    std::fprintf(stderr, "GATE FAIL: warm speedup %.1fx < %.1fx\n", speedup,
                 min_warm_speedup);
    ok = false;
  }
  if (ok)
    std::printf("GATE PASS: warm >= %.1fx and journals byte-identical\n",
                min_warm_speedup);
  return ok ? 0 : 1;
}
