// Fig. 12 — Controlled ensemble of sixteen 256-node HACC jobs: per-tile
// flits and stalls by class, AD0 vs AD3.
//
// Paper result: HACC's bisection-bound FFT traffic under AD3 concentrates
// on a subset of rank-3 cables — localized stall peaks on rank-3 tiles,
// backpressure percolating to the other links, higher processor-tile
// stalls, and longer runtimes. (The paper also observes higher flit counts
// under AD3 from hardware-level retransmissions, which this model does not
// simulate; see EXPERIMENTS.md.)
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 12", "Sixteen 256-node HACC jobs, AD0 vs AD3");

  struct ModeResult {
    net::CounterSnapshot total;
    net::FlitTimes ft;
    double mean_rt = 0.0;
    double rank3_peak_to_mean = 0.0;
    std::int64_t proc_stall = 0;
  } res[2];

  const routing::Mode modes[2] = {routing::Mode::kAd0, routing::Mode::kAd3};
  // The two full-system ensembles are independent simulations: run them on
  // parallel workers.
  core::TrialRunner runner(opt.jobs);
  const auto results = runner.map(2, [&](int mi) {
    core::EnsembleConfig cfg;
    cfg.system = opt.theta();
    cfg.app = "HACC";
    cfg.nnodes = 256;
    cfg.njobs = std::max(1, cfg.system.num_nodes() * 16 / 4608);
    cfg.mode = modes[mi];
    cfg.params = opt.params_for("HACC");
    // Reservation-level pressure: one simulated rank stands for a whole
    // node (64 KNL ranks on the real system), so per-node volumes are
    // aggregated up for the full-machine ensembles.
    cfg.params.msg_scale = opt.scale * 6;
    cfg.placement = sched::Placement::kRandom;
    cfg.seed = opt.seed;
    cfg.shards = opt.shards;
    return core::run_controlled(cfg);
  });
  bench::report_batch("controlled", runner.stats(),
                      (results[0].ok ? 0 : 1) + (results[1].ok ? 0 : 1));
  for (int mi = 0; mi < 2; ++mi) {
    const auto& r = results[static_cast<std::size_t>(mi)];
    if (!r.ok) {
      std::fprintf(stderr, "ensemble failed: %s\n", r.fail_reason.c_str());
      return 1;
    }
    res[mi].total = r.total;
    res[mi].ft = r.flit_times;
    if (auto csv = bench::csv(opt, std::string("fig12_tiles_") +
                                       std::string(routing::mode_name(modes[mi])),
                              {"router", "port", "class", "flits", "stall_ns"}))
      for (const auto& tc : r.tiles)
        csv->row({std::to_string(tc.router), std::to_string(tc.port),
                  topo::tile_class_name(tc.cls), std::to_string(tc.flits),
                  std::to_string(tc.stall_ns)});
    double sum = 0;
    for (const double t : r.runtimes_ms) sum += t;
    res[mi].mean_rt = sum / static_cast<double>(r.runtimes_ms.size());
    // Localized rank-3 stall peaks: peak-to-mean over rank-3 tiles.
    std::int64_t peak = 0, total = 0, n = 0;
    for (const auto& tile : r.tiles) {
      if (tile.cls != topo::TileClass::kRank3) continue;
      peak = std::max(peak, tile.stall_ns);
      total += tile.stall_ns;
      ++n;
    }
    res[mi].rank3_peak_to_mean =
        total > 0 ? static_cast<double>(peak) * n / static_cast<double>(total)
                  : 0.0;
    res[mi].proc_stall =
        r.total.proc_req.stall_ns + r.total.proc_rsp.stall_ns;
  }

  stats::Table t({"Metric", "AD0", "AD3"});
  t.add_row({"mean job runtime (ms)", stats::fmt(res[0].mean_rt, 3),
             stats::fmt(res[1].mean_rt, 3)});
  t.add_row({"rank3 stall peak/mean", stats::fmt(res[0].rank3_peak_to_mean, 1),
             stats::fmt(res[1].rank3_peak_to_mean, 1)});
  t.add_row({"rank3 stall-ns", std::to_string(res[0].total.rank3.stall_ns),
             std::to_string(res[1].total.rank3.stall_ns)});
  t.add_row({"proc stall-ns", std::to_string(res[0].proc_stall),
             std::to_string(res[1].proc_stall)});
  t.add_row({"rank3 flits", std::to_string(res[0].total.rank3.flits),
             std::to_string(res[1].total.rank3.flits)});
  t.add_row({"rank1+rank2 flits",
             std::to_string(res[0].total.rank1.flits + res[0].total.rank2.flits),
             std::to_string(res[1].total.rank1.flits + res[1].total.rank2.flits)});
  t.print(std::cout);
  std::printf(
      "\nPaper: AD3 makes HACC slower, with localized rank-3 stall peaks and "
      "higher endpoint stalls (backpressure from concentrated global links).\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
