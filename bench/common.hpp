// Shared bench configuration.
//
// Every bench binary regenerates one paper table/figure. Defaults run on a
// scaled-down Theta (12 groups, 1152 nodes — same group count and bisection
// ratio as ALCF Theta, smaller groups) so the full suite finishes in
// minutes; pass --full for the 4392-node full-scale system, --samples=N for
// more statistical power, --scale=X to change message/compute scaling.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/experiment.hpp"
#include "stats/csv.hpp"
#include "topo/config.hpp"

namespace dfsim::bench {

struct Options {
  int samples = 6;      ///< runs per (app, mode) cell
  int iterations = 3;   ///< app iterations per run
  double scale = 0.15;  ///< message & compute scaling
  bool full = false;    ///< full-size Theta/Cori
  double bg = 0.7;      ///< background utilization for production runs
  std::uint64_t seed = 2021;
  int jobs = 0;         ///< trial worker threads; 0 = hardware concurrency
  int shards = -1;      ///< intra-trial shards; -1 = DFSIM_TEST_SHARDS env,
                        ///< 0 = serial engine, N>=1 = sharded (results are
                        ///< byte-identical for every N >= 1)
  std::string csv_dir;  ///< when set (--csv=DIR), also write raw CSV series

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const std::size_t n = std::strlen(prefix);
        return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
      };
      if (const char* v = val("--samples=")) o.samples = std::atoi(v);
      else if (const char* v2 = val("--iterations=")) o.iterations = std::atoi(v2);
      else if (const char* v3 = val("--scale=")) o.scale = std::atof(v3);
      else if (const char* v4 = val("--bg=")) o.bg = std::atof(v4);
      else if (const char* v5 = val("--seed=")) o.seed = std::strtoull(v5, nullptr, 10);
      else if (const char* v6 = val("--csv=")) o.csv_dir = v6;
      else if (const char* v7 = val("--jobs=")) o.jobs = std::atoi(v7);
      else if (const char* v8 = val("--shards=")) o.shards = std::atoi(v8);
      else if (a == "--full") o.full = true;
      else if (a == "--help" || a == "-h") {
        std::printf(
            "options: --samples=N --iterations=N --scale=X --bg=U --seed=S "
            "--jobs=N --shards=N --full --csv=DIR\n"
            "  --jobs=N    trial worker threads (default: hardware "
            "concurrency; results are identical for any N)\n"
            "  --shards=N  intra-trial event-execution shards (default: "
            "DFSIM_TEST_SHARDS env, else 0 = serial engine; results are "
            "byte-identical for every N >= 1). Combine with --jobs: total "
            "threads ~= jobs * shards.\n");
        std::exit(0);
      }
    }
    return o;
  }

  /// Batch controls for the core ensemble runners.
  [[nodiscard]] core::BatchOptions batch() const {
    return core::BatchOptions{jobs};
  }

  [[nodiscard]] topo::Config theta() const {
    return tune(full ? topo::Config::theta() : topo::Config::theta_scaled());
  }
  [[nodiscard]] topo::Config cori() const {
    return tune(full ? topo::Config::cori() : topo::Config::cori_scaled());
  }
  /// Bench runs use coarser 4KB simulation packets (4x fewer events) with
  /// Aries-like buffer depth (8 packets per port per VC).
  static topo::Config tune(topo::Config c) {
    c.packet_payload_bytes = 4096;
    c.buffer_flits = 2048;
    return c;
  }
  [[nodiscard]] apps::AppParams params() const {
    apps::AppParams p;
    p.iterations = iterations;
    p.msg_scale = scale;
    p.compute_scale = scale;
    p.seed = seed;
    return p;
  }
  /// Per-app parameters: the volume-heavy apps (HACC's multi-MB transposes,
  /// Rayleigh's 23MB alltoallv) get fewer iterations per run so a full bench
  /// sweep stays fast; their per-iteration behaviour is what matters.
  [[nodiscard]] apps::AppParams params_for(const std::string& app) const {
    apps::AppParams p = params();
    if (app == "RAYLEIGH") p.iterations = std::max(1, iterations / 3);
    if (app == "HACC") p.iterations = std::max(1, iterations / 2 + 1);
    return p;
  }
  [[nodiscard]] core::ProductionConfig production(const std::string& app,
                                                  int nnodes,
                                                  routing::Mode mode) const {
    core::ProductionConfig cfg;
    cfg.system = theta();
    cfg.app = app;
    cfg.nnodes = nnodes;
    cfg.mode = mode;
    cfg.params = params_for(app);
    cfg.bg_utilization = bg;
    cfg.seed = seed;
    cfg.shards = shards;
    return cfg;
  }
};

/// Optional CSV artifact: returns a writer only when --csv=DIR was given.
inline std::unique_ptr<stats::CsvWriter> csv(const Options& o,
                                             const std::string& name,
                                             std::vector<std::string> cols) {
  if (o.csv_dir.empty()) return nullptr;
  auto w = std::make_unique<stats::CsvWriter>(o.csv_dir + "/" + name + ".csv",
                                              std::move(cols));
  if (!w->ok()) {
    std::fprintf(stderr, "warning: cannot write CSV into %s\n",
                 o.csv_dir.c_str());
    return nullptr;
  }
  return w;
}

/// Report batch throughput and any failed trials (failed trials keep their
/// result slot; they are excluded from the statistics by the callers).
inline void report_batch(const char* what, const core::RunnerStats& s,
                         int failures) {
  std::printf("  [%s: %d trials on %d worker%s, %.0f ms — %.2f trials/sec]\n",
              what, s.trials, s.jobs, s.jobs == 1 ? "" : "s", s.wall_ms,
              s.trials_per_sec());
  if (failures > 0)
    std::fprintf(stderr,
                 "  warning: %d/%d %s trials failed; statistics use the "
                 "remaining samples\n",
                 failures, s.trials, what);
}

inline void header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

inline void footnote(const Options& o, const topo::Config& sys) {
  std::printf(
      "\n[system %s: %d groups, %d nodes | samples=%d iters=%d scale=%.2f "
      "bg=%.2f seed=%llu jobs=%d]\n",
      sys.name.c_str(), sys.groups, sys.num_nodes(), o.samples, o.iterations,
      o.scale, o.bg, static_cast<unsigned long long>(o.seed),
      core::resolve_jobs(o.jobs));
}

}  // namespace dfsim::bench
