// Shared bench configuration.
//
// Every bench binary regenerates one paper table/figure. Defaults run on a
// scaled-down Theta (12 groups, 1152 nodes — same group count and bisection
// ratio as ALCF Theta, smaller groups) so the full suite finishes in
// minutes; pass --full for the 4392-node full-scale system, --samples=N for
// more statistical power, --scale=X to change message/compute scaling.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "stats/csv.hpp"
#include "topo/config.hpp"

namespace dfsim::bench {

/// Registered-flag command-line parser shared by every bench binary.
/// Valued flags are `--name=value`, switches are bare `--name`; `--help`
/// prints usage generated from the registrations and exits. Benches with
/// extra knobs construct a Cli, call Options::register_flags(), then add
/// their own flags — one parser, one help text, no hand-rolled loops.
class Cli {
 public:
  explicit Cli(std::string program) : program_(std::move(program)) {}

  Cli& flag(const char* name, int* v, const char* help) {
    return add(name, "N", help,
               [v](const char* s) { *v = std::atoi(s); });
  }
  Cli& flag(const char* name, std::uint64_t* v, const char* help) {
    return add(name, "N", help,
               [v](const char* s) { *v = std::strtoull(s, nullptr, 10); });
  }
  Cli& flag(const char* name, double* v, const char* help) {
    return add(name, "X", help, [v](const char* s) { *v = std::atof(s); });
  }
  Cli& flag(const char* name, std::string* v, const char* help) {
    return add(name, "S", help, [v](const char* s) { *v = s; });
  }
  /// Presence switch: `--name` sets the bool, no value.
  Cli& flag(const char* name, bool* v, const char* help) {
    flags_.push_back({name, "", help, [v](const char*) { *v = true; }});
    return *this;
  }

  void parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        usage();
        std::exit(0);
      }
      bool matched = false;
      for (const Flag& f : flags_) {
        if (f.metavar.empty()) {
          if (a == "--" + f.name) {
            f.set("");
            matched = true;
            break;
          }
        } else {
          const std::string prefix = "--" + f.name + "=";
          if (a.compare(0, prefix.size(), prefix) == 0) {
            f.set(a.c_str() + prefix.size());
            matched = true;
            break;
          }
        }
      }
      if (!matched)
        std::fprintf(stderr, "%s: ignoring unknown option %s (see --help)\n",
                     program_.c_str(), a.c_str());
    }
  }

  void usage() const {
    std::printf("usage: %s", program_.c_str());
    for (const Flag& f : flags_) {
      if (f.metavar.empty())
        std::printf(" [--%s]", f.name.c_str());
      else
        std::printf(" [--%s=%s]", f.name.c_str(), f.metavar.c_str());
    }
    std::printf("\n");
    for (const Flag& f : flags_)
      std::printf("  --%-18s %s\n",
                  (f.metavar.empty() ? f.name : f.name + "=" + f.metavar)
                      .c_str(),
                  f.help.c_str());
  }

 private:
  struct Flag {
    std::string name;
    std::string metavar;  ///< empty = presence switch
    std::string help;
    std::function<void(const char*)> set;
  };

  Cli& add(const char* name, const char* metavar, const char* help,
           std::function<void(const char*)> set) {
    flags_.push_back({name, metavar, help, std::move(set)});
    return *this;
  }

  std::string program_;
  std::vector<Flag> flags_;
};

struct Options {
  int samples = 6;      ///< runs per (app, mode) cell
  int iterations = 3;   ///< app iterations per run
  double scale = 0.15;  ///< message & compute scaling
  bool full = false;    ///< full-size Theta/Cori
  double bg = 0.7;      ///< background utilization for production runs
  std::uint64_t seed = 2021;
  int jobs = 0;         ///< trial worker threads; 0 = hardware concurrency
  int shards = -1;      ///< intra-trial shards; -1 = DFSIM_TEST_SHARDS env,
                        ///< 0 = serial engine, N>=1 = sharded (results are
                        ///< byte-identical for every N >= 1)
  int workers = 0;      ///< executor threads per sharded trial; 0 = auto
                        ///< (DFSIM_SHARD_WORKERS env, else hardware threads);
                        ///< wall-clock only, results identical for any N
  std::string topology; ///< topology kind for the bench system ("" = config
                        ///< default: DFSIM_TEST_TOPO env, else dragonfly)
  std::string csv_dir;  ///< when set (--csv=DIR), also write raw CSV series

  // Fault injection (all zero by default: pristine hardware, every fault
  // path dormant). Fractions select seeded-random links via
  // fault::FaultPlan::random on the bench's system config.
  double fault_links = 0.0;     ///< fraction of links failed
  double fault_degrade = 0.0;   ///< fraction of links lane-degraded
  int fault_routers = 0;        ///< whole routers failed
  double fault_at_us = 0.0;     ///< injection time, simulated microseconds
  double fault_repair_us = 0.0; ///< repair delay after each fault (0 = never)
  std::uint64_t fault_seed = 1; ///< placement seed (independent of --seed)

  /// Register the shared bench flags (--samples/--jobs/--shards/--fault-*
  /// et al.) on a Cli. Benches with extra knobs call this and then add
  /// their own flags to the same Cli.
  void register_flags(Cli& cli) {
    cli.flag("samples", &samples, "runs per (app, mode) cell")
        .flag("iterations", &iterations, "app iterations per run")
        .flag("scale", &scale, "message & compute scaling")
        .flag("bg", &bg, "background utilization for production runs")
        .flag("seed", &seed, "root seed (per-trial seeds derive from it)")
        .flag("jobs", &jobs,
              "trial worker threads (default: hardware concurrency; results "
              "are identical for any N)")
        .flag("shards", &shards,
              "intra-trial event-execution shards (default: DFSIM_TEST_SHARDS "
              "env, else 0 = serial engine; results are byte-identical for "
              "every N >= 1; total threads ~= jobs * shards)")
        .flag("workers", &workers,
              "executor threads per sharded trial (default: "
              "DFSIM_SHARD_WORKERS env, else hardware concurrency; clamped "
              "to the shard count; wall-clock only, results identical)")
        .flag("topology", &topology,
              "topology kind: dragonfly | dragonfly_plus | slingshot "
              "(default: DFSIM_TEST_TOPO env, else dragonfly)")
        .flag("full", &full, "full-size Theta/Cori")
        .flag("csv", &csv_dir, "also write raw CSV series into this directory")
        .flag("fault-links", &fault_links,
              "fraction of links failed at --fault-at-us (seeded-random)")
        .flag("fault-degrade", &fault_degrade,
              "fraction of links lane-degraded to 1/4..3/4 bandwidth")
        .flag("fault-routers", &fault_routers,
              "whole routers failed at --fault-at-us")
        .flag("fault-at-us", &fault_at_us,
              "fault injection time in simulated microseconds")
        .flag("fault-repair-us", &fault_repair_us,
              "repair each fault this long after it strikes (0 = never)")
        .flag("fault-seed", &fault_seed,
              "seed for random fault placement (independent of --seed)");
  }

  static Options parse(int argc, char** argv) {
    Options o;
    Cli cli(argc > 0 ? argv[0] : "bench");
    o.register_flags(cli);
    cli.parse(argc, argv);
    return o;
  }

  [[nodiscard]] bool have_faults() const {
    return fault_links > 0.0 || fault_degrade > 0.0 || fault_routers > 0;
  }

  /// Seeded-random fault plan from the --fault-* flags for a given system
  /// (empty plan — all fault machinery dormant — when no flag is set).
  [[nodiscard]] fault::FaultPlan fault_plan(const topo::Config& sys) const {
    if (!have_faults()) return {};
    fault::RandomFaultSpec spec;
    spec.seed = fault_seed;
    spec.link_fail_fraction = fault_links;
    spec.link_degrade_fraction = fault_degrade;
    spec.router_failures = fault_routers;
    spec.window_begin =
        static_cast<sim::Tick>(fault_at_us * sim::kMicrosecond);
    spec.window_end = spec.window_begin;
    spec.repair_after =
        static_cast<sim::Tick>(fault_repair_us * sim::kMicrosecond);
    return fault::FaultPlan::random(sys, spec);
  }

  /// Batch controls for the core ensemble runners.
  [[nodiscard]] core::BatchOptions batch() const {
    return core::BatchOptions{jobs};
  }

  [[nodiscard]] topo::Config theta() const {
    return with_topology(
        tune(full ? topo::Config::theta() : topo::Config::theta_scaled()));
  }
  [[nodiscard]] topo::Config cori() const {
    return with_topology(
        tune(full ? topo::Config::cori() : topo::Config::cori_scaled()));
  }
  /// Apply the --topology flag to a system config. Empty flag leaves the
  /// config default (kDefault => DFSIM_TEST_TOPO at resolve time), so an
  /// unset flag cannot mask the CI environment knob.
  [[nodiscard]] topo::Config with_topology(topo::Config c) const {
    if (!topology.empty() && !topo::parse_topology_kind(topology, c.kind))
      throw std::invalid_argument("--topology: unknown kind \"" + topology +
                                  "\"");
    return c;
  }
  /// Bench runs use coarser 4KB simulation packets (4x fewer events) with
  /// Aries-like buffer depth (8 packets per port per VC).
  static topo::Config tune(topo::Config c) {
    c.packet_payload_bytes = 4096;
    c.buffer_flits = 2048;
    return c;
  }
  [[nodiscard]] apps::AppParams params() const {
    apps::AppParams p;
    p.iterations = iterations;
    p.msg_scale = scale;
    p.compute_scale = scale;
    p.seed = seed;
    return p;
  }
  /// Per-app parameters: the volume-heavy apps (HACC's multi-MB transposes,
  /// Rayleigh's 23MB alltoallv) get fewer iterations per run so a full bench
  /// sweep stays fast; their per-iteration behaviour is what matters.
  [[nodiscard]] apps::AppParams params_for(const std::string& app) const {
    apps::AppParams p = params();
    if (app == "RAYLEIGH") p.iterations = std::max(1, iterations / 3);
    if (app == "HACC") p.iterations = std::max(1, iterations / 2 + 1);
    return p;
  }
  /// Production scenario on the bench's Theta system; the --fault-* flags
  /// (empty plan when unset) ride along, so every production bench can be
  /// run against degraded hardware.
  [[nodiscard]] core::ScenarioConfig production(const std::string& app,
                                                int nnodes,
                                                routing::Mode mode) const {
    core::ScenarioConfig cfg = core::ScenarioConfig::production();
    cfg.system = theta();
    cfg.app = app;
    cfg.nnodes = nnodes;
    cfg.mode = mode;
    cfg.params = params_for(app);
    cfg.bg_utilization = bg;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.shard_workers = workers;
    cfg.faults = fault_plan(cfg.system);
    return cfg;
  }
};

/// Min/max over a sequence of per-shard event counts, seeded from the first
/// element — a legitimate 0 minimum (a shard that executed no events) must
/// survive later nonzero counts. Returns {0, 0} for an empty sequence.
struct EventRange {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};
inline EventRange event_range(const std::vector<std::uint64_t>& counts) {
  EventRange r;
  if (counts.empty()) return r;
  r.min = counts.front();
  r.max = counts.front();
  for (const std::uint64_t e : counts) {
    if (e < r.min) r.min = e;
    if (e > r.max) r.max = e;
  }
  return r;
}

/// Optional CSV artifact: returns a writer only when --csv=DIR was given.
inline std::unique_ptr<stats::CsvWriter> csv(const Options& o,
                                             const std::string& name,
                                             std::vector<std::string> cols) {
  if (o.csv_dir.empty()) return nullptr;
  auto w = std::make_unique<stats::CsvWriter>(o.csv_dir + "/" + name + ".csv",
                                              std::move(cols));
  if (!w->ok()) {
    std::fprintf(stderr, "warning: cannot write CSV into %s\n",
                 o.csv_dir.c_str());
    return nullptr;
  }
  return w;
}

/// Report batch throughput and any failed trials (failed trials keep their
/// result slot; they are excluded from the statistics by the callers).
inline void report_batch(const char* what, const core::RunnerStats& s,
                         int failures) {
  std::printf("  [%s: %d trials on %d worker%s, %.0f ms — %.2f trials/sec]\n",
              what, s.trials, s.jobs, s.jobs == 1 ? "" : "s", s.wall_ms,
              s.trials_per_sec());
  if (failures > 0)
    std::fprintf(stderr,
                 "  warning: %d/%d %s trials failed; statistics use the "
                 "remaining samples\n",
                 failures, s.trials, what);
}

inline void header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

inline void footnote(const Options& o, const topo::Config& sys) {
  std::printf(
      "\n[system %s: %d groups, %d nodes | samples=%d iters=%d scale=%.2f "
      "bg=%.2f seed=%llu jobs=%d]\n",
      sys.name.c_str(), sys.groups, sys.num_nodes(), o.samples, o.iterations,
      o.scale, o.bg, static_cast<unsigned long long>(o.seed),
      core::resolve_jobs(o.jobs));
}

}  // namespace dfsim::bench
