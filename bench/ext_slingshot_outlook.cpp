// Extension — forward-looking check (paper Sections I, II-A, VII).
//
// The paper expects its minimal-vs-non-minimal insights to "be applicable
// to future dragonfly systems" — the Slingshot machines (Perlmutter,
// Aurora, Frontier, El Capitan). This bench reruns the core comparison on
// the real topo::Slingshot model (flat all-to-all groups of 32 switches,
// diameter 3, 200 Gb/s links) rather than the old Aries-class
// extrapolation, which could only fake a flat group as a single chassis of
// at most slots_per_chassis routers: the latency-bound app should still
// prefer strong minimal bias under congestion, and the bisection-bound app
// should still not.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension",
                "Outlook: AD0 vs AD3 on a Slingshot low-diameter fabric");

  // 12 groups x (2 * 16) = 32-switch flat groups — a shape the dragonfly
  // class cannot express as one clique; kSlingshot flattens the whole
  // chassis x slot product into a single all-to-all group.
  topo::Config sys = bench::Options::tune(topo::Config::slingshot_like(12));
  sys.chassis_per_group = 2;
  sys.kind = topo::TopologyKind::kSlingshot;
  stats::Table t({"App", "AD0 (ms)", "AD3 (ms)", "AD3 gain"});
  for (const std::string app : {"MILC", "HACC"}) {
    double mean[2] = {0, 0};
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      core::ProductionConfig cfg;
      cfg.system = sys;
      cfg.app = app;
      cfg.nnodes = 256;
      cfg.mode = mode;
      cfg.params = opt.params_for(app);
      cfg.bg_utilization = opt.bg;
      cfg.seed = opt.seed;
      const auto rs = core::run_production_batch(cfg, opt.samples);
      std::vector<double> xs;
      for (const auto& r : rs)
        if (r.ok) xs.push_back(r.runtime_ms);
      mean[mode == routing::Mode::kAd0 ? 0 : 1] = stats::summarize(xs).mean;
    }
    t.add_row({app, stats::fmt(mean[0], 3), stats::fmt(mean[1], 3),
               stats::fmt_signed(stats::improvement_pct(mean[0], mean[1]), 1) +
                   "%"});
  }
  t.print(std::cout);
  std::printf(
      "\nPaper Section II-A: \"on any dragonfly system applications will "
      "have a preference for\nminimal or non-minimal routes, due to the "
      "communication patterns inherent to the\napplication\" — the "
      "preference split should survive the topology generation change.\n");
  bench::footnote(opt, sys);
  return 0;
}
