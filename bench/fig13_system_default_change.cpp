// Fig. 13 — System-wide counters before and after changing the default
// routing mode (the ALCF/NERSC policy change this paper motivated).
//
// Paper result: comparing one-week LDMS windows before (default AD0) and
// after (default AD3): FLITs roughly in line, STALLs and the stall-to-flit
// ratio markedly lower. We run the same production workload model twice —
// every job on the default mode — and compare LDMS interval samples.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "monitor/ldms.hpp"
#include "sched/scheduler.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 13",
                "System-wide counters before (AD0) and after (AD3) the "
                "default-mode change");

  struct Window {
    std::vector<double> flits, stall, ratio;  // per LDMS interval
  } win[2];

  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    sched::Scheduler sched(opt.theta(), opt.seed);
    sched.machine().engine().set_event_budget(core::kEventBudget);
    // A "week of production": the whole machine running the workload model
    // with every job using the default mode.
    const auto bg = sched.add_background(0.85, mode);
    monitor::LdmsSampler ldms(sched.machine().network(),
                              100 * sim::kMicrosecond);
    ldms.start();
    sched.machine().run_for(
        static_cast<sim::Tick>(2 + opt.samples / 2) * sim::kMillisecond);
    const net::FlitTimes ft = sched.machine().network().flit_times();
    for (const auto& d : ldms.interval_deltas()) {
      const auto& c = d.cumulative;
      const double flits = static_cast<double>(
          c.rank1.flits + c.rank2.flits + c.rank3.flits);
      // Each network class serializes flits at its own link bandwidth.
      const double stall_flits =
          static_cast<double>(c.rank1.stall_ns) / ft.rank1 +
          static_cast<double>(c.rank2.stall_ns) / ft.rank2 +
          static_cast<double>(c.rank3.stall_ns) / ft.rank3;
      win[mi].flits.push_back(flits);
      win[mi].stall.push_back(stall_flits);
      win[mi].ratio.push_back(flits > 0 ? stall_flits / flits : 0.0);
    }
    (void)bg;
  }

  stats::Table t({"Metric (per LDMS interval)", "before: AD0", "after: AD3",
                  "change"});
  auto row = [&](const char* name, const std::vector<double>& a,
                 const std::vector<double>& b) {
    const double ma = stats::summarize(a).mean;
    const double mb = stats::summarize(b).mean;
    t.add_row({name, stats::fmt(ma, 1), stats::fmt(mb, 1),
               stats::fmt_signed(ma > 0 ? 100.0 * (mb - ma) / ma : 0.0, 1) +
                   "%"});
  };
  row("network FLITs", win[0].flits, win[1].flits);
  row("network STALL flit-times", win[0].stall, win[1].stall);
  row("stalls-to-flits ratio", win[0].ratio, win[1].ratio);
  t.print(std::cout);
  std::printf(
      "\nPaper: flits roughly in line; stalls and stall/flit ratio markedly "
      "improved after the switch; MILC in production gained ~11.8%%.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
