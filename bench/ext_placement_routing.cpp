// Extension — placement x routing interaction study.
//
// Paper Section II-C: compact placement reduces exposure to other jobs but
// limits rank-3 bandwidth; dispersed placement gains global bandwidth but
// invites interference; medium jobs are the most congestion-prone under
// either. (The simulation studies the paper cites — Yang et al.'s "bully"
// SC'16 paper, Jain et al. SC'14 — explore the same matrix.) This bench
// fills the placement x mode grid for MILC under production background.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension", "Placement x routing grid (MILC, 128 nodes)");

  struct Pl {
    const char* name;
    sched::Placement placement;
    int target_groups;
  };
  const Pl placements[] = {
      {"compact", sched::Placement::kCompact, 0},
      {"2 groups", sched::Placement::kGroups, 2},
      {"6 groups", sched::Placement::kGroups, 6},
      {"random", sched::Placement::kRandom, 0},
  };

  stats::Table t({"Placement", "AD0 mean (ms)", "AD0 sigma", "AD3 mean (ms)",
                  "AD3 sigma", "AD3 gain"});
  for (const auto& pl : placements) {
    stats::Summary s[2];
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      auto cfg = opt.production("MILC", 128, mode);
      cfg.placement = pl.placement;
      cfg.target_groups = pl.target_groups;
      const auto rs = core::run_production_batch(cfg, opt.samples);
      std::vector<double> xs;
      for (const auto& r : rs)
        if (r.ok) xs.push_back(r.runtime_ms);
      s[mode == routing::Mode::kAd0 ? 0 : 1] =
          stats::summarize(stats::remove_outliers(xs));
    }
    t.add_row({pl.name, stats::fmt(s[0].mean, 3), stats::fmt(s[0].stddev, 3),
               stats::fmt(s[1].mean, 3), stats::fmt(s[1].stddev, 3),
               stats::fmt_signed(stats::improvement_pct(s[0].mean, s[1].mean), 1) +
                   "%"});
  }
  t.print(std::cout);
  std::printf(
      "\nPaper Section II-F: the routing-bias preference is largely "
      "independent of the number of\ngroups spanned — the AD3 gain column "
      "should keep its sign across the placement rows.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
