// Fig. 2 — MILC and MILCREORDER runtime probability densities, 256 nodes,
// AD0 vs AD3 under production conditions.
//
// Paper result: AD3 mean ~11% lower than AD0 (542s -> 482s) and a shorter
// p95 tail for both codes. We run repeated production-condition samples per
// mode, remove ±3σ outliers (paper Section III-A) and print KDE curves plus
// mean/p95 markers.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 2", "MILC / MILCREORDER runtime PDFs (256 nodes, production)");

  for (const std::string app : {"MILC", "MILCREORDER"}) {
    std::printf("\n--- %s ---\n", app.c_str());
    std::vector<std::vector<double>> by_mode;
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      auto cfg = opt.production(app, 256, mode);
      const auto batch =
          core::run_production_ensemble(cfg, opt.samples, opt.batch());
      bench::report_batch(routing::mode_name(mode).data(), batch.stats,
                          batch.failures());
      std::vector<double> xs;
      for (const auto& r : batch.results)
        if (r.ok) xs.push_back(r.runtime_ms);
      by_mode.push_back(stats::remove_outliers(xs));
    }
    double lo = 1e30, hi = 0;
    for (const auto& xs : by_mode)
      for (const double x : xs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    const double pad = 0.1 * (hi - lo + 1e-9);
    lo -= pad;
    hi += pad;
    const char* names[2] = {"AD0", "AD3"};
    for (int m = 0; m < 2; ++m) {
      const auto& xs = by_mode[static_cast<std::size_t>(m)];
      const auto s = stats::summarize(xs);
      std::printf("  %s: n=%zu mean=%.3f ms  p95=%.3f ms  sigma=%.3f\n",
                  names[m], s.n, s.mean, s.p95, s.stddev);
      const auto curve = stats::kde_curve(xs, lo, hi, 24);
      double ymax = 0;
      for (const auto& [x, y] : curve) ymax = std::max(ymax, y);
      for (const auto& [x, y] : curve) {
        const int bar = ymax > 0 ? static_cast<int>(y / ymax * 40) : 0;
        std::printf("    %8.3f |%s\n", x,
                    std::string(static_cast<std::size_t>(bar), '*').c_str());
      }
    }
    const auto s0 = stats::summarize(by_mode[0]);
    const auto s3 = stats::summarize(by_mode[1]);
    std::printf(
        "  => mean improvement AD3 over AD0: %.1f%% (paper: ~11%%); "
        "p95 improvement: %.1f%%\n",
        stats::improvement_pct(s0.mean, s3.mean),
        stats::improvement_pct(s0.p95, s3.p95));
  }
  bench::footnote(opt, opt.theta());
  return 0;
}
