// Fig. 6 — Stalls-to-flits ratio on the Aries router tiles local to the
// MILC job, by tile class (Rank3/Rank2/Rank1/Proc_req/Proc_rsp), AD0 vs AD3.
//
// Paper result: AD3 reduces the ratio on all network tile classes (absolute
// stalls drop substantially); Proc_req stalls *increase* slightly
// (endpoint concentration); response traffic is unaffected by routing.
#include <array>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 6",
                "MILC local router-tile stall/flit ratios by class, AD0 vs AD3");

  std::array<double, 5> mean[2] = {{}, {}};
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    auto cfg = opt.production("MILC", 256, mode);
    const auto rs = core::run_production_batch(cfg, opt.samples);
    std::size_t n = 0;
    for (const auto& r : rs) n += r.ok ? 1 : 0;
    for (const auto& r : rs) {
      if (!r.ok) continue;
      const auto ratios = r.local_stall_ratios();
      for (int i = 0; i < 5; ++i)
        mean[mi][static_cast<std::size_t>(i)] +=
            ratios[static_cast<std::size_t>(i)] / static_cast<double>(n);
    }
  }
  core::print_ratio_comparison(std::cout, "AD0", mean[0], "AD3", mean[1]);
  std::printf(
      "\nPaper: network-tile ratios drop under AD3 (stalls fall ~2x); "
      "Proc_req can rise (endpoint congestion); Proc_rsp unchanged.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
