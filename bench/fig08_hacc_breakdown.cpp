// Fig. 8 — HACC runtime decomposed into Compute and the dominant MPI
// operations (Wait, Waitall, Allreduce), per run, AD0 vs AD3.
//
// Paper result: HACC's dominant MPI_Wait time (3D-FFT transposes over
// random rank pairs, 1.2MB messages stressing global bisection) *grows*
// under AD3 — the one app where equal bias beats strong minimal bias.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 8", "HACC runtime breakdown per run (Compute + MPI ops)");

  const std::vector<mpi::Op> ops{mpi::Op::kWait, mpi::Op::kWaitall,
                                 mpi::Op::kAllreduce};
  double mpi_ms[2] = {0, 0};
  double rt_ms[2] = {0, 0};
  int n[2] = {0, 0};
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    std::printf("\n--- %s ---\n", std::string(routing::mode_name(mode)).c_str());
    auto cfg = opt.production("HACC", 256, mode);
    const auto rs = core::run_production_batch(cfg, opt.samples);
    for (const auto& r : rs) {
      if (!r.ok) continue;
      core::print_breakdown(std::cout, r.autoperf, ops);
      mpi_ms[mi] +=
          sim::to_ms(r.autoperf.profile.total_mpi_ns()) / r.autoperf.nranks;
      rt_ms[mi] += r.runtime_ms;
      ++n[mi];
    }
  }
  for (int mi = 0; mi < 2; ++mi)
    if (n[mi] > 0) {
      mpi_ms[mi] /= n[mi];
      rt_ms[mi] /= n[mi];
    }
  std::printf(
      "\n  mean runtime: AD0 %.3f ms vs AD3 %.3f ms -> %.1f%% "
      "(paper: -2.7%%, AD0 preferred)\n"
      "  mean MPI:     AD0 %.3f ms vs AD3 %.3f ms -> %.1f%% (paper: -34%%)\n",
      rt_ms[0], rt_ms[1], stats::improvement_pct(rt_ms[0], rt_ms[1]),
      mpi_ms[0], mpi_ms[1], stats::improvement_pct(mpi_ms[0], mpi_ms[1]));
  bench::footnote(opt, opt.theta());
  return 0;
}
