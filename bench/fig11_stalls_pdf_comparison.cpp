// Fig. 11 — Stall-to-flit ratio distributions over the job-local network
// tiles for 256-node MILC under three conditions: production (background
// noise), isolated, and controlled (compact-placed and disperse-placed
// ensembles), for AD0 and AD3.
//
// Paper result: under AD0, the production and isolated distributions lie
// within the envelope of the compact/disperse controlled runs — the
// controlled experiments are a valid proxy for production. Under AD3 (with
// the rest of the system still on AD0) production sits outside; switching
// the whole system to AD3 would shift it left.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace {

void print_pdf(const char* label, const std::vector<double>& xs) {
  using namespace dfsim;
  if (xs.empty()) {
    std::printf("  %-22s (no data)\n", label);
    return;
  }
  const auto s = stats::summarize(xs);
  std::printf("  %-22s mean=%.3f  p50=%.3f  p95=%.3f  n=%zu\n", label, s.mean,
              s.median, s.p95, s.n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 11",
                "MILC 256-node stall/flit ratios: production vs isolated vs "
                "controlled");

  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    std::printf("\n--- %s ---\n", std::string(routing::mode_name(mode)).c_str());
    // Ratio samples = the five tile-class ratios of each run's local view.
    auto collect = [&](const core::RunResult& r, std::vector<double>& out) {
      const auto ratios = r.local_stall_ratios();
      for (int i = 0; i < 3; ++i)  // network tiles only (paper: 40 tiles)
        out.push_back(ratios[static_cast<std::size_t>(i)]);
    };

    std::vector<double> production, isolated, compact, disperse;
    {
      auto cfg = opt.production("MILC", 256, mode);
      auto batch = core::run_production_ensemble(cfg, opt.samples, opt.batch());
      bench::report_batch("production", batch.stats, batch.failures());
      for (const auto& r : batch.results)
        if (r.ok) collect(r, production);
      cfg.bg_utilization = 0.0;
      batch = core::run_production_ensemble(cfg, opt.samples / 2 + 1,
                                            opt.batch());
      bench::report_batch("isolated", batch.stats, batch.failures());
      for (const auto& r : batch.results)
        if (r.ok) collect(r, isolated);
    }
    // The two controlled full-system reservations are independent
    // simulations: run them on parallel workers.
    const sched::Placement placements[2] = {sched::Placement::kCompact,
                                            sched::Placement::kRandom};
    core::TrialRunner runner(opt.jobs);
    const auto controlled = runner.map(2, [&](int pi) {
      core::EnsembleConfig cfg;
      cfg.system = opt.theta();
      cfg.app = "MILC";
      // Full-system reservation, as in the paper's controlled experiments.
      cfg.nnodes = 256;
      cfg.njobs = std::max(2, cfg.system.num_nodes() / cfg.nnodes);
      cfg.mode = mode;
      cfg.params = opt.params();
      // Reservation-level pressure: one simulated rank stands for a whole
      // node (64 KNL ranks on the real system), so per-node volumes are
      // aggregated up for the full-machine ensembles.
      cfg.params.msg_scale = opt.scale * 6;
      cfg.placement = placements[pi];
      cfg.seed = opt.seed + 17;
      cfg.shards = opt.shards;
      return core::run_controlled(cfg);
    });
    bench::report_batch("controlled", runner.stats(),
                        (controlled[0].ok ? 0 : 1) + (controlled[1].ok ? 0 : 1));
    for (int pi = 0; pi < 2; ++pi) {
      const auto& r = controlled[static_cast<std::size_t>(pi)];
      if (!r.ok) continue;
      auto& out =
          placements[pi] == sched::Placement::kCompact ? compact : disperse;
      // Global network-tile ratios for the ensemble window.
      const auto ratios = core::stall_ratios(r.total, r.flit_times);
      for (int i = 0; i < 3; ++i)
        out.push_back(ratios[static_cast<std::size_t>(i)]);
    }
    print_pdf("production", production);
    print_pdf("isolated", isolated);
    print_pdf("controlled/compact", compact);
    print_pdf("controlled/disperse", disperse);
  }
  std::printf(
      "\nPaper: AD0 production & isolated ratios bracketed by the controlled "
      "compact/disperse envelope; AD3 production (rest of system on AD0) "
      "falls outside it.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
