// Fig. 9 — Controlled experiments: all applications at 256 nodes under each
// of the four adaptive routing modes (full-system reservation; every job in
// the ensemble uses the same mode; compact and random placements mixed).
//
// Paper result: AD3 has the lowest mean normalized runtime and the smallest
// spread; AD2 next (with a few extreme outliers); AD1 slightly better than
// AD0.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 9",
                "Controlled ensembles, all apps x all four routing modes");

  // Collect per-app runtimes per mode; normalize per app; pool.
  std::vector<double> pooled[4];
  for (const auto& app : apps::paper_app_names()) {
    std::vector<double> per_mode[4];
    // One controlled full-system reservation per (mode, placement) cell;
    // the cells are independent simulations, so run them in parallel.
    struct Cell { int mode; sched::Placement placement; };
    std::vector<Cell> cells;
    for (int m = 0; m < 4; ++m)
      for (const auto placement :
           {sched::Placement::kCompact, sched::Placement::kRandom})
        cells.push_back({m, placement});
    core::TrialRunner runner(opt.jobs);
    const auto results =
        runner.map(static_cast<int>(cells.size()), [&](int i) {
          const Cell& cell = cells[static_cast<std::size_t>(i)];
          core::EnsembleConfig cfg;
          cfg.system = opt.theta();
          cfg.app = app;
          // The paper's controlled runs reserve the whole system and fill
          // it with same-app jobs; do the same.
          cfg.nnodes = 256;
          cfg.njobs = std::max(2, cfg.system.num_nodes() / cfg.nnodes);
          cfg.mode = static_cast<routing::Mode>(cell.mode);
          cfg.params = opt.params_for(app);
          // Reservation-level pressure: one simulated rank stands for a
          // whole node (64 KNL ranks on the real system), so per-node
          // volumes are aggregated up for the full-machine ensembles.
          cfg.params.msg_scale = opt.scale * 6;
          cfg.placement = cell.placement;
          cfg.seed = opt.seed;  // same placements for every mode: paired
          cfg.shards = opt.shards;
          return core::run_controlled(cfg);
        });
    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (!r.ok) {
        ++failures;
        continue;
      }
      for (const double t : r.runtimes_ms)
        per_mode[static_cast<std::size_t>(cells[i].mode)].push_back(t);
    }
    bench::report_batch((app + " controlled").c_str(), runner.stats(),
                        failures);
    // z-normalize across this app's runs (paper's per-app normalization).
    std::vector<double> all;
    for (const auto& v : per_mode) all.insert(all.end(), v.begin(), v.end());
    const auto s = stats::summarize(all);
    const double sd = s.stddev > 1e-12 ? s.stddev : 1e-12;
    for (int m = 0; m < 4; ++m)
      for (const double t : per_mode[static_cast<std::size_t>(m)])
        pooled[static_cast<std::size_t>(m)].push_back((t - s.mean) / sd);
  }
  std::printf("\n  mode | z-mean | z-min | z-max | n\n");
  for (int m = 0; m < 4; ++m) {
    const auto s = stats::summarize(pooled[static_cast<std::size_t>(m)]);
    std::printf("  AD%d  | %6.3f | %5.2f | %5.2f | %zu\n", m, s.mean, s.min,
                s.max, s.n);
  }
  std::printf(
      "\nPaper: AD3 lowest mean and tightest range; AD2 next; AD1 slightly "
      "better than AD0.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
