// Fig. 4 — MILC normalized runtimes on Cori (128/256/512 nodes) by groups
// spanned, AD0 vs AD3.
//
// Paper result: on Cori the AD3 advantage holds at every size — including
// 512 nodes (+6%), unlike Theta — because Cori's 4-cables-per-group-pair
// topology has a lower bisection-to-injection ratio (direct rank-3 paths
// saturate sooner, and minimal bias avoids spreading congestion).
// 256-node jobs improved ~13.5%.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 4", "Cori — MILC runtimes by job size, AD0 vs AD3");

  const topo::Config cori = opt.cori();
  for (const int nnodes : {128, 256, 512}) {
    std::vector<double> rt[2];
    // Draw the paired (placement, seed) cells up front, then run the
    // trials in parallel (see fig03).
    struct Cell { routing::Mode mode; int tg; std::uint64_t seed; };
    std::vector<Cell> cells;
    sim::Rng seeder(opt.seed + static_cast<std::uint64_t>(nnodes) * 7);
    for (int s = 0; s < opt.samples; ++s) {
      const int tg = 1 + static_cast<int>(seeder.uniform_u64(
                             static_cast<std::uint64_t>(cori.groups)));
      const std::uint64_t sample_seed = seeder.next();  // paired comparison
      for (const routing::Mode mode :
           {routing::Mode::kAd0, routing::Mode::kAd3})
        cells.push_back({mode, tg, sample_seed});
    }
    core::TrialRunner runner(opt.jobs);
    const auto results =
        runner.map(static_cast<int>(cells.size()), [&](int i) {
          const Cell& cell = cells[static_cast<std::size_t>(i)];
          core::ProductionConfig cfg;
          cfg.system = cori;
          cfg.app = "MILC";
          cfg.nnodes = nnodes;
          cfg.mode = cell.mode;
          cfg.params = opt.params();
          cfg.bg_utilization = opt.bg;
          cfg.placement = sched::Placement::kGroups;
          cfg.target_groups = cell.tg;
          cfg.seed = cell.seed;
          return core::run_production(cfg);
        });
    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (!r.ok) {
        ++failures;
        continue;
      }
      rt[cells[i].mode == routing::Mode::kAd0 ? 0 : 1].push_back(r.runtime_ms);
    }
    bench::report_batch("paired production", runner.stats(), failures);
    const auto s0 = stats::summarize(rt[0]);
    const auto s3 = stats::summarize(rt[1]);
    std::printf(
        "  %4d nodes: AD0 %.3f ± %.3f ms | AD3 %.3f ± %.3f ms | "
        "improvement %.1f%%\n",
        nnodes, s0.mean, s0.stddev, s3.mean, s3.stddev,
        stats::improvement_pct(s0.mean, s3.mean));
  }
  std::printf(
      "\nPaper: 256-node +13.5%%, 512-node +6%% — AD3 wins at every size on "
      "Cori (thin global links).\n");
  bench::footnote(opt, cori);
  return 0;
}
