// Fig. 10 — Controlled ensemble of eight 512-node MILC jobs filling the
// system: cumulative stalls, flits, and stall-to-flit ratio for every router
// tile, by tile class, AD0 vs AD3.
//
// Paper result: AD3 clearly reduces absolute stalls on rank-1/rank-2/proc
// tiles, cuts the stall-to-flit ratio ~2x, and lowers total flits on all
// network classes (fewer hops under minimal paths).
#include <array>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 10",
                "Eight 512-node MILC jobs filling the machine, AD0 vs AD3");

  struct ModeResult {
    net::CounterSnapshot total;
    double flit_time = 1.0;
    double mean_rt = 0.0;
  } res[2];
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    core::EnsembleConfig cfg;
    cfg.system = opt.theta();
    cfg.app = "MILC";
    // Eight 512-node jobs fill 4096 of Theta's nodes; scale the job count to
    // the configured system so the machine is equally full.
    cfg.nnodes = 512;
    cfg.njobs = std::max(1, cfg.system.num_nodes() * 8 / 4608);
    cfg.mode = mode;
    cfg.params = opt.params();
    // Reservation-level pressure: one simulated rank stands for a whole
        // node (64 KNL ranks on the real system), so per-node volumes are
        // aggregated up for the full-machine ensembles.
        cfg.params.msg_scale = opt.scale * 6;
    cfg.placement = sched::Placement::kRandom;
    cfg.seed = opt.seed;
    const auto r = core::run_controlled(cfg);
    if (!r.ok) {
      std::fprintf(stderr, "ensemble failed\n");
      return 1;
    }
    res[mi].total = r.total;
    res[mi].flit_time = r.flit_time_ns;
    if (auto csv = bench::csv(opt, std::string("fig10_tiles_") +
                                       std::string(routing::mode_name(mode)),
                              {"router", "port", "class", "flits", "stall_ns"}))
      for (const auto& tc : r.tiles)
        csv->row({std::to_string(tc.router), std::to_string(tc.port),
                  topo::tile_class_name(tc.cls), std::to_string(tc.flits),
                  std::to_string(tc.stall_ns)});
    double sum = 0;
    for (const double t : r.runtimes_ms) sum += t;
    res[mi].mean_rt = sum / static_cast<double>(r.runtimes_ms.size());
  }

  stats::Table t({"Class", "flits AD0", "flits AD3", "stall-ns AD0",
                  "stall-ns AD3", "ratio AD0", "ratio AD3"});
  auto row = [&](const char* name, const net::ClassCounters& a,
                 const net::ClassCounters& b) {
    t.add_row({name, std::to_string(a.flits), std::to_string(b.flits),
               std::to_string(a.stall_ns), std::to_string(b.stall_ns),
               stats::fmt(net::CounterSnapshot::stall_flit_ratio(
                              a, res[0].flit_time), 3),
               stats::fmt(net::CounterSnapshot::stall_flit_ratio(
                              b, res[1].flit_time), 3)});
  };
  row("Rank3", res[0].total.rank3, res[1].total.rank3);
  row("Rank2", res[0].total.rank2, res[1].total.rank2);
  row("Rank1", res[0].total.rank1, res[1].total.rank1);
  row("Proc_req", res[0].total.proc_req, res[1].total.proc_req);
  row("Proc_rsp", res[0].total.proc_rsp, res[1].total.proc_rsp);
  t.print(std::cout);
  std::printf(
      "  mean job runtime: AD0 %.3f ms vs AD3 %.3f ms\n"
      "\nPaper: under full-system MILC load AD3 cuts stalls and the "
      "stall-to-flit ratio (~2x) and reduces total network flits; the same "
      "512-node MILC preferred AD0 only on a lightly loaded production "
      "system.\n",
      res[0].mean_rt, res[1].mean_rt);
  bench::footnote(opt, opt.theta());
  return 0;
}
