// Fig. 10 — Controlled ensemble of eight 512-node MILC jobs filling the
// system: cumulative stalls, flits, and stall-to-flit ratio for every router
// tile, by tile class, AD0 vs AD3.
//
// Paper result: AD3 clearly reduces absolute stalls on rank-1/rank-2/proc
// tiles, cuts the stall-to-flit ratio ~2x, and lowers total flits on all
// network classes (fewer hops under minimal paths).
#include <array>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 10",
                "Eight 512-node MILC jobs filling the machine, AD0 vs AD3");

  struct ModeResult {
    net::CounterSnapshot total;
    net::FlitTimes ft;
    double mean_rt = 0.0;
  } res[2];
  const routing::Mode modes[2] = {routing::Mode::kAd0, routing::Mode::kAd3};
  // The two full-system ensembles are independent simulations: run them on
  // parallel workers.
  core::TrialRunner runner(opt.jobs);
  const auto results = runner.map(2, [&](int mi) {
    core::EnsembleConfig cfg;
    cfg.system = opt.theta();
    cfg.app = "MILC";
    // Eight 512-node jobs fill 4096 of Theta's nodes; scale the job count to
    // the configured system so the machine is equally full.
    cfg.nnodes = 512;
    cfg.njobs = std::max(1, cfg.system.num_nodes() * 8 / 4608);
    cfg.mode = modes[mi];
    cfg.params = opt.params();
    // Reservation-level pressure: one simulated rank stands for a whole
    // node (64 KNL ranks on the real system), so per-node volumes are
    // aggregated up for the full-machine ensembles.
    cfg.params.msg_scale = opt.scale * 6;
    cfg.placement = sched::Placement::kRandom;
    cfg.seed = opt.seed;
    cfg.shards = opt.shards;
    return core::run_controlled(cfg);
  });
  bench::report_batch("controlled", runner.stats(),
                      (results[0].ok ? 0 : 1) + (results[1].ok ? 0 : 1));
  for (int mi = 0; mi < 2; ++mi) {
    const auto& r = results[static_cast<std::size_t>(mi)];
    if (!r.ok) {
      std::fprintf(stderr, "ensemble failed: %s\n", r.fail_reason.c_str());
      return 1;
    }
    res[mi].total = r.total;
    res[mi].ft = r.flit_times;
    if (auto csv = bench::csv(opt, std::string("fig10_tiles_") +
                                       std::string(routing::mode_name(modes[mi])),
                              {"router", "port", "class", "flits", "stall_ns"}))
      for (const auto& tc : r.tiles)
        csv->row({std::to_string(tc.router), std::to_string(tc.port),
                  topo::tile_class_name(tc.cls), std::to_string(tc.flits),
                  std::to_string(tc.stall_ns)});
    double sum = 0;
    for (const double t : r.runtimes_ms) sum += t;
    res[mi].mean_rt = sum / static_cast<double>(r.runtimes_ms.size());
  }

  stats::Table t({"Class", "flits AD0", "flits AD3", "stall-ns AD0",
                  "stall-ns AD3", "ratio AD0", "ratio AD3"});
  // Each class's ratio converts stall-ns at that class's own flit time.
  auto row = [&](const char* name, const net::ClassCounters& a,
                 const net::ClassCounters& b, double ft0, double ft1) {
    t.add_row({name, std::to_string(a.flits), std::to_string(b.flits),
               std::to_string(a.stall_ns), std::to_string(b.stall_ns),
               stats::fmt(net::CounterSnapshot::stall_flit_ratio(a, ft0), 3),
               stats::fmt(net::CounterSnapshot::stall_flit_ratio(b, ft1), 3)});
  };
  row("Rank3", res[0].total.rank3, res[1].total.rank3, res[0].ft.rank3,
      res[1].ft.rank3);
  row("Rank2", res[0].total.rank2, res[1].total.rank2, res[0].ft.rank2,
      res[1].ft.rank2);
  row("Rank1", res[0].total.rank1, res[1].total.rank1, res[0].ft.rank1,
      res[1].ft.rank1);
  row("Proc_req", res[0].total.proc_req, res[1].total.proc_req,
      res[0].ft.proc, res[1].ft.proc);
  row("Proc_rsp", res[0].total.proc_rsp, res[1].total.proc_rsp,
      res[0].ft.proc, res[1].ft.proc);
  t.print(std::cout);
  std::printf(
      "  mean job runtime: AD0 %.3f ms vs AD3 %.3f ms\n"
      "\nPaper: under full-system MILC load AD3 cuts stalls and the "
      "stall-to-flit ratio (~2x) and reduces total network flits; the same "
      "512-node MILC preferred AD0 only on a lightly loaded production "
      "system.\n",
      res[0].mean_rt, res[1].mean_rt);
  bench::footnote(opt, opt.theta());
  return 0;
}
