// Table I — Communication properties of each application (256-node runs).
//
// Paper columns: point-to-point size class, collective size class, % of MPI
// in total time, and the top-3 MPI calls by time. We run each proxy app
// isolated (no background, AD0 defaults) and report the measured values.
#include <cstdio>
#include <iostream>

#include "apps/registry.hpp"
#include "common.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Table I", "Communication properties of each application");

  stats::Table t({"App", "p2p avg B", "coll avg B", "% MPI", "MPI Call1",
                  "MPI Call2", "MPI Call3"});
  const int nnodes = 256;
  for (const auto& app : apps::paper_app_names()) {
    core::ProductionConfig cfg = opt.production(app, nnodes, routing::Mode::kAd0);
    cfg.bg_utilization = 0.0;  // Table I characterizes the app itself
    cfg.placement = sched::Placement::kCompact;
    const core::RunResult r = core::run_production(cfg);
    if (!r.ok) {
      std::fprintf(stderr, "run failed for %s\n", app.c_str());
      continue;
    }
    const core::CharacterizationRow row = core::characterize(r.autoperf);
    t.add_row({row.app, stats::fmt(row.p2p_avg_bytes, 0),
               stats::fmt(row.coll_avg_bytes, 0),
               stats::fmt(row.mpi_pct, 0) + "%", row.call1, row.call2,
               row.call3});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper Table I reference (256 nodes):\n"
      "  MILC         heavy KB p2p, 8B allreduce, 52%%: Allreduce/Wait/Isend\n"
      "  MILCREORDER  heavy KB p2p, 8B allreduce, 50%%: Wait/Allreduce/Isend\n"
      "  Nek5000      medium KB p2p, 16B coll,    48%%: Allreduce/Waitall/Recv\n"
      "  HACC         light >1MB p2p, 1KB coll,   22%%: Wait/Waitall/Allreduce\n"
      "  Qbox         medium 50KB p2p, 128KB coll,66%%: Alltoallv/Recv/Wait\n"
      "  Rayleigh     no p2p, 23MB coll,          28%%: Alltoallv/Send/Barrier\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
