// Table II — Mean ± σ runtimes for every application at 256 nodes under
// production conditions, AD0 vs AD3, with % improvement in total time and
// in MPI time.
//
// Paper result: AD3 improves MILC +11%, MILCREORDER +11.9%, Nek5000 +2.2%,
// Qbox +4.8%, Rayleigh +0.2%; HACC regresses -2.7%. MPI-time improvements
// up to 18.8%.
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Table II", "All applications, 256 nodes, AD0 vs AD3");

  auto csv = bench::csv(opt, "table2_runs",
                        {"app", "mode", "runtime_ms", "mpi_ms", "groups"});
  std::vector<core::ComparisonRow> rows;
  for (const auto& app : apps::paper_app_names()) {
    std::vector<double> rt[2], mpi[2];
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
      auto cfg = opt.production(app, 256, mode);
      const auto batch =
          core::run_production_ensemble(cfg, opt.samples, opt.batch());
      bench::report_batch((app + " " + std::string(routing::mode_name(mode)))
                              .c_str(),
                          batch.stats, batch.failures());
      for (const auto& r : batch.results) {
        if (!r.ok) continue;
        const double mpims =
            sim::to_ms(r.autoperf.profile.total_mpi_ns()) / r.autoperf.nranks;
        rt[mi].push_back(r.runtime_ms);
        mpi[mi].push_back(mpims);
        if (csv)
          csv->row({app, std::string(routing::mode_name(mode)),
                    stats::CsvWriter::num(r.runtime_ms),
                    stats::CsvWriter::num(mpims),
                    std::to_string(r.groups_spanned)});
      }
      rt[mi] = stats::remove_outliers(rt[mi]);
    }
    core::ComparisonRow row;
    row.app = app;
    row.ad0 = stats::summarize(rt[0]);
    row.ad3 = stats::summarize(rt[1]);
    row.time_improvement_pct =
        stats::improvement_pct(row.ad0.mean, row.ad3.mean);
    row.mpi_improvement_pct = stats::improvement_pct(
        stats::summarize(mpi[0]).mean, stats::summarize(mpi[1]).mean);
    row.runs = static_cast<int>(rt[0].size() + rt[1].size());
    rows.push_back(row);
  }
  core::print_table2(std::cout, rows);
  std::printf(
      "\nPaper Table II: MILC +11%%, MILCREORDER +11.9%%, Nek5000 +2.2%%, "
      "HACC -2.7%%, Qbox +4.8%%, Rayleigh +0.2%%.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
