// Extension — adaptive routing vs hardware faults.
//
// The paper studies AD0 vs AD3 on pristine hardware; production dragonflies
// lose links and routers continuously (Theta's optical cables in particular).
// This bench sweeps the fraction of failed links (0%, 1%, 5% by default;
// seeded-random placement, identical fault plan for both modes at each
// fraction) and compares minimal-biased AD0 against non-minimal-friendly AD3
// on MILC in the production condition. Under failures the planner reroutes
// around dead links, the NIC retries lost payloads, and FaultStats reports
// the recovery work — the question is which bias policy degrades more
// gracefully.
//
// Determinism: results are byte-identical for any --jobs value and for every
// --shards value >= 1 (the sharded-execution family). --shards=0 (serial) is
// a distinct-but-deterministic family, so this bench normalizes shards <= 0
// to 1: the printed output is identical for --shards in {0, 1, 4, ...}.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace dfsim;

// One fault plan per fraction, shared by both routing modes so the
// comparison is paired: same links die at the same simulated time.
fault::FaultPlan plan_for(const bench::Options& opt, const topo::Config& sys,
                          double frac) {
  if (frac <= 0.0) return {};
  fault::RandomFaultSpec spec;
  spec.seed = opt.fault_seed;
  spec.link_fail_fraction = frac;
  // Strike after the background ramp-up (300us warmup) unless the flag says
  // otherwise, so established routes have to adapt mid-run.
  const double at_us = opt.fault_at_us > 0.0 ? opt.fault_at_us : 400.0;
  spec.window_begin = static_cast<sim::Tick>(at_us * sim::kMicrosecond);
  spec.window_end = spec.window_begin;
  spec.repair_after =
      static_cast<sim::Tick>(opt.fault_repair_us * sim::kMicrosecond);
  return fault::FaultPlan::random(sys, spec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension", "AD0 vs AD3 under link failures");

  const topo::Config sys = opt.theta();
  const int shards = opt.shards <= 0 ? 1 : opt.shards;
  const double fractions[] = {0.0, 0.01, 0.05};

  auto csvw = bench::csv(opt, "ext_fault_sweep",
                         {"frac", "mode", "sample", "runtime_ms", "rerouted",
                          "dropped", "retried"});
  stats::Table t({"failed links", "mode", "mean runtime (ms)", "sigma",
                  "rerouted/run", "dropped/run", "retried/run",
                  "abandoned/run"});
  for (const double frac : fractions) {
    const fault::FaultPlan plan = plan_for(opt, sys, frac);
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      const core::ScenarioConfig cfg = core::Scenario::production()
                                           .system(sys)
                                           .app("MILC")
                                           .nnodes(256)
                                           .mode(mode)
                                           .params(opt.params_for("MILC"))
                                           .background(opt.bg)
                                           .seed(opt.seed)
                                           .shards(shards)
                                           .faults(plan)
                                           .config();
      const auto batch =
          core::run_production_ensemble(cfg, opt.samples, opt.batch());
      if (batch.failures() > 0)
        std::fprintf(stderr,
                     "  warning: %d/%d trials failed at frac=%.2f %s\n",
                     batch.failures(), opt.samples, frac,
                     std::string(routing::mode_name(mode)).c_str());

      std::vector<double> xs;
      std::uint64_t rerouted = 0, dropped = 0, retried = 0, abandoned = 0;
      for (std::size_t i = 0; i < batch.results.size(); ++i) {
        const core::RunResult& r = batch.results[i];
        if (!r.ok) continue;
        xs.push_back(r.runtime_ms);
        rerouted += r.faults.packets_rerouted;
        dropped += r.faults.packets_dropped;
        retried += r.faults.messages_retried;
        abandoned += r.faults.messages_abandoned;
        if (csvw)
          csvw->row({stats::fmt(frac, 2), std::string(routing::mode_name(mode)),
                     std::to_string(i), stats::fmt(r.runtime_ms, 3),
                     std::to_string(r.faults.packets_rerouted),
                     std::to_string(r.faults.packets_dropped),
                     std::to_string(r.faults.messages_retried)});
      }
      const auto s = stats::summarize(xs);
      const double n = xs.empty() ? 1.0 : static_cast<double>(xs.size());
      char frac_label[16];
      std::snprintf(frac_label, sizeof frac_label, "%.0f%%", frac * 100.0);
      t.add_row({frac_label, std::string(routing::mode_name(mode)),
                 stats::fmt(s.mean, 3), stats::fmt(s.stddev, 3),
                 stats::fmt(static_cast<double>(rerouted) / n, 1),
                 stats::fmt(static_cast<double>(dropped) / n, 1),
                 stats::fmt(static_cast<double>(retried) / n, 1),
                 stats::fmt(static_cast<double>(abandoned) / n, 1)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: both modes lose bandwidth as links fail; AD3's "
      "willingness to go non-minimal gives it more alternative paths around "
      "dead links, so its runtime should degrade more gracefully at the 5%% "
      "fraction, at the cost of extra rerouted packets.\n");
  std::printf(
      "[system %s: %d groups, %d nodes | samples=%d iters=%d scale=%.2f "
      "bg=%.2f seed=%llu fault-seed=%llu]\n",
      sys.name.c_str(), sys.groups, sys.num_nodes(), opt.samples,
      opt.iterations, opt.scale, opt.bg,
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(opt.fault_seed));
  return 0;
}
