// Fig. 3 — MILC and MILCREORDER normalized runtimes on Theta, by job size
// (128/256/512 nodes) and number of dragonfly groups spanned, AD0 vs AD3.
//
// Paper result: AD3 consistently better at 128/256 nodes regardless of
// placement spread; at 512 nodes on Theta, production AD3 is ~3% *worse*
// (the lightly-loaded-system case revisited in Section V-A).
#include <cstdio>
#include <map>
#include <vector>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 3",
                "MILC/MILCREORDER normalized runtime vs groups spanned (Theta)");

  const int max_groups = opt.theta().groups;
  for (const std::string app : {"MILC", "MILCREORDER"}) {
    for (const int nnodes : {128, 256, 512}) {
      std::printf("\n--- %s, %d nodes ---\n", app.c_str(), nnodes);
      std::vector<double> rt[2];
      std::map<int, std::pair<std::vector<double>, std::vector<double>>> by_groups;
      // Spread placements over the full 1..max_groups range like the
      // months of production sampling did. AD0 and AD3 share the seed of
      // each sample (same placement, same background draw): a paired
      // comparison, since the paper's per-group-count cells have 30+
      // samples and ours have few. The per-sample draws happen up front so
      // the paired trials can run in parallel without perturbing them.
      struct Cell { routing::Mode mode; int tg; std::uint64_t seed; };
      std::vector<Cell> cells;
      sim::Rng seeder(opt.seed + static_cast<std::uint64_t>(nnodes));
      for (int s = 0; s < opt.samples; ++s) {
        const int tg = 1 + static_cast<int>(seeder.uniform_u64(
                               static_cast<std::uint64_t>(max_groups)));
        const std::uint64_t sample_seed = seeder.next();
        for (const routing::Mode mode :
             {routing::Mode::kAd0, routing::Mode::kAd3})
          cells.push_back({mode, tg, sample_seed});
      }
      core::TrialRunner runner(opt.jobs);
      const auto results =
          runner.map(static_cast<int>(cells.size()), [&](int i) {
            const Cell& cell = cells[static_cast<std::size_t>(i)];
            auto cfg = opt.production(app, nnodes, cell.mode);
            cfg.placement = sched::Placement::kGroups;
            cfg.target_groups = cell.tg;
            cfg.seed = cell.seed;
            return core::run_production(cfg);
          });
      int failures = 0;
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (!r.ok) {
          ++failures;
          continue;
        }
        const bool ad0 = cells[i].mode == routing::Mode::kAd0;
        rt[ad0 ? 0 : 1].push_back(r.runtime_ms);
        auto& cell = by_groups[r.groups_spanned];
        (ad0 ? cell.first : cell.second).push_back(r.runtime_ms);
      }
      bench::report_batch("paired production", runner.stats(), failures);
      // Joint z-normalization per job size (paper's per-size normalization).
      std::vector<double> all = rt[0];
      all.insert(all.end(), rt[1].begin(), rt[1].end());
      const auto s = stats::summarize(all);
      const double sd = s.stddev > 1e-12 ? s.stddev : 1e-12;
      std::printf("  groups |   AD0 z-mean (n) |   AD3 z-mean (n)\n");
      for (const auto& [g, cell] : by_groups) {
        const auto a = stats::summarize(cell.first);
        const auto b = stats::summarize(cell.second);
        std::printf("  %6d | %8.2f    (%2zu) | %8.2f    (%2zu)\n", g,
                    (a.mean - s.mean) / sd, a.n, (b.mean - s.mean) / sd, b.n);
      }
      const auto s0 = stats::summarize(rt[0]);
      const auto s3 = stats::summarize(rt[1]);
      std::printf("  overall: AD0 %.3f ms, AD3 %.3f ms -> improvement %.1f%%\n",
                  s0.mean, s3.mean, stats::improvement_pct(s0.mean, s3.mean));
    }
  }
  std::printf(
      "\nPaper: AD3 wins at 128/256 nodes irrespective of spread; 512-node "
      "Theta production shows a small AD0 advantage (-3%%).\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
