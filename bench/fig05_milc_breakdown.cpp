// Fig. 5 — MILC runtime decomposed into Compute and the dominant MPI
// operations (Allreduce, Wait, Isend), per run, AD0 vs AD3.
//
// Paper result: the AD3 gain comes out of the MPI share — the latency-bound
// operations (Allreduce, Wait) shrink under minimal routes while Compute is
// unchanged.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 5", "MILC runtime breakdown per run (Compute + MPI ops)");

  const std::vector<mpi::Op> ops{mpi::Op::kAllreduce, mpi::Op::kWait,
                                 mpi::Op::kWaitall, mpi::Op::kIsend};
  double mpi_ms[2] = {0, 0}, compute_ms[2] = {0, 0};
  int n[2] = {0, 0};
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    std::printf("\n--- %s ---\n", std::string(routing::mode_name(mode)).c_str());
    auto cfg = opt.production("MILC", 256, mode);
    const auto rs = core::run_production_batch(cfg, opt.samples);
    for (const auto& r : rs) {
      if (!r.ok) continue;
      core::print_breakdown(std::cout, r.autoperf, ops);
      const double mpi =
          sim::to_ms(r.autoperf.profile.total_mpi_ns()) / r.autoperf.nranks;
      mpi_ms[mi] += mpi;
      compute_ms[mi] += r.runtime_ms - mpi;
      ++n[mi];
    }
  }
  for (int mi = 0; mi < 2; ++mi) {
    if (n[mi] == 0) continue;
    mpi_ms[mi] /= n[mi];
    compute_ms[mi] /= n[mi];
  }
  std::printf(
      "\n  mean Compute: AD0 %.3f ms vs AD3 %.3f ms (should match)\n"
      "  mean MPI:     AD0 %.3f ms vs AD3 %.3f ms -> MPI improvement %.1f%% "
      "(paper: ~16.7%%)\n",
      compute_ms[0], compute_ms[1], mpi_ms[0], mpi_ms[1],
      stats::improvement_pct(mpi_ms[0], mpi_ms[1]));
  bench::footnote(opt, opt.theta());
  return 0;
}
