// Fig. 14 — System-wide packet-pair latency percentiles before/after the
// routing-mode change, from the NIC ORB counters
// (AR_NIC_ORB_PRF_NET_RSP_TRACK / ..._EVENT_CNTR_RSP_NET_TRACK).
//
// Paper result: sampling mean request-response latency across all >12,000
// NICs over a week each way, every percentile improves under AD3, with tail
// latencies (P99..P99.99) reduced 20-30% (918us -> 663us at P99.99).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "monitor/ldms.hpp"
#include "sched/scheduler.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 14",
                "System-wide packet-pair latency percentiles, AD0 vs AD3");

  std::vector<double> lat[2];
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
    sched::Scheduler sched(opt.theta(), opt.seed + 3);
    sched.machine().engine().set_event_budget(core::kEventBudget);
    const auto bg = sched.add_background(0.85, mode);
    (void)bg;
    // Sample each NIC's mean-latency counter at multiple points in time
    // (the paper samples 100 random points per NIC per window).
    const int rounds = 4 + opt.samples / 2;
    for (int k = 0; k < rounds; ++k) {
      sched.machine().run_for(500 * sim::kMicrosecond);
      const auto snap = monitor::nic_mean_latencies(sched.machine().network());
      lat[mi].insert(lat[mi].end(), snap.begin(), snap.end());
    }
  }

  const double percentiles[] = {0.05, 0.25, 0.50, 0.75, 0.90,
                                0.95, 0.99, 0.999, 0.9999};
  const char* names[] = {"P05", "P25", "P50",  "P75",   "P90",
                         "P95", "P99", "P99.9", "P99.99"};
  auto csv = bench::csv(opt, "fig14_latency",
                        {"percentile", "ad0_us", "ad3_us", "change_pct"});
  std::printf("\n  pct     | AD0 (us) | AD3 (us) | %% change\n");
  for (int i = 0; i < 9; ++i) {
    const double a = stats::percentile(lat[0], percentiles[i]) / 1000.0;
    const double b = stats::percentile(lat[1], percentiles[i]) / 1000.0;
    const double chg = a > 0 ? 100.0 * (b - a) / a : 0.0;
    std::printf("  %-7s | %8.2f | %8.2f | %+7.1f%%\n", names[i], a, b, chg);
    if (csv)
      csv->row({names[i], stats::CsvWriter::num(a), stats::CsvWriter::num(b),
                stats::CsvWriter::num(chg)});
  }
  std::printf(
      "\n  samples: AD0 n=%zu, AD3 n=%zu\n"
      "\nPaper: improvements across the board, tails (P99+) down 20-30%%.\n",
      lat[0].size(), lat[1].size());
  bench::footnote(opt, opt.theta());
  return 0;
}
