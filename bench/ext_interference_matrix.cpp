// Extension — app-by-app interference matrix.
//
// The paper's production runs measure each app against an anonymous
// synthetic background. This bench asks the sharper question the paper's
// Section IV analysis implies: which *specific* neighbor hurts which app,
// and does adaptive routing change the answer? For each routing mode it
// colocates every ordered registry-app pair (victim A, aggressor B) on an
// otherwise idle machine and reports A's runtime slowdown relative to A
// alone on the identical node set (same seed, victim allocated first — see
// core/interference.hpp for the pairing methodology). The --fault-* flags
// compose: the same fault plan is injected into every cell to measure
// interference on degraded hardware.
//
// Determinism: results are byte-identical for any --jobs value and for
// every --shards value >= 1 (the sharded-execution family). --shards=0
// (serial) is a distinct-but-deterministic family, so this bench
// normalizes shards <= 0 to 1: the printed output is identical for
// --shards in {0, 1, 4, ...}.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"
#include "core/interference.hpp"

namespace {

using namespace dfsim;

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  bench::Options opt;
  std::string apps_flag;
  std::string modes_flag = "AD0,AD3";
  int nnodes = 32;
  bench::Cli cli(argc > 0 ? argv[0] : "ext_interference_matrix");
  opt.register_flags(cli);
  cli.flag("apps", &apps_flag,
           "comma-separated victim/aggressor apps (default: all six)")
      .flag("modes", &modes_flag, "comma-separated routing modes to sweep")
      .flag("nnodes", &nnodes, "nodes per app (a pair occupies 2x this)");
  cli.parse(argc, argv);
  bench::header("Extension", "app x app interference matrix");

  core::InterferenceConfig cfg;
  cfg.system = opt.theta();
  cfg.nnodes = nnodes;
  cfg.params = opt.params();
  cfg.seed = opt.seed;
  // Normalize to the sharded family so --shards 0 and --shards N print
  // byte-identical matrices (see the determinism note above).
  cfg.shards = opt.shards <= 0 ? 1 : opt.shards;
  cfg.shard_workers = opt.workers;
  cfg.faults = opt.fault_plan(cfg.system);
  for (const auto& name : split_list(apps_flag)) {
    if (!apps::has_app(name)) {
      std::fprintf(stderr, "unknown app %s\n", name.c_str());
      return 2;
    }
    cfg.apps.push_back(name);
  }
  cfg.modes.clear();
  for (const auto& name : split_list(modes_flag)) {
    routing::Mode m{};
    if (!routing::parse_mode(name, m)) {
      std::fprintf(stderr, "unknown mode %s\n", name.c_str());
      return 2;
    }
    cfg.modes.push_back(m);
  }

  const auto matrix = core::run_interference_matrix(cfg, opt.jobs);
  core::print_interference_matrix(std::cout, matrix);
  int failed = 0;
  for (const auto& c : matrix.cells)
    if (!c.ok) ++failed;
  if (failed > 0)
    std::fprintf(stderr, "  warning: %d/%zu cells failed\n", failed,
                 matrix.cells.size());

  if (!opt.csv_dir.empty()) {
    const std::string path = opt.csv_dir + "/ext_interference_matrix.csv";
    std::ofstream out(path);
    if (out)
      core::write_interference_csv(out, matrix);
    else
      std::fprintf(stderr, "warning: cannot write CSV %s\n", path.c_str());
  }

  std::printf(
      "\nExpected: alltoall-heavy aggressors (QBOX, RAYLEIGH) slow every "
      "victim the most; AD3 softens the worst pairs by spreading their "
      "traffic off the congested minimal paths, at a small cost to victims "
      "that preferred minimal routes.\n");
  // Custom footnote (no --jobs or --shards): the printed output must be
  // byte-identical across every --jobs and --shards invocation so CI can
  // diff runs directly, like ext_fault_sweep.
  std::printf(
      "[system %s: %d groups, %d nodes | nnodes=%d iters=%d scale=%.2f "
      "seed=%llu]\n",
      cfg.system.name.c_str(), cfg.system.groups, cfg.system.num_nodes(),
      cfg.nnodes, cfg.params.iterations, opt.scale,
      static_cast<unsigned long long>(cfg.seed));
  return 0;
}
