// Fig. 7 — Normalized (z-score) runtime distributions per application,
// AD0 vs AD3, under production conditions.
//
// Paper result: every app except HACC shifts down (faster) and tightens
// (less run-to-run variability) under AD3.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "apps/registry.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 7", "Normalized runtimes per app, AD0 vs AD3 (production)");

  for (const auto& app : apps::paper_app_names()) {
    std::vector<double> rt[2];
    for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
      const int mi = mode == routing::Mode::kAd0 ? 0 : 1;
      auto cfg = opt.production(app, 256, mode);
      const auto batch =
          core::run_production_ensemble(cfg, opt.samples, opt.batch());
      bench::report_batch((app + " " + std::string(routing::mode_name(mode)))
                              .c_str(),
                          batch.stats, batch.failures());
      for (const auto& r : batch.results)
        if (r.ok) rt[mi].push_back(r.runtime_ms);
    }
    core::print_normalized_split(std::cout, app, rt[0], rt[1]);
  }
  std::printf(
      "\nPaper: negative AD3 z-means (faster) and tighter ranges for all "
      "apps except HACC.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
