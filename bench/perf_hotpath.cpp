// Hot-path performance harness: measures the discrete-event engine and the
// full simulation stack, and emits BENCH_hotpath.json so every PR reports a
// perf trajectory.
//
// Measurements:
//  * micro     — a self-rescheduling event-chain microbenchmark whose capture
//    payloads match what net::Network actually schedules (this + a handful
//    of node/packet/router/port ids). Isolates EventQueue push/pop/invoke.
//  * sim       — one production trial on the scaled Theta system: end-to-end
//    engine events/sec and delivered packets/sec. Total allocs/event plus a
//    steady-state figure counted from the end of warmup (the app layer's
//    coroutine frames and request state allocate; the forwarding plane must
//    not — see --allocs-strict). The trial is repeated --repeats times and
//    the fastest repetition is reported: the workload is deterministic
//    (identical events/packets every time — the harness verifies this), so
//    repetitions only differ by machine interference and the minimum is the
//    least-contaminated measurement of the simulator itself.
//  * breakdown — the same trial re-run with a net::EventProfile attached:
//    per-event-kind counts and wall-time shares (injection / hop / ejection
//    / throttle / escape / loopback). Profiled runs pay two clock reads per
//    event, so the headline events/sec always comes from the unprofiled run.
//  * allocs    — heap allocations per event, via the counting operator new
//    defined in this translation unit (instruments the whole binary).
//
// --allocs-strict runs a closed-loop workload on the forwarding plane alone
// (messages re-sent from delivery callbacks, no MPI/app layer) at full
// scaled-Theta size and FAILS (exit 1) if the steady state performs a single
// heap allocation.
//
// The JSON carries two reference points: the pre-rework baseline (recorded
// at the seed of this PR chain, commit 6be3374, Release -O2) and the PR 2
// committed numbers (event-pool + routing-cache rework, commit 6e0ff97) that
// the allocation-free forwarding plane is measured against.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/experiment.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/config.hpp"
#include "topo/dragonfly.hpp"

// --- counting allocator (whole binary) -------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dfsim {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// --- micro: event-chain scheduling ----------------------------------------

// Each chain event re-schedules itself with the capture shape of
// Network::try_transmit's arrival closure (one pointer + five 32-bit ids,
// 28 payload bytes — too big for libstdc++'s 16-byte std::function SBO, so
// the pre-rework queue heap-allocated every single one).
struct MicroCtx {
  sim::Engine eng;
  std::uint64_t remaining = 0;
};

void chain_hop(MicroCtx& ctx, std::int32_t r, std::int32_t p, std::int32_t vc,
               std::int32_t flits, std::int32_t pid) {
  if (ctx.remaining == 0) return;
  --ctx.remaining;
  ctx.eng.schedule(1, [&ctx, r, p, vc, flits, pid] {
    chain_hop(ctx, r, p, vc, flits, pid);
  });
}

struct MicroResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

MicroResult run_micro(std::uint64_t events) {
  constexpr int kChains = 64;  // ~typical number of simultaneously busy ports
  MicroResult out;
  MicroCtx ctx;
  // Warmup lap: populate pools and the heap's capacity.
  ctx.remaining = events / 8;
  for (int c = 0; c < kChains; ++c)
    chain_hop(ctx, c, c + 1, c % 6, 9, 1000 + c);
  ctx.eng.run();
  // Measured lap.
  ctx.remaining = events;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t e0 = ctx.eng.events_executed();
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kChains; ++c)
    chain_hop(ctx, c, c + 1, c % 6, 9, 1000 + c);
  ctx.eng.run();
  out.wall_ms = ms_since(t0);
  out.events = ctx.eng.events_executed() - e0;
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  out.events_per_sec =
      out.wall_ms > 0.0 ? 1000.0 * static_cast<double>(out.events) / out.wall_ms
                        : 0.0;
  out.allocs_per_event = out.events > 0 ? static_cast<double>(allocs) /
                                              static_cast<double>(out.events)
                                        : 0.0;
  return out;
}

// --- sim: end-to-end production trial -------------------------------------

struct SimResult {
  std::uint64_t events = 0;
  std::int64_t packets = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double packets_per_sec = 0.0;
  double allocs_per_event = 0.0;
  /// Allocations per event counted from the end of the warmup window (the
  /// MPI/app layer still allocates coroutine frames and request state; the
  /// forwarding plane itself is allocation-free — see --allocs-strict).
  double steady_allocs_per_event = 0.0;
  double runtime_ms = 0.0;  ///< simulated app runtime (sanity anchor)
  core::ShardExecStats shard_exec;  ///< substrate stats (zeros if serial)
  bool ok = false;
};

core::ProductionConfig sim_config(bool quick, std::uint64_t seed) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.system.packet_payload_bytes = 4096;  // bench-grade packets (see bench/common.hpp)
  cfg.system.buffer_flits = 2048;
  cfg.app = "MILC";
  cfg.nnodes = quick ? 32 : 128;
  cfg.params.iterations = quick ? 1 : 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = quick ? 0.1 : 0.3;
  // Spread background: the legacy mixed fill lands its compact jobs on the
  // lowest free node ids, concentrating ~2/3 of all traffic in group 0 — a
  // hotspot no group-granular partition can split (groups cannot straddle
  // shards). Random placement keeps per-group load balanceable, which is
  // what the shard_imbalance gate measures the planner against.
  cfg.bg_placement = sched::BgPlacement::kRandom;
  cfg.seed = seed;
  return cfg;
}

SimResult run_sim(bool quick, std::uint64_t seed, int shards = 0,
                  int workers = 0, net::EventProfile* profile = nullptr) {
  core::ProductionConfig cfg = sim_config(quick, seed);
  cfg.shards = shards;
  cfg.shard_workers = workers;
  cfg.event_profile = profile;
  std::uint64_t steady_a0 = 0;
  std::uint64_t steady_e0 = 0;
  cfg.on_measurement_start = [&](const sim::Engine& eng) {
    steady_a0 = g_allocs.load(std::memory_order_relaxed);
    steady_e0 = eng.events_executed();
  };

  SimResult out;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunResult r = core::run_production(cfg);
  out.wall_ms = ms_since(t0);
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  out.ok = r.ok;
  if (!r.ok) {
    std::fprintf(stderr, "perf_hotpath: sim trial failed: %s\n",
                 r.fail_reason.c_str());
    return out;
  }
  out.events = r.events_executed;
  out.packets = r.netstats.packets_delivered;
  out.runtime_ms = r.runtime_ms;
  out.shard_exec = r.shard_exec;
  out.events_per_sec =
      out.wall_ms > 0.0 ? 1000.0 * static_cast<double>(out.events) / out.wall_ms
                        : 0.0;
  out.packets_per_sec = out.wall_ms > 0.0
                            ? 1000.0 * static_cast<double>(out.packets) /
                                  out.wall_ms
                            : 0.0;
  out.allocs_per_event = out.events > 0 ? static_cast<double>(a1 - a0) /
                                              static_cast<double>(out.events)
                                        : 0.0;
  const std::uint64_t steady_events = out.events - steady_e0;
  out.steady_allocs_per_event =
      steady_events > 0
          ? static_cast<double>(a1 - steady_a0) /
                static_cast<double>(steady_events)
          : 0.0;
  return out;
}

// --- allocs-strict: closed-loop forwarding plane, zero steady allocs ------

// Drives net::Network directly (no MPI machine, no app coroutines): a fixed
// set of flows each keeps exactly one message in flight, re-sent from its
// own delivery callback. After a warmup lap has grown every pool to its
// high-water mark, the steady state must not allocate at all.
struct StrictLoop {
  net::Network& net;
  std::vector<topo::NodeId> src, dst;
  std::int64_t bytes = 64 * 1024;

  void kick(int i) {
    net.send_message(src[static_cast<std::size_t>(i)],
                     dst[static_cast<std::size_t>(i)], bytes,
                     routing::Mode::kAd0, [this, i] { kick(i); });
  }
};

struct StrictResult {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  double wall_ms = 0.0;
  bool ok = false;
};

StrictResult run_allocs_strict(std::uint64_t seed) {
  topo::Config cfg = topo::Config::theta_scaled();
  cfg.packet_payload_bytes = 4096;
  cfg.buffer_flits = 2048;
  const topo::Dragonfly topo(cfg);
  sim::Engine eng;
  net::Network net(eng, topo, seed);

  constexpr int kFlows = 512;
  // Pre-size every pool to its workload bound (each flow keeps one 16-packet
  // message plus its 1-flit responses in flight), so "steady state performs
  // zero allocations" is a deterministic property, not a warmup race.
  eng.reserve_events(1u << 17);
  net.reserve(static_cast<std::size_t>(kFlows) * 64, 2 * kFlows, 1u << 15);
  StrictLoop loop{net, {}, {}, 64 * 1024};
  sim::Rng rng(seed ^ 0x5757575757575757ULL);
  const auto nodes = static_cast<std::uint64_t>(cfg.num_nodes());
  for (int i = 0; i < kFlows; ++i) {
    const auto s = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    auto d = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    if (d == s) d = static_cast<topo::NodeId>((d + 1) % cfg.num_nodes());
    loop.src.push_back(s);
    loop.dst.push_back(d);
  }
  for (int i = 0; i < kFlows; ++i) loop.kick(i);

  // Warmup: reach every pool's steady-state high-water mark.
  eng.run_until(2 * sim::kMillisecond);
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t e0 = eng.events_executed();
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(10 * sim::kMillisecond);
  StrictResult out;
  out.wall_ms = ms_since(t0);
  out.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  out.events = eng.events_executed() - e0;
  out.ok = out.allocs == 0 && out.events > 0;
  return out;
}

// --- baseline (pre-rework seed, commit 6be3374, Release -O2, dev machine) --

struct Baseline {
  double micro_events_per_sec;
  double micro_allocs_per_event;
  double sim_events_per_sec;
  double sim_packets_per_sec;
  double sim_allocs_per_event;
};

// Recorded by running this same harness against the seed tree before the
// event-pool / routing-cache rework (std::function event queue, per-packet
// topo lookups). Used to compute the archived speedup factors below.
constexpr Baseline kBaseline{
    11.3e6,  // micro events/sec
    1.0,     // micro allocs/event (one heap closure per event)
    2.8e6,   // sim events/sec
    0.25e6,  // sim packets/sec
    1.087,   // sim allocs/event
};

// PR 2 committed numbers (commit 6e0ff97, the BENCH_hotpath.json checked in
// with the event-pool / routing-cache rework): the reference point for the
// allocation-free forwarding plane's >= 2x sim events/sec target.
constexpr Baseline kPr2{
    23464402.9,  // micro events/sec
    0.0,         // micro allocs/event
    3963351.5,   // sim events/sec
    346358.2,    // sim packets/sec
    0.2716,      // sim allocs/event
};

}  // namespace
}  // namespace dfsim

int main(int argc, char** argv) {
  using namespace dfsim;
  bool quick = false;
  bool allocs_strict = false;
  bool no_shard_scaling = false;
  int shards = 0;  // headline sim run substrate (0 = serial engine)
  int workers = 0;  // executor threads for the headline sharded run
  double min_speedup = 0.0;  // sharded-speedup gate (0 = report only)
  double max_imbalance = 1.5;  // shard_events max/mean gate (strict only)
  bool strict_gate = false;  // skip-is-failure mode for the speedup gate
  std::uint64_t micro_events = 0;  // 0 = pick from --quick below
  std::uint64_t seed = 2021;
  int repeats = 5;
  std::string out_path = "BENCH_hotpath.json";
  bench::Cli cli("perf_hotpath");
  cli.flag("quick", &quick, "short micro run (2M events instead of 20M)")
      .flag("allocs-strict", &allocs_strict,
            "closed-loop forwarding-plane run; FAIL on any steady-state "
            "allocation")
      .flag("no-shard-scaling", &no_shard_scaling,
            "skip the shard/worker scaling sweep")
      .flag("shards", &shards,
            "substrate for the headline sim trial (0 = serial engine; N >= 1 "
            "= lookahead-windowed sharded execution, results byte-identical "
            "for every N)")
      .flag("workers", &workers,
            "executor threads for the headline sharded trial (0 = auto; "
            "wall-clock only, results identical for any N)")
      .flag("min-speedup", &min_speedup,
            "FAIL unless the widest sweep row reaches this speedup vs serial "
            "(gate self-skips, with a note, when the host has fewer hardware "
            "threads than that row has workers)")
      .flag("max-imbalance", &max_imbalance,
            "with --strict-gate: FAIL if the widest sweep row's shard-event "
            "imbalance (max/mean) exceeds this (0 = report only); unlike the "
            "speedup gate this never self-skips — the load-aware partition "
            "is deterministic, so any host can judge it")
      .flag("strict-gate", &strict_gate,
            "with --min-speedup: a skipped gate is a FAILURE, not a pass — "
            "use in CI so an undersized runner cannot silently waive the "
            "speedup check")
      .flag("micro-events", &micro_events, "micro-benchmark event count")
      .flag("seed", &seed, "trial seed")
      .flag("repeats", &repeats, "identical sim trials; fastest is reported")
      .flag("out", &out_path, "JSON report path");
  cli.parse(argc, argv);
  const bool shard_scaling = !no_shard_scaling;
  shards = std::max(0, shards);
  workers = std::max(0, workers);
  repeats = std::max(1, repeats);
  if (micro_events == 0) micro_events = quick ? 2'000'000 : 20'000'000;

  if (allocs_strict) {
    std::printf("perf_hotpath: allocs-strict (forwarding-plane closed loop)\n");
    const StrictResult strict = run_allocs_strict(seed);
    std::printf(
        "  strict: %llu steady-state events in %.1f ms — %llu allocations "
        "(%s)\n",
        static_cast<unsigned long long>(strict.events), strict.wall_ms,
        static_cast<unsigned long long>(strict.allocs),
        strict.ok ? "OK" : "FAIL: steady state must not allocate");
    return strict.ok ? 0 : 1;
  }

  std::printf("perf_hotpath: event hot-path benchmark (%s)\n",
              quick ? "quick" : "standard");

  const MicroResult micro = run_micro(micro_events);
  std::printf(
      "  micro: %llu events in %.1f ms — %.2f M events/sec, %.3f allocs/event\n",
      static_cast<unsigned long long>(micro.events), micro.wall_ms,
      micro.events_per_sec / 1e6, micro.allocs_per_event);

  // Best of `repeats` identical trials (see the header comment): the run is
  // deterministic, so the fastest repetition carries the least machine noise.
  SimResult sim;
  for (int rep = 0; rep < repeats; ++rep) {
    const SimResult one = run_sim(quick, seed, shards, workers);
    if (!one.ok) return 1;
    if (rep > 0 && (one.events != sim.events || one.packets != sim.packets)) {
      std::fprintf(stderr,
                   "perf_hotpath: nondeterministic trial (rep %d: %llu events, "
                   "%lld packets vs %llu, %lld)\n",
                   rep, static_cast<unsigned long long>(one.events),
                   static_cast<long long>(one.packets),
                   static_cast<unsigned long long>(sim.events),
                   static_cast<long long>(sim.packets));
      return 1;
    }
    if (rep == 0 || one.wall_ms < sim.wall_ms) sim = one;
  }
  std::printf(
      "  sim:   %llu events, %lld packets in %.1f ms (best of %d) — %.2f M "
      "events/sec, %.2f M packets/sec, %.3f allocs/event (%.3f post-warmup)\n",
      static_cast<unsigned long long>(sim.events),
      static_cast<long long>(sim.packets), sim.wall_ms, repeats,
      sim.events_per_sec / 1e6, sim.packets_per_sec / 1e6,
      sim.allocs_per_event, sim.steady_allocs_per_event);

  // Per-event-kind breakdown: re-run the same trial with a profile attached.
  // Clock overhead makes this run slower, so only shares are reported. The
  // profiled rerun is always serial: EventProfile attachment is unsupported
  // under sharded execution (it would need cross-thread aggregation).
  net::EventProfile prof;
  const SimResult profiled = run_sim(quick, seed, 0, 0, &prof);
  if (!profiled.ok) return 1;
  const auto total_wall = static_cast<double>(prof.total_wall_ns());
  std::printf("  breakdown (event kinds, profiled re-run):\n");
  for (int k = 0; k < net::kNumEventKinds; ++k) {
    if (prof.count[k] == 0) continue;
    std::printf("    %-10s %9lld events  %5.1f%% of event wall time\n",
                net::event_kind_name(k), static_cast<long long>(prof.count[k]),
                total_wall > 0.0
                    ? 100.0 * static_cast<double>(prof.wall_ns[k]) / total_wall
                    : 0.0);
  }

  // Shard/worker scaling sweep: the same trial on the serial engine (first
  // row) and on the sharded substrate over a (shards x workers) grid. Every
  // sharded row must agree with every other exactly — byte-identity across
  // BOTH shard counts and worker counts is the substrate's determinism
  // contract; the serial row follows a different but equally valid event
  // order, so its totals may differ slightly. Wall-clock gains require as
  // many hardware cores as workers — hw_threads plus requested AND effective
  // workers are recorded per row, so an oversubscribed 1-core runner's flat
  // curve reads as what it is.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  // Speedup-gate outcome, recorded explicitly in the JSON: the gate "skips"
  // (rather than passing) when it was requested but could not be judged —
  // no sweep, or too few hardware threads for the widest row. --strict-gate
  // turns a skip into a failure, deferred until after the JSON is written
  // so the artifact still records gate_skipped for the run that failed.
  bool gate_skipped = min_speedup > 0.0 && !shard_scaling;
  struct ScaleRow {
    int shards = 0;
    int workers_req = 0;  ///< 0 only for the serial row
    SimResult r;
  };
  std::vector<ScaleRow> scaling;
  if (shard_scaling) {
    const int scale_reps = quick ? 1 : 2;
    std::printf("  shard/worker scaling (%u hardware threads, best of %d):\n",
                hw_threads, scale_reps);
    constexpr std::pair<int, int> kGrid[] = {
        {0, 0}, {1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2},
        {4, 4}, {8, 1}, {8, 2}, {8, 4}, {8, 8}};
    for (const auto& [s, w] : kGrid) {
      SimResult best;
      for (int rep = 0; rep < scale_reps; ++rep) {
        const SimResult one = run_sim(quick, seed, s, w);
        if (!one.ok) return 1;
        if (rep == 0 || one.wall_ms < best.wall_ms) best = one;
      }
      scaling.push_back(ScaleRow{s, w, best});
      const auto& se = best.shard_exec;
      const bench::EventRange ev = bench::event_range(se.shard_events);
      if (s == 0) {
        std::printf("    serial         %7.1f ms  %.2f M events/sec\n",
                    best.wall_ms, best.events_per_sec / 1e6);
      } else {
        std::printf(
            "    %dsh x %dw%s  %7.1f ms  %.2f M events/sec  (%.2fx vs "
            "serial, %d worker%s effective, %llu windows / %llu merges / "
            "%llu fused, %llu mail (%llu folded), barrier %.1f ms, coord "
            "%.1f ms, shard events %llu..%llu, imbalance %.2fx)\n",
            s, w, s < 10 && w < 10 ? "     " : "    ", best.wall_ms,
            best.events_per_sec / 1e6,
            scaling.front().r.wall_ms > 0.0
                ? scaling.front().r.wall_ms / best.wall_ms
                : 0.0,
            se.workers, se.workers == 1 ? "" : "s",
            static_cast<unsigned long long>(se.windows),
            static_cast<unsigned long long>(se.merges),
            static_cast<unsigned long long>(se.windows_fused),
            static_cast<unsigned long long>(se.mail_records),
            static_cast<unsigned long long>(se.mail_compacted),
            static_cast<double>(se.barrier_wait_ns) / 1e6,
            static_cast<double>(se.coord_ns) / 1e6,
            static_cast<unsigned long long>(ev.min),
            static_cast<unsigned long long>(ev.max), se.shard_imbalance());
      }
    }
    // Worker-honesty gate: an explicit worker request is clamped by the
    // shard count only, never silently by the host — a row that ran with
    // fewer effective workers than min(requested, shards) is a bug.
    for (const ScaleRow& row : scaling) {
      if (row.shards == 0) continue;
      const int expect = std::min(row.workers_req, row.shards);
      if (row.r.shard_exec.workers != expect) {
        std::fprintf(stderr,
                     "perf_hotpath: worker dishonesty (%d shards: requested "
                     "%d workers, expected %d effective, got %d)\n",
                     row.shards, row.workers_req, expect,
                     row.r.shard_exec.workers);
        return 1;
      }
    }
    // Cross-row determinism gate: every sharded row — any shard count, any
    // worker count — is the same simulation.
    for (std::size_t i = 2; i < scaling.size(); ++i) {
      if (scaling[i].r.events != scaling[1].r.events ||
          scaling[i].r.packets != scaling[1].r.packets) {
        std::fprintf(
            stderr,
            "perf_hotpath: shard/worker nondeterminism (%d shards x %d "
            "workers: %llu events, %lld packets vs %llu, %lld at 1 shard)\n",
            scaling[i].shards, scaling[i].workers_req,
            static_cast<unsigned long long>(scaling[i].r.events),
            static_cast<long long>(scaling[i].r.packets),
            static_cast<unsigned long long>(scaling[1].r.events),
            static_cast<long long>(scaling[1].r.packets));
        return 1;
      }
    }
    // Speedup gate (--min-speedup): judged on the widest row of the sweep.
    if (min_speedup > 0.0) {
      const ScaleRow& widest = scaling.back();
      const double sp = widest.r.wall_ms > 0.0
                            ? scaling.front().r.wall_ms / widest.r.wall_ms
                            : 0.0;
      if (hw_threads < static_cast<unsigned>(widest.workers_req)) {
        gate_skipped = true;
        std::printf(
            "  speedup gate SKIPPED: host has %u hardware threads, the %d "
            "shards x %d workers row needs %d to be meaningful (measured "
            "%.2fx, threshold %.2fx not enforced)\n",
            hw_threads, widest.shards, widest.workers_req, widest.workers_req,
            sp, min_speedup);
      } else if (sp < min_speedup) {
        std::fprintf(stderr,
                     "perf_hotpath: speedup gate FAILED: %d shards x %d "
                     "workers reached %.2fx vs serial, threshold %.2fx "
                     "(%u hardware threads)\n",
                     widest.shards, widest.workers_req, sp, min_speedup,
                     hw_threads);
        return 1;
      } else {
        std::printf(
            "  speedup gate OK: %d shards x %d workers at %.2fx vs serial "
            "(threshold %.2fx)\n",
            widest.shards, widest.workers_req, sp, min_speedup);
      }
    }
    // Imbalance gate (--strict-gate): the widest row's shard-event spread
    // is a pure function of the scenario and the load-aware partition —
    // no hardware-thread dependence, so it never self-skips.
    if (strict_gate && max_imbalance > 0.0) {
      const double imb = scaling.back().r.shard_exec.shard_imbalance();
      if (imb > max_imbalance) {
        std::fprintf(stderr,
                     "perf_hotpath: imbalance gate FAILED: %d-shard row at "
                     "%.2fx max/mean shard events, threshold %.2fx — the "
                     "load-aware partition is not balancing this scenario\n",
                     scaling.back().shards, imb, max_imbalance);
        return 1;
      }
      std::printf("  imbalance gate OK: %d-shard row at %.2fx max/mean "
                  "(threshold %.2fx)\n",
                  scaling.back().shards, imb, max_imbalance);
    }
  }

  const double micro_speedup =
      kBaseline.micro_events_per_sec > 0.0
          ? micro.events_per_sec / kBaseline.micro_events_per_sec
          : 0.0;
  const double sim_speedup = kBaseline.sim_events_per_sec > 0.0
                                 ? sim.events_per_sec /
                                       kBaseline.sim_events_per_sec
                                 : 0.0;
  const double sim_speedup_pr2 =
      kPr2.sim_events_per_sec > 0.0
          ? sim.events_per_sec / kPr2.sim_events_per_sec
          : 0.0;
  std::printf(
      "  speedup vs pre-rework baseline: micro %.2fx, sim %.2fx; vs PR2: sim "
      "%.2fx\n",
      micro_speedup, sim_speedup, sim_speedup_pr2);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_hotpath: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_hotpath\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"sim_repeats\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"micro\": {\n"
               "    \"events\": %llu,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"allocs_per_event\": %.4f\n"
               "  },\n"
               "  \"sim\": {\n"
               "    \"events\": %llu,\n"
               "    \"packets\": %lld,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"packets_per_sec\": %.1f,\n"
               "    \"allocs_per_event\": %.4f,\n"
               "    \"steady_allocs_per_event\": %.4f,\n"
               "    \"sim_runtime_ms\": %.6f\n"
               "  },\n",
               quick ? "quick" : "standard", repeats,
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(micro.events), micro.wall_ms,
               micro.events_per_sec, micro.allocs_per_event,
               static_cast<unsigned long long>(sim.events),
               static_cast<long long>(sim.packets), sim.wall_ms,
               sim.events_per_sec, sim.packets_per_sec, sim.allocs_per_event,
               sim.steady_allocs_per_event, sim.runtime_ms);
  std::fprintf(f, "  \"breakdown\": [\n");
  bool first = true;
  for (int k = 0; k < net::kNumEventKinds; ++k) {
    if (prof.count[k] == 0) continue;
    std::fprintf(
        f,
        "%s    {\"kind\": \"%s\", \"count\": %lld, \"wall_share\": %.4f}",
        first ? "" : ",\n", net::event_kind_name(k),
        static_cast<long long>(prof.count[k]),
        total_wall > 0.0 ? static_cast<double>(prof.wall_ns[k]) / total_wall
                         : 0.0);
    first = false;
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n", hw_threads);
  std::fprintf(f, "  \"min_speedup\": %.3f,\n", min_speedup);
  std::fprintf(f, "  \"max_imbalance\": %.3f,\n", max_imbalance);
  std::fprintf(f, "  \"gate_skipped\": %s,\n", gate_skipped ? "true" : "false");
  std::fprintf(f, "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& row = scaling[i];
    const auto& se = row.r.shard_exec;
    std::fprintf(
        f,
        "    {\"shards\": %d, \"workers_requested\": %d, \"workers\": %d, "
        "\"wall_ms\": %.3f, "
        "\"events\": %llu, \"packets\": %lld, \"events_per_sec\": %.1f, "
        "\"speedup_vs_serial\": %.3f, \"lookahead_ns\": %lld, "
        "\"windows\": %llu, \"merges\": %llu, \"windows_fused\": %llu, "
        "\"mail_posted\": %llu, "
        "\"mail_records\": %llu, \"mail_compacted\": %llu, "
        "\"barrier_wait_ms\": %.3f, \"coord_ms\": %.3f, "
        "\"shard_imbalance\": %.4f, \"shard_events\": [",
        row.shards, row.workers_req, se.workers, row.r.wall_ms,
        static_cast<unsigned long long>(row.r.events),
        static_cast<long long>(row.r.packets), row.r.events_per_sec,
        row.r.wall_ms > 0.0 ? scaling.front().r.wall_ms / row.r.wall_ms : 0.0,
        static_cast<long long>(se.lookahead),
        static_cast<unsigned long long>(se.windows),
        static_cast<unsigned long long>(se.merges),
        static_cast<unsigned long long>(se.windows_fused),
        static_cast<unsigned long long>(se.mail_posted),
        static_cast<unsigned long long>(se.mail_records),
        static_cast<unsigned long long>(se.mail_compacted),
        static_cast<double>(se.barrier_wait_ns) / 1e6,
        static_cast<double>(se.coord_ns) / 1e6, se.shard_imbalance());
    for (std::size_t s = 0; s < se.shard_events.size(); ++s)
      std::fprintf(f, "%s%llu", s == 0 ? "" : ", ",
                   static_cast<unsigned long long>(se.shard_events[s]));
    std::fprintf(f, "], \"executor_busy_ms\": [");
    for (std::size_t e = 0; e < se.executor_busy_ns.size(); ++e)
      std::fprintf(f, "%s%.3f", e == 0 ? "" : ", ",
                   static_cast<double>(se.executor_busy_ns[e]) / 1e6);
    std::fprintf(f, "], \"executor_wait_ms\": [");
    for (std::size_t e = 0; e < se.executor_wait_ns.size(); ++e)
      std::fprintf(f, "%s%.3f", e == 0 ? "" : ", ",
                   static_cast<double>(se.executor_wait_ns[e]) / 1e6);
    std::fprintf(f, "]}%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"baseline\": {\n"
               "    \"recorded\": \"pre-rework seed (std::function event queue, "
               "per-packet topo lookups), Release -O2\",\n"
               "    \"micro_events_per_sec\": %.1f,\n"
               "    \"micro_allocs_per_event\": %.4f,\n"
               "    \"sim_events_per_sec\": %.1f,\n"
               "    \"sim_packets_per_sec\": %.1f,\n"
               "    \"sim_allocs_per_event\": %.4f\n"
               "  },\n"
               "  \"baseline_pr2\": {\n"
               "    \"recorded\": \"PR 2 committed numbers (event pool + "
               "routing cache, commit 6e0ff97), Release -O2\",\n"
               "    \"micro_events_per_sec\": %.1f,\n"
               "    \"micro_allocs_per_event\": %.4f,\n"
               "    \"sim_events_per_sec\": %.1f,\n"
               "    \"sim_packets_per_sec\": %.1f,\n"
               "    \"sim_allocs_per_event\": %.4f\n"
               "  },\n"
               "  \"speedup\": {\n"
               "    \"micro_events_per_sec\": %.3f,\n"
               "    \"sim_events_per_sec\": %.3f,\n"
               "    \"sim_events_per_sec_vs_pr2\": %.3f\n"
               "  }\n"
               "}\n",
               kBaseline.micro_events_per_sec,
               kBaseline.micro_allocs_per_event, kBaseline.sim_events_per_sec,
               kBaseline.sim_packets_per_sec, kBaseline.sim_allocs_per_event,
               kPr2.micro_events_per_sec, kPr2.micro_allocs_per_event,
               kPr2.sim_events_per_sec, kPr2.sim_packets_per_sec,
               kPr2.sim_allocs_per_event, micro_speedup, sim_speedup,
               sim_speedup_pr2);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  if (gate_skipped && strict_gate) {
    std::fprintf(stderr,
                 "perf_hotpath: --strict-gate: the speedup gate was skipped "
                 "(%u hardware threads cannot exercise the widest sweep row) "
                 "— failing instead of silently passing\n",
                 hw_threads);
    return 1;
  }
  return 0;
}
