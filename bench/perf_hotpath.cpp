// Hot-path performance harness: measures the discrete-event engine and the
// full simulation stack, and emits BENCH_hotpath.json so every PR reports a
// perf trajectory.
//
// Three measurements:
//  * micro  — a self-rescheduling event-chain microbenchmark whose capture
//    payloads match what net::Network actually schedules (this + a handful
//    of node/packet/router/port ids). Isolates EventQueue push/pop/invoke.
//  * sim    — one production trial on the scaled Theta system: end-to-end
//    engine events/sec and delivered packets/sec.
//  * allocs — heap allocations per event, via the counting operator new
//    defined in this translation unit (instruments the whole binary).
//
// The JSON carries the pre-rework baseline (recorded on the dev machine at
// the seed of this PR, commit 6be3374, Release -O2) so the current build's
// speedup is computed and archived alongside the raw numbers.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "topo/config.hpp"

// --- counting allocator (whole binary) -------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dfsim {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// --- micro: event-chain scheduling ----------------------------------------

// Each chain event re-schedules itself with the capture shape of
// Network::try_transmit's arrival closure (one pointer + five 32-bit ids,
// 28 payload bytes — too big for libstdc++'s 16-byte std::function SBO, so
// the pre-rework queue heap-allocated every single one).
struct MicroCtx {
  sim::Engine eng;
  std::uint64_t remaining = 0;
};

void chain_hop(MicroCtx& ctx, std::int32_t r, std::int32_t p, std::int32_t vc,
               std::int32_t flits, std::int32_t pid) {
  if (ctx.remaining == 0) return;
  --ctx.remaining;
  ctx.eng.schedule(1, [&ctx, r, p, vc, flits, pid] {
    chain_hop(ctx, r, p, vc, flits, pid);
  });
}

struct MicroResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

MicroResult run_micro(std::uint64_t events) {
  constexpr int kChains = 64;  // ~typical number of simultaneously busy ports
  MicroResult out;
  MicroCtx ctx;
  // Warmup lap: populate pools and the heap's capacity.
  ctx.remaining = events / 8;
  for (int c = 0; c < kChains; ++c)
    chain_hop(ctx, c, c + 1, c % 6, 9, 1000 + c);
  ctx.eng.run();
  // Measured lap.
  ctx.remaining = events;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t e0 = ctx.eng.events_executed();
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kChains; ++c)
    chain_hop(ctx, c, c + 1, c % 6, 9, 1000 + c);
  ctx.eng.run();
  out.wall_ms = ms_since(t0);
  out.events = ctx.eng.events_executed() - e0;
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  out.events_per_sec =
      out.wall_ms > 0.0 ? 1000.0 * static_cast<double>(out.events) / out.wall_ms
                        : 0.0;
  out.allocs_per_event = out.events > 0 ? static_cast<double>(allocs) /
                                              static_cast<double>(out.events)
                                        : 0.0;
  return out;
}

// --- sim: end-to-end production trial -------------------------------------

struct SimResult {
  std::uint64_t events = 0;
  std::int64_t packets = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double packets_per_sec = 0.0;
  double allocs_per_event = 0.0;
  double runtime_ms = 0.0;  ///< simulated app runtime (sanity anchor)
  bool ok = false;
};

SimResult run_sim(bool quick, std::uint64_t seed) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::theta_scaled();
  cfg.system.packet_payload_bytes = 4096;  // bench-grade packets (see bench/common.hpp)
  cfg.system.buffer_flits = 2048;
  cfg.app = "MILC";
  cfg.nnodes = quick ? 32 : 128;
  cfg.params.iterations = quick ? 1 : 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = quick ? 0.1 : 0.3;
  cfg.seed = seed;

  SimResult out;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunResult r = core::run_production(cfg);
  out.wall_ms = ms_since(t0);
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  out.ok = r.ok;
  if (!r.ok) {
    std::fprintf(stderr, "perf_hotpath: sim trial failed: %s\n",
                 r.fail_reason.c_str());
    return out;
  }
  out.events = r.events_executed;
  out.packets = r.netstats.packets_delivered;
  out.runtime_ms = r.runtime_ms;
  out.events_per_sec =
      out.wall_ms > 0.0 ? 1000.0 * static_cast<double>(out.events) / out.wall_ms
                        : 0.0;
  out.packets_per_sec = out.wall_ms > 0.0
                            ? 1000.0 * static_cast<double>(out.packets) /
                                  out.wall_ms
                            : 0.0;
  out.allocs_per_event = out.events > 0 ? static_cast<double>(allocs) /
                                              static_cast<double>(out.events)
                                        : 0.0;
  return out;
}

// --- baseline (pre-rework seed, commit 6be3374, Release -O2, dev machine) --

struct Baseline {
  double micro_events_per_sec;
  double micro_allocs_per_event;
  double sim_events_per_sec;
  double sim_packets_per_sec;
  double sim_allocs_per_event;
};

// Recorded by running this same harness against the seed tree before the
// event-pool / routing-cache rework (std::function event queue, per-packet
// topo lookups). Used to compute the archived speedup factors below.
constexpr Baseline kBaseline{
    11.3e6,  // micro events/sec
    1.0,     // micro allocs/event (one heap closure per event)
    2.8e6,   // sim events/sec
    0.25e6,  // sim packets/sec
    1.087,   // sim allocs/event
};

}  // namespace
}  // namespace dfsim

int main(int argc, char** argv) {
  using namespace dfsim;
  bool quick = false;
  std::uint64_t micro_events = 20'000'000;
  std::uint64_t seed = 2021;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
      micro_events = 2'000'000;
    } else if (a.rfind("--micro-events=", 0) == 0) {
      micro_events = std::strtoull(a.c_str() + 15, nullptr, 10);
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: perf_hotpath [--quick] [--micro-events=N] [--seed=S] "
          "[--out=FILE]\n");
      return 0;
    }
  }

  std::printf("perf_hotpath: event hot-path benchmark (%s)\n",
              quick ? "quick" : "standard");

  const MicroResult micro = run_micro(micro_events);
  std::printf(
      "  micro: %llu events in %.1f ms — %.2f M events/sec, %.3f allocs/event\n",
      static_cast<unsigned long long>(micro.events), micro.wall_ms,
      micro.events_per_sec / 1e6, micro.allocs_per_event);

  const SimResult sim = run_sim(quick, seed);
  if (!sim.ok) return 1;
  std::printf(
      "  sim:   %llu events, %lld packets in %.1f ms — %.2f M events/sec, "
      "%.2f M packets/sec, %.3f allocs/event\n",
      static_cast<unsigned long long>(sim.events),
      static_cast<long long>(sim.packets), sim.wall_ms,
      sim.events_per_sec / 1e6, sim.packets_per_sec / 1e6,
      sim.allocs_per_event);

  const double micro_speedup =
      kBaseline.micro_events_per_sec > 0.0
          ? micro.events_per_sec / kBaseline.micro_events_per_sec
          : 0.0;
  const double sim_speedup = kBaseline.sim_events_per_sec > 0.0
                                 ? sim.events_per_sec /
                                       kBaseline.sim_events_per_sec
                                 : 0.0;
  std::printf("  speedup vs pre-rework baseline: micro %.2fx, sim %.2fx\n",
              micro_speedup, sim_speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_hotpath: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_hotpath\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"seed\": %llu,\n"
               "  \"micro\": {\n"
               "    \"events\": %llu,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"allocs_per_event\": %.4f\n"
               "  },\n"
               "  \"sim\": {\n"
               "    \"events\": %llu,\n"
               "    \"packets\": %lld,\n"
               "    \"wall_ms\": %.3f,\n"
               "    \"events_per_sec\": %.1f,\n"
               "    \"packets_per_sec\": %.1f,\n"
               "    \"allocs_per_event\": %.4f,\n"
               "    \"sim_runtime_ms\": %.6f\n"
               "  },\n"
               "  \"baseline\": {\n"
               "    \"recorded\": \"pre-rework seed (std::function event queue, "
               "per-packet topo lookups), Release -O2\",\n"
               "    \"micro_events_per_sec\": %.1f,\n"
               "    \"micro_allocs_per_event\": %.4f,\n"
               "    \"sim_events_per_sec\": %.1f,\n"
               "    \"sim_packets_per_sec\": %.1f,\n"
               "    \"sim_allocs_per_event\": %.4f\n"
               "  },\n"
               "  \"speedup\": {\n"
               "    \"micro_events_per_sec\": %.3f,\n"
               "    \"sim_events_per_sec\": %.3f\n"
               "  }\n"
               "}\n",
               quick ? "quick" : "standard",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(micro.events), micro.wall_ms,
               micro.events_per_sec, micro.allocs_per_event,
               static_cast<unsigned long long>(sim.events),
               static_cast<long long>(sim.packets), sim.wall_ms,
               sim.events_per_sec, sim.packets_per_sec, sim.allocs_per_event,
               sim.runtime_ms, kBaseline.micro_events_per_sec,
               kBaseline.micro_allocs_per_event, kBaseline.sim_events_per_sec,
               kBaseline.sim_packets_per_sec, kBaseline.sim_allocs_per_event,
               micro_speedup, sim_speedup);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
