// Extension — ablations of the simulator's load-bearing design choices
// (DESIGN.md Section 4/5): router buffer depth, group-pair cable count
// (bisection-to-injection ratio), and Valiant availability. Each ablation
// reruns the AD0-vs-AD3 MILC comparison so the sensitivity of the paper's
// headline result to the modeling choice is visible.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace dfsim;

struct Cell {
  double ad0 = 0.0, ad3 = 0.0;
};

Cell run_pair(const bench::Options& opt, topo::Config sys,
              const std::string& app) {
  Cell c;
  for (const routing::Mode mode : {routing::Mode::kAd0, routing::Mode::kAd3}) {
    core::ProductionConfig cfg;
    cfg.system = sys;
    cfg.app = app;
    cfg.nnodes = 256;
    cfg.mode = mode;
    cfg.params = opt.params_for(app);
    cfg.bg_utilization = opt.bg;
    cfg.seed = opt.seed;
    const auto rs = core::run_production_batch(cfg, std::max(3, opt.samples / 2));
    const auto s = stats::summarize([&] {
      std::vector<double> xs;
      for (const auto& r : rs)
        if (r.ok) xs.push_back(r.runtime_ms);
      return xs;
    }());
    (mode == routing::Mode::kAd0 ? c.ad0 : c.ad3) = s.mean;
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension", "Design-choice ablations (MILC, AD0 vs AD3)");

  stats::Table t({"Ablation", "AD0 (ms)", "AD3 (ms)", "AD3 gain"});
  auto row = [&](const char* name, topo::Config sys, const std::string& app) {
    const Cell c = run_pair(opt, std::move(sys), app);
    t.add_row({name, stats::fmt(c.ad0, 3), stats::fmt(c.ad3, 3),
               stats::fmt_signed(stats::improvement_pct(c.ad0, c.ad3), 1) + "%"});
  };

  const topo::Config base = opt.theta();

  row("baseline (buffer 2048)", base, "MILC");

  topo::Config shallow = base;
  shallow.buffer_flits = 512;  // 2 packets deep: little queueing to adapt to
  row("shallow buffers (512)", shallow, "MILC");

  topo::Config deep = base;
  deep.buffer_flits = 8192;
  row("deep buffers (8192)", deep, "MILC");

  topo::Config thin = base;
  thin.cables_per_group_pair = 1;  // Cori-like bisection starvation
  row("thin global links (1 cable/pair)", thin, "MILC");

  topo::Config fat = base;
  fat.cables_per_group_pair = 6;
  row("fat global links (6 cables/pair)", fat, "MILC");

  row("HACC baseline (bisection-bound)", base, "HACC");
  row("HACC thin global links", thin, "HACC");

  t.print(std::cout);
  std::printf(
      "\nReading: the AD3 advantage for latency-bound traffic should persist "
      "across buffer depths and grow as global links thin (Cori, Fig. 4); "
      "HACC's preference should tilt toward AD0 as bisection tightens.\n");
  bench::footnote(opt, opt.theta());
  return 0;
}
