// Unit/integration tests: packet forwarding, flow control, counters, ORB.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::net {
namespace {

struct Fixture {
  explicit Fixture(topo::Config cfg = topo::Config::mini(4))
      : topo(std::move(cfg)), net(engine, topo, 42) {}
  sim::Engine engine;
  topo::Dragonfly topo;
  Network net;
};

TEST(Network, DeliversSingleMessage) {
  Fixture f;
  bool delivered = false;
  f.net.send_message(0, f.topo.config().num_nodes() - 1, 4096,
                     routing::Mode::kAd0, [&] { delivered = true; });
  f.engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(f.net.stats().packets_injected, 0);
}

TEST(Network, LoopbackDelivers) {
  Fixture f;
  bool delivered = false;
  f.net.send_message(5, 5, 1024, routing::Mode::kAd0, [&] { delivered = true; });
  f.engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.net.stats().packets_injected, 0);  // loopback skips the wire
}

TEST(Network, RejectsBadEndpoints) {
  Fixture f;
  EXPECT_THROW(f.net.send_message(-1, 0, 10, routing::Mode::kAd0, {}),
               std::invalid_argument);
  EXPECT_THROW(f.net.send_message(0, f.topo.config().num_nodes(), 10,
                                  routing::Mode::kAd0, {}),
               std::invalid_argument);
}

TEST(Network, SegmentsMessagesIntoPackets) {
  Fixture f;
  const auto payload = f.topo.config().packet_payload_bytes;
  f.net.send_message(0, 8, payload * 7 + 1, routing::Mode::kAd0, {});
  f.engine.run();
  // 8 request packets (7 full + 1 runt) + 8 responses.
  EXPECT_EQ(f.net.stats().packets_injected, 16);
  EXPECT_EQ(f.net.stats().packets_delivered, 16);
}

TEST(Network, DrainsCompletely) {
  Fixture f;
  int done = 0;
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto a =
        static_cast<topo::NodeId>(rng.uniform_u64(f.topo.config().num_nodes()));
    const auto b =
        static_cast<topo::NodeId>(rng.uniform_u64(f.topo.config().num_nodes()));
    f.net.send_message(a, b, 2048 + static_cast<std::int64_t>(rng.uniform_u64(8192)),
                       routing::Mode::kAd0, [&] { ++done; });
  }
  f.engine.run();
  EXPECT_EQ(done, 200);
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

TEST(Network, LatencyScalesWithDistance) {
  // Same-router NIC pair vs cross-group pair.
  Fixture f;
  sim::Tick t_near = 0, t_far = 0;
  f.net.send_message(0, 1, 64, routing::Mode::kAd0,
                     [&] { t_near = f.engine.now(); });
  f.engine.run();
  const sim::Tick start2 = f.engine.now();
  f.net.send_message(0, f.topo.config().num_nodes() - 1, 64,
                     routing::Mode::kAd0, [&] { t_far = f.engine.now(); });
  f.engine.run();
  EXPECT_GT(t_far - start2, t_near);
}

TEST(Network, CountsFlitsByTileClass) {
  Fixture f;
  // Cross-group message must cross a rank-3 link and eject at a proc tile.
  const topo::NodeId dst =
      static_cast<topo::NodeId>(f.topo.config().nodes_per_group() + 3);
  f.net.send_message(0, dst, 8192, routing::Mode::kAd0, {});
  f.engine.run();
  const CounterSnapshot s = f.net.snapshot_all();
  EXPECT_GT(s.rank3.flits, 0);
  EXPECT_GT(s.proc_req.flits, 0);
  EXPECT_GT(s.proc_rsp.flits, 0);  // per-packet responses
}

TEST(Network, OrbTracksRequestResponseLatency) {
  Fixture f;
  f.net.send_message(0, 40, 4096, routing::Mode::kAd0, {});
  f.engine.run();
  const auto& nic = f.net.nic(0);
  EXPECT_GT(nic.ctr.rsp_track_count, 0);
  EXPECT_GT(nic.ctr.mean_latency_ns(), 0.0);
  // Round trip must be at least twice the one-way serialization.
  EXPECT_GT(nic.ctr.mean_latency_ns(), 200.0);
}

TEST(Network, ResponsesCanBeDisabled) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.generate_responses = false;
  Fixture f(cfg);
  f.net.send_message(0, 40, 4096, routing::Mode::kAd0, {});
  f.engine.run();
  EXPECT_EQ(f.net.nic(0).ctr.rsp_track_count, 0);
  EXPECT_EQ(f.net.snapshot_all().proc_rsp.flits, 0);
}

TEST(Network, IncastCausesEndpointStalls) {
  Fixture f;
  // Many senders to one node: the ejection port and rx unit saturate.
  for (topo::NodeId src = 1; src < 32; ++src)
    f.net.send_message(src, 0, 64 * 1024, routing::Mode::kAd0, {});
  f.engine.run();
  const CounterSnapshot s = f.net.snapshot_all();
  EXPECT_GT(s.proc_req.stall_ns, 0);
}

TEST(Network, BackpressurePercolatesUnderOversubscription) {
  Fixture f;
  // Saturate the group 0 -> group 1 direct cables with many big flows.
  const int npg = f.topo.config().nodes_per_group();
  for (int i = 0; i < npg; ++i)
    f.net.send_message(static_cast<topo::NodeId>(i),
                       static_cast<topo::NodeId>(npg + i), 256 * 1024,
                       routing::Mode::kAd3, {});
  f.engine.run();
  const CounterSnapshot s = f.net.snapshot_all();
  // Strong minimal bias concentrates on the few rank-3 cables: stalls there
  // and on the upstream local tiles (paper Fig. 12 mechanism).
  EXPECT_GT(s.rank3.stall_ns, 0);
  EXPECT_GT(s.rank1.stall_ns + s.rank2.stall_ns, 0);
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

TEST(Network, Ad0SpreadsMoreThanAd3UnderHotspot) {
  // Same oversubscribed pattern under both modes: AD0 must take more
  // non-minimal routes and push more flits through rank-3 overall (extra
  // hops), the paper's core mechanism.
  auto run = [](routing::Mode mode) {
    Fixture f;
    const int npg = f.topo.config().nodes_per_group();
    for (int rep = 0; rep < 4; ++rep)
      for (int i = 0; i < npg; ++i)
        f.net.send_message(static_cast<topo::NodeId>(i),
                           static_cast<topo::NodeId>(npg + i), 64 * 1024, mode,
                           {});
    f.engine.run();
    return f.net.stats();
  };
  const NetworkStats s0 = run(routing::Mode::kAd0);
  const NetworkStats s3 = run(routing::Mode::kAd3);
  EXPECT_GT(s0.nonminimal_decisions, s3.nonminimal_decisions);
  EXPECT_GT(s0.total_hops, s3.total_hops);
}

TEST(Network, SnapshotDeltaIsMonotonic) {
  Fixture f;
  const topo::NodeId far = f.topo.config().num_nodes() - 2;
  f.net.send_message(0, far, 32 * 1024, routing::Mode::kAd0, {});
  f.engine.run();
  const CounterSnapshot a = f.net.snapshot_all();
  f.net.send_message(0, far, 32 * 1024, routing::Mode::kAd0, {});
  f.engine.run();
  const CounterSnapshot b = f.net.snapshot_all();
  const CounterSnapshot d = b.delta_since(a);
  EXPECT_GT(d.rank3.flits + d.rank1.flits + d.rank2.flits, 0);
  EXPECT_GE(d.proc_req.flits, 0);
  EXPECT_GE(d.rank1.stall_ns, 0);
}

TEST(Network, RouterSubsetSnapshotIsPartOfWhole) {
  Fixture f;
  sim::Rng rng(3);
  for (int i = 0; i < 50; ++i)
    f.net.send_message(
        static_cast<topo::NodeId>(rng.uniform_u64(f.topo.config().num_nodes())),
        static_cast<topo::NodeId>(rng.uniform_u64(f.topo.config().num_nodes())),
        8192, routing::Mode::kAd0, {});
  f.engine.run();
  std::vector<topo::RouterId> some{0, 1, 2};
  const CounterSnapshot part = f.net.snapshot_routers(some);
  const CounterSnapshot all = f.net.snapshot_all();
  EXPECT_LE(part.rank1.flits, all.rank1.flits);
  EXPECT_LE(part.rank3.flits, all.rank3.flits);
  EXPECT_LE(part.proc_req.flits, all.proc_req.flits);
}

TEST(Network, StallFlitRatioHelper) {
  ClassCounters c;
  c.flits = 100;
  c.stall_ns = 1600;
  // flit_time 1.6ns -> 1000 stall-flit-times / 100 flits = 10.
  EXPECT_NEAR(CounterSnapshot::stall_flit_ratio(c, 1.6), 10.0, 1e-9);
  ClassCounters zero;
  EXPECT_EQ(CounterSnapshot::stall_flit_ratio(zero, 1.6), 0.0);
}

TEST(Network, PerModeDecisionAccounting) {
  Fixture f;
  const topo::NodeId far = f.topo.config().num_nodes() - 1;
  for (int i = 0; i < 20; ++i) {
    f.net.send_message(0, far, 8192, routing::Mode::kAd0, {});
    f.net.send_message(1, far - 1, 8192, routing::Mode::kAd3, {});
  }
  f.engine.run();
  const auto& st = f.net.stats();
  const auto total_ad0 = st.decisions_by_mode[0][0] + st.decisions_by_mode[0][1];
  const auto total_ad3 = st.decisions_by_mode[3][0] + st.decisions_by_mode[3][1];
  EXPECT_GT(total_ad0, 0);
  EXPECT_GT(total_ad3, 0);
  EXPECT_EQ(total_ad0 + total_ad3,
            st.minimal_decisions + st.nonminimal_decisions);
  EXPECT_GE(f.net.stats().nonminimal_fraction(routing::Mode::kAd0), 0.0);
  EXPECT_LE(f.net.stats().nonminimal_fraction(routing::Mode::kAd3), 1.0);
  // Unused modes report zero cleanly.
  EXPECT_EQ(f.net.stats().nonminimal_fraction(routing::Mode::kAd1), 0.0);
}

TEST(Network, MessageRateLimitPacesSmallMessages) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.nic_msg_rate_mps = 1.0;  // 1 M msgs/s -> 1000 ns per packet
  Fixture f(cfg);
  sim::Tick done_at = 0;
  // 10 tiny messages, one packet each: pacing dominates.
  for (int i = 0; i < 10; ++i)
    f.net.send_message(0, 1, 8, routing::Mode::kAd0,
                       [&] { done_at = f.engine.now(); });
  f.engine.run();
  // 10 packets at >= 1000 ns spacing: the last cannot finish before 9 us.
  EXPECT_GE(done_at, 9 * 1000);
}

}  // namespace
}  // namespace dfsim::net
