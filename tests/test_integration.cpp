// Integration: paper-shape properties on a scaled-down system.
//
// These check the *directions* the paper reports (Sections IV-V), not
// magnitudes: strong minimal bias helps latency-bound apps under congestion,
// concentrates load for bisection-bound apps, and reduces total hop work.
#include <gtest/gtest.h>

#include <numeric>

#include "core/experiment.hpp"
#include "stats/summary.hpp"

namespace dfsim::core {
namespace {

double mean_runtime(const std::string& app, routing::Mode mode, int samples,
                    double bg, std::uint64_t seed) {
  ProductionConfig cfg;
  cfg.system = topo::Config::mini(6);
  // PaperShape pins reproduce Aries measurements: the congestion regimes
  // they assert are calibrated on the dragonfly, so the topology is
  // explicit here instead of following DFSIM_TEST_TOPO.
  cfg.system.kind = topo::TopologyKind::kDragonfly;
  cfg.app = app;
  cfg.nnodes = 24;
  cfg.mode = mode;
  cfg.params.iterations = 3;
  cfg.params.msg_scale = 0.15;
  cfg.params.compute_scale = 0.15;
  cfg.bg_utilization = bg;
  cfg.warmup = 100 * sim::kMicrosecond;
  cfg.seed = seed;
  const auto rs = run_production_batch(cfg, samples);
  EXPECT_EQ(static_cast<int>(rs.size()), samples);
  double sum = 0.0;
  for (const auto& r : rs) sum += r.runtime_ms;
  return sum / static_cast<double>(rs.size());
}

TEST(PaperShape, MilcPrefersAd3UnderCongestion) {
  const double ad0 = mean_runtime("MILC", routing::Mode::kAd0, 5, 0.7, 101);
  const double ad3 = mean_runtime("MILC", routing::Mode::kAd3, 5, 0.7, 101);
  EXPECT_LT(ad3, ad0);
}

TEST(PaperShape, IsolatedRunsLessSensitiveToMode) {
  // On an idle machine every mode routes (almost) minimally: the gap
  // between AD0 and AD3 should be small relative to the congested gap.
  const double ad0 = mean_runtime("MILC", routing::Mode::kAd0, 3, 0.0, 77);
  const double ad3 = mean_runtime("MILC", routing::Mode::kAd3, 3, 0.0, 77);
  EXPECT_NEAR(ad0, ad3, 0.25 * ad0);
}

TEST(PaperShape, Ad3ReducesNonminimalFractionAndHops) {
  auto stats_for = [](routing::Mode mode) {
    ProductionConfig cfg;
    cfg.system = topo::Config::mini(6);
    cfg.system.kind = topo::TopologyKind::kDragonfly;
    cfg.app = "MILC";
    cfg.nnodes = 24;
    cfg.mode = mode;
    cfg.params.iterations = 3;
    cfg.params.msg_scale = 0.15;
    cfg.params.compute_scale = 0.15;
    cfg.bg_utilization = 0.0;  // only the app's own traffic
    cfg.seed = 33;
    const RunResult r = run_production(cfg);
    EXPECT_TRUE(r.ok);
    return r.netstats;
  };
  const auto s0 = stats_for(routing::Mode::kAd0);
  const auto s3 = stats_for(routing::Mode::kAd3);
  EXPECT_LE(s3.nonminimal_decisions, s0.nonminimal_decisions);
  // Fewer detours -> less total hop work for the same traffic.
  EXPECT_LE(s3.total_hops, s0.total_hops);
}

TEST(PaperShape, HaccDoesNotBenefitFromAd3) {
  // Bisection-bound: strong minimal bias concentrates rank-3 load
  // (paper Table II: HACC is the one app that regresses, Fig. 12).
  // Compact placement + heavy transposes saturate the few direct cables.
  auto mean_rt = [](routing::Mode mode) {
    ProductionConfig cfg;
    cfg.system = topo::Config::mini(6);
    cfg.system.kind = topo::TopologyKind::kDragonfly;
    cfg.app = "HACC";
    cfg.nnodes = 48;  // half the machine, compact: ~1.5 groups
    cfg.mode = mode;
    cfg.params.iterations = 2;
    cfg.params.msg_scale = 0.4;
    cfg.params.compute_scale = 0.05;
    cfg.placement = sched::Placement::kCompact;
    cfg.bg_utilization = 0.0;
    cfg.seed = 55;
    const auto rs = run_production_batch(cfg, 4);
    EXPECT_EQ(rs.size(), 4u);
    double sum = 0;
    for (const auto& r : rs) sum += r.runtime_ms;
    return sum / static_cast<double>(rs.size());
  };
  const double ad0 = mean_rt(routing::Mode::kAd0);
  const double ad3 = mean_rt(routing::Mode::kAd3);
  EXPECT_GE(ad3, 0.97 * ad0);  // at minimum: no meaningful AD3 win
}

TEST(PaperShape, Ad3ConcentratesRank3StallsForHacc) {
  auto peak_ratio = [](routing::Mode mode) {
    EnsembleConfig cfg;
    cfg.system = topo::Config::mini(6);
    cfg.system.kind = topo::TopologyKind::kDragonfly;
    cfg.app = "HACC";
    cfg.njobs = 4;
    cfg.nnodes = 24;
    cfg.mode = mode;
    cfg.params.iterations = 2;
    cfg.params.msg_scale = 0.15;
    cfg.params.compute_scale = 0.15;
    cfg.seed = 66;
    const EnsembleResult r = run_controlled(cfg);
    EXPECT_TRUE(r.ok);
    // Peak-to-mean stall concentration over rank-3 tiles (Fig. 12's
    // "localized peaks on the rank-3 tiles").
    std::int64_t peak = 0, sum = 0, n = 0;
    for (const auto& t : r.tiles) {
      if (t.cls != topo::TileClass::kRank3) continue;
      peak = std::max(peak, t.stall_ns);
      sum += t.stall_ns;
      ++n;
    }
    return n > 0 && sum > 0
               ? static_cast<double>(peak) * static_cast<double>(n) /
                     static_cast<double>(sum)
               : 0.0;
  };
  EXPECT_GT(peak_ratio(routing::Mode::kAd3),
            0.9 * peak_ratio(routing::Mode::kAd0));
}

TEST(PaperShape, ControlledEnsembleModesAreOrderedForMilc) {
  // Fig. 9: AD3 best mean; AD0 worst among the four, on a loaded system.
  std::array<double, 4> means{};
  for (int m = 0; m < 4; ++m) {
    EnsembleConfig cfg;
    cfg.system = topo::Config::mini(6);
    cfg.system.kind = topo::TopologyKind::kDragonfly;
    cfg.app = "MILC";
    cfg.njobs = 6;
    cfg.nnodes = 24;
    cfg.mode = static_cast<routing::Mode>(m);
    cfg.params.iterations = 2;
    cfg.params.msg_scale = 0.2;
    cfg.params.compute_scale = 0.2;
    cfg.seed = 88;
    const EnsembleResult r = run_controlled(cfg);
    ASSERT_TRUE(r.ok);
    means[static_cast<std::size_t>(m)] =
        std::accumulate(r.runtimes_ms.begin(), r.runtimes_ms.end(), 0.0) /
        static_cast<double>(r.runtimes_ms.size());
  }
  EXPECT_LT(means[3], means[0]);  // AD3 beats AD0 (the headline claim)
}

TEST(PaperShape, OrbLatencyLowerUnderAd3OnLoadedSystem) {
  // Fig. 14 direction: system under AD3 shows lower mean packet-pair
  // latency than under AD0 for the same workload.
  auto mean_lat = [](routing::Mode mode) {
    EnsembleConfig cfg;
    cfg.system = topo::Config::mini(6);
    cfg.system.kind = topo::TopologyKind::kDragonfly;
    cfg.app = "MILC";
    cfg.njobs = 6;
    cfg.nnodes = 24;
    cfg.mode = mode;
    cfg.params.iterations = 2;
    cfg.params.msg_scale = 0.2;
    cfg.params.compute_scale = 0.2;
    cfg.seed = 99;
    const EnsembleResult r = run_controlled(cfg);
    EXPECT_TRUE(r.ok);
    return r.total.nic_rsp_track_count > 0
               ? static_cast<double>(r.total.nic_rsp_time_sum_ns) /
                     static_cast<double>(r.total.nic_rsp_track_count)
               : 0.0;
  };
  EXPECT_LT(mean_lat(routing::Mode::kAd3), mean_lat(routing::Mode::kAd0));
}

}  // namespace
}  // namespace dfsim::core
