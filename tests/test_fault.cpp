// Fault-injection & graceful-degradation contracts (dfsim::fault +
// net::Network fault machinery):
//
//  * FaultPlan::random is a pure function of (system, spec) — same inputs,
//    same plan; canonical() ordering is insertion-order independent.
//  * Reroute correctness: with links/routers failed, NO packet is ever
//    committed onto a dead link (FaultStats::dead_link_transmissions is the
//    invariant counter), yet traffic still delivers around the damage.
//  * Retry-with-timeout: payload lost to a mid-run failure is re-injected
//    and the message completes; when no route ever comes back the payload is
//    written off after msg_max_retries and the completion callback STILL
//    fires (graceful degradation: senders never hang).
//  * Degraded-bandwidth accounting: the degraded_bw_gbs integral matches
//    bandwidth x factor x time, both directions.
//  * Determinism: under a fault plan, results are byte-identical run-to-run,
//    across --jobs worker counts, and across every shard count N >= 1.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/config.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

// --- plan generation --------------------------------------------------------

fault::RandomFaultSpec sample_spec() {
  fault::RandomFaultSpec spec;
  spec.seed = 99;
  spec.link_fail_fraction = 0.05;
  spec.link_degrade_fraction = 0.05;
  spec.router_failures = 1;
  spec.window_begin = 350 * sim::kMicrosecond;
  spec.window_end = 450 * sim::kMicrosecond;
  spec.repair_after = 200 * sim::kMicrosecond;
  return spec;
}

TEST(FaultPlan, RandomIsDeterministic) {
  const topo::Config sys = topo::Config::mini(4);
  const fault::RandomFaultSpec spec = sample_spec();
  const fault::FaultPlan a = fault::FaultPlan::random(sys, spec);
  const fault::FaultPlan b = fault::FaultPlan::random(sys, spec);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].router, b.events()[i].router);
    EXPECT_EQ(a.events()[i].port, b.events()[i].port);
    EXPECT_EQ(a.events()[i].factor, b.events()[i].factor);
  }
  // A different seed must move at least one fault somewhere else.
  fault::RandomFaultSpec spec2 = spec;
  spec2.seed = 100;
  const fault::FaultPlan c = fault::FaultPlan::random(sys, spec2);
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i)
    any_diff = a.events()[i].router != c.events()[i].router ||
               a.events()[i].port != c.events()[i].port;
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, CanonicalOrderIsInsertionIndependent) {
  fault::FaultPlan p1, p2;
  p1.fail_link(200, 3, 1).degrade_link(100, 5, 0, 0.5).repair(300, 3, 1);
  p2.repair(300, 3, 1).fail_link(200, 3, 1).degrade_link(100, 5, 0, 0.5);
  const auto a = p1.canonical();
  const auto b = p2.canonical();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
  EXPECT_LE(a[0].at, a[1].at);
  EXPECT_LE(a[1].at, a[2].at);
}

// --- reroute correctness ----------------------------------------------------

struct Fixture {
  explicit Fixture(topo::Config cfg = topo::Config::mini(4))
      : topo(std::move(cfg)), net(engine, topo, 42) {}
  sim::Engine engine;
  topo::Dragonfly topo;
  net::Network net;
};

TEST(FaultReroute, RoutesAroundFailedRank1Link) {
  Fixture f;
  // Kill the direct rank-1 link between routers 0 and 1 before any traffic.
  const topo::PortId p01 = f.topo.local_port_to(0, 1);
  ASSERT_GE(p01, 0);
  fault::FaultPlan plan;
  plan.fail_link(0, 0, p01);
  f.net.apply_fault_plan(plan);

  // Node 0 lives on router 0, node 2 on router 1 (2 nodes per router).
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    f.net.send_message(0, 2, 8192, routing::Mode::kAd0, [&] { ++done; });
    f.net.send_message(3, 1, 8192, routing::Mode::kAd3, [&] { ++done; });
  }
  f.engine.run();

  const fault::FaultStats st = f.net.fault_stats();
  EXPECT_EQ(done, 16) << "all messages must deliver around the dead link";
  EXPECT_EQ(st.dead_link_transmissions, 0);
  EXPECT_EQ(st.faults_applied, 1);
  EXPECT_GT(st.recomputes, 0);
  EXPECT_GT(st.packets_rerouted, 0)
      << "the minimal path was the failed link; deliveries must have been "
         "diverted";
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

TEST(FaultReroute, NoDeadLinkTraversalUnderRandomDamage) {
  Fixture f;
  fault::RandomFaultSpec spec;
  spec.seed = 7;
  spec.link_fail_fraction = 0.05;
  spec.router_failures = 1;
  const fault::FaultPlan plan = fault::FaultPlan::random(f.topo.config(), spec);
  ASSERT_FALSE(plan.empty());
  f.net.apply_fault_plan(plan);

  // Random all-to-all traffic over the damaged fabric. Every message must
  // terminate — delivered around the damage, or written off by the retry
  // cap — and nothing may ever be committed onto a dead link.
  int done = 0;
  constexpr int kMsgs = 300;
  sim::Rng rng(11);
  const auto nodes = static_cast<std::uint64_t>(f.topo.config().num_nodes());
  for (int i = 0; i < kMsgs; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    const auto b = static_cast<topo::NodeId>(rng.uniform_u64(nodes));
    f.net.send_message(a, b, 2048 + static_cast<std::int64_t>(rng.uniform_u64(4096)),
                       i % 2 ? routing::Mode::kAd3 : routing::Mode::kAd0,
                       [&] { ++done; });
  }
  f.engine.run();

  const fault::FaultStats st = f.net.fault_stats();
  EXPECT_EQ(done, kMsgs);
  EXPECT_EQ(st.dead_link_transmissions, 0);
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

// --- retry / graceful degradation -------------------------------------------

TEST(FaultRetry, LostPayloadIsRetriedAndDelivered) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.msg_retry_timeout = 10 * sim::kMicrosecond;
  Fixture f(cfg);
  // Fail the direct link mid-transfer: packets queued on (or in flight
  // over) it are dropped, the loss is noted on the message, and one retry
  // re-injects the lost payload, which then routes around the damage.
  const topo::PortId p01 = f.topo.local_port_to(0, 1);
  fault::FaultPlan plan;
  plan.fail_link(5 * sim::kMicrosecond, 0, p01);
  f.net.apply_fault_plan(plan);

  bool delivered = false;
  f.net.send_message(0, 2, 256 * 1024, routing::Mode::kAd0,
                     [&] { delivered = true; });
  f.engine.run();

  const fault::FaultStats st = f.net.fault_stats();
  EXPECT_TRUE(delivered);
  EXPECT_GT(st.packets_dropped, 0) << "the failure must have cost packets";
  EXPECT_GE(st.messages_retried, 1);
  EXPECT_EQ(st.messages_abandoned, 0);
  EXPECT_EQ(st.dead_link_transmissions, 0);
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

TEST(FaultRetry, AbandonsAfterMaxRetriesButStillCompletes) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.msg_retry_timeout = 10 * sim::kMicrosecond;
  cfg.msg_max_retries = 2;
  Fixture f(cfg);
  // Destination router dead before the send: every injection attempt and
  // every retry loses the payload again. After msg_max_retries the payload
  // is written off — and the completion callback must STILL fire, so the
  // sender (an app-layer coroutine in real runs) never hangs.
  const topo::RouterId dst_router = f.topo.router_of_node(2);
  fault::FaultPlan plan;
  plan.fail_router(0, dst_router);
  f.net.apply_fault_plan(plan);

  bool completed = false;
  const std::int64_t payload = 64 * 1024;
  f.net.send_message(0, 2, payload, routing::Mode::kAd0,
                     [&] { completed = true; });
  f.engine.run();

  const fault::FaultStats st = f.net.fault_stats();
  EXPECT_TRUE(completed) << "abandoned messages must still complete";
  EXPECT_EQ(st.messages_abandoned, 1);
  EXPECT_GT(st.bytes_abandoned, 0);
  EXPECT_LE(st.messages_retried, 2);
  EXPECT_EQ(st.dead_link_transmissions, 0);
  EXPECT_EQ(f.net.packets_in_flight(), 0);
}

// --- degraded-bandwidth accounting ------------------------------------------

TEST(FaultDegrade, BandwidthSecondsIntegralMatches) {
  Fixture f;
  const topo::PortId p01 = f.topo.local_port_to(0, 1);
  const double bw = f.topo.port(0, p01).bw_gbps;
  fault::FaultPlan plan;
  plan.degrade_link(0, 0, p01, 0.5);
  plan.repair(sim::kMillisecond, 0, p01);
  f.net.apply_fault_plan(plan);
  f.engine.run();

  const fault::FaultStats st = f.net.fault_stats();
  // Both directions lose half their bandwidth for 1 ms.
  EXPECT_NEAR(st.degraded_bw_gbs, 2.0 * bw * 0.5 * 1e-3, 1e-9);
  EXPECT_EQ(st.faults_applied, 1);
  EXPECT_EQ(st.repairs_applied, 1);
}

TEST(FaultDegrade, RepairRestoresPristineThroughput) {
  // A degraded-then-repaired network must finish a transfer exactly as fast
  // as a never-touched one once the repair has landed.
  topo::Config cfg = topo::Config::mini(2);
  sim::Tick t_clean = 0, t_repaired = 0;
  {
    Fixture f(cfg);
    f.net.send_message(0, 2, 64 * 1024, routing::Mode::kAd0,
                       [&] { t_clean = f.engine.now(); });
    f.engine.run();
  }
  {
    Fixture f(cfg);
    const topo::PortId p01 = f.topo.local_port_to(0, 1);
    fault::FaultPlan plan;
    plan.degrade_link(0, 0, p01, 0.25);
    plan.repair(10 * sim::kMicrosecond, 0, p01);
    f.net.apply_fault_plan(plan);
    // Run past the repair, then send the same transfer.
    f.engine.run();
    ASSERT_GE(f.engine.now(), 10 * sim::kMicrosecond);
    const sim::Tick start = f.engine.now();
    f.net.send_message(0, 2, 64 * 1024, routing::Mode::kAd0,
                       [&] { t_repaired = f.engine.now() - start; });
    f.engine.run();
  }
  EXPECT_EQ(t_clean, t_repaired);
}

// --- determinism under faults -----------------------------------------------

bool same_bytes(const net::CounterSnapshot& a, const net::CounterSnapshot& b) {
  return std::memcmp(&a, &b, sizeof(net::CounterSnapshot)) == 0;
}

void expect_same_faults(const fault::FaultStats& a, const fault::FaultStats& b) {
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_EQ(a.recomputes, b.recomputes);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_rerouted, b.packets_rerouted);
  EXPECT_EQ(a.messages_retried, b.messages_retried);
  EXPECT_EQ(a.messages_abandoned, b.messages_abandoned);
  EXPECT_EQ(a.bytes_abandoned, b.bytes_abandoned);
  EXPECT_EQ(a.dead_link_transmissions, b.dead_link_transmissions);
  EXPECT_EQ(a.degraded_bw_gbs, b.degraded_bw_gbs);
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_TRUE(a.ok) << a.fail_reason;
  ASSERT_TRUE(b.ok) << b.fail_reason;
  EXPECT_TRUE(same_bytes(a.global, b.global));
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
  EXPECT_EQ(a.netstats.packets_delivered, b.netstats.packets_delivered);
  EXPECT_EQ(a.netstats.total_hops, b.netstats.total_hops);
  EXPECT_EQ(a.runtime_ms, b.runtime_ms);
  expect_same_faults(a.faults, b.faults);
}

core::ScenarioConfig faulty_mini(std::uint64_t seed) {
  core::ScenarioConfig cfg = core::ScenarioConfig::production();
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.1;
  cfg.params.seed = seed;
  cfg.bg_utilization = 0.2;
  cfg.seed = seed;
  cfg.faults = fault::FaultPlan::random(cfg.system, sample_spec());
  return cfg;
}

TEST(FaultDeterminism, SerialRepeatIsByteIdentical) {
  core::ScenarioConfig cfg = faulty_mini(2021);
  cfg.shards = 0;
  const core::RunResult a = core::run_production(cfg);
  const core::RunResult b = core::run_production(cfg);
  expect_identical(a, b);
  ASSERT_TRUE(a.ok);
  EXPECT_GT(a.faults.faults_applied, 0) << "the plan must have taken effect";
  EXPECT_EQ(a.faults.dead_link_transmissions, 0);
}

TEST(FaultDeterminism, IdenticalForEveryShardCount) {
  core::ScenarioConfig cfg = faulty_mini(2021);
  cfg.shards = 1;
  const core::RunResult one = core::run_production(cfg);
  ASSERT_TRUE(one.ok) << one.fail_reason;
  EXPECT_GT(one.faults.faults_applied, 0);
  EXPECT_EQ(one.faults.dead_link_transmissions, 0);
  for (const int n : {2, 8}) {
    SCOPED_TRACE(n);
    cfg.shards = n;
    expect_identical(one, core::run_production(cfg));
  }
}

TEST(FaultDeterminism, EnsembleIdenticalAcrossWorkerCounts) {
  core::ScenarioConfig cfg = faulty_mini(2021);
  cfg.shards = 2;
  constexpr int kSamples = 2;
  const core::BatchResult serial =
      core::run_production_ensemble(cfg, kSamples, core::BatchOptions{.jobs = 1});
  const core::BatchResult parallel =
      core::run_production_ensemble(cfg, kSamples, core::BatchOptions{.jobs = 4});
  ASSERT_EQ(serial.results.size(), static_cast<std::size_t>(kSamples));
  ASSERT_EQ(parallel.results.size(), static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial.results[static_cast<std::size_t>(i)],
                     parallel.results[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace dfsim
