// Tests: experiment harness (production runs, controlled ensembles,
// determinism, reporting helpers).
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace dfsim::core {
namespace {

ProductionConfig small_cfg() {
  ProductionConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.bg_utilization = 0.0;  // isolated by default for speed
  cfg.warmup = 10 * sim::kMicrosecond;
  cfg.seed = 5;
  return cfg;
}

TEST(RunProduction, IsolatedRunSucceeds) {
  const RunResult r = run_production(small_cfg());
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.runtime_ms, 0.0);
  EXPECT_GE(r.groups_spanned, 1);
  EXPECT_GT(r.autoperf.profile.total_mpi_ns(), 0);
  EXPECT_GT(r.global.rank1.flits + r.global.rank2.flits + r.global.rank3.flits,
            0);
  EXPECT_GT(r.netstats.packets_delivered, 0);
}

TEST(RunProduction, DeterministicForSeed) {
  const RunResult a = run_production(small_cfg());
  const RunResult b = run_production(small_cfg());
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_DOUBLE_EQ(a.runtime_ms, b.runtime_ms);
  EXPECT_EQ(a.global.rank3.flits, b.global.rank3.flits);
  EXPECT_EQ(a.netstats.packets_injected, b.netstats.packets_injected);
}

TEST(RunProduction, SeedChangesOutcome) {
  ProductionConfig cfg = small_cfg();
  cfg.bg_utilization = 0.5;
  const RunResult a = run_production(cfg);
  cfg.seed = 6;
  const RunResult b = run_production(cfg);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.runtime_ms, b.runtime_ms);
}

TEST(RunProduction, BackgroundNoiseSlowsTheApp) {
  ProductionConfig cfg = small_cfg();
  const RunResult quiet = run_production(cfg);
  cfg.bg_utilization = 0.7;
  const RunResult noisy = run_production(cfg);
  ASSERT_TRUE(quiet.ok && noisy.ok);
  EXPECT_GT(noisy.runtime_ms, quiet.runtime_ms);
}

TEST(RunProduction, GroupsPlacementHonored) {
  ProductionConfig cfg = small_cfg();
  cfg.placement = sched::Placement::kGroups;
  cfg.target_groups = 3;
  const RunResult r = run_production(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.groups_spanned, 3);
}

TEST(RunProduction, ImpossibleAllocationFails) {
  ProductionConfig cfg = small_cfg();
  cfg.nnodes = 100000;
  const RunResult r = run_production(cfg);
  EXPECT_FALSE(r.ok);
}

TEST(RunProduction, BatchProducesSamples) {
  ProductionConfig cfg = small_cfg();
  const auto rs = run_production_batch(cfg, 4);
  EXPECT_EQ(rs.size(), 4u);
  // Derived seeds: placements differ across samples with random placement.
  bool any_diff = false;
  for (std::size_t i = 1; i < rs.size(); ++i)
    any_diff |= rs[i].runtime_ms != rs[0].runtime_ms;
  EXPECT_TRUE(any_diff);
}

TEST(RunControlled, EnsembleRunsAllJobs) {
  EnsembleConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.njobs = 3;
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.ldms_period = 5 * sim::kMicrosecond;
  const EnsembleResult r = run_controlled(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.runtimes_ms.size(), 3u);
  for (const double t : r.runtimes_ms) EXPECT_GT(t, 0.0);
  EXPECT_GE(r.ldms.size(), 2u);
  EXPECT_FALSE(r.tiles.empty());
}

TEST(RunControlled, OverfullEnsembleRunsWhatFits) {
  EnsembleConfig cfg;
  cfg.system = topo::Config::mini(2);
  cfg.app = "NEK5000";
  cfg.njobs = 10;  // 10 x 16 > 32 nodes
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.05;
  const EnsembleResult r = run_controlled(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.runtimes_ms.size(), 2u);
}

TEST(StallRatios, OrderedLikeFig6) {
  net::CounterSnapshot s;
  s.rank3 = {100, 1000};
  s.rank2 = {100, 2000};
  s.rank1 = {100, 3000};
  s.proc_req = {100, 400};
  s.proc_rsp = {100, 500};
  const auto r = stall_ratios(s, net::FlitTimes{1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(r[0], 10.0);  // Rank3
  EXPECT_DOUBLE_EQ(r[1], 20.0);  // Rank2
  EXPECT_DOUBLE_EQ(r[2], 30.0);  // Rank1
  EXPECT_DOUBLE_EQ(r[3], 4.0);   // Proc_req
  EXPECT_DOUBLE_EQ(r[4], 5.0);   // Proc_rsp
  EXPECT_STREQ(kTileRatioLabels[0], "Rank3");
  EXPECT_STREQ(kTileRatioLabels[4], "Proc_rsp");
}

TEST(Report, CharacterizeProducesTableIRow) {
  const RunResult r = run_production(small_cfg());
  ASSERT_TRUE(r.ok);
  const CharacterizationRow row = characterize(r.autoperf);
  EXPECT_EQ(row.app, "MILC");
  EXPECT_GT(row.mpi_pct, 0.0);
  EXPECT_FALSE(row.call1.empty());
  EXPECT_GT(row.p2p_avg_bytes, 0.0);
  EXPECT_GT(row.coll_avg_bytes, 0.0);
}

TEST(Report, PrintersProduceOutput) {
  const RunResult r = run_production(small_cfg());
  ASSERT_TRUE(r.ok);
  std::ostringstream os;
  print_ratio_comparison(os, "AD0", r.local_stall_ratios(), "AD3",
                         r.local_stall_ratios());
  EXPECT_NE(os.str().find("Rank3"), std::string::npos);

  std::ostringstream os2;
  const std::vector<mpi::Op> ops{mpi::Op::kAllreduce, mpi::Op::kWaitall};
  print_breakdown(os2, r.autoperf, ops);
  EXPECT_NE(os2.str().find("MPI_Allreduce"), std::string::npos);

  std::ostringstream os3;
  const std::vector<double> a{1.0, 2.0, 3.0}, b{0.5, 1.5, 2.5};
  print_normalized_split(os3, "test", a, b);
  EXPECT_NE(os3.str().find("AD0"), std::string::npos);

  std::ostringstream os4;
  ComparisonRow row;
  row.app = "MILC";
  row.runs = 10;
  const std::vector<ComparisonRow> rows{row};
  print_table2(os4, rows);
  EXPECT_NE(os4.str().find("MILC"), std::string::npos);
}

}  // namespace
}  // namespace dfsim::core
