// Unit tests: dragonfly topology construction and path helpers.
#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::topo {
namespace {

TEST(Config, Presets) {
  const Config t = Config::theta();
  EXPECT_EQ(t.groups, 12);
  EXPECT_EQ(t.routers_per_group(), 96);
  EXPECT_EQ(t.num_nodes(), 12 * 96 * 4);
  EXPECT_EQ(t.cables_per_group_pair, 12);

  const Config c = Config::cori();
  EXPECT_EQ(c.cables_per_group_pair, 4);
  EXPECT_GT(c.groups, t.groups);

  // Cori's load-bearing property: lower bisection-to-injection ratio.
  auto bisection_per_node = [](const Config& cfg) {
    return static_cast<double>(cfg.cables_per_group_pair) * cfg.rank3_bw_gbps /
           cfg.nodes_per_group();
  };
  EXPECT_LT(bisection_per_node(c), bisection_per_node(t));

  EXPECT_NO_THROW(Config::mini().validate());
  EXPECT_NO_THROW(Config::theta_scaled().validate());
  EXPECT_NO_THROW(Config::cori_scaled().validate());
}

TEST(Config, ValidationRejectsBadShapes) {
  Config c = Config::mini();
  c.groups = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config::mini();
  c.rank1_bw_gbps = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config::mini();
  c.buffer_flits = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config::mini();
  c.packet_payload_bytes = 4;
  c.flit_bytes = 16;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

class TopoParam : public ::testing::TestWithParam<Config> {};

INSTANTIATE_TEST_SUITE_P(Shapes, TopoParam,
                         ::testing::Values(Config::mini(2), Config::mini(4),
                                           Config::mini(8),
                                           Config::theta_scaled()),
                         [](const auto& inf) {
                           return inf.param.name + "_g" +
                                  std::to_string(inf.param.groups);
                         });

TEST_P(TopoParam, CoordinateRoundTrip) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  for (RouterId r = 0; r < cfg.num_routers(); ++r) {
    EXPECT_EQ(d.router_at(d.group_of_router(r), d.chassis_of(r), d.slot_of(r)),
              r);
  }
  for (NodeId n = 0; n < cfg.num_nodes(); n += 3) {
    EXPECT_EQ(d.group_of_node(n), d.group_of_router(d.router_of_node(n)));
    EXPECT_LT(d.node_slot(n), cfg.nodes_per_router);
  }
}

TEST_P(TopoParam, PortLayoutAndCounts) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  for (RouterId r = 0; r < cfg.num_routers(); ++r) {
    const int nglobal = d.num_global_ports(r);
    EXPECT_EQ(d.num_ports(r), d.rank1_ports() + d.rank2_ports() + nglobal +
                                  cfg.nodes_per_router);
    // Tile classes laid out in order.
    for (PortId p = 0; p < d.num_ports(r); ++p) {
      const auto& pi = d.port(r, p);
      if (p < d.rank1_ports())
        EXPECT_EQ(pi.cls, TileClass::kRank1);
      else if (p < d.global_port_base())
        EXPECT_EQ(pi.cls, TileClass::kRank2);
      else if (p < d.proc_port_base(r))
        EXPECT_EQ(pi.cls, TileClass::kRank3);
      else
        EXPECT_EQ(pi.cls, TileClass::kProc);
    }
  }
}

TEST_P(TopoParam, LinksAreSymmetric) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  for (RouterId r = 0; r < cfg.num_routers(); ++r) {
    for (PortId p = 0; p < d.num_ports(r); ++p) {
      const auto& pi = d.port(r, p);
      if (pi.cls == TileClass::kProc) {
        EXPECT_EQ(d.router_of_node(pi.eject_node), r);
        continue;
      }
      ASSERT_GE(pi.peer_port, 0) << "r" << r << " p" << p;
      const auto& back = d.port(pi.peer_router, pi.peer_port);
      EXPECT_EQ(back.peer_router, r);
      EXPECT_EQ(back.peer_port, p);
      EXPECT_EQ(back.cls, pi.cls);
      EXPECT_DOUBLE_EQ(back.bw_gbps, pi.bw_gbps);
    }
  }
}

TEST_P(TopoParam, GlobalCablesCompleteAndBalanced) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  for (GroupId a = 0; a < cfg.groups; ++a) {
    int total_to_sum = 0;
    for (GroupId b = 0; b < cfg.groups; ++b) {
      if (a == b) continue;
      const auto gws = d.gateways(a, b);
      EXPECT_EQ(static_cast<int>(gws.size()), cfg.cables_per_group_pair);
      total_to_sum += static_cast<int>(gws.size());
      for (const auto& gw : gws) {
        EXPECT_EQ(d.group_of_router(gw.router), a);
        const auto& pi = d.port(gw.router, gw.port);
        EXPECT_EQ(pi.cls, TileClass::kRank3);
        EXPECT_EQ(pi.target_group, b);
        EXPECT_EQ(d.group_of_router(pi.peer_router), b);
      }
    }
    EXPECT_EQ(total_to_sum, cfg.global_cables_per_group());
  }
}

TEST_P(TopoParam, LocalPortsConnectRowAndColumn) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  const RouterId r = d.router_at(0, 0, 0);
  // Same chassis: direct rank-1.
  for (int s = 1; s < cfg.slots_per_chassis; ++s) {
    const PortId p = d.local_port_to(r, d.router_at(0, 0, s));
    ASSERT_GE(p, 0);
    EXPECT_EQ(d.port(r, p).cls, TileClass::kRank1);
  }
  // Same slot: direct rank-2.
  for (int c = 1; c < cfg.chassis_per_group; ++c) {
    const PortId p = d.local_port_to(r, d.router_at(0, c, 0));
    ASSERT_GE(p, 0);
    EXPECT_EQ(d.port(r, p).cls, TileClass::kRank2);
  }
  // Different chassis and slot: no direct link.
  if (cfg.chassis_per_group > 1 && cfg.slots_per_chassis > 1) {
    EXPECT_EQ(d.local_port_to(r, d.router_at(0, 1, 1)), -1);
  }
  // Different group: not local.
  EXPECT_EQ(d.local_port_to(r, d.router_at(1, 0, 0)), -1);
  // Self: not a link.
  EXPECT_EQ(d.local_port_to(r, r), -1);
}

TEST_P(TopoParam, MinimalHopsWithinBounds) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  sim::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<RouterId>(rng.uniform_u64(cfg.num_routers()));
    const auto b = static_cast<RouterId>(rng.uniform_u64(cfg.num_routers()));
    const int h = d.minimal_hops(a, b);
    if (a == b) {
      EXPECT_EQ(h, 0);
    } else if (d.group_of_router(a) == d.group_of_router(b)) {
      EXPECT_GE(h, 1);
      EXPECT_LE(h, 2);
    } else {
      EXPECT_GE(h, 1);
      EXPECT_LE(h, 5);  // paper: <= 2 local + global + 2 local
    }
  }
}

TEST_P(TopoParam, EjectPortMapsNodes) {
  const Dragonfly d(GetParam());
  const auto& cfg = d.config();
  for (NodeId n = 0; n < cfg.num_nodes(); n += 7) {
    const RouterId r = d.router_of_node(n);
    const PortId p = d.eject_port(r, n);
    EXPECT_EQ(d.port(r, p).cls, TileClass::kProc);
    EXPECT_EQ(d.port(r, p).eject_node, n);
  }
  EXPECT_THROW(static_cast<void>(d.eject_port(0, cfg.num_nodes() - 1)),
               std::invalid_argument);
}

TEST(Dragonfly, GroupsSpanned) {
  const Dragonfly d(Config::mini(4));
  const int npg = d.config().nodes_per_group();
  std::vector<NodeId> nodes{0, 1, 2};
  EXPECT_EQ(d.groups_spanned(nodes), 1);
  nodes.push_back(static_cast<NodeId>(npg));
  nodes.push_back(static_cast<NodeId>(2 * npg));
  EXPECT_EQ(d.groups_spanned(nodes), 3);
  EXPECT_EQ(d.groups_spanned({}), 0);
}

TEST(Dragonfly, ThetaFullScaleConstructs) {
  const Dragonfly d(Config::theta());
  EXPECT_EQ(d.config().num_routers(), 1152);
  EXPECT_EQ(d.config().num_nodes(), 4608);
  // 40 network tiles per Aries router in the paper; our folded rank-2 ports
  // represent 15 physical rank-2 links as 5 fat ports.
  const RouterId r = 100;
  EXPECT_EQ(d.rank1_ports(), 15);
  EXPECT_EQ(d.rank2_ports(), 5);
  EXPECT_GE(d.num_global_ports(r), 1);
  // Total cables per group: 12 per pair x 11 peers = 132 spread over 96
  // routers -> every router has 1 or 2.
  for (RouterId rr = 0; rr < 96; ++rr) {
    EXPECT_GE(d.num_global_ports(rr), 1);
    EXPECT_LE(d.num_global_ports(rr), 2);
  }
}

}  // namespace
}  // namespace dfsim::topo
