// System mode: arrival streams through the queueing scheduler
// (FCFS + liberal backfill, completion-driven release) and the
// app-by-app interference matrix.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "core/interference.hpp"
#include "core/report.hpp"
#include "sched/system.hpp"

namespace dfsim {
namespace {

sched::SystemJobSpec compute_job(sim::Tick arrival, int nnodes, int iters) {
  sched::SystemJobSpec s;
  s.arrival = arrival;
  s.nnodes = nnodes;
  s.placement = sched::Placement::kCompact;
  s.pattern = "compute";
  s.traffic.iterations = iters;
  s.traffic.compute_ns = 1000;
  return s;
}

// Acceptance: a 50-job arrival stream runs to completion and the allocator
// returns to its pre-stream state — every job's nodes came back.
TEST(SystemStream, FiftyJobStreamCompletesAndReleasesEverything) {
  sched::Scheduler s(topo::Config::mini(4), 31);
  const double before = s.allocator().utilization();
  const int free_before = s.allocator().free_count();
  sched::SystemConfig cfg;
  cfg.num_jobs = 50;
  cfg.mean_interarrival = 20 * sim::kMicrosecond;
  sched::SystemScheduler sys(s, cfg, 7);
  ASSERT_EQ(static_cast<int>(sys.records().size()), 50);
  ASSERT_TRUE(sys.run());
  EXPECT_EQ(sys.queue_depth(), 0);
  const auto st = sys.stats();
  EXPECT_EQ(st.total, 50);
  EXPECT_EQ(st.completed, 50);
  EXPECT_GT(st.peak_utilization, 0.0);
  EXPECT_GT(st.makespan, 0);
  for (const auto& rec : sys.records()) {
    ASSERT_TRUE(rec.started()) << "job " << rec.index;
    ASSERT_TRUE(rec.completed()) << "job " << rec.index;
    EXPECT_GE(rec.start_time, rec.spec.arrival);
    EXPECT_GE(rec.end_time, rec.start_time);
    EXPECT_GE(rec.wait(), 0);
    // Completion released the allocation: the scheduler no longer owns it.
    EXPECT_FALSE(s.owns_allocation(rec.job));
  }
  EXPECT_DOUBLE_EQ(s.allocator().utilization(), before);
  EXPECT_EQ(s.allocator().free_count(), free_before);
}

// A head job that cannot fit must not block later jobs that can (liberal
// backfill); strict FCFS must keep them queued behind it.
TEST(SystemStream, BackfillStartsFittingJobsEarly) {
  const topo::Config topo = topo::Config::mini(2);
  const int total = topo.num_nodes();
  // job 0 occupies all but two nodes for a long burst; job 1 (same size)
  // must queue; job 2 fits in the two leftover nodes.
  std::vector<sched::SystemJobSpec> stream;
  stream.push_back(compute_job(0, total - 2, 50));
  stream.push_back(compute_job(1 * sim::kMicrosecond, total - 2, 2));
  stream.push_back(compute_job(2 * sim::kMicrosecond, 2, 2));

  sched::Scheduler with_bf(topo, 41);
  sched::SystemScheduler a(with_bf, stream, /*backfill=*/true);
  ASSERT_TRUE(a.run());
  EXPECT_EQ(a.stats().backfilled, 1);
  EXPECT_TRUE(a.records()[2].backfilled);
  EXPECT_EQ(a.records()[2].start_time, a.records()[2].spec.arrival);
  EXPECT_LT(a.records()[2].start_time, a.records()[1].start_time);

  sched::Scheduler fcfs(topo, 41);
  sched::SystemScheduler b(fcfs, stream, /*backfill=*/false);
  ASSERT_TRUE(b.run());
  EXPECT_EQ(b.stats().backfilled, 0);
  EXPECT_FALSE(b.records()[2].backfilled);
  // Under FCFS job 2 waits for the head to start first.
  EXPECT_GE(b.records()[2].start_time, b.records()[1].start_time);
  EXPECT_GT(b.records()[1].wait(), 0);
}

// The scheduling decision sequence is a pure function of the seed within
// the sharded execution family: identical per-job timelines for every
// shard and worker count.
TEST(SystemMode, RunSystemByteIdenticalAcrossShardAndWorkerCounts) {
  core::ScenarioConfig cfg = core::ScenarioConfig::system_mode();
  cfg.system = topo::Config::mini(4);
  cfg.seed = 5;
  cfg.sys_jobs = 12;
  cfg.sys_interarrival = 10 * sim::kMicrosecond;
  cfg.shards = 1;
  const auto base = core::run_system(cfg);
  ASSERT_TRUE(base.ok) << base.fail_reason;
  ASSERT_EQ(base.jobs.size(), 12u);

  auto expect_same = [&](const core::SystemRunResult& r) {
    ASSERT_TRUE(r.ok) << r.fail_reason;
    ASSERT_EQ(r.jobs.size(), base.jobs.size());
    for (std::size_t i = 0; i < base.jobs.size(); ++i) {
      EXPECT_EQ(r.jobs[i].job, base.jobs[i].job) << i;
      EXPECT_EQ(r.jobs[i].start_time, base.jobs[i].start_time) << i;
      EXPECT_EQ(r.jobs[i].end_time, base.jobs[i].end_time) << i;
      EXPECT_EQ(r.jobs[i].backfilled, base.jobs[i].backfilled) << i;
    }
    EXPECT_EQ(r.stats.makespan, base.stats.makespan);
    EXPECT_DOUBLE_EQ(r.stats.peak_utilization, base.stats.peak_utilization);
  };
  cfg.shards = 4;
  expect_same(core::run_system(cfg));
  cfg.shard_workers = 2;
  expect_same(core::run_system(cfg));
}

// Serial (shards == 0) is its own deterministic family: repeat runs agree.
TEST(SystemMode, SerialRunSystemIsRepeatable) {
  core::ScenarioConfig cfg = core::ScenarioConfig::system_mode();
  cfg.system = topo::Config::mini(4);
  cfg.seed = 9;
  cfg.sys_jobs = 8;
  cfg.sys_interarrival = 10 * sim::kMicrosecond;
  cfg.shards = 0;
  const auto a = core::run_system(cfg);
  const auto b = core::run_system(cfg);
  ASSERT_TRUE(a.ok) << a.fail_reason;
  ASSERT_TRUE(b.ok) << b.fail_reason;
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start_time, b.jobs[i].start_time) << i;
    EXPECT_EQ(a.jobs[i].end_time, b.jobs[i].end_time) << i;
  }
  // The summary printer handles a completed run.
  std::ostringstream os;
  core::print_system_summary(os, a);
  EXPECT_NE(os.str().find("stream: 8/8 jobs completed"), std::string::npos);
  EXPECT_EQ(os.str().find("INCOMPLETE"), std::string::npos);
}

// The interference matrix is byte-identical across TrialRunner jobs counts
// and across shard counts within the sharded family.
TEST(InterferenceMatrix, ByteIdenticalAcrossJobsAndShards) {
  core::InterferenceConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.apps = {"MILC", "HACC"};
  cfg.modes = {routing::Mode::kAd0};
  cfg.nnodes = 16;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.05;
  cfg.params.compute_scale = 0.05;
  cfg.seed = 3;
  cfg.shards = 1;
  const auto j1 = core::run_interference_matrix(cfg, /*jobs=*/1);
  const auto j4 = core::run_interference_matrix(cfg, /*jobs=*/4);
  cfg.shards = 4;
  const auto s4 = core::run_interference_matrix(cfg, /*jobs=*/2);

  ASSERT_EQ(j1.cells.size(), 4u);  // 1 mode x 2 victims x 2 aggressors
  for (const auto& c : j1.cells) {
    ASSERT_TRUE(c.ok) << c.app_a << " vs " << c.app_b << ": " << c.fail_reason;
    EXPECT_GT(c.alone_ms, 0.0);
    EXPECT_GT(c.slowdown, 0.0);
  }
  // Self-interference: a colocated twin can only slow its victim down.
  const auto& self = j1.cell(0, 0, 0);
  EXPECT_GE(self.slowdown, 1.0);

  auto csv_of = [](const core::InterferenceMatrix& m) {
    std::ostringstream os;
    core::write_interference_csv(os, m);
    return os.str();
  };
  const std::string base = csv_of(j1);
  EXPECT_EQ(csv_of(j4), base);
  EXPECT_EQ(csv_of(s4), base);
}

}  // namespace
}  // namespace dfsim
