// Unit tests: collective algorithms across communicator sizes.
#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace dfsim::mpi {
namespace {

/// Run `app` on the first `n` nodes of a mini machine; returns merged profile.
Profile run_app(int n, JobSpec::AppFn app, sim::Tick* runtime = nullptr) {
  Machine m(topo::Config::mini(4), 77);
  JobSpec s;
  s.name = "coll";
  for (int i = 0; i < n; ++i) s.nodes.push_back(i);
  s.app = std::move(app);
  const JobId id = m.submit(std::move(s));
  const JobId w[] = {id};
  EXPECT_TRUE(m.run_to_completion(w));
  if (runtime != nullptr) *runtime = m.job(id).runtime();
  return m.job_profile(id);
}

class CollSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, CollSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 23, 32),
                         [](const auto& inf) {
                           return "n" + std::to_string(inf.param);
                         });

TEST_P(CollSizes, BarrierCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    for (int i = 0; i < 3; ++i)
      co_await coll::barrier(ctx, Comm::world(ctx.nranks(), ctx.rank()));
  });
  EXPECT_EQ(p.stats(Op::kBarrier).calls, 3 * n);
}

TEST_P(CollSizes, AllreduceSmallCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    co_await coll::allreduce(ctx, Comm::world(ctx.nranks(), ctx.rank()), 8);
  });
  EXPECT_EQ(p.stats(Op::kAllreduce).calls, n);
  EXPECT_EQ(p.stats(Op::kAllreduce).bytes, 8 * n);
  // Internal sends must not pollute the p2p profile rows.
  EXPECT_EQ(p.stats(Op::kIsend).calls, 0);
  EXPECT_EQ(p.stats(Op::kWait).calls, 0);
}

TEST_P(CollSizes, AllreduceLargeUsesRingAndCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    co_await coll::allreduce(ctx, Comm::world(ctx.nranks(), ctx.rank()),
                             coll::kRingThresholdBytes * 2);
  });
  EXPECT_EQ(p.stats(Op::kAllreduce).calls, n);
}

TEST_P(CollSizes, AlltoallCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    co_await coll::alltoall(ctx, Comm::world(ctx.nranks(), ctx.rank()), 2048);
  });
  EXPECT_EQ(p.stats(Op::kAlltoall).calls, n);
}

TEST_P(CollSizes, BcastAndReduceComplete) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    const Comm w = Comm::world(ctx.nranks(), ctx.rank());
    co_await coll::bcast(ctx, w, 4096, 0);
    co_await coll::reduce(ctx, w, 4096, 0);
    // Non-zero roots too.
    co_await coll::bcast(ctx, w, 128, ctx.nranks() - 1);
    co_await coll::reduce(ctx, w, 128, ctx.nranks() / 2);
  });
  EXPECT_EQ(p.stats(Op::kBcast).calls, 2 * n);
  EXPECT_EQ(p.stats(Op::kReduce).calls, 2 * n);
}

TEST_P(CollSizes, AllgatherCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    co_await coll::allgather(ctx, Comm::world(ctx.nranks(), ctx.rank()), 4096);
  });
  EXPECT_EQ(p.stats(Op::kAllgather).calls, n);
  if (n > 1)
    EXPECT_EQ(p.stats(Op::kAllgather).bytes, 4096LL * (n - 1) * n);
}

TEST_P(CollSizes, ReduceScatterCompletes) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    co_await coll::reduce_scatter(ctx, Comm::world(ctx.nranks(), ctx.rank()),
                                  64 * 1024);
  });
  EXPECT_EQ(p.stats(Op::kReduceScatter).calls, n);
}

TEST_P(CollSizes, GatherScatterComplete) {
  const int n = GetParam();
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    const Comm w = Comm::world(ctx.nranks(), ctx.rank());
    co_await coll::gather(ctx, w, 2048, 0);
    co_await coll::scatter(ctx, w, 2048, 0);
    // Non-zero root as well.
    co_await coll::gather(ctx, w, 512, ctx.nranks() - 1);
    co_await coll::scatter(ctx, w, 512, ctx.nranks() / 2);
  });
  EXPECT_EQ(p.stats(Op::kGather).calls, 2 * n);
  EXPECT_EQ(p.stats(Op::kScatter).calls, 2 * n);
}

TEST(Collectives, AllgatherLatencyScalesWithVolume) {
  sim::Tick small = 0, big = 0;
  run_app(8, [](RankCtx& ctx) -> CoTask {
    co_await coll::allgather(ctx, Comm::world(ctx.nranks(), ctx.rank()), 1024);
  }, &small);
  run_app(8, [](RankCtx& ctx) -> CoTask {
    co_await coll::allgather(ctx, Comm::world(ctx.nranks(), ctx.rank()),
                             256 * 1024);
  }, &big);
  EXPECT_GT(big, small);
}

TEST(Collectives, AlltoallvPerPeerBytes) {
  const int n = 6;
  const Profile p = run_app(n, [](RankCtx& ctx) -> CoTask {
    const Comm w = Comm::world(ctx.nranks(), ctx.rank());
    std::vector<std::int64_t> per(static_cast<std::size_t>(w.size()));
    for (int i = 0; i < w.size(); ++i)
      per[static_cast<std::size_t>(i)] = 100 * (i + 1);
    co_await coll::alltoallv(ctx, w, std::move(per));
  });
  EXPECT_EQ(p.stats(Op::kAlltoallv).calls, n);
  // Each rank sends sum(per) minus its own slot.
  std::int64_t expect_total = 0;
  for (int me = 0; me < n; ++me)
    for (int i = 0; i < n; ++i)
      if (i != me) expect_total += 100 * (i + 1);
  EXPECT_EQ(p.stats(Op::kAlltoallv).bytes, expect_total);
}

TEST(Collectives, SubCommunicatorsRunConcurrently) {
  // Two disjoint row comms doing alltoall at once: no cross-talk.
  const Profile p = run_app(8, [](RankCtx& ctx) -> CoTask {
    const int me = ctx.rank();
    std::vector<int> members;
    const int base = (me / 4) * 4;
    for (int i = 0; i < 4; ++i) members.push_back(base + i);
    const Comm row = Comm::sub(std::move(members), me);
    for (int rep = 0; rep < 3; ++rep)
      co_await coll::alltoall(ctx, row, 4096);
  });
  EXPECT_EQ(p.stats(Op::kAlltoall).calls, 3 * 8);
}

TEST(Collectives, BarrierSynchronizes) {
  // Rank 0 is slow; everyone's barrier must take at least rank 0's delay.
  sim::Tick runtime = 0;
  run_app(4, [](RankCtx& ctx) -> CoTask {
    if (ctx.rank() == 0) co_await ctx.compute(500 * sim::kMicrosecond);
    co_await coll::barrier(ctx, Comm::world(ctx.nranks(), ctx.rank()));
  }, &runtime);
  EXPECT_GE(runtime, 500 * sim::kMicrosecond);
}

TEST(Collectives, AllreduceLatencyGrowsWithRanks) {
  auto time_for = [](int n) {
    sim::Tick rt = 0;
    run_app(n, [](RankCtx& ctx) -> CoTask {
      for (int i = 0; i < 5; ++i)
        co_await coll::allreduce(ctx, Comm::world(ctx.nranks(), ctx.rank()), 8);
    }, &rt);
    return rt;
  };
  EXPECT_LT(time_for(2), time_for(16));
}

TEST(Collectives, A2aModeUsedForAlltoall) {
  // With mode_a2a == mode_p2p == AD0 vs alltoall forced elsewhere: here we
  // just assert alltoall internals don't appear as Isend/Recv in profiles
  // and the collective time is attributed to Alltoall.
  const Profile p = run_app(4, [](RankCtx& ctx) -> CoTask {
    co_await coll::alltoall(ctx, Comm::world(ctx.nranks(), ctx.rank()), 8192);
  });
  EXPECT_EQ(p.stats(Op::kIsend).calls, 0);
  EXPECT_EQ(p.stats(Op::kIrecv).calls, 0);
  EXPECT_GT(p.stats(Op::kAlltoall).time_ns, 0);
}

TEST(Comm, WorldAndSub) {
  const Comm w = Comm::world(8, 3);
  EXPECT_EQ(w.size(), 8);
  EXPECT_EQ(w.my_index, 3);
  EXPECT_EQ(w.my_world(), 3);
  const Comm s = Comm::sub({5, 9, 2}, 9);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.my_index, 1);
  EXPECT_EQ(s.world(2), 2);
}

}  // namespace
}  // namespace dfsim::mpi
