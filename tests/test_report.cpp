// Tests: report helpers and multi-job monitoring interactions not covered
// by the per-module suites.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/registry.hpp"
#include "core/report.hpp"
#include "monitor/autoperf.hpp"
#include "monitor/ldms.hpp"
#include "sched/scheduler.hpp"

namespace dfsim {
namespace {

TEST(Report, RatioComparisonHandlesZeroBaseline) {
  std::ostringstream os;
  const std::array<double, 5> zeros{};
  const std::array<double, 5> some{1, 2, 3, 4, 5};
  core::print_ratio_comparison(os, "A", zeros, "B", some);
  // Zero baseline -> 0% change printed, no division blowup.
  EXPECT_NE(os.str().find("+0.0%"), std::string::npos);
}

TEST(Report, NormalizedSplitDegenerateInputs) {
  std::ostringstream os;
  const std::vector<double> same{2.0, 2.0};
  core::print_normalized_split(os, "const", same, same);
  EXPECT_NE(os.str().find("AD0"), std::string::npos);
  std::ostringstream os2;
  core::print_normalized_split(os2, "empty", {}, {});
  EXPECT_NE(os2.str().find("AD3"), std::string::npos);
}

TEST(Report, FaultSummarySilentOnHealthyRun) {
  std::ostringstream os;
  core::print_fault_summary(os, fault::FaultStats{});
  EXPECT_TRUE(os.str().empty());
}

TEST(Report, FaultSummaryPrintsRecoveryCounters) {
  fault::FaultStats st;
  st.faults_applied = 3;
  st.repairs_applied = 1;
  st.recomputes = 5;
  st.packets_rerouted = 42;
  st.messages_retried = 2;
  std::ostringstream os;
  core::print_fault_summary(os, st);
  EXPECT_NE(os.str().find("3 applied"), std::string::npos);
  EXPECT_NE(os.str().find("42 packets rerouted"), std::string::npos);
  EXPECT_EQ(os.str().find("INVARIANT"), std::string::npos);
}

TEST(AutoPerf, SharedRouterCountersAreContaminatedButBounded) {
  // Two jobs sharing routers: each job's local view includes the other's
  // traffic on shared routers (as on the real system), but never exceeds
  // the global totals.
  sched::Scheduler sched(topo::Config::mini(4), 31);
  apps::AppParams p;
  p.iterations = 2;
  p.msg_scale = 0.1;
  p.compute_scale = 0.1;
  const mpi::JobId a = sched.submit_app("MILC", 16, sched::Placement::kRandom,
                                        routing::Mode::kAd0, p);
  const mpi::JobId b = sched.submit_app("NEK5000", 16, sched::Placement::kRandom,
                                        routing::Mode::kAd3, p);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const auto base_a = monitor::local_baseline(sched.machine(), a);
  const auto base_b = monitor::local_baseline(sched.machine(), b);
  const mpi::JobId w[] = {a, b};
  ASSERT_TRUE(sched.machine().run_to_completion(w));
  const auto ra = monitor::collect(sched.machine(), a, base_a);
  const auto rb = monitor::collect(sched.machine(), b, base_b);
  const auto all = sched.machine().network().snapshot_all();
  EXPECT_LE(ra.local.rank1.flits, all.rank1.flits);
  EXPECT_LE(rb.local.rank1.flits, all.rank1.flits);
  EXPECT_GT(ra.profile.total_mpi_ns(), 0);
  EXPECT_GT(rb.profile.total_mpi_ns(), 0);
  // Distinct apps produce distinct dominant calls.
  EXPECT_EQ(rb.app, "NEK5000");
}

TEST(Ldms, TracksConcurrentJobsGlobally) {
  sched::Scheduler sched(topo::Config::mini(4), 33);
  apps::AppParams p;
  p.iterations = 3;
  p.msg_scale = 0.15;
  p.compute_scale = 0.1;
  monitor::LdmsSampler ldms(sched.machine().network(), 20 * sim::kMicrosecond);
  ldms.start();
  std::vector<mpi::JobId> jobs;
  for (const char* app : {"MILC", "QBOX"}) {
    const auto id = sched.submit_app(app, 16, sched::Placement::kRandom,
                                     routing::Mode::kAd0, p);
    ASSERT_GE(id, 0);
    jobs.push_back(id);
  }
  ASSERT_TRUE(sched.machine().run_to_completion(jobs));
  const auto deltas = ldms.interval_deltas();
  ASSERT_GT(deltas.size(), 1u);
  // Traffic visible in at least one interval.
  std::int64_t total = 0;
  for (const auto& d : deltas)
    total += d.cumulative.rank1.flits + d.cumulative.rank2.flits +
             d.cumulative.rank3.flits;
  EXPECT_GT(total, 0);
}

TEST(Characterize, DistinguishesCollectiveHeavyApps) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "QBOX";
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.bg_utilization = 0.0;
  cfg.seed = 5;
  const auto r = core::run_production(cfg);
  ASSERT_TRUE(r.ok);
  const auto row = core::characterize(r.autoperf);
  EXPECT_EQ(row.call1, "MPI_Alltoallv");
  EXPECT_GT(row.coll_avg_bytes, row.p2p_avg_bytes * 0.0);  // populated
}

}  // namespace
}  // namespace dfsim
