// Tests: campaign service — scenario fingerprints, result serialization,
// the content-addressed cache, verified snapshots/restore, and the
// resumable sweep runner. Everything here must hold in BOTH determinism
// families: the suite runs serial by default and sharded under
// DFSIM_TEST_SHARDS=4 (ScenarioConfig::resolve() folds the env in).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/fingerprint.hpp"
#include "campaign/runner.hpp"
#include "campaign/serialize.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "sim/snapshot.hpp"

namespace dfsim::campaign {
namespace {

namespace fs = std::filesystem;

core::ScenarioConfig small_cfg() {
  core::ScenarioConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.bg_utilization = 0.0;
  cfg.warmup = 10 * sim::kMicrosecond;
  cfg.seed = 5;
  return cfg;
}

std::vector<std::uint8_t> canon(const core::RunResult& r) {
  return serialize(r, Canonical::kYes);
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "dfsim_campaign_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, StableAcrossCalls) {
  const core::ScenarioConfig cfg = small_cfg();
  EXPECT_EQ(scenario_fingerprint(cfg).hex(), scenario_fingerprint(cfg).hex());
  EXPECT_EQ(scenario_fingerprint(cfg).hex().size(), 32u);
}

TEST(Fingerprint, EveryFieldChangeChangesIt) {
  const core::ScenarioConfig base = small_cfg();
  const std::string fp0 = scenario_fingerprint(base).hex();

  auto differs = [&](auto mutate) {
    core::ScenarioConfig c = base;
    mutate(c);
    return scenario_fingerprint(c).hex() != fp0;
  };
  EXPECT_TRUE(differs([](auto& c) { c.seed = 6; }));
  EXPECT_TRUE(differs([](auto& c) { c.app = "HACC"; }));
  EXPECT_TRUE(differs([](auto& c) { c.nnodes = 32; }));
  EXPECT_TRUE(differs([](auto& c) { c.mode = routing::Mode::kAd3; }));
  EXPECT_TRUE(differs([](auto& c) { c.bg_utilization = 0.5; }));
  EXPECT_TRUE(differs([](auto& c) { c.placement = sched::Placement::kCompact; }));
  EXPECT_TRUE(differs([](auto& c) { c.warmup += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.event_budget -= 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.coalesce_events = false; }));
  EXPECT_TRUE(differs([](auto& c) { c.faults.fail_link(100, 0, 1); }));
  // AppParams is not a CSV column but absolutely shapes results.
  EXPECT_TRUE(differs([](auto& c) { c.params.iterations = 3; }));
  EXPECT_TRUE(differs([](auto& c) { c.params.msg_scale = 0.2; }));
  EXPECT_TRUE(differs([](auto& c) { c.params.compute_scale = 0.2; }));
  EXPECT_TRUE(differs([](auto& c) { c.params.seed = 9; }));
}

TEST(Fingerprint, SaltChangesIt) {
  const core::ScenarioConfig cfg = small_cfg();
  EXPECT_NE(scenario_fingerprint(cfg).hex(),
            scenario_fingerprint(cfg, "dfsim-engine/next").hex());
  EXPECT_EQ(scenario_fingerprint(cfg).hex(),
            scenario_fingerprint(cfg, kEngineVersionSalt).hex());
}

TEST(Fingerprint, TopologyKindIsSalted) {
  // The topology is a canonical CSV column, so each resolved kind gets its
  // own content address — a dragonfly+ run can never hit a dragonfly cache
  // entry for the same config shape.
  core::ScenarioConfig df = small_cfg();
  df.system.kind = topo::TopologyKind::kDragonfly;
  core::ScenarioConfig dfp = small_cfg();
  dfp.system.kind = topo::TopologyKind::kDragonflyPlus;
  core::ScenarioConfig ss = small_cfg();
  ss.system.kind = topo::TopologyKind::kSlingshot;
  const std::string a = scenario_fingerprint(df).hex();
  const std::string b = scenario_fingerprint(dfp).hex();
  const std::string c = scenario_fingerprint(ss).hex();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // kDefault resolves to the same canonical kind as an explicit dragonfly
  // (with DFSIM_TEST_TOPO unset), so the fingerprints collapse.
  if (std::getenv("DFSIM_TEST_TOPO") == nullptr) {
    core::ScenarioConfig dflt = small_cfg();
    dflt.system.kind = topo::TopologyKind::kDefault;
    EXPECT_EQ(scenario_fingerprint(dflt).hex(), a);
  }
}

TEST(ResultCache, TopologyEntriesNeverCrossResolve) {
  // A result stored under one topology's fingerprint is a miss — never a
  // wrong answer — when the same scenario is probed on another topology.
  ResultCache cache = ResultCache::memory_only();
  core::ScenarioConfig df = small_cfg();
  df.system.kind = topo::TopologyKind::kDragonfly;
  core::RunResult r;
  r.ok = true;
  r.runtime_ms = 42.0;
  cache.store(scenario_fingerprint(df), canon(r));
  core::ScenarioConfig dfp = small_cfg();
  dfp.system.kind = topo::TopologyKind::kDragonflyPlus;
  EXPECT_FALSE(cache.load(scenario_fingerprint(dfp)).has_value());
  EXPECT_TRUE(cache.load(scenario_fingerprint(df)).has_value());
}

TEST(Fingerprint, SubstrateWidthCollapsesToFamily) {
  core::ScenarioConfig a = small_cfg();
  core::ScenarioConfig b = small_cfg();
  a.shards = 1;
  b.shards = 4;
  b.shard_workers = 8;
  // Same family, same results, same content address.
  EXPECT_EQ(scenario_fingerprint(a).hex(), scenario_fingerprint(b).hex());
  // The serial engine is a distinct deterministic family: never shared.
  core::ScenarioConfig s = small_cfg();
  s.shards = 0;
  EXPECT_NE(scenario_fingerprint(s).hex(), scenario_fingerprint(a).hex());
}

// -------------------------------------------------------------- serialization

TEST(Serialize, RunResultRoundTrips) {
  const core::RunResult r = core::run_production(small_cfg());
  ASSERT_TRUE(r.ok);
  const auto bytes = serialize(r);
  EXPECT_TRUE(is_run_result(bytes));
  EXPECT_FALSE(is_ensemble_result(bytes));
  const core::RunResult back = deserialize_run_result(bytes);
  // Full round trip: the re-serialized form is byte-identical, and the
  // canonical (model-only) forms agree too.
  EXPECT_EQ(serialize(back), bytes);
  EXPECT_EQ(canon(back), canon(r));
  EXPECT_EQ(result_digest(back).hex(), result_digest(r).hex());
  EXPECT_DOUBLE_EQ(back.runtime_ms, r.runtime_ms);
  EXPECT_EQ(back.events_executed, r.events_executed);
}

TEST(Serialize, EnsembleResultRoundTrips) {
  core::ScenarioConfig cfg = small_cfg();
  cfg.kind = core::ScenarioKind::kControlled;
  cfg.njobs = 2;
  const core::EnsembleResult r = core::run_controlled(cfg);
  ASSERT_TRUE(r.ok);
  const auto bytes = serialize(r);
  EXPECT_TRUE(is_ensemble_result(bytes));
  const core::EnsembleResult back = deserialize_ensemble_result(bytes);
  EXPECT_EQ(serialize(back), bytes);
  EXPECT_EQ(result_digest(back).hex(), result_digest(r).hex());
  EXPECT_EQ(back.runtimes_ms, r.runtimes_ms);
}

TEST(Serialize, StrictRejection) {
  const core::RunResult r = core::run_production(small_cfg());
  auto bytes = serialize(r);
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)deserialize_run_result(truncated), SerializeError);
  auto overlong = bytes;
  overlong.push_back(0);
  EXPECT_THROW((void)deserialize_run_result(overlong), SerializeError);
  EXPECT_THROW((void)deserialize_ensemble_result(bytes), SerializeError);
  EXPECT_THROW((void)deserialize_run_result({}), SerializeError);
}

// ---------------------------------------------------------------------- cache

TEST(ResultCache, MemoryHitMissStore) {
  ResultCache cache = ResultCache::memory_only();
  const Fingerprint fp = scenario_fingerprint(small_cfg());
  EXPECT_FALSE(cache.load(fp).has_value());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  cache.store(fp, payload);
  const auto hit = cache.load(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.mem_hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.stores, 1u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
}

TEST(ResultCache, PersistsAcrossInstances) {
  const std::string dir = scratch_dir("persist");
  const Fingerprint fp = scenario_fingerprint(small_cfg());
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  {
    ResultCache::Options o;
    o.dir = dir;
    ResultCache cache(o);
    cache.store(fp, payload);
  }
  ResultCache::Options o;
  o.dir = dir;
  ResultCache cache(o);
  const auto hit = cache.load(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  EXPECT_EQ(cache.stats().bytes_read, payload.size());
}

TEST(ResultCache, PoisonedEntryIsAMissNeverAWrongAnswer) {
  const std::string dir = scratch_dir("poison");
  const Fingerprint fp = scenario_fingerprint(small_cfg());
  ResultCache::Options o;
  o.dir = dir;
  {
    ResultCache cache(o);
    cache.store(fp, std::vector<std::uint8_t>{5, 5, 5, 5, 5, 5, 5, 5});
  }
  // Flip one payload byte behind the checksum's back.
  ResultCache probe(o);
  const std::string path = probe.entry_path(fp);
  std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file(path, bytes);
  {
    ResultCache cache(o);  // fresh instance: no LRU shortcut past the disk
    EXPECT_FALSE(cache.load(fp).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
  }
  // A truncated entry and foreign bytes are also misses.
  write_file(path, bytes.substr(0, 10));
  {
    ResultCache cache(o);
    EXPECT_FALSE(cache.load(fp).has_value());
  }
  write_file(path, "not a cache entry at all");
  {
    ResultCache cache(o);
    EXPECT_FALSE(cache.load(fp).has_value());
    // A fresh store repairs the slot.
    cache.store(fp, std::vector<std::uint8_t>{1});
    ResultCache again(o);
    const auto hit = again.load(fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->size(), 1u);
  }
}

TEST(ResultCache, GcPrunesColdestEntriesToFitTheBudget) {
  const std::string dir = scratch_dir("gc");
  ResultCache::Options o;
  o.dir = dir;
  ResultCache cache(o);

  // Three committed entries with controlled coldness, plus an orphaned
  // in-flight write from a "killed" process.
  auto fp_for = [](std::uint64_t seed) {
    core::ScenarioConfig cfg = small_cfg();
    cfg.seed = seed;
    return scenario_fingerprint(cfg);
  };
  const Fingerprint cold = fp_for(101), warm = fp_for(102), hot = fp_for(103);
  const std::vector<std::uint8_t> payload(100, 0x5a);
  cache.store(cold, payload);
  cache.store(warm, payload);
  cache.store(hot, payload);
  write_file(dir + "/tmp-deadbeef-123", "torn in-flight write");

  const auto entry_bytes =
      static_cast<std::uint64_t>(fs::file_size(cache.entry_path(hot)));
  using namespace std::chrono_literals;
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(cache.entry_path(cold), now - 3h);
  fs::last_write_time(cache.entry_path(warm), now - 2h);
  fs::last_write_time(cache.entry_path(hot), now - 1h);

  // Budget fits exactly two entries: the coldest goes, plus the orphan.
  const std::uint64_t removed = cache.gc(2 * entry_bytes);
  EXPECT_EQ(removed, 1u);
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.gc_removed, 2u);  // cold entry + orphaned tmp file
  EXPECT_EQ(st.gc_kept, 2u);
  EXPECT_EQ(st.gc_kept_bytes, 2 * entry_bytes);
  EXPECT_FALSE(fs::exists(cache.entry_path(cold)));
  EXPECT_TRUE(fs::exists(cache.entry_path(warm)));
  EXPECT_TRUE(fs::exists(cache.entry_path(hot)));
  EXPECT_FALSE(fs::exists(dir + "/tmp-deadbeef-123"));

  // A pruned entry reads as a miss even though this instance stored it:
  // gc evicts the memory copy too, so the budget accounting stays honest.
  EXPECT_FALSE(cache.load(cold).has_value());
  EXPECT_TRUE(cache.load(warm).has_value());
  EXPECT_TRUE(cache.load(hot).has_value());

  // A budget the directory already fits is a no-op pass.
  EXPECT_EQ(cache.gc(std::uint64_t{1} << 40), 0u);
  EXPECT_EQ(cache.stats().gc_removed, 0u);
  EXPECT_EQ(cache.stats().gc_kept, 2u);
}

TEST(ResultCache, GcDiskHitRefreshesColdness) {
  const std::string dir = scratch_dir("gc_refresh");
  ResultCache::Options o;
  o.dir = dir;
  const Fingerprint a = scenario_fingerprint(small_cfg());
  core::ScenarioConfig cfg_b = small_cfg();
  cfg_b.seed = 999;
  const Fingerprint b = scenario_fingerprint(cfg_b);
  {
    ResultCache cache(o);
    cache.store(a, std::vector<std::uint8_t>(50, 1));
    cache.store(b, std::vector<std::uint8_t>(50, 2));
  }
  ResultCache cache(o);  // fresh instance: loads go to disk
  using namespace std::chrono_literals;
  const auto now = fs::file_time_type::clock::now();
  // `a` starts colder than `b` — then a disk hit rewarms it.
  fs::last_write_time(cache.entry_path(a), now - 3h);
  fs::last_write_time(cache.entry_path(b), now - 1h);
  ASSERT_TRUE(cache.load(a).has_value());
  const auto entry_bytes =
      static_cast<std::uint64_t>(fs::file_size(cache.entry_path(a)));
  ASSERT_EQ(cache.gc(entry_bytes), 1u);  // room for one survivor
  EXPECT_TRUE(fs::exists(cache.entry_path(a)));   // recently used: kept
  EXPECT_FALSE(fs::exists(cache.entry_path(b)));  // now the coldest: pruned
}

TEST(ResultCache, GcIsANoOpOnMemoryOnlyCaches) {
  ResultCache cache = ResultCache::memory_only();
  cache.store(scenario_fingerprint(small_cfg()), std::vector<std::uint8_t>{1});
  EXPECT_EQ(cache.gc(0), 0u);
  EXPECT_EQ(cache.stats().gc_removed, 0u);
  EXPECT_TRUE(cache.load(scenario_fingerprint(small_cfg())).has_value());
}

TEST(ResultCache, CachedProductionRunIsByteIdentical) {
  ResultCache cache = ResultCache::memory_only();
  const core::ScenarioConfig cfg = small_cfg();
  const CachedRun first = run_cached_production(cfg, cache);
  ASSERT_TRUE(first.result.ok);
  EXPECT_FALSE(first.from_cache);
  const CachedRun second = run_cached_production(cfg, cache);
  EXPECT_TRUE(second.from_cache);
  // A hit reproduces the stored result exactly, telemetry included.
  EXPECT_EQ(serialize(second.result), serialize(first.result));
  // Across independent runs only the canonical (model-only) form is
  // comparable: ShardExecStats is wall clock.
  EXPECT_EQ(canon(first.result), canon(core::run_production(cfg)));
}

// ------------------------------------------------------------------ snapshots

TEST(EngineSnapshot, BytesRoundTrip) {
  sim::EngineSnapshot s;
  s.scenario_hi = 0x1111222233334444ULL;
  s.scenario_lo = 0x5555666677778888ULL;
  s.salt = kEngineVersionSalt;
  s.checkpoint_time = 123456;
  s.shards = {{123456, 42}, {123456, 7}};
  s.digest_hi = 1;
  s.digest_lo = 2;
  const auto bytes = s.to_bytes();
  const sim::EngineSnapshot back = sim::EngineSnapshot::from_bytes(bytes);
  EXPECT_TRUE(back == s);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW((void)sim::EngineSnapshot::from_bytes(truncated),
               sim::SnapshotError);
  auto overlong = bytes;
  overlong.push_back(0);
  EXPECT_THROW((void)sim::EngineSnapshot::from_bytes(overlong),
               sim::SnapshotError);
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW((void)sim::EngineSnapshot::from_bytes(bad_magic),
               sim::SnapshotError);
  EXPECT_THROW((void)sim::EngineSnapshot::from_bytes({}), sim::SnapshotError);
}

/// Checkpoint interval that lands a handful of snapshots inside the
/// measurement phase of `cfg`.
sim::Tick interval_for(const core::ScenarioConfig& cfg, int pieces) {
  const core::RunResult plain = core::run_production(cfg);
  EXPECT_TRUE(plain.ok);
  const auto ticks =
      static_cast<sim::Tick>(plain.runtime_ms * sim::kMillisecond);
  return std::max<sim::Tick>(ticks / pieces, 1);
}

TEST(Checkpoint, SlicedRunIsByteIdenticalAndTakesSnapshots) {
  const core::ScenarioConfig cfg = small_cfg();
  const core::RunResult plain = core::run_production(cfg);
  ASSERT_TRUE(plain.ok);

  CheckpointOptions opt;
  opt.interval = interval_for(cfg, 5);
  std::vector<sim::EngineSnapshot> snaps;
  opt.sink = [&](const sim::EngineSnapshot& s) { snaps.push_back(s); };
  const core::RunResult sliced = run_production_checkpointed(cfg, opt);
  ASSERT_TRUE(sliced.ok);

  // Checkpointing at >= 3 distinct sim times must not perturb the model.
  EXPECT_GE(snaps.size(), 3u);
  for (std::size_t i = 1; i < snaps.size(); ++i)
    EXPECT_GT(snaps[i].checkpoint_time, snaps[i - 1].checkpoint_time);
  EXPECT_EQ(canon(sliced), canon(plain));
  EXPECT_EQ(result_digest(sliced).hex(), result_digest(plain).hex());
}

TEST(Checkpoint, SlicedRunByteIdenticalInBothFamilies) {
  for (const int shards : {0, 2}) {
    core::ScenarioConfig cfg = small_cfg();
    cfg.shards = shards;
    const core::RunResult plain = core::run_production(cfg);
    ASSERT_TRUE(plain.ok);
    CheckpointOptions opt;
    opt.interval = interval_for(cfg, 4);
    const core::RunResult sliced = run_production_checkpointed(cfg, opt);
    ASSERT_TRUE(sliced.ok);
    EXPECT_EQ(canon(sliced), canon(plain)) << "shards=" << shards;
  }
}

TEST(Checkpoint, RestoreFromMidRunSnapshotIsByteIdentical) {
  const core::ScenarioConfig cfg = small_cfg();
  const core::RunResult plain = core::run_production(cfg);
  ASSERT_TRUE(plain.ok);

  CheckpointOptions opt;
  opt.interval = interval_for(cfg, 4);
  std::vector<sim::EngineSnapshot> snaps;
  opt.sink = [&](const sim::EngineSnapshot& s) { snaps.push_back(s); };
  (void)run_production_checkpointed(cfg, opt);
  ASSERT_GE(snaps.size(), 2u);

  // Restore from an early and a late snapshot: both must verify and finish
  // byte-identical to the run that never stopped.
  for (const auto& snap : {snaps.front(), snaps.back()}) {
    const core::RunResult restored = restore_production(cfg, snap);
    ASSERT_TRUE(restored.ok) << restored.fail_reason;
    EXPECT_EQ(canon(restored), canon(plain));
  }
}

TEST(Checkpoint, RestoreRejectsForeignSnapshots) {
  const core::ScenarioConfig cfg = small_cfg();
  CheckpointOptions opt;
  opt.interval = interval_for(cfg, 3);
  std::vector<sim::EngineSnapshot> snaps;
  opt.sink = [&](const sim::EngineSnapshot& s) { snaps.push_back(s); };
  (void)run_production_checkpointed(cfg, opt);
  ASSERT_FALSE(snaps.empty());
  const sim::EngineSnapshot good = snaps.front();

  auto expect_rejected = [&](sim::EngineSnapshot bad, const char* what) {
    const core::RunResult r = restore_production(cfg, bad);
    EXPECT_FALSE(r.ok) << what;
    EXPECT_EQ(r.fail_reason.rfind("restore rejected:", 0), 0u)
        << what << ": " << r.fail_reason;
  };
  sim::EngineSnapshot wrong_salt = good;
  wrong_salt.salt = "dfsim-engine/v0";
  expect_rejected(wrong_salt, "salt mismatch");

  sim::EngineSnapshot wrong_scenario = good;
  wrong_scenario.scenario_lo ^= 1;
  expect_rejected(wrong_scenario, "fingerprint mismatch");

  sim::EngineSnapshot wrong_digest = good;
  wrong_digest.digest_lo ^= 1;
  expect_rejected(wrong_digest, "digest mismatch");

  // A snapshot for a DIFFERENT scenario of the same engine: fingerprint
  // check catches it before any replay happens.
  core::ScenarioConfig other = cfg;
  other.seed = 77;
  const core::RunResult r = restore_production(other, good);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.fail_reason.find("does not match scenario"), std::string::npos);
}

// --------------------------------------------------------------------- runner

std::vector<SweepCell> grid3() {
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    SweepCell c;
    c.cfg = small_cfg();
    c.cfg.seed = seed;
    c.label = "seed=" + std::to_string(seed);
    cells.push_back(std::move(c));
  }
  return cells;
}

TEST(Runner, JournalsEveryCellAndReportsOutcome) {
  const std::string dir = scratch_dir("runner_clean");
  ResultCache cache = ResultCache::memory_only();
  RunnerOptions opt;
  opt.out_path = dir + "/sweep.jsonl";
  Runner runner(grid3(), cache, opt);
  const Runner::Outcome oc = runner.run();
  ASSERT_TRUE(oc.ok) << oc.error;
  EXPECT_EQ(oc.total, 3);
  EXPECT_EQ(oc.executed, 3);
  EXPECT_EQ(oc.served, 0);
  EXPECT_EQ(oc.skipped, 0);
  EXPECT_EQ(oc.failed, 0);

  const std::string bytes = read_file(opt.out_path);
  EXPECT_EQ(std::count(bytes.begin(), bytes.end(), '\n'), 3);
  EXPECT_NE(bytes.find("\"label\":\"seed=6\""), std::string::npos);
  EXPECT_NE(bytes.find("\"ok\":true"), std::string::npos);
  // Deterministic fields only: no wall clock, no cache provenance.
  EXPECT_EQ(bytes.find("wall"), std::string::npos);
  EXPECT_EQ(bytes.find("cached"), std::string::npos);
}

TEST(Runner, ResumeAfterTornJournalIsByteIdentical) {
  const std::string dir = scratch_dir("runner_resume");
  const std::string clean_path = dir + "/clean.jsonl";
  {
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = clean_path;
    ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);
  }
  const std::string clean = read_file(clean_path);
  const std::size_t first_nl = clean.find('\n');
  ASSERT_NE(first_nl, std::string::npos);

  // The SIGKILL shape: one durable line plus a torn fragment of the next.
  const std::string resumed_path = dir + "/resumed.jsonl";
  write_file(resumed_path,
             clean.substr(0, first_nl + 1) + "{\"i\":1,\"label\":\"se");
  ResultCache cache = ResultCache::memory_only();
  RunnerOptions opt;
  opt.out_path = resumed_path;
  opt.resume = true;
  const Runner::Outcome oc = Runner(grid3(), cache, opt).run();
  ASSERT_TRUE(oc.ok) << oc.error;
  EXPECT_EQ(oc.skipped, 1);
  EXPECT_EQ(oc.executed, 2);
  EXPECT_EQ(read_file(resumed_path), clean);
}

TEST(Runner, ResumeDiscardsDivergentTail) {
  const std::string dir = scratch_dir("runner_diverge");
  const std::string clean_path = dir + "/clean.jsonl";
  {
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = clean_path;
    ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);
  }
  const std::string clean = read_file(clean_path);
  const std::size_t first_nl = clean.find('\n');

  // A journal whose second line belongs to some OTHER grid (wrong
  // fingerprint): resume must re-run from cell 1, not trust it.
  std::string second = clean.substr(first_nl + 1,
                                    clean.find('\n', first_nl + 1) - first_nl);
  const std::size_t at = second.find("\"fp\":\"");
  ASSERT_NE(at, std::string::npos);
  second[at + 6] = second[at + 6] == '0' ? '1' : '0';
  const std::string path = dir + "/diverged.jsonl";
  write_file(path, clean.substr(0, first_nl + 1) + second);

  ResultCache cache = ResultCache::memory_only();
  RunnerOptions opt;
  opt.out_path = path;
  opt.resume = true;
  const Runner::Outcome oc = Runner(grid3(), cache, opt).run();
  ASSERT_TRUE(oc.ok) << oc.error;
  EXPECT_EQ(oc.skipped, 1);
  EXPECT_EQ(oc.executed, 2);
  EXPECT_EQ(read_file(path), clean);
}

TEST(Runner, SecondPassServesEverythingFromCache) {
  const std::string dir = scratch_dir("runner_warm");
  ResultCache::Options o;
  o.dir = dir + "/cache";
  ResultCache cache(o);
  RunnerOptions opt;
  opt.out_path = dir + "/a.jsonl";
  ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);

  // New cache instance on the same directory: hits must come from disk.
  ResultCache warm(o);
  RunnerOptions opt2;
  opt2.out_path = dir + "/b.jsonl";
  const Runner::Outcome oc = Runner(grid3(), warm, opt2).run();
  ASSERT_TRUE(oc.ok);
  EXPECT_EQ(oc.served, 3);
  EXPECT_EQ(oc.executed, 0);
  EXPECT_EQ(warm.stats().hits, 3u);
  EXPECT_EQ(read_file(dir + "/b.jsonl"), read_file(dir + "/a.jsonl"));
}

TEST(Runner, ParallelCellsWriteAByteIdenticalJournal) {
  // --cell-jobs is wall-clock only: a grid fanned out over many workers
  // must commit its journal records in strict cell order and produce the
  // exact bytes of the serial sweep, so resume semantics are width-blind.
  const std::string dir = scratch_dir("runner_parallel");
  const std::string serial_path = dir + "/serial.jsonl";
  {
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = serial_path;
    opt.cell_jobs = 1;
    ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);
  }
  const std::string serial = read_file(serial_path);
  for (const int jobs : {2, 4}) {
    SCOPED_TRACE(jobs);
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = dir + "/par" + std::to_string(jobs) + ".jsonl";
    opt.cell_jobs = jobs;
    const Runner::Outcome oc = Runner(grid3(), cache, opt).run();
    ASSERT_TRUE(oc.ok) << oc.error;
    EXPECT_EQ(oc.executed, 3);
    EXPECT_EQ(oc.failed, 0);
    EXPECT_EQ(read_file(opt.out_path), serial);
  }
}

TEST(Runner, ParallelSweepResumesFromASerialJournal) {
  // A journal prefix written at one width must be resumable at another.
  const std::string dir = scratch_dir("runner_parallel_resume");
  const std::string path = dir + "/sweep.jsonl";
  {
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = path;
    ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);
  }
  const std::string clean = read_file(path);
  const std::size_t first_nl = clean.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  write_file(path, clean.substr(0, first_nl + 1));

  ResultCache cache = ResultCache::memory_only();
  RunnerOptions opt;
  opt.out_path = path;
  opt.resume = true;
  opt.cell_jobs = 4;
  const Runner::Outcome oc = Runner(grid3(), cache, opt).run();
  ASSERT_TRUE(oc.ok) << oc.error;
  EXPECT_EQ(oc.skipped, 1);
  EXPECT_EQ(oc.executed, 2);
  EXPECT_EQ(read_file(path), clean);
}

TEST(Runner, CheckpointedCellsMatchPlainCells) {
  const std::string dir = scratch_dir("runner_ckpt");
  const std::string plain_path = dir + "/plain.jsonl";
  {
    ResultCache cache = ResultCache::memory_only();
    RunnerOptions opt;
    opt.out_path = plain_path;
    ASSERT_TRUE(Runner(grid3(), cache, opt).run().ok);
  }
  ResultCache cache = ResultCache::memory_only();
  RunnerOptions opt;
  opt.out_path = dir + "/ckpt.jsonl";
  opt.checkpoint_interval = interval_for(small_cfg(), 4);
  const Runner::Outcome oc = Runner(grid3(), cache, opt).run();
  ASSERT_TRUE(oc.ok);
  EXPECT_GE(oc.snapshots, 3u);
  EXPECT_EQ(read_file(dir + "/ckpt.jsonl"), read_file(plain_path));
}

// ------------------------------------------------------------------ ensembles

TEST(CachedEnsemble, MatchesUncachedAndThenHits) {
  core::ScenarioConfig cfg = small_cfg();
  cfg.bg_utilization = 0.4;  // distinct per-seed outcomes
  const int samples = 3;
  core::BatchOptions bopt;
  bopt.jobs = 2;
  const core::BatchResult plain =
      core::run_production_ensemble(cfg, samples, bopt);
  ASSERT_EQ(plain.failures(), 0);

  ResultCache cache = ResultCache::memory_only();
  const core::BatchResult cached =
      run_cached_production_ensemble(cfg, samples, bopt, cache);
  ASSERT_EQ(cached.failures(), 0);
  ASSERT_EQ(cached.results.size(), plain.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i)
    EXPECT_EQ(canon(cached.results[i]), canon(plain.results[i])) << i;
  EXPECT_EQ(cache.stats().misses, static_cast<std::uint64_t>(samples));

  // Second pass: every trial served, results still byte-identical.
  const core::BatchResult warm =
      run_cached_production_ensemble(cfg, samples, bopt, cache);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(samples));
  for (std::size_t i = 0; i < plain.results.size(); ++i)
    EXPECT_EQ(canon(warm.results[i]), canon(plain.results[i])) << i;
}

TEST(CachedEnsemble, FailedTrialsCarryIndexAndFingerprint) {
  core::ScenarioConfig cfg = small_cfg();
  cfg.event_budget = 1000;  // guaranteed budget exhaustion
  ResultCache cache = ResultCache::memory_only();
  core::BatchOptions bopt;
  bopt.jobs = 1;
  const core::BatchResult b =
      run_cached_production_ensemble(cfg, 2, bopt, cache);
  ASSERT_EQ(b.trials.size(), 2u);
  for (const auto& t : b.trials) {
    ASSERT_FALSE(t.ok);
    EXPECT_NE(t.fail_reason.find("[trial " + std::to_string(t.index) + " fp="),
              std::string::npos)
        << t.fail_reason;
  }
  // Same tag as the uncached ensemble produces.
  const core::BatchResult plain = core::run_production_ensemble(cfg, 2, bopt);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(b.trials[i].fail_reason, plain.trials[i].fail_reason);
}

// ------------------------------------------------------------------ reporting

TEST(Report, CacheSummaryLine) {
  std::ostringstream quiet;
  core::print_cache_summary(quiet, CacheStats{});
  EXPECT_TRUE(quiet.str().empty());

  CacheStats st;
  st.hits = 3;
  st.mem_hits = 2;
  st.misses = 1;
  st.stores = 1;
  st.corrupt = 1;
  std::ostringstream os;
  core::print_cache_summary(os, st);
  EXPECT_NE(os.str().find("hit rate"), std::string::npos);
  EXPECT_NE(os.str().find("corrupt"), std::string::npos);
  // No gc pass ran: no gc line.
  EXPECT_EQ(os.str().find("cache gc"), std::string::npos);

  st.gc_removed = 2;
  st.gc_removed_bytes = 4096;
  st.gc_kept = 5;
  st.gc_kept_bytes = 10240;
  std::ostringstream gc;
  core::print_cache_summary(gc, st);
  EXPECT_NE(gc.str().find("cache gc: pruned 2 entries"), std::string::npos);
  EXPECT_NE(gc.str().find("kept 5"), std::string::npos);
}

}  // namespace
}  // namespace dfsim::campaign
