// Tests: deterministic parallel trial runner and the batch entry points
// built on it — seed derivation, submission-order results, bit-identical
// output across worker counts, failed-trial reporting, per-class flit
// times, and the throttle-tick drain regression.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::core {
namespace {

ProductionConfig small_cfg() {
  ProductionConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.placement = sched::Placement::kRandom;
  cfg.bg_utilization = 0.3;  // some noise so seeds matter
  cfg.warmup = 10 * sim::kMicrosecond;
  cfg.seed = 5;
  return cfg;
}

// --- seed derivation & worker resolution ---

TEST(Runner, DeriveTrialSeedsMatchesLegacySerialSequence) {
  // The historical serial batch loop drew one sim::Rng::next() per trial
  // from a seeder constructed on the root seed. The parallel runner must
  // reproduce that exact sequence or old results become unreproducible.
  const std::uint64_t root = 42;
  const auto seeds = derive_trial_seeds(root, 8);
  ASSERT_EQ(seeds.size(), 8u);
  sim::Rng seeder(root);
  for (const std::uint64_t s : seeds) EXPECT_EQ(s, seeder.next());
  // Distinct per trial.
  for (std::size_t i = 1; i < seeds.size(); ++i)
    EXPECT_NE(seeds[i], seeds[0]);
}

TEST(Runner, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);   // hardware concurrency, at least one
  EXPECT_GE(resolve_jobs(-3), 1);
}

// --- TrialRunner mechanics ---

TEST(Runner, MapReturnsResultsInSubmissionOrder) {
  TrialRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4);
  const auto out = runner.map(33, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 33u);
  for (int i = 0; i < 33; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  EXPECT_EQ(runner.stats().trials, 33);
  EXPECT_EQ(runner.stats().jobs, 4);
  EXPECT_GE(runner.stats().wall_ms, 0.0);
}

TEST(Runner, MapRunsEveryIndexExactlyOnce) {
  TrialRunner runner(8);
  std::vector<std::atomic<int>> hits(64);
  runner.map(64, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
    return 0;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, MapHandlesEmptyAndSerialFallback) {
  TrialRunner runner(1);
  EXPECT_TRUE(runner.map(0, [](int) { return 1; }).empty());
  const auto out = runner.map(3, [](int i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Runner, MapRethrowsFirstTrialException) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.map(16,
                          [](int i) -> int {
                            if (i == 5) throw std::runtime_error("trial 5");
                            return i;
                          }),
               std::runtime_error);
}

// --- map_streamed: parallel execution, strictly ordered commits ---

TEST(Runner, MapStreamedCommitsEveryIndexInOrder) {
  TrialRunner runner(4);
  std::vector<int> order;
  const auto out = runner.map_streamed(
      33, [](int i) { return i * 2; },
      [&](int i, int& r) {
        EXPECT_EQ(r, i * 2);  // the commit sees its own trial's result
        order.push_back(i);
      });
  ASSERT_EQ(out.size(), 33u);
  for (int i = 0; i < 33; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
  // Commits ran in strict submission order regardless of worker timing.
  ASSERT_EQ(order.size(), 33u);
  for (int i = 0; i < 33; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Runner, MapStreamedCommitMayShrinkItsSlot) {
  // The documented memory-bounding idiom: a commit that persisted its
  // result drops the heavy payload in place.
  TrialRunner runner(3);
  const auto out = runner.map_streamed(
      8, [](int i) { return std::vector<int>(100, i); },
      [](int, std::vector<int>& r) { r.clear(); });
  for (const auto& v : out) EXPECT_TRUE(v.empty());
}

TEST(Runner, MapStreamedCommitStreamEndsAsPrefixOnThrow) {
  // A throwing commit aborts the batch; no later index may ever commit
  // (a retry would double-write a journal line). The committed set must
  // be exactly the prefix before the throw.
  TrialRunner runner(4);
  std::vector<int> committed;
  EXPECT_THROW(runner.map_streamed(
                   16, [](int i) { return i; },
                   [&](int i, int&) {
                     if (i == 3) throw std::runtime_error("commit 3");
                     committed.push_back(i);
                   }),
               std::runtime_error);
  EXPECT_EQ(committed, (std::vector<int>{0, 1, 2}));
}

TEST(Runner, MapStreamedSerialFallbackInterleavesCommitAfterEachTrial) {
  TrialRunner runner(1);
  std::vector<std::string> events;
  (void)runner.map_streamed(
      3,
      [&](int i) {
        events.push_back("run" + std::to_string(i));
        return i;
      },
      [&](int i, int&) { events.push_back("commit" + std::to_string(i)); });
  EXPECT_EQ(events, (std::vector<std::string>{"run0", "commit0", "run1",
                                              "commit1", "run2", "commit2"}));
}

TEST(Runner, StatsReportThroughput) {
  RunnerStats s;
  s.trials = 10;
  s.wall_ms = 500.0;
  EXPECT_DOUBLE_EQ(s.trials_per_sec(), 20.0);
  s.wall_ms = 0.0;
  EXPECT_DOUBLE_EQ(s.trials_per_sec(), 0.0);
}

// --- determinism across worker counts (the tentpole guarantee) ---

TEST(Runner, ProductionBatchBitIdenticalAcrossJobCounts) {
  const ProductionConfig cfg = small_cfg();
  const auto serial = run_production_batch(cfg, 5, 1);
  const auto parallel = run_production_batch(cfg, 5, 4);
  ASSERT_EQ(serial.size(), 5u);
  ASSERT_EQ(parallel.size(), 5u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << "sample " << i << ": " << serial[i].fail_reason;
    ASSERT_TRUE(parallel[i].ok);
    // Bit-identical simulation outcomes, not approximately equal.
    EXPECT_EQ(serial[i].runtime_ms, parallel[i].runtime_ms) << "sample " << i;
    EXPECT_EQ(serial[i].global.rank3.flits, parallel[i].global.rank3.flits);
    EXPECT_EQ(serial[i].global.rank1.stall_ns, parallel[i].global.rank1.stall_ns);
    EXPECT_EQ(serial[i].netstats.packets_injected,
              parallel[i].netstats.packets_injected);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
  }
}

TEST(Runner, ProductionBatchMatchesLegacySerialLoop) {
  // The pre-runner implementation: seed a sim::Rng on cfg.seed and run each
  // sample with seeder.next(). The ensemble must reproduce it exactly.
  const ProductionConfig cfg = small_cfg();
  sim::Rng seeder(cfg.seed);
  std::vector<RunResult> legacy;
  for (int i = 0; i < 3; ++i) {
    ProductionConfig c = cfg;
    c.seed = seeder.next();
    legacy.push_back(run_production(c));
  }
  const auto batch = run_production_ensemble(cfg, 3, BatchOptions{2});
  ASSERT_EQ(batch.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(legacy[i].ok && batch.results[i].ok);
    EXPECT_EQ(legacy[i].runtime_ms, batch.results[i].runtime_ms);
    EXPECT_EQ(legacy[i].netstats.packets_injected,
              batch.results[i].netstats.packets_injected);
  }
}

TEST(Runner, ControlledEnsembleBitIdenticalAcrossJobCounts) {
  EnsembleConfig cfg;
  cfg.system = topo::Config::mini(4);
  cfg.app = "MILC";
  cfg.njobs = 3;
  cfg.nnodes = 16;
  cfg.params.iterations = 2;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.ldms_period = 20 * sim::kMicrosecond;
  cfg.seed = 9;
  const auto serial = run_controlled_ensemble(cfg, 3, BatchOptions{1});
  const auto parallel = run_controlled_ensemble(cfg, 3, BatchOptions{3});
  ASSERT_EQ(serial.results.size(), 3u);
  ASSERT_EQ(parallel.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = serial.results[i];
    const auto& b = parallel.results[i];
    ASSERT_TRUE(a.ok) << a.fail_reason;
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.runtimes_ms, b.runtimes_ms);
    EXPECT_EQ(a.total.rank3.flits, b.total.rank3.flits);
    EXPECT_EQ(a.total.proc_req.stall_ns, b.total.proc_req.stall_ns);
    EXPECT_EQ(a.events_executed, b.events_executed);
  }
  EXPECT_EQ(serial.failures(), 0);
  EXPECT_EQ(parallel.failures(), 0);
}

// --- failed-trial reporting (the silently-dropped-samples bugfix) ---

TEST(Runner, TinyEventBudgetSurfacesAsFailedTrials) {
  ProductionConfig cfg = small_cfg();
  cfg.event_budget = 1000;  // far too small to finish any run
  const auto batch = run_production_ensemble(cfg, 4, BatchOptions{2});
  ASSERT_EQ(batch.results.size(), 4u);
  ASSERT_EQ(batch.trials.size(), 4u);
  EXPECT_EQ(batch.failures(), 4);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& r = batch.results[i];
    const auto& t = batch.trials[i];
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.budget_exhausted);
    EXPECT_NE(r.fail_reason.find("event budget exhausted"), std::string::npos)
        << r.fail_reason;
    EXPECT_EQ(t.index, static_cast<int>(i));
    EXPECT_FALSE(t.ok);
    EXPECT_TRUE(t.budget_exhausted);
    // The trial report prefixes the raw failure with the trial index and
    // the scenario fingerprint of the exact (config, derived-seed) that
    // failed, so a failed cell in a big campaign is attributable without
    // re-running it.
    const std::string tag = "[trial " + std::to_string(i) + " fp=";
    EXPECT_EQ(t.fail_reason.rfind(tag, 0), 0u) << t.fail_reason;
    EXPECT_NE(t.fail_reason.find("] " + r.fail_reason), std::string::npos)
        << t.fail_reason;
    EXPECT_EQ(t.events, r.events_executed);
    EXPECT_GE(t.wall_ms, 0.0);
  }
  EXPECT_EQ(batch.stats.trials, 4);
}

TEST(Runner, BatchKeepsAllocationFailuresInPlace) {
  ProductionConfig cfg = small_cfg();
  cfg.nnodes = 100000;  // impossible on the mini system
  const auto rs = run_production_batch(cfg, 3);
  ASSERT_EQ(rs.size(), 3u);  // previously failed runs were dropped
  for (const auto& r : rs) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.fail_reason.find("allocation failed"), std::string::npos)
        << r.fail_reason;
  }
}

TEST(Runner, SuccessfulTrialsReportOkWithEventCounts) {
  const auto batch = run_production_ensemble(small_cfg(), 2, BatchOptions{2});
  ASSERT_EQ(batch.trials.size(), 2u);
  EXPECT_EQ(batch.failures(), 0);
  for (const auto& t : batch.trials) {
    EXPECT_TRUE(t.ok);
    EXPECT_TRUE(t.fail_reason.empty());
    EXPECT_FALSE(t.budget_exhausted);
    EXPECT_GT(t.events, 0u);
  }
  EXPECT_EQ(batch.stats.jobs, 2);
  EXPECT_GT(batch.stats.wall_ms, 0.0);
}

}  // namespace
}  // namespace dfsim::core

namespace dfsim::net {
namespace {

// --- per-tile-class flit serialization times (the stall-ratio bugfix) ---

TEST(FlitTimes, PerClassBandwidthsFromConfig) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.flit_bytes = 16;
  cfg.rank1_bw_gbps = 10.5;
  cfg.rank2_bw_gbps = 10.5;
  cfg.rank2_parallel = 3;
  cfg.rank3_bw_gbps = 9.38;
  cfg.inject_bw_gbps = 10.0;
  const FlitTimes ft = FlitTimes::from_config(cfg);
  EXPECT_DOUBLE_EQ(ft.rank1, 16.0 / 10.5);
  EXPECT_DOUBLE_EQ(ft.rank2, 16.0 / (10.5 * 3));
  EXPECT_DOUBLE_EQ(ft.rank3, 16.0 / 9.38);
  EXPECT_DOUBLE_EQ(ft.proc, 16.0 / 10.0);
  // Optical rank-3 flits serialize slower than rank-1 copper; folded rank-2
  // ports are the fastest.
  EXPECT_GT(ft.rank3, ft.rank1);
  EXPECT_LT(ft.rank2, ft.rank1);
}

TEST(FlitTimes, NetworkExposesThem) {
  const topo::Config cfg = topo::Config::mini(2);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  Network net(eng, topo, 1);
  const FlitTimes ft = net.flit_times();
  EXPECT_DOUBLE_EQ(ft.rank1,
                   static_cast<double>(cfg.flit_bytes) / cfg.rank1_bw_gbps);
  EXPECT_DOUBLE_EQ(ft.rank3,
                   static_cast<double>(cfg.flit_bytes) / cfg.rank3_bw_gbps);
}

TEST(FlitTimes, StallRatiosUseMatchingClassBandwidth) {
  // Identical raw counters in every class: the per-class conversion must
  // yield per-class ratios proportional to 1/flit_time, not a single
  // rank-1-based value for all classes (the old bug).
  CounterSnapshot s;
  s.rank1 = {100, 1000};
  s.rank2 = {100, 1000};
  s.rank3 = {100, 1000};
  s.proc_req = {100, 1000};
  s.proc_rsp = {100, 1000};
  const FlitTimes ft{2.0, 0.5, 4.0, 8.0};  // rank1, rank2, rank3, proc
  const auto r = core::stall_ratios(s, ft);
  EXPECT_DOUBLE_EQ(r[0], 1000.0 / 4.0 / 100.0);  // Rank3
  EXPECT_DOUBLE_EQ(r[1], 1000.0 / 0.5 / 100.0);  // Rank2
  EXPECT_DOUBLE_EQ(r[2], 1000.0 / 2.0 / 100.0);  // Rank1
  EXPECT_DOUBLE_EQ(r[3], 1000.0 / 8.0 / 100.0);  // Proc_req
  EXPECT_DOUBLE_EQ(r[4], 1000.0 / 8.0 / 100.0);  // Proc_rsp
}

// --- throttle tick must not keep the event queue alive forever ---

TEST(ThrottleDrain, EventQueueDrainsWhenThrottledNetworkGoesIdle) {
  topo::Config cfg = topo::Config::mini(2);
  cfg.throttle_enabled = true;
  cfg.throttle_window = 20 * sim::kMicrosecond;
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  Network net(eng, topo, 7);
  int done = 0;
  for (topo::NodeId src = 1; src < 8; ++src)
    net.send_message(src, 0, 64 * 1024, routing::Mode::kAd0, [&] { ++done; });
  // Before the fix the periodic throttle tick rescheduled itself forever,
  // so run() only returned by exhausting the event budget.
  eng.set_event_budget(50'000'000ULL);
  eng.run();
  EXPECT_FALSE(eng.budget_exhausted());
  EXPECT_EQ(done, 7);
  EXPECT_EQ(net.packets_in_flight(), 0);
}

TEST(ThrottleDrain, TickRestartsForTrafficAfterIdle) {
  topo::Config cfg = topo::Config::mini(2);
  cfg.throttle_enabled = true;
  cfg.throttle_window = 10 * sim::kMicrosecond;
  cfg.throttle_hi_ratio = 1.0;  // engage easily
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  Network net(eng, topo, 7);
  for (topo::NodeId src = 1; src < 16; ++src)
    net.send_message(src, 0, 256 * 1024, routing::Mode::kAd0, {});
  eng.set_event_budget(100'000'000ULL);
  eng.run();  // drains, tick stops
  ASSERT_FALSE(eng.budget_exhausted());
  const auto activations = net.stats().throttle_activations;
  // A second burst after full idle must re-arm the throttle governor.
  int done = 0;
  for (topo::NodeId src = 1; src < 16; ++src)
    net.send_message(src, 0, 256 * 1024, routing::Mode::kAd0, [&] { ++done; });
  eng.run();
  EXPECT_FALSE(eng.budget_exhausted());
  EXPECT_EQ(done, 15);
  EXPECT_EQ(net.packets_in_flight(), 0);
  // The governor observed the second burst too (incast on the same sink).
  EXPECT_GE(net.stats().throttle_activations, activations);
}

}  // namespace
}  // namespace dfsim::net
