// Unit tests: bias semantics (paper Section II-D) and adaptive route
// planning (forward progress, Valiant structure, load response).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "routing/adaptive.hpp"
#include "routing/bias.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::routing {
namespace {

TEST(Bias, ModeParams) {
  EXPECT_EQ(params_for(Mode::kAd0).shift, 0);
  EXPECT_EQ(params_for(Mode::kAd0).add, 0);
  EXPECT_EQ(params_for(Mode::kAd2).add, 4);
  EXPECT_EQ(params_for(Mode::kAd3).shift, 2);
  EXPECT_TRUE(params_for(Mode::kAd1).progressive);
}

TEST(Bias, IdleNetworkAlwaysMinimal) {
  for (int m = 0; m < kNumModes; ++m)
    EXPECT_TRUE(choose_minimal(0, 0, 0, static_cast<Mode>(m)));
}

TEST(Bias, Ad3RequiresFourTimesLoad) {
  // Paper: "with AD3, the load on minimal paths needs to be 4X of that on
  // the non-minimal paths, before non-minimal paths will be used".
  const std::int64_t nm = 16;
  const std::int64_t ad0_break = kNonminHopWeight * nm + kUgalThreshold;
  // AD0 diverts just past its weighted break-even; AD3 needs ~4x more.
  EXPECT_TRUE(choose_minimal(ad0_break, nm, 0, Mode::kAd0));
  EXPECT_FALSE(choose_minimal(ad0_break + 1, nm, 0, Mode::kAd0));
  EXPECT_TRUE(choose_minimal(4 * ad0_break, nm, 0, Mode::kAd3));
  EXPECT_FALSE(choose_minimal(4 * ad0_break + 4, nm, 0, Mode::kAd3));
}

TEST(Bias, OrderingOfModesByMinimalStickiness) {
  // For any load pair, if a more-minimal-biased mode diverts, AD0 must too.
  for (std::int64_t min_l = 0; min_l <= kLoadScale * 2; min_l += 3) {
    for (std::int64_t nm = 0; nm <= kLoadScale; nm += 5) {
      const bool m0 = choose_minimal(min_l, nm, 0, Mode::kAd0);
      const bool m1 = choose_minimal(min_l, nm, 0, Mode::kAd1);
      const bool m2 = choose_minimal(min_l, nm, 0, Mode::kAd2);
      const bool m3 = choose_minimal(min_l, nm, 0, Mode::kAd3);
      if (m0) {
        EXPECT_TRUE(m1);
        EXPECT_TRUE(m2);
        EXPECT_TRUE(m3);
      }
      if (m1) {
        EXPECT_TRUE(m3);  // AD3 at least as minimal as AD1
      }
    }
  }
}

TEST(Bias, Ad1ProgressivelyMoreMinimal) {
  const BiasParams p = params_for(Mode::kAd1);
  // Some load pair where AD1 diverts at hop 0...
  const std::int64_t min_l = 60, nm = 10;
  ASSERT_FALSE(choose_minimal(min_l, nm, 0, p));
  // ...must eventually stay minimal as hops accumulate.
  bool became_minimal = false;
  for (int h = 1; h <= 16; ++h) became_minimal |= choose_minimal(min_l, nm, h, p);
  EXPECT_TRUE(became_minimal);
}

TEST(Bias, ParseModes) {
  Mode m;
  EXPECT_TRUE(parse_mode("AD0", m));
  EXPECT_EQ(m, Mode::kAd0);
  EXPECT_TRUE(parse_mode("ad3", m));
  EXPECT_EQ(m, Mode::kAd3);
  EXPECT_TRUE(parse_mode("2", m));
  EXPECT_EQ(m, Mode::kAd2);
  EXPECT_FALSE(parse_mode("AD4", m));
  EXPECT_FALSE(parse_mode("", m));
  EXPECT_EQ(mode_name(Mode::kAd1), "AD1");
}

// --- Route planning over a real topology ---

class ZeroLoad final : public LoadOracle {
 public:
  [[nodiscard]] std::int64_t load_units(topo::RouterId,
                                        topo::PortId) const override {
    return 0;
  }
};

/// Oracle with settable per-port loads.
class MapLoad final : public LoadOracle {
 public:
  [[nodiscard]] std::int64_t load_units(topo::RouterId r,
                                        topo::PortId p) const override {
    const auto it = loads.find({r, p});
    return it == loads.end() ? 0 : it->second;
  }
  std::map<std::pair<topo::RouterId, topo::PortId>, std::int64_t> loads;
};

class PlannerTest : public ::testing::TestWithParam<Mode> {};
INSTANTIATE_TEST_SUITE_P(AllModes, PlannerTest,
                         ::testing::Values(Mode::kAd0, Mode::kAd1, Mode::kAd2,
                                           Mode::kAd3),
                         [](const auto& inf) {
                           return std::string(mode_name(inf.param));
                         });

/// Walk a packet through next_port() decisions until ejection; returns hops.
int walk(const topo::Dragonfly& d, RoutePlanner& pl, topo::NodeId src,
         topo::NodeId dst, RouteState& st) {
  topo::RouterId r = d.router_of_node(src);
  int hops = 0;
  while (true) {
    const topo::PortId p = pl.next_port(r, dst, st);
    const auto& pi = d.port(r, p);
    if (pi.cls == topo::TileClass::kProc) {
      EXPECT_EQ(pi.eject_node, dst);
      return hops;
    }
    r = pi.peer_router;
    ++hops;
    EXPECT_LT(hops, 16) << "routing loop";
    if (hops >= 16) return hops;
  }
}

TEST_P(PlannerTest, ReachesEveryDestinationIdle) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(3));
  sim::Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    if (src == dst) continue;
    RouteState st;
    st.mode = GetParam();
    pl.decide_injection(d.router_of_node(src), dst, st);
    // Idle network: every mode stays minimal.
    EXPECT_FALSE(st.nonminimal);
    const int hops = walk(d, pl, src, dst, st);
    EXPECT_LE(hops, 5);
  }
}

TEST_P(PlannerTest, NonminimalRoutesStillArrive) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(3));
  sim::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    if (src == dst) continue;
    RouteState st;
    st.mode = GetParam();
    // Force a Valiant detour.
    st.nonminimal = true;
    if (d.group_of_node(src) != d.group_of_node(dst)) {
      topo::GroupId via = -1;
      while (via < 0 || via == d.group_of_node(src) ||
             via == d.group_of_node(dst))
        via = static_cast<topo::GroupId>(rng.uniform_u64(d.config().groups));
      st.via_group = via;
    } else {
      topo::RouterId via = -1;
      const int rpg = d.config().routers_per_group();
      const auto g = d.group_of_node(src);
      while (via < 0 || via == d.router_of_node(src) ||
             via == d.router_of_node(dst))
        via = static_cast<topo::RouterId>(g * rpg + rng.uniform_u64(rpg));
      st.via_router = via;
    }
    const int hops = walk(d, pl, src, dst, st);
    EXPECT_TRUE(st.via_done || hops == 0);
    EXPECT_LE(hops, 11);
  }
}

TEST(Planner, LoadSteersAwayFromHotGateway) {
  const topo::Dragonfly d(topo::Config::mini(4));
  MapLoad oracle;
  RoutePlanner pl(d, oracle, sim::Rng(9));
  // Saturate every rank-3 port toward group 1 from group 0.
  for (const auto& gw : d.gateways(0, 1))
    oracle.loads[{gw.router, gw.port}] = kLoadScale;
  // With AD0 and an idle alternative, injection should choose non-minimal
  // for most packets from group 0 to group 1.
  int nonmin = 0;
  const int trials = 200;
  sim::Rng rng(11);
  for (int t = 0; t < trials; ++t) {
    const auto src = static_cast<topo::NodeId>(
        rng.uniform_u64(d.config().nodes_per_group()));
    const auto dst = static_cast<topo::NodeId>(
        d.config().nodes_per_group() + rng.uniform_u64(d.config().nodes_per_group()));
    RouteState st;
    st.mode = Mode::kAd0;
    pl.decide_injection(d.router_of_node(src), dst, st);
    nonmin += st.nonminimal ? 1 : 0;
  }
  EXPECT_GT(nonmin, trials / 2);
}

TEST(Planner, Ad3ToleratesMoreLoadThanAd0) {
  const topo::Dragonfly d(topo::Config::mini(4));
  MapLoad oracle;
  // Moderate load on the minimal gateways: enough to trip AD0, not AD3.
  for (const auto& gw : d.gateways(0, 1))
    oracle.loads[{gw.router, gw.port}] = kUgalThreshold + 6;
  int nonmin0 = 0, nonmin3 = 0;
  const int trials = 300;
  for (const Mode mode : {Mode::kAd0, Mode::kAd3}) {
    RoutePlanner pl(d, oracle, sim::Rng(13));
    sim::Rng rng(17);
    for (int t = 0; t < trials; ++t) {
      const auto src = static_cast<topo::NodeId>(
          rng.uniform_u64(d.config().nodes_per_group()));
      const auto dst = static_cast<topo::NodeId>(
          d.config().nodes_per_group() +
          rng.uniform_u64(d.config().nodes_per_group()));
      RouteState st;
      st.mode = mode;
      pl.decide_injection(d.router_of_node(src), dst, st);
      (mode == Mode::kAd0 ? nonmin0 : nonmin3) += st.nonminimal ? 1 : 0;
    }
  }
  EXPECT_GT(nonmin0, nonmin3);
  EXPECT_EQ(nonmin3, 0);
}

TEST(Planner, IntraGroupValiantUsesViaRouter) {
  const topo::Dragonfly d(topo::Config::mini(4));
  MapLoad oracle;
  RoutePlanner pl(d, oracle, sim::Rng(23));
  // Hot direct path: force intra-group detours under AD0.
  const topo::NodeId src = 0;
  const topo::NodeId dst =
      static_cast<topo::NodeId>(3 * d.config().nodes_per_router);  // router 3
  const topo::RouterId r0 = d.router_of_node(src);
  for (topo::PortId p = 0; p < d.global_port_base(); ++p)
    oracle.loads[{r0, p}] = kLoadScale;
  // All local first hops equally hot -> non-minimal is no better; verify the
  // decision is still well-formed and the packet arrives.
  RouteState st;
  st.mode = Mode::kAd0;
  pl.decide_injection(r0, dst, st);
  const int hops = walk(d, pl, src, dst, st);
  EXPECT_GE(hops, 1);
}

TEST(Planner, LocalFirstPortTableMatchesTopology) {
  // The planner's cached first-hop table must reproduce the row-first
  // (rank-1 then rank-2) dimension-order choice for every same-group pair.
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(1));
  const int rpg = d.config().routers_per_group();
  for (topo::RouterId r = 0; r < d.config().num_routers(); ++r) {
    const topo::GroupId g = d.group_of_router(r);
    for (int s = 0; s < rpg; ++s) {
      const auto t = static_cast<topo::RouterId>(g * rpg + s);
      const topo::PortId p = pl.local_first_port(r, t);
      if (t == r) {
        EXPECT_EQ(p, -1);
        continue;
      }
      const topo::PortId direct = d.local_port_to(r, t);
      if (direct >= 0) {
        EXPECT_EQ(p, direct);
      } else {
        EXPECT_EQ(p, d.local_port_to(
                         r, d.router_at(g, d.chassis_of(r), d.slot_of(t))));
      }
    }
  }
}

TEST(Planner, IntraGroupValiantStepsThroughIntermediate) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(41));
  // src router 0, dst router 3, Valiant intermediate router 5 — group 0.
  const topo::NodeId src = 0;
  const auto dst = static_cast<topo::NodeId>(3 * d.config().nodes_per_router);
  RouteState st;
  st.nonminimal = true;
  st.via_router = 5;
  topo::RouterId r = d.router_of_node(src);
  bool seen_via = false;
  int hops = 0;
  while (true) {
    const topo::PortId p = pl.next_port(r, dst, st);
    if (r == 5) {
      seen_via = true;
      // via_done flips exactly on arrival at the intermediate, and the VC
      // ladder level is bumped for the second local leg.
      EXPECT_TRUE(st.via_done);
      EXPECT_EQ(st.level, 1);
    }
    const auto& pi = d.port(r, p);
    if (pi.cls == topo::TileClass::kProc) {
      EXPECT_EQ(pi.eject_node, dst);
      break;
    }
    r = pi.peer_router;
    ASSERT_LT(++hops, 16) << "routing loop";
  }
  EXPECT_TRUE(seen_via);
  EXPECT_TRUE(st.via_done);
  EXPECT_EQ(r, d.router_of_node(dst));
}

TEST(Planner, InterGroupValiantTraversesIntermediateGroup) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(43));
  const topo::NodeId src = 0;                  // group 0
  const auto dst = static_cast<topo::NodeId>(  // first node of group 1
      d.config().nodes_per_group());
  RouteState st;
  st.nonminimal = true;
  st.via_group = 2;
  topo::RouterId r = d.router_of_node(src);
  std::vector<topo::GroupId> group_path{d.group_of_router(r)};
  int hops = 0;
  while (true) {
    const topo::PortId p = pl.next_port(r, dst, st);
    const auto& pi = d.port(r, p);
    if (pi.cls == topo::TileClass::kProc) {
      EXPECT_EQ(pi.eject_node, dst);
      break;
    }
    r = pi.peer_router;
    if (d.group_of_router(r) != group_path.back())
      group_path.push_back(d.group_of_router(r));
    ASSERT_LT(++hops, 16) << "routing loop";
  }
  EXPECT_TRUE(st.via_done);
  EXPECT_EQ(group_path, (std::vector<topo::GroupId>{0, 2, 1}));
}

TEST(Planner, ValiantDetourThroughDestinationGroupKeepsGoing) {
  // A packet can land in its *destination* group while still heading to its
  // Valiant intermediate group (e.g. the via-group cable is owned by a
  // gateway reached through gd). next_port must keep routing it toward the
  // via group — not eject it or take the local leg early.
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  RoutePlanner pl(d, zero, sim::Rng(47));
  const auto dst = static_cast<topo::NodeId>(  // router 8, group 1
      d.config().nodes_per_group());
  RouteState st;
  st.nonminimal = true;
  st.via_group = 2;
  // Currently at a non-destination router of group 1, detour not yet done.
  auto r = static_cast<topo::RouterId>(d.config().routers_per_group() + 1);
  bool seen_via = false;
  int hops = 0;
  while (true) {
    const topo::PortId p = pl.next_port(r, dst, st);
    const auto& pi = d.port(r, p);
    if (pi.cls == topo::TileClass::kProc) {
      EXPECT_EQ(pi.eject_node, dst);
      break;
    }
    r = pi.peer_router;
    seen_via |= d.group_of_router(r) == 2;
    if (r == d.router_of_node(dst)) {
      EXPECT_TRUE(seen_via) << "took the local leg before the via group";
    }
    ASSERT_LT(++hops, 16) << "routing loop";
  }
  EXPECT_TRUE(seen_via);
  EXPECT_TRUE(st.via_done);
  EXPECT_EQ(r, d.router_of_node(dst));
}

TEST(Planner, GatewayScoreReflectsLoad) {
  const topo::Dragonfly d(topo::Config::mini(4));
  MapLoad oracle;
  RoutePlanner pl(d, oracle, sim::Rng(31));
  const topo::RouterId r = 0;
  const std::int64_t idle = pl.gateway_score(r, 1);
  for (const auto& gw : d.gateways(0, 1))
    oracle.loads[{gw.router, gw.port}] = 20;
  const std::int64_t loaded = pl.gateway_score(r, 1);
  EXPECT_GT(loaded, idle);
}

}  // namespace
}  // namespace dfsim::routing
