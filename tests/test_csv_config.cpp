// Tests: CSV writer and the additional topology presets.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/csv.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/dfsim_csv_test1.csv";
  {
    stats::CsvWriter w(path, {"app", "mode", "runtime_ms"});
    ASSERT_TRUE(w.ok());
    w.row({"MILC", "AD0", stats::CsvWriter::num(1.25)});
    w.row({"MILC", "AD3"});  // short row padded
  }
  const std::string s = slurp(path);
  EXPECT_EQ(s, "app,mode,runtime_ms\nMILC,AD0,1.25\nMILC,AD3,\n");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = "/tmp/dfsim_csv_test2.csv";
  {
    stats::CsvWriter w(path, {"name", "note"});
    w.row({"a,b", "say \"hi\"\nthere"});
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\nthere\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, BadPathReportsNotOk) {
  stats::CsvWriter w("/nonexistent_dir_xyz/file.csv", {"a"});
  EXPECT_FALSE(w.ok());
  w.row({"x"});  // must not crash
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(stats::CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(stats::CsvWriter::num(0.0), "0");
  EXPECT_EQ(stats::CsvWriter::num(1e9), "1e+09");
}

TEST(SlingshotPreset, ConstructsAndRoutes) {
  const topo::Config cfg = topo::Config::slingshot_like(6);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.chassis_per_group, 1);  // flat group
  const topo::Dragonfly d(cfg);
  // Flat group: every intra-group pair is one rank-1 hop.
  for (int s = 1; s < cfg.slots_per_chassis; ++s)
    EXPECT_GE(d.local_port_to(0, static_cast<topo::RouterId>(s)), 0);
  // No rank-2 ports at all.
  EXPECT_EQ(d.rank2_ports(), 0);
  // End-to-end traffic works.
  sim::Engine eng;
  net::Network net(eng, d, 3);
  bool done = false;
  net.send_message(0, cfg.num_nodes() - 1, 64 * 1024, routing::Mode::kAd0,
                   [&] { done = true; });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(net.stats().escapes, 0);
}

TEST(SlingshotPreset, MinimalPathsAreShorter) {
  // Flat groups: intra-group minimal is always 1 hop (vs up to 2 on XC).
  const topo::Dragonfly d(topo::Config::slingshot_like(4));
  const int rpg = d.config().routers_per_group();
  for (int a = 0; a < rpg; ++a)
    for (int b = a + 1; b < rpg; ++b)
      EXPECT_EQ(d.minimal_hops(static_cast<topo::RouterId>(a),
                               static_cast<topo::RouterId>(b)),
                1);
}

}  // namespace
}  // namespace dfsim
