// Tests: CSV writer, ScenarioConfig CSV persistence, and the additional
// topology presets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/csv.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/dfsim_csv_test1.csv";
  {
    stats::CsvWriter w(path, {"app", "mode", "runtime_ms"});
    ASSERT_TRUE(w.ok());
    w.row({"MILC", "AD0", stats::CsvWriter::num(1.25)});
    w.row({"MILC", "AD3"});  // short row padded
  }
  const std::string s = slurp(path);
  EXPECT_EQ(s, "app,mode,runtime_ms\nMILC,AD0,1.25\nMILC,AD3,\n");
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = "/tmp/dfsim_csv_test2.csv";
  {
    stats::CsvWriter w(path, {"name", "note"});
    w.row({"a,b", "say \"hi\"\nthere"});
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\nthere\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, BadPathReportsNotOk) {
  stats::CsvWriter w("/nonexistent_dir_xyz/file.csv", {"a"});
  EXPECT_FALSE(w.ok());
  w.row({"x"});  // must not crash
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(stats::CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(stats::CsvWriter::num(0.0), "0");
  EXPECT_EQ(stats::CsvWriter::num(1e9), "1e+09");
}

TEST(ScenarioCsv, RoundTripsEveryField) {
  core::ScenarioConfig cfg = core::ScenarioConfig::controlled();
  cfg.system = topo::Config::cori_scaled();
  cfg.system.kind = topo::TopologyKind::kDragonflyPlus;
  cfg.app = "HACC";
  cfg.nnodes = 128;
  cfg.njobs = 5;
  cfg.mode = routing::Mode::kAd2;
  cfg.placement = sched::Placement::kGroups;
  cfg.target_groups = 3;
  cfg.bg_utilization = 0.45;
  cfg.bg_mode = routing::Mode::kAd1;
  cfg.warmup = 123 * sim::kMicrosecond;
  cfg.ldms_period = 77 * sim::kMicrosecond;
  cfg.seed = 0xdeadbeefULL;
  cfg.event_budget = 12345678;
  cfg.shards = 4;
  cfg.shard_workers = 3;
  cfg.faults.fail_link(100, 3, 1)
      .degrade_link(200, 5, 0, 0.5)
      .fail_router(300, 7)
      .repair(400, 3, 1);
  cfg.sys_jobs = 17;
  cfg.sys_interarrival = 55 * sim::kMicrosecond;
  cfg.sys_backfill = false;
  cfg.sys_ad3_fraction = 0.375;

  const auto cols = core::scenario_csv_columns();
  const auto row = core::scenario_csv_row(cfg);
  ASSERT_EQ(cols.size(), row.size());
  const core::ScenarioConfig back = core::scenario_from_csv(row);

  EXPECT_EQ(back.kind, cfg.kind);
  EXPECT_EQ(back.system.name, cfg.system.name);
  EXPECT_EQ(back.system.kind, cfg.system.kind);
  EXPECT_EQ(back.app, cfg.app);
  EXPECT_EQ(back.nnodes, cfg.nnodes);
  EXPECT_EQ(back.njobs, cfg.njobs);
  EXPECT_EQ(back.mode, cfg.mode);
  EXPECT_EQ(back.placement, cfg.placement);
  EXPECT_EQ(back.target_groups, cfg.target_groups);
  EXPECT_EQ(back.bg_utilization, cfg.bg_utilization);
  EXPECT_EQ(back.bg_mode, cfg.bg_mode);
  EXPECT_EQ(back.warmup, cfg.warmup);
  EXPECT_EQ(back.ldms_period, cfg.ldms_period);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.event_budget, cfg.event_budget);
  EXPECT_EQ(back.shards, cfg.shards);
  EXPECT_EQ(back.shard_workers, cfg.shard_workers);
  EXPECT_EQ(back.sys_jobs, cfg.sys_jobs);
  EXPECT_EQ(back.sys_interarrival, cfg.sys_interarrival);
  EXPECT_EQ(back.sys_backfill, cfg.sys_backfill);
  EXPECT_EQ(back.sys_ad3_fraction, cfg.sys_ad3_fraction);
  ASSERT_EQ(back.faults.size(), cfg.faults.size());
  const auto a = cfg.faults.canonical();
  const auto b = back.faults.canonical();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b[i].at, a[i].at);
    EXPECT_EQ(b[i].kind, a[i].kind);
    EXPECT_EQ(b[i].router, a[i].router);
    EXPECT_EQ(b[i].port, a[i].port);
    EXPECT_EQ(b[i].factor, a[i].factor);
  }
}

TEST(ScenarioCsv, ProductionDefaultsRoundTrip) {
  const core::ScenarioConfig cfg = core::ScenarioConfig::production();
  const core::ScenarioConfig back =
      core::scenario_from_csv(core::scenario_csv_row(cfg));
  EXPECT_EQ(back.kind, core::ScenarioKind::kProduction);
  EXPECT_EQ(back.system.name, "theta");
  EXPECT_EQ(back.app, cfg.app);
  EXPECT_EQ(back.shards, cfg.shards);
  EXPECT_EQ(back.shard_workers, cfg.shard_workers);
  EXPECT_TRUE(back.faults.empty());
}

TEST(ScenarioCsv, SystemModeRoundTrips) {
  core::ScenarioConfig cfg = core::ScenarioConfig::system_mode();
  cfg.sys_jobs = 25;
  cfg.sys_backfill = false;
  const core::ScenarioConfig back =
      core::scenario_from_csv(core::scenario_csv_row(cfg));
  EXPECT_EQ(back.kind, core::ScenarioKind::kSystem);
  EXPECT_EQ(back.sys_jobs, 25);
  EXPECT_FALSE(back.sys_backfill);
}

// Property test for the shortest-round-trip float cells: any double that
// can legally appear in a config must survive row -> parse BIT-exactly,
// including values whose shortest decimal form is long (0.1 + 1e-17),
// subnormal-adjacent magnitudes, and exact integers. This is what makes
// the campaign fingerprint (a hash over these cells) a faithful content
// address across platforms and locales.
TEST(ScenarioCsv, FloatCellsRoundTripBitExactly) {
  std::mt19937_64 rng(0xC5Fu);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> exp10(-12, 6);
  for (int trial = 0; trial < 200; ++trial) {
    core::ScenarioConfig cfg = core::ScenarioConfig::production();
    // Awkward-by-construction doubles: random mantissas scaled across 18
    // decades, plus a few adversarial specials on fixed trials.
    const double mant = unit(rng);
    double v = mant * std::pow(10.0, exp10(rng));
    if (trial == 0) v = 0.1 + 1e-17;
    if (trial == 1) v = 1.0 / 3.0;
    if (trial == 2) v = 0.0;
    if (trial == 3) v = 1.0;
    cfg.bg_utilization = v;
    cfg.sys_ad3_fraction = mant;
    cfg.faults.degrade_link(100, 1, 0, unit(rng));
    const core::ScenarioConfig back =
        core::scenario_from_csv(core::scenario_csv_row(cfg));
    // Bit-exact, not approximately-equal: the cells are the hash input.
    EXPECT_EQ(back.bg_utilization, cfg.bg_utilization) << "trial " << trial;
    EXPECT_EQ(back.sys_ad3_fraction, cfg.sys_ad3_fraction)
        << "trial " << trial;
    EXPECT_EQ(back.faults.canonical()[0].factor,
              cfg.faults.canonical()[0].factor)
        << "trial " << trial;
    // And the text form is stable: re-encoding the parsed config yields
    // the identical row (fixed point of the round trip).
    EXPECT_EQ(core::scenario_csv_row(back), core::scenario_csv_row(cfg))
        << "trial " << trial;
  }
}

TEST(ScenarioCsv, RejectsMalformedRows) {
  const auto cols = core::scenario_csv_columns();
  const auto row = core::scenario_csv_row(core::ScenarioConfig::production());
  ASSERT_EQ(cols.size(), row.size());
  auto cell = [&](const char* name) {
    for (std::size_t i = 0; i < cols.size(); ++i)
      if (cols[i] == name) return i;
    ADD_FAILURE() << "no column " << name;
    return std::size_t{0};
  };
  EXPECT_THROW(core::scenario_from_csv({}), std::invalid_argument);
  auto bad_kind = row;
  bad_kind[cell("kind")] = "interactive";
  EXPECT_THROW(core::scenario_from_csv(bad_kind), std::invalid_argument);
  auto bad_system = row;
  bad_system[cell("system")] = "not_a_preset";
  EXPECT_THROW(core::scenario_from_csv(bad_system), std::invalid_argument);
  auto bad_mode = row;
  bad_mode[cell("mode")] = "AD9";
  EXPECT_THROW(core::scenario_from_csv(bad_mode), std::invalid_argument);
  auto bad_topology = row;
  bad_topology[cell("topology")] = "torus";
  EXPECT_THROW(core::scenario_from_csv(bad_topology), std::invalid_argument);
  auto bad_faults = row;
  bad_faults[cell("faults")] = "garbage";
  EXPECT_THROW(core::scenario_from_csv(bad_faults), std::invalid_argument);
  auto bad_sys_jobs = row;
  bad_sys_jobs[cell("sys_jobs")] = "many";
  EXPECT_THROW(core::scenario_from_csv(bad_sys_jobs), std::invalid_argument);
}

TEST(ScenarioCsv, TopologyColumnRoundTripsEveryKind) {
  for (const topo::TopologyKind k :
       {topo::TopologyKind::kDefault, topo::TopologyKind::kDragonfly,
        topo::TopologyKind::kDragonflyPlus, topo::TopologyKind::kSlingshot}) {
    core::ScenarioConfig cfg = core::ScenarioConfig::production();
    cfg.system.kind = k;
    const core::ScenarioConfig back =
        core::scenario_from_csv(core::scenario_csv_row(cfg));
    EXPECT_EQ(back.system.kind, k);
  }
}

TEST(SlingshotPreset, ConstructsAndRoutes) {
  const topo::Config cfg = topo::Config::slingshot_like(6);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.chassis_per_group, 1);  // flat group
  const topo::Dragonfly d(cfg);
  // Flat group: every intra-group pair is one rank-1 hop.
  for (int s = 1; s < cfg.slots_per_chassis; ++s)
    EXPECT_GE(d.local_port_to(0, static_cast<topo::RouterId>(s)), 0);
  // No rank-2 ports at all.
  EXPECT_EQ(d.rank2_ports(), 0);
  // End-to-end traffic works.
  sim::Engine eng;
  net::Network net(eng, d, 3);
  bool done = false;
  net.send_message(0, cfg.num_nodes() - 1, 64 * 1024, routing::Mode::kAd0,
                   [&] { done = true; });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(net.stats().escapes, 0);
}

TEST(SlingshotPreset, MinimalPathsAreShorter) {
  // Flat groups: intra-group minimal is always 1 hop (vs up to 2 on XC).
  const topo::Dragonfly d(topo::Config::slingshot_like(4));
  const int rpg = d.config().routers_per_group();
  for (int a = 0; a < rpg; ++a)
    for (int b = a + 1; b < rpg; ++b)
      EXPECT_EQ(d.minimal_hops(static_cast<topo::RouterId>(a),
                               static_cast<topo::RouterId>(b)),
                1);
}

}  // namespace
}  // namespace dfsim
