// Tests: packet tracer (ring buffer, lifecycle coverage, exports).
#include <gtest/gtest.h>

#include <sstream>

#include "monitor/trace.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim::monitor {
namespace {

TEST(Tracer, RecordsLifecycleOfEveryPacket) {
  const topo::Config cfg = topo::Config::mini(3);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 7);
  PacketTracer tracer;
  net.set_tracer(&tracer);
  net.send_message(0, cfg.num_nodes() - 1, 8192, routing::Mode::kAd0, {});
  eng.run();

  const auto recs = tracer.chronological();
  ASSERT_FALSE(recs.empty());
  int injects = 0, hops = 0, delivers = 0;
  sim::Tick last = -1;
  for (const auto& r : recs) {
    EXPECT_GE(r.t, last);  // chronological
    last = r.t;
    switch (r.event) {
      case TraceEvent::kInject: ++injects; break;
      case TraceEvent::kHop: ++hops; EXPECT_GE(r.router, 0); break;
      case TraceEvent::kDeliver: ++delivers; break;
    }
  }
  // Requests + responses all inject and deliver exactly once.
  EXPECT_EQ(injects, net.stats().packets_injected);
  EXPECT_EQ(delivers, net.stats().packets_delivered);
  EXPECT_EQ(hops, net.stats().total_hops);
  EXPECT_EQ(tracer.total_recorded(), static_cast<std::uint64_t>(recs.size()));
}

TEST(Tracer, RingKeepsMostRecent) {
  PacketTracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    TraceRecord r;
    r.t = i;
    r.packet = i;
    tracer.record(r);
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.total_recorded(), 20u);
  const auto recs = tracer.chronological();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs.front().packet, 12);
  EXPECT_EQ(recs.back().packet, 19);
}

TEST(Tracer, DumpAndChromeJson) {
  const topo::Config cfg = topo::Config::mini(2);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 9);
  PacketTracer tracer;
  net.set_tracer(&tracer);
  net.send_message(0, cfg.num_nodes() - 1, 2048, routing::Mode::kAd3, {});
  eng.run();

  std::ostringstream text;
  tracer.dump(text, 100);
  EXPECT_NE(text.str().find("inject"), std::string::npos);
  EXPECT_NE(text.str().find("deliver"), std::string::npos);

  std::ostringstream json;
  tracer.write_chrome_json(json);
  const std::string s = json.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(s.find("\"valiant\""), std::string::npos);
  // Balanced-ish JSON: every record line ends with } or },
  EXPECT_NE(s.find("\"args\""), std::string::npos);
}

TEST(Tracer, DetachStopsRecording) {
  const topo::Config cfg = topo::Config::mini(2);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 11);
  PacketTracer tracer;
  net.set_tracer(&tracer);
  net.send_message(0, 5, 1024, routing::Mode::kAd0, {});
  eng.run();
  const auto before = tracer.total_recorded();
  EXPECT_GT(before, 0u);
  net.set_tracer(nullptr);
  net.send_message(0, 5, 1024, routing::Mode::kAd0, {});
  eng.run();
  EXPECT_EQ(tracer.total_recorded(), before);
}

}  // namespace
}  // namespace dfsim::monitor
