// Smoke tests at full Theta/Cori scale: the `--full` bench path must build
// the real-size systems and run jobs on them correctly (kept small so the
// suite stays fast).
#include <gtest/gtest.h>

#include "topo/dragonfly.hpp"
#include "core/experiment.hpp"
#include "sched/scheduler.hpp"

namespace dfsim {
namespace {

TEST(FullScale, ThetaIsolated256NodeMilcRuns) {
  core::ProductionConfig cfg;
  cfg.system = topo::Config::theta();
  cfg.system.packet_payload_bytes = 4096;
  cfg.system.buffer_flits = 2048;
  cfg.app = "MILC";
  cfg.nnodes = 256;
  cfg.params.iterations = 1;
  cfg.params.msg_scale = 0.1;
  cfg.params.compute_scale = 0.1;
  cfg.bg_utilization = 0.0;
  cfg.seed = 3;
  const auto r = core::run_production(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.runtime_ms, 0.0);
  EXPECT_GE(r.groups_spanned, 2);
  EXPECT_EQ(r.netstats.escapes, 0);
}

TEST(FullScale, CoriAllocates512Across26Groups) {
  sched::Scheduler sched(topo::Config::cori(), 5);
  auto nodes = sched.allocator().allocate(512, sched::Placement::kRandom,
                                          sched.rng());
  ASSERT_EQ(nodes.size(), 512u);
  // 512 random nodes out of ~10k across 26 groups: spans most groups.
  EXPECT_GE(sched.machine().topology().groups_spanned(nodes), 20);
}

TEST(FullScale, ThetaTopologyInvariantsHold) {
  const topo::Dragonfly d(topo::Config::theta());
  // Exactly 12 cables between each group pair, spread over the group.
  for (topo::GroupId b = 1; b < 12; ++b)
    EXPECT_EQ(d.gateways(0, b).size(), 12u);
  // Paper II-F: "12 active optical cables (3 lanes each) between each
  // group" -- 12 x 11 = 132 cables terminating per group.
  EXPECT_EQ(d.config().global_cables_per_group(), 132);
}

}  // namespace
}  // namespace dfsim
