// Unit tests: discrete-event engine, event queue, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dfsim::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDestroysPendingPayloads) {
  // Payload destructors must run on clear() even though the events never
  // fire — both for inline-slot payloads and the oversized fallback.
  auto counted = std::make_shared<int>(7);
  struct Big {
    std::shared_ptr<int> p;
    std::byte pad[EventQueue::kInlineBytes];  // force the heap fallback
    void operator()() const {}
  };
  {
    EventQueue q;
    q.push(1, [counted] {});
    q.push(2, Big{counted, {}});
    EXPECT_EQ(counted.use_count(), 3);
    q.clear();
    EXPECT_EQ(counted.use_count(), 1);
  }
}

TEST(EventQueue, OversizedClosuresStillRun) {
  EventQueue q;
  std::array<std::int64_t, 16> big{};  // 128 bytes of capture, > kInlineBytes
  big[15] = 42;
  std::int64_t got = 0;
  q.push(1, [big, &got] { got = big[15]; });
  static_assert(sizeof(big) > EventQueue::kInlineBytes);
  q.pop_and_run();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PoolSlotsAreRecycled) {
  // Push/pop far more events than one chunk holds: the pool must reuse
  // drained slots instead of growing (the allocation-free steady state).
  EventQueue q;
  std::uint64_t fired = 0;
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 64; ++i) q.push(lap, [&fired] { ++fired; });
    while (!q.empty()) q.pop_and_run();
  }
  EXPECT_EQ(fired, 6400u);
  EXPECT_LE(q.pool_slots(), 256u);  // one chunk covers 64 in-flight events
}

TEST(EventQueue, CallbackMayPushWhileRunning) {
  // A running callback scheduling new events must not invalidate its own
  // storage, even when the pool grows by whole chunks underneath it.
  EventQueue q;
  int fired = 0;
  q.push(0, [&q, &fired] {
    for (int i = 0; i < 1000; ++i)  // forces several new chunks
      q.push(1, [&fired] { ++fired; });
    ++fired;
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 1001);
}

TEST(Engine, AdvancesTimeMonotonically) {
  Engine e;
  Tick seen = -1;
  for (Tick t : {50, 10, 30})
    e.schedule_at(t, [&, t] {
      EXPECT_EQ(e.now(), t);
      EXPECT_GT(t, seen);
      seen = t;
    });
  e.run();
  EXPECT_EQ(seen, 50);
}

TEST(Engine, ScheduleRelative) {
  Engine e;
  Tick fired = -1;
  e.schedule(100, [&] {
    e.schedule(25, [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, 125);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule(10, [] {});
  e.run();
  EXPECT_EQ(e.now(), 10);
  EXPECT_THROW(e.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int count = 0;
  for (Tick t = 10; t <= 100; t += 10) e.schedule_at(t, [&] { ++count; });
  e.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50);
  e.run_until(200);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(e.now(), 200);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i)
    e.schedule(i + 1, [&] {
      if (++count == 3) e.stop();
    });
  e.run();
  EXPECT_EQ(count, 3);
  e.clear_stop();
  e.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, EventBudgetBounds) {
  Engine e;
  std::function<void()> self = [&] {
    e.schedule(1, self);  // infinite chain
  };
  e.schedule(1, self);
  e.set_event_budget(1000);
  e.run();
  EXPECT_TRUE(e.budget_exhausted());
  EXPECT_EQ(e.events_executed(), 1000u);
}

TEST(Time, SerializationRoundsUp) {
  EXPECT_EQ(serialization_ns(0, 10.0), 0);
  EXPECT_EQ(serialization_ns(1, 10.0), 1);     // sub-ns rounds up to 1
  EXPECT_EQ(serialization_ns(1000, 10.0), 100);
  EXPECT_EQ(serialization_ns(1024, 10.5), 97);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_s(3 * kSecond), 3.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedUniformCoversRange) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i)
    ++counts[static_cast<std::size_t>(r.uniform_u64(10))];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, UniformIntInclusive) {
  Rng r(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0.0, ss = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(21);
  const auto s = r.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  auto t = s;
  std::sort(t.begin(), t.end());
  EXPECT_EQ(std::adjacent_find(t.begin(), t.end()), t.end());
  for (const auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(33);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace dfsim::sim
