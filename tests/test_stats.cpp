// Unit tests: statistics (summary, percentiles, z-scores, outliers, CCDF,
// histograms, KDE, table rendering).
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <sstream>
#include <vector>

#include "sim/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace dfsim::stats {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary s = summarize(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.625), 35.0);
  // Unsorted input handled.
  const std::vector<double> ys{50, 10, 40, 20, 30};
  EXPECT_DOUBLE_EQ(percentile(ys, 0.5), 30.0);
}

TEST(Percentile, SortedOverloadMatchesAndClamps) {
  // percentile_sorted must agree bit-for-bit with percentile on presorted
  // data (summarize relies on this for its sort-once path).
  const std::vector<double> xs{10, 20, 30, 40, 50};
  for (const double q : {0.0, 0.25, 0.5, 0.625, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, q), percentile(xs, q));
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -0.5), 10.0);  // clamped
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(std::span<const double>{}, 0.5), 0.0);
}

TEST(Zscores, MeanZeroUnitVariance) {
  sim::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(50, 7));
  const auto z = zscores(xs);
  const Summary s = summarize(z);
  EXPECT_NEAR(s.mean, 0.0, 1e-9);
  EXPECT_NEAR(s.stddev, 1.0, 1e-9);
}

TEST(Outliers, ThreeSigmaFilter) {
  std::vector<double> xs(100, 10.0);
  for (int i = 0; i < 100; ++i) xs[static_cast<std::size_t>(i)] += (i % 7) * 0.1;
  xs.push_back(1000.0);  // a '+3 sigma' incast-style outlier
  const auto kept = remove_outliers(xs, 3.0);
  EXPECT_EQ(kept.size(), xs.size() - 1);
  for (const double x : kept) EXPECT_LT(x, 100.0);
}

TEST(Outliers, ConstantSeriesKept) {
  const std::vector<double> xs(10, 5.0);
  EXPECT_EQ(remove_outliers(xs).size(), 10u);
}

TEST(Ccdf, WeightedTailFractions) {
  // Fig. 1 semantics: fraction of core-hours from jobs >= x nodes.
  const std::vector<double> sizes{128, 256, 512};
  const std::vector<double> hours{10, 30, 60};
  const auto pts = weighted_ccdf(sizes, hours);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 128);
  EXPECT_DOUBLE_EQ(pts[0].second, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.9);
  EXPECT_DOUBLE_EQ(pts[2].second, 0.6);
}

TEST(Ccdf, HandlesDuplicatesAndEmpty) {
  EXPECT_TRUE(weighted_ccdf({}, {}).empty());
  const std::vector<double> xs{5, 5, 7};
  const std::vector<double> w{1, 1, 2};
  const auto pts = weighted_ccdf(xs, w);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].second, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.5);
}

TEST(Improvement, MatchesPaperConvention) {
  // Table II: AD0 542.6 -> AD3 482.5 is ~11%.
  EXPECT_NEAR(improvement_pct(542.6, 482.5), 11.08, 0.01);
  EXPECT_LT(improvement_pct(442.9, 454.9), 0.0);  // HACC regression
  EXPECT_EQ(improvement_pct(0.0, 1.0), 0.0);
}

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(4.5);
  h.add(-5.0);   // clamps to first bin
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.count(4), 100);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(9), 1);
  EXPECT_EQ(h.total(), 102);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 4.5);
  // Density integrates to ~1.
  double integral = 0.0;
  for (int b = 0; b < h.bins(); ++b) integral += h.density(b) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5, 5, 10), std::invalid_argument);
}

TEST(Kde, PeaksAtData) {
  sim::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(100, 5));
  EXPECT_GT(kde(xs, 100.0), kde(xs, 130.0));
  const auto curve = kde_curve(xs, 80, 120, 41);
  ASSERT_EQ(curve.size(), 41u);
  // Curve maximum near the true mean.
  double best_x = 0, best_y = -1;
  for (const auto& [x, y] : curve)
    if (y > best_y) {
      best_y = y;
      best_x = x;
    }
  EXPECT_NEAR(best_x, 100.0, 4.0);
}

TEST(Kde, EmptyIsZero) { EXPECT_EQ(kde({}, 1.0), 0.0); }

TEST(Table, RendersAlignedGrid) {
  Table t({"App", "mean"});
  t.add_row({"MILC", "542.6"});
  t.add_row({"HACC", "442.9"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("MILC"), std::string::npos);
  EXPECT_NE(s.find("| App"), std::string::npos);
  // Header separator and 2 data rows.
  EXPECT_NE(s.find("===="), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_signed(11.9, 1), "+11.9");
  EXPECT_EQ(fmt_signed(-2.7, 1), "-2.7");
}

TEST(Table, BarAndSeriesRender) {
  std::ostringstream os;
  print_bar(os, "Rank3", 5.0, 10.0, 20);
  EXPECT_NE(os.str().find("##########"), std::string::npos);
  std::ostringstream os2;
  const std::vector<std::pair<double, double>> pts{{1, 0.5}, {2, 1.0}};
  print_series(os2, pts, "x", "y", 10);
  EXPECT_NE(os2.str().find("**********"), std::string::npos);
}

}  // namespace
}  // namespace dfsim::stats
