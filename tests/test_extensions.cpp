// Tests: extension features — AWR runtime (De Sensi baseline) and Aries
// congestion throttling — plus deadlock-freedom stress properties of the
// VC ladder.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/awr.hpp"
#include "core/experiment.hpp"
#include "sched/scheduler.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

TEST(Awr, EscalatesUnderRisingCongestion) {
  // Start a MILC job quietly, then unleash a congestor; AWR should step the
  // job's bias toward minimal.
  sched::Scheduler sched(topo::Config::mini(6), 5);
  apps::AppParams p;
  p.iterations = 30;
  p.msg_scale = 0.2;
  p.compute_scale = 0.2;
  const mpi::JobId job = sched.submit_app("MILC", 24, sched::Placement::kRandom,
                                          routing::Mode::kAd0, p);
  ASSERT_GE(job, 0);

  core::AwrController::Params ap;
  ap.poll_period = 50 * sim::kMicrosecond;
  ap.degrade_threshold = 1.10;
  core::AwrController awr(sched.machine(), job, ap);
  awr.start();
  EXPECT_EQ(awr.current_mode(), routing::Mode::kAd0);

  // Quiet phase.
  sched.machine().run_for(300 * sim::kMicrosecond);
  // Storm phase.
  const auto bg = sched.add_background(0.9, routing::Mode::kAd0);
  (void)bg;
  const mpi::JobId w[] = {job};
  ASSERT_TRUE(sched.machine().run_to_completion(w));
  EXPECT_GT(awr.escalations(), 0);
  EXPECT_GE(static_cast<int>(awr.current_mode()),
            static_cast<int>(routing::Mode::kAd0));
  // Decisions recorded with timestamps and observed latency.
  for (const auto& d : awr.decisions()) {
    EXPECT_GT(d.t, 0);
    EXPECT_GT(d.latency_ns, 0.0);
  }
}

TEST(Awr, RespectsFloorAndCeiling) {
  sched::Scheduler sched(topo::Config::mini(4), 7);
  apps::AppParams p;
  p.iterations = 10;
  p.msg_scale = 0.1;
  p.compute_scale = 0.1;
  const mpi::JobId job = sched.submit_app("MILC", 16, sched::Placement::kCompact,
                                          routing::Mode::kAd0, p);
  core::AwrController::Params ap;
  ap.poll_period = 20 * sim::kMicrosecond;
  ap.initial = routing::Mode::kAd1;
  ap.floor = routing::Mode::kAd1;
  ap.ceiling = routing::Mode::kAd2;
  core::AwrController awr(sched.machine(), job, ap);
  awr.start();
  const mpi::JobId w[] = {job};
  ASSERT_TRUE(sched.machine().run_to_completion(w));
  EXPECT_GE(static_cast<int>(awr.current_mode()),
            static_cast<int>(routing::Mode::kAd1));
  EXPECT_LE(static_cast<int>(awr.current_mode()),
            static_cast<int>(routing::Mode::kAd2));
}

TEST(Awr, ModeChangeReachesSubsequentMessages) {
  mpi::Machine m(topo::Config::mini(2), 9);
  mpi::JobSpec s;
  s.name = "probe";
  s.nodes = {0, 1};
  s.mode_p2p = routing::Mode::kAd0;
  routing::Mode seen_late = routing::Mode::kAd0;
  s.app = [&seen_late](mpi::RankCtx& ctx) -> mpi::CoTask {
    co_await ctx.compute(200 * sim::kMicrosecond);
    seen_late = ctx.mode_p2p();
  };
  const mpi::JobId id = m.submit(std::move(s));
  m.engine().schedule(50 * sim::kMicrosecond, [&] {
    m.set_job_modes(id, routing::Mode::kAd3, routing::Mode::kAd3);
  });
  const mpi::JobId w[] = {id};
  ASSERT_TRUE(m.run_to_completion(w));
  EXPECT_EQ(seen_late, routing::Mode::kAd3);
}

TEST(Throttle, EngagesUnderSustainedIncastAndRelaxes) {
  topo::Config cfg = topo::Config::mini(4);
  cfg.throttle_enabled = true;
  cfg.throttle_window = 20 * sim::kMicrosecond;
  cfg.throttle_hi_ratio = 1.0;  // low threshold: engage quickly in the test
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 11);
  // Persistent incast: many senders to one node.
  for (topo::NodeId src = 1; src < 48; ++src)
    net.send_message(src, 0, 512 * 1024, routing::Mode::kAd0, {});
  eng.run_until(2 * sim::kMillisecond);
  EXPECT_GT(net.stats().throttle_activations, 0);
  EXPECT_GT(net.throttle_factor(), 1.0);
  // Quiet period: factor relaxes back toward 1.
  eng.run_until(eng.now() + 10 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(net.throttle_factor(), 1.0);
}

TEST(Throttle, DisabledByDefault) {
  topo::Config cfg = topo::Config::mini(2);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 13);
  for (topo::NodeId src = 1; src < 16; ++src)
    net.send_message(src, 0, 256 * 1024, routing::Mode::kAd0, {});
  eng.run();
  EXPECT_EQ(net.stats().throttle_activations, 0);
  EXPECT_DOUBLE_EQ(net.throttle_factor(), 1.0);
}

// --- VC-ladder deadlock-freedom stress properties ---

class LadderStress : public ::testing::TestWithParam<routing::Mode> {};
INSTANTIATE_TEST_SUITE_P(Modes, LadderStress,
                         ::testing::Values(routing::Mode::kAd0,
                                           routing::Mode::kAd3),
                         [](const auto& inf) {
                           return std::string(routing::mode_name(inf.param));
                         });

TEST_P(LadderStress, NoEscapesUnderHeavyAdversarialLoad) {
  // Saturating group-pair permutation traffic from every node: the classic
  // cyclic-dependency workload. With the VC ladder the escape safety net
  // must never fire, and everything must drain.
  topo::Config cfg = topo::Config::mini(6);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 17);
  const int n = cfg.num_nodes();
  int done = 0;
  for (int rep = 0; rep < 3; ++rep)
    for (topo::NodeId s = 0; s < n; ++s)
      net.send_message(s, (s + n / 2) % n, 128 * 1024, GetParam(),
                       [&] { ++done; });
  eng.set_event_budget(200'000'000ULL);
  eng.run();
  EXPECT_EQ(done, 3 * n);
  EXPECT_EQ(net.stats().escapes, 0);
  EXPECT_EQ(net.packets_in_flight(), 0);
}

TEST(Ladder, MixedWorkloadDrainsWithoutEscapes) {
  // Whole-machine mixed app ensemble: the integration-level no-deadlock
  // check.
  sched::Scheduler sched(topo::Config::mini(6), 23);
  apps::AppParams p;
  p.iterations = 2;
  p.msg_scale = 0.3;
  p.compute_scale = 0.05;
  std::vector<mpi::JobId> jobs;
  for (const auto& app : apps::paper_app_names()) {
    const mpi::JobId id = sched.submit_app(app, 12, sched::Placement::kRandom,
                                           routing::Mode::kAd0, p);
    if (id >= 0) jobs.push_back(id);
  }
  ASSERT_TRUE(sched.machine().run_to_completion(jobs));
  EXPECT_EQ(sched.machine().network().stats().escapes, 0);
  // Trailing fire-and-forget responses drain after job completion.
  sched.machine().run_for(5 * sim::kMillisecond);
  EXPECT_EQ(sched.machine().network().packets_in_flight(), 0);
}

}  // namespace
}  // namespace dfsim
