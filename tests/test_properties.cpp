// Property-based tests: randomized traffic fuzzing against global
// invariants (conservation, bounded paths, determinism, bias monotonicity).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/bias.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

struct FuzzCase {
  topo::Config cfg;
  std::uint64_t seed;
  int messages;
  std::string label;
};

class TrafficFuzz : public ::testing::TestWithParam<FuzzCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrafficFuzz,
    ::testing::Values(FuzzCase{topo::Config::mini(2), 1, 300, "mini2"},
                      FuzzCase{topo::Config::mini(5), 2, 300, "mini5"},
                      FuzzCase{topo::Config::theta_scaled(), 3, 200, "scaled"},
                      FuzzCase{topo::Config::slingshot_like(4), 4, 200,
                               "slingshot"},
                      FuzzCase{topo::Config::cori_scaled(), 5, 150, "cori"}),
    [](const auto& inf) { return inf.param.label; });

TEST_P(TrafficFuzz, ConservationAndBoundedPaths) {
  const auto& fc = GetParam();
  sim::Engine eng;
  topo::Dragonfly topo(fc.cfg);
  net::Network net(eng, topo, fc.seed);
  sim::Rng rng(fc.seed * 7919);
  int done = 0;
  int expected = 0;
  for (int i = 0; i < fc.messages; ++i) {
    const auto a =
        static_cast<topo::NodeId>(rng.uniform_u64(fc.cfg.num_nodes()));
    const auto b =
        static_cast<topo::NodeId>(rng.uniform_u64(fc.cfg.num_nodes()));
    const auto bytes = static_cast<std::int64_t>(1 + rng.uniform_u64(96 * 1024));
    const auto mode = static_cast<routing::Mode>(rng.uniform_u64(4));
    net.send_message(a, b, bytes, mode, [&] { ++done; });
    ++expected;
  }
  eng.set_event_budget(200'000'000ULL);
  eng.run();
  EXPECT_EQ(done, expected);
  EXPECT_EQ(net.packets_in_flight(), 0);
  EXPECT_EQ(net.stats().escapes, 0);

  const auto s = net.snapshot_all();
  // Conservation: every packet injected at a NIC ejects at exactly one
  // processor tile with the same flit count (per plane). The snapshot's
  // proc classes fold injection and ejection (as Aries processor tiles
  // carry both directions), so proc == 2x the NIC-side injection total.
  std::int64_t inj_req = 0, inj_rsp = 0;
  for (topo::NodeId n = 0; n < fc.cfg.num_nodes(); ++n) {
    inj_req += net.nic(n).ctr.inj_flits[net::kVcRequest];
    inj_rsp += net.nic(n).ctr.inj_flits[net::kVcResponse];
  }
  EXPECT_EQ(s.proc_req.flits, 2 * inj_req);
  EXPECT_EQ(s.proc_rsp.flits, 2 * inj_rsp);
  // Mean hops per packet bounded by the Valiant worst case.
  if (net.stats().packets_injected > 0) {
    const double mean_hops =
        static_cast<double>(net.stats().total_hops) /
        static_cast<double>(net.stats().packets_injected);
    EXPECT_GT(mean_hops, 0.0);
    EXPECT_LE(mean_hops, 11.0);
  }
}

TEST_P(TrafficFuzz, DeterministicReplay) {
  const auto& fc = GetParam();
  auto run = [&] {
    sim::Engine eng;
    topo::Dragonfly topo(fc.cfg);
    net::Network net(eng, topo, fc.seed);
    sim::Rng rng(fc.seed);
    for (int i = 0; i < fc.messages / 2; ++i) {
      const auto a =
          static_cast<topo::NodeId>(rng.uniform_u64(fc.cfg.num_nodes()));
      const auto b =
          static_cast<topo::NodeId>(rng.uniform_u64(fc.cfg.num_nodes()));
      net.send_message(a, b, 8192, routing::Mode::kAd0, {});
    }
    eng.run();
    const auto s = net.snapshot_all();
    return std::tuple{eng.now(), s.rank1.flits, s.rank3.stall_ns,
                      net.stats().total_hops,
                      net.stats().nonminimal_decisions};
  };
  EXPECT_EQ(run(), run());
}

TEST(BiasProperty, MonotoneInLoads) {
  // For every mode: raising the minimal load can only push the decision
  // toward non-minimal; raising the non-minimal load only toward minimal.
  sim::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto mode = static_cast<routing::Mode>(rng.uniform_u64(4));
    const auto lm = static_cast<std::int64_t>(rng.uniform_u64(200));
    const auto ln = static_cast<std::int64_t>(rng.uniform_u64(200));
    const int hops = static_cast<int>(rng.uniform_u64(8));
    const bool base = routing::choose_minimal(lm, ln, hops, mode);
    if (!base) {
      // Already diverting: more minimal load must not flip back.
      EXPECT_FALSE(routing::choose_minimal(lm + 1 + static_cast<std::int64_t>(
                                                        rng.uniform_u64(50)),
                                           ln, hops, mode));
    } else {
      // Minimal: more non-minimal load must keep it minimal.
      EXPECT_TRUE(routing::choose_minimal(
          lm, ln + 1 + static_cast<std::int64_t>(rng.uniform_u64(50)), hops,
          mode));
    }
  }
}

TEST(BiasProperty, HopsOnlyStrengthenMinimalForAd1) {
  sim::Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto lm = static_cast<std::int64_t>(rng.uniform_u64(200));
    const auto ln = static_cast<std::int64_t>(rng.uniform_u64(100));
    const int h = static_cast<int>(rng.uniform_u64(6));
    if (routing::choose_minimal(lm, ln, h, routing::Mode::kAd1)) {
      EXPECT_TRUE(routing::choose_minimal(lm, ln, h + 1, routing::Mode::kAd1));
    }
  }
}

TEST(LoadOracleProperty, ReflectsOccupancyDuringTransfer) {
  // While a large message is in flight, some port on the source router must
  // report non-zero load; after drain, all loads return to zero.
  const topo::Config cfg = topo::Config::mini(3);
  sim::Engine eng;
  topo::Dragonfly topo(cfg);
  net::Network net(eng, topo, 21);
  net.send_message(0, cfg.num_nodes() - 1, 512 * 1024, routing::Mode::kAd0, {});
  eng.run_until(20 * sim::kMicrosecond);
  std::int64_t during = 0;
  for (topo::PortId p = 0; p < topo.num_ports(0); ++p)
    during += net.load_units(0, p);
  EXPECT_GT(during, 0);
  eng.run();
  for (topo::RouterId r = 0; r < cfg.num_routers(); ++r)
    for (topo::PortId p = 0; p < topo.num_ports(r); ++p)
      ASSERT_EQ(net.load_units(r, p), 0) << "r" << r << " p" << p;
}

}  // namespace
}  // namespace dfsim
