// Tests: VC ladder level semantics — levels start at 0, bump exactly on
// group crossings / Valiant-intermediate passage, and never exceed the
// ladder depth; queue-index mapping keeps planes separate.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "routing/adaptive.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfsim {
namespace {

class ZeroLoad final : public routing::LoadOracle {
 public:
  [[nodiscard]] std::int64_t load_units(topo::RouterId,
                                        topo::PortId) const override {
    return 0;
  }
};

/// Walk next_port() like the network does (bumping on rank-3 hops) and
/// record the level at every hop.
std::vector<int> walk_levels(const topo::Dragonfly& d,
                             routing::RoutePlanner& pl, topo::NodeId src,
                             topo::NodeId dst, routing::RouteState& st) {
  std::vector<int> levels;
  topo::RouterId r = d.router_of_node(src);
  for (int hop = 0; hop < 16; ++hop) {
    const topo::PortId p = pl.next_port(r, dst, st);
    levels.push_back(st.level);
    const auto& pi = d.port(r, p);
    if (pi.cls == topo::TileClass::kProc) return levels;
    if (pi.cls == topo::TileClass::kRank3 &&
        st.level + 1 < routing::kVcLadderLevels)
      ++st.level;  // the network bumps on crossing
    r = pi.peer_router;
  }
  ADD_FAILURE() << "routing loop";
  return levels;
}

TEST(VcLadder, MinimalInterGroupUsesTwoLevels) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  routing::RoutePlanner pl(d, zero, sim::Rng(1));
  const topo::NodeId src = 0;
  const auto dst = static_cast<topo::NodeId>(d.config().nodes_per_group() + 5);
  routing::RouteState st;  // minimal
  const auto levels = walk_levels(d, pl, src, dst, st);
  EXPECT_EQ(levels.front(), 0);
  EXPECT_LE(st.level, 1);  // one crossing
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_GE(levels[i], levels[i - 1]);  // monotone
}

TEST(VcLadder, ValiantInterGroupUsesThreeLevels) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  routing::RoutePlanner pl(d, zero, sim::Rng(2));
  const topo::NodeId src = 0;
  const auto dst = static_cast<topo::NodeId>(d.config().nodes_per_group() + 5);
  routing::RouteState st;
  st.nonminimal = true;
  st.via_group = 2;
  const auto levels = walk_levels(d, pl, src, dst, st);
  EXPECT_EQ(levels.front(), 0);
  EXPECT_EQ(st.level, 2);  // two crossings
  EXPECT_TRUE(st.via_done);
}

TEST(VcLadder, IntraGroupValiantBumpsAtViaRouter) {
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  routing::RoutePlanner pl(d, zero, sim::Rng(3));
  const topo::NodeId src = 0;
  const auto dst =
      static_cast<topo::NodeId>(5 * d.config().nodes_per_router);  // router 5
  routing::RouteState st;
  st.nonminimal = true;
  st.via_router = 3;
  const auto levels = walk_levels(d, pl, src, dst, st);
  EXPECT_EQ(levels.front(), 0);
  EXPECT_EQ(st.level, 1);  // exactly one bump, at the via router
  EXPECT_TRUE(st.via_done);
}

TEST(VcLadder, LevelNeverExceedsDepth) {
  const topo::Dragonfly d(topo::Config::mini(6));
  ZeroLoad zero;
  routing::RoutePlanner pl(d, zero, sim::Rng(4));
  sim::Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_u64(d.config().num_nodes()));
    if (d.router_of_node(src) == d.router_of_node(dst)) continue;
    routing::RouteState st;
    st.mode = routing::Mode::kAd0;
    pl.decide_injection(d.router_of_node(src), dst, st);
    walk_levels(d, pl, src, dst, st);
    EXPECT_LT(st.level, routing::kVcLadderLevels);
  }
}

TEST(VcLadder, QueueIndexSeparatesPlanesAndClampsLevels) {
  EXPECT_EQ(net::vc_queue_index(net::kVcRequest, 0), 0);
  EXPECT_EQ(net::vc_queue_index(net::kVcRequest, 2), 2);
  EXPECT_EQ(net::vc_queue_index(net::kVcRequest, 9), 2);  // clamped
  EXPECT_EQ(net::vc_queue_index(net::kVcResponse, 0), 3);
  EXPECT_EQ(net::vc_queue_index(net::kVcResponse, 2), 5);
  for (int q = 0; q < net::kNumVcs; ++q)
    EXPECT_EQ(net::vc_plane(q), q / net::kNumVcLevels);
}

TEST(VcLadder, RowFirstLocalRoutingIsAcyclic) {
  // Within one group at one level, the channel dependency graph must be
  // acyclic: rank-1 ports may feed rank-2 ports, but never the other way.
  const topo::Dragonfly d(topo::Config::mini(4));
  ZeroLoad zero;
  routing::RoutePlanner pl(d, zero, sim::Rng(6));
  const topo::GroupId g = 0;
  const int rpg = d.config().routers_per_group();
  for (int a = 0; a < rpg; ++a) {
    for (int b = 0; b < rpg; ++b) {
      if (a == b) continue;
      const auto ra = static_cast<topo::RouterId>(g * rpg + a);
      const auto rb = static_cast<topo::RouterId>(g * rpg + b);
      // First hop toward rb.
      routing::RouteState st;
      const topo::PortId p = pl.next_port(
          ra, static_cast<topo::NodeId>(rb * d.config().nodes_per_router), st);
      const auto& pi = d.port(ra, p);
      if (pi.cls == topo::TileClass::kRank2) {
        // A rank-2 first hop must be the final local hop (same slot).
        EXPECT_EQ(d.slot_of(ra), d.slot_of(rb));
      }
    }
  }
}

}  // namespace
}  // namespace dfsim
